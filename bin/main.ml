(* flowsched — command-line interface.

   Subcommands: generate workloads, compute LP lower bounds, run the offline
   approximation algorithms (Theorem 1, Theorem 3), simulate online
   policies, and solve tiny instances exactly. *)

open Cmdliner
open Flowsched_switch
open Flowsched_core

(* ----- shared helpers ----- *)

let load_instance path =
  let data =
    if path = "-" then In_channel.input_all stdin
    else In_channel.with_open_bin path In_channel.input_all
  in
  match Instance.of_string data with
  | Ok inst -> inst
  | Error msg ->
      Printf.eprintf "error: cannot parse %s: %s\n" path msg;
      exit 1

let instance_arg =
  let doc = "Instance file in the flowsched text format ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"INSTANCE" ~doc)

let seed_term =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

(* ----- observability flags (shared by the experiment subcommands) ----- *)

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span trace of the run and write it to $(docv) as Chrome trace-event \
           JSON (load in chrome://tracing or Perfetto).")

let metrics_term =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the merged metrics registry (counters/gauges/histograms) to stderr on exit.")

(* Flush the observability sinks: write the trace file and dump the
   registry.  Split out of [with_obs] because interrupt handlers that leave
   via [exit] bypass [Fun.protect] finalizers and must flush explicitly —
   an interrupted sweep still owes the user its partial trace. *)
let finish_obs ~trace ~metrics () =
  (match trace with
  | Some path ->
      Flowsched_obs.Trace.stop ();
      Flowsched_obs.Trace.write path;
      Printf.eprintf "wrote trace %s\n%!" path
  | None -> ());
  if metrics then begin
    prerr_string (Flowsched_obs.Metrics.to_text (Flowsched_obs.Metrics.snapshot ()));
    flush stderr
  end

(* Bracket a subcommand body: enable tracing when requested and, on the way
   out (also on exceptions), write the trace file and dump the registry. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Flowsched_obs.Trace.start ();
  Fun.protect ~finally:(finish_obs ~trace ~metrics) f

(* ----- worker-count and backend flags (shared by the parallel drivers) ----- *)

(* [--jobs] accepts a positive worker count or "auto" (the runtime's
   recommended domain count).  0 is rejected outright: zero workers cannot
   run anything, and the old silent clamp to 1 hid the typo. *)
let jobs_conv =
  let parse s =
    match s with
    | "auto" -> Ok (Flowsched_exec.Pool.default_jobs ())
    | _ -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "--jobs %s: worker count must be at least 1 (or \"auto\" for the \
                    detected core count)"
                   s))
        | None ->
            Error
              (`Msg (Printf.sprintf "invalid --jobs %S (expected a positive integer or \"auto\")" s)))
  in
  Arg.conv (parse, Format.pp_print_int)

(* "--shard I/N": zero-based shard index out of N workers. *)
let shard_conv =
  let parse s =
    match String.split_on_char '/' s with
    | [ i; n ] -> (
        match (int_of_string_opt i, int_of_string_opt n) with
        | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
        | Some _, Some _ ->
            Error
              (`Msg
                (Printf.sprintf "--shard %s: need 0 <= I < N (indexes are zero-based)" s))
        | _ -> Error (`Msg (Printf.sprintf "invalid --shard %S (expected I/N)" s)))
    | _ -> Error (`Msg (Printf.sprintf "invalid --shard %S (expected I/N, e.g. 0/4)" s))
  in
  Arg.conv (parse, fun fmt (i, n) -> Format.fprintf fmt "%d/%d" i n)

let backend_conv =
  let parse s =
    match Flowsched_domains.Backend.of_string s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf b -> Format.pp_print_string ppf (Flowsched_domains.Backend.to_string b))

let backend_term =
  Arg.(
    value
    & opt backend_conv Flowsched_domains.Backend.Fork
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Parallel executor for the cell grid: $(b,fork) (process pool, isolated address \
           spaces), $(b,domains) (shared-memory OCaml 5 domains with work stealing), or \
           $(b,inline) (sequential, in-process).  The artifact is byte-identical across \
           all three.")

let print_schedule_stats inst schedule =
  Printf.printf "flows:            %d\n" (Instance.n inst);
  Printf.printf "makespan:         %d\n" (Schedule.makespan schedule);
  Printf.printf "total response:   %d\n" (Schedule.total_response inst schedule);
  Printf.printf "average response: %.3f\n" (Schedule.average_response inst schedule);
  Printf.printf "max response:     %d\n" (Schedule.max_response inst schedule)

let print_assignment schedule n =
  for e = 0 to n - 1 do
    Printf.printf "flow %d -> round %d\n" e (Schedule.round_of schedule e)
  done

let print_timeline inst schedule caps_note =
  Printf.printf "timeline (%s):\n%s" caps_note (Schedule.render_timeline inst schedule)

(* ----- generate ----- *)

let generate kind m rate rounds n max_release max_demand seed =
  let module Scenario = Flowsched_scenarios.Scenario in
  let inst =
    match kind with
    (* generate's "uniform" predates the scenario namespace and keeps its
       --n/--max-release knobs rather than the rate * rounds volume. *)
    | "uniform" -> Flowsched_sim.Workload.uniform_total ~m ~n ~max_release ~seed
    | "slack1" -> Open_problem.generate ~seed ~m ~rounds ()
    | "fig4a" -> Lower_bounds.fig4a_static ~t:(rounds / 2) ~total_rounds:rounds
    | "fig4b" -> Lower_bounds.fig4b_static ()
    | other -> (
        match Scenario.of_string other with
        | Ok k -> Scenario.instance { Scenario.kind = k; m; rate; rounds; max_demand; seed }
        | Error msg ->
            Printf.eprintf "error: %s (also: slack1|fig4a|fig4b)\n" msg;
            exit 1)
  in
  print_string (Instance.to_string inst)

let generate_cmd =
  let kind =
    Arg.(
      value & pos 0 string "poisson"
      & info [] ~docv:"KIND"
          ~doc:
            "Any scenario kind — poisson | poisson-demands | uniform | skewed | hotspot | \
             pareto | lognormal | bursty | diurnal | flash-crowd | bimodal | staircase | \
             crossflow, with optional :parameters (e.g. pareto:1.2) — or one of the \
             specials slack1 | fig4a | fig4b.")
  in
  let m = Arg.(value & opt int 8 & info [ "m" ] ~doc:"Ports per side.") in
  let rate = Arg.(value & opt float 4.0 & info [ "rate" ] ~doc:"Poisson arrival rate (M).") in
  let rounds = Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Generation rounds (T).") in
  let n = Arg.(value & opt int 32 & info [ "n" ] ~doc:"Flow count (uniform).") in
  let max_release =
    Arg.(value & opt int 8 & info [ "max-release" ] ~doc:"Release bound (uniform).")
  in
  let max_demand =
    Arg.(value & opt int 3 & info [ "max-demand" ] ~doc:"Demand bound (poisson-demands).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a workload instance on stdout.")
    Term.(const generate $ kind $ m $ rate $ rounds $ n $ max_release $ max_demand $ seed_term)

(* ----- lp-bound ----- *)

let lp_bound path stats trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let inst = load_instance path in
  let module Simplex = Flowsched_lp.Simplex in
  if stats then Simplex.reset_counters ();
  let bound = Art_lp.lower_bound inst in
  let rho = Mrt_scheduler.min_fractional_rho inst in
  Printf.printf "flows:                     %d\n" (Instance.n inst);
  Printf.printf "LP (1)-(4) total response: %.3f\n" bound.Art_lp.total;
  Printf.printf "LP (1)-(4) avg response:   %.3f\n" bound.Art_lp.average;
  Printf.printf "LP (19)-(21) min rho:      %d\n" rho;
  if stats then begin
    let c = Simplex.read_counters () in
    Printf.printf "simplex solves:            %d\n" c.Simplex.solves;
    Printf.printf "simplex pivots:            %d\n" c.Simplex.pivots;
    Printf.printf "ftran calls:               %d\n" c.Simplex.ftran_calls;
    Printf.printf "refactorizations:          %d\n" c.Simplex.refactorizations;
    Printf.printf "full pricing scans:        %d\n" c.Simplex.full_pricing_scans;
    Printf.printf "partial pricing rounds:    %d\n" c.Simplex.partial_pricing_rounds;
    Printf.printf "warm starts accepted:      %d/%d\n" c.Simplex.warm_accepted
      c.Simplex.warm_attempts;
    Printf.printf "phase-1 skipped:           %d\n" c.Simplex.phase1_skipped;
    Printf.printf "basis nnz:                 %d\n" c.Simplex.basis_nnz;
    Printf.printf "factor nnz:                %d\n" c.Simplex.factor_nnz;
    Printf.printf "eta nnz:                   %d\n" c.Simplex.eta_nnz;
    Printf.printf "bound flips:               %d\n" c.Simplex.bound_flips;
    if c.Simplex.basis_nnz > 0 then
      Printf.printf "LU fill-in ratio:          %.3f\n"
        (float_of_int c.Simplex.factor_nnz /. float_of_int c.Simplex.basis_nnz);
    Printf.printf "phase-1 time:              %.4fs\n" c.Simplex.phase1_seconds;
    Printf.printf "phase-2 time:              %.4fs\n" c.Simplex.phase2_seconds
  end

let lp_bound_cmd =
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Also print simplex perf counters.")
  in
  Cmd.v
    (Cmd.info "lp-bound"
       ~doc:"Compute the LP lower bounds on average and maximum response time.")
    Term.(const lp_bound $ instance_arg $ stats $ trace_term $ metrics_term)

(* ----- solve-art ----- *)

let solve_art path c show timeline trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let inst = load_instance path in
  let res = Art_scheduler.solve ~c inst in
  let d = res.Art_scheduler.diagnostics in
  Printf.printf "FS-ART approximation (Theorem 1), capacity blow-up %dx\n" (1 + c);
  print_schedule_stats inst res.Art_scheduler.schedule;
  Printf.printf "LP lower bound:   %.3f\n" res.Art_scheduler.lp_total;
  Printf.printf "rounding iters:   %d\n" d.Art_scheduler.rounding.Iterative_rounding.iterations;
  Printf.printf "backlog:          %d\n" d.Art_scheduler.rounding.Iterative_rounding.backlog;
  Printf.printf "block length h:   %d\n" d.Art_scheduler.h;
  Printf.printf "valid (1+c caps): %b\n"
    (Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule);
  if show then print_assignment res.Art_scheduler.schedule (Instance.n inst);
  if timeline then
    print_timeline res.Art_scheduler.augmented res.Art_scheduler.schedule
      (Printf.sprintf "(1+c) = %dx capacities" (1 + c))

let timeline_flag =
  Arg.(value & flag & info [ "timeline" ] ~doc:"Print an ASCII port/round load timeline.")

let solve_art_cmd =
  let c =
    Arg.(value & opt int 1 & info [ "c" ] ~doc:"Capacity blow-up parameter (1+c total).")
  in
  let show = Arg.(value & flag & info [ "show-schedule" ] ~doc:"Print the assignment.") in
  Cmd.v
    (Cmd.info "solve-art"
       ~doc:"Minimize average response time offline (unit demands, (1+c) capacities).")
    Term.(const solve_art $ instance_arg $ c $ show $ timeline_flag $ trace_term $ metrics_term)

(* ----- solve-mrt ----- *)

let solve_mrt path rho show timeline trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let inst = load_instance path in
  let sol = match rho with Some r -> Mrt_scheduler.solve ~rho:r inst | None -> Mrt_scheduler.solve inst in
  Printf.printf "FS-MRT (Theorem 3), capacities +%d\n"
    (max 0 ((2 * Instance.dmax inst) - 1));
  print_schedule_stats inst sol.Mrt_scheduler.schedule;
  Printf.printf "fractional rho:   %d\n" sol.Mrt_scheduler.fractional_rho;
  Printf.printf "port overflow:    %d (bound %d)\n"
    sol.Mrt_scheduler.rounding.Mrt_rounding.overflow sol.Mrt_scheduler.rounding.Mrt_rounding.bound;
  Printf.printf "valid (augmented):%b\n"
    (Schedule.is_valid sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule);
  if show then print_assignment sol.Mrt_scheduler.schedule (Instance.n inst);
  if timeline then
    print_timeline sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule
      "capacities +2dmax-1"

let solve_mrt_cmd =
  let rho =
    Arg.(value & opt (some int) None & info [ "rho" ] ~doc:"Target max response (default: minimum feasible).")
  in
  let show = Arg.(value & flag & info [ "show-schedule" ] ~doc:"Print the assignment.") in
  Cmd.v
    (Cmd.info "solve-mrt"
       ~doc:"Minimize maximum response time offline (capacities +2dmax-1).")
    Term.(const solve_mrt $ instance_arg $ rho $ show $ timeline_flag $ trace_term $ metrics_term)

(* ----- simulate ----- *)

let policy_of_name name seed =
  match String.lowercase_ascii name with
  | "maxcard" -> Flowsched_online.Heuristics.maxcard
  | "minrtime" -> Flowsched_online.Heuristics.minrtime
  | "maxweight" -> Flowsched_online.Heuristics.maxweight
  | "fifo" -> Flowsched_online.Heuristics.fifo
  | "random" -> Flowsched_online.Heuristics.random_policy ~seed
  | other ->
      Printf.eprintf "error: unknown policy %S (maxcard|minrtime|maxweight|fifo|random)\n"
        other;
      exit 1

let simulate path policy_name seed timeline trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let inst = load_instance path in
  let policy = policy_of_name policy_name seed in
  match Flowsched_sim.Engine.run_instance policy inst with
  | exception Flowsched_sim.Engine.Horizon_exceeded { round; pending } ->
      Printf.eprintf
        "error: policy %s did not drain the queue: %d flows still pending after %d rounds\n"
        policy.Flowsched_online.Policy.name pending round;
      exit 1
  | r ->
      Printf.printf "policy:           %s\n" policy.Flowsched_online.Policy.name;
      print_schedule_stats inst r.Flowsched_sim.Engine.schedule;
      if timeline then print_timeline inst r.Flowsched_sim.Engine.schedule "original capacities"

let simulate_cmd =
  let policy =
    Arg.(
      value & opt string "maxweight"
      & info [ "policy" ] ~doc:"maxcard | minrtime | maxweight | fifo | random")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run an online policy over an instance.")
    Term.(
      const simulate $ instance_arg $ policy $ seed_term $ timeline_flag $ trace_term
      $ metrics_term)

(* ----- serve ----- *)

let serve inst_path core_name seed jobs workload m rate slots max_demand alpha fraction
    queue_cap buffer_cap max_slots idle_limit status_every json trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let module Serve = Flowsched_serve.Server in
  let inst = Option.map load_instance inst_path in
  (* Sources are stateful cursors, so each replica builds its own (and, in
     stream mode, derives its own arrival stream from its replica seed). *)
  let make_source ~seed =
    match inst with
    | Some inst ->
        ( Flowsched_serve.Source.of_instance inst,
          inst.Instance.m,
          inst.Instance.m',
          Some inst.Instance.cap_in,
          Some inst.Instance.cap_out )
    | None ->
        let module Scenario = Flowsched_scenarios.Scenario in
        let name =
          (* Workload names parse centrally (Scenario.of_string); bare
             legacy names keep their historical meaning — "uniform" was
             serve's name for the Poisson stream, and the bare kinds pick
             their parameter up from the dedicated flag. *)
          match String.lowercase_ascii workload with
          | "uniform" -> "poisson"
          | "skewed" -> Printf.sprintf "skewed:%g" alpha
          | "hotspot" -> Printf.sprintf "hotspot:%g" fraction
          | other -> other
        in
        let kind =
          match Scenario.of_string name with
          | Ok k -> k
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 1
        in
        let spec = { Scenario.kind; m; rate; rounds = slots; max_demand; seed } in
        let source =
          try Flowsched_serve.Source.of_scenario spec ~horizon:slots
          with Invalid_argument msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        in
        let m, m' = Scenario.geometry spec in
        let cap c = match Scenario.port_capacity spec with 1 -> None | d -> Some (Array.make c d) in
        (source, m, m', cap m, cap m')
  in
  let run_one ~seed ~stop =
    let source, m, m', cap_in, cap_out = make_source ~seed in
    let core =
      match String.lowercase_ascii core_name with
      | "incremental" -> Serve.Incremental
      | name -> Serve.Policy (policy_of_name name seed)
    in
    let config =
      Serve.config ?cap_in ?cap_out ?queue_cap ?buffer_cap ?max_slots ~idle_limit
        ~status_every ~m ~m' ()
    in
    let on_status s =
      Printf.eprintf "%s\n%!"
        (Flowsched_util.Json.to_string ~pretty:false (Serve.status_to_json s))
    in
    Serve.run ~on_status ~stop config core source
  in
  let print_outcome ?replica outcome =
    if json then
      print_endline (Flowsched_util.Json.to_string (Serve.outcome_to_json outcome))
    else begin
      (match replica with
      | Some (i, seed) -> Printf.printf "replica %d (seed %d):\n" i seed
      | None -> ());
      Printf.printf "slots:            %d\n" outcome.Serve.slots;
      Printf.printf "flows:            %d arrived, %d completed\n" outcome.Serve.arrived
        outcome.Serve.completed;
      Printf.printf "avg response:     %.4f\n" (Serve.mean_response outcome);
      Printf.printf "max response:     %d\n" outcome.Serve.max_response;
      Printf.printf "makespan:         %d\n" outcome.Serve.makespan;
      Printf.printf "idle slots:       %d\n" outcome.Serve.idle_slots;
      Printf.printf "stalled slots:    %d\n" outcome.Serve.stalled_slots;
      Printf.printf "peak pending:     %d\n" outcome.Serve.peak_pending;
      if outcome.Serve.final_pending > 0 || outcome.Serve.final_buffered > 0 then
        Printf.printf "left unfinished:  %d pending, %d buffered\n"
          outcome.Serve.final_pending outcome.Serve.final_buffered;
      if outcome.Serve.interrupted then
        Printf.printf "interrupted:      yes (drained gracefully)\n"
    end
  in
  if jobs <= 1 then
    let outcome =
      Flowsched_exec.Signals.with_interrupt_flag (fun stop -> run_one ~seed ~stop)
    in
    print_outcome outcome
  else begin
    (* Replica mode: [jobs] independent service instances, one per domain,
       each on its own derived-seed arrival stream — a quick scale test of
       the service loop.  The shared interrupt flag drains every replica
       gracefully; outcomes print in replica order. *)
    let replica_seed i = Flowsched_exec.Pool.seed_for ~base_seed:seed i in
    let outcomes =
      Flowsched_exec.Signals.with_interrupt_flag (fun stop ->
          Flowsched_domains.Parallel.map ~width:jobs jobs (fun i ->
              run_one ~seed:(replica_seed i) ~stop))
    in
    Array.iteri (fun i o -> print_outcome ~replica:(i, replica_seed i) o) outcomes
  end

let serve_cmd =
  let inst =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"FILE"
          ~doc:"Replay a fixed instance file instead of a generated stream ('-' for stdin).")
  in
  let core =
    Arg.(
      value & opt string "incremental"
      & info [ "core" ]
          ~doc:
            "Scheduling core: incremental (per-slot matching maintained across slots) or a \
             policy name (maxcard | minrtime | maxweight | fifo | random).")
  in
  let jobs =
    Arg.(
      value & opt jobs_conv 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run $(docv) independent service replicas on parallel domains, each with a \
             derived seed (or $(b,auto) for the detected core count).  Default 1: a \
             single service.")
  in
  let workload =
    Arg.(
      value & opt string "uniform"
      & info [ "workload" ]
          ~doc:
            "Generated stream kind: any streamable scenario (poisson | demands | skewed | \
             hotspot | pareto | lognormal | bursty | diurnal | flash-crowd | bimodal | \
             staircase | crossflow, with optional :parameters); uniform is a legacy alias \
             for poisson.")
  in
  let m = Arg.(value & opt int 8 & info [ "m" ] ~doc:"Ports per side (stream mode).") in
  let rate =
    Arg.(value & opt float 4.0 & info [ "rate" ] ~doc:"Poisson arrival rate (stream mode).")
  in
  let slots =
    Arg.(
      value & opt int 100_000
      & info [ "slots" ] ~doc:"Source horizon in slots (stream mode); the run then drains.")
  in
  let max_demand =
    Arg.(value & opt int 3 & info [ "max-demand" ] ~doc:"Demand bound (demands workload).")
  in
  let alpha =
    Arg.(value & opt float 1.0 & info [ "alpha" ] ~doc:"Zipf exponent (skewed workload).")
  in
  let fraction =
    Arg.(
      value & opt float 0.5 & info [ "fraction" ] ~doc:"Incast fraction (hotspot workload).")
  in
  let queue_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-cap" ]
          ~doc:"Bound the pending queue; arrivals wait in the buffer above this.")
  in
  let buffer_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "buffer-cap" ] ~doc:"Bound the arrival buffer; the source stalls above this.")
  in
  let max_slots =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-slots" ] ~doc:"Hard stop after this many scheduler slots.")
  in
  let idle_limit =
    Arg.(
      value & opt int 10_000
      & info [ "idle-limit" ]
          ~doc:"Give up after this many consecutive fruitless drain slots.")
  in
  let status_every =
    Arg.(
      value & opt int 10_000
      & info [ "status-every" ]
          ~doc:"Print a JSON status snapshot to stderr every N slots (0 = never).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the final outcome as JSON on stdout.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduler as a long-lived slot-clocked service over a trace or a generated \
          arrival stream.")
    Term.(
      const serve $ inst $ core $ seed_term $ jobs $ workload $ m $ rate $ slots $ max_demand
      $ alpha $ fraction $ queue_cap $ buffer_cap $ max_slots $ idle_limit $ status_every
      $ json $ trace_term $ metrics_term)

(* ----- exact ----- *)

let exact path =
  let inst = load_instance path in
  if Instance.n inst > 12 then
    Printf.eprintf "warning: exact search is exponential; %d flows may take very long\n"
      (Instance.n inst);
  let total, s = Exact.min_total_response inst in
  Printf.printf "optimal total response: %d (avg %.3f)\n" total
    (float_of_int total /. float_of_int (max 1 (Instance.n inst)));
  Printf.printf "  witness makespan: %d\n" (Schedule.makespan s);
  match Exact.min_max_response inst with
  | Some (rho, _) -> Printf.printf "optimal max response:   %d\n" rho
  | None -> Printf.printf "optimal max response:   none within horizon\n"

let exact_cmd =
  Cmd.v
    (Cmd.info "exact" ~doc:"Solve a tiny instance exactly by branch and bound.")
    Term.(const exact $ instance_arg)

(* ----- figures ----- *)

let figures m tries trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let grid =
    Flowsched_sim.Experiment.fig6_grid ~m ~tries ~seed:2020
      ~congestion:[ 1. /. 3.; 2. /. 3.; 1.; 2.; 4. ]
      ~rounds:[ 6; 8; 10 ] ()
  in
  let results =
    Flowsched_sim.Experiment.run_grid
      ~policies:Flowsched_online.Heuristics.all_paper_heuristics
      ~progress:(fun msg -> Printf.eprintf "%s\n%!" msg)
      grid
  in
  print_endline "Figure 6 — average response time:";
  print_string (Flowsched_sim.Report.fig6_table results);
  print_newline ();
  print_endline "Figure 7 — maximum response time:";
  print_string (Flowsched_sim.Report.fig7_table results)

let figures_cmd =
  let m = Arg.(value & opt int 6 & info [ "m" ] ~doc:"Ports per side.") in
  let tries = Arg.(value & opt int 2 & info [ "tries" ] ~doc:"Trials per cell.") in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's Figure 6/7 tables (scaled).")
    Term.(const figures $ m $ tries $ trace_term $ metrics_term)

(* ----- sweep ----- *)

(* The sweep grid as a pure function of the CLI flags — shared by [sweep]
   (all modes) and [merge], which must agree on the grid cell-for-cell. *)
let sweep_cells_or_exit ~kinds ~m ~rates ~rounds_list ~max_demand ~seeds ~with_lp =
  List.iter
    (fun kind ->
      if not (Flowsched_sim.Experiment.sweep_kind_known kind) then begin
        Printf.eprintf "error: unknown workload %S (expected %s)\n" kind
          (String.concat "|"
             (Flowsched_sim.Experiment.sweep_workloads
             @ Flowsched_sim.Workload.registered_kind_names ()));
        exit 1
      end)
    kinds;
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun rate ->
            List.concat_map
              (fun rounds ->
                List.map
                  (fun seed ->
                    {
                      Flowsched_sim.Experiment.workload = kind;
                      ports = m;
                      arrival_rate = rate;
                      horizon = rounds;
                      max_demand;
                      sweep_seed = seed;
                      lp = with_lp;
                    })
                  seeds)
              rounds_list)
          rates)
      kinds
  in
  if cells = [] then begin
    Printf.eprintf "error: empty sweep grid (check --rates/--rounds/--seeds)\n";
    exit 1
  end;
  cells

(* One worker's share of a distributed sweep: claim the shard lease (taking
   over a crashed predecessor's if stale), register the manifest, and fill
   the shard checkpoint — heartbeating the lease after every durable append.
   No artifact is written here; [flowsched merge] folds the shard files back
   into one. *)
let sweep_shard_worker ~policies ~policy_names ~backend ~jobs ~timeout ~retries ~faults ~dir
    ~shards ~index ~lease_ttl cells =
  let module Ckpt = Flowsched_sim.Checkpoint in
  let module Shard = Flowsched_dist.Shard in
  let module Lease = Flowsched_dist.Lease in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let all_keys = List.map Ckpt.sweep_key cells in
  let mine = Shard.plan ~shards ~index cells in
  let stem = Shard.file_stem ~shards ~index in
  match Lease.acquire ~dir ~name:stem ~ttl:lease_ttl () with
  | Error incumbent ->
      Printf.eprintf "error: shard %d/%d is held by live worker %s (heartbeat %.0fs ago)\n"
        index shards incumbent.Lease.owner
        (Unix.gettimeofday () -. incumbent.Lease.refreshed_at);
      exit 1
  | Ok { Lease.lease; taken_over_from } ->
      (match taken_over_from with
      | Some h ->
          Printf.eprintf "  takeover: claimed stale lease of %s, resuming their checkpoint\n%!"
            h.Lease.owner
      | None -> ());
      let manifest = Shard.make ~kind:"sweep" ~shards ~index ~policies:policy_names all_keys in
      ignore (Shard.write_manifest ~dir manifest);
      let path = Filename.concat dir (Shard.checkpoint_name ~shards ~index) in
      let ckpt = Ckpt.open_ ~path ~resume:true in
      if Ckpt.loaded ckpt > 0 then
        Printf.eprintf "  resuming: %d of %d shard cells already checkpointed\n%!"
          (Ckpt.loaded ckpt) (List.length mine);
      Printf.eprintf "shard %d/%d: %d of %d cells, %d workers (%s)\n%!" index shards
        (List.length mine) (List.length cells) jobs
        (Flowsched_domains.Backend.to_string backend);
      let progress msg = Printf.eprintf "  %s\n%!" msg in
      let on_append _key = Lease.refresh lease in
      (try
         Fun.protect
           ~finally:(fun () -> Ckpt.close ckpt)
           (fun () ->
             ignore
               (Ckpt.run_sweep ~policies ~progress ~backend ~jobs ?timeout ?retries ?faults
                  ~on_append ckpt mine))
       with
      | Lease.Lost msg ->
          (* Another worker judged us dead and took the shard; stop writing. *)
          Printf.eprintf "error: %s — shard taken over, aborting\n" msg;
          exit 1
      | Flowsched_exec.Pool.Interrupted ->
          Printf.eprintf "interrupted: pool drained and workers reaped\n";
          Printf.eprintf "  completed cells are saved; rerun the same command to resume\n";
          exit 130);
      (* Only a cleanly finished shard releases its lease: a crash leaves the
         lease in place, which is exactly what the next claimant detects. *)
      Lease.release lease;
      Printf.eprintf "shard %d/%d complete: %d cells in %s\n%!" index shards
        (List.length mine) path

let sweep kinds m rates rounds_list max_demand seeds policy_names with_lp backend jobs
    timeout retries chaos shard checkpoint_dir lease_ttl checkpoint resume out trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let policies = List.map (fun name -> policy_of_name name 1) policy_names in
  if resume && checkpoint = None then begin
    Printf.eprintf "error: --resume requires --checkpoint FILE\n";
    exit 1
  end;
  (match (shard, checkpoint_dir) with
  | Some _, None ->
      Printf.eprintf "error: --shard requires --checkpoint-dir DIR\n";
      exit 1
  | None, Some _ ->
      Printf.eprintf "error: --checkpoint-dir requires --shard I/N\n";
      exit 1
  | _ -> ());
  if shard <> None && checkpoint <> None then begin
    Printf.eprintf
      "error: --shard derives its own checkpoint from --checkpoint-dir; drop --checkpoint\n";
    exit 1
  end;
  let faults = Option.map (fun seed -> Flowsched_exec.Faults.chaos ~seed) chaos in
  (* Chaos without a timeout would let an injected hang wedge the run. *)
  let timeout =
    match (timeout, faults) with None, Some _ -> Some 10. | t, _ -> t
  in
  let cells = sweep_cells_or_exit ~kinds ~m ~rates ~rounds_list ~max_demand ~seeds ~with_lp in
  let jobs = match jobs with Some j -> j | None -> Flowsched_exec.Pool.default_jobs () in
  match (shard, checkpoint_dir) with
  | Some (index, shards), Some dir ->
      sweep_shard_worker ~policies ~policy_names ~backend ~jobs ~timeout ~retries ~faults
        ~dir ~shards ~index ~lease_ttl cells
  | _ ->
  Printf.eprintf "sweep: %d cells x %d policies, %d workers (%s)\n%!" (List.length cells)
    (List.length policies) jobs
    (Flowsched_domains.Backend.to_string backend);
  let t0 = Unix.gettimeofday () in
  let progress msg = Printf.eprintf "  %s\n%!" msg in
  let results =
    try
      Flowsched_obs.Trace.with_span "sweep.run" (fun () ->
          match checkpoint with
          | None ->
              Flowsched_sim.Experiment.run_sweep ~policies ~progress ~backend ~jobs ?timeout
                ?retries ?faults cells
          | Some path ->
              let ckpt = Flowsched_sim.Checkpoint.open_ ~path ~resume in
              if resume then
                Printf.eprintf "  resuming: %d of %d cells already checkpointed\n%!"
                  (Flowsched_sim.Checkpoint.loaded ckpt)
                  (List.length cells);
              Fun.protect
                ~finally:(fun () -> Flowsched_sim.Checkpoint.close ckpt)
                (fun () ->
                  Flowsched_sim.Checkpoint.run_sweep ~policies ~progress ~backend ~jobs
                    ?timeout ?retries ?faults ckpt cells))
    with Flowsched_exec.Pool.Interrupted ->
      Printf.eprintf "interrupted: pool drained and workers reaped\n";
      (match checkpoint with
      | Some path ->
          Printf.eprintf "  completed cells are saved; rerun with --checkpoint %s --resume\n"
            path
      | None -> Printf.eprintf "  rerun with --checkpoint FILE to make progress durable\n");
      (* [exit] skips [with_obs]'s protect finalizer, so flush here: the
         partial trace (the executors absorb every settled worker's spans
         before raising) is exactly what a post-mortem wants. *)
      finish_obs ~trace ~metrics ();
      exit 130
  in
  (* The metrics block is opt-in: its timing gauges are nondeterministic and
     would break the byte-identical-across---jobs artifact guarantee. *)
  let metrics_block =
    if metrics then Some (Flowsched_obs.Metrics.to_json (Flowsched_obs.Metrics.snapshot ()))
    else None
  in
  let artifact = Flowsched_sim.Report.sweep_json ~jobs ?metrics:metrics_block results in
  let data = Flowsched_util.Json.to_string artifact ^ "\n" in
  (match out with
  | "-" -> print_string data
  | path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data);
      Printf.eprintf "wrote %s (%d cells, %.1fs)\n%!" path (List.length cells)
        (Unix.gettimeofday () -. t0))

let sweep_cmd =
  let list_of kind = Arg.list kind in
  let kinds =
    Arg.(
      value
      & opt (list_of string) [ "poisson" ]
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:"Comma-separated workload kinds (poisson|poisson-demands|uniform|skewed|hotspot).")
  in
  let m = Arg.(value & opt int 6 & info [ "m" ] ~doc:"Ports per side.") in
  let rates =
    Arg.(
      value & opt (list_of float) [ 2.0; 4.0 ]
      & info [ "rates" ] ~docv:"RATES" ~doc:"Comma-separated arrival rates (the paper's M).")
  in
  let rounds_list =
    Arg.(
      value & opt (list_of int) [ 6; 8 ]
      & info [ "rounds" ] ~docv:"ROUNDS" ~doc:"Comma-separated generation lengths (T).")
  in
  let max_demand =
    Arg.(value & opt int 3 & info [ "max-demand" ] ~doc:"Demand bound (poisson-demands).")
  in
  let seeds =
    Arg.(
      value & opt (list_of int) [ 1 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated PRNG seeds, one cell each.")
  in
  let policy_names =
    Arg.(
      value
      & opt (list_of string) [ "maxcard"; "minrtime"; "maxweight" ]
      & info [ "policies" ] ~docv:"POLICIES"
          ~doc:"Comma-separated policies (maxcard|minrtime|maxweight|fifo|random).")
  in
  let with_lp =
    Arg.(value & flag & info [ "lp" ] ~doc:"Also compute the LP lower bounds per cell (slow).")
  in
  let jobs =
    Arg.(
      value
      & opt (some jobs_conv) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Workers for the cell grid: a positive count or $(b,auto) for the detected \
             core count (also the default).")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-cell attempt timeout in seconds (default: none; 10s under --chaos).")
  in
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget per cell beyond the first attempt (default 1).")
  in
  let chaos =
    Arg.(
      value & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Inject the stock deterministic fault plan (crashes, hangs, transient raises, \
             corrupt frames) seeded by SEED. Testing aid: with enough --retries the \
             artifact is identical to a fault-free run.")
  in
  let shard =
    Arg.(
      value
      & opt (some shard_conv) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Run as distributed shard worker I of N (zero-based): compute only the cells \
             this shard owns, guarded by a lease in --checkpoint-dir, and write them to the \
             shard's CRC-sealed checkpoint instead of an artifact. Combine the shards with \
             $(b,flowsched merge).")
  in
  let checkpoint_dir =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Shared directory for distributed shard state: per-shard manifests, checkpoints \
             and lease files (requires --shard).")
  in
  let lease_ttl =
    Arg.(
      value & opt float 60.
      & info [ "lease-ttl" ] ~docv:"SECS"
          ~doc:
            "Staleness horizon for shard leases: a shard whose lease heartbeat is older \
             than SECS (or whose same-host pid is dead) can be taken over.")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Append each completed cell to FILE (JSONL) as it settles, so an interrupted \
             run can be resumed with --resume.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip cells already present in the --checkpoint file instead of truncating it.")
  in
  let out =
    Arg.(
      value & opt string "sweep.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output JSON artifact path ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a (workload x policy x seed) grid through the parallel experiment pool and \
          write a machine-readable JSON artifact.")
    Term.(
      const sweep $ kinds $ m $ rates $ rounds_list $ max_demand $ seeds $ policy_names
      $ with_lp $ backend_term $ jobs $ timeout $ retries $ chaos $ shard $ checkpoint_dir
      $ lease_ttl $ checkpoint $ resume $ out $ trace_term $ metrics_term)

(* ----- merge ----- *)

let merge kinds m rates rounds_list max_demand seeds policy_names with_lp dir allow_partial
    out =
  let cells = sweep_cells_or_exit ~kinds ~m ~rates ~rounds_list ~max_demand ~seeds ~with_lp in
  match Flowsched_dist.Merge.sweep ~dir ~policies:policy_names cells with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok (results, report) ->
      let module M = Flowsched_dist.Merge in
      Printf.eprintf
        "merge: %d/%d cells from %d of %d shards (%d duplicate(s), all byte-equal)\n%!"
        report.M.found_cells report.M.expected_cells
        (List.length report.M.manifests_present)
        report.M.shards report.M.duplicate_cells;
      if report.M.missing <> [] then begin
        List.iter
          (fun (key, owner) ->
            Printf.eprintf "  missing: %s (owned by shard %d)\n" key owner)
          report.M.missing;
        if not allow_partial then begin
          Printf.eprintf
            "error: %d cell(s) missing — finish (or take over) the owning shards, or pass \
             --allow-partial\n"
            (List.length report.M.missing);
          exit 1
        end
      end;
      (* jobs:1 — the merged artifact must be byte-identical to what one
         uninterrupted single-box [--jobs 1] run would have written. *)
      let artifact = Flowsched_sim.Report.sweep_json ~jobs:1 results in
      let data = Flowsched_util.Json.to_string artifact ^ "\n" in
      (match out with
      | "-" -> print_string data
      | path ->
          Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data);
          Printf.eprintf "wrote %s (%d cells)\n%!" path report.M.found_cells)

let merge_cmd =
  let list_of kind = Arg.list kind in
  let kinds =
    Arg.(
      value
      & opt (list_of string) [ "poisson" ]
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:"Comma-separated workload kinds — must match the sharded sweep's flags.")
  in
  let m = Arg.(value & opt int 6 & info [ "m" ] ~doc:"Ports per side.") in
  let rates =
    Arg.(
      value & opt (list_of float) [ 2.0; 4.0 ]
      & info [ "rates" ] ~docv:"RATES" ~doc:"Comma-separated arrival rates.")
  in
  let rounds_list =
    Arg.(
      value & opt (list_of int) [ 6; 8 ]
      & info [ "rounds" ] ~docv:"ROUNDS" ~doc:"Comma-separated generation lengths (T).")
  in
  let max_demand =
    Arg.(value & opt int 3 & info [ "max-demand" ] ~doc:"Demand bound (poisson-demands).")
  in
  let seeds =
    Arg.(
      value & opt (list_of int) [ 1 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated PRNG seeds, one cell each.")
  in
  let policy_names =
    Arg.(
      value
      & opt (list_of string) [ "maxcard"; "minrtime"; "maxweight" ]
      & info [ "policies" ] ~docv:"POLICIES"
          ~doc:"Comma-separated policies — must match the sharded sweep's flags.")
  in
  let with_lp =
    Arg.(value & flag & info [ "lp" ] ~doc:"The sharded sweep ran with --lp.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir"; "checkpoint-dir" ] ~docv:"DIR"
          ~doc:"The shard checkpoint directory the workers wrote into.")
  in
  let allow_partial =
    Arg.(
      value & flag
      & info [ "allow-partial" ]
          ~doc:
            "Write the artifact even when cells are missing (default: missing cells are an \
             error so a half-finished distributed run cannot masquerade as a complete one).")
  in
  let out =
    Arg.(
      value & opt string "sweep.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output JSON artifact path ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Merge the per-shard checkpoints of a distributed sweep (run with --shard I/N \
          --checkpoint-dir DIR) into the single artifact an uninterrupted --jobs 1 run \
          would have written. Validates every shard manifest against this grid's \
          fingerprint, requires duplicated cells to agree byte-for-byte, and refuses \
          partial grids unless --allow-partial.")
    Term.(
      const merge $ kinds $ m $ rates $ rounds_list $ max_demand $ seeds $ policy_names
      $ with_lp $ dir $ allow_partial $ out)

(* ----- matrix ----- *)

let matrix kinds mode_names m rates rounds_list max_demand seeds policy_names with_lp
    backend jobs timeout retries checkpoint resume out trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let module Scenario = Flowsched_scenarios.Scenario in
  let module Matrix = Flowsched_scenarios.Matrix in
  let policies = List.map (fun name -> policy_of_name name 1) policy_names in
  if resume && checkpoint = None then begin
    Printf.eprintf "error: --resume requires --checkpoint FILE\n";
    exit 1
  end;
  let parse_or_exit parse what s =
    match parse s with
    | Ok v -> v
    | Error msg ->
        Printf.eprintf "error: %s %s\n" what msg;
        exit 1
  in
  let kinds = List.map (parse_or_exit Scenario.of_string "") kinds in
  let modes = List.map (parse_or_exit Matrix.mode_of_string "") mode_names in
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun mode ->
            List.concat_map
              (fun rate ->
                List.concat_map
                  (fun rounds ->
                    List.map
                      (fun seed ->
                        {
                          Matrix.scenario =
                            { Scenario.kind; m; rate; rounds; max_demand; seed };
                          mode;
                          lp = with_lp;
                        })
                      seeds)
                  rounds_list)
              rates)
          modes)
      kinds
  in
  if cells = [] then begin
    Printf.eprintf "error: empty matrix grid (check --kinds/--modes/--rates/--seeds)\n";
    exit 1
  end;
  let jobs = match jobs with Some j -> j | None -> Flowsched_exec.Pool.default_jobs () in
  Printf.eprintf "matrix: %d cells x %d policies, %d workers (%s)\n%!" (List.length cells)
    (List.length policies) jobs
    (Flowsched_domains.Backend.to_string backend);
  let t0 = Unix.gettimeofday () in
  let progress msg = Printf.eprintf "  %s\n%!" msg in
  let results =
    try
      Flowsched_obs.Trace.with_span "matrix.run" (fun () ->
          match checkpoint with
          | None -> Matrix.run ~policies ~progress ~backend ~jobs ?timeout ?retries cells
          | Some path ->
              let ckpt = Flowsched_sim.Checkpoint.open_ ~path ~resume in
              if resume then
                Printf.eprintf "  resuming: %d of %d cells already checkpointed\n%!"
                  (Flowsched_sim.Checkpoint.loaded ckpt)
                  (List.length cells);
              Fun.protect
                ~finally:(fun () -> Flowsched_sim.Checkpoint.close ckpt)
                (fun () ->
                  Matrix.run_checkpointed ~policies ~progress ~backend ~jobs ?timeout
                    ?retries ckpt cells))
    with Flowsched_exec.Pool.Interrupted ->
      Printf.eprintf "interrupted: pool drained and workers reaped\n";
      (match checkpoint with
      | Some path ->
          Printf.eprintf "  completed cells are saved; rerun with --checkpoint %s --resume\n"
            path
      | None -> Printf.eprintf "  rerun with --checkpoint FILE to make progress durable\n");
      finish_obs ~trace ~metrics ();
      exit 130
  in
  (* No jobs/timing metadata in the artifact: the bytes are the grid's
     deterministic content alone, so --jobs 1 vs --jobs N and every backend
     produce identical files (the scenarios-smoke target diffs them). *)
  let data = Flowsched_util.Json.to_string (Matrix.to_json results) ^ "\n" in
  (match out with
  | "-" -> print_string data
  | path ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data);
      Printf.eprintf "wrote %s (%d cells, %.1fs)\n%!" path (List.length cells)
        (Unix.gettimeofday () -. t0))

let matrix_cmd =
  let list_of kind = Arg.list kind in
  let kinds =
    Arg.(
      value
      & opt (list_of string)
          [ "poisson"; "pareto"; "lognormal"; "bursty"; "diurnal"; "flash-crowd"; "bimodal" ]
      & info [ "kinds" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated scenario kinds, any of poisson | poisson-demands | uniform | \
             skewed | hotspot | pareto | lognormal | bursty | diurnal | flash-crowd | \
             bimodal | staircase | crossflow, with optional :parameters (e.g. pareto:1.2).")
  in
  let modes =
    Arg.(
      value
      & opt (list_of string) [ "flows"; "endpoint"; "coflow" ]
      & info [ "modes" ] ~docv:"MODES"
          ~doc:
            "Comma-separated problem modes: flows (the paper's problem), \
             endpoint[:nodes[:cap]] (per-node capacities), coflow[:groups[:max_weight]] \
             (weighted coflow completion).")
  in
  let m = Arg.(value & opt int 6 & info [ "m" ] ~doc:"Ports per side.") in
  let rates =
    Arg.(
      value & opt (list_of float) [ 3.0 ]
      & info [ "rates" ] ~docv:"RATES" ~doc:"Comma-separated arrival rates (the paper's M).")
  in
  let rounds_list =
    Arg.(
      value & opt (list_of int) [ 8 ]
      & info [ "rounds" ] ~docv:"ROUNDS" ~doc:"Comma-separated generation lengths (T).")
  in
  let max_demand =
    Arg.(value & opt int 3 & info [ "max-demand" ] ~doc:"Demand bound (demand-carrying kinds).")
  in
  let seeds =
    Arg.(
      value & opt (list_of int) [ 1 ]
      & info [ "seeds" ] ~docv:"SEEDS" ~doc:"Comma-separated PRNG seeds, one cell each.")
  in
  let policy_names =
    Arg.(
      value
      & opt (list_of string) [ "maxcard"; "minrtime"; "maxweight"; "fifo" ]
      & info [ "policies" ] ~docv:"POLICIES"
          ~doc:
            "Comma-separated policies for the flows/endpoint modes \
             (maxcard|minrtime|maxweight|fifo|random); coflow mode runs its own \
             wsebf/sebf/flow-fifo set.")
  in
  let with_lp =
    Arg.(value & flag & info [ "lp" ] ~doc:"Also compute the LP lower bounds per cell (slow).")
  in
  let jobs =
    Arg.(
      value
      & opt (some jobs_conv) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:"Workers for the cell grid: a positive count or $(b,auto) (the default).")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS" ~doc:"Per-cell attempt timeout in seconds.")
  in
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget per cell beyond the first attempt (default 1).")
  in
  let checkpoint =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Append each completed cell to FILE (JSONL, CRC-sealed per line) as it settles, \
             so an interrupted run can be resumed with --resume.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Skip cells already present in the --checkpoint file instead of truncating it.")
  in
  let out =
    Arg.(
      value & opt string "matrix.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output JSON artifact path ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run a policy x workload x mode grid over the scenario zoo (including the \
          endpoint-capacity and weighted-coflow problem variants) and write a \
          machine-readable JSON artifact, byte-identical across --jobs and backends.")
    Term.(
      const matrix $ kinds $ modes $ m $ rates $ rounds_list $ max_demand $ seeds
      $ policy_names $ with_lp $ backend_term $ jobs $ timeout $ retries $ checkpoint
      $ resume $ out $ trace_term $ metrics_term)

(* ----- check-trace ----- *)

let check_trace path =
  let module J = Flowsched_util.Json in
  let data =
    try
      if path = "-" then In_channel.input_all stdin
      else In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  in
  match J.parse data with
  | Error msg ->
      Printf.eprintf "error: %s is not valid JSON: %s\n" path msg;
      exit 1
  | Ok v -> (
      match J.member "traceEvents" v with
      | Some (J.Arr (_ :: _ as events)) ->
          Printf.printf "%s: valid trace, %d events\n" path (List.length events)
      | Some (J.Arr []) ->
          Printf.eprintf "error: %s has an empty traceEvents array\n" path;
          exit 1
      | _ ->
          Printf.eprintf "error: %s has no traceEvents array\n" path;
          exit 1)

let check_trace_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file written by --trace ('-' for stdin).")
  in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:
         "Validate that a file produced by --trace parses as Chrome trace-event JSON with a \
          non-empty traceEvents array.")
    Term.(const check_trace $ path)

(* ----- rtt (Theorem 2 reduction demo) ----- *)

let rtt teachers classes seed =
  let g = Flowsched_util.Prng.create seed in
  let tsets =
    Array.init teachers (fun _ ->
        let size = 2 + Flowsched_util.Prng.int g 2 in
        let size = min size classes in
        Flowsched_util.Sampling.sample_without_replacement g size 3
        |> List.map (fun h -> h + 1))
  in
  let assigns =
    Array.init teachers (fun i ->
        Flowsched_util.Sampling.sample_without_replacement g (List.length tsets.(i)) classes)
  in
  let instance = { Hardness.teachers; classes; tsets; assigns } in
  (match Hardness.validate instance with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "error: generated RTT invalid (%s); try another seed\n" msg;
      exit 1);
  Printf.printf "Restricted Timetable instance (seed %d):\n" seed;
  Array.iteri
    (fun i ts ->
      Printf.printf "  teacher %d: hours {%s}, classes {%s}\n" i
        (String.concat "," (List.map string_of_int ts))
        (String.concat "," (List.map string_of_int assigns.(i))))
    tsets;
  let sat = Hardness.satisfiable instance in
  Printf.printf "satisfiable: %b\n" sat;
  let red = Hardness.reduce instance in
  Printf.printf "reduced FS-MRT instance: %d flows on a %d-in/%d-out switch, target rho = %d\n"
    (Instance.n red.Hardness.instance) red.Hardness.instance.Instance.m
    red.Hardness.instance.Instance.m' red.Hardness.rho;
  (match Exact.feasible_with_rho red.Hardness.instance ~rho:3 with
  | Some s ->
      Printf.printf "exact solver: schedulable with max response 3\n";
      (match Hardness.timetable_of_schedule instance red s with
      | Ok f ->
          Printf.printf "extracted timetable valid: %b\n" (Hardness.check_timetable instance f)
      | Error e -> Printf.printf "extraction failed: %s\n" e)
  | None ->
      Printf.printf "exact solver: NOT schedulable with max response 3 (needs 4)\n");
  Printf.printf "equivalence holds: %b\n"
    (sat = (Exact.feasible_with_rho red.Hardness.instance ~rho:3 <> None))

let rtt_cmd =
  let teachers = Arg.(value & opt int 3 & info [ "teachers" ] ~doc:"Number of teachers.") in
  let classes = Arg.(value & opt int 4 & info [ "classes" ] ~doc:"Number of classes.") in
  Cmd.v
    (Cmd.info "rtt"
       ~doc:"Demonstrate the Theorem 2 hardness reduction on a random RTT instance.")
    Term.(const rtt $ teachers $ classes $ seed_term)

(* ----- open-problem ----- *)

let open_problem m rounds trials seed =
  let s = Open_problem.study ~seed ~m ~rounds ~trials in
  Printf.printf "Section 6 open problem: slack-1 request sequences on a %dx%d switch\n" m m;
  Printf.printf "  trials:              %d (%d flows total)\n" s.Open_problem.trials
    s.Open_problem.flows_total;
  Printf.printf "  worst slack:         %d\n" s.Open_problem.worst_slack;
  Printf.printf "  worst LP rho:        %d\n" s.Open_problem.worst_fractional_rho;
  Printf.printf "  worst MinRTime rho:  %d\n" s.Open_problem.worst_heuristic;
  (match s.Open_problem.worst_exact with
  | Some k -> Printf.printf "  worst exact rho:     %d\n" k
  | None -> Printf.printf "  worst exact rho:     (instances too large)\n")

let open_problem_cmd =
  let m = Arg.(value & opt int 5 & info [ "ports" ] ~doc:"Ports per side.") in
  let rounds = Arg.(value & opt int 8 & info [ "rounds" ] ~doc:"Generation rounds.") in
  let trials = Arg.(value & opt int 10 & info [ "trials" ] ~doc:"Generated instances.") in
  Cmd.v
    (Cmd.info "open-problem"
       ~doc:"Empirically probe the paper's Section 6 constant-response conjecture.")
    Term.(const open_problem $ m $ rounds $ trials $ seed_term)

(* ----- main ----- *)

let () =
  let doc = "scheduling flows on a switch to optimize response times" in
  let info = Cmd.info "flowsched" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd;
        lp_bound_cmd;
        solve_art_cmd;
        solve_mrt_cmd;
        simulate_cmd;
        serve_cmd;
        exact_cmd;
        figures_cmd;
        sweep_cmd;
        merge_cmd;
        matrix_cmd;
        check_trace_cmd;
        rtt_cmd;
        open_problem_cmd;
      ]
  in
  exit (Cmd.eval group)
