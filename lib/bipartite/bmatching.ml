type t = { graph : Bgraph.t; left_copy : int array; right_copy : int array }

let expand (g : Bgraph.t) ~cl ~cr =
  let ne = Bgraph.num_edges g in
  let off_l = Array.make (g.Bgraph.nl + 1) 0 in
  for u = 0 to g.Bgraph.nl - 1 do
    if cl.(u) < 0 then invalid_arg "Bmatching.expand: negative capacity";
    off_l.(u + 1) <- off_l.(u) + max cl.(u) 1
  done;
  let off_r = Array.make (g.Bgraph.nr + 1) 0 in
  for v = 0 to g.Bgraph.nr - 1 do
    if cr.(v) < 0 then invalid_arg "Bmatching.expand: negative capacity";
    off_r.(v + 1) <- off_r.(v) + max cr.(v) 1
  done;
  let next_l = Array.make g.Bgraph.nl 0 and next_r = Array.make g.Bgraph.nr 0 in
  let left_copy = Array.make ne 0 and right_copy = Array.make ne 0 in
  let pairs =
    Array.init ne (fun e ->
        let { Bgraph.u; v } = Bgraph.edge g e in
        if cl.(u) = 0 || cr.(v) = 0 then
          invalid_arg "Bmatching.expand: edge incident to zero-capacity vertex";
        let ku = next_l.(u) mod cl.(u) and kv = next_r.(v) mod cr.(v) in
        next_l.(u) <- next_l.(u) + 1;
        next_r.(v) <- next_r.(v) + 1;
        left_copy.(e) <- ku;
        right_copy.(e) <- kv;
        (off_l.(u) + ku, off_r.(v) + kv))
  in
  let graph =
    Bgraph.create ~nl:off_l.(g.Bgraph.nl) ~nr:off_r.(g.Bgraph.nr) pairs
  in
  { graph; left_copy; right_copy }

(* Incremental maximum b-matching over unit-demand flows.

   Rather than maintain a matching on per-flow edges (useless across slots:
   every scheduled flow leaves, taking its matched edges with it), we run
   max-flow on the PORT-PAIR graph: pair (u, v) is one edge of capacity
   [live], the number of pending flows from u to v, with node capacities
   cap_in / cap_out.  Unit-demand flows on the same pair are interchangeable,
   so the flow value equals the maximum number of schedulable flows, and the
   pair-level flow [x] survives churn — when a bound (matched) flow departs,
   its unit rebinds to a surviving parallel flow in O(1) instead of
   re-deriving the matching.

   A dirty flag preserves the invariant "not dirty implies [x] is a maximum
   flow", justified by residual-edge-set arguments (augmenting-path existence
   depends only on which residual edges exist, not their capacities):

   - adding a flow to an unsaturated pair, or binding it immediately when
     both ports have spare degree, keeps the current flow maximum;
   - adding a flow to a saturated pair creates a forward residual edge:
     dirty;
   - removing a free flow, or a bound flow that rebinds, only shrinks the
     residual edge set: still maximum;
   - removing a bound flow with no parallel survivor loses a unit: dirty.

   [refresh] clears the flag by BFS augmentation over ports (O(nl * nr) per
   search, one failed search to certify maximality), so steady-state
   per-slot cost is proportional to churn, independent of queue depth. *)
module Incremental = struct
  type fstate = { pair : int; mutable is_bound : bool }

  type pstate = {
    mutable live : int;  (* pending flows on this pair = edge capacity *)
    mutable x : int;  (* matched units; equals the number of bound flows *)
    free_q : int Queue.t;  (* free live flows, oldest first, lazy tombstones *)
    mutable bound : int list;  (* bound flows, lazy tombstones *)
  }

  type stats = { fast_binds : int; rebinds : int; searches : int; augments : int }

  type t = {
    nl : int;
    nr : int;
    cap_in : int array;
    cap_out : int array;
    pairs : pstate option array;  (* dense, nl * nr; allocated on first use *)
    flows : (int, fstate) Hashtbl.t;
    deg_l : int array;
    deg_r : int array;
    mutable value : int;
    mutable dirty : bool;
    (* BFS scratch: -2 unvisited, -1 BFS source, >= 0 the pair we came by. *)
    prev_l : int array;
    prev_r : int array;
    bfs_q : int Queue.t;  (* left port u encoded as u, right port v as nl + v *)
    mutable fast_binds : int;
    mutable rebinds : int;
    mutable searches : int;
    mutable augments : int;
  }

  let create ~nl ~nr ~cap_in ~cap_out =
    if nl < 1 || nr < 1 then invalid_arg "Bmatching.Incremental.create: empty side";
    if Array.length cap_in <> nl || Array.length cap_out <> nr then
      invalid_arg "Bmatching.Incremental.create: capacity array length";
    Array.iter
      (fun c -> if c < 0 then invalid_arg "Bmatching.Incremental.create: negative capacity")
      cap_in;
    Array.iter
      (fun c -> if c < 0 then invalid_arg "Bmatching.Incremental.create: negative capacity")
      cap_out;
    {
      nl;
      nr;
      cap_in = Array.copy cap_in;
      cap_out = Array.copy cap_out;
      pairs = Array.make (nl * nr) None;
      flows = Hashtbl.create 256;
      deg_l = Array.make nl 0;
      deg_r = Array.make nr 0;
      value = 0;
      dirty = false;
      prev_l = Array.make nl (-2);
      prev_r = Array.make nr (-2);
      bfs_q = Queue.create ();
      fast_binds = 0;
      rebinds = 0;
      searches = 0;
      augments = 0;
    }

  let pstate t p =
    match t.pairs.(p) with
    | Some ps -> ps
    | None ->
        let ps = { live = 0; x = 0; free_q = Queue.create (); bound = [] } in
        t.pairs.(p) <- Some ps;
        ps

  (* Pop the oldest live free flow of [ps], dropping tombstones. *)
  let rec pop_free t ps =
    match Queue.take_opt ps.free_q with
    | None -> None
    | Some id -> (
        match Hashtbl.find_opt t.flows id with
        | Some fs when not fs.is_bound -> Some id
        | _ -> pop_free t ps)

  let rec pop_bound t ps =
    match ps.bound with
    | [] -> None
    | id :: rest -> (
        ps.bound <- rest;
        match Hashtbl.find_opt t.flows id with
        | Some fs when fs.is_bound -> Some id
        | _ -> pop_bound t ps)

  let add t ~id ~src ~dst =
    if src < 0 || src >= t.nl || dst < 0 || dst >= t.nr then
      invalid_arg "Bmatching.Incremental.add: port out of range";
    if Hashtbl.mem t.flows id then invalid_arg "Bmatching.Incremental.add: duplicate flow id";
    let p = (src * t.nr) + dst in
    let ps = pstate t p in
    ps.live <- ps.live + 1;
    let fs = { pair = p; is_bound = false } in
    Hashtbl.add t.flows id fs;
    if t.deg_l.(src) < t.cap_in.(src) && t.deg_r.(dst) < t.cap_out.(dst) then begin
      fs.is_bound <- true;
      ps.x <- ps.x + 1;
      ps.bound <- id :: ps.bound;
      t.deg_l.(src) <- t.deg_l.(src) + 1;
      t.deg_r.(dst) <- t.deg_r.(dst) + 1;
      t.value <- t.value + 1;
      t.fast_binds <- t.fast_binds + 1
    end
    else begin
      Queue.push id ps.free_q;
      (* The pair was saturated before this arrival: a forward residual edge
         just appeared, so an augmenting path may now exist. *)
      if ps.x = ps.live - 1 then t.dirty <- true
    end

  let remove t id =
    match Hashtbl.find_opt t.flows id with
    | None -> invalid_arg "Bmatching.Incremental.remove: unknown flow id"
    | Some fs ->
        let p = fs.pair in
        let ps = match t.pairs.(p) with Some ps -> ps | None -> assert false in
        Hashtbl.remove t.flows id;
        ps.live <- ps.live - 1;
        if fs.is_bound then begin
          match pop_free t ps with
          | Some id' ->
              (* Hand the matched unit to a surviving parallel flow. *)
              (Hashtbl.find t.flows id').is_bound <- true;
              ps.bound <- id' :: ps.bound;
              t.rebinds <- t.rebinds + 1
          | None ->
              ps.x <- ps.x - 1;
              let u = p / t.nr and v = p mod t.nr in
              t.deg_l.(u) <- t.deg_l.(u) - 1;
              t.deg_r.(v) <- t.deg_r.(v) - 1;
              t.value <- t.value - 1;
              t.dirty <- true
        end

  (* One BFS over ports: multi-source from left ports with spare in-degree,
     forward along pairs with x < live, backward along pairs with x > 0,
     terminating at a right port with spare out-degree.  On success, walk the
     BFS tree back applying the path: bind a free flow on forward pairs,
     unbind a bound flow on backward pairs. *)
  let augment_once t =
    t.searches <- t.searches + 1;
    Array.fill t.prev_l 0 t.nl (-2);
    Array.fill t.prev_r 0 t.nr (-2);
    Queue.clear t.bfs_q;
    for u = 0 to t.nl - 1 do
      if t.deg_l.(u) < t.cap_in.(u) then begin
        t.prev_l.(u) <- -1;
        Queue.push u t.bfs_q
      end
    done;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty t.bfs_q) do
      let node = Queue.pop t.bfs_q in
      if node < t.nl then begin
        let u = node in
        let v = ref 0 in
        while !found < 0 && !v < t.nr do
          (match t.pairs.((u * t.nr) + !v) with
          | Some ps when ps.x < ps.live && t.prev_r.(!v) = -2 ->
              t.prev_r.(!v) <- (u * t.nr) + !v;
              if t.deg_r.(!v) < t.cap_out.(!v) then found := !v
              else Queue.push (t.nl + !v) t.bfs_q
          | _ -> ());
          incr v
        done
      end
      else begin
        let v = node - t.nl in
        for u = 0 to t.nl - 1 do
          match t.pairs.((u * t.nr) + v) with
          | Some ps when ps.x > 0 && t.prev_l.(u) = -2 ->
              t.prev_l.(u) <- (u * t.nr) + v;
              Queue.push u t.bfs_q
          | _ -> ()
        done
      end
    done;
    if !found < 0 then false
    else begin
      let rec walk v =
        let p = t.prev_r.(v) in
        let ps = match t.pairs.(p) with Some ps -> ps | None -> assert false in
        (match pop_free t ps with
        | Some id ->
            (Hashtbl.find t.flows id).is_bound <- true;
            ps.x <- ps.x + 1;
            ps.bound <- id :: ps.bound
        | None -> assert false (* x < live implies a live free flow exists *));
        let u = p / t.nr in
        if t.prev_l.(u) = -1 then u
        else begin
          let p' = t.prev_l.(u) in
          let ps' = match t.pairs.(p') with Some ps -> ps | None -> assert false in
          (match pop_bound t ps' with
          | Some id ->
              (Hashtbl.find t.flows id).is_bound <- false;
              ps'.x <- ps'.x - 1;
              Queue.push id ps'.free_q
          | None -> assert false (* x > 0 implies a bound flow exists *));
          walk (p' mod t.nr)
        end
      in
      let src = walk !found in
      t.deg_l.(src) <- t.deg_l.(src) + 1;
      t.deg_r.(!found) <- t.deg_r.(!found) + 1;
      t.value <- t.value + 1;
      t.augments <- t.augments + 1;
      true
    end

  let refresh t =
    if t.dirty then begin
      while augment_once t do
        ()
      done;
      t.dirty <- false
    end

  let cardinality t =
    refresh t;
    t.value

  let pending t = Hashtbl.length t.flows
  let mem t id = Hashtbl.mem t.flows id

  let matched t =
    refresh t;
    let out = ref [] in
    for u = t.nl - 1 downto 0 do
      for v = t.nr - 1 downto 0 do
        match t.pairs.((u * t.nr) + v) with
        | Some ps when ps.bound <> [] ->
            let ids =
              List.filter
                (fun id ->
                  match Hashtbl.find_opt t.flows id with
                  | Some fs -> fs.is_bound
                  | None -> false)
                ps.bound
            in
            ps.bound <- ids;
            out := ids @ !out
        | _ -> ()
      done
    done;
    !out

  let take_matched t =
    let ids = matched t in
    List.iter (fun id -> remove t id) ids;
    ids

  let stats t =
    { fast_binds = t.fast_binds; rebinds = t.rebinds; searches = t.searches; augments = t.augments }
end

let incremental = Incremental.create

let max_copy_degree (g : Bgraph.t) ~cl ~cr =
  let dl, dr = Bgraph.degrees g in
  let worst = ref 0 in
  Array.iteri
    (fun u d -> if d > 0 then worst := max !worst ((d + cl.(u) - 1) / cl.(u)))
    dl;
  Array.iteri
    (fun v d -> if d > 0 then worst := max !worst ((d + cr.(v) - 1) / cr.(v)))
    dr;
  !worst
