module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_decompositions = Metrics.counter "bvn.decompositions"
let c_classes = Metrics.counter "bvn.color_classes"

let classes_of_coloring ne colors =
  let ncolors = Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors in
  let classes = Array.make ncolors [] in
  for e = ne - 1 downto 0 do
    classes.(colors.(e)) <- e :: classes.(colors.(e))
  done;
  (* Largest classes first: when color classes become rounds, this front-
     loads the work. *)
  Array.sort (fun a b -> compare (List.length b) (List.length a)) classes;
  Metrics.incr c_decompositions;
  Metrics.incr ~by:ncolors c_classes;
  classes

let decompose g =
  let ne = Bgraph.num_edges g in
  if ne = 0 then [||]
  else
    Trace.with_span "bvn.decompose"
      ~args:(fun () -> [ ("edges", Flowsched_util.Json.Int ne) ])
      (fun () -> classes_of_coloring ne (Edge_coloring.color g))

let decompose_b_matching g ~cl ~cr =
  let ne = Bgraph.num_edges g in
  if ne = 0 then [||]
  else
    Trace.with_span "bvn.decompose_b_matching"
      ~args:(fun () -> [ ("edges", Flowsched_util.Json.Int ne) ])
      (fun () ->
        let expansion = Bmatching.expand g ~cl ~cr in
        (* Edge i of the expansion is edge i of g, so the expanded coloring is
           directly a coloring of g's edges into b-matchings. *)
        classes_of_coloring ne (Edge_coloring.color expansion.Bmatching.graph))
