(** Reduction from b-matchings to matchings by port replication.

    Theorem 1's general-capacity case replicates each port [p] into [c_p]
    copies and spreads the incident edges round-robin over the copies; a
    matching in the expanded graph is a b-matching in the original.  The
    expansion keeps edge indices aligned: edge [i] of the expanded graph
    corresponds to edge [i] of the input. *)

type t = {
  graph : Bgraph.t;  (** Expanded unit-capacity graph. *)
  left_copy : int array;  (** Copy index assigned to each edge's left end. *)
  right_copy : int array;
}

val expand : Bgraph.t -> cl:int array -> cr:int array -> t
(** Capacities must be >= 1 for every vertex incident to an edge. *)

val max_copy_degree : Bgraph.t -> cl:int array -> cr:int array -> int
(** The maximum degree of the expanded graph:
    [max over vertices of ceil(degree / capacity)]. *)

(** {1 Incremental matching}

    Maximum b-matching over unit-demand flows, maintained across arrivals
    and departures instead of recomputed from scratch each slot.

    The structure runs max-flow on the {e port-pair graph}: pair [(u, v)] is
    a single edge whose capacity is the number of pending flows from [u] to
    [v], with node capacities [cap_in] / [cap_out].  Unit-demand flows on a
    pair are interchangeable, so the flow value is the maximum number of
    simultaneously schedulable flows (Theorem 1's matching formulation), and
    the pair-level flow persists across slots: when a matched flow departs,
    its unit {e rebinds} to a surviving parallel flow in O(1).  Only
    operations that can actually change the optimum (arrival on a saturated
    pair, departure of a matched flow with no parallel survivor) mark the
    structure dirty; a refresh then re-augments around the touched ports in
    O(nl * nr) per BFS search.  Steady-state per-slot cost is proportional
    to churn, independent of queue depth.

    Each pending flow is either {e bound} (it carries one matched unit) or
    free.  Binding is deterministic and oldest-first per pair, so for a
    fixed operation sequence the matched set is reproducible. *)
module Incremental : sig
  type t

  type stats = {
    fast_binds : int;  (** Arrivals bound immediately (both ports had spare). *)
    rebinds : int;  (** Departing bound flows whose unit moved to a parallel flow. *)
    searches : int;  (** BFS augmentation searches run (including the failed certifying one). *)
    augments : int;  (** Searches that found an augmenting path. *)
  }

  val create : nl:int -> nr:int -> cap_in:int array -> cap_out:int array -> t
  (** Capacity arrays must have lengths [nl] and [nr]; they are copied. *)

  val add : t -> id:int -> src:int -> dst:int -> unit
  (** Register a pending unit-demand flow.  Raises [Invalid_argument] on a
      duplicate [id] or an out-of-range port. *)

  val remove : t -> int -> unit
  (** Withdraw a pending flow (scheduled elsewhere, cancelled, ...).  Raises
      [Invalid_argument] if the id is not pending. *)

  val cardinality : t -> int
  (** Size of a maximum b-matching over the pending flows (re-augmenting
      first if needed).  Equals [Matching.max_cardinality_size] on the
      {!expand}ed per-flow graph — the exactness gate tests assert this. *)

  val matched : t -> int list
  (** Ids of the flows forming a maximum b-matching, grouped by (src, dst)
      pair in increasing order.  Re-augments first if needed. *)

  val take_matched : t -> int list
  (** {!matched}, then {!remove} each returned flow — the per-slot schedule
      step: the matched flows transmit and depart, and their matched units
      rebind to surviving parallel flows as the warm start for the next
      slot. *)

  val pending : t -> int
  (** Number of pending flows. *)

  val mem : t -> int -> bool
  val stats : t -> stats
end

val incremental : nl:int -> nr:int -> cap_in:int array -> cap_out:int array -> Incremental.t
(** Alias for {!Incremental.create}. *)
