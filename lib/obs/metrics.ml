let n_buckets = 64

(* ------------------------------------------------------------------ *)
(* Domain-local cells behind process-global handles.                    *)
(*                                                                      *)
(* A handle is just a name plus a [Domain.DLS] key: every domain that    *)
(* touches the handle lazily materializes its own private cell, so the   *)
(* hot-path mutation ([incr], [observe]) is an unsynchronized record     *)
(* write with no cross-domain traffic.  Each domain also keeps a local   *)
(* registry (name -> cell) of the cells it materialized; [snapshot],     *)
(* [reset], and [absorb] operate on that local registry only.  Executors *)
(* (the fork pool and the domains executor alike) carry per-worker       *)
(* snapshots back to the coordinating domain and [absorb] them there, so *)
(* process totals flow through the same associative merge algebra        *)
(* regardless of how work was spread out.                                *)
(* ------------------------------------------------------------------ *)

type ccell = { mutable c : int }
type gcell = { mutable g : float }
type hcell = { hbuckets : int array; mutable hsum : float; mutable hcount : int }
type cell = Cc of ccell | Gc of gcell | Hc of hcell

let local_key : (string, cell) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let local () = Domain.DLS.get local_key

type counter = { ckey : ccell Domain.DLS.key }
type gauge = { gkey : gcell Domain.DLS.key }
type histogram = { hkey : hcell Domain.DLS.key }

type handle = Ch of counter | Gh of gauge | Hh of histogram

(* Name -> handle, shared by all domains; guarded by a mutex because
   handles can be created dynamically (e.g. [absorb] of a snapshot naming
   a metric this process never registered). *)
let handles : (string, handle) Hashtbl.t = Hashtbl.create 64
let handles_mutex = Mutex.create ()

let kind_name = function Ch _ -> "counter" | Gh _ -> "gauge" | Hh _ -> "histogram"

let register name make match_kind =
  Mutex.protect handles_mutex (fun () ->
      match Hashtbl.find_opt handles name with
      | Some h -> (
          match match_kind h with
          | Some x -> x
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_name h)))
      | None ->
          let h = make () in
          Hashtbl.add handles name h;
          (match match_kind h with Some x -> x | None -> assert false))

(* Creating a handle also materializes its cell in the creating domain, so
   statically-registered metrics (handles made at module init, on the main
   domain) show up in that domain's snapshot at zero even if never touched
   there — a coordinator that only absorbs worker diffs (which filter
   zeros) must still report the same metric set as an inline run. *)
let counter name =
  let h =
    register name
      (fun () ->
        Ch
          {
            ckey =
              Domain.DLS.new_key (fun () ->
                  let cell = { c = 0 } in
                  Hashtbl.replace (local ()) name (Cc cell);
                  cell);
          })
      (function Ch h -> Some h | _ -> None)
  in
  ignore (Domain.DLS.get h.ckey : ccell);
  h

let gauge name =
  let h =
    register name
      (fun () ->
        Gh
          {
            gkey =
              Domain.DLS.new_key (fun () ->
                  let cell = { g = 0. } in
                  Hashtbl.replace (local ()) name (Gc cell);
                  cell);
          })
      (function Gh h -> Some h | _ -> None)
  in
  ignore (Domain.DLS.get h.gkey : gcell);
  h

let histogram name =
  let h =
    register name
      (fun () ->
        Hh
          {
            hkey =
              Domain.DLS.new_key (fun () ->
                  let cell = { hbuckets = Array.make n_buckets 0; hsum = 0.; hcount = 0 } in
                  Hashtbl.replace (local ()) name (Hc cell);
                  cell);
          })
      (function Hh h -> Some h | _ -> None)
  in
  ignore (Domain.DLS.get h.hkey : hcell);
  h

let incr ?(by = 1) h =
  let cell = Domain.DLS.get h.ckey in
  cell.c <- cell.c + by

let counter_value h = (Domain.DLS.get h.ckey).c

let add_gauge h v =
  let cell = Domain.DLS.get h.gkey in
  cell.g <- cell.g +. v

let set_gauge h v = (Domain.DLS.get h.gkey).g <- v
let gauge_value h = (Domain.DLS.get h.gkey).g

(* Bucket 0 holds non-positive values; bucket i in 1..63 holds values whose
   [frexp] exponent is i - 32, clamped at both ends.  One bucket per octave. *)
let bucket_of v =
  if v <= 0. || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    max 1 (min (n_buckets - 1) (e + 32))

let bucket_upper_bound i = if i <= 0 then 0. else Float.ldexp 1. (i - 32)

let observe h v =
  let cell = Domain.DLS.get h.hkey in
  let b = bucket_of v in
  cell.hbuckets.(b) <- cell.hbuckets.(b) + 1;
  cell.hsum <- cell.hsum +. v;
  cell.hcount <- cell.hcount + 1

let histogram_quantile h q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Metrics.histogram_quantile: quantile must be in [0, 1]";
  let cell = Domain.DLS.get h.hkey in
  if cell.hcount = 0 then nan
  else begin
    (* Smallest bucket whose cumulative occupancy reaches rank ceil(q * n)
       (at least 1, so q = 0 returns the first occupied bucket's bound). *)
    let target = max 1 (int_of_float (ceil (q *. float_of_int cell.hcount))) in
    let rec go i acc =
      if i >= n_buckets then bucket_upper_bound (n_buckets - 1)
      else
        let acc = acc + cell.hbuckets.(i) in
        if acc >= target then bucket_upper_bound i else go (i + 1) acc
    in
    go 0 0
  end

let histogram_count h = (Domain.DLS.get h.hkey).hcount
let histogram_sum h = (Domain.DLS.get h.hkey).hsum

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (int * int) list; sum : float; count : int }

type snapshot = (string * value) list

let value_of = function
  | Cc h -> Counter h.c
  | Gc h -> Gauge h.g
  | Hc h ->
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.hbuckets.(i) <> 0 then buckets := (i, h.hbuckets.(i)) :: !buckets
      done;
      Histogram { buckets = !buckets; sum = h.hsum; count = h.hcount }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) (local ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Cc h -> h.c <- 0
      | Gc h -> h.g <- 0.
      | Hc h ->
          Array.fill h.hbuckets 0 n_buckets 0;
          h.hsum <- 0.;
          h.hcount <- 0)
    (local ())

(* Bucket lists are sorted by index; add occupancies bucket-wise. *)
let add_buckets a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ia, na) :: ta, (ib, nb) :: tb ->
        if ia < ib then (ia, na) :: go ta b
        else if ia > ib then (ib, nb) :: go a tb
        else (ia, na + nb) :: go ta tb
  in
  List.filter (fun (_, n) -> n <> 0) (go a b)

let combine name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y ->
      Histogram
        { buckets = add_buckets x.buckets y.buckets; sum = x.sum +. y.sum; count = x.count + y.count }
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: kind mismatch for %S" name)

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | ((na, va) as ha) :: ta, ((nb, vb) as hb) :: tb ->
        let c = String.compare na nb in
        if c < 0 then ha :: go ta b
        else if c > 0 then hb :: go a tb
        else (na, combine na va vb) :: go ta tb
  in
  go a b

let negate = function
  | Counter x -> Counter (-x)
  | Gauge x -> Gauge (-.x)
  | Histogram h ->
      Histogram
        {
          buckets = List.map (fun (i, n) -> (i, -n)) h.buckets;
          sum = -.h.sum;
          count = -h.count;
        }

let is_zero = function
  | Counter 0 -> true
  | Gauge g -> g = 0.
  | Histogram { buckets = []; count = 0; _ } -> true
  | _ -> false

let diff after before =
  merge after (List.map (fun (n, v) -> (n, negate v)) before)
  |> List.filter (fun (_, v) -> not (is_zero v))

let absorb snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter x -> incr ~by:x (counter name)
      | Gauge x -> add_gauge (gauge name) x
      | Histogram { buckets; sum; count } ->
          let h = Domain.DLS.get (histogram name).hkey in
          List.iter
            (fun (i, n) -> if i >= 0 && i < n_buckets then h.hbuckets.(i) <- h.hbuckets.(i) + n)
            buckets;
          h.hsum <- h.hsum +. sum;
          h.hcount <- h.hcount + count)
    snap

let to_json snap =
  let module J = Flowsched_util.Json in
  J.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter x -> J.Int x
           | Gauge x -> J.float x
           | Histogram { buckets; sum; count } ->
               J.Obj
                 [
                   ("count", J.Int count);
                   ("sum", J.float sum);
                   ( "buckets",
                     J.Arr
                       (List.map
                          (fun (i, n) -> J.Arr [ J.float (bucket_upper_bound i); J.Int n ])
                          buckets) );
                 ] ))
       snap)

let to_text snap =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter x -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" name x)
      | Gauge x -> Buffer.add_string buf (Printf.sprintf "gauge %s %.6g\n" name x)
      | Histogram { sum; count; _ } ->
          let mean = if count = 0 then 0. else sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "histogram %s count=%d sum=%.6g mean=%.6g\n" name count sum mean))
    snap;
  Buffer.contents buf
