let n_buckets = 64

type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = { hbuckets : int array; mutable hsum : float; mutable hcount : int }

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make match_kind =
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match match_kind m with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name (kind_name m)))
  | None ->
      let m = make () in
      Hashtbl.add registry name m;
      (match match_kind m with Some h -> h | None -> assert false)

let counter name =
  register name (fun () -> C { c = 0 }) (function C h -> Some h | _ -> None)

let gauge name = register name (fun () -> G { g = 0. }) (function G h -> Some h | _ -> None)

let histogram name =
  register name
    (fun () -> H { hbuckets = Array.make n_buckets 0; hsum = 0.; hcount = 0 })
    (function H h -> Some h | _ -> None)

let incr ?(by = 1) h = h.c <- h.c + by
let counter_value h = h.c
let add_gauge h v = h.g <- h.g +. v
let set_gauge h v = h.g <- v
let gauge_value h = h.g

(* Bucket 0 holds non-positive values; bucket i in 1..63 holds values whose
   [frexp] exponent is i - 32, clamped at both ends.  One bucket per octave. *)
let bucket_of v =
  if v <= 0. || Float.is_nan v then 0
  else
    let _, e = Float.frexp v in
    max 1 (min (n_buckets - 1) (e + 32))

let bucket_upper_bound i = if i <= 0 then 0. else Float.ldexp 1. (i - 32)

let observe h v =
  let b = bucket_of v in
  h.hbuckets.(b) <- h.hbuckets.(b) + 1;
  h.hsum <- h.hsum +. v;
  h.hcount <- h.hcount + 1

let histogram_quantile h q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Metrics.histogram_quantile: quantile must be in [0, 1]";
  if h.hcount = 0 then nan
  else begin
    (* Smallest bucket whose cumulative occupancy reaches rank ceil(q * n)
       (at least 1, so q = 0 returns the first occupied bucket's bound). *)
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.hcount))) in
    let rec go i acc =
      if i >= n_buckets then bucket_upper_bound (n_buckets - 1)
      else
        let acc = acc + h.hbuckets.(i) in
        if acc >= target then bucket_upper_bound i else go (i + 1) acc
    in
    go 0 0
  end

let histogram_count h = h.hcount
let histogram_sum h = h.hsum

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (int * int) list; sum : float; count : int }

type snapshot = (string * value) list

let value_of = function
  | C h -> Counter h.c
  | G h -> Gauge h.g
  | H h ->
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        if h.hbuckets.(i) <> 0 then buckets := (i, h.hbuckets.(i)) :: !buckets
      done;
      Histogram { buckets = !buckets; sum = h.hsum; count = h.hcount }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C h -> h.c <- 0
      | G h -> h.g <- 0.
      | H h ->
          Array.fill h.hbuckets 0 n_buckets 0;
          h.hsum <- 0.;
          h.hcount <- 0)
    registry

(* Bucket lists are sorted by index; add occupancies bucket-wise. *)
let add_buckets a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ia, na) :: ta, (ib, nb) :: tb ->
        if ia < ib then (ia, na) :: go ta b
        else if ia > ib then (ib, nb) :: go a tb
        else (ia, na + nb) :: go ta tb
  in
  List.filter (fun (_, n) -> n <> 0) (go a b)

let combine name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (x +. y)
  | Histogram x, Histogram y ->
      Histogram
        { buckets = add_buckets x.buckets y.buckets; sum = x.sum +. y.sum; count = x.count + y.count }
  | _ -> invalid_arg (Printf.sprintf "Metrics.merge: kind mismatch for %S" name)

let merge a b =
  let rec go a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | ((na, va) as ha) :: ta, ((nb, vb) as hb) :: tb ->
        let c = String.compare na nb in
        if c < 0 then ha :: go ta b
        else if c > 0 then hb :: go a tb
        else (na, combine na va vb) :: go ta tb
  in
  go a b

let negate = function
  | Counter x -> Counter (-x)
  | Gauge x -> Gauge (-.x)
  | Histogram h ->
      Histogram
        {
          buckets = List.map (fun (i, n) -> (i, -n)) h.buckets;
          sum = -.h.sum;
          count = -h.count;
        }

let is_zero = function
  | Counter 0 -> true
  | Gauge g -> g = 0.
  | Histogram { buckets = []; count = 0; _ } -> true
  | _ -> false

let diff after before =
  merge after (List.map (fun (n, v) -> (n, negate v)) before)
  |> List.filter (fun (_, v) -> not (is_zero v))

let absorb snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter x -> incr ~by:x (counter name)
      | Gauge x -> add_gauge (gauge name) x
      | Histogram { buckets; sum; count } ->
          let h = histogram name in
          List.iter
            (fun (i, n) -> if i >= 0 && i < n_buckets then h.hbuckets.(i) <- h.hbuckets.(i) + n)
            buckets;
          h.hsum <- h.hsum +. sum;
          h.hcount <- h.hcount + count)
    snap

let to_json snap =
  let module J = Flowsched_util.Json in
  J.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter x -> J.Int x
           | Gauge x -> J.float x
           | Histogram { buckets; sum; count } ->
               J.Obj
                 [
                   ("count", J.Int count);
                   ("sum", J.float sum);
                   ( "buckets",
                     J.Arr
                       (List.map
                          (fun (i, n) -> J.Arr [ J.float (bucket_upper_bound i); J.Int n ])
                          buckets) );
                 ] ))
       snap)

let to_text snap =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) ->
      match v with
      | Counter x -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" name x)
      | Gauge x -> Buffer.add_string buf (Printf.sprintf "gauge %s %.6g\n" name x)
      | Histogram { sum; count; _ } ->
          let mean = if count = 0 then 0. else sum /. float_of_int count in
          Buffer.add_string buf
            (Printf.sprintf "histogram %s count=%d sum=%.6g mean=%.6g\n" name count sum mean))
    snap;
  Buffer.contents buf
