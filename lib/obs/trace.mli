(** Span tracing with Chrome trace-event output.

    Disabled by default: {!with_span} then costs one boolean load before
    tail-calling the wrapped function, so instrumentation can stay in place
    permanently.  When enabled via {!start}, each span records a name,
    nesting depth, and wall-clock interval; {!write} emits the buffer as
    Chrome [chrome://tracing] / Perfetto trace-event JSON (complete ["X"]
    events with microsecond timestamps).

    Timestamps come from [Unix.gettimeofday] clamped to be non-decreasing
    (the stdlib has no monotonic clock), so span durations are never
    negative even across NTP steps.

    Domain-safety: the enable flag and time origin are process-global
    (atomics), while the span buffer, nesting depth, and clock clamp are
    domain-local — each domain records into its own buffer without
    contention.  The domains executor {!drain}s each worker domain's
    buffer at join time and {!absorb}s the spans into the coordinating
    domain, so one trace file covers all domains (spans share the {!start}
    time origin).  {!Flowsched_exec.Pool} workers instead disable tracing
    after [fork] — only metrics travel back across the result frames. *)

type span = {
  name : string;
  cat : string;  (** trace-event category, default ["flowsched"] *)
  ts_us : float;  (** start, microseconds since {!start} *)
  dur_us : float;
  depth : int;  (** nesting depth at entry; top-level spans have depth 0 *)
  args : (string * Flowsched_util.Json.t) list;
}

val enabled : unit -> bool

val start : unit -> unit
(** Enable tracing and clear any previously recorded spans. *)

val stop : unit -> unit
(** Disable tracing; recorded spans are kept for {!export}/{!write}. *)

val with_span :
  ?cat:string -> ?args:(unit -> (string * Flowsched_util.Json.t) list) -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled, the interval is
    recorded as a span (also when [f] raises).  [args] is only evaluated
    when tracing is enabled. *)

val drain : unit -> span list
(** Take (and clear) the calling domain's recorded spans, oldest first.
    Called by a worker domain just before it terminates; the result passes
    through [Domain.join] to the coordinating domain. *)

val absorb : span list -> unit
(** Append previously {!drain}ed spans into the calling domain's buffer
    (they share the session's time origin, so {!spans} interleaves them
    chronologically). *)

val spans : unit -> span list
(** The calling domain's recorded spans (own plus {!absorb}ed) in order of
    increasing start time. *)

val to_json : unit -> Flowsched_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one ["ph": "X"]
    event per span ([tid] is the nesting depth, so nested spans stack in the
    viewer). *)

val write : string -> unit
(** Write {!to_json} to a file. *)
