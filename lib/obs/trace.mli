(** Span tracing with Chrome trace-event output.

    Disabled by default: {!with_span} then costs one boolean load before
    tail-calling the wrapped function, so instrumentation can stay in place
    permanently.  When enabled via {!start}, each span records a name,
    nesting depth, and wall-clock interval; {!write} emits the buffer as
    Chrome [chrome://tracing] / Perfetto trace-event JSON (complete ["X"]
    events with microsecond timestamps).

    Timestamps come from [Unix.gettimeofday] clamped to be non-decreasing
    (the stdlib has no monotonic clock), so span durations are never
    negative even across NTP steps.

    Tracing is per-process: {!Flowsched_exec.Pool} workers disable tracing
    after [fork] — only metrics travel back across the result frames. *)

type span = {
  name : string;
  cat : string;  (** trace-event category, default ["flowsched"] *)
  ts_us : float;  (** start, microseconds since {!start} *)
  dur_us : float;
  depth : int;  (** nesting depth at entry; top-level spans have depth 0 *)
  args : (string * Flowsched_util.Json.t) list;
}

val enabled : unit -> bool

val start : unit -> unit
(** Enable tracing and clear any previously recorded spans. *)

val stop : unit -> unit
(** Disable tracing; recorded spans are kept for {!export}/{!write}. *)

val with_span :
  ?cat:string -> ?args:(unit -> (string * Flowsched_util.Json.t) list) -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is enabled, the interval is
    recorded as a span (also when [f] raises).  [args] is only evaluated
    when tracing is enabled. *)

val spans : unit -> span list
(** Recorded spans in order of increasing start time. *)

val to_json : unit -> Flowsched_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one ["ph": "X"]
    event per span ([tid] is the nesting depth, so nested spans stack in the
    viewer). *)

val write : string -> unit
(** Write {!to_json} to a file. *)
