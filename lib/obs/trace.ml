type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  args : (string * Flowsched_util.Json.t) list;
}

(* The enable flag and time origin are shared by all domains (spawned
   domains inherit the trace session); the span buffer, nesting depth, and
   monotonic clamp are domain-local so recording never contends.  Executors
   [drain] their worker domains' buffers and [absorb] them into the
   coordinating domain before writing the file. *)
let on = Atomic.make false
let t0_us = Atomic.make 0.

type local = { mutable events : span list; mutable depth : int; mutable last_us : float }

let local_key : local Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { events = []; depth = 0; last_us = 0. })

let local () = Domain.DLS.get local_key

(* [Unix.gettimeofday] clamped to be non-decreasing per domain: the stdlib
   exposes no monotonic clock, and a backwards wall-clock step would
   otherwise produce negative span durations. *)
let now_us () =
  let l = local () in
  let t = Unix.gettimeofday () *. 1e6 in
  if t > l.last_us then l.last_us <- t;
  l.last_us

let enabled () = Atomic.get on

let start () =
  let l = local () in
  l.events <- [];
  l.depth <- 0;
  l.last_us <- 0.;
  Atomic.set t0_us (now_us ());
  Atomic.set on true

let stop () = Atomic.set on false

let record name cat args t_start t_end d =
  let l = local () in
  l.events <-
    {
      name;
      cat;
      ts_us = t_start -. Atomic.get t0_us;
      dur_us = t_end -. t_start;
      depth = d;
      args;
    }
    :: l.events

let with_span ?(cat = "flowsched") ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let t_start = now_us () in
    let l = local () in
    let d = l.depth in
    l.depth <- d + 1;
    Fun.protect
      ~finally:(fun () ->
        (local ()).depth <- d;
        let a = match args with None -> [] | Some mk -> mk () in
        record name cat a t_start (now_us ()) d)
      f
  end

let drain () =
  let l = local () in
  let spans = List.rev l.events in
  l.events <- [];
  spans

let absorb spans =
  let l = local () in
  l.events <- List.rev_append spans l.events

let spans () =
  List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) (List.rev (local ()).events)

let to_json () =
  let module J = Flowsched_util.Json in
  let event s =
    let base =
      [
        ("name", J.Str s.name);
        ("cat", J.Str s.cat);
        ("ph", J.Str "X");
        ("ts", J.float s.ts_us);
        ("dur", J.float s.dur_us);
        ("pid", J.Int 1);
        ("tid", J.Int s.depth);
      ]
    in
    J.Obj (if s.args = [] then base else base @ [ ("args", J.Obj s.args) ])
  in
  J.Obj
    [
      ("traceEvents", J.Arr (List.map event (spans ())));
      ("displayTimeUnit", J.Str "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Flowsched_util.Json.to_string ~pretty:false (to_json ()));
      output_char oc '\n')
