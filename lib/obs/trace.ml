type span = {
  name : string;
  cat : string;
  ts_us : float;
  dur_us : float;
  depth : int;
  args : (string * Flowsched_util.Json.t) list;
}

let on = ref false
let events : span list ref = ref []
let depth = ref 0
let t0_us = ref 0.

(* [Unix.gettimeofday] clamped to be non-decreasing: the stdlib exposes no
   monotonic clock, and a backwards wall-clock step would otherwise produce
   negative span durations. *)
let last_us = ref 0.

let now_us () =
  let t = Unix.gettimeofday () *. 1e6 in
  if t > !last_us then last_us := t;
  !last_us

let enabled () = !on

let start () =
  events := [];
  depth := 0;
  last_us := 0.;
  t0_us := now_us ();
  on := true

let stop () = on := false

let record name cat args t_start t_end d =
  events :=
    {
      name;
      cat;
      ts_us = t_start -. !t0_us;
      dur_us = t_end -. t_start;
      depth = d;
      args;
    }
    :: !events

let with_span ?(cat = "flowsched") ?args name f =
  if not !on then f ()
  else begin
    let t_start = now_us () in
    let d = !depth in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let a = match args with None -> [] | Some mk -> mk () in
        record name cat a t_start (now_us ()) d)
      f
  end

let spans () =
  List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us) (List.rev !events)

let to_json () =
  let module J = Flowsched_util.Json in
  let event s =
    let base =
      [
        ("name", J.Str s.name);
        ("cat", J.Str s.cat);
        ("ph", J.Str "X");
        ("ts", J.float s.ts_us);
        ("dur", J.float s.dur_us);
        ("pid", J.Int 1);
        ("tid", J.Int s.depth);
      ]
    in
    J.Obj (if s.args = [] then base else base @ [ ("args", J.Obj s.args) ])
  in
  J.Obj
    [
      ("traceEvents", J.Arr (List.map event (spans ())));
      ("displayTimeUnit", J.Str "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Flowsched_util.Json.to_string ~pretty:false (to_json ()));
      output_char oc '\n')
