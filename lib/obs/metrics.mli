(** Metrics registry: named counters, gauges, and log-scale histograms
    with typed handles, domain-safe by construction.

    Handles are looked up (or created) once by name and are shared freely
    across domains; the cells behind them are {e domain-local}
    ([Domain.DLS]), so increments after lookup are a single unsynchronized
    record-field mutation, cheap enough for hot loops like the simplex
    pivot path and race-free under OCaml 5 domains.  {!snapshot}, {!reset},
    and {!absorb} act on the calling domain's cells only: an executor
    (forked worker or spawned domain) snapshots its own contribution and
    the coordinating domain {!absorb}s it, so process totals flow through
    the same merge algebra whether work ran inline, across forked
    processes, or across domains.  Snapshots are plain data — they marshal
    across the {!Flowsched_exec.Pool} fork boundary and pass by reference
    across [Domain.join].

    Merge semantics are chosen so that [merge] is associative and, on
    disjoint names, commutative:

    - counters add;
    - gauges add (they are additive accumulators, e.g. seconds spent in a
      phase — use {!add_gauge}; [set_gauge] overwrites and is only safe for
      single-process diagnostics);
    - histograms add bucket-wise (plus [sum] and [count]). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** [counter name] returns the handle registered under [name], creating it
    on first use.  Raises [Invalid_argument] if [name] is already registered
    as a different metric kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val add_gauge : gauge -> float -> unit
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation.  Buckets are log-scale: bucket 0 collects
    non-positive values, bucket [i] (1..63) collects values whose binary
    exponent is [i - 32], so the representable range spans roughly
    [2^-31 .. 2^31] with one bucket per octave. *)

val bucket_upper_bound : int -> float
(** Upper bound (exclusive) of log-scale bucket [i]; [0.] for bucket 0. *)

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile ([q] in [\[0,1\]]) of
    the observations as the upper bound of the first log-scale bucket whose
    cumulative occupancy reaches rank [ceil (q * count)] — an upper estimate
    within one octave of the true quantile.  [nan] when the histogram is
    empty; raises [Invalid_argument] on an out-of-range [q].  Used by the
    serve loop's status snapshots (p50/p99 slot-decision latency). *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (int * int) list; sum : float; count : int }
      (** [buckets] maps bucket index to occupancy; only nonzero buckets are
          listed, in increasing index order. *)

type snapshot = (string * value) list
(** Sorted by name ([String.compare]); plain data, safe to [Marshal]. *)

val snapshot : unit -> snapshot
(** The calling domain's cells (only metrics this domain has touched;
    absent means zero). *)

val reset : unit -> unit
(** Zero every metric cell of the calling domain (handles stay valid;
    other domains' cells are untouched). *)

val merge : snapshot -> snapshot -> snapshot
(** Name-wise sum; raises [Invalid_argument] on a kind mismatch. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff after before]: name-wise subtraction.  Entries equal in both are
    dropped, so a diff of an untouched registry is [[]]. *)

val absorb : snapshot -> unit
(** Add a snapshot (e.g. a worker's per-job {!diff}) into the live
    registry, creating metrics as needed. *)

val to_json : snapshot -> Flowsched_util.Json.t
(** [{"name": 42, "g": 1.5, "h": {"count": .., "sum": .., "buckets": [[le,
    n], ..]}, ..}] — counters as ints, gauges as floats, histograms as
    objects with [le] the bucket upper bound. *)

val to_text : snapshot -> string
(** One line per metric, sorted by name: [counter NAME VALUE],
    [gauge NAME VALUE], [histogram NAME count=N sum=S mean=M]. *)
