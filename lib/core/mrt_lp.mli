(** Time-Constrained Flow Scheduling LP (19)–(21), Section 4.2.

    Every flow [e] has a set of active rounds [R(e)] and must be scheduled
    entirely in one of them; variables [x_{e,t}] fractionally distribute the
    flow over its active rounds subject to per-round port capacities.
    FS-MRT with target maximum response [rho] reduces to this with
    [R(e) = \[r_e, r_e + rho)], and the release/deadline model of Remark 4.2
    with [R(e) = \[r_e, deadline_e\]]. *)

type active = int -> int list
(** Active rounds per flow id, in increasing order. *)

val active_of_rho : Flowsched_switch.Instance.t -> int -> active
(** [R(e) = \[r_e, r_e + rho)]. *)

val active_of_deadlines : Flowsched_switch.Instance.t -> int array -> active
(** [R(e) = \[r_e, deadline_e\]] (inclusive deadline rounds). *)

type basis_key = Bvar of int * int | Bcap of bool * int * int | Bub of int * int
(** Model-independent description of one entry of an optimal basis: a basic
    flow variable [x_{e,t}], the basic slack of the capacity row
    [(is_input, port, round)], or a flow variable parked nonbasic at its
    declared upper bound [x_{e,t} = 1].  Stable across re-solves with
    different active sets, so the basis of one solve can seed a related
    one. *)

type fractional = {
  values : (int * int, float) Hashtbl.t;  (** [(flow, round) -> x_{e,t}]. *)
  rounds : int list;  (** All rounds carrying a capacity row. *)
  basis : basis_key list;  (** Optimal basis, for warm-starting. *)
}

val solve :
  ?explicit_ub_rows:bool ->
  ?residual:(bool * int * int -> int) ->
  ?warm:basis_key list ->
  Flowsched_switch.Instance.t -> active -> fractional option
(** [solve inst active] returns a fractional solution or [None] when the LP
    is infeasible.  [residual] optionally overrides the capacity available
    at [(is_input, port, round)] — the rounding procedure uses it to account
    for already-fixed flows.  Restricting each flow to a sub-list of its
    original active rounds is expressed by passing a narrower [active].
    [warm] seeds the simplex basis from a previous solve's [basis]; keys
    not present in this model are ignored.  [explicit_ub_rows] (default
    [false]) encodes [x_{e,t} <= 1] as explicit constraint rows instead of
    declared variable bounds — slower, kept as a parity oracle for tests. *)

val is_fractionally_feasible : Flowsched_switch.Instance.t -> active -> bool
