open Flowsched_switch

(* Generic round-driven packer: [pick] selects the flows to schedule from
   the pending set given the residual capacities of the current round. *)
let run_rounds inst pick =
  let n = Instance.n inst in
  let schedule = Schedule.unassigned n in
  let pending = ref [] in
  let remaining = ref n in
  let by_release = Hashtbl.create 16 in
  Array.iter
    (fun (f : Flow.t) ->
      let cur = try Hashtbl.find by_release f.Flow.release with Not_found -> [] in
      Hashtbl.replace by_release f.Flow.release (f :: cur))
    inst.Instance.flows;
  let t = ref 0 in
  while !remaining > 0 do
    (match Hashtbl.find_opt by_release !t with
    | Some arrivals -> pending := List.rev_append arrivals !pending
    | None -> ());
    let chosen = pick !pending in
    List.iter
      (fun (f : Flow.t) ->
        Schedule.assign schedule f.Flow.id !t;
        decr remaining)
      chosen;
    pending := List.filter (fun (f : Flow.t) -> Schedule.round_of schedule f.Flow.id < 0) !pending;
    incr t
  done;
  schedule

let pack_in_order inst order pending =
  let sorted = List.sort order pending in
  let res_in = Array.copy inst.Instance.cap_in in
  let res_out = Array.copy inst.Instance.cap_out in
  List.filter
    (fun (f : Flow.t) ->
      if res_in.(f.Flow.src) >= f.Flow.demand && res_out.(f.Flow.dst) >= f.Flow.demand then begin
        res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
        res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
        true
      end
      else false)
    sorted

let fifo inst = run_rounds inst (pack_in_order inst Flow.compare)

(* Endpoint-capacity-aware packing: the port residuals of [pack_in_order]
   plus per-node residuals on both sides, so the schedule respects the
   coarser node capacities of the Pa-Rajaraman-Stalfa model as well. *)
let pack_under_endpoint inst (ep : Endpoint.t) order pending =
  let sorted = List.sort order pending in
  let res_in = Array.copy inst.Instance.cap_in in
  let res_out = Array.copy inst.Instance.cap_out in
  let node_in = Array.copy ep.Endpoint.cap_node_in in
  let node_out = Array.copy ep.Endpoint.cap_node_out in
  List.filter
    (fun (f : Flow.t) ->
      let ni = ep.Endpoint.node_in.(f.Flow.src) in
      let no = ep.Endpoint.node_out.(f.Flow.dst) in
      if
        res_in.(f.Flow.src) >= f.Flow.demand
        && res_out.(f.Flow.dst) >= f.Flow.demand
        && node_in.(ni) >= f.Flow.demand
        && node_out.(no) >= f.Flow.demand
      then begin
        res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
        res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
        node_in.(ni) <- node_in.(ni) - f.Flow.demand;
        node_out.(no) <- node_out.(no) - f.Flow.demand;
        true
      end
      else false)
    sorted

let fifo_endpoint ep inst =
  if not (Endpoint.admits ep inst) then
    invalid_arg "Baselines.fifo_endpoint: a flow exceeds its node capacity";
  run_rounds inst (pack_under_endpoint inst ep Flow.compare)

let srpt_order inst =
  let order (a : Flow.t) (b : Flow.t) =
    match compare a.Flow.demand b.Flow.demand with 0 -> Flow.compare a b | c -> c
  in
  run_rounds inst (pack_in_order inst order)

let greedy_maxcard inst =
  let pick pending =
    match pending with
    | [] -> []
    | _ ->
        let flows = Array.of_list pending in
        (* Unit-demand fast path uses the plain graph; general demands fall
           back to FIFO packing inside the matching by demand-feasibility. *)
        let pairs = Array.map (fun (f : Flow.t) -> (f.Flow.src, f.Flow.dst)) flows in
        let g = Flowsched_bipartite.Bgraph.create ~nl:inst.Instance.m ~nr:inst.Instance.m' pairs in
        if Instance.dmax inst <= 1 then begin
          let expansion =
            Flowsched_bipartite.Bmatching.expand g ~cl:inst.Instance.cap_in
              ~cr:inst.Instance.cap_out
          in
          let matched =
            Flowsched_bipartite.Matching.max_cardinality expansion.Flowsched_bipartite.Bmatching.graph
          in
          List.map (fun e -> flows.(e)) matched
        end
        else
          (* capacity-aware greedy on the matching order *)
          pack_in_order inst Flow.compare pending
  in
  run_rounds inst pick
