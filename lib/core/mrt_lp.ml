open Flowsched_switch
module Model = Flowsched_lp.Model
module Simplex = Flowsched_lp.Simplex

type active = int -> int list

let active_of_rho inst rho =
  if rho < 1 then invalid_arg "Mrt_lp.active_of_rho: rho must be >= 1";
  fun e ->
    let r = inst.Instance.flows.(e).Flow.release in
    List.init rho (fun i -> r + i)

let active_of_deadlines inst deadlines =
  if Array.length deadlines <> Instance.n inst then
    invalid_arg "Mrt_lp.active_of_deadlines: deadline per flow required";
  fun e ->
    let r = inst.Instance.flows.(e).Flow.release in
    let d = deadlines.(e) in
    if d < r then invalid_arg "Mrt_lp.active_of_deadlines: deadline before release";
    List.init (d - r + 1) (fun i -> r + i)

type basis_key = Bvar of int * int | Bcap of bool * int * int | Bub of int * int

type fractional = {
  values : (int * int, float) Hashtbl.t;
  rounds : int list;
  basis : basis_key list;
}

let solve ?(explicit_ub_rows = false) ?residual ?warm inst active =
  let n = Instance.n inst in
  let model = Model.create () in
  let var = Hashtbl.create (4 * n) in
  let var_rev = Hashtbl.create (4 * n) in
  (* cap_rows: (is_input, port, round) -> accumulated terms *)
  let cap_terms = Hashtbl.create 64 in
  for e = 0 to n - 1 do
    let f = inst.Instance.flows.(e) in
    let d = float_of_int f.Flow.demand in
    let terms =
      List.map
        (fun t ->
          if t < f.Flow.release then
            invalid_arg "Mrt_lp.solve: active round before release";
          (* x_{e,t} <= 1 is implied by the assignment row, but declaring it
             lets the bounded-variable simplex park the column at either
             bound; [explicit_ub_rows] keeps the old row-based formulation
             around as a parity oracle. *)
          let ub = if explicit_ub_rows then infinity else 1. in
          let v = Model.add_var ~name:(Printf.sprintf "x_%d_%d" e t) ~ub model in
          if explicit_ub_rows then
            ignore
              (Model.add_constraint
                 ~name:(Printf.sprintf "ub_%d_%d" e t)
                 model [ (v, 1.) ] Model.Le 1.);
          Hashtbl.add var (e, t) v;
          Hashtbl.add var_rev v (e, t);
          let push key =
            let cur = try Hashtbl.find cap_terms key with Not_found -> [] in
            Hashtbl.replace cap_terms key ((v, d) :: cur)
          in
          push (true, f.Flow.src, t);
          push (false, f.Flow.dst, t);
          (v, 1.))
        (active e)
    in
    if terms = [] then invalid_arg "Mrt_lp.solve: flow with no active round";
    (* (20): each flow scheduled exactly once *)
    ignore (Model.add_constraint ~name:(Printf.sprintf "assign_%d" e) model terms Model.Eq 1.)
  done;
  let rounds = Hashtbl.create 16 in
  let cap_row = Hashtbl.create 64 in
  let cap_row_rev = Hashtbl.create 64 in
  Hashtbl.iter
    (fun ((is_input, p, t) as key) terms ->
      Hashtbl.replace rounds t ();
      let cap =
        match residual with
        | Some f -> f (is_input, p, t)
        | None ->
            if is_input then inst.Instance.cap_in.(p) else inst.Instance.cap_out.(p)
      in
      (* (19): port capacity per active round *)
      let row =
        Model.add_constraint
          ~name:(Printf.sprintf "cap_%s%d_%d" (if is_input then "in" else "out") p t)
          model terms Model.Le (float_of_int cap)
      in
      Hashtbl.replace cap_row key row;
      Hashtbl.replace cap_row_rev row key)
    cap_terms;
  (* Translate a caller-level warm basis (keyed by flow/round and capacity
     row) into this model's variable/row ids; keys absent from this model —
     rounds cut from the active sets, capacity rows that no longer exist —
     are simply dropped. *)
  let warm =
    match warm with
    | None | Some [] -> None
    | Some keys ->
        Some
          (List.filter_map
             (function
               | Bvar (e, t) ->
                   Option.map (fun v -> Simplex.Basic_var v) (Hashtbl.find_opt var (e, t))
               | Bcap (i, p, t) ->
                   Option.map
                     (fun r -> Simplex.Basic_slack r)
                     (Hashtbl.find_opt cap_row (i, p, t))
               | Bub (e, t) ->
                   Option.map
                     (fun v -> Simplex.Nonbasic_upper v)
                     (Hashtbl.find_opt var (e, t)))
             keys)
  in
  let res = Simplex.solve ?warm model in
  match res.Simplex.status with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> assert false (* objective is constant zero *)
  | Simplex.Optimal ->
      let values = Hashtbl.create (4 * n) in
      Hashtbl.iter (fun key v -> Hashtbl.replace values key res.Simplex.values.(v)) var;
      let basis =
        Array.to_list res.Simplex.basis
        |> List.filter_map (function
             | Simplex.Basic_var v ->
                 Option.map (fun (e, t) -> Bvar (e, t)) (Hashtbl.find_opt var_rev v)
             | Simplex.Basic_slack r ->
                 Option.map (fun (i, p, t) -> Bcap (i, p, t)) (Hashtbl.find_opt cap_row_rev r)
             | Simplex.Nonbasic_upper v ->
                 Option.map (fun (e, t) -> Bub (e, t)) (Hashtbl.find_opt var_rev v))
      in
      Some { values; rounds = Hashtbl.fold (fun t () acc -> t :: acc) rounds []; basis }

let is_fractionally_feasible inst active = solve inst active <> None
