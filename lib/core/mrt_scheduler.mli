(** FS-MRT solver (Theorem 3 applied through binary search).

    The minimum maximum response time [rho*] of a fractional schedule is
    found by binary search on the feasibility of LP (19)–(21) with
    [R(e) = \[r_e, r_e + rho)] — feasibility is monotone in [rho].  Since
    the LP is a relaxation, [rho*] lower bounds the optimal integral
    maximum response time; rounding the solution at [rho*] then yields a
    schedule with maximum response at most [rho*] <= OPT under port
    capacities augmented by [2 dmax - 1].  For unit demands that is the
    +1 augmentation that Theorem 2's 4/3-hardness shows to be necessary
    (Remark 4.4). *)

type solution = {
  rho : int;  (** Max response of the returned schedule (<= fractional opt). *)
  fractional_rho : int;  (** Minimum fractionally feasible rho (LP bound). *)
  schedule : Flowsched_switch.Schedule.t;
  augmented : Flowsched_switch.Instance.t;
      (** Capacities raised by [2 dmax - 1]; [schedule] is valid for it. *)
  rounding : Mrt_rounding.outcome;
}

val feasible_rho : Flowsched_switch.Instance.t -> int -> bool
(** Fractional feasibility of a target maximum response time. *)

val min_fractional_rho :
  ?hi:int -> ?warm_start:bool -> ?probes:int -> Flowsched_switch.Instance.t -> int
(** Binary search for the smallest fractionally feasible rho.  [hi]
    defaults to a horizon at which feasibility is guaranteed.
    [warm_start] (default [true]) seeds each probe LP with the optimal
    basis of the last feasible probe; the result is identical either way
    (feasibility does not depend on the vertex reached), only faster.
    [probes] (default 1) > 1 turns each bisection round into a k-section:
    that many candidate rhos are probed concurrently on spawned domains
    ({!Flowsched_domains.Parallel}), every probe warm-starting from the
    same shared basis snapshot, and the round reduces deterministically by
    probe index — the returned rho (and the [mrt.rho_probes_feasible] /
    probe-count trajectory for a fixed [probes]) is reproducible, but the
    probe {e count} differs from the sequential search, so sweeps that
    gate on counter identity keep [probes = 1].  A probe checks the
    cooperative {!Flowsched_domains.Deadline} before solving, so executor
    timeouts interrupt the search between LPs. *)

val solve : ?rho:int -> Flowsched_switch.Instance.t -> solution
(** [solve inst] computes [rho = min_fractional_rho inst] (unless given)
    and rounds.  Raises [Failure] if the given [rho] is infeasible. *)

val solve_with_deadlines :
  Flowsched_switch.Instance.t -> deadlines:int array -> solution option
(** Remark 4.2: individual (inclusive) deadlines instead of a uniform
    response bound.  [None] when no schedule can meet the deadlines even
    fractionally; otherwise the schedule meets every deadline under the
    augmented capacities.  [rho]/[fractional_rho] report the achieved max
    response. *)
