(** Iterative LP rounding for FS-ART (Lemma 3.3, Figure 2).

    Starting from the interval LP (5)–(8), the procedure repeatedly

    + solves LP(ℓ) to a vertex,
    + permanently assigns every flow whose variables came out integral,
    + drops zero variables from the support,
    + regroups each port's surviving variables into intervals of size
      [\[4 c_p, 5 c_p)] measured in LP(ℓ) volume (Size), and
    + relaxes the capacity constraints to those groups (LP(ℓ+1)).

    Lemma 3.5 guarantees the number of unassigned flows at least halves per
    iteration, so O(log n) LP solves suffice; Lemma 3.7 bounds the resulting
    backlog — the amount any port is overloaded over any time interval — by
    O(c_p log n).  The output is therefore a {e pseudo-schedule}: every flow
    sits in one round, total fractional cost is at most the LP(0) optimum is
    preserved as a lower bound, and capacity is violated only by a
    logarithmic additive backlog. *)

type diagnostics = {
  iterations : int;  (** Number of LP solves. *)
  forced : int;
      (** Flows assigned by the numerical last-resort rule (argmax variable)
          rather than by an integral LP value.  0 in healthy runs. *)
  lp_objective : float;  (** Optimum of LP(0) — a lower bound on OPT. *)
  assignment_cost : float;
      (** Cost of the integral assignment under the LP(0) objective. *)
  backlog : int;
      (** Max over ports and intervals of (load - capacity * length) of the
          pseudo-schedule: the Lemma 3.7 quantity. *)
}

val run : ?horizon:int -> ?warm_start:bool -> Flowsched_switch.Instance.t ->
  Flowsched_switch.Schedule.t * diagnostics
(** Produces the pseudo-schedule and its diagnostics.  Works for arbitrary
    demands; Theorem 1's conversion to a valid schedule
    ({!Art_scheduler.solve}) additionally requires unit demands.
    [warm_start] (default [true]) seeds each iteration's LP with the
    previous iteration's optimal basis — LP(ℓ+1) relaxes LP(ℓ) on the
    surviving support, so the basis stays feasible and phase 1 is skipped. *)
