open Flowsched_switch

type t = {
  instance : Instance.t;
  group_of : int array;
  groups : int;
  weights : int array;
}

let make ?weights instance ~group_of =
  let n = Instance.n instance in
  if Array.length group_of <> n then
    invalid_arg "Coflow.make: one group per flow required";
  let groups = Array.fold_left (fun acc g -> max acc (g + 1)) 0 group_of in
  if groups = 0 && n > 0 then invalid_arg "Coflow.make: empty grouping";
  let used = Array.make (max groups 1) false in
  Array.iter
    (fun g ->
      if g < 0 || g >= groups then invalid_arg "Coflow.make: group id out of range";
      used.(g) <- true)
    group_of;
  if n > 0 && not (Array.for_all (fun u -> u) (Array.sub used 0 groups)) then
    invalid_arg "Coflow.make: group ids must be dense";
  let weights =
    match weights with
    | None -> Array.make groups 1
    | Some w ->
        if Array.length w <> groups then
          invalid_arg "Coflow.make: one weight per co-flow required";
        Array.iter (fun x -> if x < 1 then invalid_arg "Coflow.make: weights must be >= 1") w;
        Array.copy w
  in
  { instance; group_of = Array.copy group_of; groups; weights }

let with_weights t weights = make ~weights t.instance ~group_of:t.group_of

let random_grouping ~seed ~groups instance =
  let n = Instance.n instance in
  if groups < 1 || groups > n then invalid_arg "Coflow.random_grouping: need 1 <= groups <= n";
  let g = Flowsched_util.Prng.create seed in
  let group_of = Array.init n (fun _ -> Flowsched_util.Prng.int g groups) in
  (* guarantee density: the first [groups] flows cover every id *)
  let perm = Array.init n (fun i -> i) in
  Flowsched_util.Sampling.shuffle g perm;
  for k = 0 to groups - 1 do
    group_of.(perm.(k)) <- k
  done;
  make instance ~group_of

let members t gid =
  let out = ref [] in
  for i = Array.length t.group_of - 1 downto 0 do
    if t.group_of.(i) = gid then out := i :: !out
  done;
  !out

let release t gid =
  List.fold_left
    (fun acc e -> min acc t.instance.Instance.flows.(e).Flow.release)
    max_int (members t gid)

let bottleneck t gid =
  let demand_in = Array.make t.instance.Instance.m 0 in
  let demand_out = Array.make t.instance.Instance.m' 0 in
  List.iter
    (fun e ->
      let f = t.instance.Instance.flows.(e) in
      demand_in.(f.Flow.src) <- demand_in.(f.Flow.src) + f.Flow.demand;
      demand_out.(f.Flow.dst) <- demand_out.(f.Flow.dst) + f.Flow.demand)
    (members t gid);
  let worst = ref 0 in
  Array.iteri
    (fun p d ->
      if d > 0 then
        worst := max !worst ((d + t.instance.Instance.cap_in.(p) - 1) / t.instance.Instance.cap_in.(p)))
    demand_in;
  Array.iteri
    (fun p d ->
      if d > 0 then
        worst :=
          max !worst ((d + t.instance.Instance.cap_out.(p) - 1) / t.instance.Instance.cap_out.(p)))
    demand_out;
  !worst

let response_times t schedule =
  let completion = Array.make t.groups 0 in
  Array.iteri
    (fun e gid ->
      let round = Schedule.round_of schedule e in
      if round < 0 then invalid_arg "Coflow.response_times: incomplete schedule";
      completion.(gid) <- max completion.(gid) (round + 1))
    t.group_of;
  Array.mapi (fun gid c -> c - release t gid) completion

let average_response t schedule =
  if t.groups = 0 then nan
  else
    float_of_int (Array.fold_left ( + ) 0 (response_times t schedule))
    /. float_of_int t.groups

let max_response t schedule = Array.fold_left max 0 (response_times t schedule)

let total_weight t = Array.fold_left ( + ) 0 t.weights

let weighted_average_response t schedule =
  if t.groups = 0 then nan
  else
    let rts = response_times t schedule in
    let acc = ref 0 in
    Array.iteri (fun gid r -> acc := !acc + (t.weights.(gid) * r)) rts;
    float_of_int !acc /. float_of_int (total_weight t)

(* Every co-flow's response is at least its effective bottleneck (it cannot
   finish faster than its most loaded port drains, even starting the instant
   it is released), so the weighted mean of bottlenecks lower-bounds the
   weighted mean response of any schedule — the coflow-mode analogue of the
   LP bound. *)
let weighted_bottleneck_bound t =
  if t.groups = 0 then nan
  else
    let acc = ref 0 in
    for gid = 0 to t.groups - 1 do
      acc := !acc + (t.weights.(gid) * bottleneck t gid)
    done;
    float_of_int !acc /. float_of_int (total_weight t)

let max_bottleneck_bound t =
  let worst = ref 0 in
  for gid = 0 to t.groups - 1 do
    worst := max !worst (bottleneck t gid)
  done;
  !worst

(* Priority scheduler shared by SEBF (and any future ordering): pack
   released flows each round, trying flows in co-flow priority order. *)
let priority_schedule t priority_of_group =
  let inst = t.instance in
  let n = Instance.n inst in
  let schedule = Schedule.unassigned n in
  let remaining = ref n in
  let round = ref 0 in
  let key e =
    let f = inst.Instance.flows.(e) in
    (priority_of_group t.group_of.(e), f.Flow.release, e)
  in
  while !remaining > 0 do
    let pending =
      List.init n (fun e -> e)
      |> List.filter (fun e ->
             Schedule.round_of schedule e < 0
             && inst.Instance.flows.(e).Flow.release <= !round)
      |> List.sort (fun a b -> compare (key a) (key b))
    in
    let res_in = Array.copy inst.Instance.cap_in in
    let res_out = Array.copy inst.Instance.cap_out in
    List.iter
      (fun e ->
        let f = inst.Instance.flows.(e) in
        if res_in.(f.Flow.src) >= f.Flow.demand && res_out.(f.Flow.dst) >= f.Flow.demand
        then begin
          res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
          res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
          Schedule.assign schedule e !round;
          decr remaining
        end)
      pending;
    incr round
  done;
  schedule

let sebf t =
  let order =
    Array.init t.groups (fun gid -> (bottleneck t gid, release t gid, gid))
  in
  Array.sort compare order;
  let rank = Array.make t.groups 0 in
  Array.iteri (fun pos (_, _, gid) -> rank.(gid) <- pos) order;
  priority_schedule t (fun gid -> rank.(gid))

(* Weighted SEBF: order by ascending bottleneck-to-weight ratio (heavier
   co-flows jump the queue in proportion to their weight), compared exactly
   with cross products so ties are deterministic.  With unit weights the
   ratio order coincides with SEBF's (bottleneck, release, gid) order. *)
let wsebf t =
  let key gid = (bottleneck t gid, t.weights.(gid), release t gid, gid) in
  let order = Array.init t.groups key in
  Array.sort
    (fun (b1, w1, r1, g1) (b2, w2, r2, g2) ->
      match compare (b1 * w2) (b2 * w1) with
      | 0 -> compare (b1, r1, g1) (b2, r2, g2)
      | c -> c)
    order;
  let rank = Array.make t.groups 0 in
  Array.iteri (fun pos (_, _, _, gid) -> rank.(gid) <- pos) order;
  priority_schedule t (fun gid -> rank.(gid))

let flow_fifo t = Baselines.fifo t.instance
