open Flowsched_switch

let fig4a_static ~t ~total_rounds =
  if t < 1 || total_rounds <= t then invalid_arg "Lower_bounds.fig4a_static: need 1 <= t < total_rounds";
  let specs = ref [] in
  for r = t to total_rounds - 1 do
    specs := (1, 1, 1, r) :: !specs
  done;
  for r = t - 1 downto 0 do
    specs := (0, 1, 1, r) :: (0, 0, 1, r) :: !specs
  done;
  Instance.of_flows ~m:2 ~m':2 !specs

let fig4a_dashed_target ~pending_out0 ~pending_out1 =
  if pending_out0 > pending_out1 then 0 else 1

let fig4b_static () =
  Instance.of_flows ~m:3 ~m':4
    [
      (0, 1, 1, 0);
      (* (1,3) *)
      (0, 0, 1, 0);
      (* (1,2) *)
      (1, 2, 1, 0);
      (* (4,5) *)
      (1, 3, 1, 0);
      (* (4,6) *)
      (2, 1, 1, 1);
      (* (7,3) *)
      (2, 2, 1, 1);
      (* (7,5) *)
    ]

let fig4b_optimum = 2

let fig4b_dashed ~remaining_solid_outputs =
  List.map (fun out -> (2, out, 1)) remaining_solid_outputs

(* Generalizations of the Figure 4 gadgets to m-port switches, used by the
   scenario zoo's adversarial workloads.  Both emit their specs per round in
   canonical (input, output) order, so the slot-clocked stream view of the
   same pattern is prefix-identical by construction. *)

let fig4a_general_specs ~m ~t ~total_rounds round =
  if round < t then
    (* Phase 1: each of the m-1 overloaded inputs i feeds its own output i
       and the shared neighbour i+1 — the staircase of conflicting pairs. *)
    List.concat (List.init (m - 1) (fun i -> [ (i, i, 1); (i, i + 1, 1) ]))
  else if round < total_rounds then
    (* Phase 2: the adversary aims fresh flows at every congested shared
       output, exactly as the 2x2 gadget does with its dashed flows. *)
    List.init (m - 1) (fun i -> (i + 1, i + 1, 1))
  else []

let fig4a_general ~m ~t ~total_rounds =
  if m < 2 then invalid_arg "Lower_bounds.fig4a_general: need m >= 2";
  if t < 1 || total_rounds <= t then
    invalid_arg "Lower_bounds.fig4a_general: need 1 <= t < total_rounds";
  let specs = ref [] in
  for r = 0 to total_rounds - 1 do
    List.iter
      (fun (src, dst, d) -> specs := (src, dst, d, r) :: !specs)
      (fig4a_general_specs ~m ~t ~total_rounds r)
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

let fig4b_general_specs ~m round =
  let k = m - 1 in
  if round = 0 then
    (* Round 0: k solid inputs, each claiming a private pair of outputs. *)
    List.concat (List.init k (fun i -> [ (i, 2 * i, 1); (i, (2 * i) + 1, 1) ]))
  else if round = 1 then
    (* Round 1: the crossing input hits one output of every pair, so any
       online algorithm that served the wrong half of each pair in round 0
       now collides on all of them at once. *)
    List.init k (fun i -> (k, (2 * i) + 1, 1))
  else []

let fig4b_general ~m =
  if m < 3 then invalid_arg "Lower_bounds.fig4b_general: need m >= 3";
  let specs = ref [] in
  for r = 0 to 1 do
    List.iter
      (fun (src, dst, d) -> specs := (src, dst, d, r) :: !specs)
      (fig4b_general_specs ~m r)
  done;
  Instance.of_flows ~m ~m':(2 * (m - 1)) (List.rev !specs)
