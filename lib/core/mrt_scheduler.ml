open Flowsched_switch
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_rho_probes = Metrics.counter "mrt.rho_probes"
let c_rho_feasible = Metrics.counter "mrt.rho_probes_feasible"

type solution = {
  rho : int;
  fractional_rho : int;
  schedule : Schedule.t;
  augmented : Instance.t;
  rounding : Mrt_rounding.outcome;
}

let feasible_rho inst rho = Mrt_lp.is_fractionally_feasible inst (Mrt_lp.active_of_rho inst rho)

let default_hi inst =
  (* Uniform spreading after the last release is fractionally feasible, so
     every flow finishes within this span of its release. *)
  Art_lp.default_horizon inst

let min_fractional_rho ?hi ?(warm_start = true) inst =
  Trace.with_span "mrt.min_fractional_rho" (fun () ->
  let hi = match hi with Some h -> h | None -> default_hi inst in
  (* The probe LPs of the binary search differ only in their active sets, so
     the optimal basis of the last feasible probe seeds the next one: keys
     for rounds cut from the shrunken windows are dropped on translation.
     The result — the least feasible rho — is independent of which vertex
     each probe lands on, so warm starting cannot change the answer. *)
  let warm = ref None in
  let probe rho =
    Metrics.incr c_rho_probes;
    Trace.with_span "mrt.rho_probe"
      ~args:(fun () -> [ ("rho", Flowsched_util.Json.Int rho) ])
      (fun () ->
        let active = Mrt_lp.active_of_rho inst rho in
        match Mrt_lp.solve ?warm:(if warm_start then !warm else None) inst active with
        | None -> false
        | Some frac ->
            warm := Some frac.Mrt_lp.basis;
            Metrics.incr c_rho_feasible;
            true)
  in
  if not (probe hi) then
    failwith "Mrt_scheduler.min_fractional_rho: upper bound infeasible";
  let lo = ref 1 and hi = ref hi in
  (* invariant: hi feasible, lo - 1 infeasible (rho = 0 is vacuously
     infeasible for a non-empty instance) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if probe mid then hi := mid else lo := mid + 1
  done;
  !lo)

let augmentation inst = max 0 ((2 * Instance.dmax inst) - 1)

let solve ?rho inst =
  let fractional_rho = match rho with Some r -> r | None -> min_fractional_rho inst in
  match Mrt_rounding.round inst (Mrt_lp.active_of_rho inst fractional_rho) with
  | None -> failwith "Mrt_scheduler.solve: infeasible rho"
  | Some rounding ->
      let augmented = Instance.scale_capacities inst ~mult:1 ~add:(augmentation inst) in
      let schedule = rounding.Mrt_rounding.schedule in
      {
        rho = Schedule.max_response inst schedule;
        fractional_rho;
        schedule;
        augmented;
        rounding;
      }

let solve_with_deadlines inst ~deadlines =
  match Mrt_rounding.round inst (Mrt_lp.active_of_deadlines inst deadlines) with
  | None -> None
  | Some rounding ->
      let augmented = Instance.scale_capacities inst ~mult:1 ~add:(augmentation inst) in
      let schedule = rounding.Mrt_rounding.schedule in
      let rho = Schedule.max_response inst schedule in
      Some { rho; fractional_rho = rho; schedule; augmented; rounding }
