open Flowsched_switch
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_rho_probes = Metrics.counter "mrt.rho_probes"
let c_rho_feasible = Metrics.counter "mrt.rho_probes_feasible"

type solution = {
  rho : int;
  fractional_rho : int;
  schedule : Schedule.t;
  augmented : Instance.t;
  rounding : Mrt_rounding.outcome;
}

let feasible_rho inst rho = Mrt_lp.is_fractionally_feasible inst (Mrt_lp.active_of_rho inst rho)

let default_hi inst =
  (* Uniform spreading after the last release is fractionally feasible, so
     every flow finishes within this span of its release. *)
  Art_lp.default_horizon inst

let min_fractional_rho ?hi ?(warm_start = true) ?(probes = 1) inst =
  Trace.with_span "mrt.min_fractional_rho" (fun () ->
  let hi = match hi with Some h -> h | None -> default_hi inst in
  (* The probe LPs of the binary search differ only in their active sets, so
     the optimal basis of the last feasible probe seeds the next one: keys
     for rounds cut from the shrunken windows are dropped on translation.
     The result — the least feasible rho — is independent of which vertex
     each probe lands on, so warm starting cannot change the answer. *)
  let warm = ref None in
  (* The reusable probe core: reads a warm basis snapshot (immutable key
     list, safe to share across domains), returns the feasible basis if
     any.  Metric increments land in whichever domain runs the probe and
     merge back deterministically. *)
  let probe_basis ~warm rho =
    Metrics.incr c_rho_probes;
    Trace.with_span "mrt.rho_probe"
      ~args:(fun () -> [ ("rho", Flowsched_util.Json.Int rho) ])
      (fun () ->
        Flowsched_domains.Deadline.check ();
        let active = Mrt_lp.active_of_rho inst rho in
        match Mrt_lp.solve ?warm inst active with
        | None -> None
        | Some frac ->
            Metrics.incr c_rho_feasible;
            Some frac.Mrt_lp.basis)
  in
  let probe rho =
    match probe_basis ~warm:(if warm_start then !warm else None) rho with
    | None -> false
    | Some basis ->
        warm := Some basis;
        true
  in
  if not (probe hi) then
    failwith "Mrt_scheduler.min_fractional_rho: upper bound infeasible";
  let lo = ref 1 and hi = ref hi in
  (* invariant: hi feasible, lo - 1 infeasible (rho = 0 is vacuously
     infeasible for a non-empty instance) *)
  if probes <= 1 then
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if probe mid then hi := mid else lo := mid + 1
    done
  else
    (* Multi-way (k-section) search: w probes per round shrink [lo, hi] by
       a factor of w + 1 instead of 2.  Each probe warm-starts from the
       same shared prior basis snapshot; the reduction is deterministic by
       probe index — the smallest feasible candidate becomes the new hi
       (and donates the next warm basis), the largest infeasible candidate
       below it bumps lo — so the result cannot depend on which domain
       finished first. *)
    while !lo < !hi do
      let lo0 = !lo and span = !hi - !lo in
      let w = min probes span in
      let candidates =
        let cs = Array.init w (fun k -> lo0 + ((k + 1) * span / (w + 1))) in
        (* Integer division can repeat a value when span < w + 1. *)
        Array.of_list
          (List.sort_uniq compare (Array.to_list cs))
      in
      let ncs = Array.length candidates in
      let snapshot = if warm_start then !warm else None in
      let outcomes =
        Flowsched_domains.Parallel.map ~width:ncs ncs (fun i ->
            probe_basis ~warm:snapshot candidates.(i))
      in
      let first_feasible = ref None in
      Array.iteri
        (fun i o -> if !first_feasible = None && o <> None then first_feasible := Some i)
        outcomes;
      (match !first_feasible with
      | Some s ->
          hi := candidates.(s);
          (match outcomes.(s) with Some b -> warm := Some b | None -> ());
          if s > 0 then lo := candidates.(s - 1) + 1
      | None -> lo := candidates.(ncs - 1) + 1)
    done;
  !lo)

let augmentation inst = max 0 ((2 * Instance.dmax inst) - 1)

let solve ?rho inst =
  let fractional_rho = match rho with Some r -> r | None -> min_fractional_rho inst in
  match Mrt_rounding.round inst (Mrt_lp.active_of_rho inst fractional_rho) with
  | None -> failwith "Mrt_scheduler.solve: infeasible rho"
  | Some rounding ->
      let augmented = Instance.scale_capacities inst ~mult:1 ~add:(augmentation inst) in
      let schedule = rounding.Mrt_rounding.schedule in
      {
        rho = Schedule.max_response inst schedule;
        fractional_rho;
        schedule;
        augmented;
        rounding;
      }

let solve_with_deadlines inst ~deadlines =
  match Mrt_rounding.round inst (Mrt_lp.active_of_deadlines inst deadlines) with
  | None -> None
  | Some rounding ->
      let augmented = Instance.scale_capacities inst ~mult:1 ~add:(augmentation inst) in
      let schedule = rounding.Mrt_rounding.schedule in
      let rho = Schedule.max_response inst schedule in
      Some { rho; fractional_rho = rho; schedule; augmented; rounding }
