(** Online lower-bound constructions (Figure 4, Lemmas 5.1 and 5.2).

    Both gadgets are adversarial against online algorithms: after the first
    round(s) the adversary aims later flows at whichever ports the algorithm
    left congested.  The static variants fix the adversary's choice (useful
    as plain instances and against algorithms that break ties in a known
    way); the adaptive helpers let the simulator's arrival callback pick the
    worst continuation based on the live queue. *)

val fig4a_static :
  t:int -> total_rounds:int -> Flowsched_switch.Instance.t
(** Lemma 5.1 instance on a 2x2 switch: solid flows (in 0 -> out 0) and
    (in 0 -> out 1) arrive every round in [\[0, t)]; dashed flows
    (in 1 -> out 1) arrive every round in [\[t, total_rounds)].  The offline
    optimum keeps total response linear while any online algorithm that
    leaves (in 0 -> out 1) flows pending pays Omega(t * (total_rounds - t)). *)

val fig4a_dashed_target : pending_out0:int -> pending_out1:int -> int
(** The adaptive adversary's choice: aim dashed flows at the output with
    more pending solid flows (0 or 1). *)

val fig4b_static : unit -> Flowsched_switch.Instance.t
(** Lemma 5.2 instance: solid flows (0,1), (0,0), (1,2), (1,3) released in
    round 0 and dashed flows (2,1), (2,2) in round 1, on a 3-in/4-out unit
    switch.  Its optimal maximum response time is 2 (verified by the exact
    solver in the tests), yet every online algorithm can be forced to 3. *)

val fig4b_optimum : int
(** = 2. *)

val fig4b_dashed : remaining_solid_outputs:int list -> (int * int * int) list
(** The adaptive adversary for {!fig4b_static}: given the output ports of
    the solid flows still pending after round 0, the dashed (unit) flows
    from input 2 to exactly those outputs, as engine arrival specs. *)

(** {2 m-port generalizations}

    The scenario zoo's adversarial workloads: the Figure 4 gadgets scaled to
    an [m x m] (resp. [m x 2(m-1)]) switch by stacking the 2x2 (resp. 3x4)
    conflict pattern across adjacent port pairs.  Deterministic — no PRNG
    draws — and defined per round ({!fig4a_general_specs},
    {!fig4b_general_specs}) so the batch instances and the slot-clocked
    stream views are prefix-identical by construction. *)

val fig4a_general_specs :
  m:int -> t:int -> total_rounds:int -> int -> (int * int * int) list
(** The [(src, dst, demand)] specs released in the given round of
    {!fig4a_general}; empty at or beyond [total_rounds]. *)

val fig4a_general : m:int -> t:int -> total_rounds:int -> Flowsched_switch.Instance.t
(** Staircase generalization of {!fig4a_static}: for rounds in [\[0, t)]
    every input [i < m-1] releases flows to outputs [i] and [i+1]; for
    rounds in [\[t, total_rounds)] inputs [1..m-1] each release a flow to
    their own output.  [m = 2] is the original gadget's load pattern.
    Raises [Invalid_argument] unless [m >= 2] and [1 <= t < total_rounds]. *)

val fig4b_general_specs : m:int -> int -> (int * int * int) list
(** The specs released in the given round of {!fig4b_general}; empty after
    round 1. *)

val fig4b_general : m:int -> Flowsched_switch.Instance.t
(** Crossing generalization of {!fig4b_static} on [m] inputs and
    [2(m-1)] outputs: inputs [0..m-2] each claim a private output pair in
    round 0, then input [m-1] crosses one output of every pair in round 1.
    [m = 3] matches the original gadget's shape.  Raises
    [Invalid_argument] unless [m >= 3]. *)
