(** Linear programs for Flow Scheduling to Minimize Average Response Time
    (FS-ART), Section 3 of the paper.

    Two relaxations are provided:

    - {!lower_bound} solves LP (1)–(4) (the Garg–Kumar-style program with
      per-round capacity constraints and fractional response-time objective
      [(t - r_e)/d_e + 1/(2 kappa_e)]).  By Lemma 3.1 its optimum lower
      bounds the total response time of {e any} schedule that finishes
      within the chosen horizon.  This is the baseline the paper's Figure 6
      compares the online heuristics against.

    - {!build_interval_lp} builds LP (5)–(8), the interval-relaxed program
      (capacity aggregated over length-4 windows, [1/2] additive term) that
      seeds the iterative rounding of Lemma 3.3.

    The horizon defaults to a value that provably leaves the fractional
    optimum unconstrained (uniform spreading after the last release is
    feasible); callers comparing against concrete schedules should pass
    [~horizon:(max default (makespan of the schedule))] so the bound covers
    those schedules too. *)

type built = {
  model : Flowsched_lp.Model.t;
  var : int -> int -> Flowsched_lp.Model.var option;
      (** [var e t] is the LP variable for flow [e] in round [t], when it
          exists ([t >= release_e] and [t < horizon]). *)
  vars_of_flow : (int * Flowsched_lp.Model.var) list array;
      (** Per flow, the [(round, var)] pairs in increasing round order. *)
  horizon : int;
}

val default_horizon : Flowsched_switch.Instance.t -> int
(** [last_release + max_p ceil(load_p / c_p) + 1]: spreading every flow
    uniformly over the rounds after the last release is feasible within this
    horizon, so the LP optimum is not constrained by it. *)

val build_round_lp :
  ?explicit_ub_rows:bool -> ?horizon:int -> Flowsched_switch.Instance.t -> built
(** LP (1)–(4): variables [b_{e,t}], demand rows (2), per-round port
    capacity rows (3), objective [sum ((t - r_e)/d_e + 1/(2 kappa_e))
    b_{e,t}].  Each variable carries the declared bound [b_{e,t} <= d_e]
    (non-binding at the optimum); [explicit_ub_rows] (default [false])
    emits those bounds as constraint rows instead — slower, kept as a
    parity oracle for tests. *)

val build_interval_lp :
  ?explicit_ub_rows:bool -> ?horizon:int -> Flowsched_switch.Instance.t -> built
(** LP (5)–(8): same variables and demand rows, capacity rows aggregated
    over windows [(4(a-1), 4a]] with right-hand side [4 c_p], objective
    [sum ((t - r_e)/d_e + 1/2) b_{e,t}].  [explicit_ub_rows] as in
    {!build_round_lp}. *)

type bound = {
  total : float;  (** LP optimum: lower bound on total response time. *)
  average : float;  (** [total / n]. *)
  fractional : float array;  (** Per-flow fractional response [Delta_e]. *)
}

val lower_bound : ?horizon:int -> Flowsched_switch.Instance.t -> bound
(** Solves LP (1)–(4) and packages the optimum as a response-time lower
    bound (Lemma 3.1).  Raises [Failure] if the LP is infeasible, which
    cannot happen for a valid instance and default horizon. *)

val weighted_lower_bound :
  ?horizon:int -> Flowsched_switch.Instance.t -> weights:float array -> bound
(** The weighted generalization: scales each flow's objective terms by
    [weights.(e)] (all weights must be non-negative), so the optimum lower
    bounds [sum of w_e * rho_e] of any schedule within the horizon — the
    weighted response objective from the paper's complexity discussion.
    [average] reports total divided by the weight sum. *)
