(** Simple offline baselines.

    These mirror the online heuristics but run directly over an instance,
    giving the tests and benches cheap upper bounds to sandwich the LP lower
    bounds against, and serving as the "natural algorithm" comparison points
    for Theorem 1/Theorem 3 ablations. *)

val fifo : Flowsched_switch.Instance.t -> Flowsched_switch.Schedule.t
(** Round by round, consider released unscheduled flows in (release, id)
    order and schedule each if both ports still have residual capacity.
    Always produces a valid schedule. *)

val greedy_maxcard : Flowsched_switch.Instance.t -> Flowsched_switch.Schedule.t
(** Round by round, schedule a maximum-cardinality b-matching of the pending
    flows (Hopcroft–Karp on the port-replicated graph). *)

val srpt_order : Flowsched_switch.Instance.t -> Flowsched_switch.Schedule.t
(** FIFO packing but ordering pending flows by demand first (smallest
    demand first, ties by release) — the SPT/SRPT-flavoured baseline. *)

val fifo_endpoint :
  Flowsched_switch.Endpoint.t ->
  Flowsched_switch.Instance.t ->
  Flowsched_switch.Schedule.t
(** {!fifo} under endpoint (node) capacity constraints: a flow is admitted
    to a round only when its two ports {e and} its two nodes all have
    residual capacity.  Always valid for the port capacities and
    node-feasible in every round
    ({!Flowsched_switch.Endpoint.schedule_feasible}).  Raises
    [Invalid_argument] when some flow alone exceeds its node capacity
    (no schedule could exist). *)
