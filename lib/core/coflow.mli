(** Co-flows: the generalization the paper's future-work section points to
    ("more general types of flows (e.g., co-flows)", §6) and that most of
    its related work studies (Varys, near-optimal coflow scheduling, ...).

    A co-flow is a set of flows belonging to one job (e.g. a shuffle
    stage); it is released when its first member is and completes only when
    its {e last} member does, so per-flow response times do not compose and
    scheduling must reason about groups.  This module adds the co-flow view
    on top of the existing switch model: grouping metadata, co-flow
    response metrics, and two schedulers — the SEBF heuristic
    (smallest-effective-bottleneck-first, the rule Varys popularized) and
    group-blind FIFO as the baseline it is compared against. *)

type t = private {
  instance : Flowsched_switch.Instance.t;
  group_of : int array;  (** flow id -> co-flow id, ids dense in [0, groups). *)
  groups : int;
  weights : int array;  (** per co-flow weight, all [>= 1]; unit by default. *)
}

val make : ?weights:int array -> Flowsched_switch.Instance.t -> group_of:int array -> t
(** Raises [Invalid_argument] unless [group_of] assigns every flow a group
    and group ids are exactly [0..groups-1]; [weights] (default all ones)
    must supply one weight [>= 1] per co-flow. *)

val with_weights : t -> int array -> t
(** The same grouping with new weights (same validation as {!make}). *)

val random_grouping :
  seed:int -> groups:int -> Flowsched_switch.Instance.t -> t
(** Assigns flows to [groups] uniformly at random (every group id is used;
    requires [groups <= n]). *)

val members : t -> int -> int list
(** Flow ids of a co-flow. *)

val release : t -> int -> int
(** A co-flow's release: the earliest member release. *)

val bottleneck : t -> int -> int
(** The effective bottleneck of a co-flow: the maximum over ports of its
    total demand there, rounded up per unit capacity — a lower bound on the
    rounds the co-flow needs once started. *)

val response_times : t -> Flowsched_switch.Schedule.t -> int array
(** Per co-flow: last member completion minus co-flow release. *)

val average_response : t -> Flowsched_switch.Schedule.t -> float
val max_response : t -> Flowsched_switch.Schedule.t -> int

val total_weight : t -> int

val weighted_average_response : t -> Flowsched_switch.Schedule.t -> float
(** [sum_j w_j * response_j / sum_j w_j] — the weighted co-flow completion
    objective of the Im–Purohit line of work, stated in response form. *)

val weighted_bottleneck_bound : t -> float
(** Lower bound on {!weighted_average_response} for {e any} schedule: each
    co-flow's response is at least its effective bottleneck, so the
    weighted mean of bottlenecks bounds the weighted mean response. *)

val max_bottleneck_bound : t -> int
(** Lower bound on {!max_response} for any schedule: the largest effective
    bottleneck over co-flows. *)

val sebf : t -> Flowsched_switch.Schedule.t
(** Smallest-effective-bottleneck-first: co-flows get strict priority by
    (bottleneck, release); each round packs released flows in that priority
    order under the port capacities.  Work-conserving, always valid. *)

val wsebf : t -> Flowsched_switch.Schedule.t
(** Weighted SEBF: priority by ascending bottleneck-to-weight ratio
    (compared exactly via cross products), so heavier co-flows are served
    earlier in proportion to their weight.  With unit weights this is
    exactly {!sebf}. *)

val flow_fifo : t -> Flowsched_switch.Schedule.t
(** Group-blind baseline: plain per-flow FIFO packing
    ({!Baselines.fifo}). *)
