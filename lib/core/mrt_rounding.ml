open Flowsched_switch
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_lp_solves = Metrics.counter "mrt.round_lp_solves"
let c_fallback_drops = Metrics.counter "mrt.fallback_drops"

type outcome = {
  schedule : Schedule.t;
  overflow : int;
  bound : int;
  within_guarantee : bool;
  lp_solves : int;
  fallback_drops : int;
}

type row_key = bool * int * int (* is_input, port, round *)

let round_loop ~warm_start inst active =
  let n = Instance.n inst in
  let dmax = Instance.dmax inst in
  let bound = max 0 ((2 * dmax) - 1) in
  let supports = Array.init n active in
  let fixed = Array.make n (-1) in
  let fixed_load : (row_key, int) Hashtbl.t = Hashtbl.create 64 in
  let load key = try Hashtbl.find fixed_load key with Not_found -> 0 in
  let add_load key d = Hashtbl.replace fixed_load key (load key + d) in
  let cap (is_input, p, _) =
    if is_input then inst.Instance.cap_in.(p) else inst.Instance.cap_out.(p)
  in
  (* Rows still enforced.  A row not in the table is dropped (or was never
     created); dropped rows rely on the potential-load argument for their
     violation bound. *)
  let enforced : (row_key, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun e rounds ->
      let f = inst.Instance.flows.(e) in
      List.iter
        (fun t ->
          Hashtbl.replace enforced (true, f.Flow.src, t) ();
          Hashtbl.replace enforced (false, f.Flow.dst, t) ())
        rounds)
    supports;
  (* Worst-case future load of a row: already-fixed demand plus demands of
     unfixed flows that still have this round in their support. *)
  let potential key =
    let is_input, p, t = key in
    let acc = ref (load key) in
    Array.iteri
      (fun e rounds ->
        if fixed.(e) < 0 then begin
          let f = inst.Instance.flows.(e) in
          let touches = if is_input then f.Flow.src = p else f.Flow.dst = p in
          if touches && List.mem t rounds then acc := !acc + f.Flow.demand
        end)
      supports;
    !acc
  in
  let lp_solves = ref 0 and fallback_drops = ref 0 in
  let unfixed_count = ref n in
  let infeasible = ref false in
  (* Warm basis threaded across re-solves, kept in *global* flow ids: each
     round's sub-instance renumbers flows, so keys are translated in and out
     through [ids].  Keys of since-fixed flows or pruned rounds drop out on
     translation. *)
  let warm : Mrt_lp.basis_key list option ref = ref None in
  while !unfixed_count > 0 && not !infeasible do
    (* Build the restricted instance: unfixed flows only, residual caps,
       dropped rows modeled as effectively unconstrained. *)
    let unfixed_ids = ref [] in
    for e = n - 1 downto 0 do
      if fixed.(e) < 0 then unfixed_ids := e :: !unfixed_ids
    done;
    let ids = Array.of_list !unfixed_ids in
    let sub_flows =
      Array.mapi
        (fun i e ->
          let f = inst.Instance.flows.(e) in
          Flow.make ~id:i ~src:f.Flow.src ~dst:f.Flow.dst ~demand:f.Flow.demand
            ~release:f.Flow.release ())
        ids
    in
    (* Sub-instance capacities must dominate demands; residual handling is
       done through the [residual] callback, so plain caps suffice here. *)
    let sub_inst =
      Instance.create ~cap_in:inst.Instance.cap_in ~cap_out:inst.Instance.cap_out
        ~m:inst.Instance.m ~m':inst.Instance.m' sub_flows
    in
    let sub_active i = supports.(ids.(i)) in
    let residual ((is_input, p, t) as key) =
      if Hashtbl.mem enforced key then cap key - load key
      else begin
        (* Dropped row: leave enough room for everything that can still land
           here, i.e. no constraint in practice. *)
        ignore (is_input, p, t);
        Instance.total_demand inst
      end
    in
    incr lp_solves;
    Metrics.incr c_lp_solves;
    let sub_warm =
      if not warm_start then None
      else
        Option.map
          (fun keys ->
            let sub_of_global = Hashtbl.create (Array.length ids) in
            Array.iteri (fun i e -> Hashtbl.replace sub_of_global e i) ids;
            List.filter_map
              (function
                | Mrt_lp.Bvar (e, t) ->
                    Option.map
                      (fun i -> Mrt_lp.Bvar (i, t))
                      (Hashtbl.find_opt sub_of_global e)
                | Mrt_lp.Bub (e, t) ->
                    Option.map
                      (fun i -> Mrt_lp.Bub (i, t))
                      (Hashtbl.find_opt sub_of_global e)
                | Mrt_lp.Bcap _ as k -> Some k)
              keys)
          !warm
    in
    (match Mrt_lp.solve ~residual ?warm:sub_warm sub_inst sub_active with
    | None -> infeasible := true
    | Some frac ->
        warm :=
          Some
            (List.filter_map
               (function
                 | Mrt_lp.Bvar (i, t) -> Some (Mrt_lp.Bvar (ids.(i), t))
                 | Mrt_lp.Bub (i, t) -> Some (Mrt_lp.Bub (ids.(i), t))
                 | Mrt_lp.Bcap _ as k -> Some k)
               frac.Mrt_lp.basis);
        let progressed = ref false in
        (* Shrink supports to the fractional support; freeze integral
           flows. *)
        Array.iteri
          (fun i e ->
            let f = inst.Instance.flows.(e) in
            let old_len = List.length supports.(e) in
            let alive =
              List.filter
                (fun t ->
                  match Hashtbl.find_opt frac.Mrt_lp.values (i, t) with
                  | Some v -> v > 0.
                  | None -> false)
                supports.(e)
            in
            supports.(e) <- alive;
            if List.length alive < old_len then progressed := true;
            let best_t, best_v =
              List.fold_left
                (fun (bt, bv) t ->
                  let v = Hashtbl.find frac.Mrt_lp.values (i, t) in
                  if v > bv then (t, v) else (bt, bv))
                (-1, 0.) alive
            in
            if best_v >= 1. -. 1e-6 && best_t >= 0 then begin
              fixed.(e) <- best_t;
              decr unfixed_count;
              add_load (true, f.Flow.src, best_t) f.Flow.demand;
              add_load (false, f.Flow.dst, best_t) f.Flow.demand;
              progressed := true
            end)
          ids;
        (* Safe row deletions: the row can never exceed cap + bound. *)
        let droppable = ref [] in
        Hashtbl.iter
          (fun key () -> if potential key <= cap key + bound then droppable := key :: !droppable)
          enforced;
        if !droppable <> [] then progressed := true;
        List.iter (Hashtbl.remove enforced) !droppable;
        if not !progressed then begin
          (* Anti-stall fallback: drop the row closest to satisfying the safe
             rule.  Does not occur on healthy vertex solutions. *)
          let best = ref None in
          Hashtbl.iter
            (fun key () ->
              let slack = potential key - (cap key + bound) in
              match !best with
              | Some (_, s) when s <= slack -> ()
              | _ -> best := Some (key, slack))
            enforced;
          match !best with
          | Some (key, _) ->
              incr fallback_drops;
              Metrics.incr c_fallback_drops;
              Hashtbl.remove enforced key
          | None ->
              (* No capacity rows left: the LP is a product of simplices and
                 its vertices are integral, so this cannot be reached. *)
              failwith "Mrt_rounding.round: stalled with no enforced rows"
        end)
  done;
  if !infeasible then None
  else begin
    let schedule = Schedule.make fixed in
    let overflow = Schedule.port_overflow inst schedule in
    Some
      {
        schedule;
        overflow;
        bound;
        within_guarantee = overflow <= bound;
        lp_solves = !lp_solves;
        fallback_drops = !fallback_drops;
      }
  end

let round ?(warm_start = true) inst active =
  Trace.with_span "mrt.round"
    ~args:(fun () -> [ ("flows", Flowsched_util.Json.Int (Instance.n inst)) ])
    (fun () -> round_loop ~warm_start inst active)
