open Flowsched_switch
module Model = Flowsched_lp.Model
module Simplex = Flowsched_lp.Simplex

type built = {
  model : Model.t;
  var : int -> int -> Model.var option;
  vars_of_flow : (int * Model.var) list array;
  horizon : int;
}

let default_horizon inst =
  let load_in = Array.make inst.Instance.m 0 in
  let load_out = Array.make inst.Instance.m' 0 in
  Array.iter
    (fun (f : Flow.t) ->
      load_in.(f.Flow.src) <- load_in.(f.Flow.src) + f.Flow.demand;
      load_out.(f.Flow.dst) <- load_out.(f.Flow.dst) + f.Flow.demand)
    inst.Instance.flows;
  let worst = ref 1 in
  Array.iteri
    (fun p l -> worst := max !worst ((l + inst.Instance.cap_in.(p) - 1) / inst.Instance.cap_in.(p)))
    load_in;
  Array.iteri
    (fun p l ->
      worst := max !worst ((l + inst.Instance.cap_out.(p) - 1) / inst.Instance.cap_out.(p)))
    load_out;
  Instance.last_release inst + !worst + 1

(* Shared construction: per-flow variables over [release, horizon), demand
   rows; the capacity rows and objective differ between the two programs. *)
let build ~objective_term ~add_capacity_rows ?(explicit_ub_rows = false) ?horizon inst =
  let horizon = match horizon with Some h -> h | None -> default_horizon inst in
  if horizon <= Instance.last_release inst then
    invalid_arg "Art_lp: horizon does not cover all release times";
  let model = Model.create () in
  let n = Instance.n inst in
  let tbl = Hashtbl.create (4 * n) in
  let vars_of_flow = Array.make n [] in
  Array.iter
    (fun (f : Flow.t) ->
      let e = f.Flow.id in
      let vars = ref [] in
      for t = horizon - 1 downto f.Flow.release do
        let obj = objective_term inst f t in
        (* b_{e,t} <= d_e is non-binding at the optimum (the positive
           objective coefficients already force the demand row to hold with
           equality), but declaring it bounds every column for the simplex
           engine; [explicit_ub_rows] instead emits it as constraint rows,
           kept as a parity oracle for tests. *)
        let ub = if explicit_ub_rows then infinity else float_of_int f.Flow.demand in
        let v = Model.add_var ~name:(Printf.sprintf "b_%d_%d" e t) ~obj ~ub model in
        if explicit_ub_rows then
          ignore
            (Model.add_constraint
               ~name:(Printf.sprintf "ub_%d_%d" e t)
               model [ (v, 1.) ] Model.Le
               (float_of_int f.Flow.demand));
        Hashtbl.add tbl (e, t) v;
        vars := (t, v) :: !vars
      done;
      vars_of_flow.(e) <- !vars;
      (* (2)/(6): the flow is fully scheduled across its rounds *)
      ignore
        (Model.add_constraint
           ~name:(Printf.sprintf "demand_%d" e)
           model
           (List.map (fun (_, v) -> (v, 1.)) !vars)
           Model.Ge
           (float_of_int f.Flow.demand)))
    inst.Instance.flows;
  add_capacity_rows model inst horizon tbl;
  {
    model;
    var = (fun e t -> Hashtbl.find_opt tbl (e, t));
    vars_of_flow;
    horizon;
  }

(* Flows grouped by port, for building capacity rows. *)
let flows_by_port inst =
  let by_in = Array.make inst.Instance.m [] in
  let by_out = Array.make inst.Instance.m' [] in
  Array.iter
    (fun (f : Flow.t) ->
      by_in.(f.Flow.src) <- f :: by_in.(f.Flow.src);
      by_out.(f.Flow.dst) <- f :: by_out.(f.Flow.dst))
    inst.Instance.flows;
  (by_in, by_out)

let round_capacity_rows model inst horizon tbl =
  let by_in, by_out = flows_by_port inst in
  let add side caps flows_of_port =
    Array.iteri
      (fun p flows ->
        if flows <> [] then
          for t = 0 to horizon - 1 do
            let terms =
              List.filter_map
                (fun (f : Flow.t) ->
                  match Hashtbl.find_opt tbl (f.Flow.id, t) with
                  | Some v -> Some (v, 1.)
                  | None -> None)
                flows
            in
            if terms <> [] then
              ignore
                (Model.add_constraint
                   ~name:(Printf.sprintf "cap_%s%d_%d" side p t)
                   model terms Model.Le
                   (float_of_int caps.(p)))
          done)
      flows_of_port
  in
  add "in" inst.Instance.cap_in by_in;
  add "out" inst.Instance.cap_out by_out

let interval_capacity_rows model inst horizon tbl =
  let by_in, by_out = flows_by_port inst in
  let nwindows = (horizon + 3) / 4 in
  let add side caps flows_of_port =
    Array.iteri
      (fun p flows ->
        if flows <> [] then
          for a = 0 to nwindows - 1 do
            let terms = ref [] in
            for t = 4 * a to min ((4 * a) + 3) (horizon - 1) do
              List.iter
                (fun (f : Flow.t) ->
                  match Hashtbl.find_opt tbl (f.Flow.id, t) with
                  | Some v -> terms := (v, 1.) :: !terms
                  | None -> ())
                flows
            done;
            if !terms <> [] then
              ignore
                (Model.add_constraint
                   ~name:(Printf.sprintf "icap_%s%d_%d" side p a)
                   model !terms Model.Le
                   (4. *. float_of_int caps.(p)))
          done)
      flows_of_port
  in
  add "in" inst.Instance.cap_in by_in;
  add "out" inst.Instance.cap_out by_out

let build_round_lp ?explicit_ub_rows ?horizon inst =
  let objective_term inst (f : Flow.t) t =
    let kappa = float_of_int (Instance.kappa inst f) in
    (float_of_int (t - f.Flow.release) /. float_of_int f.Flow.demand) +. (1. /. (2. *. kappa))
  in
  build ~objective_term ~add_capacity_rows:round_capacity_rows ?explicit_ub_rows ?horizon
    inst

let build_interval_lp ?explicit_ub_rows ?horizon inst =
  let objective_term _inst (f : Flow.t) t =
    (float_of_int (t - f.Flow.release) /. float_of_int f.Flow.demand) +. 0.5
  in
  build ~objective_term ~add_capacity_rows:interval_capacity_rows ?explicit_ub_rows
    ?horizon inst

type bound = { total : float; average : float; fractional : float array }

let bound_of_solution inst built denom =
  let res = Simplex.solve_or_fail built.model in
  let n = Instance.n inst in
  let fractional = Array.make n 0. in
  Array.iteri
    (fun e vars ->
      fractional.(e) <-
        List.fold_left
          (fun acc (_, v) ->
            acc +. (Model.objective_coeff built.model v *. res.Simplex.values.(v)))
          0. vars)
    built.vars_of_flow;
  let total = res.Simplex.objective in
  { total; average = (if denom <= 0. then nan else total /. denom); fractional }

let lower_bound ?horizon inst =
  let built = build_round_lp ?horizon inst in
  bound_of_solution inst built (float_of_int (Instance.n inst))

let weighted_lower_bound ?horizon inst ~weights =
  if Array.length weights <> Instance.n inst then
    invalid_arg "Art_lp.weighted_lower_bound: one weight per flow";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Art_lp.weighted_lower_bound: negative weight")
    weights;
  let objective_term inst (f : Flow.t) t =
    let kappa = float_of_int (Instance.kappa inst f) in
    weights.(f.Flow.id)
    *. ((float_of_int (t - f.Flow.release) /. float_of_int f.Flow.demand)
       +. (1. /. (2. *. kappa)))
  in
  let built = build ~objective_term ~add_capacity_rows:round_capacity_rows ?horizon inst in
  bound_of_solution inst built (Array.fold_left ( +. ) 0. weights)
