open Flowsched_switch
module Model = Flowsched_lp.Model
module Simplex = Flowsched_lp.Simplex
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_iterations = Metrics.counter "ir.iterations"
let c_forced = Metrics.counter "ir.forced_fixes"

type diagnostics = {
  iterations : int;
  forced : int;
  lp_objective : float;
  assignment_cost : float;
  backlog : int;
}

(* Only exact zeros are dropped from supports: nonbasic simplex variables
   are identically 0., and keeping every strictly positive value means the
   previous optimum remains exactly feasible for the relaxed LP(l+1). *)
let eps_zero = 0.

let objective_term (f : Flow.t) t =
  (float_of_int (t - f.Flow.release) /. float_of_int f.Flow.demand) +. 0.5

(* Model-independent key for one basic variable of an optimal basis: a
   structural variable b_{e,t} or the surplus of flow e's demand row.
   Interval rows are regrouped every iteration, so their slacks are not
   carried over (uncovered Le rows keep their default basic slack anyway). *)
type warm_key = Wvar of int * int | Wsurplus of int

(* One LP over the current supports.  [supports.(e)] lists the active rounds
   of unfixed flow [e] in increasing order; [intervals] gives, per port, the
   grouped variable intervals as lists of (flow, round) with a right-hand
   side.  Returns the solved values as a hashtable (e, t) -> value, the
   objective, and the optimal basis as warm keys for the next iteration. *)
let solve_lp ?warm inst supports unfixed intervals =
  let model = Model.create () in
  let var = Hashtbl.create 256 in
  let var_rev = Hashtbl.create 256 in
  let demand_row = Hashtbl.create 64 in
  let demand_row_rev = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let f = inst.Instance.flows.(e) in
      let terms =
        List.map
          (fun t ->
            let v =
              Model.add_var ~name:(Printf.sprintf "b_%d_%d" e t) ~obj:(objective_term f t)
                model
            in
            Hashtbl.add var (e, t) v;
            Hashtbl.add var_rev v (e, t);
            (v, 1.))
          supports.(e)
      in
      let row =
        Model.add_constraint ~name:(Printf.sprintf "demand_%d" e) model terms Model.Ge
          (float_of_int f.Flow.demand)
      in
      Hashtbl.replace demand_row e row;
      Hashtbl.replace demand_row_rev row e)
    unfixed;
  List.iter
    (fun (name, members, rhs) ->
      let terms =
        List.filter_map
          (fun (e, t) ->
            match Hashtbl.find_opt var (e, t) with Some v -> Some (v, 1.) | None -> None)
          members
      in
      if terms <> [] then ignore (Model.add_constraint ~name model terms Model.Le rhs))
    intervals;
  (* Keys of dropped variables / fixed flows vanish on translation. *)
  let warm =
    match warm with
    | None | Some [] -> None
    | Some keys ->
        Some
          (List.filter_map
             (function
               | Wvar (e, t) ->
                   Option.map (fun v -> Simplex.Basic_var v) (Hashtbl.find_opt var (e, t))
               | Wsurplus e ->
                   Option.map (fun r -> Simplex.Basic_slack r) (Hashtbl.find_opt demand_row e))
             keys)
  in
  let res = Simplex.solve_or_fail ?warm model in
  let values = Hashtbl.create 256 in
  Hashtbl.iter (fun key v -> Hashtbl.replace values key res.Simplex.values.(v)) var;
  let basis_keys =
    Array.to_list res.Simplex.basis
    |> List.filter_map (function
         | Simplex.Basic_var v ->
             Option.map (fun (e, t) -> Wvar (e, t)) (Hashtbl.find_opt var_rev v)
         | Simplex.Basic_slack r ->
             Option.map (fun e -> Wsurplus e) (Hashtbl.find_opt demand_row_rev r)
         | Simplex.Nonbasic_upper _ -> None (* this model declares no bounds *))
  in
  (values, res.Simplex.objective, basis_keys)

(* Initial intervals: fixed windows of four rounds with rhs 4 c_p, per port
   (constraint (7)). *)
let initial_intervals inst supports unfixed =
  let horizon =
    List.fold_left
      (fun acc e -> List.fold_left (fun acc t -> max acc (t + 1)) acc supports.(e))
      1 unfixed
  in
  let nwindows = (horizon + 3) / 4 in
  let win_in = Array.init inst.Instance.m (fun _ -> Array.make nwindows []) in
  let win_out = Array.init inst.Instance.m' (fun _ -> Array.make nwindows []) in
  List.iter
    (fun e ->
      let f = inst.Instance.flows.(e) in
      List.iter
        (fun t ->
          let a = t / 4 in
          win_in.(f.Flow.src).(a) <- (e, t) :: win_in.(f.Flow.src).(a);
          win_out.(f.Flow.dst).(a) <- (e, t) :: win_out.(f.Flow.dst).(a))
        supports.(e))
    unfixed;
  let intervals = ref [] in
  let collect side caps windows =
    Array.iteri
      (fun p per_window ->
        Array.iteri
          (fun a members ->
            if members <> [] then
              intervals :=
                ( Printf.sprintf "icap_%s%d_%d" side p a,
                  members,
                  4. *. float_of_int caps.(p) )
                :: !intervals)
          per_window)
      windows
  in
  collect "in" inst.Instance.cap_in win_in;
  collect "out" inst.Instance.cap_out win_out;
  !intervals

(* Regrouped intervals for iterations >= 1: per port, sort surviving
   variables by round (ties by flow id) and greedily group until the group's
   LP(l-1) volume first exceeds 4 c_p.  The group's rhs is its own volume
   (Size), making LP(l) a relaxation of LP(l-1). *)
let regrouped_intervals inst supports unfixed values =
  let by_in = Array.make inst.Instance.m [] in
  let by_out = Array.make inst.Instance.m' [] in
  List.iter
    (fun e ->
      let f = inst.Instance.flows.(e) in
      List.iter
        (fun t ->
          by_in.(f.Flow.src) <- (t, e) :: by_in.(f.Flow.src);
          by_out.(f.Flow.dst) <- (t, e) :: by_out.(f.Flow.dst))
        supports.(e))
    unfixed;
  let intervals = ref [] in
  let collect side caps by_port =
    Array.iteri
      (fun p entries ->
        if entries <> [] then begin
          let sorted = List.sort compare entries in
          let threshold = 4. *. float_of_int caps.(p) in
          let group = ref [] and volume = ref 0. and idx = ref 0 in
          let flush () =
            if !group <> [] then begin
              intervals :=
                (Printf.sprintf "gcap_%s%d_%d" side p !idx, List.rev !group, !volume)
                :: !intervals;
              incr idx;
              group := [];
              volume := 0.
            end
          in
          List.iter
            (fun (t, e) ->
              let v = try Hashtbl.find values (e, t) with Not_found -> 0. in
              group := (e, t) :: !group;
              volume := !volume +. v;
              if !volume > threshold then flush ())
            sorted;
          flush ()
        end)
      by_port
  in
  collect "in" inst.Instance.cap_in by_in;
  collect "out" inst.Instance.cap_out by_out;
  !intervals

let run_loop ?horizon ~warm_start inst =
  let n = Instance.n inst in
  let horizon =
    match horizon with Some h -> h | None -> Art_lp.default_horizon inst
  in
  let supports =
    Array.map
      (fun (f : Flow.t) ->
        List.init (horizon - f.Flow.release) (fun i -> f.Flow.release + i))
      inst.Instance.flows
  in
  let schedule = Schedule.unassigned n in
  let forced = ref 0 in
  let iterations = ref 0 in
  let lp0_objective = ref nan in
  let unfixed = ref (List.init n (fun e -> e)) in
  let last_values = ref None in
  (* LP(l+1) is a relaxation of LP(l) restricted to the surviving support,
     so the previous optimal basis stays primal feasible and seeds the next
     solve (phase 1 is skipped entirely on acceptance). *)
  let warm = ref None in
  while !unfixed <> [] do
    let intervals =
      match !last_values with
      | None -> initial_intervals inst supports !unfixed
      | Some values -> regrouped_intervals inst supports !unfixed values
    in
    let values, objective, basis_keys =
      Trace.with_span "ir.lp"
        ~args:(fun () -> [ ("unfixed", Flowsched_util.Json.Int (List.length !unfixed)) ])
        (fun () ->
          solve_lp ?warm:(if warm_start then !warm else None) inst supports !unfixed intervals)
    in
    warm := Some basis_keys;
    incr iterations;
    Metrics.incr c_iterations;
    if Float.is_nan !lp0_objective then lp0_objective := objective;
    (* Shrink supports, fix integral flows. *)
    let progressed = ref false in
    let still_unfixed = ref [] in
    List.iter
      (fun e ->
        let f = inst.Instance.flows.(e) in
        let demand = float_of_int f.Flow.demand in
        let old_len = List.length supports.(e) in
        let alive =
          List.filter
            (fun t ->
              match Hashtbl.find_opt values (e, t) with
              | Some v -> v > eps_zero
              | None -> false)
            supports.(e)
        in
        supports.(e) <- alive;
        if List.length alive < old_len then progressed := true;
        let best_t, best_v =
          List.fold_left
            (fun (bt, bv) t ->
              let v = Hashtbl.find values (e, t) in
              if v > bv then (t, v) else (bt, bv))
            (-1, 0.) alive
        in
        if best_v >= demand -. 1e-6 && best_t >= 0 then begin
          Schedule.assign schedule e best_t;
          progressed := true
        end
        else still_unfixed := e :: !still_unfixed)
      !unfixed;
    let remaining = List.rev !still_unfixed in
    if (not !progressed) && remaining <> [] then begin
      (* Numerical last resort: fix the flow whose largest variable is
         closest to integral.  Should not trigger on healthy instances. *)
      let e_best = ref (-1) and t_best = ref (-1) and v_best = ref (-1.) in
      List.iter
        (fun e ->
          List.iter
            (fun t ->
              let v = Hashtbl.find values (e, t) in
              if v > !v_best then begin
                v_best := v;
                e_best := e;
                t_best := t
              end)
            supports.(e))
        remaining;
      if !e_best >= 0 then begin
        Schedule.assign schedule !e_best !t_best;
        incr forced;
        Metrics.incr c_forced;
        unfixed := List.filter (fun e -> e <> !e_best) remaining
      end
      else failwith "Iterative_rounding.run: empty support for unfixed flow"
    end
    else unfixed := remaining;
    last_values := Some values
  done;
  let assignment_cost =
    Array.fold_left
      (fun acc (f : Flow.t) ->
        acc +. objective_term f (Schedule.round_of schedule f.Flow.id))
      0. inst.Instance.flows
  in
  let backlog = Schedule.max_interval_excess inst schedule in
  ( schedule,
    {
      iterations = !iterations;
      forced = !forced;
      lp_objective = !lp0_objective;
      assignment_cost;
      backlog;
    } )

let run ?horizon ?(warm_start = true) inst =
  Trace.with_span "ir.run"
    ~args:(fun () -> [ ("flows", Flowsched_util.Json.Int (Instance.n inst)) ])
    (fun () -> run_loop ?horizon ~warm_start inst)
