(** Rounding the time-constrained LP (Theorem 3 / Lemma 4.3).

    The paper rounds a fractional solution of LP (19)–(21) with the
    Karp–Leighton–Rivest–Thompson–Vazirani–Vazirani theorem: there is an
    integral solution in which every assignment row (20) holds exactly and
    every capacity row (19) is exceeded by at most [2 dmax - 1] (demands are
    integral, and each column touches two capacity rows with coefficient
    [d_e <= dmax]).

    We realize that guarantee by iterative LP relaxation, the constructive
    counterpart used throughout degree-bounded rounding: re-solve to a
    vertex, freeze flows whose variable hit 1, restrict every flow's active
    rounds to the current fractional support, and delete a capacity row as
    soon as its worst-case remaining load — fixed load plus the total demand
    of flows that could still land on it — cannot exceed
    [c_p + 2 dmax - 1].  Deleted rows can never be violated beyond the
    bound, assignment rows are never deleted, and vertex solutions shrink
    the support each round, so the procedure terminates with every flow in
    exactly one active round. *)

type outcome = {
  schedule : Flowsched_switch.Schedule.t;
  overflow : int;  (** Measured max port overload w.r.t. original capacities. *)
  bound : int;  (** The guarantee [2 dmax - 1]. *)
  within_guarantee : bool;  (** [overflow <= bound]. *)
  lp_solves : int;
  fallback_drops : int;
      (** Rows dropped by the anti-stall fallback rather than the safe rule;
          0 in healthy runs, and only then is the bound formally implied. *)
}

val round :
  ?warm_start:bool -> Flowsched_switch.Instance.t -> Mrt_lp.active -> outcome option
(** [None] when the LP itself is infeasible (then no schedule meets the
    deadlines at all, by Theorem 3's relaxation argument).  [warm_start]
    (default [true]) seeds each re-solve with the previous round's optimal
    basis, translated through the shrinking flow renumbering. *)
