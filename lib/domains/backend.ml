module Pool = Flowsched_exec.Pool

type t = Inline | Fork | Domains

let all = [ Inline; Fork; Domains ]
let to_string = function Inline -> "inline" | Fork -> "fork" | Domains -> "domains"

let of_string = function
  | "inline" -> Ok Inline
  | "fork" -> Ok Fork
  | "domains" -> Ok Domains
  | other -> Error (Printf.sprintf "unknown backend %S (expected inline|fork|domains)" other)

let map ?(backend = Fork) ?jobs ?timeout ?retries ?base_seed ?backoff ?faults
    ?max_jobs_per_worker ?progress ?on_result ~f inputs =
  match backend with
  | Inline ->
      Pool.map ~jobs:1 ?timeout ?retries ?base_seed ?backoff ?faults ?progress ?on_result ~f
        inputs
  | Fork ->
      Pool.map ?jobs ?timeout ?retries ?base_seed ?backoff ?faults ?max_jobs_per_worker
        ?progress ?on_result ~f inputs
  | Domains ->
      Executor.map ?jobs ?timeout ?retries ?base_seed ?backoff ?faults ?progress ?on_result
        ~f inputs
