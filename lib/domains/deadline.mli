(** Cooperative per-domain deadlines.

    A domain cannot be killed the way the fork pool SIGKILLs a hung worker
    process: domains share the heap, so tearing one down mid-mutation would
    corrupt the whole process.  Timeouts in the domains executor are
    therefore {e cooperative}: the executor arms a domain-local deadline
    before running a job, and long-running kernels (the MRT rho search, the
    sweep-cell policy loop) call {!check} at safe points.  An attempt that
    never checks is still bounded post hoc — the executor discards an
    over-budget result exactly like the pool's inline mode.

    The deadline is stored in [Domain.DLS], so arming it in one domain
    never affects another; {!Parallel.map} propagates the caller's deadline
    into the domains it spawns. *)

exception Expired of float
(** Carries the wall-clock budget (seconds) that was exceeded.  The
    executor reports it as ["timed out after <budget>s"], matching the
    fork pool's reason string. *)

val set : (float * float) option -> unit
(** [set (Some (abs_deadline, budget))] arms the calling domain's deadline
    ([abs_deadline] in [Unix.gettimeofday] seconds); [set None] disarms it.
    Reserved for executors ({!Executor}, {!Parallel}). *)

val get : unit -> (float * float) option
(** The calling domain's armed deadline, if any. *)

val check : unit -> unit
(** Raise [Expired budget] if the calling domain's deadline has passed;
    no-op (one DLS load) when disarmed.  Sprinkle into loops whose single
    iteration is long enough to matter. *)
