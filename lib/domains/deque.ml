(* Indices grow without bound (OCaml ints don't wrap in any realistic run)
   and are mapped into the power-of-two buffer by masking.  [top] is only
   ever incremented — by a successful thief CAS, or by the owner CASing the
   last element away from under the thieves — so there is no ABA. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

let initial_capacity = 64

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init initial_capacity (fun _ -> Atomic.make None));
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

(* Owner only.  Copying does not clear the old array: a thief still holding
   it will read a stale-but-correct value and the CAS on [top] decides
   whether it owns the element. *)
let grow q ~bottom ~top =
  let old = Atomic.get q.buf in
  let n = Array.length old in
  let bigger = Array.init (2 * n) (fun _ -> Atomic.make None) in
  for i = top to bottom - 1 do
    Atomic.set bigger.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set q.buf bigger

let push q v =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let a = Atomic.get q.buf in
  let a =
    if b - t >= Array.length a then begin
      grow q ~bottom:b ~top:t;
      Atomic.get q.buf
    end
    else a
  in
  Atomic.set a.(b land (Array.length a - 1)) (Some v);
  (* Publishing [bottom] after the slot write is what makes the element
     visible to thieves fully constructed (SC atomics order the two). *)
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Already empty; restore the canonical empty shape. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let a = Atomic.get q.buf in
    let slot = a.(b land (Array.length a - 1)) in
    let v = Atomic.get slot in
    if b > t then begin
      (* At least two elements: thieves cannot reach index [b] (they would
         have to read the pre-decrement [bottom] after our write of the
         decremented one), so this take needs no CAS. *)
      Atomic.set slot None;
      v
    end
    else begin
      (* Last element: race the thieves for it via [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then v else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else begin
    let a = Atomic.get q.buf in
    let v = Atomic.get a.(t land (Array.length a - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then v else None
  end
