(** Shared-memory executor: the {!Flowsched_exec.Pool} contract on OCaml 5
    domains.

    [map] exposes the same submit/settle surface as [Pool.map] — input
    order preserved, deterministic per-job [Random] reseeding
    ({!Flowsched_exec.Pool.seed_for}), bounded retry with the pool's
    deterministic backoff schedule, per-attempt timeouts, fault-plane
    hooks, [progress]/[on_result] callbacks in the calling domain — but
    runs the jobs on a fixed set of spawned domains pulling from
    work-stealing deques ({!Deque}) instead of forked processes, so there
    is no [Marshal] serialization on either the payload or the result
    path, and job code can itself go parallel ({!Parallel}).

    Semantic deltas vs the forked pool, all inherited from sharing one
    address space:

    - Timeouts are {e cooperative} ({!Deadline}): the executor arms a
      domain-local deadline and instrumented kernels raise out of the
      attempt; an attempt that never checks is discarded post hoc once it
      returns over budget (exactly the pool's inline-mode rule, including
      the ["timed out after <t>s"] reason string).
    - Fault kinds [Crash] and [Hang] degrade to transient failures with
      the same {!Flowsched_exec.Faults.reason} text as inline mode — a
      domain cannot be SIGKILLed without taking the process with it.
      [Corrupt] likewise: there are no frames to damage.
    - Worker recycling ([max_jobs_per_worker]) does not exist: domains
      hold no per-process resources to leak.

    Observability: worker domains record into their own domain-local
    {!Flowsched_obs.Metrics} cells and {!Flowsched_obs.Trace} buffers; at
    join time (also after an interrupt) the executor absorbs each worker's
    snapshot and drained spans into the calling domain {e in domain index
    order}, so merged totals are deterministic and equal an inline run.
    The executor's own counters live under ["domains.*"] ([jobs_done],
    [jobs_failed], [retries], [steals], [spawned], the [backoff_seconds]
    gauge and [job_seconds] histogram) — the shared-memory analogue of
    ["pool.*"], excluded from backend-identity comparisons the same way.

    Interrupts: SIGINT/SIGTERM set a flag; the settle loop notices,
    signals the worker domains to stop (they finish their current attempt
    — cooperative, like timeouts), joins them, absorbs their metrics and
    partial trace buffers, delivers any already-settled results through
    [on_result], and raises {!Flowsched_exec.Pool.Interrupted}. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?base_seed:int ->
  ?backoff:float ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?progress:(Flowsched_exec.Pool.event -> unit) ->
  ?on_result:(int -> 'b Flowsched_exec.Pool.outcome -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b Flowsched_exec.Pool.outcome array
(** [map ~f inputs] with [jobs] worker domains (default
    {!Flowsched_exec.Pool.default_jobs}; [jobs <= 1] delegates to the
    pool's inline mode, so the two backends share one sequential path).
    Jobs are dealt round-robin across the worker deques and rebalanced by
    stealing; retries run in whichever domain held the job when it failed.
    All callbacks fire in the calling domain. *)
