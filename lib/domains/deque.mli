(** Chase–Lev work-stealing deque.

    One owner domain pushes and pops at the bottom (LIFO, so an owner keeps
    working on what it most recently queued); any number of thief domains
    steal from the top (FIFO, so thieves take the oldest work, which is the
    natural order for a dealt-out job grid).  The classic algorithm (Chase
    & Lev 2005, in the formulation of Lê et al. 2013) maps directly onto
    OCaml 5's sequentially consistent [Atomic]s: [top] only grows and is
    CASed by thieves (and by the owner for the final element), [bottom] is
    written only by the owner, and the circular buffer holds one [Atomic]
    cell per slot so a racing read is well-defined rather than undefined
    behaviour.  The buffer grows geometrically (owner-side only); a thief
    holding the old array is safe because index arithmetic, not the array
    identity, arbitrates ownership of an element.

    Progress guarantees: [push]/[pop] are wait-free for the owner (modulo
    growth), [steal] is lock-free — a thief can lose a race and report
    [None], in which case the caller just moves on to another victim. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add an element at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element, or [None] when the
    deque is empty (including when a thief won the race for the last
    element). *)

val steal : 'a t -> 'a option
(** Any domain: take the oldest element.  [None] when the deque looks
    empty {e or} the CAS lost a race with another thief or with the owner
    taking the last element — callers should treat [None] as "try
    elsewhere, then retry". *)

val size : 'a t -> int
(** Snapshot of the current length; racy, only a heuristic. *)
