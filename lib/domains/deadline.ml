exception Expired of float

type state = { mutable limit : (float * float) option }

let local_key : state Domain.DLS.key = Domain.DLS.new_key (fun () -> { limit = None })

let set v = (Domain.DLS.get local_key).limit <- v
let get () = (Domain.DLS.get local_key).limit

let check () =
  match (Domain.DLS.get local_key).limit with
  | Some (abs_deadline, budget) when Unix.gettimeofday () >= abs_deadline ->
      raise (Expired budget)
  | _ -> ()
