module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace
module Pool = Flowsched_exec.Pool
module Faults = Flowsched_exec.Faults
module Signals = Flowsched_exec.Signals

(* The shared-memory analogue of "pool.*": fires in the coordinating
   process either way, so backend-identity gates exclude both prefixes. *)
let c_jobs_done = Metrics.counter "domains.jobs_done"
let c_jobs_failed = Metrics.counter "domains.jobs_failed"
let c_retries = Metrics.counter "domains.retries"
let c_spawned = Metrics.counter "domains.spawned"
let c_steals = Metrics.counter "domains.steals"
let g_backoff_seconds = Metrics.gauge "domains.backoff_seconds"
let h_job_seconds = Metrics.histogram "domains.job_seconds"

(* Worker -> coordinator messages.  A plain mutex-guarded list: the
   coordinator polls (1ms sleep when idle) rather than blocking on a
   condition variable, so the interrupt flag is observed promptly and the
   sleeping coordinator yields its core to the workers. *)
type 'b msg = Event of Pool.event | Settled of int * 'b Pool.outcome

type 'b chan = { mu : Mutex.t; mutable q : 'b msg list (* newest first *) }

let send ch m = Mutex.protect ch.mu (fun () -> ch.q <- m :: ch.q)

let drain_chan ch =
  Mutex.protect ch.mu (fun () ->
      let q = ch.q in
      ch.q <- [];
      List.rev q)

let sleep_quietly s = try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let timeout_reason t = Printf.sprintf "timed out after %.3gs" t

(* One job, run to settlement (retries included) inside the current worker
   domain — the same state machine as the pool's inline mode, minus the
   interrupt check (the worker loop handles [stop] between jobs). *)
let run_job ~chan ~timeout ~retries ~base_seed ~backoff ~faults ~remaining ~stop ~f ~inputs job
    =
  let rec attempt k =
    send chan (Event (Pool.Job_started { job; attempt = k }));
    let fault =
      match faults with
      | None -> None
      | Some plan ->
          let d = Faults.decide plan ~job ~attempt:k in
          Option.iter Faults.note_injected d;
          d
    in
    let t0 = Unix.gettimeofday () in
    Random.init (Pool.seed_for ~base_seed job);
    Deadline.set (Option.map (fun t -> (t0 +. t, t)) timeout);
    let result =
      match fault with
      | Some kind ->
          (* Crash/Hang/Corrupt have no shared-memory equivalent; degrade
             every kind to a transient failure like the pool's inline mode. *)
          Error (Faults.reason kind ~job ~attempt:k)
      | None -> (
          match f inputs.(job) with
          | v -> Ok v
          | exception Deadline.Expired budget -> Error (timeout_reason budget)
          | exception e -> Error (Printexc.to_string e))
    in
    Deadline.set None;
    let elapsed = Unix.gettimeofday () -. t0 in
    let result =
      (* Post-hoc wall-clock enforcement for attempts that never reached a
         cooperative check, mirroring inline mode. *)
      match (result, timeout) with
      | Ok _, Some t when elapsed >= t -> Error (timeout_reason t)
      | _ -> result
    in
    match result with
    | Ok v ->
        Metrics.incr c_jobs_done;
        Metrics.observe h_job_seconds elapsed;
        send chan (Event (Pool.Job_done { job; attempt = k; elapsed }));
        Atomic.decr remaining;
        send chan (Settled (job, Pool.Done v))
    | Error reason ->
        if k <= retries && not (Atomic.get stop) then begin
          Metrics.incr c_retries;
          send chan (Event (Pool.Job_retried { job; attempt = k; reason }));
          let delay = Pool.backoff_delay ~backoff ~base_seed ~job ~attempt:k in
          if delay > 0. then begin
            Metrics.add_gauge g_backoff_seconds delay;
            sleep_quietly delay
          end;
          attempt (k + 1)
        end
        else begin
          Metrics.incr c_jobs_failed;
          send chan (Event (Pool.Job_failed { job; attempts = k; reason }));
          Atomic.decr remaining;
          send chan (Settled (job, Pool.Failed { attempts = k; reason }))
        end
  in
  attempt 1

let worker ~idx ~deques ~stop ~remaining ~run =
  let ndom = Array.length deques in
  let mine = deques.(idx) in
  (* Find work: own deque first (LIFO), then sweep the others as a thief.
     After a few empty sweeps, sleep briefly instead of spinning — on a
     box with fewer cores than domains the sleep is what lets the busy
     domains actually run. *)
  let rec loop idle =
    if Atomic.get stop || Atomic.get remaining <= 0 then ()
    else
      match Deque.pop mine with
      | Some job ->
          run job;
          loop 0
      | None -> (
          let rec sweep k =
            if k >= ndom then None
            else
              match Deque.steal deques.((idx + k) mod ndom) with
              | Some job ->
                  Metrics.incr c_steals;
                  Some job
              | None -> sweep (k + 1)
          in
          match sweep 1 with
          | Some job ->
              run job;
              loop 0
          | None ->
              if idle >= 8 then sleep_quietly 0.0005 else Domain.cpu_relax ();
              loop (min (idle + 1) 8))
  in
  loop 0;
  (* The worker's whole observable contribution travels back through the
     join: its domain-local metric cells and span buffer. *)
  (Metrics.snapshot (), Trace.drain ())

let run_domains ~jobs ~timeout ~retries ~base_seed ~backoff ~faults ~interrupted ~progress
    ~on_result ~f inputs =
  let n = Array.length inputs in
  (* Never spawn more domains than the hardware can run: oversubscribed
     domains all participate in every stop-the-world minor collection, and
     on a loaded or small box that synchronization costs more than the
     parallelism recovers (measured ~2x slowdown at 4 domains on 1 core).
     Job results and seeds depend only on the job index, never on which
     domain ran the job, so capping the worker count cannot change output. *)
  let ndom = min (min jobs n) (Domain.recommended_domain_count ()) in
  let ndom = max 1 ndom in
  let deques = Array.init ndom (fun _ -> Deque.create ()) in
  (* Deal round-robin, pushed in descending job order so each owner pops
     its lowest-numbered job first. *)
  for job = n - 1 downto 0 do
    Deque.push deques.(job mod ndom) job
  done;
  let stop = Atomic.make false in
  let remaining = Atomic.make n in
  let chan = { mu = Mutex.create (); q = [] } in
  let results = Array.make n None in
  let settled = ref 0 in
  let settle job outcome =
    if results.(job) = None then begin
      results.(job) <- Some outcome;
      incr settled;
      on_result job outcome
    end
  in
  let process = function
    | Event e -> progress e
    | Settled (job, outcome) -> settle job outcome
  in
  Metrics.incr c_spawned ~by:ndom;
  let doms =
    Array.init ndom (fun idx ->
        Domain.spawn (fun () ->
            worker ~idx ~deques ~stop ~remaining
              ~run:
                (run_job ~chan ~timeout ~retries ~base_seed ~backoff ~faults ~remaining ~stop
                   ~f ~inputs)))
  in
  let interrupt_seen = ref false in
  while !settled < n && not !interrupt_seen do
    if !interrupted then interrupt_seen := true
    else begin
      match drain_chan chan with
      | [] -> sleep_quietly 0.001
      | msgs -> List.iter process msgs
    end
  done;
  Atomic.set stop true;
  (* Join in index order and absorb each worker's metrics and spans in that
     order — the only deterministic merge order available, and the
     associativity of the merge algebra makes it equal the inline totals. *)
  Array.iter
    (fun d ->
      let snap, spans = Domain.join d in
      Metrics.absorb snap;
      Trace.absorb spans)
    doms;
  (* Anything that settled while we were interrupting is still delivered:
     completed work stays durable (checkpoint hooks ride on_result). *)
  List.iter process (drain_chan chan);
  if !interrupt_seen then raise Pool.Interrupted;
  Array.map (function Some r -> r | None -> assert false) results

let map ?jobs ?timeout ?(retries = 1) ?(base_seed = 0) ?(backoff = 0.) ?faults
    ?(progress = fun _ -> ()) ?(on_result = fun _ _ -> ()) ~f inputs =
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  if Array.length inputs = 0 then [||]
  else if jobs = 1 then
    (* One sequential path for both backends: the pool's inline mode. *)
    Pool.map ~jobs:1 ?timeout ~retries ~base_seed ~backoff ?faults ~progress ~on_result ~f
      inputs
  else
    Signals.with_interrupt_flag (fun interrupted ->
        Trace.with_span "domains.map"
          ~args:(fun () ->
            [
              ("jobs", Flowsched_util.Json.Int jobs);
              ("inputs", Flowsched_util.Json.Int (Array.length inputs));
            ])
          (fun () ->
            run_domains ~jobs ~timeout ~retries ~base_seed ~backoff ~faults ~interrupted
              ~progress ~on_result ~f inputs))
