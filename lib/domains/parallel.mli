(** Scoped fork–join parallelism for use {e inside} a job.

    [map ~width n f] computes [f 0 .. f (n-1)] using the calling domain
    plus up to [width - 1] freshly spawned domains (index [i] runs on
    domain [i mod width]; the caller takes residue class 0) and returns the
    results in index order.  This is what the fork pool could never offer:
    a sweep cell, itself already running on an executor domain, can fan a
    hot inner loop (parallel rho probes, BvN stripes) across cores and
    join before returning, with no serialization.

    Determinism and observability: every spawned domain's metric cells and
    trace spans are absorbed into the caller {e in chunk index order} when
    it joins, so counter totals equal the sequential run regardless of
    interleaving.  The caller's cooperative {!Deadline} is propagated into
    each spawned domain.  If any index raises, all domains are still
    joined (and their metrics absorbed), then the exception of the
    smallest raising index is re-raised.

    Keep [width] modest: domains are real OS threads with their own minor
    heaps, and nothing stops [executor jobs x width] from oversubscribing
    the machine — that is the caller's budget to spend. *)

val map : width:int -> int -> (int -> 'a) -> 'a array
(** [width <= 1] (or [n <= 1]) runs sequentially in the caller with no
    spawns at all — the zero-cost default path. *)
