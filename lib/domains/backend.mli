(** Executor backend selection: one dispatch point for everything that
    fans jobs out ([flowsched sweep], [bench], {!Flowsched_sim.Experiment}).

    - [Inline]: the pool's sequential mode, regardless of [jobs] — the
      reference semantics the other two must reproduce byte-for-byte.
    - [Fork]: {!Flowsched_exec.Pool} forked workers (process isolation,
      SIGKILL-able timeouts, Marshal frames).
    - [Domains]: {!Executor} shared-memory domains (no serialization,
      cooperative timeouts, in-job {!Parallel}). *)

type t = Inline | Fork | Domains

val all : t list
val to_string : t -> string

val of_string : string -> (t, string) result
(** Accepts ["inline" | "fork" | "domains"]; the [Error] carries a usable
    one-line message. *)

val map :
  ?backend:t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?base_seed:int ->
  ?backoff:float ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?max_jobs_per_worker:int ->
  ?progress:(Flowsched_exec.Pool.event -> unit) ->
  ?on_result:(int -> 'b Flowsched_exec.Pool.outcome -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b Flowsched_exec.Pool.outcome array
(** [Pool.map]'s surface with a [backend] selector (default [Fork], the
    historical behaviour).  [max_jobs_per_worker] only means something for
    [Fork] (worker recycling) and is ignored by the other backends. *)
