module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_forks = Metrics.counter "domains.parallel_forks"

(* Indices are strided, not blocked: chunk k runs k, k+width, k+2width...
   so a monotone cost gradient across indices (typical for rho probes)
   spreads evenly. *)
let run_chunk n width k f =
  let out = ref [] in
  let i = ref k in
  while !i < n do
    let r = match f !i with v -> Ok v | exception e -> Error e in
    out := (!i, r) :: !out;
    i := !i + width
  done;
  !out

let map ~width n f =
  if n <= 0 then [||]
  else if width <= 1 || n = 1 then Array.init n f
  else begin
    let width = min width n in
    let deadline = Deadline.get () in
    Metrics.incr c_forks ~by:(width - 1);
    let children =
      Array.init (width - 1) (fun j ->
          Domain.spawn (fun () ->
              Deadline.set deadline;
              let r = run_chunk n width (j + 1) f in
              (r, Metrics.snapshot (), Trace.drain ())))
    in
    let mine = run_chunk n width 0 f in
    let results = Array.make n None in
    let place = List.iter (fun (i, r) -> results.(i) <- Some r) in
    place mine;
    (* Join every child before looking at failures: no orphaned domains,
       and metrics/spans absorb in chunk order for a deterministic merge. *)
    Array.iter
      (fun d ->
        let r, snap, spans = Domain.join d in
        Metrics.absorb snap;
        Trace.absorb spans;
        place r)
      children;
    Array.iteri
      (fun _ r -> match r with Some (Error e) -> raise e | _ -> ())
      results;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end
