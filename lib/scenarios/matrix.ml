open Flowsched_switch
open Flowsched_util

type mode =
  | Flows
  | Endpoint of { nodes : int; node_cap : int }
  | Coflow of { groups : int; max_weight : int }

let mode_names = [ "flows"; "endpoint"; "coflow" ]

let mode_of_string s =
  let int_param name v =
    match int_of_string_opt v with
    | Some i when i >= 1 -> Ok i
    | _ -> Error (Printf.sprintf "mode %S: bad parameter %S" name v)
  in
  match String.split_on_char ':' s with
  | [ "flows" ] -> Ok Flows
  | "endpoint" :: rest -> (
      match rest with
      | [] -> Ok (Endpoint { nodes = 2; node_cap = 2 })
      | [ n ] -> Result.map (fun nodes -> Endpoint { nodes; node_cap = 2 }) (int_param s n)
      | [ n; c ] ->
          Result.bind (int_param s n) (fun nodes ->
              Result.map (fun node_cap -> Endpoint { nodes; node_cap }) (int_param s c))
      | _ -> Error (Printf.sprintf "mode %S: too many parameters" s))
  | "coflow" :: rest -> (
      match rest with
      | [] -> Ok (Coflow { groups = 4; max_weight = 4 })
      | [ g ] -> Result.map (fun groups -> Coflow { groups; max_weight = 4 }) (int_param s g)
      | [ g; w ] ->
          Result.bind (int_param s g) (fun groups ->
              Result.map (fun max_weight -> Coflow { groups; max_weight }) (int_param s w))
      | _ -> Error (Printf.sprintf "mode %S: too many parameters" s))
  | _ ->
      Error
        (Printf.sprintf "unknown mode %S (expected %s)" s (String.concat "|" mode_names))

let mode_to_string = function
  | Flows -> "flows"
  | Endpoint { nodes; node_cap } -> Printf.sprintf "endpoint:%d:%d" nodes node_cap
  | Coflow { groups; max_weight } -> Printf.sprintf "coflow:%d:%d" groups max_weight

type cell = { scenario : Scenario.spec; mode : mode; lp : bool }

type entry = { name : string; art : float; mrt : int }

type cell_result = {
  cell : cell;
  flows : int;
  entries : entry list;
  bound_kind : string;  (* "lp" | "lp-relaxed" | "bottleneck" | "none" *)
  bound_avg : float;
  bound_max : float;
  error : string option;
}

(* Wrap a policy so its selection also respects the node capacities: walk
   the selection in the policy's own order and drop any flow that would
   overflow its input- or output-side node.  Dropping flows from a
   port-feasible set keeps it port-feasible, and with node caps scaled to
   admit every flow alone (see [endpoint_for]) any non-empty selection
   keeps at least its first flow, so the engine still makes progress. *)
let node_guard (ep : Endpoint.t) (p : Flowsched_online.Policy.t) =
  {
    Flowsched_online.Policy.name = p.Flowsched_online.Policy.name;
    select =
      (fun ctx ->
        let sel = p.Flowsched_online.Policy.select ctx in
        let load_in = Array.make ep.Endpoint.nodes_in 0 in
        let load_out = Array.make ep.Endpoint.nodes_out 0 in
        List.filter
          (fun i ->
            let f = ctx.Flowsched_online.Policy.queue.(i) in
            let ni = ep.Endpoint.node_in.(f.Flow.src) in
            let no = ep.Endpoint.node_out.(f.Flow.dst) in
            if
              load_in.(ni) + f.Flow.demand <= ep.Endpoint.cap_node_in.(ni)
              && load_out.(no) + f.Flow.demand <= ep.Endpoint.cap_node_out.(no)
            then begin
              load_in.(ni) <- load_in.(ni) + f.Flow.demand;
              load_out.(no) <- load_out.(no) + f.Flow.demand;
              true
            end
            else false)
          sel);
  }

(* The cell's endpoint structure: balanced contiguous blocks, with caps
   raised to the instance's dmax so every flow fits its nodes alone —
   otherwise an oversized flow could never be scheduled and every policy
   would starve. *)
let endpoint_for inst ~nodes ~node_cap =
  let ep =
    Endpoint.blocks ~m:inst.Instance.m ~m':inst.Instance.m'
      ~nodes:(min nodes (min inst.Instance.m inst.Instance.m'))
      ~cap:node_cap
  in
  Endpoint.scale ep ~min_cap:(max 1 (Instance.dmax inst))

(* LP lower bounds, shared by the Flows and Endpoint modes.  Graceful
   degradation as in the sweep: a pivot-budget blowout or solver failure
   yields nan bounds plus the error text instead of aborting the grid. *)
let lp_bounds inst ~max_makespan =
  try
    let horizon = max (Flowsched_core.Art_lp.default_horizon inst) max_makespan in
    let bound = Flowsched_core.Art_lp.lower_bound ~horizon inst in
    let rho = Flowsched_core.Mrt_scheduler.min_fractional_rho inst in
    (bound.Flowsched_core.Art_lp.average, float_of_int rho, None)
  with (Flowsched_lp.Simplex.Iteration_limit _ | Failure _) as e ->
    (nan, nan, Some (Printexc.to_string e))

let schedule_entry inst name sched =
  {
    name;
    art = Schedule.average_response inst sched;
    mrt = Schedule.max_response inst sched;
  }

let run_cell ~policies cell =
  let inst = Scenario.instance cell.scenario in
  let flows = Instance.n inst in
  if flows = 0 then
    {
      cell;
      flows;
      entries =
        List.map
          (fun (p : Flowsched_online.Policy.t) ->
            { name = p.Flowsched_online.Policy.name; art = nan; mrt = 0 })
          policies;
      bound_kind = "none";
      bound_avg = nan;
      bound_max = nan;
      error = None;
    }
  else
    match cell.mode with
    | Flows ->
        let max_makespan = ref 0 in
        let entries =
          List.map
            (fun (p : Flowsched_online.Policy.t) ->
              Flowsched_domains.Deadline.check ();
              let r = Flowsched_sim.Engine.run_instance p inst in
              max_makespan := max !max_makespan r.Flowsched_sim.Engine.makespan;
              {
                name = p.Flowsched_online.Policy.name;
                art = Flowsched_sim.Engine.average_response r;
                mrt = Flowsched_sim.Engine.max_response r;
              })
            policies
        in
        let bound_avg, bound_max, error =
          if cell.lp then lp_bounds inst ~max_makespan:!max_makespan else (nan, nan, None)
        in
        let bound_kind = if cell.lp then "lp" else "none" in
        { cell; flows; entries; bound_kind; bound_avg; bound_max; error }
    | Endpoint { nodes; node_cap } ->
        let ep = endpoint_for inst ~nodes ~node_cap in
        let max_makespan = ref 0 in
        let entries =
          List.map
            (fun (p : Flowsched_online.Policy.t) ->
              Flowsched_domains.Deadline.check ();
              let r = Flowsched_sim.Engine.run_instance ~endpoint:ep (node_guard ep p) inst in
              max_makespan := max !max_makespan r.Flowsched_sim.Engine.makespan;
              {
                name = p.Flowsched_online.Policy.name;
                art = Flowsched_sim.Engine.average_response r;
                mrt = Flowsched_sim.Engine.max_response r;
              })
            policies
        in
        let entries =
          entries
          @ [ schedule_entry inst "fifo-endpoint" (Flowsched_core.Baselines.fifo_endpoint ep inst) ]
        in
        (* Node caps only remove schedules, so the port-capacity LP is still
           a valid (relaxed) lower bound for this mode. *)
        let bound_avg, bound_max, error =
          if cell.lp then lp_bounds inst ~max_makespan:!max_makespan else (nan, nan, None)
        in
        let bound_kind = if cell.lp then "lp-relaxed" else "none" in
        { cell; flows; entries; bound_kind; bound_avg; bound_max; error }
    | Coflow { groups; max_weight } ->
        let groups = max 1 (min groups flows) in
        let seed = cell.scenario.Scenario.seed in
        let cof = Flowsched_core.Coflow.random_grouping ~seed:(seed + 7919) ~groups inst in
        let wg = Prng.create (seed + 104729) in
        let weights = Array.init groups (fun _ -> 1 + Prng.int wg max_weight) in
        let cof = Flowsched_core.Coflow.with_weights cof weights in
        let coflow_entry name sched =
          {
            name;
            art = Flowsched_core.Coflow.weighted_average_response cof sched;
            mrt = Flowsched_core.Coflow.max_response cof sched;
          }
        in
        let entries =
          [
            coflow_entry "wsebf" (Flowsched_core.Coflow.wsebf cof);
            coflow_entry "sebf" (Flowsched_core.Coflow.sebf cof);
            coflow_entry "flow-fifo" (Flowsched_core.Coflow.flow_fifo cof);
          ]
        in
        {
          cell;
          flows;
          entries;
          bound_kind = "bottleneck";
          bound_avg = Flowsched_core.Coflow.weighted_bottleneck_bound cof;
          bound_max = float_of_int (Flowsched_core.Coflow.max_bottleneck_bound cof);
          error = None;
        }

let describe_cell c =
  Printf.sprintf "matrix %s mode=%s m=%d rate=%.1f T=%d seed=%d lp=%b"
    (Scenario.to_string c.scenario.Scenario.kind)
    (mode_to_string c.mode) c.scenario.Scenario.m c.scenario.Scenario.rate
    c.scenario.Scenario.rounds c.scenario.Scenario.seed c.lp

let run ~policies ?(progress = fun _ -> ()) ?backend ?(jobs = 1) ?timeout ?retries ?faults
    ?on_result cells =
  Flowsched_sim.Experiment.map_cells ?backend ~jobs ?timeout ?retries ?faults ?on_result
    ~describe:describe_cell ~progress ~f:(run_cell ~policies) cells

(* The artifact deliberately excludes wall-clock and jobs metadata so the
   bytes are identical across --jobs and backends (the smoke target diffs
   the files directly). *)
let cell_json r =
  let c = r.cell in
  Json.Obj
    [
      ("workload", Json.Str (Scenario.to_string c.scenario.Scenario.kind));
      ("mode", Json.Str (mode_to_string c.mode));
      ("m", Json.Int c.scenario.Scenario.m);
      ("rate", Json.Float c.scenario.Scenario.rate);
      ("rounds", Json.Int c.scenario.Scenario.rounds);
      ("max_demand", Json.Int c.scenario.Scenario.max_demand);
      ("seed", Json.Int c.scenario.Scenario.seed);
      ("lp", Json.Bool c.lp);
      ("flows", Json.Int r.flows);
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("policy", Json.Str e.name);
                   ("art", Json.float e.art);
                   ("mrt", Json.Int e.mrt);
                 ])
             r.entries) );
      ("bound_kind", Json.Str r.bound_kind);
      ("bound_avg", Json.float r.bound_avg);
      ("bound_max", Json.float r.bound_max);
      ("error", match r.error with None -> Json.Null | Some e -> Json.Str e);
    ]

let to_json results =
  Json.Obj
    [
      ("schema", Json.Str "flowsched-matrix/1");
      ("cells", Json.Arr (List.map cell_json results));
    ]

(* ------------------------------------------------------------------ *)
(* Checkpoint/resume: canonical cell identity, an exact-inverse decoder *)
(* for cell_json, and the resume wrapper over the generic Checkpoint    *)
(* skeleton — matrix artifacts carry no timing metadata at all, so a    *)
(* resumed artifact is byte-identical with no fields to forgive.        *)
(* ------------------------------------------------------------------ *)

let cell_key c =
  Printf.sprintf "matrix|%s|mode=%s|m=%d|rate=%h|T=%d|dmax=%d|seed=%d|lp=%b"
    (Scenario.to_string c.scenario.Scenario.kind)
    (mode_to_string c.mode) c.scenario.Scenario.m c.scenario.Scenario.rate
    c.scenario.Scenario.rounds c.scenario.Scenario.max_demand c.scenario.Scenario.seed c.lp

exception Decode of string

let req what = function Some v -> v | None -> raise (Decode (what ^ ": missing or mistyped"))
let req_int j name = req name (Option.bind (Json.member name j) Json.to_int_opt)
let req_float j name = req name (Option.bind (Json.member name j) Json.to_float_opt)
let req_str j name = req name (Option.bind (Json.member name j) Json.to_string_opt)
let req_bool j name = req name (Option.bind (Json.member name j) Json.to_bool_opt)
let check what expected got = if expected <> got then raise (Decode ("mismatched " ^ what))

let cell_result_of_json ~cell j =
  try
    check "workload" (Scenario.to_string cell.scenario.Scenario.kind) (req_str j "workload");
    check "mode" (mode_to_string cell.mode) (req_str j "mode");
    check "m" cell.scenario.Scenario.m (req_int j "m");
    check "rate" cell.scenario.Scenario.rate (req_float j "rate");
    check "rounds" cell.scenario.Scenario.rounds (req_int j "rounds");
    check "max_demand" cell.scenario.Scenario.max_demand (req_int j "max_demand");
    check "seed" cell.scenario.Scenario.seed (req_int j "seed");
    check "lp" cell.lp (req_bool j "lp");
    let entries =
      match Json.member "entries" j with
      | Some (Json.Arr es) ->
          List.map
            (fun ej ->
              { name = req_str ej "policy"; art = req_float ej "art"; mrt = req_int ej "mrt" })
            es
      | _ -> raise (Decode "entries: missing or mistyped")
    in
    let error =
      match Json.member "error" j with
      | None | Some Json.Null -> None
      | Some v -> Some (req "error" (Json.to_string_opt v))
    in
    Ok
      {
        cell;
        flows = req_int j "flows";
        entries;
        bound_kind = req_str j "bound_kind";
        bound_avg = req_float j "bound_avg";
        bound_max = req_float j "bound_max";
        error;
      }
  with Decode msg -> Error msg

let run_checkpointed ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults ?on_append
    ckpt cells =
  Flowsched_sim.Checkpoint.resume_run ~kind:"matrix" ~key:cell_key ?on_append
    ~decode:(fun c j -> cell_result_of_json ~cell:c j)
    ~encode:cell_json
    ~run_cells:(fun on_result todo ->
      run ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults ~on_result todo)
    ckpt cells
