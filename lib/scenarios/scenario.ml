open Flowsched_sim

type kind =
  | Poisson
  | Poisson_demands
  | Uniform_total
  | Skewed of float
  | Hotspot of float
  | Pareto of float
  | Lognormal of { mu : float; sigma : float }
  | Bursty of { burst : float; period : int; duty : float }
  | Diurnal of { period : int; amplitude : float }
  | Flash_crowd of { at : int; len : int; mult : float; fraction : float }
  | Bimodal of { hot : int; weight : float }
  | Staircase
  | Crossflow

type spec = {
  kind : kind;
  m : int;
  rate : float;
  rounds : int;
  max_demand : int;
  seed : int;
}

let names =
  [
    "poisson"; "poisson-demands"; "uniform"; "skewed"; "hotspot"; "pareto";
    "lognormal"; "bursty"; "diurnal"; "flash-crowd"; "bimodal"; "staircase";
    "crossflow";
  ]

(* One of_string/to_string pair next to the kind type: the CLI (generate,
   serve, sweep, matrix), the sweep registry, and the bench all parse
   workload kinds through here, so a new kind registers in exactly one
   place.  Syntax is "name[:p1[:p2...]]"; omitted parameters take the
   defaults encoded below, and [to_string] always prints the full
   parameter list, so [of_string (to_string k) = Ok k]. *)

let float_param ~kind s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: bad numeric parameter %S" kind s)

let int_param ~kind s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: bad integer parameter %S" kind s)

let of_string s =
  let name, params =
    match String.split_on_char ':' s with
    | name :: rest -> (name, rest)
    | [] -> (s, [])
  in
  let f = float_param ~kind:name and i = int_param ~kind:name in
  try
    match (name, params) with
    | "poisson", [] -> Ok Poisson
    | ("poisson-demands" | "demands"), [] -> Ok Poisson_demands
    | "uniform", [] -> Ok Uniform_total
    | "skewed", [] -> Ok (Skewed 1.0)
    | "skewed", [ a ] -> Ok (Skewed (f a))
    | "hotspot", [] -> Ok (Hotspot 0.5)
    | "hotspot", [ fr ] -> Ok (Hotspot (f fr))
    | "pareto", [] -> Ok (Pareto 1.5)
    | "pareto", [ a ] -> Ok (Pareto (f a))
    | "lognormal", [] -> Ok (Lognormal { mu = 0.5; sigma = 0.75 })
    | "lognormal", [ mu ] -> Ok (Lognormal { mu = f mu; sigma = 0.75 })
    | "lognormal", [ mu; sigma ] -> Ok (Lognormal { mu = f mu; sigma = f sigma })
    | "bursty", [] -> Ok (Bursty { burst = 4.0; period = 20; duty = 0.25 })
    | "bursty", [ b ] -> Ok (Bursty { burst = f b; period = 20; duty = 0.25 })
    | "bursty", [ b; p ] -> Ok (Bursty { burst = f b; period = i p; duty = 0.25 })
    | "bursty", [ b; p; d ] -> Ok (Bursty { burst = f b; period = i p; duty = f d })
    | "diurnal", [] -> Ok (Diurnal { period = 50; amplitude = 0.8 })
    | "diurnal", [ p ] -> Ok (Diurnal { period = i p; amplitude = 0.8 })
    | "diurnal", [ p; a ] -> Ok (Diurnal { period = i p; amplitude = f a })
    | "flash-crowd", [] ->
        Ok (Flash_crowd { at = 20; len = 10; mult = 5.0; fraction = 0.5 })
    | "flash-crowd", [ at ] ->
        Ok (Flash_crowd { at = i at; len = 10; mult = 5.0; fraction = 0.5 })
    | "flash-crowd", [ at; len ] ->
        Ok (Flash_crowd { at = i at; len = i len; mult = 5.0; fraction = 0.5 })
    | "flash-crowd", [ at; len; mult ] ->
        Ok (Flash_crowd { at = i at; len = i len; mult = f mult; fraction = 0.5 })
    | "flash-crowd", [ at; len; mult; fr ] ->
        Ok (Flash_crowd { at = i at; len = i len; mult = f mult; fraction = f fr })
    | "bimodal", [] -> Ok (Bimodal { hot = 2; weight = 0.8 })
    | "bimodal", [ h ] -> Ok (Bimodal { hot = i h; weight = 0.8 })
    | "bimodal", [ h; w ] -> Ok (Bimodal { hot = i h; weight = f w })
    | "staircase", [] -> Ok Staircase
    | "crossflow", [] -> Ok Crossflow
    | ( ( "poisson" | "poisson-demands" | "demands" | "uniform" | "skewed"
        | "hotspot" | "pareto" | "lognormal" | "bursty" | "diurnal"
        | "flash-crowd" | "bimodal" | "staircase" | "crossflow" ),
        _ ) ->
        Error (Printf.sprintf "workload %S: wrong number of parameters" s)
    | _ ->
        Error
          (Printf.sprintf "unknown workload %S (expected %s)" s
             (String.concat "|" names))
  with Failure msg -> Error msg

let of_string_exn s =
  match of_string s with Ok k -> k | Error msg -> invalid_arg ("Scenario.of_string: " ^ msg)

let to_string = function
  | Poisson -> "poisson"
  | Poisson_demands -> "poisson-demands"
  | Uniform_total -> "uniform"
  | Skewed alpha -> Printf.sprintf "skewed:%g" alpha
  | Hotspot fraction -> Printf.sprintf "hotspot:%g" fraction
  | Pareto alpha -> Printf.sprintf "pareto:%g" alpha
  | Lognormal { mu; sigma } -> Printf.sprintf "lognormal:%g:%g" mu sigma
  | Bursty { burst; period; duty } -> Printf.sprintf "bursty:%g:%d:%g" burst period duty
  | Diurnal { period; amplitude } -> Printf.sprintf "diurnal:%d:%g" period amplitude
  | Flash_crowd { at; len; mult; fraction } ->
      Printf.sprintf "flash-crowd:%d:%d:%g:%g" at len mult fraction
  | Bimodal { hot; weight } -> Printf.sprintf "bimodal:%d:%g" hot weight
  | Staircase -> "staircase"
  | Crossflow -> "crossflow"

(* The staircase gadget derives its step count from the horizon so a spec's
   (m, rounds) fully determines the instance. *)
let staircase_params spec =
  let total_rounds = max 2 spec.rounds in
  let t = max 1 (min (total_rounds - 1) (total_rounds / 2)) in
  (t, total_rounds)

let geometry spec =
  match spec.kind with
  | Crossflow -> (spec.m, 2 * (spec.m - 1))
  | _ -> (spec.m, spec.m)

let port_capacity spec =
  match spec.kind with
  | Poisson_demands | Pareto _ | Lognormal _ -> spec.max_demand
  | _ -> 1

let instance spec =
  let { kind; m; rate; rounds; max_demand; seed } = spec in
  match kind with
  | Poisson -> Workload.poisson ~m ~rate ~rounds ~seed
  | Poisson_demands -> Workload.poisson_with_demands ~m ~rate ~rounds ~max_demand ~seed
  | Uniform_total ->
      (* Same expected volume as the arrival processes: rate * rounds flows. *)
      let n = max 1 (int_of_float (rate *. float_of_int rounds)) in
      Workload.uniform_total ~m ~n ~max_release:rounds ~seed
  | Skewed alpha -> Workload.skewed ~m ~rate ~rounds ~alpha ~seed ()
  | Hotspot fraction -> Workload.hotspot ~m ~rate ~rounds ~fraction ~seed ()
  | Pareto alpha -> Zoo.pareto ~m ~rate ~alpha ~max_demand ~rounds ~seed
  | Lognormal { mu; sigma } -> Zoo.lognormal ~m ~rate ~mu ~sigma ~max_demand ~rounds ~seed
  | Bursty { burst; period; duty } -> Zoo.bursty ~m ~rate ~burst ~period ~duty ~rounds ~seed
  | Diurnal { period; amplitude } -> Zoo.diurnal ~m ~rate ~period ~amplitude ~rounds ~seed
  | Flash_crowd { at; len; mult; fraction } ->
      Zoo.flash_crowd ~m ~rate ~at ~len ~mult ~fraction ~rounds ~seed
  | Bimodal { hot; weight } -> Zoo.bimodal ~m ~rate ~hot ~weight ~rounds ~seed
  | Staircase ->
      let t, total_rounds = staircase_params spec in
      Zoo.staircase ~m ~t ~total_rounds
  | Crossflow -> Zoo.crossflow ~m

type arrivals = {
  next : unit -> (int * int * int) list;
  slot : unit -> int;
}

let arrivals_next a = a.next ()
let arrivals_slot a = a.slot ()

let stream spec =
  let { kind; m; rate; rounds = _; max_demand; seed } = spec in
  let workload k =
    let ws = Workload.stream k ~m ~rate ~seed in
    Ok
      {
        next = (fun () -> Workload.stream_next ws);
        slot = (fun () -> Workload.stream_slot ws);
      }
  in
  let zoo z =
    Ok { next = (fun () -> Zoo.stream_next z); slot = (fun () -> Zoo.stream_slot z) }
  in
  match kind with
  | Poisson -> workload Workload.Uniform
  | Poisson_demands -> workload (Workload.Uniform_demands max_demand)
  | Skewed alpha -> workload (Workload.Skewed alpha)
  | Hotspot fraction -> workload (Workload.Hotspot fraction)
  | Uniform_total ->
      Error "workload \"uniform\" draws releases out of slot order; it has no stream form"
  | Pareto alpha -> zoo (Zoo.pareto_stream ~m ~rate ~alpha ~max_demand ~seed)
  | Lognormal { mu; sigma } -> zoo (Zoo.lognormal_stream ~m ~rate ~mu ~sigma ~max_demand ~seed)
  | Bursty { burst; period; duty } -> zoo (Zoo.bursty_stream ~m ~rate ~burst ~period ~duty ~seed)
  | Diurnal { period; amplitude } -> zoo (Zoo.diurnal_stream ~m ~rate ~period ~amplitude ~seed)
  | Flash_crowd { at; len; mult; fraction } ->
      zoo (Zoo.flash_crowd_stream ~m ~rate ~at ~len ~mult ~fraction ~seed)
  | Bimodal { hot; weight } -> zoo (Zoo.bimodal_stream ~m ~rate ~hot ~weight ~seed)
  | Staircase ->
      let t, total_rounds = staircase_params spec in
      zoo (Zoo.staircase_stream ~m ~t ~total_rounds)
  | Crossflow -> zoo (Zoo.crossflow_stream ~m)

(* Register the zoo kinds with the sweep's workload registry at module
   initialization, before any worker forks or domain spawns: "pareto:1.2"
   etc. become valid sweep/matrix workload strings everywhere.  The base
   kinds stay with Experiment.sweep_instance (registering them too would
   double-list them in error messages). *)
let zoo_names =
  [ "pareto"; "lognormal"; "bursty"; "diurnal"; "flash-crowd"; "bimodal";
    "staircase"; "crossflow" ]

let () =
  Workload.register_kinds ~names:zoo_names (fun name ->
      let base =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      if not (List.mem base zoo_names) then None
      else
        match of_string name with
        | Error _ -> None
        | Ok kind ->
            Some
              (fun { Workload.gen_m; gen_rate; gen_rounds; gen_max_demand; gen_seed } ->
                instance
                  {
                    kind;
                    m = gen_m;
                    rate = gen_rate;
                    rounds = gen_rounds;
                    max_demand = gen_max_demand;
                    seed = gen_seed;
                  }))
