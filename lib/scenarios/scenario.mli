(** Scenario specifications: one string-keyed namespace over every workload
    generator in the system.

    A {!kind} names a generator with its shape parameters; a {!spec} adds
    the scale parameters every generator shares (ports, rate, horizon,
    demand bound, seed).  The base kinds delegate to
    {!Flowsched_sim.Workload}, the rest to {!Zoo}.

    {!of_string}/{!to_string} are THE workload-kind parser: the CLI
    ([generate], [serve], [sweep], [matrix]), the sweep registry, and the
    bench all go through this pair, so adding a kind means extending the
    variant and these two functions — nothing else.  Loading this module
    also registers the zoo kinds with
    {!Flowsched_sim.Workload.register_kinds}, which makes strings like
    ["pareto:1.2"] valid sweep workloads. *)

type kind =
  | Poisson  (** {!Flowsched_sim.Workload.poisson}. *)
  | Poisson_demands
      (** {!Flowsched_sim.Workload.poisson_with_demands} (uses the spec's
          [max_demand]). *)
  | Uniform_total
      (** {!Flowsched_sim.Workload.uniform_total} with [n = rate * rounds] —
          batch-only (releases are drawn out of slot order). *)
  | Skewed of float  (** Zipf(alpha) endpoints. *)
  | Hotspot of float  (** A [fraction] of flows target output 0. *)
  | Pareto of float  (** {!Zoo.pareto} with the given alpha. *)
  | Lognormal of { mu : float; sigma : float }  (** {!Zoo.lognormal}. *)
  | Bursty of { burst : float; period : int; duty : float }  (** {!Zoo.bursty}. *)
  | Diurnal of { period : int; amplitude : float }  (** {!Zoo.diurnal}. *)
  | Flash_crowd of { at : int; len : int; mult : float; fraction : float }
      (** {!Zoo.flash_crowd}. *)
  | Bimodal of { hot : int; weight : float }  (** {!Zoo.bimodal}. *)
  | Staircase
      (** {!Zoo.staircase} (Figure 4a generalized); [t] is derived from the
          spec's horizon as [max 1 (rounds / 2)]. *)
  | Crossflow
      (** {!Zoo.crossflow} (Figure 4b generalized); ignores rate and
          horizon, and has [m' = 2 (m - 1)]. *)

type spec = {
  kind : kind;
  m : int;  (** Ports per side. *)
  rate : float;  (** Arrival rate (the paper's M); ignored by the gadgets. *)
  rounds : int;  (** Generation horizon T. *)
  max_demand : int;  (** Demand bound for the demand-carrying kinds. *)
  seed : int;
}

val names : string list
(** Canonical kind names accepted by {!of_string}. *)

val of_string : string -> (kind, string) result
(** Parse ["name[:p1[:p2...]]"] — e.g. ["pareto:1.2"],
    ["bursty:4:20:0.25"], ["flash-crowd:20:10:5:0.5"].  Omitted parameters
    take documented defaults; ["demands"] is an alias for
    ["poisson-demands"].  [of_string (to_string k) = Ok k]. *)

val of_string_exn : string -> kind
(** Raises [Invalid_argument] with the parse error. *)

val to_string : kind -> string
(** Canonical full-parameter form. *)

val geometry : spec -> int * int
(** The [(m, m')] switch geometry of the generated traffic — [(m, m)] for
    every kind except Crossflow, which is [(m, 2 (m - 1))]. *)

val port_capacity : spec -> int
(** The per-port capacity the generated instance carries: [max_demand] for
    the demand-carrying kinds (Poisson_demands, Pareto, Lognormal), 1
    otherwise — what a server must configure to admit the stream's flows. *)

val instance : spec -> Flowsched_switch.Instance.t
(** The batch instance.  Deterministic in the spec; raises
    [Invalid_argument] on degenerate parameters (see {!Zoo}). *)

type arrivals
(** A slot-clocked arrival stream, uniform over the Workload and Zoo
    backends.  For every streamable kind, draining [rounds] slots yields
    exactly the specs of {!instance} on the same spec (the PRNG prefix
    property). *)

val stream : spec -> (arrivals, string) result
(** [Error] for batch-only kinds (Uniform_total). *)

val arrivals_next : arrivals -> (int * int * int) list
(** The [(src, dst, demand)] specs released at the current slot; advances
    the stream. *)

val arrivals_slot : arrivals -> int
