open Flowsched_switch
open Flowsched_util

(* Every generator lives twice: as a slot-clocked stream and as a batch
   instance.  The batch form is DEFINED as the fold of the stream over
   [rounds] slots, so the stream-prefix property (a T-slot stream prefix
   equals the batch instance generated with the same parameters) holds by
   construction rather than by carefully mirrored draw orders. *)

type stream = {
  next : int -> (int * int * int) list;
  mutable slot : int;
}

let stream_of_fn next = { next; slot = 0 }
let stream_slot s = s.slot

let stream_next s =
  let arrivals = s.next s.slot in
  s.slot <- s.slot + 1;
  arrivals

let batch ?cap_in ?cap_out ~m ~m' ~rounds s =
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    List.iter (fun (src, dst, d) -> specs := (src, dst, d, t) :: !specs) (stream_next s)
  done;
  Instance.of_flows ?cap_in ?cap_out ~m ~m' (List.rev !specs)

(* Validation at the zoo boundary: degenerate parameters would silently
   produce empty, NaN-weighted, or infinite-demand workloads. *)
let check_pos_int ~who ~what v =
  if v < 1 then invalid_arg (Printf.sprintf "%s: %s must be >= 1" who what)

let check_rate ~who rate =
  if rate <= 0. || Float.is_nan rate then invalid_arg (who ^ ": rate must be positive")

let check_pos_float ~who ~what v =
  if v <= 0. || Float.is_nan v then
    invalid_arg (Printf.sprintf "%s: %s must be positive" who what)

let check_fraction ~who ~what v =
  if not (v >= 0. && v <= 1.) then
    invalid_arg (Printf.sprintf "%s: %s must be within [0, 1]" who what)

(* Poisson arrivals at a per-slot mean decided by [rate_at slot]; endpoints
   and demands decided by [draw].  The draw order inside one flow is demand,
   then dst, then src — same convention as {!Flowsched_sim.Workload}. *)
let poisson_stream g ~rate_at ~draw =
  stream_of_fn (fun slot ->
      let mean = rate_at slot in
      let k = if mean <= 0. then 0 else Sampling.poisson g mean in
      let arrivals = ref [] in
      for _ = 1 to k do
        arrivals := draw g :: !arrivals
      done;
      List.rev !arrivals)

let draw_uniform_ports ~m ~demand_of g =
  let demand = demand_of g in
  let dst = Prng.int g m in
  let src = Prng.int g m in
  (src, dst, demand)

let demand_caps ~m max_demand =
  (Array.make m max_demand, Array.make m max_demand)

(* ---- Heavy-tailed demands ---- *)

let pareto_demand ~alpha ~max_demand g =
  (* Pareto(alpha) with x_min = 1: X = (1 - u)^(-1/alpha), capped. *)
  let u = Prng.float g in
  let x = (1. -. u) ** (-1. /. alpha) in
  if Float.is_nan x then max_demand else max 1 (min max_demand (int_of_float (Float.ceil x)))

let check_pareto ~who ~rate ~alpha ~max_demand ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  check_pos_float ~who ~what:"alpha" alpha;
  check_pos_int ~who ~what:"max_demand" max_demand

let pareto_stream ~m ~rate ~alpha ~max_demand ~seed =
  check_pareto ~who:"Zoo.pareto" ~rate ~alpha ~max_demand ~m;
  let g = Prng.create seed in
  poisson_stream g ~rate_at:(fun _ -> rate)
    ~draw:(draw_uniform_ports ~m ~demand_of:(pareto_demand ~alpha ~max_demand))

let pareto ~m ~rate ~alpha ~max_demand ~rounds ~seed =
  check_pos_int ~who:"Zoo.pareto" ~what:"rounds" rounds;
  let cap_in, cap_out = demand_caps ~m max_demand in
  batch ~cap_in ~cap_out ~m ~m':m ~rounds
    (pareto_stream ~m ~rate ~alpha ~max_demand ~seed)

let lognormal_demand ~mu ~sigma ~max_demand g =
  (* Box–Muller (cosine branch); u1 shifted into (0, 1] so log is finite. *)
  let u1 = 1. -. Prng.float g in
  let u2 = Prng.float g in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  let x = exp (mu +. (sigma *. z)) in
  if Float.is_nan x then 1 else max 1 (min max_demand (int_of_float (Float.round x)))

let check_lognormal ~who ~rate ~sigma ~max_demand ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  check_pos_float ~who ~what:"sigma" sigma;
  check_pos_int ~who ~what:"max_demand" max_demand

let lognormal_stream ~m ~rate ~mu ~sigma ~max_demand ~seed =
  check_lognormal ~who:"Zoo.lognormal" ~rate ~sigma ~max_demand ~m;
  let g = Prng.create seed in
  poisson_stream g ~rate_at:(fun _ -> rate)
    ~draw:(draw_uniform_ports ~m ~demand_of:(lognormal_demand ~mu ~sigma ~max_demand))

let lognormal ~m ~rate ~mu ~sigma ~max_demand ~rounds ~seed =
  check_pos_int ~who:"Zoo.lognormal" ~what:"rounds" rounds;
  let cap_in, cap_out = demand_caps ~m max_demand in
  batch ~cap_in ~cap_out ~m ~m':m ~rounds
    (lognormal_stream ~m ~rate ~mu ~sigma ~max_demand ~seed)

(* ---- Modulated arrival processes (unit demands) ---- *)

let unit_demand _g = 1

let check_bursty ~who ~rate ~burst ~period ~duty ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  check_pos_float ~who ~what:"burst" burst;
  check_pos_int ~who ~what:"period" period;
  check_fraction ~who ~what:"duty" duty

let bursty_rate ~rate ~burst ~period ~duty slot =
  (* Deterministic duty cycle: the first [duty] share of each period runs
     hot at [rate * burst]; the rest idles at the base rate. *)
  let on_slots = int_of_float (Float.ceil (duty *. float_of_int period)) in
  if slot mod period < on_slots then rate *. burst else rate

let bursty_stream ~m ~rate ~burst ~period ~duty ~seed =
  check_bursty ~who:"Zoo.bursty" ~rate ~burst ~period ~duty ~m;
  let g = Prng.create seed in
  poisson_stream g
    ~rate_at:(bursty_rate ~rate ~burst ~period ~duty)
    ~draw:(draw_uniform_ports ~m ~demand_of:unit_demand)

let bursty ~m ~rate ~burst ~period ~duty ~rounds ~seed =
  check_pos_int ~who:"Zoo.bursty" ~what:"rounds" rounds;
  batch ~m ~m':m ~rounds (bursty_stream ~m ~rate ~burst ~period ~duty ~seed)

let check_diurnal ~who ~rate ~period ~amplitude ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  check_pos_int ~who ~what:"period" period;
  check_fraction ~who ~what:"amplitude" amplitude

let diurnal_rate ~rate ~period ~amplitude slot =
  rate
  *. (1.
     +. (amplitude
        *. sin (2. *. Float.pi *. float_of_int slot /. float_of_int period)))

let diurnal_stream ~m ~rate ~period ~amplitude ~seed =
  check_diurnal ~who:"Zoo.diurnal" ~rate ~period ~amplitude ~m;
  let g = Prng.create seed in
  poisson_stream g
    ~rate_at:(diurnal_rate ~rate ~period ~amplitude)
    ~draw:(draw_uniform_ports ~m ~demand_of:unit_demand)

let diurnal ~m ~rate ~period ~amplitude ~rounds ~seed =
  check_pos_int ~who:"Zoo.diurnal" ~what:"rounds" rounds;
  batch ~m ~m':m ~rounds (diurnal_stream ~m ~rate ~period ~amplitude ~seed)

(* ---- Flash crowd: a spike window with an incast hotspot ---- *)

let check_flash ~who ~rate ~at ~len ~mult ~fraction ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  if at < 0 then invalid_arg (who ^ ": at must be >= 0");
  check_pos_int ~who ~what:"len" len;
  check_pos_float ~who ~what:"mult" mult;
  check_fraction ~who ~what:"fraction" fraction

let flash_crowd_stream ~m ~rate ~at ~len ~mult ~fraction ~seed =
  check_flash ~who:"Zoo.flash_crowd" ~rate ~at ~len ~mult ~fraction ~m;
  let g = Prng.create seed in
  let in_spike slot = slot >= at && slot < at + len in
  stream_of_fn (fun slot ->
      let mean = if in_spike slot then rate *. mult else rate in
      let k = Sampling.poisson g mean in
      let arrivals = ref [] in
      for _ = 1 to k do
        (* During the spike a [fraction] of flows pile onto output 0; the
           dst decision draws before src, like the hotspot generator. *)
        let dst =
          if in_spike slot && Prng.float g < fraction then 0 else Prng.int g m
        in
        let src = Prng.int g m in
        arrivals := (src, dst, 1) :: !arrivals
      done;
      List.rev !arrivals)

let flash_crowd ~m ~rate ~at ~len ~mult ~fraction ~rounds ~seed =
  check_pos_int ~who:"Zoo.flash_crowd" ~what:"rounds" rounds;
  batch ~m ~m':m ~rounds (flash_crowd_stream ~m ~rate ~at ~len ~mult ~fraction ~seed)

(* ---- Bimodal port popularity: beyond Zipf ---- *)

let check_bimodal ~who ~rate ~hot ~weight ~m =
  check_pos_int ~who ~what:"m" m;
  check_rate ~who rate;
  if hot < 1 || hot > m then invalid_arg (who ^ ": hot must be within [1, m]");
  check_fraction ~who ~what:"weight" weight

let bimodal_stream ~m ~rate ~hot ~weight ~seed =
  check_bimodal ~who:"Zoo.bimodal" ~rate ~hot ~weight ~m;
  let g = Prng.create seed in
  (* A two-point popularity distribution: mass [weight] spread over the
     [hot] lowest-numbered ports, the rest uniform over all ports — a
     sharper skew than any Zipf tail.  dst draws before src, like the
     skewed generator. *)
  let pick () = if Prng.float g < weight then Prng.int g hot else Prng.int g m in
  poisson_stream g ~rate_at:(fun _ -> rate)
    ~draw:(fun _g ->
      let dst = pick () in
      let src = pick () in
      (src, dst, 1))

let bimodal ~m ~rate ~hot ~weight ~rounds ~seed =
  check_pos_int ~who:"Zoo.bimodal" ~what:"rounds" rounds;
  batch ~m ~m':m ~rounds (bimodal_stream ~m ~rate ~hot ~weight ~seed)

(* ---- Adversarial gadgets (deterministic; see Lower_bounds) ---- *)

let staircase_stream ~m ~t ~total_rounds =
  if m < 2 then invalid_arg "Zoo.staircase: m must be >= 2";
  if t < 1 || t >= total_rounds then
    invalid_arg "Zoo.staircase: need 1 <= t < total_rounds";
  stream_of_fn (fun slot ->
      Flowsched_core.Lower_bounds.fig4a_general_specs ~m ~t ~total_rounds slot)

let staircase ~m ~t ~total_rounds =
  Flowsched_core.Lower_bounds.fig4a_general ~m ~t ~total_rounds

let crossflow_stream ~m =
  if m < 3 then invalid_arg "Zoo.crossflow: m must be >= 3";
  stream_of_fn (fun slot -> Flowsched_core.Lower_bounds.fig4b_general_specs ~m slot)

let crossflow ~m = Flowsched_core.Lower_bounds.fig4b_general ~m
