(** The policy x workload sweep matrix, with neighboring-problem modes.

    A cell is a {!Scenario.spec} (which workload), a {!mode} (which problem
    variant), and an LP flag.  Modes:

    - {!Flows}: the paper's problem — every policy runs the instance, LP
      (1)-(4) and the min fractional rho give per-cell lower bounds
      ([bound_kind = "lp"]).
    - {!Endpoint}: endpoint-capacity constraints (Pa-Rajaraman-Stalfa
      2021).  Ports are grouped into balanced contiguous node blocks with a
      shared per-node capacity (raised to the instance's dmax so every flow
      fits its nodes alone); policies run behind a node-capacity guard and
      the engine validates every round against the node caps.  A
      capacity-aware FIFO baseline rides along, and the port-only LP stays
      a valid relaxed bound ([bound_kind = "lp-relaxed"]).
    - {!Coflow}: weighted coflow completion time (Im-Purohit direction).
      Flows are grouped into coflows with seeded random weights; weighted
      SEBF, unweighted SEBF, and flow-level FIFO are compared against the
      weighted bottleneck lower bound ([bound_kind = "bottleneck"]).

    Results are deterministic in the cell specs alone: the artifact JSON
    carries no timing or jobs metadata, so runs are byte-identical across
    [--jobs] and across the inline/fork/domains backends. *)

type mode =
  | Flows
  | Endpoint of { nodes : int; node_cap : int }
  | Coflow of { groups : int; max_weight : int }

val mode_names : string list

val mode_of_string : string -> (mode, string) result
(** ["flows"], ["endpoint\[:nodes\[:cap\]\]"] (defaults 2:2),
    ["coflow\[:groups\[:max_weight\]\]"] (defaults 4:4).
    [mode_of_string (mode_to_string m) = Ok m]. *)

val mode_to_string : mode -> string

type cell = { scenario : Scenario.spec; mode : mode; lp : bool }

type entry = { name : string; art : float; mrt : int }
(** One algorithm's row in a cell: average and maximum response time (for
    Coflow mode: weighted average and group maximum). *)

type cell_result = {
  cell : cell;
  flows : int;
  entries : entry list;
  bound_kind : string;  (** ["lp"] | ["lp-relaxed"] | ["bottleneck"] | ["none"]. *)
  bound_avg : float;  (** Lower bound on the average objective; nan if none. *)
  bound_max : float;  (** Lower bound on the maximum objective; nan if none. *)
  error : string option;  (** LP failure text (bounds degraded to nan). *)
}

val run_cell : policies:Flowsched_online.Policy.t list -> cell -> cell_result
(** [policies] drive the Flows and Endpoint modes; Coflow mode has its own
    fixed algorithm set (wsebf/sebf/flow-fifo). *)

val run :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_result:(cell -> cell_result -> unit) ->
  cell list -> cell_result list
(** Fans the cells over {!Flowsched_sim.Experiment.map_cells}; same
    retry/timeout/fault/ordering contract, results in input order. *)

val cell_json : cell_result -> Flowsched_util.Json.t

val to_json : cell_result list -> Flowsched_util.Json.t
(** The matrix artifact, schema ["flowsched-matrix/1"]. *)

val cell_key : cell -> string
(** Canonical checkpoint identity of a cell, e.g.
    ["matrix|poisson|mode=flows|m=8|rate=0x1p+1|T=60|dmax=4|seed=7|lp=true"].
    Floats print in hex ([%h]) so the key is exact. *)

val cell_result_of_json :
  cell:cell -> Flowsched_util.Json.t -> (cell_result, string) result
(** Exact inverse of {!cell_json}, validated against [cell]: every identity
    field in the JSON must match the cell it claims to be, so a stale or
    spliced checkpoint entry is rejected rather than silently adopted. *)

val run_checkpointed :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_append:(string -> unit) ->
  Flowsched_sim.Checkpoint.t ->
  cell list ->
  cell_result list
(** {!run} through a {!Flowsched_sim.Checkpoint}: previously recorded
    cells are decoded (and re-validated) instead of re-run, fresh results
    are appended CRC-sealed as they arrive, and the returned list is in
    input order either way.  Matrix artifacts carry no timing metadata, so
    a resumed artifact is byte-identical to an uninterrupted one. *)
