(** The workload zoo: seeded deterministic generators beyond the paper's
    uniform Poisson traffic.

    Every generator exists in two forms — a slot-clocked {!stream} (what the
    serve loop consumes) and a batch {!Flowsched_switch.Instance.t}.  The
    batch form is {e defined} as the fold of the stream over [rounds] slots,
    so the PRNG prefix property holds by construction: for any seed and any
    horizon [T], concatenating {!stream_next} over slots [0..T-1] yields
    exactly the flow specs of the batch instance generated with the same
    parameters.

    All generators raise [Invalid_argument] on degenerate parameters
    (nonpositive rate, [alpha <= 0], fractions outside [\[0, 1\]],
    [max_demand < 1], out-of-range window or popularity parameters) instead
    of silently producing empty or NaN-weighted draws. *)

type stream

val stream_next : stream -> (int * int * int) list
(** Arrivals [(src, dst, demand)] released at the stream's current slot, in
    generation order; advances the stream to the next slot. *)

val stream_slot : stream -> int
(** Number of slots generated so far. *)

val batch :
  ?cap_in:int array -> ?cap_out:int array ->
  m:int -> m':int -> rounds:int -> stream -> Flowsched_switch.Instance.t
(** Drain a fresh stream for [rounds] slots into an instance (release = the
    slot each batch was pulled at).  The named generators below all go
    through this. *)

(** {1 Heavy-tailed demand distributions}

    Poisson arrivals, uniform endpoints, demands drawn from a heavy-tailed
    distribution capped at [max_demand]; all port capacities are set to
    [max_demand] so every flow fits (as in
    {!Flowsched_sim.Workload.poisson_with_demands}). *)

val pareto_stream :
  m:int -> rate:float -> alpha:float -> max_demand:int -> seed:int -> stream
(** Demands [min(max_demand, ceil((1-u)^(-1/alpha)))] — Pareto with
    [x_min = 1]; small [alpha] (e.g. 1.1–1.5) gives the elephant/mice mix
    measured in datacenter traces. *)

val pareto :
  m:int -> rate:float -> alpha:float -> max_demand:int -> rounds:int ->
  seed:int -> Flowsched_switch.Instance.t

val lognormal_stream :
  m:int -> rate:float -> mu:float -> sigma:float -> max_demand:int ->
  seed:int -> stream
(** Demands [round(exp(mu + sigma Z))] with [Z] standard normal (Box–Muller),
    clamped to [\[1, max_demand\]]. *)

val lognormal :
  m:int -> rate:float -> mu:float -> sigma:float -> max_demand:int ->
  rounds:int -> seed:int -> Flowsched_switch.Instance.t

(** {1 Modulated arrival processes}

    Unit demands, uniform endpoints, Poisson arrivals whose mean varies by
    slot. *)

val bursty_stream :
  m:int -> rate:float -> burst:float -> period:int -> duty:float ->
  seed:int -> stream
(** Deterministic duty cycle: the first [ceil(duty * period)] slots of every
    period run at [rate * burst], the rest at [rate]. *)

val bursty :
  m:int -> rate:float -> burst:float -> period:int -> duty:float ->
  rounds:int -> seed:int -> Flowsched_switch.Instance.t

val diurnal_stream :
  m:int -> rate:float -> period:int -> amplitude:float -> seed:int -> stream
(** Sinusoidal modulation [rate * (1 + amplitude sin(2 pi slot / period))];
    [amplitude] within [\[0, 1\]] keeps the mean nonnegative. *)

val diurnal :
  m:int -> rate:float -> period:int -> amplitude:float -> rounds:int ->
  seed:int -> Flowsched_switch.Instance.t

val flash_crowd_stream :
  m:int -> rate:float -> at:int -> len:int -> mult:float -> fraction:float ->
  seed:int -> stream
(** Baseline uniform Poisson traffic; during slots [\[at, at+len)] the rate
    jumps to [rate * mult] and a [fraction] of flows target output port 0
    (an incast flash crowd). *)

val flash_crowd :
  m:int -> rate:float -> at:int -> len:int -> mult:float -> fraction:float ->
  rounds:int -> seed:int -> Flowsched_switch.Instance.t

(** {1 Skewed port popularity beyond Zipf} *)

val bimodal_stream :
  m:int -> rate:float -> hot:int -> weight:float -> seed:int -> stream
(** Two-point popularity: with probability [weight] an endpoint is uniform
    over the [hot] lowest-numbered ports, otherwise uniform over all [m] —
    a sharper head/tail split than any Zipf exponent produces.  Requires
    [1 <= hot <= m]. *)

val bimodal :
  m:int -> rate:float -> hot:int -> weight:float -> rounds:int -> seed:int ->
  Flowsched_switch.Instance.t

(** {1 Adversarial gadgets}

    Deterministic (no PRNG) generalizations of the paper's Figure 4
    lower-bound constructions; see {!Flowsched_core.Lower_bounds}. *)

val staircase_stream : m:int -> t:int -> total_rounds:int -> stream
(** Streamed {!Flowsched_core.Lower_bounds.fig4a_general}: [t] rounds of the
    paired diagonal load, then single flows per round until [total_rounds].
    Requires [m >= 2] and [1 <= t < total_rounds]. *)

val staircase :
  m:int -> t:int -> total_rounds:int -> Flowsched_switch.Instance.t

val crossflow_stream : m:int -> stream
(** Streamed {!Flowsched_core.Lower_bounds.fig4b_general} ([m >= 3];
    note the instance has [m' = 2 (m - 1)] output ports). *)

val crossflow : m:int -> Flowsched_switch.Instance.t
