(** Endpoint (node) capacity constraints — the neighboring problem studied by
    the paper's direct successor (Pa–Rajaraman–Stalfa 2021).

    Ports are grouped into nodes (e.g. the NICs of one physical host behind
    several switch ports); a node has its own transfer capacity, shared by
    every flow touching any of its ports in a round.  This layers a second,
    coarser capacity constraint on top of the per-port capacities an
    {!Instance.t} already carries: a round's flow set must fit the port
    capacities {e and}, per node, the total demand entering (or leaving) the
    node must stay within the node capacity. *)

type t = private {
  m : int;  (** input ports covered *)
  m' : int;  (** output ports covered *)
  node_in : int array;  (** input port -> node id *)
  node_out : int array;  (** output port -> node id *)
  nodes_in : int;
  nodes_out : int;
  cap_node_in : int array;  (** per input-side node capacity *)
  cap_node_out : int array;  (** per output-side node capacity *)
}

val make :
  node_in:int array -> node_out:int array ->
  cap_node_in:int array -> cap_node_out:int array -> t
(** Raises [Invalid_argument] on empty sides, node ids out of range, or
    non-positive node capacities. *)

val blocks : m:int -> m':int -> nodes:int -> cap:int -> t
(** Balanced contiguous grouping: [nodes] nodes per side, each covering a
    block of adjacent ports (sizes differ by at most one), every node with
    capacity [cap].  Raises [Invalid_argument] when [nodes < 1], [cap < 1],
    or there are more nodes than ports on a side. *)

val scale : t -> min_cap:int -> t
(** Raise every node capacity to at least [min_cap] — used to guarantee
    {!admits} for instances with demands above the configured node cap
    (a flow larger than its node could otherwise never be scheduled). *)

val feasible : t -> Flow.t list -> bool
(** Whether the flows can run together in one round under the node
    capacities alone (port capacities are checked elsewhere). *)

val admits : t -> Instance.t -> bool
(** Geometry matches and every flow fits its two nodes on its own —
    necessary for any schedule to exist under the node capacities. *)

val schedule_feasible : t -> Instance.t -> Schedule.t -> bool
(** Whether a complete schedule respects the node capacities in every
    round. *)
