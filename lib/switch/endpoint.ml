type t = {
  m : int;
  m' : int;
  node_in : int array;
  node_out : int array;
  nodes_in : int;
  nodes_out : int;
  cap_node_in : int array;
  cap_node_out : int array;
}

let make ~node_in ~node_out ~cap_node_in ~cap_node_out =
  let m = Array.length node_in and m' = Array.length node_out in
  if m = 0 || m' = 0 then invalid_arg "Endpoint.make: need at least one port per side";
  let nodes_in = Array.length cap_node_in and nodes_out = Array.length cap_node_out in
  if nodes_in = 0 || nodes_out = 0 then
    invalid_arg "Endpoint.make: need at least one node per side";
  Array.iter
    (fun g -> if g < 0 || g >= nodes_in then invalid_arg "Endpoint.make: node_in out of range")
    node_in;
  Array.iter
    (fun g ->
      if g < 0 || g >= nodes_out then invalid_arg "Endpoint.make: node_out out of range")
    node_out;
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Endpoint.make: node capacities must be positive")
    cap_node_in;
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Endpoint.make: node capacities must be positive")
    cap_node_out;
  {
    m;
    m';
    node_in = Array.copy node_in;
    node_out = Array.copy node_out;
    nodes_in;
    nodes_out;
    cap_node_in = Array.copy cap_node_in;
    cap_node_out = Array.copy cap_node_out;
  }

let blocks ~m ~m' ~nodes ~cap =
  if nodes < 1 then invalid_arg "Endpoint.blocks: nodes must be >= 1";
  if cap < 1 then invalid_arg "Endpoint.blocks: cap must be >= 1";
  if nodes > m || nodes > m' then
    invalid_arg "Endpoint.blocks: more nodes than ports on a side";
  (* Balanced contiguous blocks: port p belongs to node p*nodes/m, so block
     sizes differ by at most one and the map is monotone. *)
  let node_in = Array.init m (fun p -> p * nodes / m) in
  let node_out = Array.init m' (fun p -> p * nodes / m') in
  make ~node_in ~node_out ~cap_node_in:(Array.make nodes cap)
    ~cap_node_out:(Array.make nodes cap)

let scale ep ~min_cap =
  {
    ep with
    cap_node_in = Array.map (fun c -> max c min_cap) ep.cap_node_in;
    cap_node_out = Array.map (fun c -> max c min_cap) ep.cap_node_out;
  }

let feasible ep flows =
  let load_in = Array.make ep.nodes_in 0 in
  let load_out = Array.make ep.nodes_out 0 in
  List.for_all
    (fun (f : Flow.t) ->
      if f.Flow.src < 0 || f.Flow.src >= ep.m || f.Flow.dst < 0 || f.Flow.dst >= ep.m' then
        invalid_arg "Endpoint.feasible: flow ports out of range";
      let ni = ep.node_in.(f.Flow.src) and no = ep.node_out.(f.Flow.dst) in
      load_in.(ni) <- load_in.(ni) + f.Flow.demand;
      load_out.(no) <- load_out.(no) + f.Flow.demand;
      load_in.(ni) <= ep.cap_node_in.(ni) && load_out.(no) <= ep.cap_node_out.(no))
    flows

let admits ep (inst : Instance.t) =
  ep.m = inst.Instance.m && ep.m' = inst.Instance.m'
  && Array.for_all
       (fun (f : Flow.t) ->
         f.Flow.demand <= ep.cap_node_in.(ep.node_in.(f.Flow.src))
         && f.Flow.demand <= ep.cap_node_out.(ep.node_out.(f.Flow.dst)))
       inst.Instance.flows

let schedule_feasible ep (inst : Instance.t) schedule =
  let by_round = Hashtbl.create 16 in
  let ok = ref true in
  Array.iter
    (fun (f : Flow.t) ->
      let r = Schedule.round_of schedule f.Flow.id in
      if r < 0 then ok := false
      else
        Hashtbl.replace by_round r
          (f :: Option.value ~default:[] (Hashtbl.find_opt by_round r)))
    inst.Instance.flows;
  !ok && Hashtbl.fold (fun _ fs acc -> acc && feasible ep fs) by_round true
