(* CRC-32 (IEEE), reflected, init and xor-out 0xFFFFFFFF — the zlib
   variant, computed with the classic 256-entry table. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xFF) lxor (crc lsr 8)

let bytes b =
  let crc = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  !crc lxor 0xFFFFFFFF

let string s = bytes (Bytes.unsafe_of_string s)
