(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Used by the {!Flowsched_exec.Pool} wire protocol to checksum result
    frames so that a corrupted payload is detected {e before} it reaches
    [Marshal.from_bytes] — a checksum mismatch is attributable to the
    worker and handled like a worker crash, instead of surfacing as an
    unrecoverable parent-side decode failure. *)

val bytes : Bytes.t -> int
(** CRC-32 of the whole byte buffer, in [0, 0xFFFFFFFF]. *)

val string : string -> int
(** CRC-32 of a string. *)
