(** Deterministic pseudo-random number generation.

    The generator is xoshiro256** seeded through splitmix64, so a single
    integer seed yields a well-mixed 256-bit state.  All simulation and
    workload-generation code in flowsched draws from this module rather than
    [Stdlib.Random] so that every experiment is reproducible from its seed.

    {2 Per-job splitting contract}

    Parallel executors hand every job its own generator; nothing here is
    shared or global, so the contract is purely about seed choice:

    - {b Distinct seeds, distinct streams.}  Seeding goes through
      splitmix64, so even adjacent integer seeds land in unrelated regions
      of xoshiro's 2^256 - 1 cycle; two generators created from different
      seeds must never produce overlapping output streams over any
      experiment-sized horizon (the test suite asserts disjointness over
      10^5 draws).
    - {b Jobs derive seeds, never share state.}  An executor job seeds its
      local randomness from [Flowsched_exec.Pool.seed_for ~base_seed job]
      (an injective map, identical in the fork, domains, and inline
      executors — this is what makes artifacts backend-independent).  A
      [t] must never be captured by a closure that crosses jobs: with
      forked workers that silently duplicates the stream in every worker,
      and with domains it is a data race.
    - {b In-cell independence uses {!split}.}  Code that needs several
      independent streams inside one job splits its own generator instead
      of inventing seed arithmetic. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose state is derived
    from (and decorrelated against) [g].  Use it to give independent streams
    to independent experiment cells. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53-bit precision. *)

val bool : t -> bool
