(** Streaming and batch statistics used by the simulator and the experiment
    harness. *)

type running
(** Welford accumulator for mean/variance over a stream of floats. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
(** Mean of the values seen so far; [nan] when empty. *)

val running_variance : running -> float
(** Unbiased sample variance; [nan] with fewer than two values. *)

val running_stddev : running -> float
val running_min : running -> float
val running_max : running -> float

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Batch summary; the input array is not modified.  Raises
    [Invalid_argument] on an empty array or when any input is NaN. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] over a {e sorted} array, using
    linear interpolation between closest ranks.  Raises [Invalid_argument]
    when [q] is NaN or out of range, or when any input is NaN (NaN would
    otherwise silently corrupt the rank interpolation). *)

val mean : float array -> float
val histogram : ?bins:int -> float array -> (float * float * int) array
(** [histogram values] buckets values into [bins] equal-width buckets and
    returns [(lo, hi, count)] per bucket. *)
