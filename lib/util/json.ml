type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let float f = if Float.is_finite f then Float f else Null

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string ?(pretty = true) v =
  let buf = Buffer.create 1024 in
  let indent depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (if Float.is_finite f then float_repr f else "null")
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            escape_string buf key;
            Buffer.add_string buf (if pretty then ": " else ":");
            emit (depth + 1) value)
          fields;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while !pos < n && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex_escape () =
    if !pos + 4 > n then error "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> error "bad \\u escape"
    in
    let code =
      (digit input.[!pos] lsl 12)
      lor (digit input.[!pos + 1] lsl 8)
      lor (digit input.[!pos + 2] lsl 4)
      lor digit input.[!pos + 3]
    in
    pos := !pos + 4;
    code
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = input.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* UTF-16: a high surrogate must pair with an escaped low
                 surrogate; the pair encodes one astral code point as four
                 UTF-8 bytes.  Lone surrogates are invalid JSON text. *)
              let code = hex_escape () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                if not (!pos + 2 <= n && input.[!pos] = '\\' && input.[!pos + 1] = 'u') then
                  error "lone high surrogate in \\u escape";
                pos := !pos + 2;
                let low = hex_escape () in
                if low < 0xDC00 || low > 0xDFFF then
                  error "lone high surrogate in \\u escape";
                utf8_of_code buf
                  (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                error "lone low surrogate in \\u escape"
              else utf8_of_code buf code
          | _ -> error "bad escape character");
          loop ())
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () = match peek () with Some ('0' .. '9') -> true | _ -> false in
    if not (is_digit ()) then error "expected digit";
    while is_digit () do advance () done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then error "expected digit after decimal point";
      while is_digit () do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then error "expected digit in exponent";
        while is_digit () do advance () done
    | _ -> ());
    let text = String.sub input start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            (key, value)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    Ok v
  with Parse_error (at, msg) -> Error (Printf.sprintf "at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function Arr items -> items | _ -> []

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  (* Non-finite floats serialize as [null] (JSON has no nan/inf literal);
     reading [null] back as nan makes [to_float_opt (parse (to_string
     (float f)))] total — artifact decoders round-trip skipped LP bounds
     without special-casing. *)
  | Null -> Some nan
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
