(** Minimal hand-rolled JSON: a writer for machine-readable result
    artifacts (the sweep / bench JSON outputs) and a parser good enough to
    round-trip them in tests.  No external dependencies.

    Numbers: integers print without a decimal point and parse to {!Int};
    anything with a fraction or exponent parses to {!Float}.  Non-finite
    floats have no JSON representation and are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val float : float -> t
(** [Float f], or [Null] when [f] is nan or infinite (e.g. an LP bound
    that was skipped). *)

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default true) indents with two spaces.  Float
    formatting uses the shortest decimal form that parses back to the exact
    same value. *)

val parse : string -> (t, string) result
(** Recursive-descent parser for the full JSON grammar (escapes including
    [\uXXXX] are decoded to UTF-8).  Errors carry a byte offset. *)

(** Accessors for tests and artifact consumers; all total. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_list : t -> t list
(** The elements of an [Arr]; [[]] otherwise. *)

val to_float_opt : t -> float option
(** [Int] or [Float] as a float; [Null] reads back as [nan], the inverse
    of {!float} emitting [null] for non-finite values, so float fields
    round-trip through an artifact even when they were skipped. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
