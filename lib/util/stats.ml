type running = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let running_create () = { n = 0; mu = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.mu in
  r.mu <- r.mu +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.mu));
  if x < r.lo then r.lo <- x;
  if x > r.hi then r.hi <- x

let running_count r = r.n
let running_mean r = if r.n = 0 then nan else r.mu
let running_variance r = if r.n < 2 then nan else r.m2 /. float_of_int (r.n - 1)
let running_stddev r = sqrt (running_variance r)
let running_min r = r.lo
let running_max r = r.hi

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean values =
  let n = Array.length values in
  if n = 0 then nan else Array.fold_left ( +. ) 0. values /. float_of_int n

let reject_nan fn values =
  Array.iter
    (fun v -> if Float.is_nan v then invalid_arg (Printf.sprintf "Stats.%s: NaN input" fn))
    values

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if Float.is_nan q || q < 0. || q > 1. then invalid_arg "Stats.percentile: q out of [0,1]";
  reject_nan "percentile" sorted;
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))

let summarize values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  reject_nan "summarize" values;
  let sorted = Array.copy values in
  (* [Float.compare], not polymorphic [compare]: identical on non-NaN data
     but guaranteed total and boxing-free on float arrays. *)
  Array.sort Float.compare sorted;
  let r = running_create () in
  Array.iter (running_add r) values;
  {
    count = n;
    mean = running_mean r;
    stddev = (if n < 2 then 0. else running_stddev r);
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p99 = percentile sorted 0.99;
  }

let histogram ?(bins = 10) values =
  let n = Array.length values in
  if n = 0 || bins <= 0 then [||]
  else
    let lo = Array.fold_left min infinity values in
    let hi = Array.fold_left max neg_infinity values in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
    let counts = Array.make bins 0 in
    Array.iter
      (fun v ->
        let b = int_of_float ((v -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      values;
    Array.mapi
      (fun i c ->
        let l = lo +. (float_of_int i *. width) in
        (l, l +. width, c))
      counts
