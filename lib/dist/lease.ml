open Flowsched_util

type holder = {
  owner : string;
  host : string;
  pid : int;
  acquired_at : float;
  refreshed_at : float;
}

type t = { path : string; name : string; ttl : float; mutable holder : holder }

exception Lost of string

let self_owner () = Printf.sprintf "%s:%d" (Unix.gethostname ()) (Unix.getpid ())

let ttl t = t.ttl
let holder t = t.holder
let path t = t.path

let holder_json h =
  Json.Obj
    [
      ("owner", Json.Str h.owner);
      ("host", Json.Str h.host);
      ("pid", Json.Int h.pid);
      ("acquired_at", Json.Float h.acquired_at);
      ("refreshed_at", Json.Float h.refreshed_at);
    ]

let holder_of_json j =
  match
    ( Option.bind (Json.member "owner" j) Json.to_string_opt,
      Option.bind (Json.member "host" j) Json.to_string_opt,
      Option.bind (Json.member "pid" j) Json.to_int_opt,
      Option.bind (Json.member "acquired_at" j) Json.to_float_opt,
      Option.bind (Json.member "refreshed_at" j) Json.to_float_opt )
  with
  | Some owner, Some host, Some pid, Some acquired_at, Some refreshed_at ->
      Some { owner; host; pid; acquired_at; refreshed_at }
  | _ -> None

let read_holder path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | data -> (
      match Json.parse data with
      | Error _ -> None
      | Ok j -> Option.bind (Some j) holder_of_json)

let read ~dir ~name =
  let path = Filename.concat dir (name ^ ".lease") in
  if Sys.file_exists path then read_holder path else None

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  (* EPERM means the process exists but belongs to someone else. *)
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true

(* A holder is stale when its heartbeat is older than the ttl — or, as a
   same-host fast path, when its recorded pid no longer exists (the usual
   case in tests and single-box multi-process runs: no need to wait out
   the ttl to reclaim a SIGKILLed worker's shard). *)
let is_stale h ~ttl =
  (String.equal h.host (Unix.gethostname ()) && not (pid_alive h.pid))
  || Unix.gettimeofday () -. h.refreshed_at > ttl

(* Write [h] to a fresh temp file and atomically [link] it to [path].
   [link] fails with EEXIST if the lease exists — the atomic arbiter: of
   any number of concurrent claimants, exactly one wins.  (O_EXCL create
   then write would expose a half-written lease to concurrent readers.) *)
let try_create path h =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (holder_json h));
      Out_channel.output_char oc '\n');
  let won =
    match Unix.link tmp path with
    | () -> true
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  won

type acquired = { lease : t; taken_over_from : holder option }

let acquire ~dir ~name ?(ttl = 60.) () =
  let path = Filename.concat dir (name ^ ".lease") in
  let fresh () =
    let now = Unix.gettimeofday () in
    {
      owner = self_owner ();
      host = Unix.gethostname ();
      pid = Unix.getpid ();
      acquired_at = now;
      refreshed_at = now;
    }
  in
  (* Claim loop: try to create; on EEXIST inspect the incumbent; if it is
     stale, rename it away (only one claimant's rename of a given lease
     file succeeds) and try again.  Bounded: live contention means someone
     else owns the shard, which is a normal answer, not a reason to spin. *)
  let rec go tries stolen =
    if tries <= 0 then failwith (Printf.sprintf "lease %s: claim did not settle" path)
    else begin
      let h = fresh () in
      if try_create path h then
        Ok { lease = { path; name; ttl; holder = h }; taken_over_from = stolen }
      else
        match read_holder path with
        | None ->
            (* Mid-takeover by someone else, or unreadable: look again. *)
            go (tries - 1) stolen
        | Some incumbent ->
            if String.equal incumbent.owner (self_owner ()) then
              (* Our own previous incarnation cannot happen (owner embeds
                 the pid), but our own lease from this process can: treat
                 re-acquisition as already-held. *)
              Ok { lease = { path; name; ttl; holder = incumbent }; taken_over_from = stolen }
            else if is_stale incumbent ~ttl then begin
              let claim = Printf.sprintf "%s.stale.%d" path (Unix.getpid ()) in
              (match Unix.rename path claim with
              | () -> ( try Sys.remove claim with Sys_error _ -> ())
              | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
              go (tries - 1) (Some incumbent)
            end
            else Error incumbent
    end
  in
  go 8 None

(* Heartbeat: verify the file still names us, then atomically replace it
   with a refreshed timestamp.  If another worker stole the lease (it
   judged us dead — we stalled past the ttl), raise [Lost] instead of
   clobbering the thief: two workers writing one shard checkpoint is the
   exact split-brain the lease exists to prevent.  The check-then-rename
   window is inherent to filesystem-only coordination; it only opens after
   a real heartbeat stall, and the merge's duplicate audit would still
   catch any nondeterminism that slipped through. *)
let refresh t =
  (match read_holder t.path with
  | Some h when String.equal h.owner t.holder.owner -> ()
  | Some h -> raise (Lost (Printf.sprintf "lease %s now held by %s" t.path h.owner))
  | None -> raise (Lost (Printf.sprintf "lease %s disappeared" t.path)));
  let h = { t.holder with refreshed_at = Unix.gettimeofday () } in
  let tmp = Printf.sprintf "%s.tmp.%d" t.path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (holder_json h));
      Out_channel.output_char oc '\n');
  Sys.rename tmp t.path;
  t.holder <- h

let release t =
  match read_holder t.path with
  | Some h when String.equal h.owner t.holder.owner -> (
      try Sys.remove t.path with Sys_error _ -> ())
  | _ -> ()
