(** The verifying merge: fold per-shard checkpoint files back into one
    artifact, refusing anything that smells wrong.

    Validation, in order:

    - every manifest in the directory must carry this grid's fingerprint,
      shard count, kind, and policy set — shards cut from a different grid
      (or run with different policies) can never be merged;
    - every checkpoint entry must name a cell of the grid and decode
      exactly against that cell's config (the {!Flowsched_sim.Report}
      decoders are exact inverses of the encoders);
    - a cell recorded by two shards — or twice in one file — must agree
      byte-for-byte on its deterministic projection (timing fields
      stripped).  Duplicates are a {e free determinism audit}: a conflict
      is an error, never last-writer-wins;
    - cells with no record anywhere are reported as [missing] with the
      shard that owns them; callers decide whether partial output is
      acceptable ([flowsched merge] exits nonzero unless
      [--allow-partial]).

    The merged result list is in grid order with each cell's original
    recorded bytes (wall-clock included), so when complete it serializes —
    via [Report.sweep_json ~jobs:1] — into the same artifact an
    uninterrupted single-box [--jobs 1] run writes, up to the documented
    per-cell timing fields. *)

type report = {
  shards : int;  (** Shard count declared by the manifests. *)
  manifests_present : int list;  (** Shard indexes that registered. *)
  expected_cells : int;
  found_cells : int;
  duplicate_cells : int;  (** Cells recorded more than once (all audited). *)
  missing : (string * int) list;  (** Unrecorded cell key, owning shard. *)
}

val sweep :
  dir:string ->
  policies:string list ->
  Flowsched_sim.Experiment.sweep_config list ->
  (Flowsched_sim.Experiment.sweep_result list * report, string) result
(** Merge the sweep shards in [dir] against the grid [cells] (as built
    from the same CLI flags the workers ran with).  [Ok] carries the
    recovered results in grid order — possibly fewer than expected; check
    [report.missing] — and the audit report.  [Error] on any validation
    failure: fingerprint/policy mismatch, corrupt checkpoint, foreign or
    undecodable entry, or conflicting duplicates. *)
