open Flowsched_util

let plan ~shards ~index cells =
  if shards < 1 then
    invalid_arg (Printf.sprintf "Shard.plan: shards must be >= 1 (got %d)" shards);
  if index < 0 || index >= shards then
    invalid_arg (Printf.sprintf "Shard.plan: index %d out of range 0..%d" index (shards - 1));
  (* Round-robin by grid position: adjacent cells usually share a workload
     kind and rate, so striping spreads the expensive corner of the grid
     across workers instead of handing it whole to one shard. *)
  List.filteri (fun i _ -> i mod shards = index) cells

let owner_of ~shards i = i mod shards

let fingerprint keys = Printf.sprintf "%08x" (Crc.string (String.concat "\n" keys))

type manifest = {
  kind : string;
  shards : int;
  index : int;
  fingerprint : string;
  grid_cells : int;
  policies : string list;
  keys : string list;
}

let make ~kind ~shards ~index ~policies all_keys =
  {
    kind;
    shards;
    index;
    fingerprint = fingerprint all_keys;
    grid_cells = List.length all_keys;
    policies;
    keys = plan ~shards ~index all_keys;
  }

let file_stem ~shards ~index = Printf.sprintf "shard-%d-of-%d" index shards
let manifest_name ~shards ~index = file_stem ~shards ~index ^ ".manifest.json"
let checkpoint_name ~shards ~index = file_stem ~shards ~index ^ ".jsonl"

let manifest_json m =
  Json.Obj
    [
      ("schema", Json.Str "flowsched-shard/1");
      ("kind", Json.Str m.kind);
      ("shards", Json.Int m.shards);
      ("index", Json.Int m.index);
      ("fingerprint", Json.Str m.fingerprint);
      ("grid_cells", Json.Int m.grid_cells);
      ("policies", Json.Arr (List.map (fun p -> Json.Str p) m.policies));
      ("keys", Json.Arr (List.map (fun k -> Json.Str k) m.keys));
    ]

let manifest_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_string_opt in
  let int name = Option.bind (Json.member name j) Json.to_int_opt in
  let str_list name =
    match Json.member name j with
    | Some (Json.Arr xs) ->
        let strs = List.filter_map Json.to_string_opt xs in
        if List.length strs = List.length xs then Some strs else None
    | _ -> None
  in
  match
    (str "schema", str "kind", int "shards", int "index", str "fingerprint", int "grid_cells",
     str_list "policies", str_list "keys")
  with
  | ( Some "flowsched-shard/1",
      Some kind,
      Some shards,
      Some index,
      Some fingerprint,
      Some grid_cells,
      Some policies,
      Some keys ) ->
      if shards < 1 || index < 0 || index >= shards then
        Error (Printf.sprintf "manifest: shard %d/%d out of range" index shards)
      else Ok { kind; shards; index; fingerprint; grid_cells; policies; keys }
  | Some other, _, _, _, _, _, _, _ when other <> "flowsched-shard/1" ->
      Error (Printf.sprintf "manifest: unknown schema %S" other)
  | _ -> Error "manifest: missing or mistyped fields"

let load_manifest path =
  match Json.parse (In_channel.with_open_bin path In_channel.input_all) with
  | Error msg -> Error (Printf.sprintf "%s: not valid JSON: %s" path msg)
  | Ok j -> (
      match manifest_of_json j with
      | Ok m -> Ok m
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Atomic write (temp + rename): the merge may scan the directory while a
   worker is registering itself, and must never see a half-written file. *)
let write_manifest ~dir m =
  let path = Filename.concat dir (manifest_name ~shards:m.shards ~index:m.index) in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string (manifest_json m));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path;
  path

let compatible a b =
  if a.kind <> b.kind then Error (Printf.sprintf "kind %S vs %S" a.kind b.kind)
  else if a.shards <> b.shards then
    Error (Printf.sprintf "shard count %d vs %d" a.shards b.shards)
  else if a.fingerprint <> b.fingerprint then
    Error
      (Printf.sprintf "grid fingerprint %s vs %s (different grids can never merge)"
         a.fingerprint b.fingerprint)
  else if a.policies <> b.policies then
    Error
      (Printf.sprintf "policy set [%s] vs [%s]" (String.concat "," a.policies)
         (String.concat "," b.policies))
  else Ok ()

let scan dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".manifest.json")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)
