open Flowsched_util
module Experiment = Flowsched_sim.Experiment
module Report = Flowsched_sim.Report
module Checkpoint = Flowsched_sim.Checkpoint

type report = {
  shards : int;
  manifests_present : int list;
  expected_cells : int;
  found_cells : int;
  duplicate_cells : int;
  missing : (string * int) list;
}

let ( let* ) = Result.bind

let load_manifests ~dir ~kind ~policies ~all_keys =
  let paths = Shard.scan dir in
  if paths = [] then Error (Printf.sprintf "no shard manifests in %s" dir)
  else
    let* manifests =
      List.fold_left
        (fun acc path ->
          let* acc = acc in
          let* m = Shard.load_manifest path in
          Ok (m :: acc))
        (Ok []) paths
    in
    let manifests = List.rev manifests in
    (* The workers agreed on the shard count out-of-band (their --shard I/N
       flags); the merge learns it from the first manifest and holds every
       other manifest — via [compatible] — to the same count, kind,
       fingerprint, and policy set as this invocation's own grid. *)
    let shards = (List.hd manifests).Shard.shards in
    let reference = Shard.make ~kind ~shards ~index:0 ~policies all_keys in
    let* () =
      List.fold_left
        (fun acc m ->
          let* () = acc in
          match Shard.compatible reference m with
          | Ok () -> Ok ()
          | Error msg ->
              Error
                (Printf.sprintf "shard %d-of-%d does not belong to this grid: %s" m.Shard.index
                   m.Shard.shards msg))
        (Ok ()) manifests
    in
    let seen = Hashtbl.create 8 in
    let* () =
      List.fold_left
        (fun acc (m : Shard.manifest) ->
          let* () = acc in
          if Hashtbl.mem seen m.Shard.index then
            Error (Printf.sprintf "duplicate manifest for shard %d" m.Shard.index)
          else begin
            Hashtbl.add seen m.Shard.index ();
            Ok ()
          end)
        (Ok ()) manifests
    in
    Ok manifests

(* Fold one shard's checkpoint entries into the accumulator table.  Every
   entry must decode against its grid cell's config; a cell present in two
   shards (or twice in one file) is a free determinism audit — the
   deterministic projections (timing stripped) must be byte-equal, and a
   conflict is an error, never last-writer-wins. *)
let absorb_shard ~dir ~config_of_key ~table ~duplicates (m : Shard.manifest) =
  let path =
    Filename.concat dir (Shard.checkpoint_name ~shards:m.Shard.shards ~index:m.Shard.index)
  in
  let* entries =
    match Checkpoint.read_entries ~path with
    | entries -> Ok entries
    | exception Failure msg -> Error msg
  in
  List.fold_left
    (fun acc (e : Checkpoint.entry) ->
      let* () = acc in
      if e.Checkpoint.kind <> m.Shard.kind then
        Error
          (Printf.sprintf "%s: entry kind %S does not match manifest kind %S" path
             e.Checkpoint.kind m.Shard.kind)
      else
        match Hashtbl.find_opt config_of_key e.Checkpoint.key with
        | None ->
            Error
              (Printf.sprintf "%s: entry %s is not a cell of this grid" path e.Checkpoint.key)
        | Some config -> (
            match Report.sweep_result_of_json ~sweep:config e.Checkpoint.result with
            | Error msg ->
                Error (Printf.sprintf "%s: entry %s does not decode: %s" path e.Checkpoint.key msg)
            | Ok r -> (
                let stripped =
                  Json.to_string (Report.sweep_cell_json (Report.strip_sweep_timing r))
                in
                match Hashtbl.find_opt table e.Checkpoint.key with
                | None ->
                    Hashtbl.add table e.Checkpoint.key (m.Shard.index, r, stripped);
                    Ok ()
                | Some (first_shard, _, stripped0) ->
                    incr duplicates;
                    if String.equal stripped0 stripped then Ok ()
                    else
                      Error
                        (Printf.sprintf
                           "cell %s was computed by shard %d and shard %d with different \
                            results — determinism violation, refusing to merge"
                           e.Checkpoint.key first_shard m.Shard.index))))
    (Ok ()) entries

let sweep ~dir ~policies cells =
  let keys = List.map Checkpoint.sweep_key cells in
  let* manifests = load_manifests ~dir ~kind:"sweep" ~policies ~all_keys:keys in
  let shards = (List.hd manifests).Shard.shards in
  let config_of_key = Hashtbl.create (List.length cells) in
  List.iter2 (fun k c -> Hashtbl.replace config_of_key k c) keys cells;
  let table = Hashtbl.create (List.length cells) in
  let duplicates = ref 0 in
  let* () =
    List.fold_left
      (fun acc m ->
        let* () = acc in
        absorb_shard ~dir ~config_of_key ~table ~duplicates m)
      (Ok ()) manifests
  in
  let missing =
    List.mapi (fun i k -> (i, k)) keys
    |> List.filter (fun (_, k) -> not (Hashtbl.mem table k))
    |> List.map (fun (i, k) -> (k, Shard.owner_of ~shards i))
  in
  let results =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt table k with Some (_, r, _) -> Some r | None -> None)
      keys
  in
  Ok
    ( results,
      {
        shards;
        manifests_present = List.map (fun (m : Shard.manifest) -> m.Shard.index) manifests;
        expected_cells = List.length cells;
        found_cells = List.length results;
        duplicate_cells = !duplicates;
        missing;
      } )
