(** Filesystem leases: exclusive shard ownership with heartbeats and
    crash takeover, coordinated through the checkpoint directory alone —
    no lock server, no network service.

    A lease is a JSON file [<name>.lease] recording its holder (owner id,
    host, pid) and heartbeat timestamps.  {!acquire} claims it atomically:
    the claimant writes a complete temp file and [Unix.link]s it into
    place, so concurrent claimants race on a single atomic syscall and
    readers never observe a half-written lease.  A holder heartbeats by
    {!refresh}ing after each completed cell; a claimant finding a {e stale}
    lease — heartbeat older than the ttl, or (same-host fast path) a dead
    pid — renames the corpse aside and claims the shard, then resumes from
    the dead worker's checkpoint prefix.

    Semantics and limits (documented, by design): staleness-by-ttl assumes
    loosely synchronized clocks across hosts and a heartbeat interval well
    under the ttl (a worker that stalls longer than the ttl can be
    declared dead while alive).  {!refresh} detects that takeover and
    raises {!Lost} rather than clobbering the new owner; the merge's
    byte-equality audit on duplicate cells is the backstop if both still
    managed to write. *)

type holder = {
  owner : string;  (** ["host:pid"], unique per worker process. *)
  host : string;
  pid : int;
  acquired_at : float;
  refreshed_at : float;  (** Last heartbeat (epoch seconds). *)
}

type t
(** A lease held by this process. *)

exception Lost of string
(** Raised by {!refresh} when the lease file no longer names this process
    — another worker judged us dead and took the shard over.  The only
    safe reaction is to stop writing the shard checkpoint. *)

type acquired = {
  lease : t;
  taken_over_from : holder option;
      (** [Some h] when the claim displaced a stale holder — the takeover
          path: resume from [h]'s checkpoint prefix. *)
}

val acquire : dir:string -> name:string -> ?ttl:float -> unit -> (acquired, holder) result
(** Claim [dir/<name>.lease].  [Ok] on success (fresh claim or stale
    takeover); [Error incumbent] when a live holder already owns it.
    [ttl] (default 60s) is the staleness horizon used both for this claim
    and for judging this process's own later heartbeats. *)

val refresh : t -> unit
(** Heartbeat: atomically rewrite the lease with a fresh timestamp.
    Raises {!Lost} if the file now names another owner (or vanished). *)

val release : t -> unit
(** Remove the lease if this process still holds it.  Only called on
    clean shard completion — a worker dying with the lease in place is
    exactly what lets the next claimant detect the crash. *)

val read : dir:string -> name:string -> holder option
(** Inspect a lease without claiming it. *)

val is_stale : holder -> ttl:float -> bool
(** True when the heartbeat is older than [ttl], or the holder's pid is
    dead on this host (the same-host fast path — no need to wait out the
    ttl to reclaim a SIGKILLed worker's shard). *)

val self_owner : unit -> string
(** This process's owner id, ["host:pid"]. *)

val ttl : t -> float

val holder : t -> holder

val path : t -> string
