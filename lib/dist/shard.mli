(** Deterministic shard planning for distributed grid runs.

    A grid of N cells split over [shards] workers: shard [index] owns the
    cells whose grid position is congruent to [index] mod [shards]
    (round-robin striping, so the expensive corner of a grid is spread
    across workers rather than handed whole to one).  The plan is a pure
    function of the cell list, so every worker — and the merge — computes
    the same partition from the same CLI flags, with no coordinator.

    Each worker registers itself by writing a {!manifest} into the shared
    checkpoint directory.  The manifest carries a {!fingerprint} of the
    {e full} grid's canonical cell keys: two shards whose fingerprints
    differ were cut from different grids and can never be merged, no
    matter how plausible their file names look. *)

val plan : shards:int -> index:int -> 'a list -> 'a list
(** The sublist of cells owned by shard [index] of [shards], in grid
    order.  [plan ~shards ~index] over [index = 0..shards-1] partitions
    the input exactly.  Raises [Invalid_argument] on [shards < 1] or an
    out-of-range index. *)

val owner_of : shards:int -> int -> int
(** The shard that owns the cell at grid position [i]. *)

val fingerprint : string list -> string
(** Hex CRC-32 of the canonical cell keys of the whole grid, in grid
    order.  Identifies the grid: any change to a cell config, the cell
    count, or their order changes the fingerprint. *)

type manifest = {
  kind : string;  (** The checkpoint entry kind, e.g. ["sweep"]. *)
  shards : int;
  index : int;
  fingerprint : string;  (** {!fingerprint} of the full grid. *)
  grid_cells : int;  (** Total cells in the full grid. *)
  policies : string list;
      (** Policy names the worker ran — results depend on them even though
          cell keys do not, so merging checks them too. *)
  keys : string list;  (** This shard's assigned cell keys, in grid order. *)
}

val make : kind:string -> shards:int -> index:int -> policies:string list -> string list -> manifest
(** [make ~kind ~shards ~index ~policies all_keys] — the manifest for one
    shard of the grid whose full canonical key list is [all_keys]. *)

val file_stem : shards:int -> index:int -> string
(** ["shard-<index>-of-<shards>"] — the basename shared by a shard's
    manifest, checkpoint, and lease files. *)

val manifest_name : shards:int -> index:int -> string
val checkpoint_name : shards:int -> index:int -> string

val write_manifest : dir:string -> manifest -> string
(** Atomically (temp + rename) write the manifest into [dir]; returns the
    path.  Idempotent for the same grid. *)

val load_manifest : string -> (manifest, string) result

val compatible : manifest -> manifest -> (unit, string) result
(** Check two manifests describe the same grid run: same kind, shard
    count, fingerprint, and policy set. *)

val scan : string -> string list
(** The manifest paths present in a checkpoint directory, sorted. *)

val manifest_json : manifest -> Flowsched_util.Json.t
val manifest_of_json : Flowsched_util.Json.t -> (manifest, string) result
