open Flowsched_util

let series objective (cell : Experiment.cell_result) =
  match objective with
  | `Avg -> (cell.Experiment.avg_response, cell.Experiment.lp_avg_bound)
  | `Max -> (cell.Experiment.max_response, cell.Experiment.lp_max_bound)

let table objective results =
  let policy_names =
    match results with
    | [] -> []
    | cell :: _ -> List.map fst (fst (series objective cell))
  in
  let columns =
    [ ("M/m", Table.Right); ("T", Table.Right); ("flows", Table.Right) ]
    @ List.concat_map
        (fun n -> [ (n, Table.Right); (n ^ "/LP", Table.Right) ])
        policy_names
    @ [ ("LP bound", Table.Right) ]
  in
  let t = Table.create columns in
  let last_congestion = ref nan in
  List.iter
    (fun (cell : Experiment.cell_result) ->
      let cfg = cell.Experiment.config in
      let congestion = cfg.Experiment.rate /. float_of_int cfg.Experiment.m in
      if (not (Float.is_nan !last_congestion)) && congestion <> !last_congestion then
        Table.add_separator t;
      last_congestion := congestion;
      let values, lp = series objective cell in
      Table.add_row t
        ([
           Table.cell_float ~decimals:2 congestion;
           string_of_int cfg.Experiment.rounds;
           Table.cell_float ~decimals:1 cell.Experiment.flows_mean;
         ]
        @ List.concat_map
            (fun (_, v) -> [ Table.cell_float v; Table.cell_ratio v lp ])
            values
        @ [ Table.cell_float lp ]))
    results;
  Table.render t

let fig6_table results = table `Avg results
let fig7_table results = table `Max results

(* ------------------------------------------------------------------ *)
(* JSON artifacts                                                      *)
(* ------------------------------------------------------------------ *)

let policy_series_json values = Json.Obj (List.map (fun (name, v) -> (name, Json.float v)) values)

let cell_json (cell : Experiment.cell_result) =
  let cfg = cell.Experiment.config in
  Json.Obj
    [
      ("m", Json.Int cfg.Experiment.m);
      ("rate", Json.Float cfg.Experiment.rate);
      ("rounds", Json.Int cfg.Experiment.rounds);
      ("tries", Json.Int cfg.Experiment.tries);
      ("seed", Json.Int cfg.Experiment.seed);
      ("with_lp", Json.Bool cfg.Experiment.with_lp);
      ("flows_mean", Json.float cell.Experiment.flows_mean);
      ("avg_response", policy_series_json cell.Experiment.avg_response);
      ("max_response", policy_series_json cell.Experiment.max_response);
      ("lp_avg_bound", Json.float cell.Experiment.lp_avg_bound);
      ("lp_max_bound", Json.float cell.Experiment.lp_max_bound);
    ]

let figures_json ?(jobs = 1) results =
  Json.Obj
    [
      ("schema", Json.Str "flowsched-figures/1");
      ("jobs", Json.Int jobs);
      ("cells", Json.Arr (List.map cell_json results));
    ]

let lp_counters_json (c : Flowsched_lp.Simplex.counters) =
  Json.Obj
    [
      ("solves", Json.Int c.Flowsched_lp.Simplex.solves);
      ("pivots", Json.Int c.Flowsched_lp.Simplex.pivots);
      ("ftran_calls", Json.Int c.Flowsched_lp.Simplex.ftran_calls);
      ("refactorizations", Json.Int c.Flowsched_lp.Simplex.refactorizations);
      ("full_pricing_scans", Json.Int c.Flowsched_lp.Simplex.full_pricing_scans);
      ("partial_pricing_rounds", Json.Int c.Flowsched_lp.Simplex.partial_pricing_rounds);
      ("warm_attempts", Json.Int c.Flowsched_lp.Simplex.warm_attempts);
      ("warm_accepted", Json.Int c.Flowsched_lp.Simplex.warm_accepted);
      ("phase1_skipped", Json.Int c.Flowsched_lp.Simplex.phase1_skipped);
      ("basis_nnz", Json.Int c.Flowsched_lp.Simplex.basis_nnz);
      ("factor_nnz", Json.Int c.Flowsched_lp.Simplex.factor_nnz);
      ("eta_nnz", Json.Int c.Flowsched_lp.Simplex.eta_nnz);
      ("bound_flips", Json.Int c.Flowsched_lp.Simplex.bound_flips);
      ("phase1_seconds", Json.float c.Flowsched_lp.Simplex.phase1_seconds);
      ("phase2_seconds", Json.float c.Flowsched_lp.Simplex.phase2_seconds);
    ]

let sweep_cell_json (r : Experiment.sweep_result) =
  let s = r.Experiment.sweep in
  Json.Obj
    [
      ("workload", Json.Str s.Experiment.workload);
      ("m", Json.Int s.Experiment.ports);
      ("rate", Json.Float s.Experiment.arrival_rate);
      ("rounds", Json.Int s.Experiment.horizon);
      ("max_demand", Json.Int s.Experiment.max_demand);
      ("seed", Json.Int s.Experiment.sweep_seed);
      ("flows", Json.Int r.Experiment.flows);
      ( "policies",
        Json.Arr
          (List.map
             (fun (p : Experiment.sweep_policy_result) ->
               Json.Obj
                 [
                   ("name", Json.Str p.Experiment.policy);
                   ("avg_response", Json.float p.Experiment.art);
                   ("max_response", Json.Int p.Experiment.mrt);
                 ])
             r.Experiment.per_policy) );
      ("lp_avg_bound", Json.float r.Experiment.lp_avg);
      ("lp_max_bound", Json.float r.Experiment.lp_max);
      ( "lp_counters",
        match r.Experiment.lp_counters with
        | None -> Json.Null
        | Some c -> lp_counters_json c );
      ( "lp_error",
        match r.Experiment.lp_error with None -> Json.Null | Some e -> Json.Str e );
      ("wall_clock_s", Json.float r.Experiment.wall_s);
    ]

let sweep_json ?(jobs = 1) ?metrics results =
  Json.Obj
    ([
       ("schema", Json.Str "flowsched-sweep/1");
       ("jobs", Json.Int jobs);
       ("cells", Json.Arr (List.map sweep_cell_json results));
     ]
    @ match metrics with
      | None -> []
      | Some m -> [ ("metrics", m) ])

(* ------------------------------------------------------------------ *)
(* Artifact decoders — exact inverses of the cell encoders above, used  *)
(* by Checkpoint to reload completed cells.  Invariant (tested):        *)
(* re-encoding a decoded cell reproduces the original bytes, which is   *)
(* what makes a resumed sweep artifact byte-identical.                  *)
(* ------------------------------------------------------------------ *)

(* The deterministic projection of a sweep result: everything except the
   wall-clock readings, which legitimately differ between two runs of the
   same cell.  Two computations of one cell must agree here byte-for-byte
   — the merge pipeline's duplicate audit and the chaos tests both compare
   [sweep_cell_json (strip_sweep_timing r)] strings. *)
let strip_sweep_timing (r : Experiment.sweep_result) =
  let lp_counters =
    Option.map
      (fun (c : Flowsched_lp.Simplex.counters) ->
        { c with Flowsched_lp.Simplex.phase1_seconds = 0.; phase2_seconds = 0. })
      r.Experiment.lp_counters
  in
  { r with Experiment.wall_s = 0.; lp_counters }

exception Decode of string

let req what = function Some v -> v | None -> raise (Decode (what ^ ": missing or mistyped"))
let req_int j name = req name (Option.bind (Json.member name j) Json.to_int_opt)
let req_float j name = req name (Option.bind (Json.member name j) Json.to_float_opt)
let req_str j name = req name (Option.bind (Json.member name j) Json.to_string_opt)

let opt_str j name =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> Some (req name (Json.to_string_opt v))

let lp_counters_of_json j =
  {
    Flowsched_lp.Simplex.solves = req_int j "solves";
    pivots = req_int j "pivots";
    ftran_calls = req_int j "ftran_calls";
    refactorizations = req_int j "refactorizations";
    full_pricing_scans = req_int j "full_pricing_scans";
    partial_pricing_rounds = req_int j "partial_pricing_rounds";
    warm_attempts = req_int j "warm_attempts";
    warm_accepted = req_int j "warm_accepted";
    phase1_skipped = req_int j "phase1_skipped";
    basis_nnz = req_int j "basis_nnz";
    factor_nnz = req_int j "factor_nnz";
    eta_nnz = req_int j "eta_nnz";
    bound_flips = req_int j "bound_flips";
    phase1_seconds = req_float j "phase1_seconds";
    phase2_seconds = req_float j "phase2_seconds";
  }

let check what expected got = if expected <> got then raise (Decode ("mismatched " ^ what))

let sweep_result_of_json ~sweep j =
  try
    check "workload" sweep.Experiment.workload (req_str j "workload");
    check "m" sweep.Experiment.ports (req_int j "m");
    check "seed" sweep.Experiment.sweep_seed (req_int j "seed");
    check "rounds" sweep.Experiment.horizon (req_int j "rounds");
    let per_policy =
      match Json.member "policies" j with
      | Some (Json.Arr pols) ->
          List.map
            (fun pj ->
              {
                Experiment.policy = req_str pj "name";
                art = req_float pj "avg_response";
                mrt = req_int pj "max_response";
              })
            pols
      | _ -> raise (Decode "policies: missing or mistyped")
    in
    let lp_counters =
      match Json.member "lp_counters" j with
      | None | Some Json.Null -> None
      | Some c -> Some (lp_counters_of_json c)
    in
    Ok
      {
        Experiment.sweep;
        flows = req_int j "flows";
        per_policy;
        lp_avg = req_float j "lp_avg_bound";
        lp_max = req_float j "lp_max_bound";
        lp_counters;
        lp_error = opt_str j "lp_error";
        wall_s = req_float j "wall_clock_s";
      }
  with Decode msg -> Error msg

let cell_result_of_json ~config j =
  try
    check "m" config.Experiment.m (req_int j "m");
    check "rounds" config.Experiment.rounds (req_int j "rounds");
    check "tries" config.Experiment.tries (req_int j "tries");
    check "seed" config.Experiment.seed (req_int j "seed");
    let series name =
      match Json.member name j with
      | Some (Json.Obj fields) ->
          List.map (fun (policy, v) -> (policy, req name (Json.to_float_opt v))) fields
      | _ -> raise (Decode (name ^ ": missing or mistyped"))
    in
    Ok
      {
        Experiment.config;
        flows_mean = req_float j "flows_mean";
        avg_response = series "avg_response";
        max_response = series "max_response";
        lp_avg_bound = req_float j "lp_avg_bound";
        lp_max_bound = req_float j "lp_max_bound";
      }
  with Decode msg -> Error msg

let csv ~objective results =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "m,rate,rounds,tries,flows,policy,value,lp_bound\n";
  List.iter
    (fun (cell : Experiment.cell_result) ->
      let cfg = cell.Experiment.config in
      let values, lp = series objective cell in
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%g,%d,%d,%g,%s,%g,%g\n" cfg.Experiment.m cfg.Experiment.rate
               cfg.Experiment.rounds cfg.Experiment.tries cell.Experiment.flows_mean name v lp))
        values)
    results;
  Buffer.contents buf
