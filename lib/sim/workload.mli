(** Workload generation (§5.2.1).

    "for each time unit t = 0..T-1, a Poisson distribution of mean M is used
    to generate flows released at time t.  For each such flow, an input port
    and an output port is selected uniformly at random."  Demands are unit
    by default; {!poisson_with_demands} adds bounded random demands for the
    Theorem 3 experiments. *)

val poisson :
  m:int -> rate:float -> rounds:int -> seed:int -> Flowsched_switch.Instance.t
(** Unit-capacity, unit-demand [m x m] switch; [rate] is the paper's M.
    The result can have zero flows for tiny [rate * rounds].

    All generators here raise [Invalid_argument] on degenerate parameters
    instead of silently producing empty or NaN-weighted draws: nonpositive
    [rate], [alpha <= 0], [fraction] outside [\[0, 1\]], or
    [max_demand < 1]. *)

val poisson_with_demands :
  m:int -> rate:float -> rounds:int -> max_demand:int -> seed:int ->
  Flowsched_switch.Instance.t
(** Same arrivals, uniform demands in [\[1, max_demand\]], all port
    capacities set to [max_demand] so every flow fits. *)

val uniform_total :
  m:int -> n:int -> max_release:int -> seed:int -> Flowsched_switch.Instance.t
(** Exactly [n] unit flows with uniform ports and uniform releases in
    [\[0, max_release\]] — the workload used for offline algorithm tests
    where a fixed instance size matters more than an arrival process. *)

val skewed :
  m:int -> rate:float -> rounds:int -> ?alpha:float -> seed:int -> unit ->
  Flowsched_switch.Instance.t
(** Poisson arrivals whose endpoints follow a Zipf(alpha) popularity
    distribution over ports (default [alpha = 1.0]) instead of the paper's
    uniform choice — the "distribution of input instances" direction from
    the paper's future-work section.  Hot ports concentrate load, which
    stresses the heuristics' queue management far more than uniform
    traffic. *)

val hotspot :
  m:int -> rate:float -> rounds:int -> ?fraction:float -> seed:int -> unit ->
  Flowsched_switch.Instance.t
(** Poisson arrivals where a [fraction] (default 0.5) of all flows target
    output port 0 (an incast hotspot, e.g. a storage head node); sources
    and the remaining destinations stay uniform. *)

(** {1 Arrival streams}

    The serve loop runs over horizons far longer than any materialized
    instance, so the generators above are also exposed as unbounded
    slot-clocked streams.  A stream draws from the PRNG in exactly the same
    order as the corresponding batch generator: for any seed and horizon
    [T], concatenating [stream_next] over slots [0..T-1] (tagging each
    arrival with its slot) yields precisely the flow specs of the batch
    instance.  Tests rely on this prefix property to replay a served trace
    through the batch engine. *)

type kind =
  | Uniform  (** {!poisson}: uniform endpoints, unit demands. *)
  | Uniform_demands of int
      (** {!poisson_with_demands} with the given [max_demand]. *)
  | Skewed of float  (** {!skewed} with the given [alpha]. *)
  | Hotspot of float  (** {!hotspot} with the given [fraction]. *)

type stream

val stream : kind -> m:int -> rate:float -> seed:int -> stream
(** Raises [Invalid_argument] on [m < 1], negative [rate], or kind
    parameters out of range. *)

val stream_next : stream -> (int * int * int) list
(** Arrivals [(src, dst, demand)] released at the stream's current slot, in
    generation order; advances the stream to the next slot.  The list is
    empty on slots where the Poisson draw is zero. *)

val stream_slot : stream -> int
(** Number of slots generated so far (the slot index the next
    [stream_next] call will produce). *)

(** {1 Kind registry}

    Sweep cells name their workload by string; the base kinds are resolved
    directly by {!Experiment.sweep_instance}, and anything else is looked up
    here.  Higher layers (the scenario zoo) register a resolver at module
    initialization — before any worker forks or domain spawns — so new
    scenario kinds become sweepable by registering in exactly one place and
    the registry is identical in every worker. *)

type gen_params = {
  gen_m : int;  (** ports per side *)
  gen_rate : float;  (** arrival rate (the paper's M) *)
  gen_rounds : int;  (** generation rounds T *)
  gen_max_demand : int;  (** demand bound, for kinds with non-unit demands *)
  gen_seed : int;
}
(** The sweep-cell parameters handed to a registered generator. *)

val register_kinds :
  names:string list -> (string -> (gen_params -> Flowsched_switch.Instance.t) option) -> unit
(** [register_kinds ~names resolve] appends a resolver.  [resolve kind]
    returns the generator for a kind string it recognizes (it may parse
    parameters out of the string, e.g. ["pareto:1.5"]) or [None]; [names]
    are the canonical kind names, used in listings and error messages. *)

val lookup_kind : string -> (gen_params -> Flowsched_switch.Instance.t) option
(** First registered resolver that recognizes the kind string. *)

val registered_kind_names : unit -> string list
