open Flowsched_util

type t = {
  path : string;
  entries : (string, Json.t) Hashtbl.t;  (* key -> recorded result object *)
  oc : Out_channel.t;
  mutable loaded : int;
}

(* Canonical cell identities.  Floats print as hex (%h): exact, so a rate
   of 2.0 and 2.0000000000000004 never collide into one key. *)
let sweep_key (s : Experiment.sweep_config) =
  Printf.sprintf "sweep|%s|m=%d|rate=%h|T=%d|dmax=%d|seed=%d|lp=%b" s.Experiment.workload
    s.Experiment.ports s.Experiment.arrival_rate s.Experiment.horizon s.Experiment.max_demand
    s.Experiment.sweep_seed s.Experiment.lp

let grid_key (c : Experiment.cell_config) =
  Printf.sprintf "grid|m=%d|rate=%h|T=%d|tries=%d|seed=%d|lp=%b" c.Experiment.m
    c.Experiment.rate c.Experiment.rounds c.Experiment.tries c.Experiment.seed
    c.Experiment.with_lp

let entry_of_line line =
  match Json.parse line with
  | Error msg -> Error msg
  | Ok j -> (
      match
        ( Option.bind (Json.member "key" j) Json.to_string_opt,
          Json.member "result" j )
      with
      | Some key, Some result -> Ok (key, result)
      | _ -> Error "not a checkpoint entry (expected key + result fields)")

let loaded t = t.loaded

let open_ ~path ~resume =
  let entries = Hashtbl.create 64 in
  let valid_lines = ref [] in
  if resume && Sys.file_exists path then begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    let lines = String.split_on_char '\n' data |> List.filter (fun l -> String.trim l <> "") in
    let n = List.length lines in
    List.iteri
      (fun i line ->
        match entry_of_line line with
        | Ok (key, result) ->
            Hashtbl.replace entries key result;
            valid_lines := line :: !valid_lines
        | Error msg when i = n - 1 ->
            (* The tail of a file whose writer was killed mid-append: drop
               it (it is rewritten away below, so appends stay clean). *)
            Printf.eprintf "checkpoint %s: dropping partial final line (%s)\n%!" path msg
        | Error msg ->
            failwith
              (Printf.sprintf "checkpoint %s is corrupt at line %d: %s" path (i + 1) msg))
      lines
  end;
  (* Truncate-and-rewrite the valid prefix (cheap next to the compute the
     file is saving), leaving the channel positioned for appends. *)
  let oc = Out_channel.open_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  List.iter
    (fun line ->
      Out_channel.output_string oc line;
      Out_channel.output_char oc '\n')
    (List.rev !valid_lines);
  Out_channel.flush oc;
  { path; entries; oc; loaded = Hashtbl.length entries }

let close t = Out_channel.close t.oc

let append t ~kind ~key result =
  let line =
    Json.to_string ~pretty:false
      (Json.Obj [ ("kind", Json.Str kind); ("key", Json.Str key); ("result", result) ])
  in
  Out_channel.output_string t.oc line;
  Out_channel.output_char t.oc '\n';
  (* One flush per cell: a kill between cells never loses a settled one. *)
  Out_channel.flush t.oc;
  Hashtbl.replace t.entries key result

(* Partition cells against the store, run only the remainder (persisting
   each completion), and merge back in grid order. *)
let resume_run ~kind ~key ~decode ~encode ~run_cells t cells =
  let recovered = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem recovered k then false
        else
          match Hashtbl.find_opt t.entries k with
          | Some j ->
              (match decode c j with
              | Ok r -> Hashtbl.replace recovered k r
              | Error msg ->
                  failwith
                    (Printf.sprintf "checkpoint %s: entry for %s does not decode: %s" t.path k
                       msg));
              false
          | None -> true)
      cells
  in
  let fresh =
    match todo with
    | [] -> []
    | _ -> run_cells (fun c r -> append t ~kind ~key:(key c) (encode r)) todo
  in
  let q = Queue.create () in
  List.iter (fun r -> Queue.add r q) fresh;
  List.map
    (fun c ->
      match Hashtbl.find_opt recovered (key c) with Some r -> r | None -> Queue.pop q)
    cells

let run_sweep ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults t cells =
  resume_run ~kind:"sweep" ~key:sweep_key
    ~decode:(fun c j -> Report.sweep_result_of_json ~sweep:c j)
    ~encode:Report.sweep_cell_json
    ~run_cells:(fun on_result todo ->
      Experiment.run_sweep ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults
        ~on_result todo)
    t cells

let run_grid ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults t cells =
  resume_run ~kind:"grid" ~key:grid_key
    ~decode:(fun c j -> Report.cell_result_of_json ~config:c j)
    ~encode:Report.cell_json
    ~run_cells:(fun on_result todo ->
      Experiment.run_grid ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults
        ~on_result todo)
    t cells
