open Flowsched_util

type t = {
  path : string;
  entries : (string, Json.t) Hashtbl.t;  (* key -> recorded result object *)
  oc : Out_channel.t;
  mutable loaded : int;
}

type entry = { kind : string; key : string; result : Json.t }

(* Canonical cell identities.  Floats print as hex (%h): exact, so a rate
   of 2.0 and 2.0000000000000004 never collide into one key. *)
let sweep_key (s : Experiment.sweep_config) =
  Printf.sprintf "sweep|%s|m=%d|rate=%h|T=%d|dmax=%d|seed=%d|lp=%b" s.Experiment.workload
    s.Experiment.ports s.Experiment.arrival_rate s.Experiment.horizon s.Experiment.max_demand
    s.Experiment.sweep_seed s.Experiment.lp

let grid_key (c : Experiment.cell_config) =
  Printf.sprintf "grid|m=%d|rate=%h|T=%d|tries=%d|seed=%d|lp=%b" c.Experiment.m
    c.Experiment.rate c.Experiment.rounds c.Experiment.tries c.Experiment.seed
    c.Experiment.with_lp

(* ------------------------------------------------------------------ *)
(* Line format.  Each line is a JSON object whose first field is a      *)
(* CRC-32 (hex) of the rest of the object serialized compactly:         *)
(*   {"crc": "xxxxxxxx", "kind": ..., "key": ..., "result": ...}        *)
(* The CRC lets the loader tell a torn tail (the writer was killed      *)
(* mid-append: drop the line and continue) from mid-file bit rot (fail  *)
(* loudly with the line number) — JSON parse failure alone cannot       *)
(* catch a flipped digit inside a number.                               *)
(* ------------------------------------------------------------------ *)

let entry_json ~kind ~key result =
  Json.Obj [ ("kind", Json.Str kind); ("key", Json.Str key); ("result", result) ]

let seal ~kind ~key result =
  let body = Json.to_string ~pretty:false (entry_json ~kind ~key result) in
  (* [body] is "{...}": splice the checksum in as the first field. *)
  Printf.sprintf "{\"crc\": \"%08x\", %s" (Crc.string body)
    (String.sub body 1 (String.length body - 1))

(* A line is [Torn] when it could be the tail of an interrupted append
   (incomplete JSON, or a checksum that does not match — the write never
   finished); it is a hard [Error] when the checksum proves the line was
   written in full but its structure is still wrong. *)
type parsed = Entry of entry | Torn of string | Bad of string

let parse_line line =
  match Json.parse line with
  | Error msg -> Torn ("not valid JSON: " ^ msg)
  | Ok (Json.Obj (("crc", Json.Str stored) :: rest)) -> (
      let body = Json.to_string ~pretty:false (Json.Obj rest) in
      let computed = Printf.sprintf "%08x" (Crc.string body) in
      if not (String.equal stored computed) then
        Torn (Printf.sprintf "CRC mismatch (stored %s, computed %s)" stored computed)
      else
        match
          ( Option.bind (Json.member "kind" (Json.Obj rest)) Json.to_string_opt,
            Option.bind (Json.member "key" (Json.Obj rest)) Json.to_string_opt,
            Json.member "result" (Json.Obj rest) )
        with
        | Some kind, Some key, Some result -> Entry { kind; key; result }
        | _ -> Bad "checksummed line is not a checkpoint entry (expected kind + key + result)")
  | Ok _ -> Torn "missing leading crc field"

let read_entries ~path =
  if not (Sys.file_exists path) then []
  else begin
    let data = In_channel.with_open_bin path In_channel.input_all in
    let lines =
      String.split_on_char '\n' data |> List.filter (fun l -> String.trim l <> "")
    in
    let n = List.length lines in
    List.filteri
      (fun i line ->
        match parse_line line with
        | Entry _ -> true
        | Torn msg when i = n - 1 ->
            (* The tail of a file whose writer was killed mid-append: drop
               it (callers rewrite the valid prefix, so appends stay clean). *)
            Printf.eprintf "checkpoint %s: dropping partial final line (%s)\n%!" path msg;
            false
        | Torn msg | Bad msg ->
            failwith
              (Printf.sprintf "checkpoint %s is corrupt at line %d: %s" path (i + 1) msg))
      lines
    |> List.map (fun line ->
           match parse_line line with
           | Entry e -> e
           | Torn _ | Bad _ -> assert false)
  end

let loaded t = t.loaded

let open_ ~path ~resume =
  let entries = Hashtbl.create 64 in
  let valid = if resume then read_entries ~path else [] in
  List.iter (fun e -> Hashtbl.replace entries e.key e.result) valid;
  (* Truncate-and-rewrite the valid prefix (cheap next to the compute the
     file is saving), leaving the channel positioned for appends.  Sealing
     is deterministic, so surviving lines keep their exact bytes. *)
  let oc = Out_channel.open_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  List.iter
    (fun e ->
      Out_channel.output_string oc (seal ~kind:e.kind ~key:e.key e.result);
      Out_channel.output_char oc '\n')
    valid;
  Out_channel.flush oc;
  { path; entries; oc; loaded = Hashtbl.length entries }

let close t = Out_channel.close t.oc

let append t ~kind ~key result =
  Out_channel.output_string t.oc (seal ~kind ~key result);
  Out_channel.output_char t.oc '\n';
  (* One flush per cell: a kill between cells never loses a settled one. *)
  Out_channel.flush t.oc;
  Hashtbl.replace t.entries key result

(* Partition cells against the store, run only the remainder (persisting
   each completion), and merge back in grid order. *)
let resume_run ~kind ~key ?(on_append = fun _ -> ()) ~decode ~encode ~run_cells t cells =
  let recovered = Hashtbl.create 16 in
  let todo =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem recovered k then false
        else
          match Hashtbl.find_opt t.entries k with
          | Some j ->
              (match decode c j with
              | Ok r -> Hashtbl.replace recovered k r
              | Error msg ->
                  failwith
                    (Printf.sprintf "checkpoint %s: entry for %s does not decode: %s" t.path k
                       msg));
              false
          | None -> true)
      cells
  in
  let fresh =
    match todo with
    | [] -> []
    | _ ->
        run_cells
          (fun c r ->
            let k = key c in
            append t ~kind ~key:k (encode r);
            on_append k)
          todo
  in
  let q = Queue.create () in
  List.iter (fun r -> Queue.add r q) fresh;
  List.map
    (fun c ->
      match Hashtbl.find_opt recovered (key c) with Some r -> r | None -> Queue.pop q)
    cells

let run_sweep ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults ?on_append t cells
    =
  resume_run ~kind:"sweep" ~key:sweep_key ?on_append
    ~decode:(fun c j -> Report.sweep_result_of_json ~sweep:c j)
    ~encode:Report.sweep_cell_json
    ~run_cells:(fun on_result todo ->
      Experiment.run_sweep ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults
        ~on_result todo)
    t cells

let run_grid ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults ?on_append t cells =
  resume_run ~kind:"grid" ~key:grid_key ?on_append
    ~decode:(fun c j -> Report.cell_result_of_json ~config:c j)
    ~encode:Report.cell_json
    ~run_cells:(fun on_result todo ->
      Experiment.run_grid ~policies ?progress ?backend ?jobs ?timeout ?retries ?faults
        ~on_result todo)
    t cells
