open Flowsched_switch
open Flowsched_util

type cell_config = {
  m : int;
  rate : float;
  rounds : int;
  tries : int;
  seed : int;
  with_lp : bool;
}

type cell_result = {
  config : cell_config;
  flows_mean : float;
  avg_response : (string * float) list;
  max_response : (string * float) list;
  lp_avg_bound : float;
  lp_max_bound : float;
}

let run_cell ~policies config =
  let per_policy_avg = Hashtbl.create 8 and per_policy_max = Hashtbl.create 8 in
  let lp_avgs = ref [] and lp_maxs = ref [] in
  let flow_counts = ref [] in
  let names = List.map (fun (p : Flowsched_online.Policy.t) -> p.Flowsched_online.Policy.name) policies in
  List.iter
    (fun name ->
      Hashtbl.replace per_policy_avg name [];
      Hashtbl.replace per_policy_max name [])
    names;
  for trial = 0 to config.tries - 1 do
    let seed = config.seed + (1000 * trial) in
    let inst = Workload.poisson ~m:config.m ~rate:config.rate ~rounds:config.rounds ~seed in
    if Instance.n inst > 0 then begin
      flow_counts := float_of_int (Instance.n inst) :: !flow_counts;
      let max_makespan = ref 0 in
      List.iter
        (fun (p : Flowsched_online.Policy.t) ->
          let r = Engine.run_instance p inst in
          max_makespan := max !max_makespan r.Engine.makespan;
          let name = p.Flowsched_online.Policy.name in
          Hashtbl.replace per_policy_avg name
            (Engine.average_response r :: Hashtbl.find per_policy_avg name);
          Hashtbl.replace per_policy_max name
            (float_of_int (Engine.max_response r) :: Hashtbl.find per_policy_max name))
        policies;
      if config.with_lp then begin
        (* Horizon must cover the heuristics' schedules for Lemma 3.1 to
           bound them. *)
        let horizon = max (Flowsched_core.Art_lp.default_horizon inst) !max_makespan in
        let bound = Flowsched_core.Art_lp.lower_bound ~horizon inst in
        lp_avgs := bound.Flowsched_core.Art_lp.average :: !lp_avgs;
        let rho = Flowsched_core.Mrt_scheduler.min_fractional_rho inst in
        lp_maxs := float_of_int rho :: !lp_maxs
      end
    end
  done;
  let mean = function [] -> nan | xs -> Stats.mean (Array.of_list xs) in
  {
    config;
    flows_mean = mean !flow_counts;
    avg_response = List.map (fun n -> (n, mean (Hashtbl.find per_policy_avg n))) names;
    max_response = List.map (fun n -> (n, mean (Hashtbl.find per_policy_max n))) names;
    lp_avg_bound = (if config.with_lp then mean !lp_avgs else nan);
    lp_max_bound = (if config.with_lp then mean !lp_maxs else nan);
  }

(* Fan a list of independent cells across a Pool; results come back in
   input order, so output is identical to the sequential path (jobs <= 1
   goes through the pool's inline mode, which shares the retry, timeout,
   backoff, and fault-injection semantics of the forked path). *)
let pool_map ?backend ~jobs ?timeout ?(retries = 1) ?faults ?on_result ~describe ~progress ~f
    items =
  let arr = Array.of_list items in
  let open Flowsched_exec in
  let on_result =
    match on_result with
    | None -> None
    | Some g ->
        (* Only settled successes are worth persisting; a Failed cell
           aborts the run below anyway. *)
        Some (fun job -> function Pool.Done r -> g arr.(job) r | Pool.Failed _ -> ())
  in
  Flowsched_domains.Backend.map ?backend ~jobs:(max 1 jobs) ?timeout ~retries ?faults
    ?on_result
    ~progress:(function
      | Pool.Job_started { job; _ } -> progress (describe arr.(job))
      | Pool.Job_done { job; elapsed; _ } ->
          progress (Printf.sprintf "done %s (%.1fs)" (describe arr.(job)) elapsed)
      | Pool.Job_retried { job; reason; _ } ->
          progress (Printf.sprintf "retrying %s: %s" (describe arr.(job)) reason)
      | Pool.Job_failed { job; reason; _ } ->
          progress (Printf.sprintf "FAILED %s: %s" (describe arr.(job)) reason))
    ~f arr
  |> Array.to_list
  |> List.map (function
       | Pool.Done r -> r
       | Pool.Failed { attempts; reason } ->
           failwith
             (Printf.sprintf "experiment job failed after %d attempts: %s" attempts reason))

let map_cells = pool_map

let describe_cell config =
  Printf.sprintf "cell m=%d rate=%.1f T=%d lp=%b" config.m config.rate config.rounds
    config.with_lp

let run_grid ~policies ?(progress = fun _ -> ()) ?backend ?(jobs = 1) ?timeout ?retries
    ?faults ?on_result configs =
  pool_map ?backend ~jobs ?timeout ?retries ?faults ?on_result ~describe:describe_cell
    ~progress ~f:(run_cell ~policies) configs

(* ------------------------------------------------------------------ *)
(* Sweep cells: one workload instance per cell (no averaging), every    *)
(* policy measured, optional LP bounds, wall-clock recorded — the unit  *)
(* of the machine-readable sweep artifact.                              *)
(* ------------------------------------------------------------------ *)

type sweep_config = {
  workload : string;
  ports : int;
  arrival_rate : float;
  horizon : int;
  max_demand : int;
  sweep_seed : int;
  lp : bool;
}

type sweep_policy_result = { policy : string; art : float; mrt : int }

type sweep_result = {
  sweep : sweep_config;
  flows : int;
  per_policy : sweep_policy_result list;
  lp_avg : float;
  lp_max : float;
  lp_counters : Flowsched_lp.Simplex.counters option;
  lp_error : string option;
  wall_s : float;
}

let sweep_workloads = [ "poisson"; "poisson-demands"; "uniform"; "skewed"; "hotspot" ]

let sweep_instance s =
  match s.workload with
  | "poisson" ->
      Workload.poisson ~m:s.ports ~rate:s.arrival_rate ~rounds:s.horizon ~seed:s.sweep_seed
  | "poisson-demands" ->
      Workload.poisson_with_demands ~m:s.ports ~rate:s.arrival_rate ~rounds:s.horizon
        ~max_demand:s.max_demand ~seed:s.sweep_seed
  | "skewed" ->
      Workload.skewed ~m:s.ports ~rate:s.arrival_rate ~rounds:s.horizon ~seed:s.sweep_seed ()
  | "hotspot" ->
      Workload.hotspot ~m:s.ports ~rate:s.arrival_rate ~rounds:s.horizon ~seed:s.sweep_seed ()
  | "uniform" ->
      (* Same expected volume as the arrival processes: rate * rounds flows. *)
      let n = max 1 (int_of_float (s.arrival_rate *. float_of_int s.horizon)) in
      Workload.uniform_total ~m:s.ports ~n ~max_release:s.horizon ~seed:s.sweep_seed
  | other -> (
      (* Not a built-in: consult the extensible kind registry (the scenario
         zoo registers its generators there at init time). *)
      match Workload.lookup_kind other with
      | Some generate ->
          generate
            {
              Workload.gen_m = s.ports;
              gen_rate = s.arrival_rate;
              gen_rounds = s.horizon;
              gen_max_demand = s.max_demand;
              gen_seed = s.sweep_seed;
            }
      | None ->
          invalid_arg
            (Printf.sprintf "Experiment.sweep_instance: unknown workload %S (expected %s)"
               other
               (String.concat "|" (sweep_workloads @ Workload.registered_kind_names ()))))

let sweep_kind_known kind =
  List.mem kind sweep_workloads || Workload.lookup_kind kind <> None

(* Test seam: when set, the LP section of a sweep cell raises this
   exception instead of solving — the only way to exercise the graceful-
   degradation path deterministically (real Iteration_limit needs a
   pathological instance far too slow for the suite). *)
let lp_failure_for_tests : exn option ref = ref None

let c_lp_errors = Flowsched_obs.Metrics.counter "sweep.lp_errors"

let run_sweep_cell_timed ~policies s =
  let t0 = Unix.gettimeofday () in
  let inst = sweep_instance s in
  let flows = Instance.n inst in
  let max_makespan = ref 0 in
  let per_policy =
    List.map
      (fun (p : Flowsched_online.Policy.t) ->
        let name = p.Flowsched_online.Policy.name in
        if flows = 0 then { policy = name; art = nan; mrt = 0 }
        else begin
          (* Cooperative timeout point for the domains executor: between
             policies is the natural safe boundary inside a cell. *)
          Flowsched_domains.Deadline.check ();
          let r = Engine.run_instance p inst in
          max_makespan := max !max_makespan r.Engine.makespan;
          { policy = name; art = Engine.average_response r; mrt = Engine.max_response r }
        end)
      policies
  in
  let lp_avg, lp_max, lp_counters, lp_error =
    if s.lp && flows > 0 then begin
      (* Counters are global and per-process; each cell brackets its LP
         section with read/diff (NOT reset: a reset would wipe the other
         cells' contribution to the process totals, and with it the
         guarantee that merged --jobs N registry totals equal a --jobs 1
         run).  The per-cell diff rides back through the worker pool with
         the rest of the cell result. *)
      let before = Flowsched_lp.Simplex.read_counters () in
      let diff () =
        Some (Flowsched_lp.Simplex.diff_counters (Flowsched_lp.Simplex.read_counters ()) before)
      in
      (* Graceful degradation: one pathological cell (pivot-budget blowout,
         infeasibility surfacing as Failure) must not abort the whole grid;
         it reports nan bounds plus the error text instead. *)
      try
        (match !lp_failure_for_tests with Some e -> raise e | None -> ());
        let horizon = max (Flowsched_core.Art_lp.default_horizon inst) !max_makespan in
        let bound = Flowsched_core.Art_lp.lower_bound ~horizon inst in
        let rho = Flowsched_core.Mrt_scheduler.min_fractional_rho inst in
        (bound.Flowsched_core.Art_lp.average, float_of_int rho, diff (), None)
      with (Flowsched_lp.Simplex.Iteration_limit _ | Failure _) as e ->
        Flowsched_obs.Metrics.incr c_lp_errors;
        (nan, nan, diff (), Some (Printexc.to_string e))
    end
    else (nan, nan, None, None)
  in
  {
    sweep = s;
    flows;
    per_policy;
    lp_avg;
    lp_max;
    lp_counters;
    lp_error;
    wall_s = Unix.gettimeofday () -. t0;
  }

let describe_sweep s =
  Printf.sprintf "sweep %s m=%d rate=%.1f T=%d seed=%d lp=%b" s.workload s.ports
    s.arrival_rate s.horizon s.sweep_seed s.lp

let run_sweep_cell ~policies s =
  Flowsched_obs.Trace.with_span "sweep.cell"
    ~args:(fun () -> [ ("cell", Json.Str (describe_sweep s)) ])
    (fun () -> run_sweep_cell_timed ~policies s)

let run_sweep ~policies ?(progress = fun _ -> ()) ?backend ?(jobs = 1) ?timeout ?retries
    ?faults ?on_result cells =
  pool_map ?backend ~jobs ?timeout ?retries ?faults ?on_result ~describe:describe_sweep
    ~progress ~f:(run_sweep_cell ~policies) cells

let fig6_grid ?(m = 6) ?(tries = 3) ?(seed = 1) ?(lp_rounds_limit = 12) ~congestion ~rounds () =
  List.concat_map
    (fun c ->
      List.map
        (fun t ->
          {
            m;
            rate = c *. float_of_int m;
            rounds = t;
            tries;
            seed = seed + int_of_float (c *. 1_000_000.) + (17 * t);
            with_lp = t <= lp_rounds_limit;
          })
        rounds)
    congestion
