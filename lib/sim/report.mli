(** Rendering experiment results as the paper's figures (text form). *)

val fig6_table : Experiment.cell_result list -> string
(** One row per cell: average response time per heuristic, the LP (1)–(4)
    lower bound, and each heuristic's ratio to the LP — the content of the
    paper's Figure 6 panels. *)

val fig7_table : Experiment.cell_result list -> string
(** Same layout for maximum response time against the binary-search LP
    bound — Figure 7. *)

val csv : objective:[ `Avg | `Max ] -> Experiment.cell_result list -> string
(** Machine-readable dump: [m,rate,rounds,tries,flows,policy,value,lp]. *)

val figures_json : ?jobs:int -> Experiment.cell_result list -> Flowsched_util.Json.t
(** The Figure 6/7 grid as a JSON artifact (schema ["flowsched-figures/1"]):
    cell parameters, per-policy mean ART/MRT, and LP bounds (skipped bounds
    serialize as [null]).  [jobs] records the pool width used to produce
    the results. *)

val lp_counters_json : Flowsched_lp.Simplex.counters -> Flowsched_util.Json.t
(** Simplex perf-counter snapshot as a JSON object (shared by the sweep
    artifact and the LP micro-bench artifact). *)

val sweep_cell_json : Experiment.sweep_result -> Flowsched_util.Json.t
(** One sweep cell as a JSON object (the per-cell payload of
    {!sweep_json}); also the unit stored per line in a
    {!Checkpoint} file. *)

val cell_json : Experiment.cell_result -> Flowsched_util.Json.t
(** One Figure 6/7 grid cell as a JSON object, config included. *)

val strip_sweep_timing : Experiment.sweep_result -> Experiment.sweep_result
(** The deterministic projection of a sweep result: per-cell wall-clock
    and the LP phase-time counters zeroed, everything else untouched.  Two
    independent computations of the same cell must serialize identically
    after this — the merge pipeline's duplicate audit and the chaos tests
    both rely on it. *)

val sweep_result_of_json :
  sweep:Experiment.sweep_config ->
  Flowsched_util.Json.t ->
  (Experiment.sweep_result, string) result
(** Decode a {!sweep_cell_json} object back into a result, taking the
    config from [sweep] (the identifying fields in the JSON are checked
    against it).  Exact inverse of the encoder: re-encoding the decoded
    value reproduces the original bytes — skipped bounds round-trip
    through [null] as nan — which is what lets a resumed sweep emit an
    artifact byte-identical to an uninterrupted run. *)

val cell_result_of_json :
  config:Experiment.cell_config ->
  Flowsched_util.Json.t ->
  (Experiment.cell_result, string) result
(** Decode a {!cell_json} object; same contract as
    {!sweep_result_of_json}. *)

val sweep_json :
  ?jobs:int -> ?metrics:Flowsched_util.Json.t -> Experiment.sweep_result list ->
  Flowsched_util.Json.t
(** A sweep run as a JSON artifact (schema ["flowsched-sweep/1"]): one
    object per cell with workload parameters, flow count, per-policy
    ART/MRT, LP bounds, and per-cell wall-clock seconds.  [metrics]
    (typically {!Flowsched_obs.Metrics.to_json} of the merged post-run
    registry) is appended as a top-level ["metrics"] block when given; it
    is opt-in because its timing gauges would break the byte-identical
    artifact guarantee across [--jobs]. *)
