open Flowsched_switch
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_rounds = Metrics.counter "engine.rounds"
let c_idle_rounds = Metrics.counter "engine.idle_rounds"
let c_flows = Metrics.counter "engine.flows_arrived"
let h_queue_len = Metrics.histogram "engine.queue_len"

type result = {
  flows : Flow.t array;
  schedule : Schedule.t;
  responses : int array;
  makespan : int;
  rounds_idle : int;
}

exception Policy_violation of string
exception Horizon_exceeded of { round : int; pending : int }

(* The core loop shared by both drivers.  [arrive round pending] returns the
   flows released this round (with globally consistent ids); [more round]
   says whether new arrivals may still appear. *)
let drive ?(validate = true) ?endpoint ?(max_rounds = 100_000) ~m ~m' ~cap_in ~cap_out
    ~arrive ~more (policy : Flowsched_online.Policy.t) =
  Trace.with_span "engine.drive" (fun () ->
  let all_flows = ref [] in
  let assignment = ref [] in
  (* queue as a list of flows, oldest first *)
  let pending = ref [] in
  let round = ref 0 in
  let rounds_idle = ref 0 in
  let makespan = ref 0 in
  (* The queue array is a function of [pending]; on zero-churn rounds (no
     arrivals, nothing scheduled last round) it is unchanged, so reuse it
     instead of rebuilding — at deep backlog the rebuild dominated rounds
     where the policy was starved anyway. *)
  let queue_cache = ref [||] in
  let queue_stale = ref true in
  while (more !round && !round < max_rounds) || !pending <> [] do
    if !round >= max_rounds then
      raise (Horizon_exceeded { round = !round; pending = List.length !pending });
    let arrivals = if more !round then arrive !round !pending else [] in
    List.iter (fun (f : Flow.t) -> all_flows := f :: !all_flows) arrivals;
    Metrics.incr ~by:(List.length arrivals) c_flows;
    if arrivals <> [] then begin
      pending := !pending @ arrivals;
      queue_stale := true
    end;
    if !queue_stale then begin
      queue_cache := Array.of_list !pending;
      queue_stale := false
    end;
    let queue = !queue_cache in
    Metrics.incr c_rounds;
    Metrics.observe h_queue_len (float_of_int (Array.length queue));
    let ctx =
      {
        Flowsched_online.Policy.m;
        m';
        cap_in;
        cap_out;
        round = !round;
        queue;
      }
    in
    let selected = policy.Flowsched_online.Policy.select ctx in
    if validate then begin
      let seen = Hashtbl.create 8 in
      List.iter
        (fun i ->
          if i < 0 || i >= Array.length queue then
            raise (Policy_violation (Printf.sprintf "index %d out of queue range" i));
          if Hashtbl.mem seen i then
            raise (Policy_violation (Printf.sprintf "index %d selected twice" i));
          Hashtbl.add seen i ())
        selected;
      if not (Flowsched_online.Policy.feasible_selection ctx selected) then
        raise
          (Policy_violation
             (Printf.sprintf "capacity-infeasible selection at round %d" !round));
      (match endpoint with
      | Some ep ->
          if not (Endpoint.feasible ep (List.map (fun i -> queue.(i)) selected)) then
            raise
              (Policy_violation
                 (Printf.sprintf "node-capacity-infeasible selection at round %d" !round))
      | None -> ())
    end;
    if selected = [] && queue <> [||] then begin
      incr rounds_idle;
      Metrics.incr c_idle_rounds
    end;
    let chosen = Hashtbl.create 8 in
    List.iter (fun i -> Hashtbl.replace chosen queue.(i).Flow.id ()) selected;
    if selected <> [] then makespan := !round + 1;
    List.iter
      (fun i -> assignment := (queue.(i).Flow.id, !round) :: !assignment)
      selected;
    if selected <> [] then begin
      pending :=
        List.filter (fun (f : Flow.t) -> not (Hashtbl.mem chosen f.Flow.id)) !pending;
      queue_stale := true
    end;
    incr round
  done;
  (* Index flows by id so slots.(id) and flows.(id) line up regardless of
     arrival order. *)
  let arrived = List.rev !all_flows in
  let n = List.length arrived in
  let flows =
    match arrived with
    | [] -> [||]
    | first :: _ ->
        let arr = Array.make n first in
        List.iter
          (fun (f : Flow.t) ->
            if f.Flow.id < 0 || f.Flow.id >= n then
              invalid_arg "Engine: flow ids must be 0..n-1";
            arr.(f.Flow.id) <- f)
          arrived;
        arr
  in
  let slots = Array.make n (-1) in
  List.iter (fun (id, r) -> slots.(id) <- r) !assignment;
  let schedule = Schedule.make slots in
  let responses = Array.mapi (fun i r -> r + 1 - flows.(i).Flow.release) slots in
  { flows; schedule; responses; makespan = !makespan; rounds_idle = !rounds_idle })

let run_instance ?validate ?endpoint ?max_rounds (policy : Flowsched_online.Policy.t) inst =
  let by_release = Hashtbl.create 16 in
  Array.iter
    (fun (f : Flow.t) ->
      let cur = try Hashtbl.find by_release f.Flow.release with Not_found -> [] in
      Hashtbl.replace by_release f.Flow.release (f :: cur))
    inst.Instance.flows;
  let last = Instance.last_release inst in
  let arrive round _pending =
    match Hashtbl.find_opt by_release round with
    | Some flows -> List.rev flows
    | None -> []
  in
  let more round = round <= last in
  drive ?validate ?endpoint ?max_rounds ~m:inst.Instance.m ~m':inst.Instance.m'
    ~cap_in:inst.Instance.cap_in ~cap_out:inst.Instance.cap_out ~arrive ~more policy

let average_response r =
  if Array.length r.responses = 0 then nan
  else
    float_of_int (Array.fold_left ( + ) 0 r.responses)
    /. float_of_int (Array.length r.responses)

let max_response r = Array.fold_left max 0 r.responses

let run_adaptive ?validate ?max_rounds ~m ~m' ?cap_in ?cap_out ~arrivals ~stop_arrivals_after
    policy =
  let cap_in = match cap_in with Some c -> c | None -> Array.make m 1 in
  let cap_out = match cap_out with Some c -> c | None -> Array.make m' 1 in
  let next_id = ref 0 in
  let arrive round pending =
    let specs = arrivals ~round ~pending in
    List.map
      (fun (src, dst, demand) ->
        let id = !next_id in
        incr next_id;
        Flow.make ~id ~src ~dst ~demand ~release:round ())
      specs
  in
  let more round = round < stop_arrivals_after in
  drive ?validate ?max_rounds ~m ~m' ~cap_in ~cap_out ~arrive ~more policy
