(** Round-based flow-level simulator.

    The paper's "in-house simulator for online flow scheduling over a
    non-blocking switch" (§5.2.1): the engine maintains the queue of
    released-but-unscheduled flows, asks the policy for a feasible set each
    round, and records response times.  Flows run whole-in-one-round, which
    matches both the offline model and the paper's unit-size experiments.

    Two drivers are provided: {!run_instance} replays a fixed instance and
    {!run_adaptive} lets an arrival callback observe the live queue — the
    adaptive adversaries of Figure 4 need exactly that power. *)

type result = {
  flows : Flowsched_switch.Flow.t array;  (** Everything that arrived. *)
  schedule : Flowsched_switch.Schedule.t;  (** Round each flow ran in. *)
  responses : int array;  (** Per-flow response times. *)
  makespan : int;
  rounds_idle : int;  (** Rounds where the policy scheduled nothing while flows were pending. *)
}

exception Policy_violation of string
(** Raised (under [~validate:true], the default) when a policy returns an
    out-of-range index, a flow not in the queue, or a capacity-infeasible
    selection. *)

exception Horizon_exceeded of { round : int; pending : int }
(** Raised when the queue has not drained by [max_rounds]: the policy is
    starving flows or arrivals outpace capacity.  Carries the round reached
    and the queue depth at that point so drivers can report how far the run
    got instead of a bare failure. *)

val run_instance :
  ?validate:bool -> ?endpoint:Flowsched_switch.Endpoint.t -> ?max_rounds:int ->
  Flowsched_online.Policy.t -> Flowsched_switch.Instance.t -> result
(** Replays the instance's flows at their release times and runs until the
    queue drains.  The result's flow array is the instance's.  Raises
    {!Horizon_exceeded} if the queue outlives [max_rounds] (default
    100000).  With [endpoint] (and [validate], the default), every
    selection is additionally checked against the node capacities and a
    violation raises {!Policy_violation} — the scenario matrix uses this to
    certify its capacity-aware policy wrappers. *)

val average_response : result -> float
val max_response : result -> int

val run_adaptive :
  ?validate:bool ->
  ?max_rounds:int ->
  m:int -> m':int ->
  ?cap_in:int array -> ?cap_out:int array ->
  arrivals:(round:int -> pending:Flowsched_switch.Flow.t list -> (int * int * int) list) ->
  stop_arrivals_after:int ->
  Flowsched_online.Policy.t -> result
(** [arrivals ~round ~pending] returns [(src, dst, demand)] specs released
    this round; it sees the current queue, so it can be adversarial.  After
    [stop_arrivals_after] rounds the callback is no longer consulted and the
    engine runs until the queue drains (or [max_rounds], default 100000,
    then it raises {!Horizon_exceeded}). *)
