(** Experiment grid driver for the Figure 6 / Figure 7 reproduction.

    A cell fixes the switch size [m], arrival rate (the paper's M), and
    generation length T; [tries] instances are generated with derived seeds
    and each policy plus the LP lower bounds are averaged over them — the
    paper's "each result is the average of 10 tries".

    LP bounds: average response uses LP (1)–(4) (its optimum divided by n
    lower bounds the achievable average response, Lemma 3.1 — the horizon is
    extended to cover every heuristic's makespan so the bound applies to
    them); maximum response uses binary search over the feasibility of LP
    (19)–(21), "the binary-search scheme [...] for finding the minimum
    feasible response time". *)

type cell_config = {
  m : int;
  rate : float;
  rounds : int;
  tries : int;
  seed : int;
  with_lp : bool;  (** Compute LP lower bounds (the expensive part). *)
}

type cell_result = {
  config : cell_config;
  flows_mean : float;  (** Mean number of generated flows. *)
  avg_response : (string * float) list;  (** Policy name -> mean avg response. *)
  max_response : (string * float) list;  (** Policy name -> mean max response. *)
  lp_avg_bound : float;  (** Mean LP lower bound on avg response; nan if skipped. *)
  lp_max_bound : float;  (** Mean min fractional rho; nan if skipped. *)
}

val run_cell : policies:Flowsched_online.Policy.t list -> cell_config -> cell_result

val run_grid :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_result:(cell_config -> cell_result -> unit) ->
  cell_config list -> cell_result list
(** Runs every cell and returns results in input order.  With [jobs > 1]
    the mutually independent cells are fanned out across the selected
    [backend] (default [Fork]: a {!Flowsched_exec.Pool} of forked workers;
    [Domains] runs them on the shared-memory
    {!Flowsched_domains.Executor}; [Inline] forces the sequential path);
    because results are merged in job order and each cell derives all
    randomness from its own seed, the output is byte-identical to the
    sequential [jobs = 1] run on every backend.  A cell that
    keeps failing after the pool's retry budget ([retries], default 1)
    raises [Failure]; [timeout] bounds each attempt's wall clock and
    [faults] injects a deterministic chaos plan (see
    {!Flowsched_exec.Faults}).  [on_result] fires in the parent once per
    {e completed} cell, in completion order, as soon as its result is
    merged — the hook {!Checkpoint} uses to persist progress; a SIGINT or
    SIGTERM mid-run raises {!Flowsched_exec.Pool.Interrupted} after
    draining the pool, so everything already passed to [on_result] is
    durable. *)

(** {2 Sweep cells}

    The unit of the machine-readable sweep artifact (see
    {!Report.sweep_json}): a single workload instance per cell — no
    averaging across tries — with every policy's average (ART) and maximum
    (MRT) response, optional LP lower bounds, and the cell's wall-clock. *)

type sweep_config = {
  workload : string;  (** One of {!sweep_workloads}. *)
  ports : int;
  arrival_rate : float;  (** The paper's M (flows per round). *)
  horizon : int;  (** Generation rounds T. *)
  max_demand : int;  (** Only used by ["poisson-demands"]. *)
  sweep_seed : int;
  lp : bool;  (** Compute LP lower bounds (the expensive part). *)
}

type sweep_policy_result = { policy : string; art : float; mrt : int }

type sweep_result = {
  sweep : sweep_config;
  flows : int;
  per_policy : sweep_policy_result list;
  lp_avg : float;  (** nan when [lp = false], the cell is empty, or the LP errored. *)
  lp_max : float;
  lp_counters : Flowsched_lp.Simplex.counters option;
      (** Simplex perf counters for this cell's LP section (both bounds);
          [None] when no LP ran. *)
  lp_error : string option;
      (** Graceful LP degradation: when the cell's LP section blows its
          pivot budget ([Simplex.Iteration_limit]) or fails ([Failure]),
          the bounds are nan and this carries the error text — the grid
          keeps going.  Counted under ["sweep.lp_errors"]. *)
  wall_s : float;  (** Wall-clock seconds spent on this cell. *)
}

val sweep_workloads : string list
(** Built-in workload kinds accepted by {!sweep_instance}:
    poisson | poisson-demands | uniform | skewed | hotspot.  Kinds
    registered through {!Workload.register_kinds} (the scenario zoo) are
    accepted as well. *)

val sweep_instance : sweep_config -> Flowsched_switch.Instance.t
(** The (deterministic) instance a sweep cell runs on.  Raises
    [Invalid_argument] on an unknown [workload].  ["uniform"] maps the rate
    to a fixed flow count [rate * horizon] with releases in [0, horizon];
    non-built-in kinds resolve through the {!Workload} registry. *)

val sweep_kind_known : string -> bool
(** Whether the kind string is a built-in or resolves through the
    registry — the CLI's validation hook. *)

val map_cells :
  ?backend:Flowsched_domains.Backend.t ->
  jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_result:('a -> 'b -> unit) ->
  describe:('a -> string) ->
  progress:(string -> unit) ->
  f:('a -> 'b) ->
  'a list -> 'b list
(** The generic cell fan-out underlying {!run_grid} and {!run_sweep},
    exposed for other grid drivers (the scenario matrix): runs [f] over the
    items on the selected backend and returns results in input order, with
    the same retry/timeout/fault/interrupt contract as {!run_grid}.  A job
    that keeps failing raises [Failure]. *)

val run_sweep_cell :
  policies:Flowsched_online.Policy.t list -> sweep_config -> sweep_result

val run_sweep :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_result:(sweep_config -> sweep_result -> unit) ->
  sweep_config list -> sweep_result list
(** Same parallel/resilience contract as {!run_grid}. *)

val lp_failure_for_tests : exn option ref
(** Test seam (default [None]): when set, {!run_sweep_cell}'s LP section
    raises this exception instead of solving, exercising the [lp_error]
    degradation path.  Never set outside the test suite. *)

val fig6_grid :
  ?m:int -> ?tries:int -> ?seed:int -> ?lp_rounds_limit:int ->
  congestion:float list -> rounds:int list -> unit -> cell_config list
(** The Figure 6/7 grid: one cell per (congestion, T) with
    [rate = congestion * m].  Congestion is the paper's M/150; its values
    {1/3, 2/3, 1, 2, 4} are reproduced at a scaled-down [m] (default 6).
    LP bounds are enabled only for cells with [rounds <= lp_rounds_limit]
    (default 12), mirroring the paper's "LPs are solved only for
    T in {10..20} to avoid prohibitively long execution times". *)
