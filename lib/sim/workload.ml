open Flowsched_switch
open Flowsched_util

(* Per-flow endpoint/demand draws, shared between the batch generators below
   and the incremental {!stream} used by the serve loop.  The call order on
   the PRNG is load-bearing: the original batch generators built the spec
   tuple [(src, dst, demand, t)] directly, and OCaml evaluates tuple
   components right to left, so the effective draw order was demand, then
   dst, then src.  Keeping that order here (as explicit sequenced lets)
   means a stream's slot-by-slot prefix is byte-identical to the batch
   instance for the same seed. *)
let draw_uniform ~m ~demand_of g =
  let demand = demand_of g in
  let dst = Prng.int g m in
  let src = Prng.int g m in
  (src, dst, demand)

let poisson_specs g ~m ~rate ~rounds ~demand_of =
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_uniform ~m ~demand_of g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  List.rev !specs

let unit_demand _g = 1

(* Parameter validation at the generator boundary (shared with the scenario
   zoo): a nonpositive rate, a nonpositive Zipf alpha, a fraction outside
   [0,1], or a max_demand < 1 would silently produce degenerate (empty or
   NaN-weighted) workloads — reject them loudly instead. *)
let check_rate ~who rate =
  if rate <= 0. || Float.is_nan rate then
    invalid_arg (who ^ ": rate must be positive")

let check_alpha ~who alpha =
  if alpha <= 0. || Float.is_nan alpha then
    invalid_arg (who ^ ": alpha must be positive")

let check_fraction ~who fraction =
  if not (fraction >= 0. && fraction <= 1.) then
    invalid_arg (who ^ ": fraction must be within [0, 1]")

let check_max_demand ~who max_demand =
  if max_demand < 1 then invalid_arg (who ^ ": max_demand must be >= 1")

let poisson ~m ~rate ~rounds ~seed =
  if m < 1 || rounds < 1 then invalid_arg "Workload.poisson";
  check_rate ~who:"Workload.poisson" rate;
  let g = Prng.create seed in
  Instance.of_flows ~m ~m':m (poisson_specs g ~m ~rate ~rounds ~demand_of:unit_demand)

let bounded_demand max_demand g = 1 + Prng.int g max_demand

let poisson_with_demands ~m ~rate ~rounds ~max_demand ~seed =
  if m < 1 || rounds < 1 then invalid_arg "Workload.poisson_with_demands";
  check_rate ~who:"Workload.poisson_with_demands" rate;
  check_max_demand ~who:"Workload.poisson_with_demands" max_demand;
  let g = Prng.create seed in
  let specs = poisson_specs g ~m ~rate ~rounds ~demand_of:(bounded_demand max_demand) in
  Instance.of_flows
    ~cap_in:(Array.make m max_demand)
    ~cap_out:(Array.make m max_demand)
    ~m ~m':m specs

(* Sample from a Zipf(alpha) distribution over [0, m) via the inverse CDF
   of precomputed normalized weights. *)
let zipf_sampler g m alpha =
  let weights = Array.init m (fun i -> 1. /. ((float_of_int (i + 1)) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make m 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun () ->
    let u = Prng.float g in
    let rec find i = if i >= m - 1 || u <= cdf.(i) then i else find (i + 1) in
    find 0

(* Zipf endpoints: the original built [(sample (), sample (), 1, t)], so the
   dst draw preceded the src draw. *)
let draw_skewed sample _g =
  let dst = sample () in
  let src = sample () in
  (src, dst, 1)

let skewed ~m ~rate ~rounds ?(alpha = 1.0) ~seed () =
  if m < 1 || rounds < 1 then invalid_arg "Workload.skewed";
  check_rate ~who:"Workload.skewed" rate;
  check_alpha ~who:"Workload.skewed" alpha;
  let g = Prng.create seed in
  let sample = zipf_sampler g m alpha in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_skewed sample g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

(* Incast endpoints: dst decision (one float, plus one int draw on the cold
   path) before the src draw, as in the original tuple build. *)
let draw_hotspot ~m ~fraction g =
  let dst = if Prng.float g < fraction then 0 else Prng.int g m in
  let src = Prng.int g m in
  (src, dst, 1)

let hotspot ~m ~rate ~rounds ?(fraction = 0.5) ~seed () =
  if m < 1 || rounds < 1 then invalid_arg "Workload.hotspot";
  check_rate ~who:"Workload.hotspot" rate;
  check_fraction ~who:"Workload.hotspot" fraction;
  let g = Prng.create seed in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_hotspot ~m ~fraction g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

let uniform_total ~m ~n ~max_release ~seed =
  if m < 1 || n < 0 || max_release < 0 then invalid_arg "Workload.uniform_total";
  let g = Prng.create seed in
  let specs =
    List.init n (fun _ -> (Prng.int g m, Prng.int g m, 1, Prng.int g (max_release + 1)))
  in
  Instance.of_flows ~m ~m':m specs

(* Unbounded slot-clocked arrival streams for the serve loop. *)

type kind =
  | Uniform
  | Uniform_demands of int
  | Skewed of float
  | Hotspot of float

type stream = {
  g : Prng.t;
  draw : Prng.t -> int * int * int;
  rate : float;
  mutable slot : int;
}

let stream kind ~m ~rate ~seed =
  if m < 1 then invalid_arg "Workload.stream";
  check_rate ~who:"Workload.stream" rate;
  let g = Prng.create seed in
  let draw =
    match kind with
    | Uniform -> draw_uniform ~m ~demand_of:unit_demand
    | Uniform_demands max_demand ->
        check_max_demand ~who:"Workload.stream" max_demand;
        draw_uniform ~m ~demand_of:(bounded_demand max_demand)
    | Skewed alpha ->
        check_alpha ~who:"Workload.stream" alpha;
        let sample = zipf_sampler g m alpha in
        draw_skewed sample
    | Hotspot fraction ->
        check_fraction ~who:"Workload.stream" fraction;
        draw_hotspot ~m ~fraction
  in
  { g; draw; rate; slot = 0 }

let stream_slot s = s.slot

let stream_next s =
  let k = Sampling.poisson s.g s.rate in
  let arrivals = ref [] in
  for _ = 1 to k do
    arrivals := s.draw s.g :: !arrivals
  done;
  s.slot <- s.slot + 1;
  List.rev !arrivals

(* Extensible workload-kind registry.  Higher layers (the scenario zoo)
   register resolvers at module-initialization time, before any worker
   process forks or domain spawns, so the registry is effectively immutable
   while experiments run and identical in every worker — which is what keeps
   sweep artifacts byte-identical across backends. *)

type gen_params = {
  gen_m : int;
  gen_rate : float;
  gen_rounds : int;
  gen_max_demand : int;
  gen_seed : int;
}

let registry :
    (string list * (string -> (gen_params -> Instance.t) option)) list ref =
  ref []

let register_kinds ~names resolve = registry := !registry @ [ (names, resolve) ]

let lookup_kind name = List.find_map (fun (_, resolve) -> resolve name) !registry

let registered_kind_names () = List.concat_map fst !registry
