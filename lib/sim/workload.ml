open Flowsched_switch
open Flowsched_util

(* Per-flow endpoint/demand draws, shared between the batch generators below
   and the incremental {!stream} used by the serve loop.  The call order on
   the PRNG is load-bearing: the original batch generators built the spec
   tuple [(src, dst, demand, t)] directly, and OCaml evaluates tuple
   components right to left, so the effective draw order was demand, then
   dst, then src.  Keeping that order here (as explicit sequenced lets)
   means a stream's slot-by-slot prefix is byte-identical to the batch
   instance for the same seed. *)
let draw_uniform ~m ~demand_of g =
  let demand = demand_of g in
  let dst = Prng.int g m in
  let src = Prng.int g m in
  (src, dst, demand)

let poisson_specs g ~m ~rate ~rounds ~demand_of =
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_uniform ~m ~demand_of g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  List.rev !specs

let unit_demand _g = 1

let poisson ~m ~rate ~rounds ~seed =
  if m < 1 || rounds < 1 || rate < 0. then invalid_arg "Workload.poisson";
  let g = Prng.create seed in
  Instance.of_flows ~m ~m':m (poisson_specs g ~m ~rate ~rounds ~demand_of:unit_demand)

let bounded_demand max_demand g = 1 + Prng.int g max_demand

let poisson_with_demands ~m ~rate ~rounds ~max_demand ~seed =
  if max_demand < 1 then invalid_arg "Workload.poisson_with_demands";
  let g = Prng.create seed in
  let specs = poisson_specs g ~m ~rate ~rounds ~demand_of:(bounded_demand max_demand) in
  Instance.of_flows
    ~cap_in:(Array.make m max_demand)
    ~cap_out:(Array.make m max_demand)
    ~m ~m':m specs

(* Sample from a Zipf(alpha) distribution over [0, m) via the inverse CDF
   of precomputed normalized weights. *)
let zipf_sampler g m alpha =
  let weights = Array.init m (fun i -> 1. /. ((float_of_int (i + 1)) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make m 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun () ->
    let u = Prng.float g in
    let rec find i = if i >= m - 1 || u <= cdf.(i) then i else find (i + 1) in
    find 0

(* Zipf endpoints: the original built [(sample (), sample (), 1, t)], so the
   dst draw preceded the src draw. *)
let draw_skewed sample _g =
  let dst = sample () in
  let src = sample () in
  (src, dst, 1)

let skewed ~m ~rate ~rounds ?(alpha = 1.0) ~seed () =
  if m < 1 || rounds < 1 || rate < 0. then invalid_arg "Workload.skewed";
  let g = Prng.create seed in
  let sample = zipf_sampler g m alpha in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_skewed sample g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

(* Incast endpoints: dst decision (one float, plus one int draw on the cold
   path) before the src draw, as in the original tuple build. *)
let draw_hotspot ~m ~fraction g =
  let dst = if Prng.float g < fraction then 0 else Prng.int g m in
  let src = Prng.int g m in
  (src, dst, 1)

let hotspot ~m ~rate ~rounds ?(fraction = 0.5) ~seed () =
  if m < 1 || rounds < 1 || rate < 0. || fraction < 0. || fraction > 1. then
    invalid_arg "Workload.hotspot";
  let g = Prng.create seed in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let src, dst, demand = draw_hotspot ~m ~fraction g in
      specs := (src, dst, demand, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

let uniform_total ~m ~n ~max_release ~seed =
  if m < 1 || n < 0 || max_release < 0 then invalid_arg "Workload.uniform_total";
  let g = Prng.create seed in
  let specs =
    List.init n (fun _ -> (Prng.int g m, Prng.int g m, 1, Prng.int g (max_release + 1)))
  in
  Instance.of_flows ~m ~m':m specs

(* Unbounded slot-clocked arrival streams for the serve loop. *)

type kind =
  | Uniform
  | Uniform_demands of int
  | Skewed of float
  | Hotspot of float

type stream = {
  g : Prng.t;
  draw : Prng.t -> int * int * int;
  rate : float;
  mutable slot : int;
}

let stream kind ~m ~rate ~seed =
  if m < 1 || rate < 0. then invalid_arg "Workload.stream";
  let g = Prng.create seed in
  let draw =
    match kind with
    | Uniform -> draw_uniform ~m ~demand_of:unit_demand
    | Uniform_demands max_demand ->
        if max_demand < 1 then invalid_arg "Workload.stream: max_demand";
        draw_uniform ~m ~demand_of:(bounded_demand max_demand)
    | Skewed alpha ->
        let sample = zipf_sampler g m alpha in
        draw_skewed sample
    | Hotspot fraction ->
        if fraction < 0. || fraction > 1. then invalid_arg "Workload.stream: fraction";
        draw_hotspot ~m ~fraction
  in
  { g; draw; rate; slot = 0 }

let stream_slot s = s.slot

let stream_next s =
  let k = Sampling.poisson s.g s.rate in
  let arrivals = ref [] in
  for _ = 1 to k do
    arrivals := s.draw s.g :: !arrivals
  done;
  s.slot <- s.slot + 1;
  List.rev !arrivals
