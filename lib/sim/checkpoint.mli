(** Checkpoint/resume for experiment grids.

    A checkpoint is an append-only JSONL file: one compact JSON object per
    completed cell, written (and flushed) from the pool parent's
    [on_result] hook the moment the cell settles — so a run killed at cell
    190/200 keeps its 189 finished cells.  Lines are
    [{"crc": <hex CRC-32 of the rest>, "kind": "sweep"|"grid"|..., "key":
    <canonical config key>, "result": <cell object>}] with the result
    encoded by {!Report.sweep_cell_json}/{!Report.cell_json} and the
    checksum computed by {!seal}.

    Resuming re-runs the same grid with [resume:true]: cells whose key is
    already present are decoded ({!Report.sweep_result_of_json}) instead of
    recomputed, everything else runs normally, and results are merged back
    in grid order.  Because the decoders are exact inverses of the
    encoders, the final artifact is byte-identical to an uninterrupted run
    (checkpointed cells keep their original wall-clock readings; only
    freshly computed cells carry new ones).

    Crash safety and corruption: a process killed mid-append leaves at most
    one partial final line.  Loading tolerates exactly that — a trailing
    line that fails to parse {e or} fails its CRC is discarded (and
    truncated away before appending resumes).  Anywhere else, a parse
    failure or a CRC mismatch is corruption, not a crash artifact, and
    raises [Failure] naming the offending line.  The per-line CRC is what
    separates the two cases for damage JSON parsing alone cannot see (a
    flipped digit inside a number still parses). *)

type t

type entry = { kind : string; key : string; result : Flowsched_util.Json.t }

val open_ : path:string -> resume:bool -> t
(** Open (creating if needed) the checkpoint at [path].  [resume:false]
    truncates any previous content — a fresh run; [resume:true] loads the
    valid prefix of existing lines and appends after it. *)

val loaded : t -> int
(** Number of completed-cell entries loaded at {!open_} (0 unless
    [resume:true]). *)

val close : t -> unit

val seal : kind:string -> key:string -> Flowsched_util.Json.t -> string
(** The exact line (without the trailing newline) {!append} writes for an
    entry: the compact entry object prefixed with its own CRC-32.
    Deterministic, so rewriting a loaded entry reproduces its bytes.
    Exposed for the merge pipeline and for tests that forge lines. *)

val read_entries : path:string -> entry list
(** Read-only load of a checkpoint file: the valid entries in file order
    (duplicate keys are preserved).  A missing file is empty.  Tolerates a
    torn final line; raises [Failure] on corruption anywhere else, with the
    offending line number. *)

val append : t -> kind:string -> key:string -> Flowsched_util.Json.t -> unit
(** Append one sealed entry and flush. *)

val resume_run :
  kind:string ->
  key:('cell -> string) ->
  ?on_append:(string -> unit) ->
  decode:('cell -> Flowsched_util.Json.t -> ('result, string) result) ->
  encode:('result -> Flowsched_util.Json.t) ->
  run_cells:((('cell -> 'result -> unit) -> 'cell list -> 'result list)) ->
  t ->
  'cell list ->
  'result list
(** The generic checkpointed-run skeleton behind {!run_sweep} and
    {!run_grid}, exposed so other grids (the scenario matrix, shard
    workers) can reuse it: cells whose [key] is already stored are
    [decode]d in place, the remainder goes through [run_cells] with a
    persist-on-settle callback, and results merge back in input order.
    [on_append] fires (with the cell key) after each fresh cell is durably
    appended — the shard workers' lease-heartbeat hook.  A stored entry
    that no longer decodes raises [Failure] — silently recomputing would
    mask corruption. *)

val run_sweep :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_append:(string -> unit) ->
  t ->
  Experiment.sweep_config list ->
  Experiment.sweep_result list
(** {!Experiment.run_sweep} with persistence: cells already present in the
    checkpoint are skipped (their recorded result is returned in place),
    each newly completed cell is appended and flushed as it settles, and
    the merged list comes back in grid order.  A checkpoint entry that no
    longer decodes, or that disagrees with its cell's config, raises
    [Failure] — silently recomputing would mask corruption. *)

val run_grid :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  ?on_append:(string -> unit) ->
  t ->
  Experiment.cell_config list ->
  Experiment.cell_result list
(** Same contract for the Figure 6/7 grid. *)

val sweep_key : Experiment.sweep_config -> string
(** Canonical identity of a sweep cell (every config field, including the
    [lp] flag). *)

val grid_key : Experiment.cell_config -> string
