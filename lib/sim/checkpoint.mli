(** Checkpoint/resume for experiment grids.

    A checkpoint is an append-only JSONL file: one compact JSON object per
    completed cell, written (and flushed) from the pool parent's
    [on_result] hook the moment the cell settles — so a run killed at cell
    190/200 keeps its 189 finished cells.  Lines are
    [{"kind": "sweep"|"grid", "key": <canonical config key>, "result":
    <cell object>}] with the result encoded by
    {!Report.sweep_cell_json}/{!Report.cell_json}.

    Resuming re-runs the same grid with [resume:true]: cells whose key is
    already present are decoded ({!Report.sweep_result_of_json}) instead of
    recomputed, everything else runs normally, and results are merged back
    in grid order.  Because the decoders are exact inverses of the
    encoders, the final artifact is byte-identical to an uninterrupted run
    (checkpointed cells keep their original wall-clock readings; only
    freshly computed cells carry new ones).

    Crash safety: a process killed mid-append leaves at most one partial
    final line.  Loading tolerates exactly that — a trailing line that
    fails to parse is discarded (and truncated away before appending
    resumes); a malformed line {e followed by valid ones} is corruption,
    not a crash artifact, and raises [Failure]. *)

type t

val open_ : path:string -> resume:bool -> t
(** Open (creating if needed) the checkpoint at [path].  [resume:false]
    truncates any previous content — a fresh run; [resume:true] loads the
    valid prefix of existing lines and appends after it. *)

val loaded : t -> int
(** Number of completed-cell entries loaded at {!open_} (0 unless
    [resume:true]). *)

val close : t -> unit

val run_sweep :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  t ->
  Experiment.sweep_config list ->
  Experiment.sweep_result list
(** {!Experiment.run_sweep} with persistence: cells already present in the
    checkpoint are skipped (their recorded result is returned in place),
    each newly completed cell is appended and flushed as it settles, and
    the merged list comes back in grid order.  A checkpoint entry that no
    longer decodes, or that disagrees with its cell's config, raises
    [Failure] — silently recomputing would mask corruption. *)

val run_grid :
  policies:Flowsched_online.Policy.t list ->
  ?progress:(string -> unit) ->
  ?backend:Flowsched_domains.Backend.t ->
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?faults:Flowsched_exec.Faults.plan ->
  t ->
  Experiment.cell_config list ->
  Experiment.cell_result list
(** Same contract for the Figure 6/7 grid. *)

val sweep_key : Experiment.sweep_config -> string
(** Canonical identity of a sweep cell (every config field, including the
    [lp] flag). *)

val grid_key : Experiment.cell_config -> string
