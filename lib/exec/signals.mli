(** Shared SIGINT/SIGTERM plumbing for long-running drivers.

    Both the worker pool and the serve loop want the same shutdown shape:
    redirect the termination signals to a flag, poll it at loop steps, and
    restore the previous behaviours on the way out — so a second Ctrl-C
    after the graceful path has finished its cleanup behaves as the shell
    expects.  Extracted from {!Pool.map} so every long-running driver drains
    the same way. *)

val with_interrupt_flag : (bool ref -> 'a) -> 'a
(** [with_interrupt_flag f] installs handlers for SIGINT and SIGTERM that
    set the given flag, runs [f flag], and restores the previous handlers
    afterwards (also on exceptions).  On platforms without signal support
    the flag simply never fires.  Nesting is safe: the inner call restores
    the outer call's handlers. *)
