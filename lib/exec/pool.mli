(** Fork-based parallel experiment runner.

    A worker pool for embarrassingly parallel grids of experiment cells:
    jobs are dispatched to [Unix.fork]ed workers over pipes using
    length-prefixed, CRC-checksummed [Marshal] frames, and results are
    merged back {e in job order}, so parallel output is deterministic —
    byte-identical to a sequential [~jobs:1] run whenever the job function
    itself is deterministic.

    Fault tolerance: a worker that raises, exits, is killed mid-job, or
    returns a frame that fails its CRC-32 check does not lose the job — it
    is retried (in a fresh worker for crashes and corrupt frames) up to a
    bounded retry budget, after which the job is reported as {!Failed}.  A
    job exceeding its [timeout] has its worker SIGKILLed and is treated the
    same way.  Retry attempts can be spaced by exponential [backoff] with
    deterministic jitter, and workers can be recycled after
    [max_jobs_per_worker] requests.  The pool always [waitpid]s every child
    it forked, so no run leaves zombies behind.

    Graceful shutdown: while [map] runs, SIGINT/SIGTERM are redirected to a
    flag; the dispatch loop notices it at the next step, drains and reaps
    every child, restores the previous signal behaviours, and raises
    {!Interrupted}.  Jobs already completed have been reported through
    [on_result] (the checkpoint hook), so an interrupted sweep loses at
    most the in-flight attempts.

    Chaos testing: a {!Faults.plan} injects deterministic, seeded faults
    (worker crash, hang, transient raise, corrupt result frame) keyed by
    [(job, attempt)] — see {!Faults}.  Because the injection schedule is
    independent of scheduling, a chaos run with enough [retries] budget
    converges to the exact fault-free output.

    Determinism support: before each attempt the worker reseeds the stdlib
    [Random] state with a value derived only from the job index (and
    [base_seed]), so job code that consults the global PRNG behaves the same
    no matter which worker runs it or in what order.  Code using explicit
    {!Flowsched_util.Prng} states seeded from the job payload is naturally
    deterministic already.

    Wire protocol (see DESIGN.md): each frame is an 8-byte header — 4-byte
    big-endian payload length, then the payload's CRC-32 ({!Flowsched_util.Crc})
    — followed by [Marshal] bytes (with [Marshal.Closures], which is safe
    between a parent and its forked children since they share the code
    image).  A frame whose payload fails the checksum is rejected {e before}
    unmarshalling and handled as a worker crash ([pool.frames_corrupt]
    counts them).  Parent->worker frames carry
    [(job, attempt, seed, fault, payload)] or a quit token; worker->parent
    frames carry [(job, result, metrics)] where [metrics] is the
    {!Flowsched_obs.Metrics} registry diff accumulated by that attempt
    (sent on success {e and} on a returned failure).

    Observability: the parent {!Flowsched_obs.Metrics.absorb}s each frame's
    diff, so after [map] the parent registry holds the same "simplex.*",
    "engine.*", ... totals as an inline [~jobs:1] run — counters merge
    deterministically because integer addition commutes.  Attempts that die
    without returning a frame (crash, timeout) lose their metrics, mirroring
    inline mode where such attempts cannot occur.  The pool itself counts
    under "pool.*" ([jobs_done], [jobs_failed], [retries],
    [workers_spawned], [worker_deaths], [workers_recycled],
    [frames_corrupt], the [backoff_seconds] gauge, and the [job_seconds]
    histogram); fault injections count under "faults.injected_*".  These
    are parent-side and legitimately differ between [--jobs] settings.
    Span tracing ({!Flowsched_obs.Trace}) is disabled in workers right after
    fork; only the parent's spans (e.g. ["pool.map"]) survive. *)

type 'b outcome =
  | Done of 'b
  | Failed of { attempts : int; reason : string }
      (** The job failed [attempts] times (exactly [retries + 1] total
          attempts); [reason] is the last failure (exception text,
          ["worker crashed"], ["timed out"], or ["... corrupt ..."]). *)

type event =
  | Job_started of { job : int; attempt : int }
  | Job_done of { job : int; attempt : int; elapsed : float }
  | Job_retried of { job : int; attempt : int; reason : string }
  | Job_failed of { job : int; attempts : int; reason : string }
      (** Events are delivered in the parent process, from the dispatch
          loop; in parallel runs their interleaving across jobs follows
          completion order, not job order.  Per job the sequence is always
          [Job_started 1; (Job_retried k; Job_started k+1)*; (Job_done |
          Job_failed)]. *)

exception Interrupted
(** Raised by {!map} after a SIGINT/SIGTERM: all children have been
    drained and reaped, signal handlers restored, and every completed job
    already reported through [on_result]. *)

val default_jobs : unit -> int
(** Detected core count ([Domain.recommended_domain_count]), at least 1. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?base_seed:int ->
  ?backoff:float ->
  ?faults:Faults.plan ->
  ?max_jobs_per_worker:int ->
  ?progress:(event -> unit) ->
  ?on_result:(int -> 'b outcome -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b outcome array
(** [map ~f inputs] applies [f] to every element of [inputs] and returns
    the outcomes in input order.

    - [jobs] (default {!default_jobs}): worker processes.  [jobs <= 1] runs
      everything inline in the calling process with the same retry
      semantics.
    - [timeout]: per-attempt wall-clock budget in seconds; on expiry the
      worker is SIGKILLed and the attempt counts as failed.  Inline,
      nothing can interrupt a running [f], but an attempt that finishes
      over budget is discarded and counted as ["timed out"] all the same.
    - [retries] (default 1): additional attempts after the first failure;
      a job is reported {!Failed} after exactly [retries + 1] failed
      attempts.
    - [base_seed] (default 0): mixed into the per-job [Random] reseed and
      the backoff jitter.
    - [backoff] (default 0 = none): base delay in seconds before retry
      attempt [k+1], growing as [backoff * 2^(k-1)] (capped at 60s) and
      scaled by a deterministic jitter factor in [0.5, 1.5) drawn from
      [(base_seed, job, attempt)].  Accumulated under the
      ["pool.backoff_seconds"] gauge.
    - [faults]: a deterministic chaos plan; see {!Faults}.
    - [max_jobs_per_worker]: recycle (Quit, reap, respawn) each worker
      after this many served requests; must be [>= 1].
    - [progress]: called in the parent for every lifecycle event.
    - [on_result]: called in the parent exactly once per job, with its
      final outcome, {e as soon as the job settles} (completion order, not
      job order) — the hook checkpointing layers use to persist results
      before the full map returns.

    [f] must only raise, return, or never terminate; results and inputs
    must be marshalable (closures in the payload are tolerated thanks to
    fork's shared code image, but plain data is preferred). *)

(** {2 Execution contract shared with other executors}

    The domains executor ({!Flowsched_domains.Executor}) reproduces the
    pool's per-job semantics in shared memory; it reuses these pure pieces
    so the two backends cannot drift apart. *)

val seed_for : base_seed:int -> int -> int
(** [seed_for ~base_seed job]: the value fed to [Random.init] before every
    attempt of [job], a pure function of [(base_seed, job)] only — never of
    the attempt, the worker, or scheduling order.  This is the per-job PRNG
    splitting contract (see {!Flowsched_util.Prng} for the stream-level
    guarantee): distinct jobs get distinct seeds, so their derived streams
    are disjoint in practice. *)

val backoff_delay : backoff:float -> base_seed:int -> job:int -> attempt:int -> float
(** The (pure) backoff schedule used between retry attempts:
    [backoff * 2^(attempt-1)] capped at 60s, scaled by a deterministic
    jitter factor in [0.5, 1.5) drawn from [(base_seed, job, attempt)].
    [0.] when [backoff <= 0.]. *)

val backoff_delay_for_tests :
  backoff:float -> base_seed:int -> job:int -> attempt:int -> float
(** Alias of {!backoff_delay}, kept for the existing test suite. *)
