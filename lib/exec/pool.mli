(** Fork-based parallel experiment runner.

    A worker pool for embarrassingly parallel grids of experiment cells:
    jobs are dispatched to [Unix.fork]ed workers over pipes using
    length-prefixed [Marshal] frames, and results are merged back {e in job
    order}, so parallel output is deterministic — byte-identical to a
    sequential [~jobs:1] run whenever the job function itself is
    deterministic.

    Fault tolerance: a worker that raises, exits, or is killed mid-job does
    not lose the job — it is retried (in a fresh worker for crashes) up to a
    bounded retry budget, after which the job is reported as {!Failed}.  A
    job exceeding its [timeout] has its worker SIGKILLed and is treated the
    same way.  The pool always [waitpid]s every child it forked, so no run
    leaves zombies behind.

    Determinism support: before each attempt the worker reseeds the stdlib
    [Random] state with a value derived only from the job index (and
    [base_seed]), so job code that consults the global PRNG behaves the same
    no matter which worker runs it or in what order.  Code using explicit
    {!Flowsched_util.Prng} states seeded from the job payload is naturally
    deterministic already.

    Wire protocol (see DESIGN.md): each frame is a 4-byte big-endian payload
    length followed by [Marshal] bytes (with [Marshal.Closures], which is
    safe between a parent and its forked children since they share the code
    image).  Parent->worker frames carry [(job, seed, payload)] or a quit
    token; worker->parent frames carry [(job, result, metrics)] where
    [metrics] is the {!Flowsched_obs.Metrics} registry diff accumulated by
    that attempt (sent on success {e and} on a returned failure).

    Observability: the parent {!Flowsched_obs.Metrics.absorb}s each frame's
    diff, so after [map] the parent registry holds the same "simplex.*",
    "engine.*", ... totals as an inline [~jobs:1] run — counters merge
    deterministically because integer addition commutes.  Attempts that die
    without returning a frame (crash, timeout) lose their metrics, mirroring
    inline mode where such attempts cannot occur.  The pool itself counts
    under "pool.*" ([jobs_done], [jobs_failed], [retries],
    [workers_spawned], [worker_deaths], and the [job_seconds] histogram) —
    these are parent-side and legitimately differ between [--jobs] settings.
    Span tracing ({!Flowsched_obs.Trace}) is disabled in workers right after
    fork; only the parent's spans (e.g. ["pool.map"]) survive. *)

type 'b outcome =
  | Done of 'b
  | Failed of { attempts : int; reason : string }
      (** The job failed [attempts] times ([retries + 1] total attempts);
          [reason] is the last failure (exception text, ["worker crashed"],
          or ["timed out"]). *)

type event =
  | Job_started of { job : int; attempt : int }
  | Job_done of { job : int; attempt : int; elapsed : float }
  | Job_retried of { job : int; attempt : int; reason : string }
  | Job_failed of { job : int; attempts : int; reason : string }
      (** Events are delivered in the parent process, from the dispatch
          loop; in parallel runs their interleaving across jobs follows
          completion order, not job order. *)

val default_jobs : unit -> int
(** Detected core count ([Domain.recommended_domain_count]), at least 1. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?base_seed:int ->
  ?progress:(event -> unit) ->
  f:('a -> 'b) ->
  'a array ->
  'b outcome array
(** [map ~f inputs] applies [f] to every element of [inputs] and returns
    the outcomes in input order.

    - [jobs] (default {!default_jobs}): worker processes.  [jobs <= 1] runs
      everything inline in the calling process with the same retry
      semantics (but no timeout enforcement — there is no worker to kill).
    - [timeout]: per-attempt wall-clock budget in seconds; on expiry the
      worker is SIGKILLed and the attempt counts as failed.
    - [retries] (default 1): additional attempts after the first failure;
      a job is reported {!Failed} after [retries + 1] failed attempts.
    - [base_seed] (default 0): mixed into the per-job [Random] reseed.
    - [progress]: called in the parent for every lifecycle event.

    [f] must only raise, return, or never terminate; results and inputs
    must be marshalable (closures in the payload are tolerated thanks to
    fork's shared code image, but plain data is preferred). *)
