(** Deterministic fault injection for the worker pool.

    A {!plan} assigns, to every [(job, attempt)] pair, either no fault or
    one of four fault kinds, by hashing the pair (plus the plan seed)
    through {!Flowsched_util.Prng} and comparing a uniform draw against the
    plan's probabilities.  Because the decision depends only on
    [(seed, job, attempt)] — never on scheduling, worker identity, or
    wall-clock — a chaos run is exactly reproducible: rerunning the same
    plan over the same inputs injects the same faults at the same points,
    and the pool's outcome array is a deterministic function of the plan.

    How each kind manifests in a forked worker ({!Pool.map} with
    [jobs >= 2]):

    - {!Crash}: the worker [_exit]s without replying — the parent sees EOF
      on the response pipe and treats it as a worker crash;
    - {!Hang}: the worker sleeps forever — the parent's per-attempt
      [timeout] must be set, or the pool will wait indefinitely;
    - {!Raise}: the attempt fails with a deterministic transient exception
      message (the worker stays alive);
    - {!Corrupt}: the worker computes the real result but flips a byte of
      the marshalled payload after checksumming, so the parent's CRC check
      rejects the frame and retries the job as if the worker had crashed.

    On the inline path ([jobs <= 1]) there is no worker process to kill,
    hang, or corrupt, so every injected fault degrades to a transient
    failure of that attempt with the same {!reason} string — the retry and
    [Failed] accounting is identical, only the reason text distinguishes
    the mode. *)

type kind = Crash | Hang | Raise | Corrupt

type plan
(** An immutable fault plan: a seed plus per-kind injection probabilities. *)

val make :
  ?crash:float ->
  ?hang:float ->
  ?raise_:float ->
  ?corrupt:float ->
  seed:int ->
  unit ->
  plan
(** [make ~seed ()] builds a plan; each probability defaults to [0.].
    Raises [Invalid_argument] if any probability is negative or their sum
    exceeds [1.]. *)

val chaos : seed:int -> plan
(** The canonical moderate chaos mix used by [flowsched sweep --chaos] and
    [make chaos-smoke]: crash 0.08, hang 0.03, transient raise 0.12,
    corrupt frame 0.08.  Requires a per-attempt [timeout] (hang faults). *)

val decide : plan -> job:int -> attempt:int -> kind option
(** The fault (if any) this plan injects into attempt [attempt] (1-based)
    of job [job].  Pure: same arguments, same answer. *)

val reason : kind -> job:int -> attempt:int -> string
(** The deterministic failure-reason string reported for an injected fault
    on the inline path (and, for {!Raise}, from a live worker too). *)

val kind_name : kind -> string
(** ["crash" | "hang" | "raise" | "corrupt"]. *)

val note_injected : kind -> unit
(** Count one injection under the ["faults.injected_<kind>"] metric in the
    {!Flowsched_obs.Metrics} registry.  The pool calls this in the parent
    at dispatch time (the decision is deterministic, so the parent knows
    what the worker will do even when the worker dies before reporting). *)
