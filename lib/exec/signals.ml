let with_interrupt_flag f =
  let interrupted = ref false in
  let install s =
    try Some (s, Sys.signal s (Sys.Signal_handle (fun _ -> interrupted := true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  let restore = function
    | Some (s, behavior) -> ( try ignore (Sys.signal s behavior) with Invalid_argument _ -> ())
    | None -> ()
  in
  let prev_int = install Sys.sigint in
  let prev_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      restore prev_int;
      restore prev_term)
    (fun () -> f interrupted)
