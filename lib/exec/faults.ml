module Metrics = Flowsched_obs.Metrics

type kind = Crash | Hang | Raise | Corrupt

type plan = { seed : int; crash : float; hang : float; raise_ : float; corrupt : float }

let make ?(crash = 0.) ?(hang = 0.) ?(raise_ = 0.) ?(corrupt = 0.) ~seed () =
  let ps = [ crash; hang; raise_; corrupt ] in
  if List.exists (fun p -> p < 0. || not (Float.is_finite p)) ps then
    invalid_arg "Faults.make: probabilities must be finite and non-negative";
  if List.fold_left ( +. ) 0. ps > 1. then
    invalid_arg "Faults.make: probabilities must sum to at most 1";
  { seed; crash; hang; raise_; corrupt }

let chaos ~seed = make ~crash:0.08 ~hang:0.03 ~raise_:0.12 ~corrupt:0.08 ~seed ()

(* The decision PRNG is seeded from (plan seed, job, attempt) alone;
   Prng.create pushes the mixed integer through splitmix64, so nearby
   (job, attempt) pairs get decorrelated draws. *)
let decide plan ~job ~attempt =
  let g = Flowsched_util.Prng.create (plan.seed + (1_000_003 * job) + (7_919 * attempt)) in
  let u = Flowsched_util.Prng.float g in
  if u < plan.crash then Some Crash
  else if u < plan.crash +. plan.hang then Some Hang
  else if u < plan.crash +. plan.hang +. plan.raise_ then Some Raise
  else if u < plan.crash +. plan.hang +. plan.raise_ +. plan.corrupt then Some Corrupt
  else None

let kind_name = function
  | Crash -> "crash"
  | Hang -> "hang"
  | Raise -> "raise"
  | Corrupt -> "corrupt"

let reason kind ~job ~attempt =
  Printf.sprintf "injected %s fault (job %d attempt %d)" (kind_name kind) job attempt

let c_crash = Metrics.counter "faults.injected_crash"
let c_hang = Metrics.counter "faults.injected_hang"
let c_raise = Metrics.counter "faults.injected_raise"
let c_corrupt = Metrics.counter "faults.injected_corrupt"

let note_injected = function
  | Crash -> Metrics.incr c_crash
  | Hang -> Metrics.incr c_hang
  | Raise -> Metrics.incr c_raise
  | Corrupt -> Metrics.incr c_corrupt
