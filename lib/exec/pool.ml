module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_jobs_done = Metrics.counter "pool.jobs_done"
let c_jobs_failed = Metrics.counter "pool.jobs_failed"
let c_retries = Metrics.counter "pool.retries"
let c_workers_spawned = Metrics.counter "pool.workers_spawned"
let c_worker_deaths = Metrics.counter "pool.worker_deaths"
let h_job_seconds = Metrics.histogram "pool.job_seconds"

type 'b outcome =
  | Done of 'b
  | Failed of { attempts : int; reason : string }

type event =
  | Job_started of { job : int; attempt : int }
  | Job_done of { job : int; attempt : int; elapsed : float }
  | Job_retried of { job : int; attempt : int; reason : string }
  | Job_failed of { job : int; attempts : int; reason : string }

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Wire protocol: 4-byte big-endian length + Marshal payload.          *)
(* ------------------------------------------------------------------ *)

exception Worker_eof

let rec restart f x = try f x with Unix.Unix_error (Unix.EINTR, _, _) -> restart f x

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let k = restart (fun () -> Unix.write fd bytes !off (len - !off)) () in
    off := !off + k
  done

let read_exact fd bytes off len =
  let got = ref 0 in
  while !got < len do
    let k = restart (fun () -> Unix.read fd bytes (off + !got) (len - !got)) () in
    if k = 0 then raise Worker_eof;
    got := !got + k
  done

let write_frame fd v =
  let payload = Marshal.to_bytes v [ Marshal.Closures ] in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
  write_all fd header;
  write_all fd payload

let read_frame fd =
  let header = Bytes.create 4 in
  read_exact fd header 0 4;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 then raise Worker_eof;
  let payload = Bytes.create len in
  read_exact fd payload 0 len;
  Marshal.from_bytes payload 0

(* Parent -> worker messages. *)
type 'a request = Job of { job : int; seed : int; payload : 'a } | Quit

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable current : (int * int * float) option;  (* job, attempt, start time *)
}

let seed_for ~base_seed job = base_seed + (1000003 * (job + 1))

(* [others] lists the live workers whose inherited pipe ends the child must
   close, so that a worker's death is visible to the parent as EOF instead
   of being masked by write-end copies held by sibling workers. *)
let spawn ~f ~others =
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close job_w;
      Unix.close res_r;
      List.iter
        (fun w ->
          (try Unix.close w.to_w with Unix.Unix_error _ -> ());
          try Unix.close w.from_w with Unix.Unix_error _ -> ())
        others;
      (* Spans die with the worker, so recording them is pure overhead;
         metrics instead travel back as per-job registry diffs in the
         result frames (the inherited pre-fork registry state cancels in
         the diff). *)
      Trace.stop ();
      let rec serve () =
        match (try read_frame job_r with Worker_eof -> Quit) with
        | Quit -> ()
        | Job { job; seed; payload } ->
            Random.init seed;
            let before = Metrics.snapshot () in
            let result =
              try Ok (f payload)
              with e -> Error (Printexc.to_string e)
            in
            write_frame res_w (job, result, Metrics.diff (Metrics.snapshot ()) before);
            serve ()
      in
      (try serve () with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      { pid; to_w = job_w; from_w = res_r; current = None }

let reap w =
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  try ignore (restart (fun () -> Unix.waitpid [] w.pid) ())
  with Unix.Unix_error _ -> ()

let kill_and_reap w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap w

(* ------------------------------------------------------------------ *)
(* Sequential fallback (jobs <= 1): same retry semantics, no forking.   *)
(* ------------------------------------------------------------------ *)

let run_inline ~retries ~base_seed ~progress ~f inputs =
  Array.mapi
    (fun job input ->
      let rec attempt k =
        progress (Job_started { job; attempt = k });
        let t0 = Unix.gettimeofday () in
        Random.init (seed_for ~base_seed job);
        match f input with
        | v ->
            let elapsed = Unix.gettimeofday () -. t0 in
            Metrics.incr c_jobs_done;
            Metrics.observe h_job_seconds elapsed;
            progress (Job_done { job; attempt = k; elapsed });
            Done v
        | exception e ->
            let reason = Printexc.to_string e in
            if k <= retries then begin
              Metrics.incr c_retries;
              progress (Job_retried { job; attempt = k; reason });
              attempt (k + 1)
            end
            else begin
              Metrics.incr c_jobs_failed;
              progress (Job_failed { job; attempts = k; reason });
              Failed { attempts = k; reason }
            end
      in
      attempt 1)
    inputs

(* ------------------------------------------------------------------ *)
(* Parallel dispatch loop                                              *)
(* ------------------------------------------------------------------ *)

let run_forked ~jobs ~timeout ~retries ~base_seed ~progress ~f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let completed = ref 0 in
  let pending = Queue.create () in
  for job = 0 to n - 1 do
    Queue.add (job, 1) pending
  done;
  let workers = ref [] in
  let settle job attempt reason =
    if attempt <= retries then begin
      Metrics.incr c_retries;
      progress (Job_retried { job; attempt; reason });
      Queue.add (job, attempt + 1) pending
    end
    else begin
      Metrics.incr c_jobs_failed;
      progress (Job_failed { job; attempts = attempt; reason });
      results.(job) <- Some (Failed { attempts = attempt; reason });
      incr completed
    end
  in
  let spawn_worker () =
    Metrics.incr c_workers_spawned;
    workers := spawn ~f ~others:!workers :: !workers
  in
  let retire w =
    workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
    kill_and_reap w
  in
  (* A dead worker's in-flight job goes back through the retry budget; the
     pool then refills itself if there is still work for the slot. *)
  let handle_dead w reason =
    Metrics.incr c_worker_deaths;
    (match w.current with
    | Some (job, attempt, _) -> settle job attempt reason
    | None -> ());
    retire w;
    if not (Queue.is_empty pending) then spawn_worker ()
  in
  let dispatch w =
    let job, attempt = Queue.pop pending in
    w.current <- Some (job, attempt, Unix.gettimeofday ());
    progress (Job_started { job; attempt });
    try write_frame w.to_w (Job { job; seed = seed_for ~base_seed job; payload = inputs.(job) })
    with Worker_eof | Unix.Unix_error _ | Sys_error _ ->
      handle_dead w "worker crashed (pipe closed before dispatch)"
  in
  let previous_sigpipe =
    (* A worker dying between frames must surface as EPIPE, not kill us. *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun w ->
          (try write_frame w.to_w Quit with Worker_eof | Unix.Unix_error _ | Sys_error _ -> ());
          if w.current = None then reap w else kill_and_reap w)
        !workers;
      workers := [];
      match previous_sigpipe with
      | Some behavior -> ignore (Sys.signal Sys.sigpipe behavior)
      | None -> ())
    (fun () ->
      for _ = 1 to min jobs n do
        spawn_worker ()
      done;
      while !completed < n do
        List.iter (fun w -> if w.current = None && not (Queue.is_empty pending) then dispatch w) !workers;
        let busy = List.filter (fun w -> w.current <> None) !workers in
        if busy = [] then begin
          (* Every incomplete job is pending but no worker survived to take
             it (e.g. all crashed while the queue drained): refill. *)
          if Queue.is_empty pending then
            invalid_arg "Pool.map: internal accounting error (no busy worker, no pending job)";
          if !workers = [] then spawn_worker ()
        end
        else begin
          let now = Unix.gettimeofday () in
          let select_timeout =
            match timeout with
            | None -> -1.
            | Some t ->
                List.fold_left
                  (fun acc w ->
                    match w.current with
                    | Some (_, _, start) -> min acc (max 0. (start +. t -. now))
                    | None -> acc)
                  t busy
          in
          let readable, _, _ =
            restart (fun () -> Unix.select (List.map (fun w -> w.from_w) busy) [] [] select_timeout) ()
          in
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> w.from_w = fd) !workers with
              | None -> ()
              | Some w -> (
                  match read_frame w.from_w with
                  | job, Ok value, worker_metrics ->
                      (* Fold the worker's per-job registry diff into our own
                         registry: merged totals match a --jobs 1 run. *)
                      Metrics.absorb worker_metrics;
                      let attempt, elapsed =
                        match w.current with
                        | Some (_, attempt, start) -> (attempt, Unix.gettimeofday () -. start)
                        | None -> (1, 0.)
                      in
                      results.(job) <- Some (Done value);
                      incr completed;
                      Metrics.incr c_jobs_done;
                      Metrics.observe h_job_seconds elapsed;
                      w.current <- None;
                      progress (Job_done { job; attempt; elapsed })
                  | job, Error reason, worker_metrics ->
                      (* A failed attempt's increments land in the registry
                         too, matching inline-mode semantics. *)
                      Metrics.absorb worker_metrics;
                      let attempt =
                        match w.current with Some (_, attempt, _) -> attempt | None -> 1
                      in
                      w.current <- None;
                      settle job attempt reason
                  | exception (Worker_eof | Unix.Unix_error _ | End_of_file | Failure _) ->
                      handle_dead w "worker crashed (connection lost mid-job)"))
            readable;
          (match timeout with
          | None -> ()
          | Some t ->
              let now = Unix.gettimeofday () in
              List.iter
                (fun w ->
                  match w.current with
                  | Some (_, _, start) when now -. start >= t ->
                      handle_dead w (Printf.sprintf "timed out after %.3gs" t)
                  | _ -> ())
                !workers)
        end
      done;
      Array.map (function Some r -> r | None -> assert false) results)

let map ?jobs ?timeout ?(retries = 1) ?(base_seed = 0) ?(progress = fun _ -> ()) ~f inputs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if Array.length inputs = 0 then [||]
  else
    Trace.with_span "pool.map"
      ~args:(fun () ->
        [
          ("jobs", Flowsched_util.Json.Int jobs);
          ("inputs", Flowsched_util.Json.Int (Array.length inputs));
        ])
      (fun () ->
        if jobs = 1 then run_inline ~retries ~base_seed ~progress ~f inputs
        else run_forked ~jobs ~timeout ~retries ~base_seed ~progress ~f inputs)
