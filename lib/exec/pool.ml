module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

let c_jobs_done = Metrics.counter "pool.jobs_done"
let c_jobs_failed = Metrics.counter "pool.jobs_failed"
let c_retries = Metrics.counter "pool.retries"
let c_workers_spawned = Metrics.counter "pool.workers_spawned"
let c_worker_deaths = Metrics.counter "pool.worker_deaths"
let c_workers_recycled = Metrics.counter "pool.workers_recycled"
let c_frames_corrupt = Metrics.counter "pool.frames_corrupt"
let g_backoff_seconds = Metrics.gauge "pool.backoff_seconds"
let h_job_seconds = Metrics.histogram "pool.job_seconds"

type 'b outcome =
  | Done of 'b
  | Failed of { attempts : int; reason : string }

type event =
  | Job_started of { job : int; attempt : int }
  | Job_done of { job : int; attempt : int; elapsed : float }
  | Job_retried of { job : int; attempt : int; reason : string }
  | Job_failed of { job : int; attempts : int; reason : string }

exception Interrupted

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* ------------------------------------------------------------------ *)
(* Wire protocol: 8-byte header (4-byte big-endian length + 4-byte      *)
(* big-endian CRC-32 of the payload) + Marshal payload.                 *)
(* ------------------------------------------------------------------ *)

exception Worker_eof
exception Frame_corrupt

let rec restart f x = try f x with Unix.Unix_error (Unix.EINTR, _, _) -> restart f x

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let k = restart (fun () -> Unix.write fd bytes !off (len - !off)) () in
    off := !off + k
  done

let read_exact fd bytes off len =
  let got = ref 0 in
  while !got < len do
    let k = restart (fun () -> Unix.read fd bytes (off + !got) (len - !got)) () in
    if k = 0 then raise Worker_eof;
    got := !got + k
  done

let frame_header payload =
  let header = Bytes.create 8 in
  Bytes.set_int32_be header 0 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_be header 4 (Int32.of_int (Flowsched_util.Crc.bytes payload));
  header

let write_frame fd v =
  let payload = Marshal.to_bytes v [ Marshal.Closures ] in
  write_all fd (frame_header payload);
  write_all fd payload

(* A deliberately damaged frame (fault injection): the checksum is taken
   over the real payload, then a byte is flipped, so the receiver's CRC
   check must reject it. *)
let write_corrupt_frame fd v =
  let payload = Marshal.to_bytes v [ Marshal.Closures ] in
  let header = frame_header payload in
  Bytes.set payload 0 (Char.chr (Char.code (Bytes.get payload 0) lxor 0xFF));
  write_all fd header;
  write_all fd payload

let read_frame fd =
  let header = Bytes.create 8 in
  read_exact fd header 0 8;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  let crc = Int32.to_int (Bytes.get_int32_be header 4) land 0xFFFFFFFF in
  if len < 0 then raise Worker_eof;
  let payload = Bytes.create len in
  read_exact fd payload 0 len;
  if Flowsched_util.Crc.bytes payload <> crc then raise Frame_corrupt;
  Marshal.from_bytes payload 0

(* Parent -> worker messages.  The fault decision is made in the parent
   (it is a pure function of the plan and (job, attempt)) and shipped with
   the request, so workers stay plan-agnostic. *)
type 'a request =
  | Job of { job : int; attempt : int; seed : int; fault : Faults.kind option; payload : 'a }
  | Quit

(* ------------------------------------------------------------------ *)
(* Retry backoff: exponential in the attempt number with deterministic   *)
(* jitter drawn from (base_seed, job, attempt), capped at 60s.           *)
(* ------------------------------------------------------------------ *)

let backoff_delay ~backoff ~base_seed ~job ~attempt =
  if backoff <= 0. then 0.
  else begin
    let g =
      Flowsched_util.Prng.create (base_seed + (1_000_033 * job) + (104_729 * attempt))
    in
    let jitter = 0.5 +. Flowsched_util.Prng.float g in
    Float.min 60. (backoff *. Float.of_int (1 lsl min 20 (attempt - 1))) *. jitter
  end

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

type worker = {
  pid : int;
  to_w : Unix.file_descr;
  from_w : Unix.file_descr;
  mutable current : (int * int * float) option;  (* job, attempt, start time *)
  mutable served : int;  (* completed requests, for max-jobs recycling *)
}

let seed_for ~base_seed job = base_seed + (1000003 * (job + 1))

(* [others] lists the live workers whose inherited pipe ends the child must
   close, so that a worker's death is visible to the parent as EOF instead
   of being masked by write-end copies held by sibling workers. *)
let spawn ~f ~others =
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close job_w;
      Unix.close res_r;
      List.iter
        (fun w ->
          (try Unix.close w.to_w with Unix.Unix_error _ -> ());
          try Unix.close w.from_w with Unix.Unix_error _ -> ())
        others;
      (* The parent's graceful-shutdown handlers only set a parent-side
         flag; a worker inheriting them would silently swallow signals
         addressed to it, so restore the defaults. *)
      List.iter
        (fun s -> try ignore (Sys.signal s Sys.Signal_default) with Invalid_argument _ -> ())
        [ Sys.sigint; Sys.sigterm ];
      (* Spans die with the worker, so recording them is pure overhead;
         metrics instead travel back as per-job registry diffs in the
         result frames (the inherited pre-fork registry state cancels in
         the diff). *)
      Trace.stop ();
      let rec serve () =
        match (try read_frame job_r with Worker_eof | Frame_corrupt -> Quit) with
        | Quit -> ()
        | Job { job; attempt; seed; fault; payload } ->
            (match fault with
            | Some Faults.Crash -> Unix._exit 70
            | Some Faults.Hang ->
                while true do
                  Unix.sleep 3600
                done
            | _ -> ());
            Random.init seed;
            let before = Metrics.snapshot () in
            let result =
              match fault with
              | Some Faults.Raise -> Error (Faults.reason Faults.Raise ~job ~attempt)
              | _ -> ( try Ok (f payload) with e -> Error (Printexc.to_string e))
            in
            let frame = (job, result, Metrics.diff (Metrics.snapshot ()) before) in
            (match fault with
            | Some Faults.Corrupt -> write_corrupt_frame res_w frame
            | _ -> write_frame res_w frame);
            serve ()
      in
      (try serve () with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      { pid; to_w = job_w; from_w = res_r; current = None; served = 0 }

let reap w =
  (try Unix.close w.to_w with Unix.Unix_error _ -> ());
  (try Unix.close w.from_w with Unix.Unix_error _ -> ());
  try ignore (restart (fun () -> Unix.waitpid [] w.pid) ())
  with Unix.Unix_error _ -> ()

let kill_and_reap w =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  reap w

(* ------------------------------------------------------------------ *)
(* Sequential fallback (jobs <= 1): same retry/backoff/fault semantics,  *)
(* no forking.  A timeout cannot interrupt [f] here (there is no worker  *)
(* to kill), but an attempt that comes back over budget is discarded and *)
(* counted as "timed out", matching worker semantics post hoc.           *)
(* ------------------------------------------------------------------ *)

let run_inline ~timeout ~retries ~base_seed ~backoff ~faults ~interrupted ~progress ~on_result
    ~f inputs =
  Array.mapi
    (fun job input ->
      let rec attempt k =
        if !interrupted then raise Interrupted;
        progress (Job_started { job; attempt = k });
        let fault =
          match faults with
          | None -> None
          | Some plan ->
              let d = Faults.decide plan ~job ~attempt:k in
              Option.iter Faults.note_injected d;
              d
        in
        let t0 = Unix.gettimeofday () in
        Random.init (seed_for ~base_seed job);
        let result =
          match fault with
          | Some kind -> Error (Faults.reason kind ~job ~attempt:k)
          | None -> ( match f input with v -> Ok v | exception e -> Error (Printexc.to_string e))
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        let result =
          (* Post-hoc wall-clock enforcement: inline mode cannot SIGKILL a
             slow attempt, but it must not *accept* one the forked pool
             would have killed. *)
          match (result, timeout) with
          | Ok _, Some t when elapsed >= t -> Error (Printf.sprintf "timed out after %.3gs" t)
          | _ -> result
        in
        match result with
        | Ok v ->
            Metrics.incr c_jobs_done;
            Metrics.observe h_job_seconds elapsed;
            progress (Job_done { job; attempt = k; elapsed });
            let outcome = Done v in
            on_result job outcome;
            outcome
        | Error reason ->
            if k <= retries then begin
              Metrics.incr c_retries;
              progress (Job_retried { job; attempt = k; reason });
              let delay = backoff_delay ~backoff ~base_seed ~job ~attempt:k in
              if delay > 0. then begin
                Metrics.add_gauge g_backoff_seconds delay;
                (try Unix.sleepf delay with Unix.Unix_error (Unix.EINTR, _, _) -> ())
              end;
              attempt (k + 1)
            end
            else begin
              Metrics.incr c_jobs_failed;
              progress (Job_failed { job; attempts = k; reason });
              let outcome = Failed { attempts = k; reason } in
              on_result job outcome;
              outcome
            end
      in
      attempt 1)
    inputs

(* ------------------------------------------------------------------ *)
(* Parallel dispatch loop                                              *)
(* ------------------------------------------------------------------ *)

let run_forked ~jobs ~timeout ~retries ~base_seed ~backoff ~faults ~max_jobs_per_worker
    ~interrupted ~progress ~on_result ~f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let completed = ref 0 in
  let pending = Queue.create () in
  (* Retry attempts serving a backoff delay wait here as
     (ready_at, job, attempt), promoted into [pending] when due. *)
  let delayed = ref [] in
  for job = 0 to n - 1 do
    Queue.add (job, 1) pending
  done;
  let workers = ref [] in
  let have_work () = (not (Queue.is_empty pending)) || !delayed <> [] in
  let settle job attempt reason =
    if attempt <= retries then begin
      Metrics.incr c_retries;
      progress (Job_retried { job; attempt; reason });
      let delay = backoff_delay ~backoff ~base_seed ~job ~attempt in
      if delay > 0. then begin
        Metrics.add_gauge g_backoff_seconds delay;
        delayed := (Unix.gettimeofday () +. delay, job, attempt + 1) :: !delayed
      end
      else Queue.add (job, attempt + 1) pending
    end
    else begin
      Metrics.incr c_jobs_failed;
      progress (Job_failed { job; attempts = attempt; reason });
      let outcome = Failed { attempts = attempt; reason } in
      results.(job) <- Some outcome;
      incr completed;
      on_result job outcome
    end
  in
  let spawn_worker () =
    Metrics.incr c_workers_spawned;
    workers := spawn ~f ~others:!workers :: !workers
  in
  let retire w =
    workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
    kill_and_reap w
  in
  (* A dead worker's in-flight job goes back through the retry budget; the
     pool then refills itself if there is still work for the slot. *)
  let handle_dead w reason =
    Metrics.incr c_worker_deaths;
    (match w.current with
    | Some (job, attempt, _) -> settle job attempt reason
    | None -> ());
    retire w;
    if have_work () then spawn_worker ()
  in
  (* Recycling: after [max_jobs_per_worker] served requests the worker is
     drained gracefully (Quit + reap) and replaced — bounds the blast
     radius of slow leaks in long chaos runs. *)
  let maybe_recycle w =
    match max_jobs_per_worker with
    | Some k when w.served >= k && w.current = None ->
        Metrics.incr c_workers_recycled;
        workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
        (try write_frame w.to_w Quit with Worker_eof | Unix.Unix_error _ | Sys_error _ -> ());
        reap w;
        if have_work () then spawn_worker ()
    | _ -> ()
  in
  let dispatch w =
    let job, attempt = Queue.pop pending in
    let fault =
      match faults with
      | None -> None
      | Some plan ->
          let d = Faults.decide plan ~job ~attempt in
          Option.iter Faults.note_injected d;
          d
    in
    w.current <- Some (job, attempt, Unix.gettimeofday ());
    progress (Job_started { job; attempt });
    try
      write_frame w.to_w
        (Job { job; attempt; seed = seed_for ~base_seed job; fault; payload = inputs.(job) })
    with Worker_eof | Unix.Unix_error _ | Sys_error _ ->
      handle_dead w "worker crashed (pipe closed before dispatch)"
  in
  (* A signal must abort select/sleep promptly instead of being swallowed
     by the EINTR-restart wrapper. *)
  let rec select_interruptible fds tmo =
    if !interrupted then raise Interrupted;
    try Unix.select fds [] [] tmo
    with Unix.Unix_error (Unix.EINTR, _, _) ->
      if !interrupted then raise Interrupted else select_interruptible fds tmo
  in
  let previous_sigpipe =
    (* A worker dying between frames must surface as EPIPE, not kill us. *)
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun w ->
          (try write_frame w.to_w Quit with Worker_eof | Unix.Unix_error _ | Sys_error _ -> ());
          if w.current = None then reap w else kill_and_reap w)
        !workers;
      workers := [];
      match previous_sigpipe with
      | Some behavior -> ignore (Sys.signal Sys.sigpipe behavior)
      | None -> ())
    (fun () ->
      for _ = 1 to min jobs n do
        spawn_worker ()
      done;
      while !completed < n do
        if !interrupted then raise Interrupted;
        let now = Unix.gettimeofday () in
        delayed :=
          List.filter
            (fun (ready_at, job, attempt) ->
              if ready_at <= now then begin
                Queue.add (job, attempt) pending;
                false
              end
              else true)
            !delayed;
        List.iter (fun w -> if w.current = None && not (Queue.is_empty pending) then dispatch w) !workers;
        let busy = List.filter (fun w -> w.current <> None) !workers in
        if busy = [] then begin
          if not (Queue.is_empty pending) then begin
            (* Every incomplete job is pending but no worker survived to
               take it (e.g. all crashed while the queue drained): refill. *)
            if !workers = [] then spawn_worker ()
          end
          else begin
            match !delayed with
            | [] ->
                invalid_arg "Pool.map: internal accounting error (no busy worker, no pending job)"
            | ds ->
                (* Only backoff delays remain; nothing to select on. *)
                let ready_at = List.fold_left (fun acc (t, _, _) -> min acc t) infinity ds in
                if ready_at > now then begin
                  try Unix.sleepf (ready_at -. now)
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ()
                end
          end
        end
        else begin
          let select_timeout =
            let deadlines =
              (match timeout with
              | None -> []
              | Some t ->
                  List.filter_map
                    (fun w ->
                      match w.current with Some (_, _, start) -> Some (start +. t) | None -> None)
                    busy)
              @ List.map (fun (ready_at, _, _) -> ready_at) !delayed
            in
            match deadlines with
            | [] -> -1.
            | ds -> max 0. (List.fold_left min infinity ds -. now)
          in
          let readable, _, _ =
            select_interruptible (List.map (fun w -> w.from_w) busy) select_timeout
          in
          List.iter
            (fun fd ->
              match List.find_opt (fun w -> w.from_w = fd) !workers with
              | None -> ()
              | Some w -> (
                  match read_frame w.from_w with
                  | job, Ok value, worker_metrics ->
                      (* Fold the worker's per-job registry diff into our own
                         registry: merged totals match a --jobs 1 run. *)
                      Metrics.absorb worker_metrics;
                      let attempt, elapsed =
                        match w.current with
                        | Some (_, attempt, start) -> (attempt, Unix.gettimeofday () -. start)
                        | None -> (1, 0.)
                      in
                      let outcome = Done value in
                      results.(job) <- Some outcome;
                      incr completed;
                      Metrics.incr c_jobs_done;
                      Metrics.observe h_job_seconds elapsed;
                      w.current <- None;
                      w.served <- w.served + 1;
                      progress (Job_done { job; attempt; elapsed });
                      on_result job outcome;
                      maybe_recycle w
                  | job, Error reason, worker_metrics ->
                      (* A failed attempt's increments land in the registry
                         too, matching inline-mode semantics. *)
                      Metrics.absorb worker_metrics;
                      let attempt =
                        match w.current with Some (_, attempt, _) -> attempt | None -> 1
                      in
                      w.current <- None;
                      w.served <- w.served + 1;
                      settle job attempt reason;
                      maybe_recycle w
                  | exception Frame_corrupt ->
                      (* The worker is alive but its frame failed the CRC
                         check: attribute the damage to the worker and
                         replace it, never letting the bytes near Marshal. *)
                      Metrics.incr c_frames_corrupt;
                      handle_dead w "worker sent corrupt result frame (crc mismatch)"
                  | exception (Worker_eof | Unix.Unix_error _ | End_of_file | Failure _) ->
                      handle_dead w "worker crashed (connection lost mid-job)"))
            readable;
          (match timeout with
          | None -> ()
          | Some t ->
              let now = Unix.gettimeofday () in
              List.iter
                (fun w ->
                  match w.current with
                  | Some (_, _, start) when now -. start >= t ->
                      handle_dead w (Printf.sprintf "timed out after %.3gs" t)
                  | _ -> ())
                !workers)
        end
      done;
      Array.map (function Some r -> r | None -> assert false) results)

let backoff_delay_for_tests = backoff_delay

let map ?jobs ?timeout ?(retries = 1) ?(base_seed = 0) ?(backoff = 0.) ?faults
    ?max_jobs_per_worker ?(progress = fun _ -> ()) ?(on_result = fun _ _ -> ()) ~f inputs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  (match max_jobs_per_worker with
  | Some k when k < 1 -> invalid_arg "Pool.map: max_jobs_per_worker must be >= 1"
  | _ -> ());
  if Array.length inputs = 0 then [||]
  else begin
    (* Graceful shutdown: SIGINT/SIGTERM set a flag checked at every loop
       step; the pool drains and reaps all children (the forked loop's
       finally block) before re-raising as Interrupted. *)
    Signals.with_interrupt_flag (fun interrupted ->
        Trace.with_span "pool.map"
          ~args:(fun () ->
            [
              ("jobs", Flowsched_util.Json.Int jobs);
              ("inputs", Flowsched_util.Json.Int (Array.length inputs));
            ])
          (fun () ->
            if jobs = 1 then
              run_inline ~timeout ~retries ~base_seed ~backoff ~faults ~interrupted ~progress
                ~on_result ~f inputs
            else
              run_forked ~jobs ~timeout ~retries ~base_seed ~backoff ~faults
                ~max_jobs_per_worker ~interrupted ~progress ~on_result ~f inputs))
  end
