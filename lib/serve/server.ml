open Flowsched_switch
module Bmatching = Flowsched_bipartite.Bmatching
module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace
module J = Flowsched_util.Json

let c_slots = Metrics.counter "serve.slots"
let c_admitted = Metrics.counter "serve.flows_admitted"
let c_completed = Metrics.counter "serve.flows_completed"
let c_stalled = Metrics.counter "serve.stalled_slots"
let h_latency = Metrics.histogram "serve.slot_decision_seconds"

type core = Policy of Flowsched_online.Policy.t | Incremental

type config = {
  m : int;
  m' : int;
  cap_in : int array;
  cap_out : int array;
  queue_cap : int;
  buffer_cap : int;
  max_slots : int option;
  idle_limit : int;
  status_every : int;
}

let config ?cap_in ?cap_out ?(queue_cap = max_int) ?(buffer_cap = max_int) ?max_slots
    ?(idle_limit = 10_000) ?(status_every = 0) ~m ~m' () =
  if m < 1 || m' < 1 then invalid_arg "Server.config: empty switch side";
  let cap_in = match cap_in with Some c -> Array.copy c | None -> Array.make m 1 in
  let cap_out = match cap_out with Some c -> Array.copy c | None -> Array.make m' 1 in
  if Array.length cap_in <> m || Array.length cap_out <> m' then
    invalid_arg "Server.config: capacity array length";
  if queue_cap < 1 || buffer_cap < 1 || idle_limit < 1 then
    invalid_arg "Server.config: caps and idle_limit must be positive";
  (match max_slots with
  | Some n when n < 0 -> invalid_arg "Server.config: negative max_slots"
  | _ -> ());
  if status_every < 0 then invalid_arg "Server.config: negative status_every";
  { m; m'; cap_in; cap_out; queue_cap; buffer_cap; max_slots; idle_limit; status_every }

type status = {
  slot : int;
  pending : int;
  buffered : int;
  arrived : int;
  completed : int;
  flows_per_sec : float;
  p50_latency : float;
  p99_latency : float;
}

type outcome = {
  slots : int;
  arrived : int;
  completed : int;
  sum_response : int;
  max_response : int;
  makespan : int;
  idle_slots : int;
  stalled_slots : int;
  peak_pending : int;
  final_pending : int;
  final_buffered : int;
  interrupted : bool;
}

(* A scheduling core, uniform across the two implementations: admit a batch
   of flows, then return the releases of the flows scheduled this slot. *)
type mode = { admit : Flow.t list -> unit; step : int -> int list; count : unit -> int }

let policy_mode (cfg : config) (policy : Flowsched_online.Policy.t) =
  (* Mirrors Engine.drive exactly: pending list oldest-first, arrivals
     appended at the back, filtered on schedule, with the queue array reused
     across zero-churn slots. *)
  let pending = ref [] in
  let n = ref 0 in
  let cache = ref [||] in
  let stale = ref true in
  let admit batch =
    if batch <> [] then begin
      pending := !pending @ batch;
      n := !n + List.length batch;
      stale := true
    end
  in
  let step slot =
    if !stale then begin
      cache := Array.of_list !pending;
      stale := false
    end;
    let queue = !cache in
    let ctx =
      {
        Flowsched_online.Policy.m = cfg.m;
        m' = cfg.m';
        cap_in = cfg.cap_in;
        cap_out = cfg.cap_out;
        round = slot;
        queue;
      }
    in
    match policy.Flowsched_online.Policy.select ctx with
    | [] -> []
    | selected ->
        let chosen = Hashtbl.create 8 in
        List.iter (fun i -> Hashtbl.replace chosen queue.(i).Flow.id ()) selected;
        pending :=
          List.filter (fun (f : Flow.t) -> not (Hashtbl.mem chosen f.Flow.id)) !pending;
        n := !n - List.length selected;
        stale := true;
        List.map (fun i -> queue.(i).Flow.release) selected
  in
  { admit; step; count = (fun () -> !n) }

let incremental_mode (cfg : config) =
  let inc =
    Bmatching.incremental ~nl:cfg.m ~nr:cfg.m' ~cap_in:cfg.cap_in ~cap_out:cfg.cap_out
  in
  let release_of = Hashtbl.create 1024 in
  let admit batch =
    List.iter
      (fun (f : Flow.t) ->
        if f.Flow.demand <> 1 then
          invalid_arg "Server.run: the Incremental core requires unit demands";
        Bmatching.Incremental.add inc ~id:f.Flow.id ~src:f.Flow.src ~dst:f.Flow.dst;
        Hashtbl.add release_of f.Flow.id f.Flow.release)
      batch
  in
  let step _slot =
    List.map
      (fun id ->
        let r = Hashtbl.find release_of id in
        Hashtbl.remove release_of id;
        r)
      (Bmatching.Incremental.take_matched inc)
  in
  { admit; step; count = (fun () -> Bmatching.Incremental.pending inc) }

let run ?(on_status = fun (_ : status) -> ()) ?stop (cfg : config) core source =
  Trace.with_span "serve.run" (fun () ->
      let interrupted = match stop with Some f -> f | None -> ref false in
      let { admit; step; count } =
        match core with Policy p -> policy_mode cfg p | Incremental -> incremental_mode cfg
      in
      let buffer = Queue.create () in
      let next_id = ref 0 in
      let src_slot = ref 0 in
      let slot = ref 0 in
      let arrived = ref 0 and completed = ref 0 in
      let sum_resp = ref 0 and max_resp = ref 0 and makespan = ref 0 in
      let idle = ref 0 and stalled = ref 0 and peak = ref 0 in
      let idle_streak = ref 0 in
      let was_interrupted = ref false in
      let stop_now = ref false in
      let last_time = ref (Unix.gettimeofday ()) in
      let last_completed = ref 0 in
      let src_open () = (not !was_interrupted) && Source.more source !src_slot in
      while
        (not !stop_now) && (src_open () || (not (Queue.is_empty buffer)) || count () > 0)
      do
        match cfg.max_slots with
        | Some cap when !slot >= cap -> stop_now := true
        | _ ->
            if !interrupted then was_interrupted := true;
            (* 1. pull one source slot, unless the buffer pushes back *)
            if src_open () then begin
              if Queue.length buffer < cfg.buffer_cap then begin
                List.iter (fun spec -> Queue.push spec buffer) (Source.pull source !src_slot);
                incr src_slot
              end
              else begin
                incr stalled;
                Metrics.incr c_stalled
              end
            end;
            (* 2. admit while the pending queue has room *)
            let room = cfg.queue_cap - count () in
            let batch = ref [] in
            let admitted = ref 0 in
            while !admitted < room && not (Queue.is_empty buffer) do
              let src, dst, demand = Queue.pop buffer in
              batch := Flow.make ~id:!next_id ~src ~dst ~demand ~release:!slot () :: !batch;
              incr next_id;
              incr admitted
            done;
            admit (List.rev !batch);
            arrived := !arrived + !admitted;
            Metrics.incr ~by:!admitted c_admitted;
            (* 3. schedule this slot *)
            let t0 = Unix.gettimeofday () in
            let releases = step !slot in
            Metrics.observe h_latency (Unix.gettimeofday () -. t0);
            Metrics.incr c_slots;
            (* 4. fold completions into streaming stats *)
            let k = List.length releases in
            if k > 0 then begin
              completed := !completed + k;
              Metrics.incr ~by:k c_completed;
              List.iter
                (fun r ->
                  let resp = !slot - r + 1 in
                  sum_resp := !sum_resp + resp;
                  if resp > !max_resp then max_resp := resp)
                releases;
              makespan := !slot + 1;
              idle_streak := 0
            end
            else begin
              if count () > 0 then incr idle;
              if (not (src_open ())) && Queue.is_empty buffer && count () > 0 then begin
                incr idle_streak;
                if !idle_streak >= cfg.idle_limit then stop_now := true
              end
            end;
            let pc = count () in
            if pc > !peak then peak := pc;
            if cfg.status_every > 0 && (!slot + 1) mod cfg.status_every = 0 then begin
              let now = Unix.gettimeofday () in
              let dt = now -. !last_time in
              let fps =
                if dt <= 0. then 0.
                else float_of_int (!completed - !last_completed) /. dt
              in
              last_time := now;
              last_completed := !completed;
              on_status
                {
                  slot = !slot;
                  pending = pc;
                  buffered = Queue.length buffer;
                  arrived = !arrived;
                  completed = !completed;
                  flows_per_sec = fps;
                  p50_latency = Metrics.histogram_quantile h_latency 0.5;
                  p99_latency = Metrics.histogram_quantile h_latency 0.99;
                }
            end;
            incr slot
      done;
      {
        slots = !slot;
        arrived = !arrived;
        completed = !completed;
        sum_response = !sum_resp;
        max_response = !max_resp;
        makespan = !makespan;
        idle_slots = !idle;
        stalled_slots = !stalled;
        peak_pending = !peak;
        final_pending = count ();
        final_buffered = Queue.length buffer;
        interrupted = !was_interrupted;
      })

let mean_response o =
  if o.completed = 0 then nan else float_of_int o.sum_response /. float_of_int o.completed

let outcome_to_json o =
  J.Obj
    [
      ("slots", J.Int o.slots);
      ("arrived", J.Int o.arrived);
      ("completed", J.Int o.completed);
      ("sum_response", J.Int o.sum_response);
      ("max_response", J.Int o.max_response);
      ("makespan", J.Int o.makespan);
      ("idle_slots", J.Int o.idle_slots);
      ("stalled_slots", J.Int o.stalled_slots);
      ("peak_pending", J.Int o.peak_pending);
      ("final_pending", J.Int o.final_pending);
      ("final_buffered", J.Int o.final_buffered);
      ("interrupted", J.Bool o.interrupted);
    ]

let status_to_json s =
  J.Obj
    [
      ("slot", J.Int s.slot);
      ("pending", J.Int s.pending);
      ("buffered", J.Int s.buffered);
      ("arrived", J.Int s.arrived);
      ("completed", J.Int s.completed);
      ("flows_per_sec", J.float s.flows_per_sec);
      ("p50_latency", J.float s.p50_latency);
      ("p99_latency", J.float s.p99_latency);
    ]
