(** Long-running scheduler service: a slot-clocked event loop around a
    scheduling core, built to run for millions of slots under bounded
    memory.

    Each slot the server (1) pulls at most one source slot's arrivals into
    a bounded buffer — a full buffer stalls the source (backpressure) —
    (2) admits buffered flows into the scheduling core while the pending
    queue is under its cap, (3) asks the core for this slot's schedulable
    set, and (4) folds the completed flows into streaming response-time
    statistics and discards them.  Nothing grows with the horizon: state is
    the pending flows plus integer accumulators.

    Two cores are provided.  {!Policy} replicates the batch engine's
    semantics exactly — for a fixed-seed trace with backpressure disabled,
    the outcome's aggregate statistics equal those of
    [Flowsched_sim.Engine.run_instance] on the same trace (the tests assert
    this for 1e5-slot runs).  {!Incremental} maintains the matching across
    slots with [Flowsched_bipartite.Bmatching.Incremental], making the
    per-slot decision cost proportional to churn rather than queue depth;
    it requires unit demands.

    The {!outcome} is all-integer, so for a fixed seed two runs are
    byte-identical even though the status stream carries wall-clock rates.
    Wall-clock timing appears only in {!status} snapshots and the metrics
    registry ([serve.slot_decision_seconds]). *)

type core =
  | Policy of Flowsched_online.Policy.t
  | Incremental  (** Unit demands only; raises [Invalid_argument] otherwise. *)

type config = private {
  m : int;
  m' : int;
  cap_in : int array;
  cap_out : int array;
  queue_cap : int;  (** Max flows in the scheduling core; admission waits above. *)
  buffer_cap : int;  (** Max flows in the arrival buffer; the source stalls above. *)
  max_slots : int option;  (** Hard stop; [final_pending] reports what was left. *)
  idle_limit : int;
      (** Stop after this many consecutive fruitless slots once the source
          is exhausted — a starving core would otherwise spin forever. *)
  status_every : int;  (** Emit a status snapshot every N slots; 0 = never. *)
}

val config :
  ?cap_in:int array ->
  ?cap_out:int array ->
  ?queue_cap:int ->
  ?buffer_cap:int ->
  ?max_slots:int ->
  ?idle_limit:int ->
  ?status_every:int ->
  m:int ->
  m':int ->
  unit ->
  config
(** Capacities default to all ones; [queue_cap] and [buffer_cap] default to
    unbounded ([max_int], i.e. backpressure off); [idle_limit] defaults to
    10000.  Raises [Invalid_argument] on non-positive geometry or caps. *)

type status = {
  slot : int;
  pending : int;
  buffered : int;
  arrived : int;
  completed : int;
  flows_per_sec : float;  (** Completions per second since the last snapshot. *)
  p50_latency : float;  (** Slot-decision latency quantile estimates, seconds, *)
  p99_latency : float;  (** from the metrics registry's log-scale histogram. *)
}

type outcome = {
  slots : int;
  arrived : int;
  completed : int;
  sum_response : int;
  max_response : int;
  makespan : int;  (** Last slot (1-based) in which anything was scheduled. *)
  idle_slots : int;  (** Slots with pending flows but nothing scheduled. *)
  stalled_slots : int;  (** Slots the source spent blocked on a full buffer. *)
  peak_pending : int;
  final_pending : int;  (** 0 unless the run was cut short. *)
  final_buffered : int;
  interrupted : bool;
}

val run : ?on_status:(status -> unit) -> ?stop:bool ref -> config -> core -> Source.t -> outcome
(** Run until the source is exhausted and the queues drain, [max_slots] is
    reached, or [stop] becomes true (e.g. the {!Flowsched_exec.Signals}
    interrupt flag): setting [stop] closes the source and the server drains
    what it already holds before returning. *)

val mean_response : outcome -> float
(** [nan] when nothing completed. *)

val outcome_to_json : outcome -> Flowsched_util.Json.t
val status_to_json : status -> Flowsched_util.Json.t
