(** Arrival sources for the scheduler service.

    A source is a slot-clocked supplier of flow specs: the server pulls the
    batch released at each source slot exactly once, in increasing slot
    order.  Under backpressure the server's own slot clock can run ahead of
    the source's — a batch the buffer had no room for is pulled later, and
    its flows are released (for response-time accounting) at the slot they
    were actually admitted. *)

type t

val make : more:(int -> bool) -> pull:(int -> (int * int * int) list) -> t
(** [more slot] says whether the source can still produce at or after
    [slot]; [pull slot] returns the [(src, dst, demand)] specs released at
    [slot].  [pull] is called at most once per slot, in increasing order,
    and only while [more] holds. *)

val of_instance : Flowsched_switch.Instance.t -> t
(** Replay a fixed instance: each flow is produced at its release slot, in
    the instance's flow order within a slot. *)

val of_stream : Flowsched_sim.Workload.stream -> horizon:int -> t
(** Pull from a seeded workload generator for [horizon] source slots, then
    stop.  The stream advances only when the server actually pulls, so
    backpressure pauses the generator rather than dropping arrivals. *)

val of_scenario : Flowsched_scenarios.Scenario.spec -> horizon:int -> t
(** Same contract over any streamable scenario kind (the workload zoo
    included); the spec's own [rounds] is ignored in favour of [horizon].
    Raises [Invalid_argument] for batch-only kinds (["uniform"]). *)

val more : t -> int -> bool
val pull : t -> int -> (int * int * int) list
