open Flowsched_switch

type t = { more : int -> bool; pull : int -> (int * int * int) list }

let make ~more ~pull = { more; pull }
let more t slot = t.more slot
let pull t slot = t.pull slot

let of_instance (inst : Instance.t) =
  let by_release = Hashtbl.create 64 in
  Array.iter
    (fun (f : Flow.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_release f.Flow.release) in
      Hashtbl.replace by_release f.Flow.release (f :: cur))
    inst.Instance.flows;
  let last = Instance.last_release inst in
  {
    more = (fun slot -> slot <= last);
    pull =
      (fun slot ->
        match Hashtbl.find_opt by_release slot with
        | Some fs ->
            List.rev_map (fun (f : Flow.t) -> (f.Flow.src, f.Flow.dst, f.Flow.demand)) fs
        | None -> []);
  }

let of_stream stream ~horizon =
  if horizon < 0 then invalid_arg "Source.of_stream: negative horizon";
  {
    more = (fun _slot -> Flowsched_sim.Workload.stream_slot stream < horizon);
    pull = (fun _slot -> Flowsched_sim.Workload.stream_next stream);
  }

let of_scenario spec ~horizon =
  if horizon < 0 then invalid_arg "Source.of_scenario: negative horizon";
  match Flowsched_scenarios.Scenario.stream spec with
  | Error msg -> invalid_arg ("Source.of_scenario: " ^ msg)
  | Ok arrivals ->
      {
        more =
          (fun _slot -> Flowsched_scenarios.Scenario.arrivals_slot arrivals < horizon);
        pull = (fun _slot -> Flowsched_scenarios.Scenario.arrivals_next arrivals);
      }
