(* A tiny growable array, local to this library (OCaml 5.1's stdlib predates
   Dynarray). *)
module Dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let add d x =
    if d.len = Array.length d.data then begin
      let cap = max 8 (2 * Array.length d.data) in
      let data = Array.make cap x in
      Array.blit d.data 0 data 0 d.len;
      d.data <- data
    end;
    d.data.(d.len) <- x;
    d.len <- d.len + 1

  let get d i =
    if i < 0 || i >= d.len then invalid_arg "Dyn.get";
    d.data.(i)

  let length d = d.len
  let iter f d = for i = 0 to d.len - 1 do f d.data.(i) done
end

type var = int
type row = int
type sense = Le | Ge | Eq

type row_data = { terms : (var * float) list; sense : sense; rhs : float; rname : string }

type t = {
  mutable objs : float array;
  mutable ubs : float array;
  mutable vnames : string array;
  mutable nvars : int;
  rows : row_data Dyn.t;
}

let create () = { objs = [||]; ubs = [||]; vnames = [||]; nvars = 0; rows = Dyn.create () }

let grow_vars t =
  if t.nvars = Array.length t.objs then begin
    let cap = max 16 (2 * Array.length t.objs) in
    let objs = Array.make cap 0. in
    Array.blit t.objs 0 objs 0 t.nvars;
    t.objs <- objs;
    let ubs = Array.make cap infinity in
    Array.blit t.ubs 0 ubs 0 t.nvars;
    t.ubs <- ubs;
    let vnames = Array.make cap "" in
    Array.blit t.vnames 0 vnames 0 t.nvars;
    t.vnames <- vnames
  end

let add_var ?name ?(obj = 0.) ?(ub = infinity) t =
  if ub < 0. || Float.is_nan ub then invalid_arg "Model.add_var: negative upper bound";
  grow_vars t;
  let v = t.nvars in
  t.objs.(v) <- obj;
  t.ubs.(v) <- ub;
  t.vnames.(v) <- (match name with Some n -> n | None -> Printf.sprintf "x%d" v);
  t.nvars <- t.nvars + 1;
  v

let merge_terms terms =
  let tbl = Hashtbl.create (List.length terms) in
  List.iter
    (fun (v, c) ->
      match Hashtbl.find_opt tbl v with
      | Some c0 -> Hashtbl.replace tbl v (c0 +. c)
      | None -> Hashtbl.add tbl v c)
    terms;
  let merged = Hashtbl.fold (fun v c acc -> if c = 0. then acc else (v, c) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> compare a b) merged

let add_constraint ?name t terms sense rhs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nvars then invalid_arg "Model.add_constraint: unknown variable")
    terms;
  let r = Dyn.length t.rows in
  let rname = match name with Some n -> n | None -> Printf.sprintf "r%d" r in
  Dyn.add t.rows { terms = merge_terms terms; sense; rhs; rname };
  r

let set_obj t v c =
  if v < 0 || v >= t.nvars then invalid_arg "Model.set_obj";
  t.objs.(v) <- c

let set_upper t v ub =
  if v < 0 || v >= t.nvars then invalid_arg "Model.set_upper";
  if ub < 0. || Float.is_nan ub then invalid_arg "Model.set_upper: negative upper bound";
  t.ubs.(v) <- ub

let num_vars t = t.nvars
let num_rows t = Dyn.length t.rows
let var_name t v = t.vnames.(v)
let row_name t r = (Dyn.get t.rows r).rname
let objective_coeff t v = t.objs.(v)
let var_upper t v = t.ubs.(v)
let row_terms t r = (Dyn.get t.rows r).terms
let row_sense t r = (Dyn.get t.rows r).sense
let row_rhs t r = (Dyn.get t.rows r).rhs

let row_activity t x r =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. (row_terms t r)

let is_feasible ?(tol = 1e-6) t x =
  if Array.length x < t.nvars then false
  else begin
    let ok = ref true in
    for v = 0 to t.nvars - 1 do
      if x.(v) < -.tol || x.(v) > t.ubs.(v) +. tol then ok := false
    done;
    Dyn.iter
      (fun { terms; sense; rhs; _ } ->
        let act = List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0. terms in
        let row_ok =
          match sense with
          | Le -> act <= rhs +. tol
          | Ge -> act >= rhs -. tol
          | Eq -> abs_float (act -. rhs) <= tol
        in
        if not row_ok then ok := false)
      t.rows;
    !ok
  end

type csc = { col_ptr : int array; row_ind : int array; values : float array }

(* Column-compressed form of the structural constraint matrix, built in one
   pass over the rows so each column's entries come out in increasing row
   order.  This is the once-per-solve layout the simplex engine works from,
   replacing per-pivot walks over the [terms] assoc lists. *)
let to_csc t =
  let n = t.nvars and m = num_rows t in
  let col_ptr = Array.make (n + 1) 0 in
  Dyn.iter
    (fun r -> List.iter (fun (v, _) -> col_ptr.(v + 1) <- col_ptr.(v + 1) + 1) r.terms)
    t.rows;
  for v = 1 to n do
    col_ptr.(v) <- col_ptr.(v) + col_ptr.(v - 1)
  done;
  let nnz = col_ptr.(n) in
  let row_ind = Array.make nnz 0 and values = Array.make nnz 0. in
  let fill = Array.sub col_ptr 0 (max n 1) in
  for r = 0 to m - 1 do
    List.iter
      (fun (v, c) ->
        let k = fill.(v) in
        row_ind.(k) <- r;
        values.(k) <- c;
        fill.(v) <- k + 1)
      (Dyn.get t.rows r).terms
  done;
  { col_ptr; row_ind; values }

let pp_stats fmt t =
  let nnz = ref 0 in
  Dyn.iter (fun r -> nnz := !nnz + List.length r.terms) t.rows;
  Format.fprintf fmt "lp: %d vars, %d rows, %d nonzeros" t.nvars (num_rows t) !nnz
