(** Linear-program construction.

    A model is a minimization problem over non-negative variables

    {v  minimize  c'x   subject to   a_i'x  (<= | >= | =)  b_i,   x >= 0  v}

    built incrementally: declare variables with objective coefficients, then
    add constraint rows as sparse term lists.  The model is solved by
    {!Simplex.solve}, which always returns a vertex (basic) solution — a
    property both rounding procedures in flowsched_core rely on. *)

type t

type var = int
(** Variable handle: a dense index in [\[0, num_vars)]. *)

type row = int
(** Constraint handle: a dense index in [\[0, num_rows)]. *)

type sense = Le | Ge | Eq

val create : unit -> t

val add_var : ?name:string -> ?obj:float -> ?ub:float -> t -> var
(** Declares a non-negative variable with objective coefficient [obj]
    (default [0.]) and declared upper bound [ub] (default [infinity], i.e.
    unbounded above).  A finite bound is enforced by the simplex engine's
    bounded-variable ratio test rather than an explicit [x <= ub] row, so it
    adds no row to the model.  Raises [Invalid_argument] on a negative or
    NaN bound. *)

val add_constraint : ?name:string -> t -> (var * float) list -> sense -> float -> row
(** [add_constraint t terms sense rhs] adds the row [terms sense rhs].
    Duplicate variables in [terms] are summed.  Raises [Invalid_argument] on
    an out-of-range variable. *)

val set_obj : t -> var -> float -> unit
(** Overwrites the objective coefficient of a variable. *)

val set_upper : t -> var -> float -> unit
(** Overwrites the declared upper bound of a variable. *)

val num_vars : t -> int
val num_rows : t -> int
val var_name : t -> var -> string
val row_name : t -> row -> string
val objective_coeff : t -> var -> float

val var_upper : t -> var -> float
(** Declared upper bound; [infinity] when the variable is unbounded. *)

val row_terms : t -> row -> (var * float) list
val row_sense : t -> row -> sense
val row_rhs : t -> row -> float

val row_activity : t -> float array -> row -> float
(** [row_activity t x r] is [a_r' x] for a full assignment [x]. *)

val is_feasible : ?tol:float -> t -> float array -> bool
(** Checks all rows, non-negativity and declared upper bounds within
    tolerance [tol] (default [1e-6]). *)

type csc = { col_ptr : int array; row_ind : int array; values : float array }
(** Compressed sparse column form of the structural constraint matrix:
    column [v]'s entries live at indices [col_ptr.(v) .. col_ptr.(v+1) - 1]
    of [row_ind]/[values], in increasing row order. *)

val to_csc : t -> csc
(** One-pass CSC snapshot of the current rows.  Duplicate terms were already
    merged by {!add_constraint}, so each (row, column) pair appears once. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary: variables, rows, non-zeros. *)
