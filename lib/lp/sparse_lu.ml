exception Singular

type t = {
  m : int;
  l_idx : int array array; (* per pivot k: pivot coords i > k, unit diagonal *)
  l_val : float array array;
  u_idx : int array array; (* per pivot k: pivot coords i < k *)
  u_val : float array array;
  u_diag : float array;
  p : int array; (* pivot position -> original row *)
  q : int array; (* pivot position -> column slot *)
  z : float array; (* scratch for the triangular solves *)
  nnz : int;
}

(* Threshold partial pivoting: rows within [threshold] of the column maximum
   are eligible, and sparsity (static row count) picks among them. *)
let threshold = 0.1

let empty = { m = 0; l_idx = [||]; l_val = [||]; u_idx = [||]; u_val = [||];
              u_diag = [||]; p = [||]; q = [||]; z = [||]; nnz = 0 }

let factorize ~m ~col =
  if m = 0 then empty
  else begin
    let cols = Array.init m col in
    let row_count = Array.make m 0 in
    Array.iter
      (fun (ri, _) ->
        Array.iter
          (fun r ->
            if r < 0 || r >= m then invalid_arg "Sparse_lu.factorize: row out of range";
            row_count.(r) <- row_count.(r) + 1)
          ri)
      cols;
    (* Static Markowitz approximation: eliminate thin columns first. *)
    let order = Array.init m (fun s -> s) in
    Array.sort
      (fun a b ->
        let c = compare (Array.length (fst cols.(a))) (Array.length (fst cols.(b))) in
        if c <> 0 then c else compare a b)
      order;
    let pinv = Array.make m (-1) in
    let p = Array.make m (-1) and q = Array.make m (-1) in
    let u_diag = Array.make m 0. in
    (* L columns are indexed by original row during elimination (the DFS
       walks original rows); they are remapped to pivot coordinates once the
       row permutation is complete. *)
    let l_idx = Array.make m [||] and l_val = Array.make m [||] in
    let u_idx = Array.make m [||] and u_val = Array.make m [||] in
    let x = Array.make m 0. in
    let mark = Array.make m (-1) in
    let topo = Array.make m 0 in
    let stack = Array.make m 0 in
    let sptr = Array.make m 0 in
    let nnz = ref m in
    for k = 0 to m - 1 do
      let s = order.(k) in
      let crows, cvals = cols.(s) in
      if Array.length crows = 0 then raise Singular;
      (* Symbolic step: the nonzero pattern of L^-1 A_s is the set of rows
         reachable from the column's rows through already-eliminated L
         columns; a DFS postorder gives it in topological order. *)
      let top = ref m in
      for e = 0 to Array.length crows - 1 do
        let seed = crows.(e) in
        if mark.(seed) <> k then begin
          let depth = ref 0 in
          stack.(0) <- seed;
          sptr.(0) <- 0;
          mark.(seed) <- k;
          while !depth >= 0 do
            let v = stack.(!depth) in
            let j = pinv.(v) in
            let children = if j >= 0 then l_idx.(j) else [||] in
            let nc = Array.length children in
            let cur = ref sptr.(!depth) in
            while !cur < nc && mark.(children.(!cur)) = k do
              incr cur
            done;
            if !cur < nc then begin
              let c = children.(!cur) in
              sptr.(!depth) <- !cur + 1;
              mark.(c) <- k;
              incr depth;
              stack.(!depth) <- c;
              sptr.(!depth) <- 0
            end
            else begin
              decr top;
              topo.(!top) <- v;
              decr depth
            end
          done
        end
      done;
      (* Numeric step: scatter the column and eliminate in reverse
         postorder (dependencies first). *)
      for e = 0 to Array.length crows - 1 do
        x.(crows.(e)) <- x.(crows.(e)) +. cvals.(e)
      done;
      for t = !top to m - 1 do
        let v = topo.(t) in
        let j = pinv.(v) in
        if j >= 0 then begin
          let xv = x.(v) in
          if xv <> 0. then begin
            let ci = l_idx.(j) and cv = l_val.(j) in
            for e = 0 to Array.length ci - 1 do
              x.(ci.(e)) <- x.(ci.(e)) -. (cv.(e) *. xv)
            done
          end
        end
      done;
      (* Pivot selection over the not-yet-pivoted pattern rows. *)
      let vmax = ref 0. in
      for t = !top to m - 1 do
        let v = topo.(t) in
        if pinv.(v) < 0 then begin
          let a = abs_float x.(v) in
          if a > !vmax then vmax := a
        end
      done;
      if !vmax < 1e-11 then begin
        for t = !top to m - 1 do
          x.(topo.(t)) <- 0.
        done;
        raise Singular
      end;
      let prow = ref (-1) and pcount = ref max_int and pmag = ref 0. in
      for t = !top to m - 1 do
        let v = topo.(t) in
        if pinv.(v) < 0 then begin
          let a = abs_float x.(v) in
          if
            a >= threshold *. !vmax
            && (row_count.(v) < !pcount || (row_count.(v) = !pcount && a > !pmag))
          then begin
            pcount := row_count.(v);
            pmag := a;
            prow := v
          end
        end
      done;
      let prow = !prow in
      let piv = x.(prow) in
      let nu = ref 0 and nl = ref 0 in
      for t = !top to m - 1 do
        let v = topo.(t) in
        if v <> prow && x.(v) <> 0. then
          if pinv.(v) >= 0 then incr nu else incr nl
      done;
      let ui = Array.make !nu 0 and uv = Array.make !nu 0. in
      let li = Array.make !nl 0 and lv = Array.make !nl 0. in
      let iu = ref 0 and il = ref 0 in
      for t = !top to m - 1 do
        let v = topo.(t) in
        if v <> prow then begin
          let xv = x.(v) in
          if xv <> 0. then
            if pinv.(v) >= 0 then begin
              ui.(!iu) <- pinv.(v);
              uv.(!iu) <- xv;
              incr iu
            end
            else begin
              li.(!il) <- v;
              lv.(!il) <- xv /. piv;
              incr il
            end
        end;
        x.(v) <- 0.
      done;
      u_idx.(k) <- ui;
      u_val.(k) <- uv;
      l_idx.(k) <- li;
      l_val.(k) <- lv;
      u_diag.(k) <- piv;
      p.(k) <- prow;
      pinv.(prow) <- k;
      q.(k) <- s;
      nnz := !nnz + !nu + !nl
    done;
    for k = 0 to m - 1 do
      let li = l_idx.(k) in
      for e = 0 to Array.length li - 1 do
        li.(e) <- pinv.(li.(e))
      done
    done;
    { m; l_idx; l_val; u_idx; u_val; u_diag; p; q; z = Array.make m 0.; nnz = !nnz }
  end

let nnz t = t.nnz

let solve t b w =
  let m = t.m in
  let z = t.z in
  for k = 0 to m - 1 do
    z.(k) <- b.(t.p.(k))
  done;
  for k = 0 to m - 1 do
    let v = z.(k) in
    if v <> 0. then begin
      let li = t.l_idx.(k) and lv = t.l_val.(k) in
      for e = 0 to Array.length li - 1 do
        z.(li.(e)) <- z.(li.(e)) -. (lv.(e) *. v)
      done
    end
  done;
  for k = m - 1 downto 0 do
    let v = z.(k) /. t.u_diag.(k) in
    z.(k) <- v;
    if v <> 0. then begin
      let ui = t.u_idx.(k) and uv = t.u_val.(k) in
      for e = 0 to Array.length ui - 1 do
        z.(ui.(e)) <- z.(ui.(e)) -. (uv.(e) *. v)
      done
    end
  done;
  for k = 0 to m - 1 do
    w.(t.q.(k)) <- z.(k)
  done

let solve_t t c y =
  let m = t.m in
  let z = t.z in
  for k = 0 to m - 1 do
    z.(k) <- c.(t.q.(k))
  done;
  (* U^T is lower triangular in pivot coordinates: forward substitution
     reading U's columns as rows of the transpose. *)
  for k = 0 to m - 1 do
    let ui = t.u_idx.(k) and uv = t.u_val.(k) in
    let acc = ref z.(k) in
    for e = 0 to Array.length ui - 1 do
      acc := !acc -. (uv.(e) *. z.(ui.(e)))
    done;
    z.(k) <- !acc /. t.u_diag.(k)
  done;
  for k = m - 1 downto 0 do
    let li = t.l_idx.(k) and lv = t.l_val.(k) in
    let acc = ref z.(k) in
    for e = 0 to Array.length li - 1 do
      acc := !acc -. (lv.(e) *. z.(li.(e)))
    done;
    z.(k) <- !acc
  done;
  for k = 0 to m - 1 do
    y.(t.p.(k)) <- z.(k)
  done
