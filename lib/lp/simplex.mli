(** Two-phase sparse revised simplex over {!Model}, with warm starts and
    bounded variables.

    The constraint matrix is held in compressed sparse column form (built
    once per solve) and the basis is represented by a sparse LU
    factorization ({!Sparse_lu}: Gilbert–Peierls elimination with threshold
    partial pivoting and a static Markowitz column order) plus a
    product-form eta file appended on each pivot; the file is folded back
    into a fresh factorization when it grows too long, accumulates too much
    fill relative to the factors, or after an ill-conditioned pivot.  Both
    ftran and btran therefore run in time proportional to the nonzeros
    involved rather than [rows^2].

    The solver falls back to Bland's rule after long degenerate streaks so
    it cannot cycle.  Pricing is partial with devex reference weights: a
    rotating candidate window is scanned per pivot, the best eligible column
    by [d^2 / weight] wins, and a full scan (against freshly computed duals)
    only confirms optimality.

    Variables may carry a declared upper bound ({!Model.add_var}'s [?ub]):
    such a column can sit nonbasic at either bound, the ratio test is
    two-sided, and a pivot limited by the entering column's own bound
    degenerates to a bound flip with no basis change.  Optimal results are
    vertex (basic feasible) solutions: at most [num_rows] variables take
    values strictly between their bounds, which is exactly the property the
    iterative-rounding procedures of the paper need from the LP oracle.

    Warm starts: [solve ~warm] takes a basis description from a previous,
    related solve ([result.basis]), crash-installs it onto the fresh
    tableau, validates it by refactorization, and skips phase 1 entirely
    when the installed basis is already primal feasible.  A singular or
    infeasible warm basis silently falls back to the cold all-slack start,
    so a warm solve is always correct — at worst it is not faster. *)

type status = Optimal | Infeasible | Unbounded

type basis_entry = Basic_var of int | Basic_slack of int | Nonbasic_upper of int
(** One entry of a model-level basis description: a basic structural
    variable (by {!Model.var} id), the basic slack/surplus of a model row
    (by row id), or a nonbasic structural variable parked at its declared
    upper bound.  Rows not covered by the basic entries keep their default
    slack/artificial; variables not named by a [Nonbasic_upper] entry start
    at their lower bound. *)

type basis = basis_entry array

type result = {
  status : status;
  objective : float;  (** Meaningful only when [status = Optimal]. *)
  values : float array;  (** Structural variable values, length [num_vars]. *)
  duals : float array;  (** One dual per model row, phase-2 prices. *)
  iterations : int;
  basis : basis;
      (** Final optimal basis, for warm-starting a related solve; [[||]]
          unless [status = Optimal]. *)
}

type counters = {
  mutable solves : int;
  mutable pivots : int;  (** Simplex iterations across all solves. *)
  mutable ftran_calls : int;
  mutable refactorizations : int;
  mutable full_pricing_scans : int;
  mutable partial_pricing_rounds : int;
  mutable warm_attempts : int;
  mutable warm_accepted : int;  (** Warm bases installed and primal feasible. *)
  mutable phase1_skipped : int;
  mutable basis_nnz : int;
      (** Nonzeros of the basis matrices factorized, summed over
          refactorizations; [factor_nnz /. basis_nnz] is the mean fill-in
          ratio of the sparse LU. *)
  mutable factor_nnz : int;
      (** Nonzeros of the L and U factors produced, summed over
          refactorizations. *)
  mutable eta_nnz : int;
      (** Nonzeros appended to product-form eta files, summed over pivots. *)
  mutable bound_flips : int;
      (** Ratio tests resolved by flipping the entering column to its other
          bound (no basis change; not counted in [pivots]). *)
  mutable phase1_seconds : float;
  mutable phase2_seconds : float;
}
(** Cumulative solver statistics since the last {!reset_counters}.

    {b Deprecated interface}: the authoritative store is now the
    process-wide {!Flowsched_obs.Metrics} registry, under the
    ["simplex.*"] names ([simplex.solves], [simplex.pivots],
    [simplex.ftran_calls], ...); this record is a shim read off those
    handles and kept for existing callers.  New code should read the
    registry — unlike this record, registry snapshots merge across the
    worker-pool fork boundary.  Prefer bracketing a section with
    {!read_counters} and {!diff_counters} over calling {!reset_counters},
    which zeroes the shared registry for every other reader in the
    process. *)

val read_counters : unit -> counters
(** Snapshot (a copy; safe to retain) of the registry-backed counters. *)

val reset_counters : unit -> unit
(** Zero the ["simplex.*"] registry metrics (and hence this record).
    Deprecated for new code — see {!type:counters}. *)

val diff_counters : counters -> counters -> counters
(** [diff_counters after before]: field-wise subtraction, for per-section
    accounting without resetting the shared registry. *)

exception Iteration_limit of int
(** Raised if the pivot count exceeds the caller's budget — indicates a bug
    or a degenerate pathological instance, not a normal outcome. *)

val solve : ?max_iters:int -> ?warm:basis_entry list -> Model.t -> result
(** [solve model] minimizes the model objective.  [max_iters] defaults to
    [200 * (rows + vars) + 5000].  [warm] seeds the starting basis from a
    previous related solve; invalid entries are ignored and an unusable
    basis falls back to a cold start. *)

val solve_or_fail : ?max_iters:int -> ?warm:basis_entry list -> Model.t -> result
(** Like {!solve} but raises [Failure] on [Infeasible]/[Unbounded]; handy
    where feasibility is known by construction. *)
