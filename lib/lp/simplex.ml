type status = Optimal | Infeasible | Unbounded

type basis_entry = Basic_var of int | Basic_slack of int | Nonbasic_upper of int

type basis = basis_entry array

type result = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  basis : basis;
}

type counters = {
  mutable solves : int;
  mutable pivots : int;
  mutable ftran_calls : int;
  mutable refactorizations : int;
  mutable full_pricing_scans : int;
  mutable partial_pricing_rounds : int;
  mutable warm_attempts : int;
  mutable warm_accepted : int;
  mutable phase1_skipped : int;
  mutable basis_nnz : int;
  mutable factor_nnz : int;
  mutable eta_nnz : int;
  mutable bound_flips : int;
  mutable phase1_seconds : float;
  mutable phase2_seconds : float;
}

module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

(* The solver's event counts live in the process-wide metrics registry under
   "simplex.*", so they survive the worker-pool fork boundary (workers ship
   registry diffs back in their result frames) and show up next to the rest
   of the pipeline's metrics.  [read_counters]/[reset_counters] below are a
   back-compat shim over these handles. *)
let c_solves = Metrics.counter "simplex.solves"
let c_pivots = Metrics.counter "simplex.pivots"
let c_ftran = Metrics.counter "simplex.ftran_calls"
let c_refactorizations = Metrics.counter "simplex.refactorizations"
let c_full_pricing_scans = Metrics.counter "simplex.full_pricing_scans"
let c_partial_pricing_rounds = Metrics.counter "simplex.partial_pricing_rounds"
let c_warm_attempts = Metrics.counter "simplex.warm_attempts"
let c_warm_accepted = Metrics.counter "simplex.warm_accepted"
let c_phase1_skipped = Metrics.counter "simplex.phase1_skipped"
let c_basis_nnz = Metrics.counter "simplex.basis_nnz"
let c_factor_nnz = Metrics.counter "simplex.factor_nnz"
let c_eta_nnz = Metrics.counter "simplex.eta_nnz"
let c_bound_flips = Metrics.counter "simplex.bound_flips"
let g_phase1_seconds = Metrics.gauge "simplex.phase1_seconds"
let g_phase2_seconds = Metrics.gauge "simplex.phase2_seconds"

let reset_counters () =
  let zero c = Metrics.incr ~by:(-Metrics.counter_value c) c in
  zero c_solves;
  zero c_pivots;
  zero c_ftran;
  zero c_refactorizations;
  zero c_full_pricing_scans;
  zero c_partial_pricing_rounds;
  zero c_warm_attempts;
  zero c_warm_accepted;
  zero c_phase1_skipped;
  zero c_basis_nnz;
  zero c_factor_nnz;
  zero c_eta_nnz;
  zero c_bound_flips;
  Metrics.set_gauge g_phase1_seconds 0.;
  Metrics.set_gauge g_phase2_seconds 0.

let read_counters () =
  {
    solves = Metrics.counter_value c_solves;
    pivots = Metrics.counter_value c_pivots;
    ftran_calls = Metrics.counter_value c_ftran;
    refactorizations = Metrics.counter_value c_refactorizations;
    full_pricing_scans = Metrics.counter_value c_full_pricing_scans;
    partial_pricing_rounds = Metrics.counter_value c_partial_pricing_rounds;
    warm_attempts = Metrics.counter_value c_warm_attempts;
    warm_accepted = Metrics.counter_value c_warm_accepted;
    phase1_skipped = Metrics.counter_value c_phase1_skipped;
    basis_nnz = Metrics.counter_value c_basis_nnz;
    factor_nnz = Metrics.counter_value c_factor_nnz;
    eta_nnz = Metrics.counter_value c_eta_nnz;
    bound_flips = Metrics.counter_value c_bound_flips;
    phase1_seconds = Metrics.gauge_value g_phase1_seconds;
    phase2_seconds = Metrics.gauge_value g_phase2_seconds;
  }

let diff_counters a b =
  {
    solves = a.solves - b.solves;
    pivots = a.pivots - b.pivots;
    ftran_calls = a.ftran_calls - b.ftran_calls;
    refactorizations = a.refactorizations - b.refactorizations;
    full_pricing_scans = a.full_pricing_scans - b.full_pricing_scans;
    partial_pricing_rounds = a.partial_pricing_rounds - b.partial_pricing_rounds;
    warm_attempts = a.warm_attempts - b.warm_attempts;
    warm_accepted = a.warm_accepted - b.warm_accepted;
    phase1_skipped = a.phase1_skipped - b.phase1_skipped;
    basis_nnz = a.basis_nnz - b.basis_nnz;
    factor_nnz = a.factor_nnz - b.factor_nnz;
    eta_nnz = a.eta_nnz - b.eta_nnz;
    bound_flips = a.bound_flips - b.bound_flips;
    phase1_seconds = a.phase1_seconds -. b.phase1_seconds;
    phase2_seconds = a.phase2_seconds -. b.phase2_seconds;
  }

exception Iteration_limit of int

let eps_pivot = 1e-9
let eps_cost = 1e-7
let eps_feas = 1e-8

(* The product-form eta file is capped: hitting the cap (or an eta-nnz blowup
   relative to the factor size) triggers refactorization, so the per-solve
   working set stays O(nnz). *)
let eta_cap = 64

(* Standard-form tableau shared by both phases.  The constraint matrix over
   all tableau columns (structural + slack + artificial) is held in CSC form
   for ftran/pricing and CSR form for the devex pivot-row pass; both are
   built once per solve.  The basis is represented by a sparse LU
   factorization plus a product-form eta file appended on each pivot. *)
type tab = {
  m : int; (* rows *)
  ncols : int; (* structural + slack + artificial columns *)
  n_struct : int;
  col_ptr : int array; (* CSC: column j at col_idx/col_val[col_ptr.(j) ..) *)
  col_idx : int array;
  col_val : float array;
  row_ptr : int array; (* CSR of the same matrix, for pivot-row products *)
  row_idx : int array;
  row_val : float array;
  cost2 : float array; (* phase-2 objective per column *)
  upper : float array; (* per-column upper bound, [infinity] if none *)
  is_artificial : bool array;
  slack_of_row : int array; (* slack/surplus column of each row, -1 for Eq *)
  b : float array; (* right-hand side, >= 0 *)
  row_flip : bool array; (* true when the model row was negated *)
  basis : int array; (* column basic in each row slot *)
  basis0 : int array; (* the all-slack/artificial starting basis *)
  in_basis : bool array;
  at_upper : bool array; (* nonbasic column sitting at its upper bound *)
  xb : float array; (* basic variable values, per slot *)
  mutable lu : Sparse_lu.t; (* factors of the basis at last refactorization *)
  mutable eta_n : int; (* product-form etas appended since then *)
  mutable eta_live_nnz : int;
  eta_slot : int array; (* per eta: the replaced basis slot r *)
  eta_piv : float array; (* per eta: w_r *)
  eta_idx : int array array; (* per eta: support slots, r excluded *)
  eta_val : float array array;
  work_b : float array; (* scratch, row space *)
  work_c : float array; (* scratch, slot space *)
  work_w : float array; (* ftran image scratch, slot space *)
}

(* Slot [slot]'s basis column as (rows, vals), for Sparse_lu. *)
let basis_col tab slot =
  let j = tab.basis.(slot) in
  let s = tab.col_ptr.(j) and e = tab.col_ptr.(j + 1) in
  (Array.sub tab.col_idx s (e - s), Array.sub tab.col_val s (e - s))

let factor_current_basis tab = Sparse_lu.factorize ~m:tab.m ~col:(basis_col tab)

let build model =
  let m = Model.num_rows model in
  let n_struct = Model.num_vars model in
  (* Count extra columns after normalizing each row to b >= 0: one
     slack/surplus per inequality, one artificial per Ge/Eq row. *)
  let n_slack = ref 0 and n_art = ref 0 in
  let senses = Array.make m Model.Le in
  let row_flip = Array.make m false in
  let b = Array.make m 0. in
  for r = 0 to m - 1 do
    let rhs = Model.row_rhs model r in
    let sense = Model.row_sense model r in
    let sense, rhs, flip =
      if rhs < 0. then
        ( (match sense with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq),
          -.rhs,
          true )
      else (sense, rhs, false)
    in
    senses.(r) <- sense;
    row_flip.(r) <- flip;
    b.(r) <- rhs;
    (match sense with
    | Model.Le | Model.Ge -> incr n_slack
    | Model.Eq -> ());
    (match sense with Model.Ge | Model.Eq -> incr n_art | Model.Le -> ())
  done;
  let ncols = n_struct + !n_slack + !n_art in
  let csc = Model.to_csc model in
  let nnz_struct = csc.Model.col_ptr.(n_struct) in
  let nnz_total = nnz_struct + !n_slack + !n_art in
  let col_ptr = Array.make (ncols + 1) 0 in
  let col_idx = Array.make (max nnz_total 1) 0 in
  let col_val = Array.make (max nnz_total 1) 0. in
  Array.blit csc.Model.col_ptr 0 col_ptr 0 (n_struct + 1);
  Array.blit csc.Model.row_ind 0 col_idx 0 nnz_struct;
  for e = 0 to nnz_struct - 1 do
    let r = csc.Model.row_ind.(e) in
    col_val.(e) <- (if row_flip.(r) then -.csc.Model.values.(e) else csc.Model.values.(e))
  done;
  let cost2 = Array.make ncols 0. in
  let upper = Array.make ncols infinity in
  for v = 0 to n_struct - 1 do
    cost2.(v) <- Model.objective_coeff model v;
    upper.(v) <- Model.var_upper model v
  done;
  let is_artificial = Array.make ncols false in
  let slack_of_row = Array.make m (-1) in
  let basis = Array.make m (-1) in
  let next = ref n_struct and epos = ref nnz_struct in
  let push_singleton r v =
    col_ptr.(!next) <- !epos;
    col_idx.(!epos) <- r;
    col_val.(!epos) <- v;
    incr epos;
    col_ptr.(!next + 1) <- !epos
  in
  (* Slack/surplus columns; slacks of Le rows start basic. *)
  for r = 0 to m - 1 do
    match senses.(r) with
    | Model.Le ->
        push_singleton r 1.;
        slack_of_row.(r) <- !next;
        basis.(r) <- !next;
        incr next
    | Model.Ge ->
        push_singleton r (-1.);
        slack_of_row.(r) <- !next;
        incr next
    | Model.Eq -> ()
  done;
  (* Artificial columns for Ge/Eq rows start basic. *)
  for r = 0 to m - 1 do
    match senses.(r) with
    | Model.Ge | Model.Eq ->
        push_singleton r 1.;
        is_artificial.(!next) <- true;
        basis.(r) <- !next;
        incr next
    | Model.Le -> ()
  done;
  assert (!next = ncols && !epos = nnz_total);
  (* CSR transpose, for the devex pivot-row pass. *)
  let row_ptr = Array.make (m + 1) 0 in
  for e = 0 to nnz_total - 1 do
    row_ptr.(col_idx.(e) + 1) <- row_ptr.(col_idx.(e) + 1) + 1
  done;
  for r = 1 to m do
    row_ptr.(r) <- row_ptr.(r) + row_ptr.(r - 1)
  done;
  let row_idx = Array.make (max nnz_total 1) 0 in
  let row_val = Array.make (max nnz_total 1) 0. in
  let fill = Array.sub row_ptr 0 (max m 1) in
  for j = 0 to ncols - 1 do
    for e = col_ptr.(j) to col_ptr.(j + 1) - 1 do
      let r = col_idx.(e) in
      row_idx.(fill.(r)) <- j;
      row_val.(fill.(r)) <- col_val.(e);
      fill.(r) <- fill.(r) + 1
    done
  done;
  let in_basis = Array.make ncols false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  (* The starting basis is the identity (unit slacks/artificials): its
     factorization is trivial and not counted as a refactorization. *)
  let lu0 =
    Sparse_lu.factorize ~m ~col:(fun slot ->
        let j = basis.(slot) in
        let s = col_ptr.(j) and e = col_ptr.(j + 1) in
        (Array.sub col_idx s (e - s), Array.sub col_val s (e - s)))
  in
  let tab =
    {
      m;
      ncols;
      n_struct;
      col_ptr;
      col_idx;
      col_val;
      row_ptr;
      row_idx;
      row_val;
      cost2;
      upper;
      is_artificial;
      slack_of_row;
      b;
      row_flip;
      basis;
      basis0 = Array.copy basis;
      in_basis;
      at_upper = Array.make ncols false;
      xb = Array.copy b;
      lu = lu0;
      eta_n = 0;
      eta_live_nnz = 0;
      eta_slot = Array.make eta_cap 0;
      eta_piv = Array.make eta_cap 0.;
      eta_idx = Array.make eta_cap [||];
      eta_val = Array.make eta_cap [||];
      work_b = Array.make (max m 1) 0.;
      work_c = Array.make (max m 1) 0.;
      work_w = Array.make (max m 1) 0.;
    }
  in
  tab

(* Restore the pristine all-slack/artificial basis. *)
let reset_basis tab =
  Array.blit tab.basis0 0 tab.basis 0 tab.m;
  Array.fill tab.in_basis 0 tab.ncols false;
  Array.iter (fun j -> tab.in_basis.(j) <- true) tab.basis;
  Array.fill tab.at_upper 0 tab.ncols false;
  tab.eta_n <- 0;
  tab.eta_live_nnz <- 0;
  tab.lu <- factor_current_basis tab;
  Array.blit tab.b 0 tab.xb 0 tab.m

(* w := B^-1 * A_j: sparse LU solve, then the eta-file inverses applied
   oldest-first.  O(m + nnz(factors) + nnz(etas)). *)
let ftran tab j w =
  Metrics.incr c_ftran;
  let m = tab.m in
  if m > 0 then begin
    let wb = tab.work_b in
    Array.fill wb 0 m 0.;
    for e = tab.col_ptr.(j) to tab.col_ptr.(j + 1) - 1 do
      wb.(tab.col_idx.(e)) <- tab.col_val.(e)
    done;
    Sparse_lu.solve tab.lu wb w;
    for i = 0 to tab.eta_n - 1 do
      let r = tab.eta_slot.(i) in
      let t = w.(r) /. tab.eta_piv.(i) in
      w.(r) <- t;
      if t <> 0. then begin
        let ei = tab.eta_idx.(i) and ev = tab.eta_val.(i) in
        for e = 0 to Array.length ei - 1 do
          w.(ei.(e)) <- w.(ei.(e)) -. (ev.(e) *. t)
        done
      end
    done
  end

(* y := B^-T * c for a slot-space vector [c] (clobbered): eta transposes
   newest-first, then the LU transpose solve.  [y] is row-space. *)
let btran tab c y =
  let m = tab.m in
  if m > 0 then begin
    for i = tab.eta_n - 1 downto 0 do
      let r = tab.eta_slot.(i) in
      let ei = tab.eta_idx.(i) and ev = tab.eta_val.(i) in
      let acc = ref c.(r) in
      for e = 0 to Array.length ei - 1 do
        acc := !acc -. (ev.(e) *. c.(ei.(e)))
      done;
      c.(r) <- !acc /. tab.eta_piv.(i)
    done;
    Sparse_lu.solve_t tab.lu c y
  end

(* y := c_B^T * B^-1 for the given per-column cost vector. *)
let compute_duals tab cost y =
  if tab.m > 0 then begin
    let c = tab.work_c in
    for i = 0 to tab.m - 1 do
      c.(i) <- cost.(tab.basis.(i))
    done;
    btran tab c y
  end

let reduced_cost tab cost y j =
  let acc = ref cost.(j) in
  for e = tab.col_ptr.(j) to tab.col_ptr.(j + 1) - 1 do
    acc := !acc -. (y.(tab.col_idx.(e)) *. tab.col_val.(e))
  done;
  !acc

(* Refactorize: fresh sparse LU of the current basis, drop the eta file, and
   recompute xb from the effective right-hand side (declared bounds of
   nonbasic-at-upper columns move to the rhs). *)
let refactorize tab =
  Metrics.incr c_refactorizations;
  let bnnz = ref 0 in
  for i = 0 to tab.m - 1 do
    let j = tab.basis.(i) in
    bnnz := !bnnz + (tab.col_ptr.(j + 1) - tab.col_ptr.(j))
  done;
  Metrics.incr ~by:!bnnz c_basis_nnz;
  (match factor_current_basis tab with
  | exception Sparse_lu.Singular -> failwith "Simplex.refactorize: singular basis"
  | lu ->
      tab.lu <- lu;
      Metrics.incr ~by:(Sparse_lu.nnz lu) c_factor_nnz);
  tab.eta_n <- 0;
  tab.eta_live_nnz <- 0;
  if tab.m > 0 then begin
    let wb = tab.work_b in
    Array.blit tab.b 0 wb 0 tab.m;
    for j = 0 to tab.ncols - 1 do
      if tab.at_upper.(j) then begin
        let u = tab.upper.(j) in
        for e = tab.col_ptr.(j) to tab.col_ptr.(j + 1) - 1 do
          wb.(tab.col_idx.(e)) <- wb.(tab.col_idx.(e)) -. (u *. tab.col_val.(e))
        done
      end
    done;
    Sparse_lu.solve tab.lu wb tab.xb;
    for i = 0 to tab.m - 1 do
      if tab.xb.(i) < 0. && tab.xb.(i) > -.eps_feas then tab.xb.(i) <- 0.
    done
  end

(* Append a product-form eta for pivoting the column with ftran image [w]
   into slot [r]: B_new = B_old * E with E's column r replaced by w. *)
let append_eta tab w r =
  let m = tab.m in
  let n = ref 0 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then incr n
  done;
  let ei = Array.make !n 0 and ev = Array.make !n 0. in
  let k = ref 0 in
  for i = 0 to m - 1 do
    if i <> r && w.(i) <> 0. then begin
      ei.(!k) <- i;
      ev.(!k) <- w.(i);
      incr k
    end
  done;
  let idx = tab.eta_n in
  tab.eta_slot.(idx) <- r;
  tab.eta_piv.(idx) <- w.(r);
  tab.eta_idx.(idx) <- ei;
  tab.eta_val.(idx) <- ev;
  tab.eta_n <- idx + 1;
  tab.eta_live_nnz <- tab.eta_live_nnz + !n + 1;
  Metrics.incr ~by:(!n + 1) c_eta_nnz

let change_basis tab r j =
  tab.in_basis.(tab.basis.(r)) <- false;
  tab.basis.(r) <- j;
  tab.in_basis.(j) <- true

let needs_refactor tab =
  tab.eta_n >= eta_cap
  || tab.eta_live_nnz > (2 * (Sparse_lu.nnz tab.lu + tab.m)) + 64

(* Install a caller-provided basis.  Two attempts:

   1. Direct install: assign the described basic columns to row slots
      (claimed slacks to their own rows, structural columns to the remaining
      slots, starting defaults elsewhere), factorize, and recompute xb with
      the nonbasic-at-upper statuses restored.  When the described basis is
      nonsingular and primal feasible — always the case for a basis taken
      from an optimal solve of the same model — this reproduces it exactly,
      so the subsequent solve skips phase 1 and confirms optimality with
      zero pivots.

   2. Greedy crash fallback, for cross-model bases (rows or columns that no
      longer exist, changed coefficients) where the direct basis comes out
      singular or infeasible: pivot the entries into the default basis by
      feasibility-preserving greedy Gaussian placement, refactorize, and
      check primal feasibility.

   Returns [true] when the tableau now holds a usable (feasible) warm basis;
   on [false] the caller must [reset_basis]. *)
let install_warm tab entries =
  let m = tab.m in
  if m = 0 || entries = [] then false
  else begin
    Metrics.incr c_warm_attempts;
    let wanted_slack = Array.make m false in
    let claimed = Array.make tab.n_struct false in
    let uppers_raw = ref [] in
    let cols =
      List.filter_map
        (function
          | Basic_var v ->
              if v >= 0 && v < tab.n_struct then begin
                claimed.(v) <- true;
                Some v
              end
              else None
          | Basic_slack r ->
              if r >= 0 && r < m && tab.slack_of_row.(r) >= 0 then begin
                wanted_slack.(r) <- true;
                Some tab.slack_of_row.(r)
              end
              else None
          | Nonbasic_upper v ->
              if v >= 0 && v < tab.n_struct && tab.upper.(v) < infinity then
                uppers_raw := v :: !uppers_raw;
              None)
        entries
    in
    let uppers = List.filter (fun v -> not claimed.(v)) !uppers_raw in
    let feasible_now () =
      let ok = ref true in
      for i = 0 to m - 1 do
        if tab.xb.(i) < -.eps_feas || tab.xb.(i) > tab.upper.(tab.basis.(i)) +. eps_feas
        then ok := false
      done;
      !ok
    in
    let direct () =
      (* Desired basis: claimed slacks on their own rows, structural columns
         on the remaining slots (which slot gets which column is irrelevant —
         a basis is a column set), defaults everywhere else. *)
      let desired = Array.make m (-1) in
      for r = 0 to m - 1 do
        if wanted_slack.(r) then desired.(r) <- tab.slack_of_row.(r)
      done;
      let free = ref [] in
      for i = m - 1 downto 0 do
        if desired.(i) < 0 then free := i :: !free
      done;
      let dup = Array.make tab.n_struct false in
      let fits = ref true in
      List.iter
        (fun j ->
          if j < tab.n_struct && not dup.(j) then begin
            dup.(j) <- true;
            match !free with
            | [] -> fits := false (* more basic entries than rows: malformed *)
            | i :: rest ->
                desired.(i) <- j;
                free := rest
          end)
        cols;
      List.iter (fun i -> desired.(i) <- tab.basis0.(i)) !free;
      if not !fits then false
      else begin
        Array.blit desired 0 tab.basis 0 m;
        Array.fill tab.in_basis 0 tab.ncols false;
        Array.iter (fun j -> tab.in_basis.(j) <- true) tab.basis;
        Array.fill tab.at_upper 0 tab.ncols false;
        List.iter (fun v -> tab.at_upper.(v) <- true) uppers;
        match refactorize tab with
        | exception Failure _ -> false (* singular: not a basis of this model *)
        | () -> feasible_now ()
      end
    in
    let crash () =
      (* Nonbasic-at-upper statuses shift the effective rhs; under the
         pristine identity basis xb is that shifted rhs directly.  If it is
         already infeasible the statuses are dropped wholesale — the crash
         below only preserves feasibility, it cannot repair it. *)
      List.iter (fun v -> tab.at_upper.(v) <- true) uppers;
      Array.blit tab.b 0 tab.xb 0 m;
      for j = 0 to tab.n_struct - 1 do
        if tab.at_upper.(j) then begin
          let u = tab.upper.(j) in
          for e = tab.col_ptr.(j) to tab.col_ptr.(j + 1) - 1 do
            tab.xb.(tab.col_idx.(e)) <- tab.xb.(tab.col_idx.(e)) -. (u *. tab.col_val.(e))
          done
        end
      done;
      let shifted_ok = ref true in
      for i = 0 to m - 1 do
        if tab.xb.(i) < -.eps_feas then shifted_ok := false
      done;
      if not !shifted_ok then begin
        Array.fill tab.at_upper 0 tab.ncols false;
        Array.blit tab.b 0 tab.xb 0 m
      end;
      let w = tab.work_w in
      let placed = ref 0 in
      (* Feasibility-preserving greedy crash: pivoting column [j] into row
         [i] rewrites the basic values through the eta matrix —
         xb'(i) = xb(i) / w(i), xb'(k) = xb(k) - w(k) * xb'(i) — so a
         candidate row is only eligible if every new value stays within its
         bounds.  The crash can therefore never break feasibility: columns
         that would are simply skipped, and the result is a partially-warm
         basis that is feasible by construction. *)
      let pivot_keeps_feasible j i =
        if abs_float w.(i) <= eps_pivot then false
        else begin
          let xi = tab.xb.(i) /. w.(i) in
          if xi < -.eps_feas || xi > tab.upper.(j) +. eps_feas then false
          else begin
            let ok = ref true in
            for k = 0 to m - 1 do
              if k <> i then begin
                let v = tab.xb.(k) -. (w.(k) *. xi) in
                if v < -.eps_feas || v > tab.upper.(tab.basis.(k)) +. eps_feas then
                  ok := false
              end
            done;
            !ok
          end
        end
      in
      List.iter
        (fun j ->
          if (not tab.in_basis.(j)) && not tab.at_upper.(j) then begin
            if tab.eta_n >= eta_cap then refactorize tab;
            ftran tab j w;
            (* Replace a default basic only: an artificial, or a row's own
               starting slack that the warm basis does not claim. *)
            let best = ref (-1) and best_v = ref 1e-7 in
            for i = 0 to m - 1 do
              let bi = tab.basis.(i) in
              let replaceable =
                tab.is_artificial.(bi)
                || (bi = tab.slack_of_row.(i) && not wanted_slack.(i))
              in
              if replaceable then begin
                let v = abs_float w.(i) in
                if v > !best_v && pivot_keeps_feasible j i then begin
                  best_v := v;
                  best := i
                end
              end
            done;
            if !best >= 0 then begin
              let r = !best in
              let xr = tab.xb.(r) /. w.(r) in
              for k = 0 to m - 1 do
                if k <> r then begin
                  let v = tab.xb.(k) -. (w.(k) *. xr) in
                  tab.xb.(k) <- (if v < 0. then 0. else v)
                end
              done;
              tab.xb.(r) <- (if xr < 0. then 0. else xr);
              append_eta tab w r;
              change_basis tab r j;
              incr placed
            end
          end)
        cols;
      if !placed = 0 then false
      else
        match refactorize tab with
        | exception Failure _ -> false
        | () -> feasible_now ()
    in
    if cols = [] && uppers = [] then false
    else begin
      let ok =
        direct ()
        ||
        (* [direct] may have left an arbitrary basis behind: restore the
           pristine starting state before crashing entries in one by one. *)
        (reset_basis tab;
         crash ())
      in
      if ok then Metrics.incr c_warm_accepted;
      ok
    end
  end

(* One simplex phase: minimize [cost] over columns with [allowed j = true].
   Returns [`Optimal] or [`Unbounded].  Mutates the tableau in place.

   The dual vector y = c_B B^-1 is maintained incrementally: after a pivot
   that enters column q with reduced cost d_q on slot r, the new duals are
   y' = y + d_q * (row r of the new B^-1); the row is obtained by one unit
   btran, so the update costs O(m + nnz) like everything else here.  A full
   recomputation happens periodically to bound numerical drift.

   Pricing is partial with devex weights: a rotating cursor scans windows of
   candidate columns and pivots on the best eligible column (by d^2 / weight)
   of the first window that offers one, falling back to a full scan (against
   freshly computed duals) only to confirm optimality.  Long degenerate
   streaks switch to Bland's rule, which needs the least-index eligible
   column and therefore a full scan.

   Bounded variables: a nonbasic column at its declared upper bound enters
   downward (eligible on a positive reduced cost), the ratio test is
   two-sided — a basic variable may leave at zero or at its own bound — and
   when the entering column's bound is the tightest limit the pivot
   degenerates to a bound flip with no basis change. *)
let run_phase tab cost allowed iter_budget iter_count =
  let m = tab.m in
  let y = Array.make m 0. in
  let rho = Array.make m 0. in
  let w = tab.work_w in
  let devex = Array.make tab.ncols 1. in
  let devex_max = ref 1. in
  let acc = Array.make tab.ncols 0. in
  let degenerate_streak = ref 0 in
  (* Bland's rule is the anti-cycling backstop of last resort, not a working
     mode: switching to it early starves devex exactly when the LP is most
     degenerate, and least-index creep then takes hundreds of thousands of
     zero-step pivots on the larger scheduling LPs (measured 40x the total
     pivot count at 850 rows).  Engage it only after a degenerate streak no
     devex run ever produces, scaled so it still fires well inside the
     iteration budget (which is ~200x this threshold). *)
  let bland_after = max 1000 (m + tab.ncols) in
  let since_dual_refresh = ref 0 in
  let cursor = ref 0 in
  let window = max 32 (tab.ncols / 8) in
  compute_duals tab cost y;
  let enterable j d = if tab.at_upper.(j) then d > eps_cost else d < -.eps_cost in
  let rec loop () =
    if !iter_count > iter_budget then raise (Iteration_limit !iter_count);
    if !since_dual_refresh >= 500 then begin
      since_dual_refresh := 0;
      compute_duals tab cost y
    end;
    let bland = !degenerate_streak > bland_after in
    (* Entering column and its reduced cost (computed once, reused below). *)
    let enter = ref (-1) and d_enter = ref 0. in
    if bland then begin
      Metrics.incr c_full_pricing_scans;
      try
        for j = 0 to tab.ncols - 1 do
          if (not tab.in_basis.(j)) && allowed j then begin
            let d = reduced_cost tab cost y j in
            if enterable j d then begin
              enter := j;
              d_enter := d;
              raise Exit
            end
          end
        done
      with Exit -> ()
    end
    else begin
      let scanned = ref 0 in
      while !enter < 0 && !scanned < tab.ncols do
        Metrics.incr c_partial_pricing_rounds;
        let chunk = min window (tab.ncols - !scanned) in
        let best = ref 0. in
        for _ = 1 to chunk do
          let j = !cursor in
          cursor := if !cursor + 1 >= tab.ncols then 0 else !cursor + 1;
          if (not tab.in_basis.(j)) && allowed j then begin
            let d = reduced_cost tab cost y j in
            if enterable j d then begin
              let score = d *. d /. devex.(j) in
              if score > !best then begin
                best := score;
                enter := j;
                d_enter := d
              end
            end
          end
        done;
        scanned := !scanned + chunk
      done
    end;
    if !enter < 0 then begin
      (* Confirm optimality against freshly computed duals: the incremental
         y may have drifted. *)
      compute_duals tab cost y;
      Metrics.incr c_full_pricing_scans;
      let really_optimal = ref true in
      for j = 0 to tab.ncols - 1 do
        if (not tab.in_basis.(j)) && allowed j && enterable j (reduced_cost tab cost y j)
        then really_optimal := false
      done;
      if !really_optimal then `Optimal
      else begin
        since_dual_refresh := 0;
        loop ()
      end
    end
    else begin
      let j = !enter in
      let d_enter = !d_enter in
      let dir = if tab.at_upper.(j) then -1. else 1. in
      if needs_refactor tab then begin
        refactorize tab;
        compute_duals tab cost y;
        since_dual_refresh := 0
      end;
      ftran tab j w;
      let ub_j = tab.upper.(j) in
      (* Two-sided ratio test. *)
      let leave = ref (-1) and theta = ref infinity and leave_at_upper = ref false in
      let consider i ratio to_upper =
        if
          ratio < !theta -. eps_pivot
          || (ratio < !theta +. eps_pivot
             && (!leave < 0
                ||
                if bland then tab.basis.(i) < tab.basis.(!leave)
                else abs_float w.(i) > abs_float w.(!leave)))
        then begin
          theta := ratio;
          leave := i;
          leave_at_upper := to_upper
        end
      in
      for i = 0 to m - 1 do
        let wi = dir *. w.(i) in
        if wi > eps_pivot then consider i (tab.xb.(i) /. wi) false
        else if wi < -.eps_pivot then begin
          let ui = tab.upper.(tab.basis.(i)) in
          if ui < infinity then consider i ((ui -. tab.xb.(i)) /. -.wi) true
        end
      done;
      if ub_j < !theta -. eps_pivot || (!leave < 0 && ub_j < infinity) then begin
        (* Bound flip: the entering column's own bound is the tightest
           limit; it moves to its other bound and the basis is unchanged
           (so are the duals). *)
        for i = 0 to m - 1 do
          let v = tab.xb.(i) -. (ub_j *. dir *. w.(i)) in
          tab.xb.(i) <- (if v < 0. && v > -.eps_feas then 0. else v)
        done;
        tab.at_upper.(j) <- not tab.at_upper.(j);
        Metrics.incr c_bound_flips;
        if ub_j < eps_pivot then incr degenerate_streak else degenerate_streak := 0;
        loop ()
      end
      else if !leave < 0 then `Unbounded
      else if abs_float w.(!leave) < 1e-6 && tab.eta_n > 0 then begin
        (* Suspicious pivot element through a live eta file: a value this
           small may be pure accumulated roundoff, and committing the pivot
           would make the basis genuinely singular.  Refactorize and redo
           the iteration from fresh factors — the fresh ftran either shows a
           trustworthy pivot or steers the ratio test elsewhere. *)
        refactorize tab;
        compute_duals tab cost y;
        since_dual_refresh := 0;
        loop ()
      end
      else begin
        let r = !leave in
        let step = if !theta < 0. then 0. else !theta in
        if step < eps_pivot then incr degenerate_streak else degenerate_streak := 0;
        for i = 0 to m - 1 do
          if i <> r then begin
            let v = tab.xb.(i) -. (step *. dir *. w.(i)) in
            tab.xb.(i) <- (if v < 0. && v > -.eps_feas then 0. else v)
          end
        done;
        let lc = tab.basis.(r) in
        tab.at_upper.(lc) <- !leave_at_upper;
        tab.xb.(r) <- (if dir > 0. then step else ub_j -. step);
        let alpha = w.(r) in
        append_eta tab w r;
        change_basis tab r j;
        tab.at_upper.(j) <- false;
        incr iter_count;
        Metrics.incr c_pivots;
        (* Incremental dual update: one unit btran gives row r of the new
           basis inverse. *)
        Array.fill tab.work_c 0 m 0.;
        tab.work_c.(r) <- 1.;
        btran tab tab.work_c rho;
        for i = 0 to m - 1 do
          y.(i) <- y.(i) +. (d_enter *. rho.(i))
        done;
        incr since_dual_refresh;
        (* Devex weight update over the pivot row, computed sparsely from
           the CSR rows in the support of rho.  Never skipped outside
           Bland's rule: on the heavily degenerate scheduling LPs, stale
           weights collapse devex into Dantzig pricing, which stalls in
           zero-step pivots (measured 15-20x the pivot count on the large
           bench tier). *)
        if not bland then begin
          let touched = ref [] in
          for i = 0 to m - 1 do
            let rv = rho.(i) in
            if abs_float rv > 1e-12 then
              for e = tab.row_ptr.(i) to tab.row_ptr.(i + 1) - 1 do
                let c = tab.row_idx.(e) in
                if acc.(c) = 0. then touched := c :: !touched;
                acc.(c) <- acc.(c) +. (tab.row_val.(e) *. rv)
              done
          done;
          let wq = devex.(j) in
          List.iter
            (fun c ->
              let a = acc.(c) in
              acc.(c) <- 0.;
              if a <> 0. && not tab.in_basis.(c) then begin
                let ratio = a /. alpha in
                let cand = ratio *. ratio *. wq in
                if cand > devex.(c) then begin
                  devex.(c) <- cand;
                  if cand > !devex_max then devex_max := cand
                end
              end)
            !touched;
          let wl = wq /. (alpha *. alpha) in
          devex.(lc) <- (if wl > 1. then wl else 1.);
          if devex.(lc) > !devex_max then devex_max := devex.(lc);
          devex.(j) <- 1.;
          if !devex_max > 1e8 then begin
            (* Reference framework degraded: restart the weights. *)
            Array.fill devex 0 tab.ncols 1.;
            devex_max := 1.
          end
        end;
        (* A tiny pivot element makes an ill-conditioned eta: refactorize
           away the whole file rather than letting the error compound. *)
        if abs_float alpha < 1e-6 && tab.eta_n > 0 then begin
          refactorize tab;
          compute_duals tab cost y;
          since_dual_refresh := 0
        end;
        loop ()
      end
    end
  in
  loop ()

(* After phase 1, pivot basic artificials out of the basis where possible so
   phase 2 works on structural + slack columns only.  Rows whose artificial
   cannot be evicted are redundant; the artificial stays basic at value 0.
   Nonbasic-at-upper columns are not eviction candidates: pivoting one in at
   value 0 would move it off its bound and change the other basic values. *)
let evict_artificials tab =
  for i = 0 to tab.m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then begin
      let w = tab.work_w in
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < tab.ncols do
        if (not tab.in_basis.(!j)) && (not tab.is_artificial.(!j)) && not tab.at_upper.(!j)
        then begin
          ftran tab !j w;
          if abs_float w.(i) > 1e-7 then found := !j
        end;
        incr j
      done;
      match !found with
      | -1 -> () (* redundant row; harmless *)
      | j ->
          (* [w] still holds the ftran image of the found column: the scan
             stopped right after computing it.  Basic artificial is at value
             0, so the basic values are unchanged by the pivot. *)
          if tab.eta_n >= eta_cap then begin
            refactorize tab;
            ftran tab j w
          end;
          append_eta tab w i;
          change_basis tab i j
    end
  done

let art_sum tab =
  let s = ref 0. in
  for i = 0 to tab.m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then s := !s +. tab.xb.(i)
  done;
  !s

let any_artificial_basic tab =
  let found = ref false in
  for i = 0 to tab.m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then found := true
  done;
  !found

(* The final basis in model terms, for warm-starting related solves:
   structural columns by variable id, slack/surplus columns by their model
   row, then the nonbasic structural columns parked at their upper bound;
   basic artificials (redundant rows) are omitted. *)
let final_basis tab =
  let acc = ref [] in
  for j = tab.n_struct - 1 downto 0 do
    if tab.at_upper.(j) && not tab.in_basis.(j) then acc := Nonbasic_upper j :: !acc
  done;
  for i = tab.m - 1 downto 0 do
    let j = tab.basis.(i) in
    if j < tab.n_struct then acc := Basic_var j :: !acc
    else if not tab.is_artificial.(j) then
      acc := Basic_slack tab.col_idx.(tab.col_ptr.(j)) :: !acc
  done;
  Array.of_list !acc

let solve_tab ?max_iters ?warm model =
  Metrics.incr c_solves;
  let tab = build model in
  let m = tab.m in
  let budget =
    match max_iters with Some k -> k | None -> (200 * (m + tab.ncols)) + 5000
  in
  let iter_count = ref 0 in
  (match warm with
  | Some entries -> if not (install_warm tab entries) then reset_basis tab
  | None -> ());
  (* Phase 1: minimize the sum of artificial variables.  Skipped when no
     basic artificial carries value — e.g. a warm basis that is already
     feasible — because 0 is the phase-1 optimum regardless of prices. *)
  let has_artificial = Array.exists (fun a -> a) tab.is_artificial in
  let infeasible = ref false in
  if has_artificial then begin
    let t1 = Sys.time () in
    Trace.with_span "simplex.phase1" (fun () ->
        if art_sum tab <= 1e-9 then begin
          Metrics.incr c_phase1_skipped;
          if any_artificial_basic tab then evict_artificials tab
        end
        else begin
          let cost1 = Array.make tab.ncols 0. in
          for j = 0 to tab.ncols - 1 do
            if tab.is_artificial.(j) then cost1.(j) <- 1.
          done;
          (match run_phase tab cost1 (fun _ -> true) budget iter_count with
          | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
          | `Optimal -> ());
          if art_sum tab > 1e-6 then infeasible := true else evict_artificials tab
        end);
    Metrics.add_gauge g_phase1_seconds (Sys.time () -. t1)
  end;
  if !infeasible then
    {
      status = Infeasible;
      objective = nan;
      values = Array.make tab.n_struct 0.;
      duals = Array.make m 0.;
      iterations = !iter_count;
      basis = [||];
    }
  else begin
    let t2 = Sys.time () in
    let allowed j = not tab.is_artificial.(j) in
    let phase2 =
      Trace.with_span "simplex.phase2" (fun () -> run_phase tab tab.cost2 allowed budget iter_count)
    in
    Metrics.add_gauge g_phase2_seconds (Sys.time () -. t2);
    match phase2 with
    | `Unbounded ->
        {
          status = Unbounded;
          objective = neg_infinity;
          values = Array.make tab.n_struct 0.;
          duals = Array.make m 0.;
          iterations = !iter_count;
          basis = [||];
        }
    | `Optimal ->
        let values = Array.make tab.n_struct 0. in
        let objective = ref 0. in
        for j = 0 to tab.n_struct - 1 do
          if tab.at_upper.(j) && not tab.in_basis.(j) then begin
            values.(j) <- tab.upper.(j);
            objective := !objective +. (tab.cost2.(j) *. tab.upper.(j))
          end
        done;
        for i = 0 to m - 1 do
          let j = tab.basis.(i) in
          let v = if tab.xb.(i) < 0. then 0. else tab.xb.(i) in
          if j < tab.n_struct then values.(j) <- v;
          objective := !objective +. (tab.cost2.(j) *. v)
        done;
        let y = Array.make m 0. in
        compute_duals tab tab.cost2 y;
        (* Undo row sign flips in the reported duals. *)
        for r = 0 to m - 1 do
          if tab.row_flip.(r) then y.(r) <- -.y.(r)
        done;
        {
          status = Optimal;
          objective = !objective;
          values;
          duals = y;
          iterations = !iter_count;
          basis = final_basis tab;
        }
  end

let solve ?max_iters ?warm model =
  Trace.with_span "simplex.solve"
    ~args:(fun () ->
      [
        ("rows", Flowsched_util.Json.Int (Model.num_rows model));
        ("vars", Flowsched_util.Json.Int (Model.num_vars model));
        ("warm", Flowsched_util.Json.Bool (warm <> None));
      ])
    (fun () -> solve_tab ?max_iters ?warm model)

let solve_or_fail ?max_iters ?warm model =
  let res = solve ?max_iters ?warm model in
  match res.status with
  | Optimal -> res
  | Infeasible -> failwith "Simplex.solve_or_fail: infeasible"
  | Unbounded -> failwith "Simplex.solve_or_fail: unbounded"
