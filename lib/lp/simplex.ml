type status = Optimal | Infeasible | Unbounded

type basis_entry = Basic_var of int | Basic_slack of int

type basis = basis_entry array

type result = {
  status : status;
  objective : float;
  values : float array;
  duals : float array;
  iterations : int;
  basis : basis;
}

type counters = {
  mutable solves : int;
  mutable pivots : int;
  mutable ftran_calls : int;
  mutable refactorizations : int;
  mutable full_pricing_scans : int;
  mutable partial_pricing_rounds : int;
  mutable warm_attempts : int;
  mutable warm_accepted : int;
  mutable phase1_skipped : int;
  mutable phase1_seconds : float;
  mutable phase2_seconds : float;
}

module Metrics = Flowsched_obs.Metrics
module Trace = Flowsched_obs.Trace

(* The solver's event counts live in the process-wide metrics registry under
   "simplex.*", so they survive the worker-pool fork boundary (workers ship
   registry diffs back in their result frames) and show up next to the rest
   of the pipeline's metrics.  [read_counters]/[reset_counters] below are a
   back-compat shim over these handles. *)
let c_solves = Metrics.counter "simplex.solves"
let c_pivots = Metrics.counter "simplex.pivots"
let c_ftran = Metrics.counter "simplex.ftran_calls"
let c_refactorizations = Metrics.counter "simplex.refactorizations"
let c_full_pricing_scans = Metrics.counter "simplex.full_pricing_scans"
let c_partial_pricing_rounds = Metrics.counter "simplex.partial_pricing_rounds"
let c_warm_attempts = Metrics.counter "simplex.warm_attempts"
let c_warm_accepted = Metrics.counter "simplex.warm_accepted"
let c_phase1_skipped = Metrics.counter "simplex.phase1_skipped"
let g_phase1_seconds = Metrics.gauge "simplex.phase1_seconds"
let g_phase2_seconds = Metrics.gauge "simplex.phase2_seconds"

let reset_counters () =
  let zero c = Metrics.incr ~by:(-Metrics.counter_value c) c in
  zero c_solves;
  zero c_pivots;
  zero c_ftran;
  zero c_refactorizations;
  zero c_full_pricing_scans;
  zero c_partial_pricing_rounds;
  zero c_warm_attempts;
  zero c_warm_accepted;
  zero c_phase1_skipped;
  Metrics.set_gauge g_phase1_seconds 0.;
  Metrics.set_gauge g_phase2_seconds 0.

let read_counters () =
  {
    solves = Metrics.counter_value c_solves;
    pivots = Metrics.counter_value c_pivots;
    ftran_calls = Metrics.counter_value c_ftran;
    refactorizations = Metrics.counter_value c_refactorizations;
    full_pricing_scans = Metrics.counter_value c_full_pricing_scans;
    partial_pricing_rounds = Metrics.counter_value c_partial_pricing_rounds;
    warm_attempts = Metrics.counter_value c_warm_attempts;
    warm_accepted = Metrics.counter_value c_warm_accepted;
    phase1_skipped = Metrics.counter_value c_phase1_skipped;
    phase1_seconds = Metrics.gauge_value g_phase1_seconds;
    phase2_seconds = Metrics.gauge_value g_phase2_seconds;
  }

let diff_counters a b =
  {
    solves = a.solves - b.solves;
    pivots = a.pivots - b.pivots;
    ftran_calls = a.ftran_calls - b.ftran_calls;
    refactorizations = a.refactorizations - b.refactorizations;
    full_pricing_scans = a.full_pricing_scans - b.full_pricing_scans;
    partial_pricing_rounds = a.partial_pricing_rounds - b.partial_pricing_rounds;
    warm_attempts = a.warm_attempts - b.warm_attempts;
    warm_accepted = a.warm_accepted - b.warm_accepted;
    phase1_skipped = a.phase1_skipped - b.phase1_skipped;
    phase1_seconds = a.phase1_seconds -. b.phase1_seconds;
    phase2_seconds = a.phase2_seconds -. b.phase2_seconds;
  }

exception Iteration_limit of int

let eps_pivot = 1e-9
let eps_cost = 1e-7
let eps_feas = 1e-8

(* Standard-form tableau data shared by both phases. *)
type tab = {
  m : int; (* rows *)
  ncols : int; (* structural + slack + artificial columns *)
  n_struct : int;
  col_rows : int array array; (* sparse column: row indices *)
  col_vals : float array array; (* sparse column: coefficients *)
  cost2 : float array; (* phase-2 objective per column *)
  is_artificial : bool array;
  slack_of_row : int array; (* slack/surplus column of each row, -1 for Eq *)
  b : float array; (* right-hand side, >= 0 *)
  row_flip : bool array; (* true when the model row was negated *)
  basis : int array; (* column basic in each row *)
  basis0 : int array; (* the all-slack/artificial starting basis *)
  in_basis : bool array;
  binv : float array; (* m*m row-major basis inverse *)
  xb : float array; (* basic variable values *)
}

let build model =
  let m = Model.num_rows model in
  let n_struct = Model.num_vars model in
  (* Count extra columns after normalizing each row to b >= 0: one
     slack/surplus per inequality, one artificial per Ge/Eq row. *)
  let n_slack = ref 0 and n_art = ref 0 in
  let senses = Array.make m Model.Le in
  let row_flip = Array.make m false in
  let b = Array.make m 0. in
  for r = 0 to m - 1 do
    let rhs = Model.row_rhs model r in
    let sense = Model.row_sense model r in
    let sense, rhs, flip =
      if rhs < 0. then
        ( (match sense with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq),
          -.rhs,
          true )
      else (sense, rhs, false)
    in
    senses.(r) <- sense;
    row_flip.(r) <- flip;
    b.(r) <- rhs;
    (match sense with
    | Model.Le | Model.Ge -> incr n_slack
    | Model.Eq -> ());
    (match sense with Model.Ge | Model.Eq -> incr n_art | Model.Le -> ())
  done;
  let ncols = n_struct + !n_slack + !n_art in
  let col_rows = Array.make ncols [||] in
  let col_vals = Array.make ncols [||] in
  let cost2 = Array.make ncols 0. in
  let is_artificial = Array.make ncols false in
  let slack_of_row = Array.make m (-1) in
  (* Structural columns from the row-major model. *)
  let acc_rows = Array.make n_struct [] and acc_vals = Array.make n_struct [] in
  for r = m - 1 downto 0 do
    let sign = if row_flip.(r) then -1. else 1. in
    List.iter
      (fun (v, c) ->
        acc_rows.(v) <- r :: acc_rows.(v);
        acc_vals.(v) <- (sign *. c) :: acc_vals.(v))
      (Model.row_terms model r)
  done;
  for v = 0 to n_struct - 1 do
    col_rows.(v) <- Array.of_list acc_rows.(v);
    col_vals.(v) <- Array.of_list acc_vals.(v);
    cost2.(v) <- Model.objective_coeff model v
  done;
  let basis = Array.make m (-1) in
  let next = ref n_struct in
  (* Slack/surplus columns; slacks of Le rows start basic. *)
  for r = 0 to m - 1 do
    match senses.(r) with
    | Model.Le ->
        col_rows.(!next) <- [| r |];
        col_vals.(!next) <- [| 1. |];
        slack_of_row.(r) <- !next;
        basis.(r) <- !next;
        incr next
    | Model.Ge ->
        col_rows.(!next) <- [| r |];
        col_vals.(!next) <- [| -1. |];
        slack_of_row.(r) <- !next;
        incr next
    | Model.Eq -> ()
  done;
  (* Artificial columns for Ge/Eq rows start basic. *)
  for r = 0 to m - 1 do
    match senses.(r) with
    | Model.Ge | Model.Eq ->
        col_rows.(!next) <- [| r |];
        col_vals.(!next) <- [| 1. |];
        is_artificial.(!next) <- true;
        basis.(r) <- !next;
        incr next
    | Model.Le -> ()
  done;
  assert (!next = ncols);
  let in_basis = Array.make ncols false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  let binv = Array.make (m * m) 0. in
  for i = 0 to m - 1 do
    binv.((i * m) + i) <- 1.
  done;
  {
    m;
    ncols;
    n_struct;
    col_rows;
    col_vals;
    cost2;
    is_artificial;
    slack_of_row;
    b;
    row_flip;
    basis;
    basis0 = Array.copy basis;
    in_basis;
    binv;
    xb = Array.copy b;
  }

(* Restore the pristine all-slack/artificial basis (identity inverse). *)
let reset_basis tab =
  Array.blit tab.basis0 0 tab.basis 0 tab.m;
  Array.fill tab.in_basis 0 tab.ncols false;
  Array.iter (fun j -> tab.in_basis.(j) <- true) tab.basis;
  Array.fill tab.binv 0 (tab.m * tab.m) 0.;
  for i = 0 to tab.m - 1 do
    tab.binv.((i * tab.m) + i) <- 1.
  done;
  Array.blit tab.b 0 tab.xb 0 tab.m

(* w := B^-1 * A_j for a sparse column j. *)
let ftran tab j w =
  Metrics.incr c_ftran;
  let m = tab.m in
  Array.fill w 0 m 0.;
  let rows = tab.col_rows.(j) and vals = tab.col_vals.(j) in
  for k = 0 to Array.length rows - 1 do
    let r = rows.(k) and a = vals.(k) in
    for i = 0 to m - 1 do
      w.(i) <- w.(i) +. (tab.binv.((i * m) + r) *. a)
    done
  done

(* y := c_B^T * B^-1 for the given per-column cost vector. *)
let compute_duals tab cost y =
  let m = tab.m in
  Array.fill y 0 m 0.;
  for i = 0 to m - 1 do
    let cb = cost.(tab.basis.(i)) in
    if cb <> 0. then begin
      let base = i * m in
      for k = 0 to m - 1 do
        y.(k) <- y.(k) +. (cb *. tab.binv.(base + k))
      done
    end
  done

let reduced_cost tab cost y j =
  let rows = tab.col_rows.(j) and vals = tab.col_vals.(j) in
  let acc = ref cost.(j) in
  for k = 0 to Array.length rows - 1 do
    acc := !acc -. (y.(rows.(k)) *. vals.(k))
  done;
  !acc

(* Refactorize: rebuild binv by Gauss-Jordan elimination of the basis matrix,
   then recompute xb.  Called rarely; guards against drift from the
   product-form updates. *)
let refactorize tab =
  Metrics.incr c_refactorizations;
  let m = tab.m in
  (* Dense basis matrix. *)
  let bmat = Array.make (m * m) 0. in
  for i = 0 to m - 1 do
    let j = tab.basis.(i) in
    let rows = tab.col_rows.(j) and vals = tab.col_vals.(j) in
    for k = 0 to Array.length rows - 1 do
      bmat.((rows.(k) * m) + i) <- vals.(k)
    done
  done;
  let inv = tab.binv in
  Array.fill inv 0 (m * m) 0.;
  for i = 0 to m - 1 do
    inv.((i * m) + i) <- 1.
  done;
  for col = 0 to m - 1 do
    (* partial pivot *)
    let piv_row = ref (-1) and piv_val = ref 0. in
    for r = col to m - 1 do
      let v = abs_float bmat.((r * m) + col) in
      if v > !piv_val then begin
        piv_val := v;
        piv_row := r
      end
    done;
    if !piv_row < 0 || !piv_val < 1e-12 then failwith "Simplex.refactorize: singular basis";
    if !piv_row <> col then begin
      for k = 0 to m - 1 do
        let t = bmat.((col * m) + k) in
        bmat.((col * m) + k) <- bmat.((!piv_row * m) + k);
        bmat.((!piv_row * m) + k) <- t;
        let t = inv.((col * m) + k) in
        inv.((col * m) + k) <- inv.((!piv_row * m) + k);
        inv.((!piv_row * m) + k) <- t
      done
    end;
    let piv = bmat.((col * m) + col) in
    let inv_piv = 1. /. piv in
    for k = 0 to m - 1 do
      bmat.((col * m) + k) <- bmat.((col * m) + k) *. inv_piv;
      inv.((col * m) + k) <- inv.((col * m) + k) *. inv_piv
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = bmat.((r * m) + col) in
        if f <> 0. then begin
          for k = 0 to m - 1 do
            bmat.((r * m) + k) <- bmat.((r * m) + k) -. (f *. bmat.((col * m) + k));
            inv.((r * m) + k) <- inv.((r * m) + k) -. (f *. inv.((col * m) + k))
          done
        end
      end
    done
  done;
  (* xb = binv * b *)
  for i = 0 to m - 1 do
    let acc = ref 0. in
    let base = i * m in
    for k = 0 to m - 1 do
      acc := !acc +. (inv.(base + k) *. tab.b.(k))
    done;
    tab.xb.(i) <- (if !acc < 0. && !acc > -.eps_feas then 0. else !acc)
  done

(* Eta update of the basis inverse: pivot column [j] (with ftran image [w])
   into row [r].  Shared by the pivot loop and the warm-start crash. *)
let apply_eta tab w r j =
  let m = tab.m in
  let piv = w.(r) in
  let binv = tab.binv in
  let base_r = r * m in
  let inv_piv = 1. /. piv in
  for k = 0 to m - 1 do
    Array.unsafe_set binv (base_r + k) (Array.unsafe_get binv (base_r + k) *. inv_piv)
  done;
  for i = 0 to m - 1 do
    let f = Array.unsafe_get w i in
    if i <> r && f <> 0. then begin
      let base_i = i * m in
      for k = 0 to m - 1 do
        Array.unsafe_set binv (base_i + k)
          (Array.unsafe_get binv (base_i + k) -. (f *. Array.unsafe_get binv (base_r + k)))
      done
    end
  done;
  tab.in_basis.(tab.basis.(r)) <- false;
  tab.basis.(r) <- j;
  tab.in_basis.(j) <- true

(* Install a caller-provided basis: map entries to tableau columns and pivot
   each into the default basis by greedy Gaussian placement (always
   nonsingular by construction), then refactorize for a clean inverse and
   check primal feasibility.  Returns [true] when the tableau now holds a
   usable (feasible) warm basis; on [false] the caller must [reset_basis]. *)
let install_warm tab entries =
  let m = tab.m in
  if m = 0 || entries = [] then false
  else begin
    Metrics.incr c_warm_attempts;
    let wanted_slack = Array.make m false in
    let cols =
      List.filter_map
        (function
          | Basic_var v -> if v >= 0 && v < tab.n_struct then Some v else None
          | Basic_slack r ->
              if r >= 0 && r < m && tab.slack_of_row.(r) >= 0 then begin
                wanted_slack.(r) <- true;
                Some tab.slack_of_row.(r)
              end
              else None)
        entries
    in
    let w = Array.make m 0. in
    let placed = ref 0 in
    (* Feasibility-preserving greedy crash: pivoting column [j] into row [i]
       rewrites the basic values through the eta matrix —
       xb'(i) = xb(i) / w(i), xb'(k) = xb(k) - w(k) * xb'(i) — so a
       candidate row is only eligible if every new value stays >= 0.  The
       install can therefore never be rejected for infeasibility: columns
       that would break feasibility are simply skipped, and the result is a
       partially-warm basis that is feasible by construction. *)
    let pivot_keeps_feasible i =
      if abs_float w.(i) <= eps_pivot then false
      else begin
        let xi = tab.xb.(i) /. w.(i) in
        if xi < -.eps_feas then false
        else begin
          let ok = ref true in
          for k = 0 to m - 1 do
            if k <> i && tab.xb.(k) -. (w.(k) *. xi) < -.eps_feas then ok := false
          done;
          !ok
        end
      end
    in
    List.iter
      (fun j ->
        if not tab.in_basis.(j) then begin
          ftran tab j w;
          (* Replace a default basic only: an artificial, or a row's own
             starting slack that the warm basis does not claim. *)
          let best = ref (-1) and best_v = ref 1e-7 in
          for i = 0 to m - 1 do
            let bi = tab.basis.(i) in
            let replaceable =
              tab.is_artificial.(bi)
              || (bi = tab.slack_of_row.(i) && not wanted_slack.(i))
            in
            if replaceable then begin
              let v = abs_float w.(i) in
              if v > !best_v && pivot_keeps_feasible i then begin
                best_v := v;
                best := i
              end
            end
          done;
          if !best >= 0 then begin
            let r = !best in
            let xr = tab.xb.(r) /. w.(r) in
            for k = 0 to m - 1 do
              if k <> r then begin
                let v = tab.xb.(k) -. (w.(k) *. xr) in
                tab.xb.(k) <- (if v < 0. then 0. else v)
              end
            done;
            tab.xb.(r) <- (if xr < 0. then 0. else xr);
            apply_eta tab w r j;
            incr placed
          end
        end)
      cols;
    if !placed = 0 then false
    else
      match refactorize tab with
      | exception Failure _ -> false
      | () ->
          let feasible = ref true in
          for i = 0 to m - 1 do
            if tab.xb.(i) < -.eps_feas then feasible := false
          done;
          if !feasible then Metrics.incr c_warm_accepted;
          !feasible
  end

(* One simplex phase: minimize [cost] over columns with [allowed j = true].
   Returns [`Optimal] or [`Unbounded].  Mutates the tableau in place.

   The dual vector y = c_B B^-1 is maintained incrementally: after a pivot
   that enters column q with reduced cost d_q on row r, the new duals are
   y' = y + d_q * (row r of the new B^-1) — an O(m) update.  A full O(m^2)
   recomputation happens periodically to bound numerical drift.

   Pricing is partial: a rotating cursor scans windows of candidate columns
   and pivots on the best eligible column of the first window that offers
   one, falling back to a full scan (against freshly computed duals) only to
   confirm optimality.  Long degenerate streaks switch to Bland's rule,
   which needs the least-index eligible column and therefore a full scan. *)
let run_phase tab cost allowed iter_budget iter_count =
  let m = tab.m in
  let y = Array.make m 0. in
  let w = Array.make m 0. in
  let degenerate_streak = ref 0 in
  let since_refactor = ref 0 in
  let since_dual_refresh = ref 0 in
  let cursor = ref 0 in
  let window = max 32 (tab.ncols / 8) in
  compute_duals tab cost y;
  let rec loop () =
    if !iter_count > iter_budget then raise (Iteration_limit !iter_count);
    if !since_dual_refresh >= 500 then begin
      since_dual_refresh := 0;
      compute_duals tab cost y
    end;
    let bland = !degenerate_streak > 100 in
    (* Entering column and its reduced cost (computed once, reused below). *)
    let enter = ref (-1) and d_enter = ref 0. in
    if bland then begin
      Metrics.incr c_full_pricing_scans;
      try
        for j = 0 to tab.ncols - 1 do
          if (not tab.in_basis.(j)) && allowed j then begin
            let d = reduced_cost tab cost y j in
            if d < -.eps_cost then begin
              enter := j;
              d_enter := d;
              raise Exit
            end
          end
        done
      with Exit -> ()
    end
    else begin
      let scanned = ref 0 in
      while !enter < 0 && !scanned < tab.ncols do
        Metrics.incr c_partial_pricing_rounds;
        let chunk = min window (tab.ncols - !scanned) in
        let best = ref (-.eps_cost) in
        for _ = 1 to chunk do
          let j = !cursor in
          cursor := if !cursor + 1 >= tab.ncols then 0 else !cursor + 1;
          if (not tab.in_basis.(j)) && allowed j then begin
            let d = reduced_cost tab cost y j in
            if d < !best then begin
              best := d;
              enter := j;
              d_enter := d
            end
          end
        done;
        scanned := !scanned + chunk
      done
    end;
    if !enter < 0 then begin
      (* Confirm optimality against freshly computed duals: the incremental
         y may have drifted. *)
      compute_duals tab cost y;
      Metrics.incr c_full_pricing_scans;
      let really_optimal = ref true in
      for j = 0 to tab.ncols - 1 do
        if (not tab.in_basis.(j)) && allowed j && reduced_cost tab cost y j < -.eps_cost then
          really_optimal := false
      done;
      if !really_optimal then `Optimal
      else begin
        since_dual_refresh := 0;
        loop ()
      end
    end
    else begin
      let j = !enter in
      let d_enter = !d_enter in
      ftran tab j w;
      (* Ratio test. *)
      let leave = ref (-1) and theta = ref infinity in
      for i = 0 to m - 1 do
        if w.(i) > eps_pivot then begin
          let ratio = tab.xb.(i) /. w.(i) in
          if
            ratio < !theta -. eps_pivot
            || (ratio < !theta +. eps_pivot
               && (!leave < 0
                  ||
                  if bland then tab.basis.(i) < tab.basis.(!leave)
                  else w.(i) > w.(!leave)))
          then begin
            theta := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        let r = !leave in
        if !theta < eps_pivot then incr degenerate_streak else degenerate_streak := 0;
        (* Update basis inverse (eta matrix), then duals and basic values. *)
        apply_eta tab w r j;
        let binv = tab.binv in
        let base_r = r * m in
        (* Incremental dual update along the new r-th row of B^-1. *)
        for k = 0 to m - 1 do
          Array.unsafe_set y k
            (Array.unsafe_get y k +. (d_enter *. Array.unsafe_get binv (base_r + k)))
        done;
        incr since_dual_refresh;
        (* Update basic values. *)
        for i = 0 to m - 1 do
          if i <> r then begin
            let v = tab.xb.(i) -. (!theta *. w.(i)) in
            tab.xb.(i) <- (if v < 0. && v > -.eps_feas then 0. else v)
          end
        done;
        tab.xb.(r) <- !theta;
        incr iter_count;
        Metrics.incr c_pivots;
        incr since_refactor;
        if !since_refactor >= 5000 then begin
          since_refactor := 0;
          refactorize tab;
          compute_duals tab cost y;
          since_dual_refresh := 0
        end;
        loop ()
      end
    end
  in
  loop ()

(* After phase 1, pivot basic artificials out of the basis where possible so
   phase 2 works on structural + slack columns only.  Rows whose artificial
   cannot be evicted are redundant; the artificial stays basic at value 0. *)
let evict_artificials tab =
  let m = tab.m in
  let w = Array.make m 0. in
  for i = 0 to m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then begin
      let found = ref (-1) in
      let j = ref 0 in
      while !found < 0 && !j < tab.ncols do
        if (not tab.in_basis.(!j)) && not tab.is_artificial.(!j) then begin
          ftran tab !j w;
          if abs_float w.(i) > 1e-7 then found := !j
        end;
        incr j
      done;
      match !found with
      | -1 -> () (* redundant row; harmless *)
      | j ->
          (* [w] still holds the ftran image of the found column: the scan
             stopped right after computing it.  Basic artificial is at value
             0, so the basic values are unchanged by the pivot. *)
          apply_eta tab w i j
    end
  done

let art_sum tab =
  let s = ref 0. in
  for i = 0 to tab.m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then s := !s +. tab.xb.(i)
  done;
  !s

let any_artificial_basic tab =
  let found = ref false in
  for i = 0 to tab.m - 1 do
    if tab.is_artificial.(tab.basis.(i)) then found := true
  done;
  !found

(* The final basis in model terms, for warm-starting related solves:
   structural columns by variable id, slack/surplus columns by their model
   row; basic artificials (redundant rows) are omitted. *)
let final_basis tab =
  let acc = ref [] in
  for i = tab.m - 1 downto 0 do
    let j = tab.basis.(i) in
    if j < tab.n_struct then acc := Basic_var j :: !acc
    else if not tab.is_artificial.(j) then acc := Basic_slack tab.col_rows.(j).(0) :: !acc
  done;
  Array.of_list !acc

let solve_tab ?max_iters ?warm model =
  Metrics.incr c_solves;
  let tab = build model in
  let m = tab.m in
  let budget =
    match max_iters with Some k -> k | None -> (200 * (m + tab.ncols)) + 5000
  in
  let iter_count = ref 0 in
  (match warm with
  | Some entries -> if not (install_warm tab entries) then reset_basis tab
  | None -> ());
  (* Phase 1: minimize the sum of artificial variables.  Skipped when no
     basic artificial carries value — e.g. a warm basis that is already
     feasible — because 0 is the phase-1 optimum regardless of prices. *)
  let has_artificial = Array.exists (fun a -> a) tab.is_artificial in
  let infeasible = ref false in
  if has_artificial then begin
    let t1 = Sys.time () in
    Trace.with_span "simplex.phase1" (fun () ->
        if art_sum tab <= 1e-9 then begin
          Metrics.incr c_phase1_skipped;
          if any_artificial_basic tab then evict_artificials tab
        end
        else begin
          let cost1 = Array.make tab.ncols 0. in
          for j = 0 to tab.ncols - 1 do
            if tab.is_artificial.(j) then cost1.(j) <- 1.
          done;
          (match run_phase tab cost1 (fun _ -> true) budget iter_count with
          | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
          | `Optimal -> ());
          if art_sum tab > 1e-6 then infeasible := true else evict_artificials tab
        end);
    Metrics.add_gauge g_phase1_seconds (Sys.time () -. t1)
  end;
  if !infeasible then
    {
      status = Infeasible;
      objective = nan;
      values = Array.make tab.n_struct 0.;
      duals = Array.make m 0.;
      iterations = !iter_count;
      basis = [||];
    }
  else begin
    let t2 = Sys.time () in
    let allowed j = not tab.is_artificial.(j) in
    let phase2 =
      Trace.with_span "simplex.phase2" (fun () -> run_phase tab tab.cost2 allowed budget iter_count)
    in
    Metrics.add_gauge g_phase2_seconds (Sys.time () -. t2);
    match phase2 with
    | `Unbounded ->
        {
          status = Unbounded;
          objective = neg_infinity;
          values = Array.make tab.n_struct 0.;
          duals = Array.make m 0.;
          iterations = !iter_count;
          basis = [||];
        }
    | `Optimal ->
        let values = Array.make tab.n_struct 0. in
        let objective = ref 0. in
        for i = 0 to m - 1 do
          let j = tab.basis.(i) in
          let v = if tab.xb.(i) < 0. then 0. else tab.xb.(i) in
          if j < tab.n_struct then values.(j) <- v;
          objective := !objective +. (tab.cost2.(j) *. v)
        done;
        let y = Array.make m 0. in
        compute_duals tab tab.cost2 y;
        (* Undo row sign flips in the reported duals. *)
        for r = 0 to m - 1 do
          if tab.row_flip.(r) then y.(r) <- -.y.(r)
        done;
        {
          status = Optimal;
          objective = !objective;
          values;
          duals = y;
          iterations = !iter_count;
          basis = final_basis tab;
        }
  end

let solve ?max_iters ?warm model =
  Trace.with_span "simplex.solve"
    ~args:(fun () ->
      [
        ("rows", Flowsched_util.Json.Int (Model.num_rows model));
        ("vars", Flowsched_util.Json.Int (Model.num_vars model));
        ("warm", Flowsched_util.Json.Bool (warm <> None));
      ])
    (fun () -> solve_tab ?max_iters ?warm model)

let solve_or_fail ?max_iters ?warm model =
  let res = solve ?max_iters ?warm model in
  match res.status with
  | Optimal -> res
  | Infeasible -> failwith "Simplex.solve_or_fail: infeasible"
  | Unbounded -> failwith "Simplex.solve_or_fail: unbounded"
