(** Sparse LU factorization of a basis matrix, for the revised simplex.

    [factorize] runs a left-looking Gilbert–Peierls elimination over the
    columns of an [m x m] matrix given column-wise in sparse form.  Columns
    are processed in ascending-fill order (fewest nonzeros first) as a
    static Markowitz ordering, and within each eliminated column the pivot
    row is chosen by threshold partial pivoting: among the rows whose
    magnitude is within a fixed factor of the column maximum, the row with
    the fewest nonzeros in the original matrix wins (ties to the larger
    magnitude).  The factors are stored column-wise in pivot coordinates,
    so both triangular solves and their transposes run in
    O(m + nnz(L) + nnz(U)) with no row-wise copies.

    The matrix indexes rows by their original ids and columns by "slots"
    [0 .. m-1] (in the simplex, the basis position).  [solve]/[solve_t]
    carry the two permutations chosen during elimination internally:
    callers pass and receive vectors in original row/slot coordinates. *)

type t

exception Singular
(** Raised by {!factorize} when some column has no usable pivot (magnitude
    below [1e-11]), i.e. the matrix is singular or numerically so. *)

val factorize : m:int -> col:(int -> int array * float array) -> t
(** [factorize ~m ~col] factors the matrix whose slot [s] column has row
    indices and coefficients [col s] (parallel arrays, each row id in
    [\[0, m)] at most once).  Raises {!Singular} as above and
    [Invalid_argument] on an out-of-range row index. *)

val nnz : t -> int
(** Total stored nonzeros of L and U (including the unit/diagonal terms). *)

val solve : t -> float array -> float array -> unit
(** [solve t b w] overwrites [w] (length [m], fully written) with the
    solution of [B w' = b], where [b] is a dense vector indexed by original
    row and [w'] reads [w] by slot: [w.(s)] is the multiplier of column
    [s].  [b] is left unchanged.  Not reentrant: uses scratch owned by
    [t]. *)

val solve_t : t -> float array -> float array -> unit
(** [solve_t t c y] overwrites [y] (length [m], fully written) with the
    solution of [B^T y' = c], where [c] is indexed by slot and [y] by
    original row — the btran of the revised simplex.  [c] is left
    unchanged.  Not reentrant: uses scratch owned by [t]. *)
