(* The distributed layer: shard planning, filesystem leases, and the
   verifying merge.  The invariant under test throughout: a sharded run —
   including one where a worker is killed mid-shard and its lease is taken
   over — merges into exactly the results an uninterrupted single-box run
   produces (up to the documented per-cell timing fields). *)

module Experiment = Flowsched_sim.Experiment
module Report = Flowsched_sim.Report
module Checkpoint = Flowsched_sim.Checkpoint
module Shard = Flowsched_dist.Shard
module Lease = Flowsched_dist.Lease
module Merge = Flowsched_dist.Merge
module Json = Flowsched_util.Json
module Heuristics = Flowsched_online.Heuristics

let policies = [ Heuristics.maxcard; Heuristics.minrtime ]
let policy_names = [ "maxcard"; "minrtime" ]

let sweep_cells =
  List.concat_map
    (fun kind ->
      List.map
        (fun seed ->
          {
            Experiment.workload = kind;
            ports = 4;
            arrival_rate = 2.0;
            horizon = 4;
            max_demand = 2;
            sweep_seed = seed;
            lp = false;
          })
        [ 1; 2; 3 ])
    [ "poisson"; "uniform" ]

let strip = Report.strip_sweep_timing

let artifact results =
  Json.to_string (Report.sweep_json ~jobs:1 (List.map strip results))

let with_temp_dir f =
  let dir = Filename.temp_file "flowsched_dist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  go 0

(* Run one shard the way [flowsched sweep --shard] does, minus the lease:
   plan the subset, fill the checkpoint, register the manifest. *)
let run_shard ~dir ~shards ~index cells =
  let all_keys = List.map Checkpoint.sweep_key cells in
  let mine = Shard.plan ~shards ~index cells in
  ignore
    (Shard.write_manifest ~dir
       (Shard.make ~kind:"sweep" ~shards ~index ~policies:policy_names all_keys));
  let path = Filename.concat dir (Shard.checkpoint_name ~shards ~index) in
  let ck = Checkpoint.open_ ~path ~resume:true in
  Fun.protect
    ~finally:(fun () -> Checkpoint.close ck)
    (fun () -> ignore (Checkpoint.run_sweep ~policies ~jobs:1 ck mine))

(* --- shard planning --- *)

let test_plan_partitions () =
  let cells = List.init 13 Fun.id in
  List.iter
    (fun shards ->
      let parts = List.init shards (fun index -> Shard.plan ~shards ~index cells) in
      List.iter
        (fun part ->
          Alcotest.(check bool) "each part is in grid order" true
            (List.sort compare part = part))
        parts;
      Alcotest.(check (list int))
        (Printf.sprintf "%d shards partition exactly" shards)
        cells
        (List.sort compare (List.concat parts));
      List.iteri
        (fun index part ->
          List.iter
            (fun i ->
              Alcotest.(check int) "owner_of agrees with plan" index
                (Shard.owner_of ~shards i))
            part)
        parts)
    [ 1; 2; 3; 5; 13; 17 ];
  Alcotest.(check bool) "bad shard count rejected" true
    (match Shard.plan ~shards:0 ~index:0 cells with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "out-of-range index rejected" true
    (match Shard.plan ~shards:3 ~index:3 cells with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fingerprint_sensitivity () =
  let keys = [ "a"; "b"; "c" ] in
  let fp = Shard.fingerprint keys in
  Alcotest.(check string) "deterministic" fp (Shard.fingerprint keys);
  List.iter
    (fun other ->
      Alcotest.(check bool) "any grid change changes the fingerprint" true
        (fp <> Shard.fingerprint other))
    [ [ "a"; "b" ]; [ "a"; "b"; "d" ]; [ "b"; "a"; "c" ]; [ "a"; "b"; "c"; "d" ]; [] ]

let test_manifest_roundtrip () =
  let m = Shard.make ~kind:"sweep" ~shards:3 ~index:1 ~policies:policy_names
      [ "k0"; "k1"; "k2"; "k3"; "k4" ]
  in
  (match Shard.manifest_of_json (Shard.manifest_json m) with
  | Ok m' -> Alcotest.(check bool) "json round-trip" true (m = m')
  | Error e -> Alcotest.failf "manifest does not round-trip: %s" e);
  Alcotest.(check int) "manifest keys are the shard's plan" 2 (List.length m.Shard.keys);
  with_temp_dir @@ fun dir ->
  let path = Shard.write_manifest ~dir m in
  (match Shard.load_manifest path with
  | Ok m' -> Alcotest.(check bool) "disk round-trip" true (m = m')
  | Error e -> Alcotest.failf "manifest does not load: %s" e);
  Alcotest.(check (list string)) "scan finds it" [ path ] (Shard.scan dir)

let test_manifest_compatibility () =
  let keys = [ "k0"; "k1"; "k2" ] in
  let m = Shard.make ~kind:"sweep" ~shards:2 ~index:0 ~policies:policy_names keys in
  let ok = Shard.make ~kind:"sweep" ~shards:2 ~index:1 ~policies:policy_names keys in
  Alcotest.(check bool) "sibling shard compatible" true (Shard.compatible m ok = Ok ());
  List.iter
    (fun (what, other) ->
      Alcotest.(check bool) what true
        (match Shard.compatible m other with Ok () -> false | Error _ -> true))
    [
      ("different grid rejected",
       Shard.make ~kind:"sweep" ~shards:2 ~index:1 ~policies:policy_names [ "k0"; "k1" ]);
      ("different shard count rejected",
       Shard.make ~kind:"sweep" ~shards:3 ~index:1 ~policies:policy_names keys);
      ("different policies rejected",
       Shard.make ~kind:"sweep" ~shards:2 ~index:1 ~policies:[ "maxcard" ] keys);
      ("different kind rejected",
       Shard.make ~kind:"grid" ~shards:2 ~index:1 ~policies:policy_names keys);
    ]

(* --- leases --- *)

let write_foreign_lease ~dir ~name holder =
  let path = Filename.concat dir (name ^ ".lease") in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (Json.to_string
           (Json.Obj
              [
                ("owner", Json.Str holder.Lease.owner);
                ("host", Json.Str holder.Lease.host);
                ("pid", Json.Int holder.Lease.pid);
                ("acquired_at", Json.Float holder.Lease.acquired_at);
                ("refreshed_at", Json.Float holder.Lease.refreshed_at);
              ]));
      Out_channel.output_char oc '\n')

let foreign_holder ?(host = "elsewhere") ?(pid = 1) ?age () =
  let now = Unix.gettimeofday () in
  let refreshed_at = match age with None -> now | Some a -> now -. a in
  {
    Lease.owner = Printf.sprintf "%s:%d" host pid;
    host;
    pid;
    acquired_at = refreshed_at;
    refreshed_at;
  }

(* A pid that is guaranteed dead on this host: fork a child that exits
   immediately and reap it. *)
let dead_pid () =
  match Unix.fork () with
  | 0 -> Unix._exit 0
  | pid ->
      ignore (Unix.waitpid [] pid);
      pid

let test_lease_acquire_and_release () =
  with_temp_dir @@ fun dir ->
  (match Lease.acquire ~dir ~name:"s0" () with
  | Error _ -> Alcotest.fail "fresh acquire must succeed"
  | Ok { lease; taken_over_from } ->
      Alcotest.(check bool) "fresh claim displaces nobody" true (taken_over_from = None);
      Alcotest.(check bool) "lease file visible" true
        (Lease.read ~dir ~name:"s0" <> None);
      Lease.refresh lease;
      Lease.release lease);
  Alcotest.(check bool) "released lease is gone" true (Lease.read ~dir ~name:"s0" = None)

let test_lease_live_holder_blocks () =
  with_temp_dir @@ fun dir ->
  (* A recent heartbeat from another host: not stale, claim must lose. *)
  write_foreign_lease ~dir ~name:"s0" (foreign_holder ());
  match Lease.acquire ~dir ~name:"s0" ~ttl:60. () with
  | Ok _ -> Alcotest.fail "must not displace a live holder"
  | Error incumbent -> Alcotest.(check string) "incumbent reported" "elsewhere:1" incumbent.Lease.owner

let test_lease_takeover_dead_pid () =
  with_temp_dir @@ fun dir ->
  let corpse = foreign_holder ~host:(Unix.gethostname ()) ~pid:(dead_pid ()) () in
  write_foreign_lease ~dir ~name:"s0" corpse;
  (* Heartbeat is fresh, but the same-host pid is dead: stale immediately. *)
  match Lease.acquire ~dir ~name:"s0" ~ttl:3600. () with
  | Error _ -> Alcotest.fail "dead same-host pid must be reclaimable"
  | Ok { lease; taken_over_from } ->
      (match taken_over_from with
      | Some h -> Alcotest.(check string) "displaced the corpse" corpse.Lease.owner h.Lease.owner
      | None -> Alcotest.fail "takeover must report the displaced holder");
      Lease.release lease

let test_lease_takeover_expired_ttl () =
  with_temp_dir @@ fun dir ->
  write_foreign_lease ~dir ~name:"s0" (foreign_holder ~age:120. ());
  match Lease.acquire ~dir ~name:"s0" ~ttl:60. () with
  | Error _ -> Alcotest.fail "expired heartbeat must be reclaimable"
  | Ok { taken_over_from; lease } ->
      Alcotest.(check bool) "takeover reported" true (taken_over_from <> None);
      Lease.release lease

let test_lease_refresh_detects_theft () =
  with_temp_dir @@ fun dir ->
  match Lease.acquire ~dir ~name:"s0" () with
  | Error _ -> Alcotest.fail "fresh acquire must succeed"
  | Ok { lease; _ } ->
      (* Another worker judged us dead and overwrote the lease. *)
      write_foreign_lease ~dir ~name:"s0" (foreign_holder ());
      Alcotest.(check bool) "refresh raises Lost" true
        (match Lease.refresh lease with
        | () -> false
        | exception Lease.Lost _ -> true);
      (* Release must not clobber the thief either. *)
      Lease.release lease;
      Alcotest.(check bool) "thief's lease survives our release" true
        (Lease.read ~dir ~name:"s0" <> None)

(* --- merge --- *)

let test_merge_equals_single_box () =
  with_temp_dir @@ fun dir ->
  let reference = Experiment.run_sweep ~policies ~jobs:1 sweep_cells in
  let shards = 3 in
  for index = 0 to shards - 1 do
    run_shard ~dir ~shards ~index sweep_cells
  done;
  match Merge.sweep ~dir ~policies:policy_names sweep_cells with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok (results, report) ->
      Alcotest.(check int) "all cells found" (List.length sweep_cells) report.Merge.found_cells;
      Alcotest.(check (list int)) "all shards present" [ 0; 1; 2 ] report.Merge.manifests_present;
      Alcotest.(check bool) "no missing cells" true (report.Merge.missing = []);
      Alcotest.(check string) "merged artifact = single-box artifact"
        (artifact reference) (artifact results)

let test_merge_reports_missing_shard () =
  with_temp_dir @@ fun dir ->
  let shards = 3 in
  run_shard ~dir ~shards ~index:0 sweep_cells;
  run_shard ~dir ~shards ~index:2 sweep_cells;
  match Merge.sweep ~dir ~policies:policy_names sweep_cells with
  | Error e -> Alcotest.failf "partial merge should report, not fail: %s" e
  | Ok (results, report) ->
      let expected_missing =
        List.filteri (fun i _ -> Shard.owner_of ~shards i = 1) sweep_cells |> List.length
      in
      Alcotest.(check int) "missing = shard 1's cells" expected_missing
        (List.length report.Merge.missing);
      List.iter
        (fun (_, owner) -> Alcotest.(check int) "owner named" 1 owner)
        report.Merge.missing;
      Alcotest.(check int) "found the rest"
        (List.length sweep_cells - expected_missing)
        (List.length results)

let test_merge_rejects_foreign_grid () =
  with_temp_dir @@ fun dir ->
  run_shard ~dir ~shards:2 ~index:0 sweep_cells;
  run_shard ~dir ~shards:2 ~index:1 sweep_cells;
  (* Merge against a different grid (one cell fewer): fingerprint mismatch. *)
  match Merge.sweep ~dir ~policies:policy_names (List.tl sweep_cells) with
  | Ok _ -> Alcotest.fail "foreign grid must be rejected"
  | Error e -> Alcotest.(check bool) "names the grid mismatch" true (contains e "grid")

let test_merge_rejects_conflicting_duplicate () =
  with_temp_dir @@ fun dir ->
  let shards = 2 in
  run_shard ~dir ~shards ~index:0 sweep_cells;
  run_shard ~dir ~shards ~index:1 sweep_cells;
  (* Forge a duplicate of a shard-0 cell into shard 1's checkpoint with a
     tampered flow count — valid CRC, valid decode, different bytes.  The
     determinism audit must refuse the merge. *)
  let path0 = Filename.concat dir (Shard.checkpoint_name ~shards ~index:0) in
  let path1 = Filename.concat dir (Shard.checkpoint_name ~shards ~index:1) in
  let entry = List.hd (Checkpoint.read_entries ~path:path0) in
  let tampered =
    match entry.Checkpoint.result with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "flows", Json.Int n -> (k, Json.Int (n + 1))
               | _ -> (k, v))
             fields)
    | _ -> Alcotest.fail "sweep result must be an object"
  in
  let line = Checkpoint.seal ~kind:entry.Checkpoint.kind ~key:entry.Checkpoint.key tampered in
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 path1 (fun oc ->
      Out_channel.output_string oc (line ^ "\n"));
  (match Merge.sweep ~dir ~policies:policy_names sweep_cells with
  | Ok _ -> Alcotest.fail "conflicting duplicate must refuse to merge"
  | Error e -> Alcotest.(check bool) "names the determinism violation" true
        (contains e "determinism"));
  (* The same duplicate with identical bytes is fine — and audited. *)
  let clean = Checkpoint.seal ~kind:entry.Checkpoint.kind ~key:entry.Checkpoint.key
      entry.Checkpoint.result
  in
  let lines = In_channel.with_open_bin path1 In_channel.input_lines in
  let keep = List.filter (fun l -> l <> line) lines in
  Out_channel.with_open_bin path1 (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) (keep @ [ clean ]));
  match Merge.sweep ~dir ~policies:policy_names sweep_cells with
  | Error e -> Alcotest.failf "byte-equal duplicate must merge: %s" e
  | Ok (_, report) -> Alcotest.(check int) "duplicate audited" 1 report.Merge.duplicate_cells

(* --- kill a worker mid-shard, take over its lease, resume, merge --- *)

let test_takeover_after_kill () =
  with_temp_dir @@ fun dir ->
  let shards = 2 in
  let reference = Experiment.run_sweep ~policies ~jobs:1 sweep_cells in
  let all_keys = List.map Checkpoint.sweep_key sweep_cells in
  let mine = Shard.plan ~shards ~index:0 sweep_cells in
  let ckpt_path = Filename.concat dir (Shard.checkpoint_name ~shards ~index:0) in
  flush stdout;
  flush stderr;
  (match Unix.fork () with
  | 0 ->
      (* The doomed worker: claim the lease, plod through shard 0. *)
      (try
         match Lease.acquire ~dir ~name:(Shard.file_stem ~shards ~index:0) () with
         | Error _ -> ()
         | Ok { lease; _ } ->
             ignore
               (Shard.write_manifest ~dir
                  (Shard.make ~kind:"sweep" ~shards ~index:0 ~policies:policy_names all_keys));
             let ck = Checkpoint.open_ ~path:ckpt_path ~resume:true in
             ignore
               (Checkpoint.run_sweep ~policies ~jobs:1
                  ~on_append:(fun _ -> Lease.refresh lease)
                  ck mine);
             Checkpoint.close ck;
             Lease.release lease
       with _ -> ());
      Unix._exit 0
  | pid ->
      (* SIGKILL the worker once at least one cell is durable: a real crash,
         lease left in place. *)
      let count_lines () =
        match In_channel.with_open_bin ckpt_path In_channel.input_lines with
        | lines -> List.length lines
        | exception Sys_error _ -> 0
      in
      let deadline = Unix.gettimeofday () +. 30. in
      let reaped = ref false in
      let rec wait () =
        if count_lines () >= 1 || Unix.gettimeofday () > deadline then ()
        else
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              Unix.sleepf 0.002;
              wait ()
          | _ -> reaped := true
      in
      wait ();
      if not !reaped then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end);
  (* The takeover worker: the dead worker's lease must read as stale (dead
     same-host pid) despite a fresh heartbeat and a generous ttl. *)
  (match Lease.acquire ~dir ~name:(Shard.file_stem ~shards ~index:0) ~ttl:3600. () with
  | Error h -> Alcotest.failf "dead worker's lease not reclaimable (held by %s)" h.Lease.owner
  | Ok { lease; _ } ->
      ignore
        (Shard.write_manifest ~dir
           (Shard.make ~kind:"sweep" ~shards ~index:0 ~policies:policy_names all_keys));
      let ck = Checkpoint.open_ ~path:ckpt_path ~resume:true in
      Alcotest.(check bool) "dead worker's prefix survives" true
        (Checkpoint.loaded ck <= List.length mine);
      ignore
        (Checkpoint.run_sweep ~policies ~jobs:1
           ~on_append:(fun _ -> Lease.refresh lease)
           ck mine);
      Checkpoint.close ck;
      Lease.release lease);
  (* Shard 1 runs normally; the merged artifact must match the clean run. *)
  run_shard ~dir ~shards ~index:1 sweep_cells;
  match Merge.sweep ~dir ~policies:policy_names sweep_cells with
  | Error e -> Alcotest.failf "merge after takeover failed: %s" e
  | Ok (results, report) ->
      Alcotest.(check bool) "nothing missing" true (report.Merge.missing = []);
      Alcotest.(check string) "kill + takeover + merge = uninterrupted single box"
        (artifact reference) (artifact results)

(* --- property: any shard count merges to the unsharded run --- *)

let property_cells =
  List.map
    (fun seed ->
      {
        Experiment.workload = "poisson";
        ports = 3;
        arrival_rate = 2.0;
        horizon = 3;
        max_demand = 2;
        sweep_seed = seed;
        lp = false;
      })
    [ 1; 2; 3; 4; 5 ]

let property_reference =
  lazy (artifact (Experiment.run_sweep ~policies ~jobs:1 property_cells))

let prop_merge_any_shard_count =
  QCheck2.Test.make ~name:"merge over any shard count = unsharded run" ~count:8
    QCheck2.Gen.(int_range 1 6)
    (fun shards ->
      with_temp_dir @@ fun dir ->
      for index = 0 to shards - 1 do
        run_shard ~dir ~shards ~index property_cells
      done;
      match Merge.sweep ~dir ~policies:policy_names property_cells with
      | Error e -> QCheck2.Test.fail_reportf "merge failed with %d shards: %s" shards e
      | Ok (results, report) ->
          report.Merge.missing = [] && artifact results = Lazy.force property_reference)

let () =
  Alcotest.run "flowsched_dist"
    [
      ( "shard",
        [
          Alcotest.test_case "plan partitions the grid" `Quick test_plan_partitions;
          Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "manifest compatibility" `Quick test_manifest_compatibility;
        ] );
      ( "lease",
        [
          Alcotest.test_case "acquire and release" `Quick test_lease_acquire_and_release;
          Alcotest.test_case "live holder blocks" `Quick test_lease_live_holder_blocks;
          Alcotest.test_case "takeover of dead pid" `Quick test_lease_takeover_dead_pid;
          Alcotest.test_case "takeover of expired ttl" `Quick test_lease_takeover_expired_ttl;
          Alcotest.test_case "refresh detects theft" `Quick test_lease_refresh_detects_theft;
        ] );
      ( "merge",
        [
          Alcotest.test_case "equals single box" `Quick test_merge_equals_single_box;
          Alcotest.test_case "reports missing shard" `Quick test_merge_reports_missing_shard;
          Alcotest.test_case "rejects foreign grid" `Quick test_merge_rejects_foreign_grid;
          Alcotest.test_case "rejects conflicting duplicate" `Quick
            test_merge_rejects_conflicting_duplicate;
        ] );
      ( "takeover", [ Alcotest.test_case "kill then takeover" `Slow test_takeover_after_kill ] );
      ( "properties", List.map QCheck_alcotest.to_alcotest [ prop_merge_any_shard_count ] );
    ]
