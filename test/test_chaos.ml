(* Chaos harness for the resilience layer: deterministic fault plans driven
   through the pool must either converge to the byte-identical fault-free
   output (given retry budget) or fail deterministically; checkpointed runs
   killed mid-flight must resume to the same artifact. *)

module Pool = Flowsched_exec.Pool
module Faults = Flowsched_exec.Faults
module Metrics = Flowsched_obs.Metrics
module Experiment = Flowsched_sim.Experiment
module Report = Flowsched_sim.Report
module Checkpoint = Flowsched_sim.Checkpoint
module Json = Flowsched_util.Json
module Heuristics = Flowsched_online.Heuristics

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  go 0

let no_zombies_left () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | _ -> false

let hash_job x =
  let g = Flowsched_util.Prng.create x in
  let acc = ref 0 in
  for _ = 1 to 1000 do
    acc := (!acc * 31) + Flowsched_util.Prng.int g 1000
  done;
  (x, !acc land 0xFFFF)

(* --- pool-level chaos --- *)

let injected_total () =
  List.fold_left
    (fun acc name -> acc + Metrics.counter_value (Metrics.counter name))
    0
    [
      "faults.injected_crash";
      "faults.injected_hang";
      "faults.injected_raise";
      "faults.injected_corrupt";
    ]

let test_chaos_converges_to_fault_free () =
  let inputs = Array.init 24 (fun i -> i) in
  let reference = Pool.map ~jobs:1 ~f:hash_job inputs in
  let injected_before = injected_total () in
  List.iter
    (fun seed ->
      let faults = Faults.make ~crash:0.15 ~raise_:0.2 ~corrupt:0.15 ~seed () in
      let chaotic = Pool.map ~jobs:3 ~retries:12 ~faults ~f:hash_job inputs in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: chaos run identical to fault-free" seed)
        true (reference = chaotic))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "faults were actually injected" true
    (injected_total () > injected_before);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_hang_recovered_by_timeout () =
  (* Find (purely, so the test stays deterministic) a plan that hangs
     attempt 1 of job 0 but leaves attempt 2 clean; the timeout must kill
     the hung worker and the retry must succeed. *)
  let rec find seed =
    let p = Faults.make ~hang:0.5 ~seed () in
    if
      Faults.decide p ~job:0 ~attempt:1 = Some Faults.Hang
      && Faults.decide p ~job:0 ~attempt:2 = None
    then p
    else find (seed + 1)
  in
  let plan = find 0 in
  let t0 = Unix.gettimeofday () in
  let outcomes = Pool.map ~jobs:2 ~retries:1 ~timeout:0.5 ~faults:plan ~f:(fun x -> x + 1) [| 0 |] in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match outcomes.(0) with
  | Pool.Done v -> Alcotest.(check int) "recovered after hang" 1 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "should have recovered: %s" reason);
  Alcotest.(check bool) "did not wait for the hang to finish" true (elapsed < 30.);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_always_raise_fails_deterministically () =
  let plan = Faults.make ~raise_:1.0 ~seed:9 () in
  let run jobs = Pool.map ~jobs ~retries:2 ~faults:plan ~f:(fun x -> x) [| 0; 1 |] in
  let forked = run 2 in
  Array.iteri
    (fun job outcome ->
      match outcome with
      | Pool.Failed { attempts; reason } ->
          Alcotest.(check int) "attempts = retries + 1" 3 attempts;
          Alcotest.(check string) "deterministic last reason"
            (Faults.reason Faults.Raise ~job ~attempt:3)
            reason
      | Pool.Done _ -> Alcotest.fail "raise-everything plan must fail")
    forked;
  Alcotest.(check bool) "inline and forked outcomes identical" true (run 1 = forked);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_corrupt_frames_never_wedge () =
  let c = Metrics.counter "pool.frames_corrupt" in
  let before = Metrics.counter_value c in
  let plan = Faults.make ~corrupt:1.0 ~seed:4 () in
  let outcomes = Pool.map ~jobs:2 ~retries:1 ~faults:plan ~f:(fun x -> x * 3) [| 0; 1; 2 |] in
  Array.iter
    (fun outcome ->
      match outcome with
      | Pool.Failed { attempts; reason } ->
          Alcotest.(check int) "both attempts burned" 2 attempts;
          Alcotest.(check bool) "reason mentions corruption" true (contains reason "corrupt")
      | Pool.Done _ -> Alcotest.fail "corrupt frames must never be accepted")
    outcomes;
  Alcotest.(check int) "every corrupt frame counted" (before + 6) (Metrics.counter_value c);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

(* --- checkpoint/resume --- *)

let policies = [ Heuristics.maxcard; Heuristics.maxweight ]

let sweep_cells =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          {
            Experiment.workload;
            ports = 4;
            arrival_rate = 2.0;
            horizon = 4;
            max_demand = 2;
            sweep_seed = seed;
            lp = true;
          })
        [ 1; 2 ])
    [ "poisson"; "uniform" ]

let strip_wall = Report.strip_sweep_timing

(* The byte-identity oracle: the artifact with its (legitimately
   nondeterministic) timing fields zeroed. *)
let artifact results = Json.to_string (Report.sweep_json (List.map strip_wall results))

let read_lines path =
  In_channel.with_open_bin path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        lines)

let with_temp_checkpoint f =
  let path = Filename.temp_file "flowsched_chaos_ckpt" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_checkpoint_prefix_resume () =
  with_temp_checkpoint @@ fun path ->
  let reference = Experiment.run_sweep ~policies ~jobs:1 sweep_cells in
  let ck = Checkpoint.open_ ~path ~resume:false in
  let full = Checkpoint.run_sweep ~policies ~jobs:2 ck sweep_cells in
  Checkpoint.close ck;
  Alcotest.(check bool) "checkpointed run matches plain run" true
    (artifact reference = artifact full);
  let lines = read_lines path in
  Alcotest.(check int) "one line per cell" (List.length sweep_cells) (List.length lines);
  (* Keep only the first two lines, as if the run died at 2/4.  Lines land
     in completion order, so these can be any two of the four cells. *)
  let kept = List.filteri (fun i _ -> i < 2) lines in
  write_lines path kept;
  let kept_keys =
    List.map
      (fun line ->
        match Json.parse line with
        | Ok j -> Option.get (Option.bind (Json.member "key" j) Json.to_string_opt)
        | Error e -> Alcotest.failf "checkpoint line does not parse: %s" e)
      kept
  in
  let ck = Checkpoint.open_ ~path ~resume:true in
  Alcotest.(check int) "two cells recovered" 2 (Checkpoint.loaded ck);
  let resumed = Checkpoint.run_sweep ~policies ~jobs:2 ck sweep_cells in
  Checkpoint.close ck;
  Alcotest.(check bool) "resumed artifact byte-identical" true
    (artifact reference = artifact resumed);
  (* Recovered cells must be byte-identical unstripped too — they carry the
     original run's wall-clock readings through decode . encode. *)
  List.iter2
    (fun cell (orig, res) ->
      if List.mem (Checkpoint.sweep_key cell) kept_keys then
        Alcotest.(check string)
          (Printf.sprintf "cell %s preserved exactly" (Checkpoint.sweep_key cell))
          (Json.to_string (Report.sweep_cell_json orig))
          (Json.to_string (Report.sweep_cell_json res)))
    sweep_cells (List.combine full resumed)

let test_checkpoint_under_chaos_matches_fault_free () =
  with_temp_checkpoint @@ fun path ->
  let reference = Experiment.run_sweep ~policies ~jobs:1 sweep_cells in
  let ck = Checkpoint.open_ ~path ~resume:false in
  let chaotic =
    Checkpoint.run_sweep ~policies ~jobs:2 ~retries:10 ~timeout:5.
      ~faults:(Faults.chaos ~seed:5) ck sweep_cells
  in
  Checkpoint.close ck;
  Alcotest.(check bool) "chaos sweep converges to fault-free artifact" true
    (artifact reference = artifact chaotic);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_checkpoint_partial_tail_tolerated () =
  with_temp_checkpoint @@ fun path ->
  let ck = Checkpoint.open_ ~path ~resume:false in
  let full = Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells in
  Checkpoint.close ck;
  let lines = read_lines path in
  (* A writer killed mid-append leaves a truncated last line. *)
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o644 path (fun oc ->
      Out_channel.output_string oc {|{"kind": "sweep", "key": "tr|});
  let ck = Checkpoint.open_ ~path ~resume:true in
  Alcotest.(check int) "all complete cells survive" (List.length lines) (Checkpoint.loaded ck);
  let resumed = Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells in
  Checkpoint.close ck;
  Alcotest.(check bool) "nothing recomputed, artifact identical" true
    (artifact full = artifact resumed);
  Alcotest.(check bool) "partial tail rewritten away" true
    (read_lines path = lines)

let test_checkpoint_corrupt_middle_rejected () =
  with_temp_checkpoint @@ fun path ->
  let ck = Checkpoint.open_ ~path ~resume:false in
  ignore (Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells);
  Checkpoint.close ck;
  (match read_lines path with
  | first :: rest when rest <> [] -> write_lines path (("garbage " ^ first) :: rest)
  | _ -> Alcotest.fail "expected at least two checkpoint lines");
  Alcotest.(check bool) "mid-file corruption raises" true
    (match Checkpoint.open_ ~path ~resume:true with
    | _ -> false
    | exception Failure _ -> true)

let test_checkpoint_stale_entry_rejected () =
  with_temp_checkpoint @@ fun path ->
  let ck = Checkpoint.open_ ~path ~resume:false in
  ignore (Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells);
  Checkpoint.close ck;
  (* Splice cell 0's key onto cell 1's recorded result: the key matches a
     grid cell but the payload disagrees with its config (different seed) —
     resuming must refuse rather than silently serve the wrong numbers. *)
  let lines = read_lines path in
  let key_of line =
    match Json.parse line with
    | Ok j -> Option.get (Option.bind (Json.member "key" j) Json.to_string_opt)
    | Error e -> Alcotest.failf "checkpoint line does not parse: %s" e
  in
  (* Re-seal the forged entry so its CRC is valid: the splice must get past
     the integrity layer and be caught by the config check at decode. *)
  let forged =
    match (lines, Json.parse (List.nth lines 1)) with
    | first :: _, Ok j ->
        let kind =
          Option.get (Option.bind (Json.member "kind" j) Json.to_string_opt)
        in
        let result = Option.get (Json.member "result" j) in
        Checkpoint.seal ~kind ~key:(key_of first) result
    | _ -> Alcotest.fail "expected parsable checkpoint lines"
  in
  write_lines path [ forged ];
  let ck = Checkpoint.open_ ~path ~resume:true in
  Alcotest.(check int) "forged entry loads" 1 (Checkpoint.loaded ck);
  Alcotest.(check bool) "mismatched entry rejected at decode" true
    (match Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells with
    | _ -> false
    | exception Failure _ -> true);
  Checkpoint.close ck

let test_kill_then_resume () =
  with_temp_checkpoint @@ fun path ->
  Sys.remove path;
  let reference = Experiment.run_sweep ~policies ~jobs:1 sweep_cells in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* The doomed writer: plod through the grid, checkpointing each cell. *)
      (try
         let ck = Checkpoint.open_ ~path ~resume:false in
         ignore (Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells);
         Checkpoint.close ck
       with _ -> ());
      Unix._exit 0
  | pid ->
      (* SIGKILL the writer as soon as at least one cell is durable (or let
         it finish — the resume contract must hold either way). *)
      let count_lines () = if Sys.file_exists path then List.length (read_lines path) else 0 in
      let deadline = Unix.gettimeofday () +. 60. in
      let reaped = ref false in
      let rec wait () =
        if count_lines () >= 1 || Unix.gettimeofday () > deadline then ()
        else
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              Unix.sleepf 0.002;
              wait ()
          | _ -> reaped := true
      in
      wait ();
      if not !reaped then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end;
      let ck = Checkpoint.open_ ~path ~resume:true in
      let survived = Checkpoint.loaded ck in
      Alcotest.(check bool) "survivors bounded by the grid" true
        (survived <= List.length sweep_cells);
      let resumed = Checkpoint.run_sweep ~policies ~jobs:1 ck sweep_cells in
      Checkpoint.close ck;
      Alcotest.(check bool)
        (Printf.sprintf "resume after kill (%d cells survived) equals uninterrupted" survived)
        true
        (artifact reference = artifact resumed);
      Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let () =
  Alcotest.run "flowsched_chaos"
    [
      ( "pool",
        [
          Alcotest.test_case "chaos converges to fault-free" `Slow
            test_chaos_converges_to_fault_free;
          Alcotest.test_case "hang recovered by timeout" `Slow test_hang_recovered_by_timeout;
          Alcotest.test_case "always-raise fails deterministically" `Quick
            test_always_raise_fails_deterministically;
          Alcotest.test_case "corrupt frames never wedge" `Quick
            test_corrupt_frames_never_wedge;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "prefix resume byte-identical" `Quick
            test_checkpoint_prefix_resume;
          Alcotest.test_case "chaos + checkpoint converges" `Slow
            test_checkpoint_under_chaos_matches_fault_free;
          Alcotest.test_case "partial tail tolerated" `Quick
            test_checkpoint_partial_tail_tolerated;
          Alcotest.test_case "corrupt middle rejected" `Quick
            test_checkpoint_corrupt_middle_rejected;
          Alcotest.test_case "stale entry rejected" `Quick test_checkpoint_stale_entry_rejected;
          Alcotest.test_case "kill then resume" `Slow test_kill_then_resume;
        ] );
    ]
