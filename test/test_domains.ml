(* Tests for flowsched_domains: Chase–Lev deque invariants (sequential and
   under concurrent stealing), cooperative deadlines, the shared-memory
   executor's Pool-contract conformance (ordering, determinism, retry,
   timeout, on_result), scoped Parallel.map fork–join semantics, and the
   cross-backend equivalence property (inline = fork = domains, artifacts
   and merged counters alike). *)

open Flowsched_domains
module Pool = Flowsched_exec.Pool
module Metrics = Flowsched_obs.Metrics

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  go 0

let results_exn outcomes =
  Array.map
    (function
      | Pool.Done v -> v
      | Pool.Failed { reason; _ } -> Alcotest.failf "unexpected Failed: %s" reason)
    outcomes

(* Same job as the pool tests: the result depends on the payload through
   enough PRNG work that any ordering or stream-aliasing bug scrambles it. *)
let hash_job x =
  let g = Flowsched_util.Prng.create x in
  let acc = ref 0 in
  for _ = 1 to 1000 do
    acc := (!acc * 31) + Flowsched_util.Prng.int g 1000
  done;
  (x, !acc land 0xFFFF)

(* --- Deque --- *)

let test_deque_lifo_owner () =
  let q = Deque.create () in
  for i = 1 to 5 do
    Deque.push q i
  done;
  Alcotest.(check (list (option int)))
    "owner pops LIFO then empty"
    [ Some 5; Some 4; Some 3; Some 2; Some 1; None ]
    (List.init 6 (fun _ -> Deque.pop q))

let test_deque_steal_fifo () =
  let q = Deque.create () in
  for i = 1 to 4 do
    Deque.push q i
  done;
  Alcotest.(check (option int)) "steal takes oldest" (Some 1) (Deque.steal q);
  Alcotest.(check (option int)) "steal takes next oldest" (Some 2) (Deque.steal q);
  Alcotest.(check (option int)) "owner still LIFO" (Some 4) (Deque.pop q);
  Alcotest.(check (option int)) "last element" (Some 3) (Deque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal q)

let test_deque_growth () =
  (* Push far past the initial capacity, interleaving pops, and check
     nothing is lost or duplicated. *)
  let q = Deque.create () in
  let popped = ref [] in
  for i = 0 to 9999 do
    Deque.push q i;
    if i mod 3 = 0 then
      match Deque.pop q with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain acc = match Deque.pop q with Some v -> drain (v :: acc) | None -> acc in
  let all = List.sort compare (!popped @ drain []) in
  Alcotest.(check int) "all items present exactly once" 10000 (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "lost or duplicated item %d" i) all

let test_deque_concurrent_steal () =
  (* One owner pushes and pops; several thieves steal concurrently.  Every
     pushed item must be consumed exactly once across all parties.  (On a
     single-core box the domains timeshare, which still exercises the
     CAS races around the last element.) *)
  let q = Deque.create () in
  let n = 20_000 and nthieves = 3 in
  let stolen = Array.make nthieves [] in
  let stop = Atomic.make false in
  let thieves =
    Array.init nthieves (fun t ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            while not (Atomic.get stop) do
              match Deque.steal q with
              | Some v -> mine := v :: !mine
              | None -> Domain.cpu_relax ()
            done;
            (* final sweep so nothing is stranded *)
            let rec sweep () =
              match Deque.steal q with
              | Some v ->
                  mine := v :: !mine;
                  sweep ()
              | None -> ()
            in
            sweep ();
            stolen.(t) <- !mine))
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Deque.push q i;
    if i land 7 = 0 then
      match Deque.pop q with Some v -> popped := v :: !popped | None -> ()
  done;
  let rec drain () =
    match Deque.pop q with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let all =
    List.sort compare (Array.fold_left (fun acc l -> l @ acc) !popped stolen)
  in
  Alcotest.(check int) "every item consumed exactly once" n (List.length all);
  List.iteri (fun i v -> if i <> v then Alcotest.failf "item %d lost or duplicated" i) all

(* --- Deadline --- *)

let test_deadline_expires () =
  Deadline.set (Some (Unix.gettimeofday () -. 0.01, 0.5));
  (match Deadline.check () with
  | () -> Alcotest.fail "expired deadline did not raise"
  | exception Deadline.Expired b ->
      Alcotest.(check (float 1e-9)) "carries the budget" 0.5 b);
  Deadline.set None;
  Deadline.check ();
  Alcotest.(check bool) "disarmed after set None" true (Deadline.get () = None)

(* --- Executor --- *)

let test_executor_matches_inline () =
  let inputs = Array.init 40 (fun i -> i + 1) in
  let seq = results_exn (Pool.map ~jobs:1 ~f:hash_job inputs) in
  let par = results_exn (Executor.map ~jobs:4 ~f:hash_job inputs) in
  Alcotest.(check (array (pair int int))) "byte-identical merge order" seq par

let test_executor_random_reseeded_per_job () =
  let f _ = Random.int 1_000_000 in
  let inputs = Array.init 16 (fun i -> i) in
  let seq = results_exn (Pool.map ~jobs:1 ~f inputs) in
  let par = results_exn (Executor.map ~jobs:4 ~f inputs) in
  Alcotest.(check (array int)) "same Random draws as inline" seq par

let test_executor_retry_then_done () =
  (* Shared memory makes cross-attempt state trivial: fail each odd job's
     first two attempts, then succeed.  With retries = 2 every job ends
     Done; attempts are invisible in Done but the jobs must all recover. *)
  let attempts = Array.make 8 0 in
  let f x =
    let a = attempts.(x) in
    attempts.(x) <- a + 1;
    if x land 1 = 1 && a < 2 then failwith "transient";
    x * 10
  in
  let outcomes =
    Executor.map ~jobs:3 ~retries:2 ~backoff:0.001 ~f (Array.init 8 (fun i -> i))
  in
  Alcotest.(check (array int))
    "all recovered" (Array.init 8 (fun i -> i * 10)) (results_exn outcomes);
  Array.iteri
    (fun x a -> Alcotest.(check int) "attempt count" (if x land 1 = 1 then 3 else 1) a)
    attempts

let test_executor_failed_after_budget () =
  let outcomes =
    Executor.map ~jobs:2 ~retries:1 ~backoff:0.001
      ~f:(fun x -> if x = 2 then failwith "always broken" else x)
      [| 0; 1; 2; 3 |]
  in
  (match outcomes.(2) with
  | Pool.Failed { attempts; reason } ->
      Alcotest.(check int) "retries + 1 attempts" 2 attempts;
      Alcotest.(check bool) "reason text preserved" true (contains reason "always broken")
  | Pool.Done _ -> Alcotest.fail "job 2 should have failed");
  Alcotest.(check int) "other jobs fine" 3 (match outcomes.(3) with
    | Pool.Done v -> v
    | Pool.Failed _ -> -1)

let test_executor_cooperative_timeout () =
  (* The job checks its deadline mid-loop, so the attempt is cut short and
     reported with the pool's timeout reason string. *)
  let f _ =
    for _ = 1 to 1000 do
      Deadline.check ();
      Unix.sleepf 0.002
    done
  in
  let outcomes = Executor.map ~jobs:2 ~timeout:0.02 ~retries:0 ~f [| 0 |] in
  match outcomes.(0) with
  | Pool.Failed { reason; _ } ->
      Alcotest.(check bool) "timeout reason" true (contains reason "timed out after")
  | Pool.Done _ -> Alcotest.fail "should have timed out"

let test_executor_posthoc_timeout () =
  (* A job that never checks is still discarded once it returns over
     budget — the inline-mode rule. *)
  let outcomes =
    Executor.map ~jobs:2 ~timeout:0.01 ~retries:0 ~f:(fun _ -> Unix.sleepf 0.05) [| 0 |]
  in
  match outcomes.(0) with
  | Pool.Failed { reason; _ } ->
      Alcotest.(check bool) "post-hoc timeout" true (contains reason "timed out after")
  | Pool.Done _ -> Alcotest.fail "should have timed out post hoc"

let test_executor_on_result_once_each () =
  let seen = Hashtbl.create 16 in
  let outcomes =
    Executor.map ~jobs:4
      ~on_result:(fun job outcome ->
        if Hashtbl.mem seen job then Alcotest.failf "on_result fired twice for %d" job;
        Hashtbl.replace seen job outcome)
      ~f:(fun x -> x + 1)
      (Array.init 12 (fun i -> i))
  in
  Alcotest.(check int) "fired once per job" 12 (Hashtbl.length seen);
  Hashtbl.iter
    (fun job o ->
      match (o, outcomes.(job)) with
      | Pool.Done a, Pool.Done b -> Alcotest.(check int) "same payload" b a
      | _ -> Alcotest.fail "outcome mismatch")
    seen

let test_executor_metrics_absorbed () =
  (* Counter increments made inside worker domains must all be visible in
     the caller after map returns. *)
  let c = Metrics.counter "test.domains_exec_incr" in
  let before = Metrics.counter_value c in
  ignore
    (results_exn
       (Executor.map ~jobs:4 ~f:(fun _ -> Metrics.incr c) (Array.init 20 (fun i -> i))));
  Alcotest.(check int) "all increments absorbed" (before + 20) (Metrics.counter_value c)

(* --- Parallel --- *)

let test_parallel_map_order () =
  let expected = Array.init 37 (fun i -> hash_job i) in
  Alcotest.(check (array (pair int int)))
    "index order preserved" expected
    (Parallel.map ~width:4 37 hash_job);
  Alcotest.(check (array (pair int int)))
    "width 1 sequential path" expected
    (Parallel.map ~width:1 37 hash_job);
  Alcotest.(check (array (pair int int)))
    "width beyond n" expected
    (Parallel.map ~width:64 37 hash_job)

let test_parallel_map_exception () =
  (* All indices run under domains; the smallest raising index wins. *)
  match Parallel.map ~width:3 9 (fun i -> if i >= 4 then failwith (string_of_int i) else i) with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "smallest raising index" "4" msg

let test_parallel_map_metrics () =
  let c = Metrics.counter "test.domains_par_incr" in
  let before = Metrics.counter_value c in
  ignore (Parallel.map ~width:4 25 (fun _ -> Metrics.incr c));
  Alcotest.(check int) "spawned-domain increments absorbed" (before + 25)
    (Metrics.counter_value c)

(* --- Cross-backend equivalence (QCheck) --- *)

module Experiment = Flowsched_sim.Experiment
module Report = Flowsched_sim.Report
module Simplex = Flowsched_lp.Simplex

(* Wall-clock and simplex phase timers are the only nondeterministic fields
   in a sweep result; zero them so renderings compare byte-for-byte. *)
let zero_timing (r : Experiment.sweep_result) =
  {
    r with
    Experiment.wall_s = 0.;
    lp_counters =
      Option.map
        (fun c -> { c with Simplex.phase1_seconds = 0.; phase2_seconds = 0. })
        r.Experiment.lp_counters;
  }

let algorithmic_counters snap =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Counter n
        when not
               (contains name "pool." || contains name "domains."
               || contains name "trace.") ->
          Some (name, n)
      | _ -> None)
    snap

(* OCaml 5 forbids Unix.fork once ANY domain has ever been spawned in the
   process, so the property runs in one QCheck iteration over a random
   {e list} of grids with every fork leg executed before the first domains
   leg — and the properties group is listed first in the suite, before the
   unit tests that spawn domains.  (Shrink re-runs after a failure happen
   with domains already spawned; the fork leg is skipped then, which only
   affects the minimization of an already-reported failure.) *)
let domains_spawned = ref false

let prop_backend_equivalence =
  QCheck2.Test.make ~name:"inline = fork = domains (artifact and counters)" ~count:1
    QCheck2.Gen.(
      list_size (int_range 2 4)
        (triple (int_range 1 1_000_000) (int_range 1 3) (int_range 3 5)))
    (fun specs ->
      let policies =
        [ Flowsched_online.Heuristics.maxcard; Flowsched_online.Heuristics.minrtime ]
      in
      let grids =
        List.map
          (fun (seed, ncells, horizon) ->
            List.init ncells (fun i ->
                {
                  Experiment.workload =
                    (if (seed + i) mod 2 = 0 then "poisson" else "uniform");
                  ports = 4;
                  arrival_rate = 2.0;
                  horizon;
                  max_demand = 3;
                  sweep_seed = seed + (31 * i);
                  lp = true;
                }))
          specs
      in
      let run backend jobs cells =
        let before = Metrics.snapshot () in
        let results = Experiment.run_sweep ~policies ~backend ~jobs cells in
        let counters =
          algorithmic_counters (Metrics.diff (Metrics.snapshot ()) before)
        in
        let artifact =
          Flowsched_util.Json.to_string
            (Report.sweep_json ~jobs:1 (List.map zero_timing results))
        in
        (artifact, counters)
      in
      let fork_sides =
        if !domains_spawned then None else Some (List.map (run Backend.Fork 4) grids)
      in
      let inline_sides = List.map (run Backend.Inline 1) grids in
      domains_spawned := true;
      let domains_sides = List.map (run Backend.Domains 4) grids in
      List.iteri
        (fun g ((ai, ci), (ad, cd)) ->
          if ai <> ad then
            QCheck2.Test.fail_reportf "grid %d: domains artifact differs from inline" g;
          if ci <> cd then
            QCheck2.Test.fail_reportf "grid %d: domains counter totals differ from inline" g;
          match fork_sides with
          | None -> ()
          | Some fs ->
              let af, cf = List.nth fs g in
              if ai <> af then
                QCheck2.Test.fail_reportf "grid %d: fork artifact differs from inline" g;
              if ci <> cf then
                QCheck2.Test.fail_reportf "grid %d: fork counter totals differ from inline" g)
        (List.combine inline_sides domains_sides);
      true)

(* --- Backend parsing --- *)

let test_backend_of_string () =
  List.iter
    (fun b ->
      match Backend.of_string (Backend.to_string b) with
      | Ok b' -> Alcotest.(check bool) "round-trips" true (b = b')
      | Error e -> Alcotest.fail e)
    Backend.all;
  match Backend.of_string "threads" with
  | Ok _ -> Alcotest.fail "accepted junk"
  | Error msg ->
      Alcotest.(check bool) "error names the choices" true (contains msg "inline|fork|domains")

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_backend_equivalence ] in
  Alcotest.run "flowsched_domains"
    [
      (* Must run first: the fork leg of the equivalence property is illegal
         once any other test has spawned a domain (see comment above). *)
      ("properties", props);
      ( "deque",
        [
          Alcotest.test_case "owner LIFO" `Quick test_deque_lifo_owner;
          Alcotest.test_case "steal FIFO" `Quick test_deque_steal_fifo;
          Alcotest.test_case "growth" `Quick test_deque_growth;
          Alcotest.test_case "concurrent steal" `Quick test_deque_concurrent_steal;
        ] );
      ("deadline", [ Alcotest.test_case "expires" `Quick test_deadline_expires ]);
      ( "executor",
        [
          Alcotest.test_case "matches inline" `Quick test_executor_matches_inline;
          Alcotest.test_case "Random reseeded per job" `Quick
            test_executor_random_reseeded_per_job;
          Alcotest.test_case "retry then done" `Quick test_executor_retry_then_done;
          Alcotest.test_case "failed after budget" `Quick test_executor_failed_after_budget;
          Alcotest.test_case "cooperative timeout" `Quick test_executor_cooperative_timeout;
          Alcotest.test_case "post-hoc timeout" `Quick test_executor_posthoc_timeout;
          Alcotest.test_case "on_result once each" `Quick test_executor_on_result_once_each;
          Alcotest.test_case "metrics absorbed" `Quick test_executor_metrics_absorbed;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "order" `Quick test_parallel_map_order;
          Alcotest.test_case "exception" `Quick test_parallel_map_exception;
          Alcotest.test_case "metrics" `Quick test_parallel_map_metrics;
        ] );
      ("backend", [ Alcotest.test_case "of_string" `Quick test_backend_of_string ]);
    ]
