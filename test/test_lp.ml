(* Tests for flowsched_lp: model construction and the two-phase revised
   simplex, including randomized feasibility/optimality properties. *)

open Flowsched_lp

let check_close ?(tol = 1e-6) what expected got =
  if abs_float (expected -. got) > tol then
    Alcotest.failf "%s: expected %.9f, got %.9f" what expected got

(* --- model --- *)

let test_model_basic () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~obj:1. m in
  let y = Model.add_var ~name:"y" m in
  Model.set_obj m y 3.;
  let r = Model.add_constraint ~name:"cap" m [ (x, 1.); (y, 2.) ] Model.Le 10. in
  Alcotest.(check int) "vars" 2 (Model.num_vars m);
  Alcotest.(check int) "rows" 1 (Model.num_rows m);
  Alcotest.(check string) "var name" "x" (Model.var_name m x);
  Alcotest.(check string) "row name" "cap" (Model.row_name m r);
  check_close "obj coeff" 3. (Model.objective_coeff m y);
  check_close "activity" 8. (Model.row_activity m [| 2.; 3. |] r)

let test_model_merges_duplicate_terms () =
  let m = Model.create () in
  let x = Model.add_var m in
  let r = Model.add_constraint m [ (x, 1.); (x, 2.) ] Model.Le 5. in
  match Model.row_terms m r with
  | [ (v, c) ] ->
      Alcotest.(check int) "var" x v;
      check_close "merged coeff" 3. c
  | terms -> Alcotest.failf "expected 1 term, got %d" (List.length terms)

let test_model_rejects_unknown_var () =
  let m = Model.create () in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Model.add_constraint: unknown variable") (fun () ->
      ignore (Model.add_constraint m [ (0, 1.) ] Model.Le 1.))

let test_model_is_feasible () =
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  Alcotest.(check bool) "feasible point" true (Model.is_feasible m [| 3. |]);
  Alcotest.(check bool) "infeasible point" false (Model.is_feasible m [| 1. |]);
  Alcotest.(check bool) "negative var" false (Model.is_feasible m [| -1. |])

(* --- simplex on hand-checked instances --- *)

let test_simplex_simple_le () =
  (* min -x1 - 2 x2  s.t.  x1 + x2 <= 4, x1 <= 2  =>  x = (0,4), obj -8 *)
  let m = Model.create () in
  let x1 = Model.add_var ~obj:(-1.) m in
  let x2 = Model.add_var ~obj:(-2.) m in
  ignore (Model.add_constraint m [ (x1, 1.); (x2, 1.) ] Model.Le 4.);
  ignore (Model.add_constraint m [ (x1, 1.) ] Model.Le 2.);
  let r = Simplex.solve m in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_close "objective" (-8.) r.Simplex.objective;
  check_close "x2" 4. r.Simplex.values.(x2)

let test_simplex_ge_rows () =
  (* min 2x + 3y  s.t.  x + y >= 4, x >= 1  => (3,1) obj 9 ... check:
     candidates: y=0,x=4 obj 8; x=1,y=3 obj 11; so optimum is x=4,y=0, obj 8 *)
  let m = Model.create () in
  let x = Model.add_var ~obj:2. m in
  let y = Model.add_var ~obj:3. m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 4.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 1.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" 8. r.Simplex.objective;
  check_close "x" 4. r.Simplex.values.(x);
  check_close "y" 0. r.Simplex.values.(y)

let test_simplex_eq_rows () =
  (* min x + y  s.t.  x + 2y = 6, x - y = 0  =>  x = y = 2, obj 4 *)
  let m = Model.create () in
  let x = Model.add_var ~obj:1. m in
  let y = Model.add_var ~obj:1. m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 2.) ] Model.Eq 6.);
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Eq 0.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" 4. r.Simplex.objective;
  check_close "x" 2. r.Simplex.values.(x);
  check_close "y" 2. r.Simplex.values.(y)

let test_simplex_negative_rhs () =
  (* min x s.t. -x <= -3  (i.e. x >= 3) *)
  let m = Model.create () in
  let x = Model.add_var ~obj:1. m in
  ignore (Model.add_constraint m [ (x, -1.) ] Model.Le (-3.));
  let r = Simplex.solve_or_fail m in
  check_close "objective" 3. r.Simplex.objective

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 2.);
  let r = Simplex.solve m in
  Alcotest.(check bool) "infeasible" true (r.Simplex.status = Simplex.Infeasible)

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.add_var ~obj:(-1.) m in
  let y = Model.add_var m in
  ignore (Model.add_constraint m [ (x, 1.); (y, -1.) ] Model.Le 1.);
  let r = Simplex.solve m in
  Alcotest.(check bool) "unbounded" true (r.Simplex.status = Simplex.Unbounded)

let test_simplex_no_rows () =
  let m = Model.create () in
  let _x = Model.add_var ~obj:5. m in
  let r = Simplex.solve m in
  Alcotest.(check bool) "optimal" true (r.Simplex.status = Simplex.Optimal);
  check_close "trivial optimum" 0. r.Simplex.objective

let test_simplex_redundant_equalities () =
  (* x + y = 2 appears twice: the second row is redundant, the artificial
     stays basic at zero and must not break phase 2. *)
  let m = Model.create () in
  let x = Model.add_var ~obj:1. m in
  let y = Model.add_var ~obj:2. m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 2.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Eq 2.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" 2. r.Simplex.objective;
  check_close "x" 2. r.Simplex.values.(x)

let test_simplex_degenerate () =
  (* Klee-Minty-flavoured degeneracy: multiple constraints tight at the
     optimum. Bland fallback must keep it terminating. *)
  let m = Model.create () in
  let x = Model.add_var ~obj:(-1.) m in
  let y = Model.add_var ~obj:(-1.) m in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (y, 1.) ] Model.Le 1.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 2.);
  ignore (Model.add_constraint m [ (x, 1.); (y, 2.) ] Model.Le 3.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" (-2.) r.Simplex.objective

let test_simplex_vertex_property () =
  (* basic solutions have at most [rows] non-zero structural values *)
  let m = Model.create () in
  let vars = Array.init 20 (fun i -> Model.add_var ~obj:(1. +. float_of_int (i mod 3)) m) in
  ignore
    (Model.add_constraint m (Array.to_list (Array.map (fun v -> (v, 1.)) vars)) Model.Ge 5.);
  ignore
    (Model.add_constraint m
       (Array.to_list (Array.mapi (fun i v -> (v, float_of_int ((i mod 4) + 1))) vars))
       Model.Ge 7.);
  let r = Simplex.solve_or_fail m in
  let nonzero = Array.fold_left (fun acc v -> if v > 1e-9 then acc + 1 else acc) 0 r.Simplex.values in
  Alcotest.(check bool) "vertex support <= rows" true (nonzero <= Model.num_rows m)

let test_simplex_duals_weak_duality () =
  (* min 3x + 2y s.t. x + y >= 2, x >= 0.5: duals must satisfy y'b = obj at
     optimum (strong duality for LP). *)
  let m = Model.create () in
  let x = Model.add_var ~obj:3. m in
  let y = Model.add_var ~obj:2. m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Ge 2.);
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 0.5);
  let r = Simplex.solve_or_fail m in
  let dual_obj = (r.Simplex.duals.(0) *. 2.) +. (r.Simplex.duals.(1) *. 0.5) in
  check_close "strong duality" r.Simplex.objective dual_obj

let test_simplex_solution_feasible () =
  let m = Model.create () in
  let x = Model.add_var ~obj:1. m in
  let y = Model.add_var ~obj:4. m in
  let z = Model.add_var ~obj:2. m in
  ignore (Model.add_constraint m [ (x, 2.); (y, 1.); (z, 1.) ] Model.Ge 6.);
  ignore (Model.add_constraint m [ (x, 1.); (z, 3.) ] Model.Ge 4.);
  ignore (Model.add_constraint m [ (y, 1.); (z, 1.) ] Model.Le 5.);
  let r = Simplex.solve_or_fail m in
  Alcotest.(check bool) "solution feasible" true (Model.is_feasible m r.Simplex.values)

(* Random mixed-sense LPs for the reference-solver cross-check: coefficients
   in 0..3, senses random, all objective coefficients >= 0 so the problem is
   never unbounded (outcomes are Optimal or Infeasible only). *)
let gen_random_lp_for_reference =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 6 in
    let* rows = int_range 1 6 in
    return (seed, n, rows))

let build_mixed_lp (seed, n, rows) =
  let g = Flowsched_util.Prng.create (seed + 17) in
  let m = Model.create () in
  let vars =
    Array.init n (fun _ -> Model.add_var ~obj:(float_of_int (Flowsched_util.Prng.int g 4)) m)
  in
  for _ = 1 to rows do
    let terms = ref [] in
    Array.iter
      (fun v ->
        let c = Flowsched_util.Prng.int g 4 in
        if c > 0 then terms := (v, float_of_int c) :: !terms)
      vars;
    if !terms <> [] then begin
      let sense =
        match Flowsched_util.Prng.int g 3 with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
      in
      ignore (Model.add_constraint m !terms sense (float_of_int (Flowsched_util.Prng.int g 9)))
    end
  done;
  m

(* --- independent reference solver ---

   A naive dense full-tableau Big-M simplex with Bland's rule.  Slow and
   numerically crude, but completely independent of the production solver's
   code paths (no revised form, no phase split, no incremental duals), so
   agreement on random instances is a meaningful cross-check. *)

let reference_solve model =
  let n = Model.num_vars model in
  let rows = Model.num_rows model in
  let big_m = 1e7 in
  (* columns: structural n, then one slack/surplus per inequality, then one
     artificial per Ge/Eq row; rhs normalized to >= 0 *)
  let n_slack =
    ref 0
  in
  let n_art = ref 0 in
  for r = 0 to rows - 1 do
    let rhs = Model.row_rhs model r in
    let sense = Model.row_sense model r in
    let sense = if rhs < 0. then (match sense with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq) else sense in
    (match sense with Model.Le | Model.Ge -> incr n_slack | Model.Eq -> ());
    (match sense with Model.Ge | Model.Eq -> incr n_art | Model.Le -> ())
  done;
  let ncols = n + !n_slack + !n_art in
  let tab = Array.make_matrix rows (ncols + 1) 0. in
  let cost = Array.make ncols 0. in
  for v = 0 to n - 1 do
    cost.(v) <- Model.objective_coeff model v
  done;
  let basis = Array.make rows (-1) in
  let next_slack = ref n and next_art = ref (n + !n_slack) in
  for r = 0 to rows - 1 do
    let rhs = Model.row_rhs model r in
    let sign = if rhs < 0. then -1. else 1. in
    let sense =
      let s = Model.row_sense model r in
      if rhs < 0. then (match s with Model.Le -> Model.Ge | Model.Ge -> Model.Le | Model.Eq -> Model.Eq) else s
    in
    List.iter (fun (v, c) -> tab.(r).(v) <- sign *. c) (Model.row_terms model r);
    tab.(r).(ncols) <- sign *. rhs;
    (match sense with
    | Model.Le ->
        tab.(r).(!next_slack) <- 1.;
        basis.(r) <- !next_slack;
        incr next_slack
    | Model.Ge ->
        tab.(r).(!next_slack) <- -1.;
        incr next_slack;
        tab.(r).(!next_art) <- 1.;
        cost.(!next_art) <- big_m;
        basis.(r) <- !next_art;
        incr next_art
    | Model.Eq ->
        tab.(r).(!next_art) <- 1.;
        cost.(!next_art) <- big_m;
        basis.(r) <- !next_art;
        incr next_art)
  done;
  (* Bland's rule pivoting on reduced costs z_j - c_j *)
  let max_pivots = 200 * (rows + ncols) + 1000 in
  let rec iterate k =
    if k > max_pivots then `GiveUp
    else begin
      let reduced j =
        let zj = ref 0. in
        for r = 0 to rows - 1 do
          zj := !zj +. (cost.(basis.(r)) *. tab.(r).(j))
        done;
        cost.(j) -. !zj
      in
      let enter = ref (-1) in
      (try
         for j = 0 to ncols - 1 do
           if reduced j < -1e-7 then begin
             enter := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !enter < 0 then `Done
      else begin
        let j = !enter in
        let leave = ref (-1) and best = ref infinity in
        for r = 0 to rows - 1 do
          if tab.(r).(j) > 1e-9 then begin
            let ratio = tab.(r).(ncols) /. tab.(r).(j) in
            if
              ratio < !best -. 1e-12
              || (abs_float (ratio -. !best) <= 1e-12
                 && (!leave < 0 || basis.(r) < basis.(!leave)))
            then begin
              best := ratio;
              leave := r
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          let r = !leave in
          let piv = tab.(r).(j) in
          for c = 0 to ncols do
            tab.(r).(c) <- tab.(r).(c) /. piv
          done;
          for r' = 0 to rows - 1 do
            if r' <> r && tab.(r').(j) <> 0. then begin
              let f = tab.(r').(j) in
              for c = 0 to ncols do
                tab.(r').(c) <- tab.(r').(c) -. (f *. tab.(r).(c))
              done
            end
          done;
          basis.(r) <- j;
          iterate (k + 1)
        end
      end
    end
  in
  match iterate 0 with
  | `GiveUp -> `GiveUp
  | `Unbounded -> `Unbounded
  | `Done ->
      (* artificial left basic at positive value -> infeasible *)
      let infeasible = ref false in
      let objective = ref 0. in
      for r = 0 to rows - 1 do
        if basis.(r) >= n + !n_slack && tab.(r).(ncols) > 1e-5 then infeasible := true;
        if basis.(r) < n then objective := !objective +. (cost.(basis.(r)) *. tab.(r).(ncols))
      done;
      if !infeasible then `Infeasible else `Optimal !objective

let prop_matches_reference_solver =
  QCheck2.Test.make ~name:"revised simplex = naive Big-M tableau oracle" ~count:200
    gen_random_lp_for_reference (fun params ->
      let model = build_mixed_lp params in
      let ours = Simplex.solve model in
      match (reference_solve model, ours.Simplex.status) with
      | `Optimal obj, Simplex.Optimal -> abs_float (obj -. ours.Simplex.objective) < 1e-4
      | `Infeasible, Simplex.Infeasible -> true
      | `Unbounded, Simplex.Unbounded -> true
      | `GiveUp, _ -> true (* oracle timed out; no verdict *)
      | _ -> false)

(* --- classic stress instances --- *)

let test_klee_minty () =
  (* Klee-Minty cube, n = 6: min -sum 2^(n-j) x_j subject to
     2*sum_{j<i} 2^(i-j) x_j + x_i <= 5^i; optimum -5^n.  Exponential for a
     naive Dantzig walk on the worst basis ordering, but must still solve
     correctly and within the iteration budget. *)
  let n = 6 in
  let m = Model.create () in
  let xs =
    Array.init n (fun j ->
        Model.add_var ~name:(Printf.sprintf "x%d" j)
          ~obj:(-.(2. ** float_of_int (n - 1 - j)))
          m)
  in
  for i = 0 to n - 1 do
    let terms = ref [ (xs.(i), 1.) ] in
    for j = 0 to i - 1 do
      terms := (xs.(j), 2. *. (2. ** float_of_int (i - j))) :: !terms
    done;
    ignore (Model.add_constraint m !terms Model.Le (5. ** float_of_int (i + 1)))
  done;
  let r = Simplex.solve_or_fail m in
  check_close ~tol:1e-3 "Klee-Minty optimum" (-.(5. ** float_of_int n)) r.Simplex.objective

let test_beale_cycling () =
  (* Beale's classic cycling example; Bland's fallback must terminate it
     at the optimum -0.05. *)
  let m = Model.create () in
  let x4 = Model.add_var ~name:"x4" ~obj:(-0.75) m in
  let x5 = Model.add_var ~name:"x5" ~obj:150. m in
  let x6 = Model.add_var ~name:"x6" ~obj:(-0.02) m in
  let x7 = Model.add_var ~name:"x7" ~obj:6. m in
  ignore (Model.add_constraint m [ (x4, 0.25); (x5, -60.); (x6, -0.04); (x7, 9.) ] Model.Le 0.);
  ignore (Model.add_constraint m [ (x4, 0.5); (x5, -90.); (x6, -0.02); (x7, 3.) ] Model.Le 0.);
  ignore (Model.add_constraint m [ (x6, 1.) ] Model.Le 1.);
  let r = Simplex.solve_or_fail m in
  check_close ~tol:1e-9 "Beale optimum" (-0.05) r.Simplex.objective

let test_iteration_limit_raises () =
  let m = Model.create () in
  let vars = Array.init 12 (fun i -> Model.add_var ~obj:(-1. -. float_of_int i) m) in
  Array.iter (fun v -> ignore (Model.add_constraint m [ (v, 1.) ] Model.Le 1.)) vars;
  ignore
    (Model.add_constraint m (Array.to_list (Array.map (fun v -> (v, 1.)) vars)) Model.Le 6.);
  (try
     ignore (Simplex.solve ~max_iters:1 m);
     Alcotest.fail "expected Iteration_limit"
   with Simplex.Iteration_limit _ -> ());
  (* and with a sane budget the same model solves *)
  let r = Simplex.solve_or_fail m in
  Alcotest.(check bool) "solves with budget" true (r.Simplex.objective < 0.)

let test_lp_format_debug_dump () =
  (* Lp_io exists primarily for debugging; make sure it round-trips through
     a solve without touching solver state. *)
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~obj:1. m in
  ignore (Model.add_constraint m [ (x, 2.) ] Model.Ge 4.);
  let before = Lp_io.to_lp_format m in
  let r = Simplex.solve_or_fail m in
  let after = Lp_io.to_lp_format m in
  Alcotest.(check string) "model unchanged by solving" before after;
  check_close "objective" 2. r.Simplex.objective

(* --- randomized properties --- *)

(* Build a random feasible LP: pick x0 >= 0, random sparse A >= 0, set
   b_i = (A x0)_i with Le sense, plus demand rows keeping it bounded. *)
let gen_random_lp =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 12 in
    let* rows = int_range 1 8 in
    return (seed, n, rows))

let build_random_lp (seed, n, rows) =
  let g = Flowsched_util.Prng.create seed in
  let m = Model.create () in
  let vars = Array.init n (fun _ -> Model.add_var ~obj:(float_of_int (Flowsched_util.Prng.int g 5)) m) in
  let x0 = Array.init n (fun _ -> float_of_int (Flowsched_util.Prng.int g 4)) in
  for _ = 1 to rows do
    let terms = ref [] in
    let activity = ref 0. in
    Array.iteri
      (fun i v ->
        if Flowsched_util.Prng.int g 3 > 0 then begin
          let c = float_of_int (1 + Flowsched_util.Prng.int g 3) in
          terms := (v, c) :: !terms;
          activity := !activity +. (c *. x0.(i))
        end)
      vars;
    if !terms <> [] then begin
      let slackness = float_of_int (Flowsched_util.Prng.int g 3) in
      ignore (Model.add_constraint m !terms Model.Le (!activity +. slackness))
    end
  done;
  (m, x0)

let prop_random_feasible_lp_optimal =
  QCheck2.Test.make ~name:"random feasible LP solves to feasible vertex" ~count:300
    gen_random_lp (fun params ->
      let m, x0 = build_random_lp params in
      let r = Simplex.solve m in
      match r.Simplex.status with
      | Simplex.Optimal ->
          let c_x0 =
            Array.to_list x0
            |> List.mapi (fun i v -> Model.objective_coeff m i *. v)
            |> List.fold_left ( +. ) 0.
          in
          Model.is_feasible ~tol:1e-5 m r.Simplex.values
          && r.Simplex.objective <= c_x0 +. 1e-6
      | _ -> false)

let prop_random_lp_with_demands =
  (* Mixed Ge/Le rows exercising phase 1: x_i >= d_i plus a generous shared
     capacity; optimum is the sum of demand costs. *)
  QCheck2.Test.make ~name:"phase-1 LPs: per-var demand + shared capacity" ~count:200
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 10))
    (fun (seed, n) ->
      let g = Flowsched_util.Prng.create seed in
      let m = Model.create () in
      let demands = Array.init n (fun _ -> float_of_int (Flowsched_util.Prng.int g 3)) in
      let vars = Array.init n (fun _ -> Model.add_var ~obj:1. m) in
      Array.iteri (fun i v -> ignore (Model.add_constraint m [ (v, 1.) ] Model.Ge demands.(i))) vars;
      let total = Array.fold_left ( +. ) 0. demands in
      ignore
        (Model.add_constraint m
           (Array.to_list (Array.map (fun v -> (v, 1.)) vars))
           Model.Le (total +. 5.));
      let r = Simplex.solve m in
      r.Simplex.status = Simplex.Optimal && abs_float (r.Simplex.objective -. total) < 1e-6)

let prop_scaling_invariance =
  (* Scaling a row must not change the optimum. *)
  QCheck2.Test.make ~name:"row scaling invariance" ~count:100
    QCheck2.Gen.(pair (int_bound 100_000) (float_range 0.5 8.))
    (fun (seed, scale) ->
      let g = Flowsched_util.Prng.create seed in
      let build scale =
        let m = Model.create () in
        let x = Model.add_var ~obj:(1. +. float_of_int (Flowsched_util.Prng.int (Flowsched_util.Prng.copy g) 3)) m in
        let y = Model.add_var ~obj:2. m in
        ignore (Model.add_constraint m [ (x, scale); (y, scale) ] Model.Ge (2. *. scale));
        Simplex.solve m
      in
      let r1 = build 1. and r2 = build scale in
      r1.Simplex.status = Simplex.Optimal
      && r2.Simplex.status = Simplex.Optimal
      && abs_float (r1.Simplex.objective -. r2.Simplex.objective) < 1e-6)

(* --- warm starts --- *)

let test_warm_resolve_same_model () =
  (* Re-solving a model seeded with its own optimal basis must confirm the
     same optimum in (at most) as many pivots — near zero in practice. *)
  let m, _ = build_random_lp (7, 10, 6) in
  let r1 = Simplex.solve_or_fail m in
  let r2 = Simplex.solve_or_fail ~warm:(Array.to_list r1.Simplex.basis) m in
  Alcotest.(check bool) "same objective" true
    (abs_float (r1.Simplex.objective -. r2.Simplex.objective) <= 1e-9);
  Alcotest.(check bool) "no more pivots than cold" true
    (r2.Simplex.iterations <= r1.Simplex.iterations)

let test_warm_basis_shape () =
  (* The returned basis only names structural vars and row slacks, never
     more entries than rows. *)
  let m = build_mixed_lp (3, 5, 5) in
  let r = Simplex.solve m in
  match r.Simplex.status with
  | Simplex.Optimal ->
      Alcotest.(check bool) "basis fits rows" true
        (Array.length r.Simplex.basis <= Model.num_rows m);
      Array.iter
        (function
          | Simplex.Basic_var v ->
              Alcotest.(check bool) "var id in range" true (v >= 0 && v < Model.num_vars m)
          | Simplex.Basic_slack row ->
              Alcotest.(check bool) "row id in range" true
                (row >= 0 && row < Model.num_rows m)
          | Simplex.Nonbasic_upper v ->
              Alcotest.(check bool) "upper-bound var id in range" true
                (v >= 0 && v < Model.num_vars m))
        r.Simplex.basis
  | _ -> ()

let test_counters_accounting () =
  Simplex.reset_counters ();
  let m, _ = build_random_lp (11, 8, 5) in
  let r = Simplex.solve_or_fail m in
  let c = Simplex.read_counters () in
  Alcotest.(check int) "one solve recorded" 1 c.Simplex.solves;
  Alcotest.(check int) "pivots = result iterations" r.Simplex.iterations c.Simplex.pivots;
  Alcotest.(check bool) "snapshot is detached" true
    (let snap = Simplex.read_counters () in
     ignore (Simplex.solve m);
     snap.Simplex.solves = 1);
  Simplex.reset_counters ();
  Alcotest.(check int) "reset zeroes" 0 (Simplex.read_counters ()).Simplex.solves

(* The legacy counters record is now a shim over the flowsched_obs metrics
   registry; the two views must stay equal, and reset must zero both. *)
let test_counters_shim_matches_registry () =
  let module M = Flowsched_obs.Metrics in
  Simplex.reset_counters ();
  let m, _ = build_random_lp (13, 9, 7) in
  ignore (Simplex.solve_or_fail m);
  ignore (Simplex.solve m);
  let c = Simplex.read_counters () in
  let reg name = M.counter_value (M.counter name) in
  Alcotest.(check int) "solves" (reg "simplex.solves") c.Simplex.solves;
  Alcotest.(check int) "pivots" (reg "simplex.pivots") c.Simplex.pivots;
  Alcotest.(check int) "ftran" (reg "simplex.ftran_calls") c.Simplex.ftran_calls;
  Alcotest.(check int) "refactorizations" (reg "simplex.refactorizations")
    c.Simplex.refactorizations;
  Alcotest.(check int) "full scans" (reg "simplex.full_pricing_scans")
    c.Simplex.full_pricing_scans;
  Alcotest.(check int) "partial rounds" (reg "simplex.partial_pricing_rounds")
    c.Simplex.partial_pricing_rounds;
  Alcotest.(check int) "warm attempts" (reg "simplex.warm_attempts") c.Simplex.warm_attempts;
  Alcotest.(check int) "warm accepted" (reg "simplex.warm_accepted") c.Simplex.warm_accepted;
  Alcotest.(check int) "phase1 skipped" (reg "simplex.phase1_skipped") c.Simplex.phase1_skipped;
  Alcotest.(check int) "basis nnz" (reg "simplex.basis_nnz") c.Simplex.basis_nnz;
  Alcotest.(check int) "factor nnz" (reg "simplex.factor_nnz") c.Simplex.factor_nnz;
  Alcotest.(check int) "eta nnz" (reg "simplex.eta_nnz") c.Simplex.eta_nnz;
  Alcotest.(check int) "bound flips" (reg "simplex.bound_flips") c.Simplex.bound_flips;
  Alcotest.(check (float 1e-9)) "phase1 seconds"
    (M.gauge_value (M.gauge "simplex.phase1_seconds"))
    c.Simplex.phase1_seconds;
  Alcotest.(check (float 1e-9)) "phase2 seconds"
    (M.gauge_value (M.gauge "simplex.phase2_seconds"))
    c.Simplex.phase2_seconds;
  (* diff_counters subtracts field-wise *)
  let d = Simplex.diff_counters c c in
  Alcotest.(check int) "self-diff solves" 0 d.Simplex.solves;
  Alcotest.(check int) "self-diff pivots" 0 d.Simplex.pivots;
  Simplex.reset_counters ();
  Alcotest.(check int) "reset zeroes the registry too" 0 (reg "simplex.solves");
  Alcotest.(check int) "reset zeroes pivots in registry" 0 (reg "simplex.pivots")

(* --- sparse LU --- *)

(* Dense Gaussian elimination with partial pivoting, as the oracle for
   Sparse_lu: returns the solution of [a] x = [rhs], or None if singular. *)
let dense_solve a rhs =
  let n = Array.length rhs in
  let m = Array.map Array.copy a in
  let b = Array.copy rhs in
  let ok = ref true in
  for k = 0 to n - 1 do
    if !ok then begin
      let piv = ref k in
      for i = k + 1 to n - 1 do
        if abs_float m.(i).(k) > abs_float m.(!piv).(k) then piv := i
      done;
      if abs_float m.(!piv).(k) < 1e-10 then ok := false
      else begin
        if !piv <> k then begin
          let t = m.(k) in
          m.(k) <- m.(!piv);
          m.(!piv) <- t;
          let t = b.(k) in
          b.(k) <- b.(!piv);
          b.(!piv) <- t
        end;
        for i = k + 1 to n - 1 do
          let f = m.(i).(k) /. m.(k).(k) in
          if f <> 0. then begin
            for jj = k to n - 1 do
              m.(i).(jj) <- m.(i).(jj) -. (f *. m.(k).(jj))
            done;
            b.(i) <- b.(i) -. (f *. b.(k))
          end
        done
      end
    end
  done;
  if not !ok then None
  else begin
    let x = Array.make n 0. in
    for i = n - 1 downto 0 do
      let s = ref b.(i) in
      for jj = i + 1 to n - 1 do
        s := !s -. (m.(i).(jj) *. x.(jj))
      done;
      x.(i) <- !s /. m.(i).(i)
    done;
    Some x
  end

let transpose a =
  let n = Array.length a in
  Array.init n (fun i -> Array.init n (fun j -> a.(j).(i)))

(* Random dense matrix as (dense array, Sparse_lu column accessor): entries
   in [-4, 4] with a sparsity mask, so the LU sees genuinely sparse
   columns. *)
let gen_matrix seed n =
  let g = Flowsched_util.Prng.create seed in
  let a =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            if Flowsched_util.Prng.int g 3 = 0 then 0.
            else float_of_int (Flowsched_util.Prng.int g 9 - 4)))
  in
  (* Nudge the diagonal so random instances are usually nonsingular (the
     oracle still decides; this only improves the generator's yield). *)
  for i = 0 to n - 1 do
    if a.(i).(i) = 0. then a.(i).(i) <- 1.
  done;
  let col j =
    let rows = ref [] and vals = ref [] in
    for i = n - 1 downto 0 do
      if a.(i).(j) <> 0. then begin
        rows := i :: !rows;
        vals := a.(i).(j) :: !vals
      end
    done;
    (Array.of_list !rows, Array.of_list !vals)
  in
  (a, col)

let prop_sparse_lu_matches_dense =
  QCheck2.Test.make ~name:"sparse LU solve/solve_t = dense Gaussian oracle" ~count:500
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 9))
    (fun (seed, n) ->
      let a, col = gen_matrix seed n in
      let g = Flowsched_util.Prng.create (seed + 31) in
      let rhs = Array.init n (fun _ -> float_of_int (Flowsched_util.Prng.int g 11 - 5)) in
      match dense_solve a rhs with
      | None -> (
          (* Oracle says (near-)singular: the LU must agree rather than
             silently produce garbage. *)
          match Sparse_lu.factorize ~m:n ~col with
          | exception Sparse_lu.Singular -> true
          | lu ->
              (* Threshold pivoting may still factor a matrix the oracle
                 rejects as borderline: accept if residuals are sane. *)
              let x = Array.make n 0. in
              Sparse_lu.solve lu rhs x;
              Array.for_all (fun v -> Float.is_finite v) x)
      | Some x_ref -> (
          match Sparse_lu.factorize ~m:n ~col with
          | exception Sparse_lu.Singular -> false (* oracle solved it *)
          | lu ->
              let x = Array.make n 0. in
              Sparse_lu.solve lu rhs x;
              let ftran_ok =
                Array.for_all2 (fun got want -> abs_float (got -. want) < 1e-6) x x_ref
              in
              let y_ref =
                match dense_solve (transpose a) rhs with
                | Some y -> y
                | None -> Alcotest.fail "transpose singular but matrix was not"
              in
              let y = Array.make n 0. in
              Sparse_lu.solve_t lu rhs y;
              let btran_ok =
                Array.for_all2 (fun got want -> abs_float (got -. want) < 1e-6) y y_ref
              in
              ftran_ok && btran_ok))

let test_sparse_lu_singular_zero_column () =
  (* A structurally empty column must raise Singular, not crash or loop. *)
  let col j = if j = 0 then ([| 0; 1 |], [| 1.; 2. |]) else ([||], [||]) in
  Alcotest.check_raises "zero column" Sparse_lu.Singular (fun () ->
      ignore (Sparse_lu.factorize ~m:2 ~col))

let test_sparse_lu_singular_duplicate_column () =
  (* Two identical columns: numerically singular, caught during
     elimination rather than up front. *)
  let col _ = ([| 0; 1 |], [| 1.; 2. |]) in
  Alcotest.check_raises "duplicate columns" Sparse_lu.Singular (fun () ->
      ignore (Sparse_lu.factorize ~m:2 ~col))

let test_sparse_lu_identity_and_permutation () =
  (* Identity: solve is the identity map. *)
  let lu = Sparse_lu.factorize ~m:3 ~col:(fun j -> ([| j |], [| 1. |])) in
  let x = Array.make 3 0. in
  Sparse_lu.solve lu [| 7.; -2.; 5. |] x;
  Alcotest.(check (array (float 1e-9))) "identity solve" [| 7.; -2.; 5. |] x;
  (* Permutation with scaling: column j has its entry on row (j+1) mod 3. *)
  let lu = Sparse_lu.factorize ~m:3 ~col:(fun j -> ([| (j + 1) mod 3 |], [| 2. |])) in
  Sparse_lu.solve lu [| 2.; 4.; 6. |] x;
  (* x_j carries b at row (j+1) mod 3, halved. *)
  Alcotest.(check (array (float 1e-9))) "permutation solve" [| 2.; 3.; 1. |] x

(* --- bounded variables --- *)

let test_bounded_binding_upper () =
  (* min -x - y  s.t.  x + y <= 4,  x <= 2.5 (declared)  =>  x=2.5, y=1.5 *)
  let m = Model.create () in
  let x = Model.add_var ~obj:(-1.) ~ub:2.5 m in
  let y = Model.add_var ~obj:(-1.) m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 4.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" (-4.) r.Simplex.objective;
  check_close "x at its bound" 2.5 r.Simplex.values.(x);
  check_close "y fills the row" 1.5 r.Simplex.values.(y)

let test_bounded_pure_flip_no_rows () =
  (* min -x with x <= 3 and no constraint rows: the optimum is a pure bound
     flip — no basis, no pivots. *)
  let m = Model.create () in
  let x = Model.add_var ~obj:(-1.) ~ub:3. m in
  Simplex.reset_counters ();
  let r = Simplex.solve_or_fail m in
  check_close "objective" (-3.) r.Simplex.objective;
  check_close "x at bound" 3. r.Simplex.values.(x);
  Alcotest.(check int) "no pivots" 0 r.Simplex.iterations;
  Alcotest.(check bool) "flip counted" true
    ((Simplex.read_counters ()).Simplex.bound_flips >= 1)

let test_bounded_infeasible_vs_row () =
  (* x >= 5 but x <= 2 declared: phase 1 cannot reach feasibility. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:2. m in
  ignore (Model.add_constraint m [ (x, 1.) ] Model.Ge 5.);
  let r = Simplex.solve m in
  Alcotest.(check bool) "infeasible" true (r.Simplex.status = Simplex.Infeasible)

let test_bounded_zero_upper () =
  (* ub = 0 pins the variable: min -x -2y, x+y <= 3, x <= 0  =>  y=3 *)
  let m = Model.create () in
  let x = Model.add_var ~obj:(-1.) ~ub:0. m in
  let y = Model.add_var ~obj:(-2.) m in
  ignore (Model.add_constraint m [ (x, 1.); (y, 1.) ] Model.Le 3.);
  let r = Simplex.solve_or_fail m in
  check_close "objective" (-6.) r.Simplex.objective;
  check_close "x pinned at 0" 0. r.Simplex.values.(x);
  check_close "y takes the row" 3. r.Simplex.values.(y)

let test_bounded_nonbinding_matches_unbounded () =
  (* A loose declared bound must not change the optimum. *)
  let build ub =
    let m = Model.create () in
    let x = Model.add_var ~obj:(-2.) ?ub m in
    let y = Model.add_var ~obj:(-3.) m in
    ignore (Model.add_constraint m [ (x, 2.); (y, 1.) ] Model.Le 8.);
    ignore (Model.add_constraint m [ (x, 1.); (y, 3.) ] Model.Le 9.);
    Simplex.solve_or_fail m
  in
  let free = build None and loose = build (Some 1000.) in
  check_close "same objective" free.Simplex.objective loose.Simplex.objective;
  Array.iteri
    (fun i v -> check_close (Printf.sprintf "value %d" i) v loose.Simplex.values.(i))
    free.Simplex.values

(* Declared bounds vs the same bounds written as explicit Le rows: identical
   objectives on random bounded LPs (the formulations' vertex sets match). *)
let build_bounded_lp ~declared (seed, n, rows) =
  let g = Flowsched_util.Prng.create (seed + 71) in
  let m = Model.create () in
  let ubs = Array.init n (fun _ -> float_of_int (1 + Flowsched_util.Prng.int g 5)) in
  let vars =
    Array.init n (fun i ->
        let obj = float_of_int (Flowsched_util.Prng.int g 7 - 3) in
        if declared then Model.add_var ~obj ~ub:ubs.(i) m else Model.add_var ~obj m)
  in
  if not declared then
    Array.iteri (fun i v -> ignore (Model.add_constraint m [ (v, 1.) ] Model.Le ubs.(i))) vars;
  for _ = 1 to rows do
    let terms = ref [] in
    Array.iter
      (fun v ->
        let c = Flowsched_util.Prng.int g 4 in
        if c > 0 then terms := (v, float_of_int c) :: !terms)
      vars;
    if !terms <> [] then begin
      let sense = if Flowsched_util.Prng.int g 4 = 0 then Model.Ge else Model.Le in
      ignore (Model.add_constraint m !terms sense (float_of_int (2 + Flowsched_util.Prng.int g 9)))
    end
  done;
  m

let prop_declared_bounds_match_rows =
  QCheck2.Test.make ~name:"declared upper bounds = explicit Le rows" ~count:300
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 6) (int_range 0 5))
    (fun params ->
      let a = Simplex.solve (build_bounded_lp ~declared:true params) in
      let b = Simplex.solve (build_bounded_lp ~declared:false params) in
      a.Simplex.status = b.Simplex.status
      && (a.Simplex.status <> Simplex.Optimal
         || abs_float (a.Simplex.objective -. b.Simplex.objective) <= 1e-6))

let prop_warm_matches_cold =
  (* The basis of a cold solve, fed back as a warm start, must reproduce
     status and objective exactly (mixed senses exercise the phase-1 skip
     and the feasibility-preserving crash). *)
  QCheck2.Test.make ~name:"warm solve with cold basis = cold solve" ~count:200
    gen_random_lp_for_reference (fun params ->
      let m = build_mixed_lp params in
      let cold = Simplex.solve m in
      match cold.Simplex.status with
      | Simplex.Optimal ->
          let warm = Simplex.solve ~warm:(Array.to_list cold.Simplex.basis) m in
          warm.Simplex.status = Simplex.Optimal
          && abs_float (warm.Simplex.objective -. cold.Simplex.objective) <= 1e-6
          && warm.Simplex.iterations <= cold.Simplex.iterations
      | _ -> true)

let prop_warm_garbage_basis_is_safe =
  (* An arbitrary (wrong, partly out-of-range) warm basis must never change
     the answer: unusable bases fall back to the cold start. *)
  QCheck2.Test.make ~name:"garbage warm basis falls back safely" ~count:200
    gen_random_lp_for_reference (fun params ->
      let m = build_mixed_lp params in
      let cold = Simplex.solve m in
      let garbage =
        [
          Simplex.Basic_var 0;
          Simplex.Basic_var (Model.num_vars m - 1);
          Simplex.Basic_var 9999;
          Simplex.Basic_slack 0;
          Simplex.Basic_slack (Model.num_rows m - 1);
          Simplex.Basic_slack 9999;
        ]
      in
      let warm = Simplex.solve ~warm:garbage m in
      warm.Simplex.status = cold.Simplex.status
      && (cold.Simplex.status <> Simplex.Optimal
         || abs_float (warm.Simplex.objective -. cold.Simplex.objective) <= 1e-6))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_random_feasible_lp_optimal;
        prop_random_lp_with_demands;
        prop_scaling_invariance;
        prop_matches_reference_solver;
        prop_sparse_lu_matches_dense;
        prop_declared_bounds_match_rows;
        prop_warm_matches_cold;
        prop_warm_garbage_basis_is_safe;
      ]
  in
  Alcotest.run "flowsched_lp"
    [
      ( "model",
        [
          Alcotest.test_case "basic construction" `Quick test_model_basic;
          Alcotest.test_case "merges duplicate terms" `Quick test_model_merges_duplicate_terms;
          Alcotest.test_case "rejects unknown vars" `Quick test_model_rejects_unknown_var;
          Alcotest.test_case "is_feasible" `Quick test_model_is_feasible;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "simple Le" `Quick test_simplex_simple_le;
          Alcotest.test_case "Ge rows (phase 1)" `Quick test_simplex_ge_rows;
          Alcotest.test_case "Eq rows" `Quick test_simplex_eq_rows;
          Alcotest.test_case "negative rhs normalization" `Quick test_simplex_negative_rhs;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "no rows" `Quick test_simplex_no_rows;
          Alcotest.test_case "redundant equalities" `Quick test_simplex_redundant_equalities;
          Alcotest.test_case "degenerate vertices" `Quick test_simplex_degenerate;
          Alcotest.test_case "vertex support bound" `Quick test_simplex_vertex_property;
          Alcotest.test_case "strong duality" `Quick test_simplex_duals_weak_duality;
          Alcotest.test_case "solution feasibility" `Quick test_simplex_solution_feasible;
        ] );
      ( "warm-start",
        [
          Alcotest.test_case "same-model re-solve" `Quick test_warm_resolve_same_model;
          Alcotest.test_case "basis shape" `Quick test_warm_basis_shape;
          Alcotest.test_case "counters accounting" `Quick test_counters_accounting;
          Alcotest.test_case "counters shim matches registry" `Quick
            test_counters_shim_matches_registry;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "singular: zero column" `Quick test_sparse_lu_singular_zero_column;
          Alcotest.test_case "singular: duplicate columns" `Quick
            test_sparse_lu_singular_duplicate_column;
          Alcotest.test_case "identity and permutation" `Quick
            test_sparse_lu_identity_and_permutation;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "binding upper bound" `Quick test_bounded_binding_upper;
          Alcotest.test_case "pure bound flip, no rows" `Quick test_bounded_pure_flip_no_rows;
          Alcotest.test_case "bound conflicts with Ge row" `Quick test_bounded_infeasible_vs_row;
          Alcotest.test_case "zero upper bound pins variable" `Quick test_bounded_zero_upper;
          Alcotest.test_case "loose bound changes nothing" `Quick
            test_bounded_nonbinding_matches_unbounded;
        ] );
      ( "stress",
        [
          Alcotest.test_case "Klee-Minty cube" `Quick test_klee_minty;
          Alcotest.test_case "Beale cycling" `Quick test_beale_cycling;
          Alcotest.test_case "iteration limit" `Quick test_iteration_limit_raises;
          Alcotest.test_case "lp format dump" `Quick test_lp_format_debug_dump;
        ] );
      ("properties", props);
    ]
