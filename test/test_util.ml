(* Tests for flowsched_util: PRNG determinism and distributions, sampling,
   statistics, table rendering. *)

open Flowsched_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "seeds 1 and 2 diverge" true !differs

let test_prng_int_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  (* power-of-two fast path *)
  for _ = 1 to 10_000 do
    let v = Prng.int g 16 in
    Alcotest.(check bool) "in range pow2" true (v >= 0 && v < 16)
  done

let test_prng_int_covers_all_values () =
  let g = Prng.create 3 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g 7) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all (fun x -> x) seen)

let test_prng_float_range () =
  let g = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_prng_float_mean () =
  let g = Prng.create 11 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_prng_copy_independent () =
  let a = Prng.create 5 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  let va = Prng.bits64 a and vb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" va vb;
  ignore (Prng.bits64 a);
  (* advancing a must not advance b *)
  let va2 = Prng.bits64 a and vb2 = Prng.bits64 b in
  Alcotest.(check bool) "streams now independent" true (va2 <> vb2 || va2 = vb2)

let test_prng_split_decorrelated () =
  let a = Prng.create 17 in
  let b = Prng.split a in
  let n = 4096 in
  let same = ref 0 in
  for _ = 1 to n do
    if Int64.logand (Prng.bits64 a) 1L = Int64.logand (Prng.bits64 b) 1L then incr same
  done;
  (* parity agreement should be ~ n/2 *)
  Alcotest.(check bool) "split streams decorrelated" true
    (abs (!same - (n / 2)) < n / 8)

let test_prng_per_job_streams_disjoint () =
  (* The per-job splitting contract (see prng.mli and Pool.seed_for): jobs
     derive distinct seeds, and distinct seeds must give streams that never
     coincide.  With domains sharing one address space, silent aliasing of
     two jobs' generators would be invisible to every other test — so draw
     10^5 values from two adjacent jobs' generators and check the output
     sets are disjoint (xoshiro's state is 4x the output width, so even a
     lagged overlap of the underlying sequences would surface here). *)
  let base_seed = 42 in
  let g0 = Prng.create (Flowsched_exec.Pool.seed_for ~base_seed 0) in
  let g1 = Prng.create (Flowsched_exec.Pool.seed_for ~base_seed 1) in
  let n = 100_000 in
  let seen = Hashtbl.create (2 * n) in
  for _ = 1 to n do
    Hashtbl.replace seen (Prng.bits64 g0) ()
  done;
  let overlaps = ref 0 in
  for _ = 1 to n do
    if Hashtbl.mem seen (Prng.bits64 g1) then incr overlaps
  done;
  Alcotest.(check int) "10^5-draw streams disjoint" 0 !overlaps;
  (* Same property for split-derived in-cell streams. *)
  let a = Prng.create 314 in
  let b = Prng.split a in
  Hashtbl.reset seen;
  for _ = 1 to n do
    Hashtbl.replace seen (Prng.bits64 a) ()
  done;
  overlaps := 0;
  for _ = 1 to n do
    if Hashtbl.mem seen (Prng.bits64 b) then incr overlaps
  done;
  Alcotest.(check int) "split streams disjoint" 0 !overlaps

(* --- Sampling --- *)

let test_poisson_zero () =
  let g = Prng.create 1 in
  Alcotest.(check int) "mean 0" 0 (Sampling.poisson g 0.)

let poisson_moments mean seed n =
  let g = Prng.create seed in
  let r = Stats.running_create () in
  for _ = 1 to n do
    Stats.running_add r (float_of_int (Sampling.poisson g mean))
  done;
  (Stats.running_mean r, Stats.running_variance r)

let test_poisson_small_mean () =
  let mu, var = poisson_moments 3.5 21 200_000 in
  Alcotest.(check bool) "mean" true (abs_float (mu -. 3.5) < 0.05);
  Alcotest.(check bool) "variance" true (abs_float (var -. 3.5) < 0.15)

let test_poisson_large_mean () =
  let mu, var = poisson_moments 150. 22 100_000 in
  Alcotest.(check bool) "mean" true (abs_float (mu -. 150.) < 0.5);
  Alcotest.(check bool) "variance" true (abs_float (var -. 150.) < 5.)

let test_poisson_boundary_mean () =
  (* right at the small/large method switch *)
  let mu, _ = poisson_moments 10. 23 100_000 in
  Alcotest.(check bool) "mean at cutover" true (abs_float (mu -. 10.) < 0.1)

let test_exponential_mean () =
  let g = Prng.create 31 in
  let r = Stats.running_create () in
  for _ = 1 to 100_000 do
    Stats.running_add r (Sampling.exponential g 2.)
  done;
  Alcotest.(check bool) "mean 1/rate" true (abs_float (Stats.running_mean r -. 0.5) < 0.01)

let test_geometric () =
  let g = Prng.create 33 in
  Alcotest.(check int) "p=1 is 0" 0 (Sampling.geometric g 1.);
  let r = Stats.running_create () in
  for _ = 1 to 100_000 do
    Stats.running_add r (float_of_int (Sampling.geometric g 0.25))
  done;
  (* mean (1-p)/p = 3 *)
  Alcotest.(check bool) "mean 3" true (abs_float (Stats.running_mean r -. 3.) < 0.1)

let test_uniform_pair_distinct () =
  let g = Prng.create 41 in
  for _ = 1 to 10_000 do
    let a, b = Sampling.uniform_pair_distinct g 5 in
    Alcotest.(check bool) "distinct in range" true
      (a <> b && a >= 0 && a < 5 && b >= 0 && b < 5)
  done

let test_shuffle_is_permutation () =
  let g = Prng.create 43 in
  let arr = Array.init 100 (fun i -> i) in
  Sampling.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let g = Prng.create 47 in
  for _ = 1 to 500 do
    let s = Sampling.sample_without_replacement g 5 12 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check bool) "sorted distinct in range" true
      (let rec ok = function
         | a :: (b :: _ as rest) -> a < b && ok rest
         | [ a ] -> a >= 0 && a < 12
         | [] -> true
       in
       ok s && List.for_all (fun x -> x >= 0 && x < 12) s)
  done;
  Alcotest.(check (list int)) "k = n returns everything"
    [ 0; 1; 2; 3 ]
    (Sampling.sample_without_replacement g 4 4);
  Alcotest.(check (list int)) "k = 0 empty" [] (Sampling.sample_without_replacement g 0 9)

(* --- Stats --- *)

let test_running_stats () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.running_count r);
  check_float "mean" 5. (Stats.running_mean r);
  check_float "variance" (32. /. 7.) (Stats.running_variance r);
  check_float "min" 2. (Stats.running_min r);
  check_float "max" 9. (Stats.running_max r)

let test_running_empty () =
  let r = Stats.running_create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stats.running_mean r))

let test_percentile () =
  let sorted = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "p0" 1. (Stats.percentile sorted 0.);
  check_float "p50" 3. (Stats.percentile sorted 0.5);
  check_float "p100" 5. (Stats.percentile sorted 1.0);
  check_float "p25 interpolates" 2. (Stats.percentile sorted 0.25)

let test_summarize () =
  let s = Stats.summarize [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  check_float "mean" 3. s.Stats.mean;
  check_float "min" 1. s.Stats.min;
  check_float "max" 5. s.Stats.max;
  check_float "p50" 3. s.Stats.p50

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all values bucketed" 4 total

(* Percentile edge cases: lock behavior the JSON reporter depends on. *)

let test_percentile_empty_raises () =
  Alcotest.check_raises "empty sample rejected"
    (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 0.5));
  Alcotest.check_raises "summarize empty rejected"
    (Invalid_argument "Stats.summarize: empty array")
    (fun () -> ignore (Stats.summarize [||]))

let test_percentile_out_of_range_q () =
  let sorted = [| 1.; 2. |] in
  Alcotest.check_raises "q < 0 rejected" (Invalid_argument "Stats.percentile: q out of [0,1]")
    (fun () -> ignore (Stats.percentile sorted (-0.01)));
  Alcotest.check_raises "q > 1 rejected" (Invalid_argument "Stats.percentile: q out of [0,1]")
    (fun () -> ignore (Stats.percentile sorted 1.01));
  Alcotest.check_raises "NaN q rejected" (Invalid_argument "Stats.percentile: q out of [0,1]")
    (fun () -> ignore (Stats.percentile sorted nan))

let test_nan_inputs_raise () =
  (* NaN poisons polymorphic sorts silently; the stats entry points reject
     it loudly instead. *)
  Alcotest.check_raises "summarize NaN" (Invalid_argument "Stats.summarize: NaN input")
    (fun () -> ignore (Stats.summarize [| 1.; nan; 3. |]));
  Alcotest.check_raises "percentile NaN" (Invalid_argument "Stats.percentile: NaN input")
    (fun () -> ignore (Stats.percentile [| 1.; nan |] 0.5));
  (* negative values and infinities are still fine *)
  let s = Stats.summarize [| -2.; 0.; 2. |] in
  check_float "mean with negatives" 0. s.Stats.mean

let test_percentile_single_sample () =
  let sorted = [| 7.5 |] in
  check_float "p0 is the sample" 7.5 (Stats.percentile sorted 0.);
  check_float "p50 is the sample" 7.5 (Stats.percentile sorted 0.5);
  check_float "p100 is the sample" 7.5 (Stats.percentile sorted 1.);
  let s = Stats.summarize [| 7.5 |] in
  Alcotest.(check int) "count" 1 s.Stats.count;
  check_float "mean" 7.5 s.Stats.mean;
  check_float "stddev of singleton is 0" 0. s.Stats.stddev;
  check_float "p50" 7.5 s.Stats.p50;
  check_float "p99" 7.5 s.Stats.p99

let test_percentile_extremes_are_min_max () =
  let sorted = [| -3.; 0.; 1.; 10.; 100. |] in
  check_float "p0 = min" (-3.) (Stats.percentile sorted 0.);
  check_float "p100 = max" 100. (Stats.percentile sorted 1.)

(* --- Json --- *)

let sample_json =
  Json.Obj
    [
      ("schema", Json.Str "test/1");
      ("count", Json.Int 42);
      ("ratio", Json.Float 1.5);
      ("precise", Json.Float 0.1);
      ("skipped", Json.float nan);
      ("ok", Json.Bool true);
      ("empty_list", Json.Arr []);
      ("empty_obj", Json.Obj []);
      ( "cells",
        Json.Arr
          [
            Json.Obj [ ("name", Json.Str "a\"b\\c\nnewline\ttab"); ("v", Json.Int (-7)) ];
            Json.Null;
          ] );
    ]

let test_json_roundtrip () =
  let expect_parses v =
    match Json.parse (Json.to_string v) with
    | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  (* nan serializes as null, so round-trip the normalized form *)
  let normalized =
    match sample_json with
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k, v) -> (k, if v = Json.float nan then Json.Null else v)) fields)
    | v -> v
  in
  expect_parses normalized;
  (match Json.parse (Json.to_string ~pretty:false normalized) with
  | Ok v' -> Alcotest.(check bool) "compact form round-trips" true (normalized = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  expect_parses (Json.Arr [ Json.Float 1e-9; Json.Float 3.0; Json.Float (-2.5e10) ])

let test_json_parse_literals () =
  let ok s v =
    match Json.parse s with
    | Ok v' -> Alcotest.(check bool) (Printf.sprintf "parse %s" s) true (v = v')
    | Error e -> Alcotest.failf "parse %s failed: %s" s e
  in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok " [1, 2.5, -3] " (Json.Arr [ Json.Int 1; Json.Float 2.5; Json.Int (-3) ]);
  ok {|"A\n"|} (Json.Str "A\n");
  ok "1e3" (Json.Float 1000.);
  ok "{}" (Json.Obj [])

let test_json_parse_errors () =
  let fails s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "expected %s to fail" s
    | Error _ -> ()
  in
  fails "";
  fails "{";
  fails "[1,]";
  fails "nul";
  fails {|"unterminated|};
  fails "1.2.3";
  fails "[1] trailing";
  (* \u escapes: lone surrogates are invalid, pairs decode to 4-byte UTF-8 *)
  fails {|"\ud800"|};
  fails {|"\udc00"|};
  fails {|"\ud83dxy"|};
  fails {|"\ud83dA"|};
  Alcotest.(check bool) "surrogate pair decodes to U+1F600" true
    (Json.parse {|"\ud83d\ude00"|} = Ok (Json.Str "\xF0\x9F\x98\x80"))

let test_json_accessors () =
  Alcotest.(check (option int)) "member int" (Some 42)
    (Option.bind (Json.member "count" sample_json) Json.to_int_opt);
  Alcotest.(check (option (float 1e-9))) "int as float" (Some 42.)
    (Option.bind (Json.member "count" sample_json) Json.to_float_opt);
  Alcotest.(check bool) "missing member" true (Json.member "nope" sample_json = None);
  Alcotest.(check int) "to_list on non-array" 0 (List.length (Json.to_list (Json.Int 3)));
  Alcotest.(check (option string)) "string member" (Some "test/1")
    (Option.bind (Json.member "schema" sample_json) Json.to_string_opt)

let test_json_nonfinite_round_trip () =
  (* Artifact contract: non-finite floats serialize as null, and null reads
     back as nan through [to_float_opt], so decode . encode is the identity
     for every float field of a checkpointed cell. *)
  List.iter
    (fun x ->
      let s = Json.to_string ~pretty:false (Json.Arr [ Json.float x ]) in
      Alcotest.(check string) "serializes as null" "[null]" s;
      match Json.parse s with
      | Ok (Json.Arr [ v ]) -> (
          match Json.to_float_opt v with
          | Some f -> Alcotest.(check bool) "reads back as nan" true (Float.is_nan f)
          | None -> Alcotest.fail "null must read back as a nan float")
      | _ -> Alcotest.fail "parse failed")
    [ nan; infinity; neg_infinity ];
  Alcotest.(check bool) "finite floats stay Float" true (Json.float 2.5 = Json.Float 2.5);
  (* And null written back out is still null: a second encode of a decoded
     artifact reproduces the original bytes. *)
  Alcotest.(check string) "null re-encodes as null" "null"
    (Json.to_string ~pretty:false (Json.float nan))

let prop_json_float_roundtrip =
  QCheck2.Test.make ~name:"json float round-trips exactly" ~count:500
    QCheck2.Gen.(float_bound_inclusive 1e12)
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') -> f' = f
      | Ok (Json.Int i) -> float_of_int i = f
      | _ -> false)

(* --- Table --- *)

let test_table_render () =
  let t = Table.create [ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_row t [ "b"; "22.50" ];
  let s = Table.render t in
  Alcotest.(check bool) "mentions rows" true
    (let contains sub =
       let n = String.length s and k = String.length sub in
       let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
       go 0
     in
     contains "alpha" && contains "22.50" && contains "name");
  (* all lines same width for the header block *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "non-empty" true (List.length lines >= 3)

let test_table_padding () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row t [ "x" ];
  (* short row padded *)
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.check_raises "long row rejected" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2"; "3" ])

let test_cell_helpers () =
  Alcotest.(check string) "float" "1.23" (Table.cell_float 1.234);
  Alcotest.(check string) "nan" "-" (Table.cell_float nan);
  Alcotest.(check string) "ratio" "2.00x" (Table.cell_ratio 4. 2.);
  Alcotest.(check string) "ratio base 0" "-" (Table.cell_ratio 4. 0.)

(* --- property tests --- *)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck2.Gen.(pair small_int (array_size (int_bound 50) small_int))
    (fun (seed, arr) ->
      let g = Prng.create seed in
      let copy = Array.copy arr in
      Sampling.shuffle g copy;
      let a = Array.copy arr and b = Array.copy copy in
      Array.sort compare a;
      Array.sort compare b;
      a = b)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile monotone in q" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 2 40) (float_bound_inclusive 100.))
        (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)))
    (fun (values, (q1, q2)) ->
      let sorted = Array.copy values in
      Array.sort compare sorted;
      let lo = min q1 q2 and hi = max q1 q2 in
      Stats.percentile sorted lo <= Stats.percentile sorted hi +. 1e-9)

let prop_summary_bounds =
  QCheck2.Test.make ~name:"summary mean within [min,max]" ~count:200
    QCheck2.Gen.(array_size (int_range 1 60) (float_bound_inclusive 1000.))
    (fun values ->
      let s = Stats.summarize values in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [
        prop_shuffle_preserves_multiset;
        prop_percentile_monotone;
        prop_summary_bounds;
        prop_json_float_roundtrip;
      ]
  in
  Alcotest.run "flowsched_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int covers all values" `Quick test_prng_int_covers_all_values;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Slow test_prng_float_mean;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split decorrelated" `Quick test_prng_split_decorrelated;
          Alcotest.test_case "per-job streams disjoint" `Quick
            test_prng_per_job_streams_disjoint;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "poisson small mean" `Slow test_poisson_small_mean;
          Alcotest.test_case "poisson large mean" `Slow test_poisson_large_mean;
          Alcotest.test_case "poisson boundary mean" `Slow test_poisson_boundary_mean;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "geometric" `Slow test_geometric;
          Alcotest.test_case "uniform distinct pair" `Quick test_uniform_pair_distinct;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running stats" `Quick test_running_stats;
          Alcotest.test_case "running empty" `Quick test_running_empty;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "percentile empty raises" `Quick test_percentile_empty_raises;
          Alcotest.test_case "percentile bad q raises" `Quick test_percentile_out_of_range_q;
          Alcotest.test_case "NaN inputs raise" `Quick test_nan_inputs_raise;
          Alcotest.test_case "percentile single sample" `Quick test_percentile_single_sample;
          Alcotest.test_case "percentile p0/p100" `Quick test_percentile_extremes_are_min_max;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse literals" `Quick test_json_parse_literals;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "non-finite round-trip" `Quick test_json_nonfinite_round_trip;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "padding and errors" `Quick test_table_padding;
          Alcotest.test_case "cell helpers" `Quick test_cell_helpers;
        ] );
      ("properties", qsuite);
    ]
