(* Tests for the flowsched_exec worker pool: deterministic parallel/sequential
   equivalence, retry-then-Failed semantics for raising and crashing workers,
   timeout kills that do not wedge the pool, and zombie-free shutdown. *)

open Flowsched_exec

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  go 0

let no_zombies_left () =
  (* The pool waitpids every child it forks; once a run returns, this
     process must have no children at all (the test binary forks nothing
     else), so waitpid(-1) raises ECHILD. *)
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | _ -> false

let results_exn outcomes =
  Array.map
    (function
      | Pool.Done v -> v
      | Pool.Failed { reason; _ } -> Alcotest.failf "unexpected Failed: %s" reason)
    outcomes

(* A job whose result depends on its payload through enough computation that
   an ordering bug would scramble it. *)
let hash_job x =
  let g = Flowsched_util.Prng.create x in
  let acc = ref 0 in
  for _ = 1 to 1000 do
    acc := (!acc * 31) + Flowsched_util.Prng.int g 1000
  done;
  (x, !acc land 0xFFFF)

let test_inline_map () =
  let outcomes = Pool.map ~jobs:1 ~f:(fun x -> x * x) [| 1; 2; 3; 4 |] in
  Alcotest.(check (array int)) "squares" [| 1; 4; 9; 16 |] (results_exn outcomes)

let test_empty_input () =
  Alcotest.(check int) "no jobs" 0 (Array.length (Pool.map ~jobs:4 ~f:(fun x -> x) [||]))

let test_parallel_matches_sequential () =
  let inputs = Array.init 40 (fun i -> i + 1) in
  let seq = results_exn (Pool.map ~jobs:1 ~f:hash_job inputs) in
  let par = results_exn (Pool.map ~jobs:4 ~f:hash_job inputs) in
  Alcotest.(check (array (pair int int))) "byte-identical merge order" seq par;
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_random_reseeded_per_job () =
  (* Jobs that consult the global Random state must see a per-job
     deterministic stream regardless of worker assignment or order. *)
  let f _ = Random.int 1_000_000 in
  let inputs = Array.init 16 (fun i -> i) in
  let seq = results_exn (Pool.map ~jobs:1 ~f inputs) in
  let par = results_exn (Pool.map ~jobs:4 ~f inputs) in
  Alcotest.(check (array int)) "same Random draws" seq par

let test_raise_retried_then_failed () =
  let events = ref [] in
  let outcomes =
    Pool.map ~jobs:2 ~retries:2
      ~progress:(fun e -> events := e :: !events)
      ~f:(fun _ -> failwith "boom")
      [| 0 |]
  in
  (match outcomes.(0) with
  | Pool.Failed { attempts; reason } ->
      Alcotest.(check int) "attempts = retries + 1" 3 attempts;
      Alcotest.(check bool) "reason mentions the exception" true (contains reason "boom")
  | Pool.Done _ -> Alcotest.fail "job should have failed");
  let retried =
    List.length (List.filter (function Pool.Job_retried _ -> true | _ -> false) !events)
  in
  Alcotest.(check int) "two retry events" 2 retried;
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_retry_recovers () =
  (* First attempt leaves a marker on disk and raises; the retry (possibly
     in a different worker process) sees the marker and succeeds. *)
  let marker = Filename.temp_file "flowsched_exec_retry" ".flag" in
  Sys.remove marker;
  let f _ =
    if Sys.file_exists marker then 42
    else begin
      Out_channel.with_open_bin marker (fun oc -> Out_channel.output_string oc "x");
      failwith "first attempt fails"
    end
  in
  let outcomes = Pool.map ~jobs:2 ~retries:1 ~f [| 0 |] in
  if Sys.file_exists marker then Sys.remove marker;
  (match outcomes.(0) with
  | Pool.Done v -> Alcotest.(check int) "recovered on retry" 42 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "should have recovered: %s" reason);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_worker_crash_is_failure () =
  (* Hard crash (the worker process exits without replying): the pool must
     detect the lost connection, burn the retry budget, and report Failed
     without wedging the other job. *)
  let f x = if x = 0 then Unix._exit 7 else x * 10 in
  let outcomes = Pool.map ~jobs:2 ~retries:1 ~f [| 0; 1 |] in
  (match outcomes.(0) with
  | Pool.Failed { attempts; _ } -> Alcotest.(check int) "crash attempts" 2 attempts
  | Pool.Done _ -> Alcotest.fail "crashing job should fail");
  (match outcomes.(1) with
  | Pool.Done v -> Alcotest.(check int) "sibling job survives" 10 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "sibling job failed: %s" reason);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_timeout_kills_hung_worker () =
  let t0 = Unix.gettimeofday () in
  let f x = if x = 0 then (Unix.sleep 600; 0) else x in
  let outcomes = Pool.map ~jobs:2 ~retries:0 ~timeout:0.5 ~f [| 0; 1 |] in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match outcomes.(0) with
  | Pool.Failed { attempts; reason } ->
      Alcotest.(check int) "single attempt" 1 attempts;
      Alcotest.(check bool) "reason mentions timeout" true (contains reason "timed out")
  | Pool.Done _ -> Alcotest.fail "hung job should time out");
  (match outcomes.(1) with
  | Pool.Done v -> Alcotest.(check int) "fast job unaffected" 1 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "fast job failed: %s" reason);
  Alcotest.(check bool) "pool returned promptly, not after the sleep" true (elapsed < 60.);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

(* --- resilience layer --- *)

module Metrics = Flowsched_obs.Metrics

let test_zero_retries_single_attempt () =
  let outcomes = Pool.map ~jobs:2 ~retries:0 ~f:(fun _ -> failwith "no") [| 0 |] in
  match outcomes.(0) with
  | Pool.Failed { attempts; _ } -> Alcotest.(check int) "attempts = retries + 1" 1 attempts
  | Pool.Done _ -> Alcotest.fail "job should have failed"

(* A job function that fails its first attempt and succeeds on the next,
   using an on-disk marker so the behaviour survives the fork boundary. *)
let fail_once_job () =
  let marker = Filename.temp_file "flowsched_exec_failonce" ".flag" in
  Sys.remove marker;
  let f _ =
    if Sys.file_exists marker then 42
    else begin
      Out_channel.with_open_bin marker (fun oc -> Out_channel.output_string oc "x");
      failwith "transient"
    end
  in
  let cleanup () = if Sys.file_exists marker then Sys.remove marker in
  (f, cleanup)

let test_per_job_event_sequence () =
  (* The documented lifecycle: Started 1; (Retried k; Started k+1)*; Done. *)
  let f, cleanup = fail_once_job () in
  let events = ref [] in
  let outcomes =
    Pool.map ~jobs:2 ~retries:2 ~progress:(fun e -> events := e :: !events) ~f [| 0 |]
  in
  cleanup ();
  (match outcomes.(0) with
  | Pool.Done v -> Alcotest.(check int) "recovered" 42 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "should have recovered: %s" reason);
  let shape =
    List.rev_map
      (function
        | Pool.Job_started { attempt; _ } -> Printf.sprintf "started%d" attempt
        | Pool.Job_done { attempt; _ } -> Printf.sprintf "done%d" attempt
        | Pool.Job_retried { attempt; _ } -> Printf.sprintf "retried%d" attempt
        | Pool.Job_failed _ -> "failed")
      !events
  in
  Alcotest.(check (list string)) "event sequence"
    [ "started1"; "retried1"; "started2"; "done2" ]
    shape

let test_metrics_absorbed_from_failed_attempts () =
  (* Every attempt increments a counter inside the worker; the increment
     must reach the parent registry via the result-frame diff even when the
     attempt returns a failure. *)
  let c = Metrics.counter "test.pool_absorb" in
  let f, cleanup = fail_once_job () in
  let before = Metrics.counter_value c in
  let outcomes =
    Pool.map ~jobs:2 ~retries:1
      ~f:(fun x ->
        Metrics.incr c;
        f x)
      [| 0 |]
  in
  cleanup ();
  (match outcomes.(0) with
  | Pool.Done _ -> ()
  | Pool.Failed { reason; _ } -> Alcotest.failf "should have recovered: %s" reason);
  Alcotest.(check int) "both attempts' increments absorbed" (before + 2)
    (Metrics.counter_value c)

let test_inline_posthoc_timeout () =
  (* jobs:1 cannot interrupt a running attempt, but an over-budget result
     must still be discarded and counted as a timeout. *)
  let outcomes =
    Pool.map ~jobs:1 ~retries:0 ~timeout:0.05
      ~f:(fun x ->
        Unix.sleepf 0.12;
        x)
      [| 7 |]
  in
  match outcomes.(0) with
  | Pool.Failed { attempts; reason } ->
      Alcotest.(check int) "single attempt" 1 attempts;
      Alcotest.(check bool) "reason mentions timeout" true (contains reason "timed out")
  | Pool.Done _ -> Alcotest.fail "over-budget inline attempt must not be accepted"

let test_backoff_delays_retry () =
  let g = Metrics.gauge "pool.backoff_seconds" in
  let f, cleanup = fail_once_job () in
  let gauge_before = Metrics.gauge_value g in
  let t0 = Unix.gettimeofday () in
  let outcomes = Pool.map ~jobs:2 ~retries:1 ~backoff:0.4 ~f [| 0 |] in
  let elapsed = Unix.gettimeofday () -. t0 in
  cleanup ();
  (match outcomes.(0) with
  | Pool.Done v -> Alcotest.(check int) "recovered after backoff" 42 v
  | Pool.Failed { reason; _ } -> Alcotest.failf "should have recovered: %s" reason);
  (* Jitter scales the 0.4s base by a factor in [0.5, 1.5). *)
  Alcotest.(check bool) "retry was delayed" true (elapsed >= 0.2);
  Alcotest.(check bool) "backoff gauge accumulated" true
    (Metrics.gauge_value g -. gauge_before >= 0.2);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ())

let test_backoff_deterministic () =
  let d1 = Pool.backoff_delay_for_tests ~backoff:0.4 ~base_seed:3 ~job:5 ~attempt:2 in
  let d2 = Pool.backoff_delay_for_tests ~backoff:0.4 ~base_seed:3 ~job:5 ~attempt:2 in
  Alcotest.(check (float 0.)) "same (seed, job, attempt) -> same delay" d1 d2;
  Alcotest.(check bool) "exponential growth" true
    (Pool.backoff_delay_for_tests ~backoff:0.4 ~base_seed:3 ~job:5 ~attempt:4
    >= Pool.backoff_delay_for_tests ~backoff:0.4 ~base_seed:3 ~job:5 ~attempt:2 /. 3.);
  Alcotest.(check (float 0.)) "no backoff, no delay" 0.
    (Pool.backoff_delay_for_tests ~backoff:0. ~base_seed:0 ~job:0 ~attempt:5)

let test_worker_recycling () =
  (* max_jobs_per_worker:1 forces a fresh process per job: every result
     must carry a distinct worker pid. *)
  let c = Metrics.counter "pool.workers_recycled" in
  let before = Metrics.counter_value c in
  let outcomes =
    results_exn (Pool.map ~jobs:2 ~max_jobs_per_worker:1 ~f:(fun _ -> Unix.getpid ()) [| 0; 1; 2; 3; 4; 5 |])
  in
  let pids = Array.to_list outcomes in
  Alcotest.(check int) "six distinct worker pids" 6
    (List.length (List.sort_uniq compare pids));
  Alcotest.(check int) "every worker recycled" (before + 6) (Metrics.counter_value c);
  Alcotest.(check bool) "no zombies" true (no_zombies_left ());
  Alcotest.(check bool) "rejects zero" true
    (match Pool.map ~jobs:2 ~max_jobs_per_worker:0 ~f:(fun x -> x) [| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_on_result_fires_once_per_job () =
  let seen = Hashtbl.create 8 in
  let outcomes =
    Pool.map ~jobs:3
      ~on_result:(fun job outcome ->
        Alcotest.(check bool) "no duplicate on_result" false (Hashtbl.mem seen job);
        Hashtbl.replace seen job outcome)
      ~f:hash_job
      (Array.init 10 (fun i -> i))
  in
  Alcotest.(check int) "one callback per job" 10 (Hashtbl.length seen);
  Array.iteri
    (fun job outcome ->
      Alcotest.(check bool) "callback saw the merged outcome" true
        (Hashtbl.find seen job = outcome))
    outcomes

let () =
  Alcotest.run "flowsched_exec"
    [
      ( "pool",
        [
          Alcotest.test_case "inline map" `Quick test_inline_map;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "per-job Random reseed" `Quick test_random_reseeded_per_job;
          Alcotest.test_case "raise retried then Failed" `Quick test_raise_retried_then_failed;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "worker crash is Failed" `Quick test_worker_crash_is_failure;
          Alcotest.test_case "timeout kills hung worker" `Slow test_timeout_kills_hung_worker;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "zero retries = one attempt" `Quick
            test_zero_retries_single_attempt;
          Alcotest.test_case "per-job event sequence" `Quick test_per_job_event_sequence;
          Alcotest.test_case "metrics absorbed from failed attempts" `Quick
            test_metrics_absorbed_from_failed_attempts;
          Alcotest.test_case "inline post-hoc timeout" `Quick test_inline_posthoc_timeout;
          Alcotest.test_case "backoff delays retry" `Slow test_backoff_delays_retry;
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "worker recycling" `Quick test_worker_recycling;
          Alcotest.test_case "on_result once per job" `Quick test_on_result_fires_once_per_job;
        ] );
    ]
