(* Tests for the simulator layer: workload generation, adaptive engine
   plumbing, the experiment grid, and report rendering. *)

open Flowsched_switch
open Flowsched_online
open Flowsched_sim

(* --- workload --- *)

let test_poisson_deterministic () =
  let a = Workload.poisson ~m:5 ~rate:2.5 ~rounds:10 ~seed:42 in
  let b = Workload.poisson ~m:5 ~rate:2.5 ~rounds:10 ~seed:42 in
  Alcotest.(check string) "same instance" (Instance.to_string a) (Instance.to_string b);
  let c = Workload.poisson ~m:5 ~rate:2.5 ~rounds:10 ~seed:43 in
  Alcotest.(check bool) "different seed differs" true
    (Instance.to_string a <> Instance.to_string c)

let test_poisson_shape () =
  let inst = Workload.poisson ~m:5 ~rate:3.0 ~rounds:12 ~seed:7 in
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "release in range" true (f.Flow.release >= 0 && f.Flow.release < 12);
      Alcotest.(check int) "unit demand" 1 f.Flow.demand;
      Alcotest.(check bool) "ports in range" true
        (f.Flow.src >= 0 && f.Flow.src < 5 && f.Flow.dst >= 0 && f.Flow.dst < 5))
    inst.Instance.flows

let test_poisson_mean_count () =
  (* law of large numbers over many trials *)
  let total = ref 0 in
  for seed = 0 to 199 do
    total := !total + Instance.n (Workload.poisson ~m:4 ~rate:2.0 ~rounds:10 ~seed)
  done;
  let mean = float_of_int !total /. 200. in
  Alcotest.(check bool) "mean near rate*rounds" true (abs_float (mean -. 20.) < 1.5)

let test_poisson_with_demands () =
  let inst = Workload.poisson_with_demands ~m:4 ~rate:2.0 ~rounds:8 ~max_demand:3 ~seed:5 in
  Alcotest.(check (array int)) "caps raised" (Array.make 4 3) inst.Instance.cap_in;
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "demand in range" true (f.Flow.demand >= 1 && f.Flow.demand <= 3))
    inst.Instance.flows

let test_uniform_total () =
  let inst = Workload.uniform_total ~m:3 ~n:17 ~max_release:4 ~seed:2 in
  Alcotest.(check int) "n exact" 17 (Instance.n inst);
  Alcotest.(check bool) "releases bounded" true (Instance.last_release inst <= 4)

(* --- arrival streams --- *)

(* The slot-t arrivals of a stream must be exactly the release-t flows of
   the batch instance built from the same seed, in generation order — the
   prefix property the serve layer leans on to replay served traces through
   the batch engine. *)
let check_stream_prefix name kind inst ~m ~rate ~rounds ~seed =
  let s = Workload.stream kind ~m ~rate ~seed in
  let streamed = Array.init rounds (fun _ -> Workload.stream_next s) in
  Alcotest.(check int) (name ^ ": slots generated") rounds (Workload.stream_slot s);
  let by_release = Array.make rounds [] in
  Array.iter
    (fun (f : Flow.t) ->
      by_release.(f.Flow.release) <-
        (f.Flow.src, f.Flow.dst, f.Flow.demand) :: by_release.(f.Flow.release))
    inst.Instance.flows;
  for t = 0 to rounds - 1 do
    Alcotest.(check (list (triple int int int)))
      (Printf.sprintf "%s: slot %d arrivals" name t)
      (List.rev by_release.(t))
      streamed.(t)
  done

let test_stream_prefix_uniform () =
  check_stream_prefix "uniform" Workload.Uniform
    (Workload.poisson ~m:5 ~rate:2.5 ~rounds:40 ~seed:42)
    ~m:5 ~rate:2.5 ~rounds:40 ~seed:42

let test_stream_prefix_demands () =
  check_stream_prefix "demands" (Workload.Uniform_demands 3)
    (Workload.poisson_with_demands ~m:4 ~rate:2.0 ~rounds:30 ~max_demand:3 ~seed:5)
    ~m:4 ~rate:2.0 ~rounds:30 ~seed:5

let test_stream_prefix_skewed () =
  check_stream_prefix "skewed" (Workload.Skewed 1.2)
    (Workload.skewed ~m:6 ~rate:3.0 ~rounds:30 ~alpha:1.2 ~seed:8 ())
    ~m:6 ~rate:3.0 ~rounds:30 ~seed:8

let test_stream_prefix_hotspot () =
  check_stream_prefix "hotspot" (Workload.Hotspot 0.4)
    (Workload.hotspot ~m:6 ~rate:3.0 ~rounds:30 ~fraction:0.4 ~seed:11 ())
    ~m:6 ~rate:3.0 ~rounds:30 ~seed:11

(* --- horizon guard --- *)

let test_horizon_exceeded () =
  let never = { Policy.name = "never"; select = (fun _ -> []) } in
  let inst = Instance.of_flows ~m:2 ~m':2 [ (0, 1, 1, 0); (1, 0, 1, 2) ] in
  match Engine.run_instance ~max_rounds:37 never inst with
  | _ -> Alcotest.fail "expected Horizon_exceeded"
  | exception Engine.Horizon_exceeded { round; pending } ->
      Alcotest.(check int) "round reached" 37 round;
      Alcotest.(check int) "queue depth carried" 2 pending

(* --- adaptive engine plumbing --- *)

let test_adaptive_ids_sequential () =
  let arrivals ~round ~pending:_ = if round < 3 then [ (0, 0, 1) ] else [] in
  let r =
    Engine.run_adaptive ~m:1 ~m':1 ~arrivals ~stop_arrivals_after:3 Heuristics.fifo
  in
  Alcotest.(check int) "three flows" 3 (Array.length r.Engine.flows);
  Array.iteri
    (fun i (f : Flow.t) -> Alcotest.(check int) "id = index" i f.Flow.id)
    r.Engine.flows

let test_adaptive_stops_arrivals () =
  let calls = ref 0 in
  let arrivals ~round:_ ~pending:_ =
    incr calls;
    [ (0, 0, 1) ]
  in
  let r =
    Engine.run_adaptive ~m:1 ~m':1 ~arrivals ~stop_arrivals_after:4 Heuristics.fifo
  in
  Alcotest.(check int) "callback consulted 4 times" 4 !calls;
  Alcotest.(check int) "four flows" 4 (Array.length r.Engine.flows)

let test_adaptive_sees_pending () =
  (* the adversary observes the one flow FIFO could not schedule *)
  let observed = ref (-1) in
  let arrivals ~round ~pending =
    if round = 0 then [ (0, 0, 1); (0, 0, 1) ]
    else begin
      if round = 1 then observed := List.length pending;
      []
    end
  in
  ignore (Engine.run_adaptive ~m:1 ~m':1 ~arrivals ~stop_arrivals_after:2 Heuristics.fifo);
  Alcotest.(check int) "one pending at round 1" 1 !observed

(* --- experiment grid --- *)

let test_run_cell_without_lp () =
  let cell =
    Experiment.run_cell ~policies:Heuristics.all_paper_heuristics
      {
        Experiment.m = 4;
        rate = 2.0;
        rounds = 5;
        tries = 3;
        seed = 11;
        with_lp = false;
      }
  in
  Alcotest.(check int) "three policies (avg)" 3 (List.length cell.Experiment.avg_response);
  Alcotest.(check int) "three policies (max)" 3 (List.length cell.Experiment.max_response);
  Alcotest.(check bool) "lp skipped" true (Float.is_nan cell.Experiment.lp_avg_bound);
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "avg >= 1" true (v >= 1.))
    cell.Experiment.avg_response

let test_run_cell_with_lp () =
  let cell =
    Experiment.run_cell ~policies:Heuristics.all_paper_heuristics
      {
        Experiment.m = 3;
        rate = 1.5;
        rounds = 4;
        tries = 2;
        seed = 5;
        with_lp = true;
      }
  in
  Alcotest.(check bool) "lp bound computed" true
    (not (Float.is_nan cell.Experiment.lp_avg_bound));
  Alcotest.(check bool) "lp max bound computed" true
    (not (Float.is_nan cell.Experiment.lp_max_bound));
  (* Lemma 3.1/relaxation: bounds sit below every heuristic *)
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " above avg LP") true
        (v >= cell.Experiment.lp_avg_bound -. 1e-6))
    cell.Experiment.avg_response;
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " above max LP") true
        (v >= cell.Experiment.lp_max_bound -. 1e-6))
    cell.Experiment.max_response

let test_fig6_grid_layout () =
  let grid =
    Experiment.fig6_grid ~m:6 ~tries:2 ~lp_rounds_limit:8 ~congestion:[ 0.5; 1.0 ]
      ~rounds:[ 6; 8; 12 ] ()
  in
  Alcotest.(check int) "cells" 6 (List.length grid);
  List.iter
    (fun (c : Experiment.cell_config) ->
      Alcotest.(check bool) "lp flag respects limit" true
        (c.Experiment.with_lp = (c.Experiment.rounds <= 8));
      Alcotest.(check bool) "rate scales with m" true
        (c.Experiment.rate = 3.0 || c.Experiment.rate = 6.0))
    grid

(* --- report --- *)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let sample_results () =
  Experiment.run_grid ~policies:Heuristics.all_paper_heuristics
    [
      { Experiment.m = 3; rate = 1.0; rounds = 4; tries = 2; seed = 3; with_lp = true };
      { Experiment.m = 3; rate = 3.0; rounds = 4; tries = 2; seed = 4; with_lp = false };
    ]

let test_report_tables () =
  let results = sample_results () in
  let f6 = Report.fig6_table results and f7 = Report.fig7_table results in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in fig6") true (contains f6 name);
      Alcotest.(check bool) (name ^ " in fig7") true (contains f7 name))
    [ "MaxCard"; "MinRTime"; "MaxWeight"; "LP bound" ];
  Alcotest.(check bool) "lp-less cell rendered with dashes" true (contains f6 "-")

let test_report_csv () =
  let results = sample_results () in
  let csv = Report.csv ~objective:`Avg results in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + 2 cells x 3 policies *)
  Alcotest.(check int) "line count" 7 (List.length lines);
  Alcotest.(check bool) "header" true
    (contains (List.hd lines) "policy,value,lp_bound")

(* --- properties --- *)

let prop_workload_poisson_counts =
  QCheck2.Test.make ~name:"poisson instance validates" ~count:50
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 8) (int_range 1 15))
    (fun (seed, m, rounds) ->
      let inst = Workload.poisson ~m ~rate:1.5 ~rounds ~seed in
      Instance.last_release inst <= rounds - 1 || Instance.n inst = 0)

let prop_engine_matches_offline_fifo =
  (* the online FIFO engine and the offline FIFO baseline must agree *)
  QCheck2.Test.make ~name:"online FIFO = offline FIFO baseline" ~count:40
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 25))
    (fun (seed, n) ->
      let inst = Workload.uniform_total ~m:4 ~n ~max_release:5 ~seed in
      let online = Engine.run_instance Heuristics.fifo inst in
      let offline = Flowsched_core.Baselines.fifo inst in
      Schedule.assignment online.Engine.schedule = Schedule.assignment offline)

(* --- parallel grids and the sweep artifact --- *)

let test_run_grid_parallel_identical () =
  let grid =
    Experiment.fig6_grid ~m:4 ~tries:2 ~seed:9 ~lp_rounds_limit:4 ~congestion:[ 0.5; 1. ]
      ~rounds:[ 3; 4 ] ()
  in
  let policies = Heuristics.all_paper_heuristics in
  let seq = Experiment.run_grid ~policies ~jobs:1 grid in
  let par = Experiment.run_grid ~policies ~jobs:3 grid in
  Alcotest.(check int) "same cell count" (List.length seq) (List.length par);
  Alcotest.(check bool) "identical results in job order" true (seq = par);
  Alcotest.(check string) "identical fig6 table" (Report.fig6_table seq)
    (Report.fig6_table par);
  Alcotest.(check string) "identical fig7 table" (Report.fig7_table seq)
    (Report.fig7_table par)

let sweep_cells =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          {
            Experiment.workload;
            ports = 4;
            arrival_rate = 2.0;
            horizon = 4;
            max_demand = 2;
            sweep_seed = seed;
            lp = true;
          })
        [ 1; 2 ])
    [ "poisson"; "uniform" ]

let test_sweep_deterministic_across_jobs () =
  let policies = [ Heuristics.maxcard; Heuristics.maxweight ] in
  (* Discrete LP counters (pivots, warm accepts, ...) must be identical
     across job counts too; only the timing fields are nondeterministic. *)
  let strip_wall = Report.strip_sweep_timing in
  let seq = List.map strip_wall (Experiment.run_sweep ~policies ~jobs:1 sweep_cells) in
  let par = List.map strip_wall (Experiment.run_sweep ~policies ~jobs:3 sweep_cells) in
  Alcotest.(check bool) "sweep results identical up to wall-clock" true (seq = par)

let test_sweep_artifact_roundtrip () =
  let open Flowsched_util in
  let policies = [ Heuristics.maxcard; Heuristics.minrtime ] in
  let results = Experiment.run_sweep ~policies ~jobs:2 sweep_cells in
  let artifact = Report.sweep_json ~jobs:2 results in
  let parsed =
    match Json.parse (Json.to_string artifact) with
    | Ok v -> v
    | Error e -> Alcotest.failf "sweep artifact does not parse: %s" e
  in
  Alcotest.(check (option string)) "schema tag" (Some "flowsched-sweep/1")
    (Option.bind (Json.member "schema" parsed) Json.to_string_opt);
  Alcotest.(check (option int)) "jobs recorded" (Some 2)
    (Option.bind (Json.member "jobs" parsed) Json.to_int_opt);
  let cells = Json.to_list (Option.value ~default:Json.Null (Json.member "cells" parsed)) in
  Alcotest.(check int) "one JSON object per cell" (List.length results) (List.length cells);
  List.iter2
    (fun (r : Experiment.sweep_result) cell ->
      Alcotest.(check (option string)) "workload" (Some r.Experiment.sweep.Experiment.workload)
        (Option.bind (Json.member "workload" cell) Json.to_string_opt);
      Alcotest.(check (option int)) "flows" (Some r.Experiment.flows)
        (Option.bind (Json.member "flows" cell) Json.to_int_opt);
      let pols = Json.to_list (Option.value ~default:Json.Null (Json.member "policies" cell)) in
      Alcotest.(check int) "per-policy entries" (List.length r.Experiment.per_policy)
        (List.length pols);
      List.iter2
        (fun (p : Experiment.sweep_policy_result) pj ->
          Alcotest.(check (option string)) "policy name" (Some p.Experiment.policy)
            (Option.bind (Json.member "name" pj) Json.to_string_opt);
          (match Option.bind (Json.member "avg_response" pj) Json.to_float_opt with
          | Some art -> Alcotest.(check (float 1e-9)) "ART round-trips" p.Experiment.art art
          | None -> Alcotest.(check bool) "nan ART serialized as null" true (Float.is_nan p.Experiment.art));
          Alcotest.(check (option int)) "MRT round-trips" (Some p.Experiment.mrt)
            (Option.bind (Json.member "max_response" pj) Json.to_int_opt))
        r.Experiment.per_policy pols;
      match Option.bind (Json.member "lp_avg_bound" cell) Json.to_float_opt with
      | Some lp -> Alcotest.(check (float 1e-9)) "LP bound round-trips" r.Experiment.lp_avg lp
      | None -> Alcotest.(check bool) "nan LP serialized as null" true (Float.is_nan r.Experiment.lp_avg))
    results cells

let test_lp_failure_degrades_gracefully () =
  let open Flowsched_util in
  let policies = [ Heuristics.maxcard ] in
  let cell = List.hd sweep_cells in
  let c = Flowsched_obs.Metrics.counter "sweep.lp_errors" in
  let before = Flowsched_obs.Metrics.counter_value c in
  Experiment.lp_failure_for_tests := Some (Failure "synthetic LP failure");
  let r =
    Fun.protect
      ~finally:(fun () -> Experiment.lp_failure_for_tests := None)
      (fun () -> Experiment.run_sweep_cell ~policies cell)
  in
  Alcotest.(check bool) "both bounds degrade to nan" true
    (Float.is_nan r.Experiment.lp_avg && Float.is_nan r.Experiment.lp_max);
  (match r.Experiment.lp_error with
  | Some msg ->
      Alcotest.(check bool) "error text preserved" true
        (let rec go i =
           i + 20 <= String.length msg && (String.sub msg i 20 = "synthetic LP failure" || go (i + 1))
         in
         go 0)
  | None -> Alcotest.fail "lp_error must be set");
  Alcotest.(check int) "counted under sweep.lp_errors" (before + 1)
    (Flowsched_obs.Metrics.counter_value c);
  Alcotest.(check bool) "heuristics still measured" true (r.Experiment.per_policy <> []);
  (* The degraded cell still round-trips byte-identically through the
     checkpoint encoders: lp_error as a string, nan bounds as null. *)
  let j = Report.sweep_cell_json r in
  match Report.sweep_result_of_json ~sweep:cell j with
  | Ok r' ->
      Alcotest.(check string) "re-encode byte-identical" (Json.to_string j)
        (Json.to_string (Report.sweep_cell_json r'))
  | Error e -> Alcotest.failf "degraded cell does not decode: %s" e

let test_sweep_unknown_workload_rejected () =
  let bad = { (List.hd sweep_cells) with Experiment.workload = "fractal" } in
  Alcotest.(check bool) "raises Invalid_argument" true
    (match Experiment.sweep_instance bad with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_workload_poisson_counts; prop_engine_matches_offline_fifo ]
  in
  Alcotest.run "flowsched_sim"
    [
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_poisson_deterministic;
          Alcotest.test_case "shape" `Quick test_poisson_shape;
          Alcotest.test_case "mean count" `Slow test_poisson_mean_count;
          Alcotest.test_case "with demands" `Quick test_poisson_with_demands;
          Alcotest.test_case "uniform total" `Quick test_uniform_total;
        ] );
      ( "streams",
        [
          Alcotest.test_case "uniform prefix = batch" `Quick test_stream_prefix_uniform;
          Alcotest.test_case "demands prefix = batch" `Quick test_stream_prefix_demands;
          Alcotest.test_case "skewed prefix = batch" `Quick test_stream_prefix_skewed;
          Alcotest.test_case "hotspot prefix = batch" `Quick test_stream_prefix_hotspot;
          Alcotest.test_case "horizon exceeded is typed" `Quick test_horizon_exceeded;
        ] );
      ( "adaptive-engine",
        [
          Alcotest.test_case "sequential ids" `Quick test_adaptive_ids_sequential;
          Alcotest.test_case "arrival cutoff" `Quick test_adaptive_stops_arrivals;
          Alcotest.test_case "adversary sees queue" `Quick test_adaptive_sees_pending;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "cell without lp" `Quick test_run_cell_without_lp;
          Alcotest.test_case "cell with lp" `Quick test_run_cell_with_lp;
          Alcotest.test_case "fig6 grid layout" `Quick test_fig6_grid_layout;
        ] );
      ( "report",
        [
          Alcotest.test_case "tables" `Quick test_report_tables;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "grid parallel = sequential" `Quick
            test_run_grid_parallel_identical;
          Alcotest.test_case "sweep deterministic across jobs" `Quick
            test_sweep_deterministic_across_jobs;
          Alcotest.test_case "sweep artifact round-trip" `Quick test_sweep_artifact_roundtrip;
          Alcotest.test_case "lp failure degrades gracefully" `Quick
            test_lp_failure_degrades_gracefully;
          Alcotest.test_case "sweep unknown workload" `Quick
            test_sweep_unknown_workload_rejected;
        ] );
      ("properties", props);
    ]
