(* Tests for flowsched_obs: span nesting and timing monotonicity, metric
   snapshot algebra (merge associativity/commutativity, diff, absorb),
   worker->parent metric merging through the Pool fork boundary, and the
   Json parser's surrogate-pair handling the trace writer relies on. *)

open Flowsched_obs
module Json = Flowsched_util.Json
module Pool = Flowsched_exec.Pool

(* The registry is process-global, so every test uses its own "test.*" name
   prefix and measures diffs against a before-snapshot rather than absolute
   values. *)
let only_prefix prefix snap =
  List.filter (fun (name, _) -> String.length name >= String.length prefix
                                && String.sub name 0 (String.length prefix) = prefix)
    snap

(* --- Trace --- *)

let test_span_nesting_and_timing () =
  Trace.start ();
  let r =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner.a" (fun () -> Unix.sleepf 0.002) ;
        Trace.with_span "inner.b" ~args:(fun () -> [ ("k", Json.Int 1) ]) (fun () -> ());
        17)
  in
  Trace.stop ();
  Alcotest.(check int) "with_span returns f's value" 17 r;
  let spans = Trace.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun (s : Trace.span) -> s.Trace.name = name) spans in
  let outer = find "outer" and a = find "inner.a" and b = find "inner.b" in
  Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
  Alcotest.(check int) "inner depth" 1 a.Trace.depth;
  Alcotest.(check int) "inner depth" 1 b.Trace.depth;
  (* Timing: never-negative durations, children within the parent span,
     spans () sorted by start time. *)
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "ts >= 0" true (s.Trace.ts_us >= 0.);
      Alcotest.(check bool) "dur >= 0" true (s.Trace.dur_us >= 0.))
    spans;
  Alcotest.(check bool) "inner.a inside outer" true
    (a.Trace.ts_us >= outer.Trace.ts_us
    && a.Trace.ts_us +. a.Trace.dur_us <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1.);
  Alcotest.(check bool) "inner.a before inner.b" true (a.Trace.ts_us <= b.Trace.ts_us);
  Alcotest.(check bool) "sleep measured" true (a.Trace.dur_us >= 1000.);
  Alcotest.(check bool) "sorted by start" true
    (let rec mono = function
       | (x : Trace.span) :: (y : Trace.span) :: rest ->
           x.Trace.ts_us <= y.Trace.ts_us && mono (y :: rest)
       | _ -> true
     in
     mono spans);
  Alcotest.(check bool) "args recorded" true (b.Trace.args = [ ("k", Json.Int 1) ])

let test_span_records_on_raise () =
  Trace.start ();
  (try Trace.with_span "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.stop ();
  Alcotest.(check int) "span recorded despite raise" 1 (List.length (Trace.spans ()))

let test_trace_disabled_is_noop () =
  Trace.start ();
  Trace.stop ();
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let evaluated = ref false in
  let r =
    Trace.with_span "ghost"
      ~args:(fun () -> evaluated := true; [])
      (fun () -> 3)
  in
  Alcotest.(check int) "still runs f" 3 r;
  Alcotest.(check bool) "args thunk not evaluated when disabled" false !evaluated;
  Alcotest.(check int) "no span recorded" 0 (List.length (Trace.spans ()))

let test_trace_json_shape () =
  Trace.start ();
  Trace.with_span "one" (fun () -> ());
  Trace.stop ();
  let j = Trace.to_json () in
  match Json.member "traceEvents" j with
  | Some (Json.Arr [ ev ]) ->
      Alcotest.(check (option string)) "ph" (Some "X")
        (Option.bind (Json.member "ph" ev) Json.to_string_opt);
      Alcotest.(check (option string)) "name" (Some "one")
        (Option.bind (Json.member "name" ev) Json.to_string_opt);
      Alcotest.(check bool) "round-trips through parser" true
        (Json.parse (Json.to_string j) = Ok j)
  | _ -> Alcotest.fail "expected a one-event traceEvents array"

(* --- Metrics: handles --- *)

let test_counter_gauge_histogram_basics () =
  let c = Metrics.counter "test.basics.c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  let g = Metrics.gauge "test.basics.g" in
  Metrics.add_gauge g 1.5;
  Metrics.add_gauge g 2.;
  Alcotest.(check (float 1e-9)) "gauge adds" 3.5 (Metrics.gauge_value g);
  Metrics.set_gauge g 7.;
  Alcotest.(check (float 1e-9)) "gauge set" 7. (Metrics.gauge_value g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"test.basics.c\" is already registered as a counter")
    (fun () -> ignore (Metrics.gauge "test.basics.c"))

let test_histogram_buckets () =
  let h = Metrics.histogram "test.hist.h" in
  Metrics.observe h 0.5;
  Metrics.observe h 0.5;
  Metrics.observe h 3.;
  Metrics.observe h 0.;
  (* non-positive -> bucket 0 *)
  match List.assoc "test.hist.h" (Metrics.snapshot ()) with
  | Metrics.Histogram { buckets; sum; count } ->
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check (float 1e-9)) "sum" 4.0 sum;
      Alcotest.(check int) "three distinct buckets" 3 (List.length buckets);
      List.iter
        (fun (i, n) ->
          Alcotest.(check bool) "occupied" true (n > 0);
          if i > 0 then
            Alcotest.(check bool) "bucket bound positive" true
              (Metrics.bucket_upper_bound i > 0.))
        buckets
  | _ -> Alcotest.fail "expected a histogram"

(* --- Metrics: snapshot algebra --- *)

let snap_a : Metrics.snapshot =
  [ ("a.c", Metrics.Counter 2); ("a.g", Metrics.Gauge 1.5);
    ("a.h", Metrics.Histogram { buckets = [ (33, 2) ]; sum = 3.; count = 2 }) ]

let snap_b : Metrics.snapshot =
  [ ("a.c", Metrics.Counter 5); ("b.c", Metrics.Counter 1) ]

let snap_c : Metrics.snapshot =
  [ ("a.g", Metrics.Gauge 0.5); ("a.h", Metrics.Histogram { buckets = [ (33, 1); (40, 1) ]; sum = 9.; count = 2 }) ]

let snap_testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Metrics.to_text s))
    ( = )

let test_merge_associative () =
  Alcotest.(check snap_testable) "associative"
    (Metrics.merge (Metrics.merge snap_a snap_b) snap_c)
    (Metrics.merge snap_a (Metrics.merge snap_b snap_c))

let test_merge_commutative_disjoint () =
  let disjoint : Metrics.snapshot = [ ("z.c", Metrics.Counter 9); ("z.g", Metrics.Gauge 2.) ] in
  Alcotest.(check snap_testable) "commutative on disjoint names"
    (Metrics.merge snap_a disjoint) (Metrics.merge disjoint snap_a);
  (* and still commutative on overlapping names, because combination is
     addition for every kind *)
  Alcotest.(check snap_testable) "commutative on overlap"
    (Metrics.merge snap_a snap_c) (Metrics.merge snap_c snap_a)

let test_diff_inverts_merge () =
  let merged = Metrics.merge snap_a snap_b in
  Alcotest.(check snap_testable) "diff (a+b) b = a" snap_a (Metrics.diff merged snap_b);
  Alcotest.(check snap_testable) "diff of equal snapshots is empty" []
    (Metrics.diff snap_a snap_a)

let test_absorb_adds_into_registry () =
  let before = Metrics.snapshot () in
  Metrics.absorb
    [ ("test.absorb.c", Metrics.Counter 3);
      ("test.absorb.h", Metrics.Histogram { buckets = [ (33, 1) ]; sum = 1.5; count = 1 }) ];
  Metrics.absorb [ ("test.absorb.c", Metrics.Counter 4) ];
  let d = only_prefix "test.absorb." (Metrics.diff (Metrics.snapshot ()) before) in
  Alcotest.(check snap_testable) "absorbed twice"
    [ ("test.absorb.c", Metrics.Counter 7);
      ("test.absorb.h", Metrics.Histogram { buckets = [ (33, 1) ]; sum = 1.5; count = 1 }) ]
    d

(* --- Pool: worker metrics merge equals the inline run --- *)

let pool_work x =
  (* Touch a counter, a gauge, and a histogram so every kind crosses the
     fork boundary. *)
  Metrics.incr ~by:x (Metrics.counter "test.pool.c");
  Metrics.add_gauge (Metrics.gauge "test.pool.g") (float_of_int x);
  Metrics.observe (Metrics.histogram "test.pool.h") (float_of_int x);
  x * x

let run_pool_and_diff ~jobs inputs =
  let before = Metrics.snapshot () in
  let out =
    Pool.map ~jobs ~f:pool_work inputs
    |> Array.map (function
         | Pool.Done v -> v
         | Pool.Failed { reason; _ } -> Alcotest.failf "pool job failed: %s" reason)
  in
  (out, only_prefix "test.pool." (Metrics.diff (Metrics.snapshot ()) before))

let test_worker_metrics_merge_matches_inline () =
  let inputs = Array.init 20 (fun i -> i + 1) in
  let out1, d1 = run_pool_and_diff ~jobs:1 inputs in
  let out4, d4 = run_pool_and_diff ~jobs:4 inputs in
  Alcotest.(check (array int)) "results identical" out1 out4;
  Alcotest.(check bool) "some metrics recorded" true (d1 <> []);
  Alcotest.(check snap_testable) "merged worker metrics equal inline totals" d1 d4

(* --- Json: surrogate pairs (satellite 1) --- *)

let test_surrogate_pair_decodes () =
  Alcotest.(check bool) "U+1F600 from escaped pair" true
    (Json.parse {|"\ud83d\ude00"|} = Ok (Json.Str "\xF0\x9F\x98\x80"));
  (* mixed with BMP escapes and literal text *)
  Alcotest.(check bool) "mixed" true
    (Json.parse {|"a\u0041\ud83d\ude00z"|} = Ok (Json.Str "aA\xF0\x9F\x98\x80z"));
  (* a string containing an astral code point round-trips *)
  Alcotest.(check bool) "round-trip" true
    (Json.parse (Json.to_string (Json.Str "\xF0\x9F\x98\x80"))
    = Ok (Json.Str "\xF0\x9F\x98\x80"))

let test_lone_surrogates_rejected () =
  let is_error = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "lone high" true (is_error (Json.parse {|"\ud83d"|}));
  Alcotest.(check bool) "high + non-escape" true (is_error (Json.parse {|"\ud83dx"|}));
  Alcotest.(check bool) "high + non-surrogate escape" true
    (is_error (Json.parse {|"\ud83dA"|}));
  Alcotest.(check bool) "lone low" true (is_error (Json.parse {|"\ude00"|}))

(* --- Json: structural round-trip property (satellite 3) --- *)

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
        map (fun s -> Json.Str s)
          (oneofl [ ""; "plain"; "with \"quotes\""; "tab\tnewline\n"; "\xF0\x9F\x98\x80";
                    "unicode \xC3\xA9"; "back\\slash" ]);
      ]
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun kvs ->
                    (* object keys must be distinct for structural round-trip *)
                    Json.Obj (List.mapi (fun i (_, v) -> (Printf.sprintf "k%d" i, v)) kvs))
                  (list_size (int_bound 4) (pair (return ()) (self (n / 2))));
              ])
        (min n 6))

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"parse (to_string v) = Ok v" ~count:500 json_gen (fun v ->
      Json.parse (Json.to_string v) = Ok v
      && Json.parse (Json.to_string ~pretty:false v) = Ok v)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_json_roundtrip ] in
  Alcotest.run "flowsched_obs"
    [
      ( "trace",
        [
          Alcotest.test_case "nesting and timing" `Quick test_span_nesting_and_timing;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "chrome trace json" `Quick test_trace_json_shape;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "handle basics" `Quick test_counter_gauge_histogram_basics;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge associative" `Quick test_merge_associative;
          Alcotest.test_case "merge commutative" `Quick test_merge_commutative_disjoint;
          Alcotest.test_case "diff inverts merge" `Quick test_diff_inverts_merge;
          Alcotest.test_case "absorb" `Quick test_absorb_adds_into_registry;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker merge equals inline" `Quick
            test_worker_metrics_merge_matches_inline;
        ] );
      ( "json-surrogates",
        [
          Alcotest.test_case "pair decodes" `Quick test_surrogate_pair_decodes;
          Alcotest.test_case "lone surrogates rejected" `Quick test_lone_surrogates_rejected;
        ] );
      ("properties", qsuite);
    ]
