(* Tests for the online policies and their theoretical properties: policy
   feasibility, heuristic behaviour, the Figure 4 lower bounds, and the
   AMRT competitive guarantee (Lemma 5.3). *)

open Flowsched_switch
open Flowsched_core
open Flowsched_online
open Flowsched_sim

let mk ~m specs = Instance.of_flows ~m ~m':m specs

let random_instance seed ~m ~n ~maxrel =
  let g = Flowsched_util.Prng.create seed in
  mk ~m
    (List.init n (fun _ ->
         ( Flowsched_util.Prng.int g m,
           Flowsched_util.Prng.int g m,
           1,
           Flowsched_util.Prng.int g (maxrel + 1) )))

let all_policies seed =
  Heuristics.all_paper_heuristics @ [ Heuristics.fifo; Heuristics.random_policy ~seed ]

(* --- engine basics --- *)

let test_engine_schedules_everything () =
  let inst = random_instance 3 ~m:4 ~n:20 ~maxrel:5 in
  List.iter
    (fun (p : Policy.t) ->
      let r = Engine.run_instance p inst in
      Alcotest.(check bool)
        (p.Policy.name ^ " complete") true
        (Schedule.is_complete r.Engine.schedule);
      Alcotest.(check bool)
        (p.Policy.name ^ " valid") true
        (Schedule.is_valid inst r.Engine.schedule);
      Array.iter
        (fun rt -> Alcotest.(check bool) "response >= 1" true (rt >= 1))
        r.Engine.responses)
    (all_policies 7)

let test_engine_rejects_bad_policy () =
  let cheating =
    {
      Policy.name = "cheater";
      select = (fun ctx -> List.init (Array.length ctx.Policy.queue) (fun i -> i));
    }
  in
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0) ] in
  (try
     ignore (Engine.run_instance cheating inst);
     Alcotest.fail "expected Policy_violation"
   with Engine.Policy_violation _ -> ());
  let out_of_range = { Policy.name = "oob"; select = (fun _ -> [ 99 ]) } in
  try
    ignore (Engine.run_instance out_of_range inst);
    Alcotest.fail "expected Policy_violation"
  with Engine.Policy_violation _ -> ()

let test_engine_stalls_detected () =
  let lazy_policy = { Policy.name = "lazy"; select = (fun _ -> []) } in
  let inst = mk ~m:1 [ (0, 0, 1, 0) ] in
  try
    ignore (Engine.run_instance ~max_rounds:100 lazy_policy inst);
    Alcotest.fail "expected stall failure"
  with Engine.Horizon_exceeded { round = 100; pending = 1 } -> ()

let test_fifo_work_conserving () =
  let inst = random_instance 11 ~m:3 ~n:15 ~maxrel:4 in
  let r = Engine.run_instance Heuristics.fifo inst in
  Alcotest.(check int) "never idles with pending flows" 0 r.Engine.rounds_idle

(* --- heuristic-specific behaviour --- *)

let test_maxcard_is_maximum () =
  (* greedy would pick edge (0,0) and block both; max cardinality is 2 *)
  let inst = mk ~m:2 [ (0, 0, 1, 0); (0, 1, 1, 0); (1, 0, 1, 0) ] in
  let r = Engine.run_instance Heuristics.maxcard inst in
  (* two flows run in round 0 -> total response 1+1+2 = 4 *)
  Alcotest.(check int) "total response" 4
    (Array.fold_left ( + ) 0 r.Engine.responses)

let test_minrtime_prioritizes_oldest () =
  (* old flow (released 0) and fresh flow (released 2) conflict at round 2:
     MinRTime must run the old one first. *)
  let inst = mk ~m:1 [ (0, 0, 1, 2); (0, 0, 1, 2) ] in
  let r = Engine.run_instance Heuristics.minrtime inst in
  Alcotest.(check int) "max response 2" 2 (Engine.max_response r);
  (* sanity on the weighting: a genuinely old flow wins against fresh ones *)
  let inst2 = mk ~m:2 [ (0, 0, 1, 0); (1, 0, 1, 1); (1, 1, 1, 1) ] in
  let r2 = Engine.run_instance Heuristics.minrtime inst2 in
  Alcotest.(check bool) "old flow not starved" true (r2.Engine.responses.(0) <= 2)

let test_minrtime_work_conserving_on_fresh_flows () =
  (* all flows fresh (weight would be 0 without the +1 offset): they must
     still be scheduled immediately when a matching exists *)
  let inst = mk ~m:2 [ (0, 0, 1, 0); (1, 1, 1, 0) ] in
  let r = Engine.run_instance Heuristics.minrtime inst in
  Alcotest.(check int) "both run in round 0" 1 (Engine.max_response r)

let test_maxweight_uses_queue_lengths () =
  let inst = random_instance 13 ~m:3 ~n:12 ~maxrel:2 in
  let r = Engine.run_instance Heuristics.maxweight inst in
  Alcotest.(check bool) "valid" true (Schedule.is_valid inst r.Engine.schedule)

let test_srpt_prefers_small_demands () =
  (* capacity-3 port pair: a demand-3 flow and a demand-1 flow conflict at
     round 0 together with another demand-1; SRPT packs the small ones
     first. *)
  let inst =
    Instance.of_flows ~cap_in:[| 3 |] ~cap_out:[| 3 |] ~m:1 ~m':1
      [ (0, 0, 3, 0); (0, 0, 1, 0); (0, 0, 1, 0) ]
  in
  let r = Engine.run_instance Heuristics.srpt inst in
  Alcotest.(check bool) "valid" true (Schedule.is_valid inst r.Engine.schedule);
  (* both unit flows run in round 0, the demand-3 flow waits *)
  Alcotest.(check int) "unit flow immediate" 1 r.Engine.responses.(1);
  Alcotest.(check int) "unit flow immediate" 1 r.Engine.responses.(2);
  Alcotest.(check int) "big flow deferred" 2 r.Engine.responses.(0)

let test_srpt_equals_fifo_on_unit_demands () =
  let inst = random_instance 29 ~m:4 ~n:20 ~maxrel:4 in
  let a = Engine.run_instance Heuristics.srpt inst in
  let b = Engine.run_instance Heuristics.fifo inst in
  Alcotest.(check (array int)) "same schedule" (Schedule.assignment a.Engine.schedule)
    (Schedule.assignment b.Engine.schedule)

let test_policies_on_demand_workloads () =
  let inst =
    Workload.poisson_with_demands ~m:4 ~rate:2.0 ~rounds:6 ~max_demand:3 ~seed:31
  in
  List.iter
    (fun (p : Policy.t) ->
      let r = Engine.run_instance p inst in
      Alcotest.(check bool) (p.Policy.name ^ " valid on demand workload") true
        (Schedule.is_valid inst r.Engine.schedule))
    (Heuristics.srpt :: all_policies 31)

(* --- capacities > 1 --- *)

let test_policies_respect_general_capacities () =
  let inst =
    Instance.of_flows ~cap_in:[| 2; 1 |] ~cap_out:[| 1; 2 |] ~m:2 ~m':2
      [ (0, 0, 1, 0); (0, 1, 1, 0); (1, 1, 1, 0); (0, 1, 1, 1) ]
  in
  List.iter
    (fun (p : Policy.t) ->
      let r = Engine.run_instance p inst in
      Alcotest.(check bool) (p.Policy.name ^ " valid") true
        (Schedule.is_valid inst r.Engine.schedule))
    (all_policies 17)

(* --- Figure 4(b): the 3/2 lower bound (Lemma 5.2) --- *)

let fig4b_adversary ~round ~pending =
  if round = 0 then [ (0, 1, 1); (0, 0, 1); (1, 2, 1); (1, 3, 1) ]
  else if round = 1 then
    Lower_bounds.fig4b_dashed
      ~remaining_solid_outputs:(List.map (fun (f : Flow.t) -> f.Flow.dst) pending)
  else []

let test_fig4b_offline_optimum () =
  match Exact.min_max_response (Lower_bounds.fig4b_static ()) with
  | Some (rho, _) -> Alcotest.(check int) "optimum 2" Lower_bounds.fig4b_optimum rho
  | None -> Alcotest.fail "fig4b must be schedulable"

let test_fig4b_forces_online_to_3 () =
  List.iter
    (fun (p : Policy.t) ->
      let r =
        Engine.run_adaptive ~m:3 ~m':4 ~arrivals:fig4b_adversary ~stop_arrivals_after:2 p
      in
      Alcotest.(check bool)
        (p.Policy.name ^ " forced to >= 3") true
        (Engine.max_response r >= 3))
    (all_policies 19)

(* --- Figure 4(a): unbounded ART ratio (Lemma 5.1) --- *)

let fig4a_adversary ~t ~round ~pending =
  if round < t then [ (0, 0, 1); (0, 1, 1) ]
  else begin
    let count d = List.length (List.filter (fun (f : Flow.t) -> f.Flow.dst = d) pending) in
    [ (1, Lower_bounds.fig4a_dashed_target ~pending_out0:(count 0) ~pending_out1:(count 1), 1) ]
  end

let test_fig4a_ratio_grows () =
  let ratio_for total =
    let t = 6 in
    let r =
      Engine.run_adaptive ~m:2 ~m':2
        ~arrivals:(fun ~round ~pending -> fig4a_adversary ~t ~round ~pending)
        ~stop_arrivals_after:total Heuristics.maxcard
    in
    let inst = Instance.create ~m:2 ~m':2 r.Engine.flows in
    let horizon = max (Art_lp.default_horizon inst) r.Engine.makespan in
    let bound = Art_lp.lower_bound ~horizon inst in
    Engine.average_response r /. bound.Art_lp.average
  in
  let small = ratio_for 24 and large = ratio_for 60 in
  Alcotest.(check bool) "adversary hurts online" true (small > 1.5);
  Alcotest.(check bool) "ratio grows with M" true (large > small)

let test_fig4a_static_shape () =
  let inst = Lower_bounds.fig4a_static ~t:4 ~total_rounds:10 in
  Alcotest.(check int) "flow count" ((2 * 4) + 6) (Instance.n inst);
  Alcotest.check_raises "bad parameters"
    (Invalid_argument "Lower_bounds.fig4a_static: need 1 <= t < total_rounds") (fun () ->
      ignore (Lower_bounds.fig4a_static ~t:5 ~total_rounds:5))

(* --- AMRT (Lemma 5.3) --- *)

let run_amrt inst =
  let cap_in, cap_out =
    Amrt.required_capacities ~cap_in:inst.Instance.cap_in ~cap_out:inst.Instance.cap_out
      ~dmax:(max 1 (Instance.dmax inst))
  in
  let amrt =
    Amrt.make ~planning_cap_in:inst.Instance.cap_in ~planning_cap_out:inst.Instance.cap_out ()
  in
  let augmented =
    Instance.create ~cap_in ~cap_out ~m:inst.Instance.m ~m':inst.Instance.m'
      inst.Instance.flows
  in
  (Engine.run_instance amrt augmented, amrt)

let test_amrt_feasible_and_complete () =
  let inst = random_instance 23 ~m:4 ~n:30 ~maxrel:8 in
  let r, amrt = run_amrt inst in
  Alcotest.(check bool) "complete" true (Schedule.is_complete r.Engine.schedule);
  match Amrt.current_rho amrt with
  | Some rho -> Alcotest.(check bool) "guess grew to >= 1" true (rho >= 1)
  | None -> Alcotest.fail "introspection lost"

let test_amrt_required_capacities () =
  let cap_in, cap_out =
    Amrt.required_capacities ~cap_in:[| 1; 2 |] ~cap_out:[| 3 |] ~dmax:2
  in
  Alcotest.(check (array int)) "in" [| 8; 10 |] cap_in;
  Alcotest.(check (array int)) "out" [| 12 |] cap_out

let prop_amrt_competitive =
  (* Lemma 5.3 gives a 2-competitive guarantee vs the optimal max response;
     comparing against the fractional LP bound we allow the batching slack:
     max response <= 2 * rho_guess and rho_guess converges near rho*. *)
  QCheck2.Test.make ~name:"AMRT: bounded competitive ratio" ~count:15
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 3 5) (int_range 5 25))
    (fun (seed, m, n) ->
      let inst = random_instance seed ~m ~n ~maxrel:6 in
      let r, amrt = run_amrt inst in
      let rho_guess = match Amrt.current_rho amrt with Some k -> k | None -> 0 in
      let frac = Mrt_scheduler.min_fractional_rho inst in
      Schedule.is_complete r.Engine.schedule
      && Engine.max_response r <= 2 * rho_guess
      (* the guess never needs to exceed a full serialization *)
      && rho_guess <= n + frac)

let prop_policies_always_feasible =
  QCheck2.Test.make ~name:"policies always emit feasible selections" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 5) (int_range 1 25))
    (fun (seed, m, n) ->
      let inst = random_instance seed ~m ~n ~maxrel:5 in
      List.for_all
        (fun (p : Policy.t) ->
          let r = Engine.run_instance p inst in
          Schedule.is_valid inst r.Engine.schedule)
        (all_policies seed))

let prop_minrtime_bounded_unfairness =
  (* MinRTime's priority rule keeps maximum response within a small factor
     of FIFO's (both are near-FIFO for max response). *)
  QCheck2.Test.make ~name:"MinRTime max response <= FIFO's" ~count:30
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 5 30))
    (fun (seed, n) ->
      let inst = random_instance seed ~m:4 ~n ~maxrel:6 in
      let mr = Engine.run_instance Heuristics.minrtime inst in
      let ff = Engine.run_instance Heuristics.fifo inst in
      Engine.max_response mr <= Engine.max_response ff + 2)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_amrt_competitive; prop_policies_always_feasible; prop_minrtime_bounded_unfairness ]
  in
  Alcotest.run "flowsched_online"
    [
      ( "engine",
        [
          Alcotest.test_case "schedules everything" `Quick test_engine_schedules_everything;
          Alcotest.test_case "rejects bad policies" `Quick test_engine_rejects_bad_policy;
          Alcotest.test_case "detects stalls" `Quick test_engine_stalls_detected;
          Alcotest.test_case "fifo work conserving" `Quick test_fifo_work_conserving;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "maxcard maximum matching" `Quick test_maxcard_is_maximum;
          Alcotest.test_case "minrtime prioritizes oldest" `Quick test_minrtime_prioritizes_oldest;
          Alcotest.test_case "minrtime work conserving" `Quick
            test_minrtime_work_conserving_on_fresh_flows;
          Alcotest.test_case "maxweight valid" `Quick test_maxweight_uses_queue_lengths;
          Alcotest.test_case "srpt prefers small demands" `Quick test_srpt_prefers_small_demands;
          Alcotest.test_case "srpt = fifo on unit demands" `Quick test_srpt_equals_fifo_on_unit_demands;
          Alcotest.test_case "policies on demand workloads" `Quick test_policies_on_demand_workloads;
          Alcotest.test_case "general capacities" `Quick test_policies_respect_general_capacities;
        ] );
      ( "lower-bounds",
        [
          Alcotest.test_case "fig4b offline optimum" `Quick test_fig4b_offline_optimum;
          Alcotest.test_case "fig4b forces 3" `Quick test_fig4b_forces_online_to_3;
          Alcotest.test_case "fig4a ratio grows" `Slow test_fig4a_ratio_grows;
          Alcotest.test_case "fig4a static shape" `Quick test_fig4a_static_shape;
        ] );
      ( "amrt",
        [
          Alcotest.test_case "feasible and complete" `Quick test_amrt_feasible_and_complete;
          Alcotest.test_case "required capacities" `Quick test_amrt_required_capacities;
        ] );
      ("properties", props);
    ]
