(* Tests for the FS-MRT pipeline: LP (19)-(21), the Lemma 4.3-style
   rounding, the binary-search solver, and the deadline model of
   Remark 4.2. *)

open Flowsched_switch
open Flowsched_core

let mk ?cap_in ?cap_out ~m specs = Instance.of_flows ?cap_in ?cap_out ~m ~m':m specs

let tiny_instance seed ~m ~n ~maxrel =
  let g = Flowsched_util.Prng.create seed in
  mk ~m
    (List.init n (fun _ ->
         ( Flowsched_util.Prng.int g m,
           Flowsched_util.Prng.int g m,
           1,
           Flowsched_util.Prng.int g (maxrel + 1) )))

let demand_instance seed ~m ~n ~maxrel ~max_demand =
  let g = Flowsched_util.Prng.create seed in
  mk
    ~cap_in:(Array.make m max_demand)
    ~cap_out:(Array.make m max_demand)
    ~m
    (List.init n (fun _ ->
         ( Flowsched_util.Prng.int g m,
           Flowsched_util.Prng.int g m,
           1 + Flowsched_util.Prng.int g max_demand,
           Flowsched_util.Prng.int g (maxrel + 1) )))

(* --- active-round helpers --- *)

let test_active_of_rho () =
  let inst = mk ~m:1 [ (0, 0, 1, 2) ] in
  Alcotest.(check (list int)) "window" [ 2; 3; 4 ] (Mrt_lp.active_of_rho inst 3 0);
  Alcotest.check_raises "rho 0" (Invalid_argument "Mrt_lp.active_of_rho: rho must be >= 1")
    (fun () ->
      let (_ : Mrt_lp.active) = Mrt_lp.active_of_rho inst 0 in
      ())

let test_active_of_deadlines () =
  let inst = mk ~m:1 [ (0, 0, 1, 2) ] in
  Alcotest.(check (list int)) "inclusive deadline" [ 2; 3 ]
    (Mrt_lp.active_of_deadlines inst [| 3 |] 0);
  let bad = Mrt_lp.active_of_deadlines inst [| 1 |] in
  Alcotest.check_raises "deadline before release"
    (Invalid_argument "Mrt_lp.active_of_deadlines: deadline before release") (fun () ->
      ignore (bad 0))

(* --- LP feasibility --- *)

let test_lp_feasibility_basic () =
  (* 2 flows on one unit port pair: rho=1 infeasible, rho=2 feasible. *)
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0) ] in
  Alcotest.(check bool) "rho=1 infeasible" false (Mrt_scheduler.feasible_rho inst 1);
  Alcotest.(check bool) "rho=2 feasible" true (Mrt_scheduler.feasible_rho inst 2);
  Alcotest.(check int) "binary search" 2 (Mrt_scheduler.min_fractional_rho inst)

let test_lp_fractional_below_integral () =
  (* 3 unit flows pairwise sharing ports (triangle-ish): fractional can be
     strictly below integral.  inputs {0,1}, outputs {0,1}:
     (0,0),(0,1),(1,0) all released at 0: integral needs rho=2;
     fractional: each 1/... port 0-in carries 2 flows -> fractional rho 2 as
     well; just assert frac <= exact. *)
  let inst = mk ~m:2 [ (0, 0, 1, 0); (0, 1, 1, 0); (1, 0, 1, 0) ] in
  let frac = Mrt_scheduler.min_fractional_rho inst in
  match Exact.min_max_response inst with
  | Some (exact, _) -> Alcotest.(check bool) "frac <= exact" true (frac <= exact)
  | None -> Alcotest.fail "exact solver found no schedule"

let prop_fractional_rho_lower_bounds_exact =
  QCheck2.Test.make ~name:"min fractional rho <= exact optimum" ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 1 6))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:2 in
      let frac = Mrt_scheduler.min_fractional_rho inst in
      match Exact.min_max_response inst with
      | Some (exact, _) -> frac <= exact
      | None -> false)

let prop_feasibility_monotone =
  QCheck2.Test.make ~name:"LP feasibility monotone in rho" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 10))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let rho = Mrt_scheduler.min_fractional_rho inst in
      Mrt_scheduler.feasible_rho inst rho
      && Mrt_scheduler.feasible_rho inst (rho + 1)
      && ((rho = 1) || not (Mrt_scheduler.feasible_rho inst (rho - 1))))

let test_rho_search_warm_matches_cold () =
  (* Basis reuse across the binary-search probes must not change the
     answer (feasibility of each probe LP is vertex-independent) and
     must strictly reduce the total pivot count. *)
  let module Simplex = Flowsched_lp.Simplex in
  let inst = tiny_instance 71 ~m:4 ~n:24 ~maxrel:4 in
  Simplex.reset_counters ();
  let rho_cold = Mrt_scheduler.min_fractional_rho ~warm_start:false inst in
  let cold_pivots = (Simplex.read_counters ()).Simplex.pivots in
  Simplex.reset_counters ();
  let rho_warm = Mrt_scheduler.min_fractional_rho ~warm_start:true inst in
  let warm_pivots = (Simplex.read_counters ()).Simplex.pivots in
  Alcotest.(check int) "identical rho" rho_cold rho_warm;
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer pivots (%d < %d)" warm_pivots cold_pivots)
    true
    (warm_pivots < cold_pivots)

let test_rho_search_parallel_probes_match () =
  (* The k-section search on spawned domains must find exactly the rho of
     the sequential bisection, for every probe width and with warm starts
     on or off (the reduction is deterministic by probe index). *)
  List.iter
    (fun seed ->
      let inst = tiny_instance seed ~m:4 ~n:20 ~maxrel:4 in
      let reference = Mrt_scheduler.min_fractional_rho ~probes:1 inst in
      List.iter
        (fun probes ->
          List.iter
            (fun warm_start ->
              Alcotest.(check int)
                (Printf.sprintf "probes=%d warm=%b (seed %d)" probes warm_start seed)
                reference
                (Mrt_scheduler.min_fractional_rho ~warm_start ~probes inst))
            [ true; false ])
        [ 2; 3; 4 ])
    [ 72; 73; 74 ]

let prop_declared_ub_matches_explicit_rows =
  (* The declared-bound formulation (x_{e,t} <= 1 enforced by the simplex's
     bounded-variable ratio test) must agree with the explicit-row oracle on
     feasibility at every rho around the threshold, and both solutions must
     fully schedule every flow. *)
  QCheck2.Test.make ~name:"Mrt_lp declared ubs = explicit rows" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 10))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let scheduled_ok frac =
        let sums = Array.make n 0. in
        Hashtbl.iter (fun (e, _) v -> sums.(e) <- sums.(e) +. v) frac.Mrt_lp.values;
        Array.for_all (fun s -> abs_float (s -. 1.) <= 1e-6) sums
      in
      List.for_all
        (fun rho ->
          let active = Mrt_lp.active_of_rho inst rho in
          match (Mrt_lp.solve inst active, Mrt_lp.solve ~explicit_ub_rows:true inst active) with
          | None, None -> true
          | Some a, Some b -> scheduled_ok a && scheduled_ok b
          | _ -> false)
        [ 1; 2; 3; 4 ])

(* --- rounding --- *)

let test_rounding_simple () =
  let inst = mk ~m:2 [ (0, 0, 1, 0); (0, 1, 1, 0); (1, 0, 1, 0); (1, 1, 1, 0) ] in
  match Mrt_rounding.round inst (Mrt_lp.active_of_rho inst 2) with
  | None -> Alcotest.fail "expected feasible rounding"
  | Some o ->
      Alcotest.(check bool) "complete" true (Schedule.is_complete o.Mrt_rounding.schedule);
      Alcotest.(check bool) "within guarantee" true o.Mrt_rounding.within_guarantee;
      Alcotest.(check int) "unit-demand bound" 1 o.Mrt_rounding.bound;
      Alcotest.(check bool) "respects active rounds" true
        (Schedule.max_response inst o.Mrt_rounding.schedule <= 2)

let test_rounding_infeasible () =
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0) ] in
  Alcotest.(check bool) "rho=1 cannot fit 3 flows even fractionally" true
    (Mrt_rounding.round inst (Mrt_lp.active_of_rho inst 1) = None)

let prop_rounding_guarantee_unit =
  QCheck2.Test.make ~name:"rounding: response <= rho, overflow <= 1 (unit)" ~count:50
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 5) (int_range 2 20))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let rho = Mrt_scheduler.min_fractional_rho inst in
      match Mrt_rounding.round inst (Mrt_lp.active_of_rho inst rho) with
      | None -> false
      | Some o ->
          Schedule.is_complete o.Mrt_rounding.schedule
          && Schedule.max_response inst o.Mrt_rounding.schedule <= rho
          && o.Mrt_rounding.within_guarantee
          && o.Mrt_rounding.overflow <= 1)

let prop_rounding_guarantee_demands =
  QCheck2.Test.make ~name:"rounding: overflow <= 2 dmax - 1 (general demands)" ~count:40
    QCheck2.Gen.(
      quad (int_bound 1_000_000) (int_range 2 4) (int_range 2 12) (int_range 2 4))
    (fun (seed, m, n, max_demand) ->
      let inst = demand_instance seed ~m ~n ~maxrel:3 ~max_demand in
      let rho = Mrt_scheduler.min_fractional_rho inst in
      match Mrt_rounding.round inst (Mrt_lp.active_of_rho inst rho) with
      | None -> false
      | Some o ->
          Schedule.max_response inst o.Mrt_rounding.schedule <= rho
          && o.Mrt_rounding.overflow <= (2 * Instance.dmax inst) - 1)

(* --- solver end to end --- *)

let test_solve_end_to_end () =
  let inst = tiny_instance 23 ~m:3 ~n:12 ~maxrel:3 in
  let sol = Mrt_scheduler.solve inst in
  Alcotest.(check bool) "valid under augmented caps" true
    (Schedule.is_valid sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule);
  Alcotest.(check bool) "achieved rho below fractional target" true
    (sol.Mrt_scheduler.rho <= sol.Mrt_scheduler.fractional_rho)

let prop_solve_optimal_wrt_exact =
  (* Theorem 3: with augmentation the solver achieves max response <= the
     UN-augmented exact optimum. *)
  QCheck2.Test.make ~name:"Theorem 3: rho <= exact optimum, valid augmented" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 1 6))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:2 in
      let sol = Mrt_scheduler.solve inst in
      match Exact.min_max_response inst with
      | Some (exact, _) ->
          sol.Mrt_scheduler.rho <= exact
          && Schedule.is_valid sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule
      | None -> false)

(* --- deadlines (Remark 4.2) --- *)

let test_deadlines_feasible () =
  let inst = tiny_instance 29 ~m:3 ~n:10 ~maxrel:2 in
  (* deadlines taken from a serial schedule are always meetable *)
  let base = Instance.last_release inst in
  let deadlines =
    Array.init (Instance.n inst) (fun i -> base + i)
  in
  match Mrt_scheduler.solve_with_deadlines inst ~deadlines with
  | None -> Alcotest.fail "serial deadlines must be feasible"
  | Some sol ->
      Array.iteri
        (fun e d ->
          Alcotest.(check bool) "deadline met" true
            (Schedule.round_of sol.Mrt_scheduler.schedule e <= d))
        deadlines;
      Alcotest.(check bool) "valid under augmented" true
        (Schedule.is_valid sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule)

let test_deadlines_infeasible () =
  (* two flows on the same unit port pair cannot both run at round 0 *)
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0) ] in
  Alcotest.(check bool) "impossible deadlines rejected" true
    (Mrt_scheduler.solve_with_deadlines inst ~deadlines:[| 0; 0 |] = None)

let prop_deadline_schedules_meet_deadlines =
  QCheck2.Test.make ~name:"deadline model: every met or None" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 10))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:2 in
      let g = Flowsched_util.Prng.create (seed + 99) in
      let deadlines =
        Array.map
          (fun (f : Flow.t) -> f.Flow.release + Flowsched_util.Prng.int g 4)
          inst.Instance.flows
      in
      match Mrt_scheduler.solve_with_deadlines inst ~deadlines with
      | None -> true (* infeasible deadline sets are legitimate *)
      | Some sol ->
          Array.for_all
            (fun e -> Schedule.round_of sol.Mrt_scheduler.schedule e <= deadlines.(e))
            (Array.init (Instance.n inst) (fun i -> i))
          && sol.Mrt_scheduler.rounding.Mrt_rounding.within_guarantee)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_fractional_rho_lower_bounds_exact;
        prop_feasibility_monotone;
        prop_declared_ub_matches_explicit_rows;
        prop_rounding_guarantee_unit;
        prop_rounding_guarantee_demands;
        prop_solve_optimal_wrt_exact;
        prop_deadline_schedules_meet_deadlines;
      ]
  in
  Alcotest.run "flowsched_mrt"
    [
      ( "active-rounds",
        [
          Alcotest.test_case "of rho" `Quick test_active_of_rho;
          Alcotest.test_case "of deadlines" `Quick test_active_of_deadlines;
        ] );
      ( "lp",
        [
          Alcotest.test_case "feasibility + binary search" `Quick test_lp_feasibility_basic;
          Alcotest.test_case "fractional below integral" `Quick test_lp_fractional_below_integral;
          Alcotest.test_case "warm rho search matches cold" `Quick test_rho_search_warm_matches_cold;
          Alcotest.test_case "parallel probes match sequential" `Quick
            test_rho_search_parallel_probes_match;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "simple" `Quick test_rounding_simple;
          Alcotest.test_case "infeasible detected" `Quick test_rounding_infeasible;
        ] );
      ( "solver",
        [
          Alcotest.test_case "end to end" `Quick test_solve_end_to_end;
          Alcotest.test_case "deadlines feasible" `Quick test_deadlines_feasible;
          Alcotest.test_case "deadlines infeasible" `Quick test_deadlines_infeasible;
        ] );
      ("properties", props);
    ]
