(* Tests for the FS-ART pipeline: LP (1)-(4) / (5)-(8), Lemma 3.1's lower
   bound, the iterative rounding of Lemma 3.3, and Theorem 1's conversion to
   a valid resource-augmented schedule. *)

open Flowsched_switch
open Flowsched_core

let mk ?cap_in ?cap_out ~m specs = Instance.of_flows ?cap_in ?cap_out ~m ~m':m specs

let tiny_instance seed ~m ~n ~maxrel =
  let g = Flowsched_util.Prng.create seed in
  mk ~m
    (List.init n (fun _ ->
         ( Flowsched_util.Prng.int g m,
           Flowsched_util.Prng.int g m,
           1,
           Flowsched_util.Prng.int g (maxrel + 1) )))

(* --- LP construction --- *)

let test_default_horizon () =
  (* 3 unit flows on the same port pair, all released at 2: horizon must
     cover 2 + 3 rounds of draining. *)
  let inst = mk ~m:1 [ (0, 0, 1, 2); (0, 0, 1, 2); (0, 0, 1, 2) ] in
  Alcotest.(check bool) "covers drain" true (Art_lp.default_horizon inst >= 5)

let test_round_lp_variables () =
  let inst = mk ~m:2 [ (0, 1, 1, 3) ] in
  let built = Art_lp.build_round_lp inst in
  Alcotest.(check bool) "no var before release" true (built.Art_lp.var 0 2 = None);
  Alcotest.(check bool) "var at release" true (built.Art_lp.var 0 3 <> None);
  Alcotest.(check bool) "var list ordered" true
    (let rounds = List.map fst built.Art_lp.vars_of_flow.(0) in
     rounds = List.sort compare rounds && List.hd rounds = 3)

let test_lower_bound_single_flow () =
  (* One unit flow: the fractional response is (0 - 0)/1 + 1/2 = 0.5. *)
  let inst = mk ~m:1 [ (0, 0, 1, 0) ] in
  let bound = Art_lp.lower_bound inst in
  Alcotest.(check (float 1e-6)) "Delta_e of a lone flow" 0.5 bound.Art_lp.total

let test_lower_bound_contention () =
  (* k flows on one unit port pair: fractional optimum is sum_{t<k} (t+1/2)
     = k^2/2. *)
  let k = 4 in
  let inst = mk ~m:1 (List.init k (fun _ -> (0, 0, 1, 0))) in
  let bound = Art_lp.lower_bound inst in
  Alcotest.(check (float 1e-6)) "k^2/2" (float_of_int (k * k) /. 2.) bound.Art_lp.total

let test_lower_bound_respects_capacity () =
  (* Same contention but capacity 2: flows drain twice as fast. *)
  let inst =
    mk ~cap_in:[| 2 |] ~cap_out:[| 2 |] ~m:1 (List.init 4 (fun _ -> (0, 0, 1, 0)))
  in
  let bound = Art_lp.lower_bound inst in
  (* kappa = 2 so the additive term is 1/(2*2); two flows per round for two
     rounds: 2*(0 + 1/4) + 2*(1 + 1/4) = 3 *)
  Alcotest.(check (float 1e-6)) "capacity-2 drain" 3. bound.Art_lp.total

let test_interval_lp_relaxes_round_lp () =
  let inst = tiny_instance 5 ~m:3 ~n:10 ~maxrel:3 in
  let round_lp = Art_lp.build_round_lp inst in
  let interval_lp = Art_lp.build_interval_lp inst in
  let r1 = Flowsched_lp.Simplex.solve_or_fail round_lp.Art_lp.model in
  let r2 = Flowsched_lp.Simplex.solve_or_fail interval_lp.Art_lp.model in
  (* the interval LP aggregates capacity over 4-round windows: weaker *)
  Alcotest.(check bool) "interval optimum <= round optimum" true
    (r2.Flowsched_lp.Simplex.objective <= r1.Flowsched_lp.Simplex.objective +. 1e-6)

let prop_declared_ub_matches_explicit_rows =
  (* Declared per-variable bounds b_{e,t} <= d_e vs the same bounds as
     explicit Le rows: both formulations describe the same polytope, so the
     optima must coincide (for the round LP and the interval LP alike). *)
  QCheck2.Test.make ~name:"Art_lp declared ubs = explicit rows" ~count:30
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 10))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let solve build =
        (Flowsched_lp.Simplex.solve_or_fail (build inst).Art_lp.model)
          .Flowsched_lp.Simplex.objective
      in
      let close a b = abs_float (a -. b) <= 1e-6 in
      close (solve Art_lp.build_round_lp) (solve (Art_lp.build_round_lp ~explicit_ub_rows:true))
      && close
           (solve Art_lp.build_interval_lp)
           (solve (Art_lp.build_interval_lp ~explicit_ub_rows:true)))

let test_weighted_bound_uniform_weights () =
  (* weight 1 everywhere must reproduce the unweighted bound *)
  let inst = tiny_instance 19 ~m:3 ~n:8 ~maxrel:2 in
  let w = Array.make (Instance.n inst) 1. in
  let b0 = Art_lp.lower_bound inst in
  let b1 = Art_lp.weighted_lower_bound inst ~weights:w in
  Alcotest.(check (float 1e-6)) "same optimum" b0.Art_lp.total b1.Art_lp.total

let test_weighted_bound_prioritizes () =
  (* two flows on one unit port pair; the heavy flow should be served first
     in the fractional optimum, so its fractional response stays at 1/2 *)
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0) ] in
  let b = Art_lp.weighted_lower_bound inst ~weights:[| 10.; 1. |] in
  (* fractional values carry the weight factor; per unit weight the heavy
     flow finishes first *)
  Alcotest.(check bool) "heavy flow first" true
    (b.Art_lp.fractional.(0) /. 10. < b.Art_lp.fractional.(1));
  (* optimum: 10*(1/2) + 1*(1 + 1/2) = 6.5 *)
  Alcotest.(check (float 1e-6)) "weighted optimum" 6.5 b.Art_lp.total

let test_weighted_bound_validation () =
  let inst = mk ~m:1 [ (0, 0, 1, 0) ] in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Art_lp.weighted_lower_bound: negative weight") (fun () ->
      ignore (Art_lp.weighted_lower_bound inst ~weights:[| -1. |]));
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Art_lp.weighted_lower_bound: one weight per flow") (fun () ->
      ignore (Art_lp.weighted_lower_bound inst ~weights:[||]))

let prop_weighted_bound_below_schedules =
  QCheck2.Test.make ~name:"weighted LP bound <= weighted cost of FIFO" ~count:40
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 15))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let g = Flowsched_util.Prng.create (seed + 3) in
      let weights =
        Array.init n (fun _ -> float_of_int (Flowsched_util.Prng.int g 5))
      in
      let fifo = Baselines.fifo inst in
      let horizon = max (Art_lp.default_horizon inst) (Schedule.makespan fifo) in
      let bound = Art_lp.weighted_lower_bound ~horizon inst ~weights in
      bound.Art_lp.total
      <= Schedule.weighted_total_response inst ~weights fifo +. 1e-6)

let prop_lp_bounds_exact_optimum =
  QCheck2.Test.make ~name:"LP (1)-(4) lower bounds the exact optimum" ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 3) (int_range 1 6))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:2 in
      let bound = Art_lp.lower_bound inst in
      let exact, _ = Exact.min_total_response inst in
      bound.Art_lp.total <= float_of_int exact +. 1e-6)

let prop_lp_bound_below_fifo =
  QCheck2.Test.make ~name:"LP bound <= FIFO upper bound" ~count:60
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 5) (int_range 1 25))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:4 in
      let fifo = Baselines.fifo inst in
      let horizon =
        max (Art_lp.default_horizon inst) (Schedule.makespan fifo)
      in
      let bound = Art_lp.lower_bound ~horizon inst in
      Schedule.is_valid inst fifo
      && bound.Art_lp.total <= float_of_int (Schedule.total_response inst fifo) +. 1e-6)

(* --- iterative rounding --- *)

let test_rounding_completes () =
  let inst = tiny_instance 11 ~m:3 ~n:14 ~maxrel:3 in
  let pseudo, diag = Iterative_rounding.run inst in
  Alcotest.(check bool) "all flows assigned" true (Schedule.is_complete pseudo);
  Alcotest.(check bool) "no forced fixes" true (diag.Iterative_rounding.forced = 0);
  (* each flow sits at or after its release *)
  Array.iter
    (fun (f : Flow.t) ->
      Alcotest.(check bool) "release respected" true
        (Schedule.round_of pseudo f.Flow.id >= f.Flow.release))
    inst.Instance.flows

let test_rounding_multi_iteration_path () =
  (* dense enough that LP(0) leaves fractional flows: the interval
     regrouping of iteration >= 1 must run and still satisfy the chain *)
  let inst = Flowsched_sim.Workload.uniform_total ~m:3 ~n:60 ~max_release:2 ~seed:6 in
  let pseudo, diag = Iterative_rounding.run inst in
  Alcotest.(check bool) "regrouping exercised" true (diag.Iterative_rounding.iterations >= 2);
  Alcotest.(check bool) "still no forced fixes" true (diag.Iterative_rounding.forced = 0);
  Alcotest.(check bool) "complete" true (Schedule.is_complete pseudo);
  Alcotest.(check bool) "cost chain" true
    (diag.Iterative_rounding.assignment_cost <= diag.Iterative_rounding.lp_objective +. 1e-5)

let test_rounding_cost_dominated_by_lp () =
  let inst = tiny_instance 13 ~m:3 ~n:16 ~maxrel:4 in
  let _, diag = Iterative_rounding.run inst in
  Alcotest.(check bool) "assignment cost <= LP(0) optimum" true
    (diag.Iterative_rounding.assignment_cost <= diag.Iterative_rounding.lp_objective +. 1e-5)

let prop_rounding_invariants =
  QCheck2.Test.make ~name:"iterative rounding: cost chain + backlog bound" ~count:30
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 20))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:4 in
      let pseudo, diag = Iterative_rounding.run inst in
      let cmax =
        Array.fold_left max 0 inst.Instance.cap_in
        |> max (Array.fold_left max 0 inst.Instance.cap_out)
      in
      Schedule.is_complete pseudo
      && diag.Iterative_rounding.forced = 0
      && diag.Iterative_rounding.assignment_cost
         <= diag.Iterative_rounding.lp_objective +. 1e-5
      (* Lemma 3.7: Vol <= c(t2-t1) + 4c + 10c*iterations *)
      && diag.Iterative_rounding.backlog
         <= cmax * (4 + (10 * diag.Iterative_rounding.iterations)))

let prop_rounding_iterations_logarithmic =
  QCheck2.Test.make ~name:"iterative rounding: O(log n) LP solves" ~count:20
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 4 32))
    (fun (seed, n) ->
      let inst = tiny_instance seed ~m:3 ~n ~maxrel:4 in
      let _, diag = Iterative_rounding.run inst in
      (* Lemma 3.5 gives ceil(log2 n) + 1; allow +2 slack for degenerate
         vertices *)
      let log2n = int_of_float (ceil (log (float_of_int n) /. log 2.)) in
      diag.Iterative_rounding.iterations <= log2n + 3)

let test_rounding_warm_matches_cold () =
  (* Warm-started iterative rounding must be byte-identical to cold-start
     and spend strictly fewer simplex pivots on a multi-iteration run. *)
  let module Simplex = Flowsched_lp.Simplex in
  let inst = Flowsched_sim.Workload.uniform_total ~m:3 ~n:60 ~max_release:2 ~seed:6 in
  Simplex.reset_counters ();
  let s_cold, d_cold = Iterative_rounding.run ~warm_start:false inst in
  let cold_pivots = (Simplex.read_counters ()).Simplex.pivots in
  Simplex.reset_counters ();
  let s_warm, d_warm = Iterative_rounding.run ~warm_start:true inst in
  let warm_pivots = (Simplex.read_counters ()).Simplex.pivots in
  Alcotest.(check bool) "multi-iteration run" true (d_cold.Iterative_rounding.iterations >= 2);
  Alcotest.(check (array int)) "identical schedules"
    (Schedule.assignment s_cold) (Schedule.assignment s_warm);
  Alcotest.(check bool) "identical LP(0) objective" true
    (abs_float
       (d_cold.Iterative_rounding.lp_objective -. d_warm.Iterative_rounding.lp_objective)
    <= 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "strictly fewer pivots (%d < %d)" warm_pivots cold_pivots)
    true
    (warm_pivots < cold_pivots)

(* --- Theorem 1 end to end --- *)

let test_theorem1_validity () =
  let inst = tiny_instance 17 ~m:3 ~n:18 ~maxrel:4 in
  let res = Art_scheduler.solve ~c:1 inst in
  Alcotest.(check bool) "valid under (1+c) capacities" true
    (Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule);
  Alcotest.(check (array int)) "augmented caps are 2x" [| 2; 2; 2 |]
    res.Art_scheduler.augmented.Instance.cap_in;
  Alcotest.(check bool) "lp bound below result" true
    (res.Art_scheduler.lp_total
    <= float_of_int res.Art_scheduler.total_response +. 1e-6)

let test_theorem1_rejects_nonunit () =
  let inst = mk ~cap_in:[| 2 |] ~cap_out:[| 2 |] ~m:1 [ (0, 0, 2, 0) ] in
  Alcotest.check_raises "non-unit demand"
    (Invalid_argument "Art_scheduler.solve: Theorem 1 requires unit demands") (fun () ->
      ignore (Art_scheduler.solve inst))

let test_theorem1_rejects_bad_c () =
  let inst = mk ~m:1 [ (0, 0, 1, 0) ] in
  Alcotest.check_raises "c = 0"
    (Invalid_argument "Art_scheduler.solve: c must be a positive integer") (fun () ->
      ignore (Art_scheduler.solve ~c:0 inst))

let prop_theorem1_guarantees =
  QCheck2.Test.make ~name:"Theorem 1: valid schedule, bounded response" ~count:25
    QCheck2.Gen.(
      quad (int_bound 1_000_000) (int_range 2 4) (int_range 1 24) (int_range 1 3))
    (fun (seed, m, n, c) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:3 in
      let res = Art_scheduler.solve ~c inst in
      let d = res.Art_scheduler.diagnostics in
      Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule
      (* every flow delayed at most h + d + spill beyond its pseudo cost *)
      && res.Art_scheduler.total_response
         <= int_of_float (ceil d.Art_scheduler.rounding.Iterative_rounding.assignment_cost)
            + (n
              * (d.Art_scheduler.h + d.Art_scheduler.max_classes
                + d.Art_scheduler.spill_rounds + 1))
      && res.Art_scheduler.lp_total
         <= float_of_int res.Art_scheduler.total_response +. 1e-6)

let test_greedy_ablation_valid () =
  let inst = tiny_instance 37 ~m:3 ~n:20 ~maxrel:4 in
  let res = Art_scheduler.solve_greedy ~c:1 inst in
  Alcotest.(check bool) "valid under (1+c) capacities" true
    (Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule);
  Alcotest.(check bool) "no LP was solved" true (Float.is_nan res.Art_scheduler.lp_total);
  Alcotest.(check int) "zero LP iterations" 0
    res.Art_scheduler.diagnostics.Art_scheduler.rounding.Iterative_rounding.iterations

let prop_greedy_ablation_valid =
  QCheck2.Test.make ~name:"greedy ablation: always valid, completes" ~count:25
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 2 30))
    (fun (seed, m, n) ->
      let inst = tiny_instance seed ~m ~n ~maxrel:4 in
      let res = Art_scheduler.solve_greedy ~c:2 inst in
      Schedule.is_complete res.Art_scheduler.schedule
      && Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule)

let prop_theorem1_larger_c_smaller_h =
  QCheck2.Test.make ~name:"Theorem 1: larger c never increases block length" ~count:15
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 6 20))
    (fun (seed, n) ->
      let inst = tiny_instance seed ~m:3 ~n ~maxrel:3 in
      let r1 = Art_scheduler.solve ~c:1 inst in
      let r4 = Art_scheduler.solve ~c:4 inst in
      r4.Art_scheduler.diagnostics.Art_scheduler.h
      <= r1.Art_scheduler.diagnostics.Art_scheduler.h)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_declared_ub_matches_explicit_rows;
        prop_weighted_bound_below_schedules;
        prop_lp_bounds_exact_optimum;
        prop_lp_bound_below_fifo;
        prop_rounding_invariants;
        prop_rounding_iterations_logarithmic;
        prop_theorem1_guarantees;
        prop_greedy_ablation_valid;
        prop_theorem1_larger_c_smaller_h;
      ]
  in
  Alcotest.run "flowsched_art"
    [
      ( "lp",
        [
          Alcotest.test_case "default horizon" `Quick test_default_horizon;
          Alcotest.test_case "variable layout" `Quick test_round_lp_variables;
          Alcotest.test_case "single flow bound" `Quick test_lower_bound_single_flow;
          Alcotest.test_case "contention bound" `Quick test_lower_bound_contention;
          Alcotest.test_case "capacity-aware bound" `Quick test_lower_bound_respects_capacity;
          Alcotest.test_case "interval LP relaxes round LP" `Quick test_interval_lp_relaxes_round_lp;
          Alcotest.test_case "weighted bound: uniform weights" `Quick test_weighted_bound_uniform_weights;
          Alcotest.test_case "weighted bound: prioritizes heavy" `Quick test_weighted_bound_prioritizes;
          Alcotest.test_case "weighted bound: validation" `Quick test_weighted_bound_validation;
        ] );
      ( "iterative-rounding",
        [
          Alcotest.test_case "completes integrally" `Quick test_rounding_completes;
          Alcotest.test_case "multi-iteration regrouping" `Quick test_rounding_multi_iteration_path;
          Alcotest.test_case "cost below LP optimum" `Quick test_rounding_cost_dominated_by_lp;
          Alcotest.test_case "warm start matches cold" `Quick test_rounding_warm_matches_cold;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "validity" `Quick test_theorem1_validity;
          Alcotest.test_case "rejects non-unit demands" `Quick test_theorem1_rejects_nonunit;
          Alcotest.test_case "rejects bad c" `Quick test_theorem1_rejects_bad_c;
          Alcotest.test_case "greedy ablation" `Quick test_greedy_ablation_valid;
        ] );
      ("properties", props);
    ]
