(* Tests for the scenarios subsystem: the workload zoo (parameter
   validation, determinism, the stream-prefix property), the centralized
   kind parser, the neighboring-problem modes (endpoint capacities,
   weighted coflows), and the matrix driver's backend-identical artifact. *)

open Flowsched_switch
open Flowsched_scenarios

let spec kind = { Scenario.kind; m = 5; rate = 2.0; rounds = 8; max_demand = 3; seed = 11 }

let rejects name f =
  Alcotest.(check bool) name true (match f () with _ -> false | exception Invalid_argument _ -> true)

(* --- parameter validation at the generator boundary --- *)

let test_workload_validation () =
  let module W = Flowsched_sim.Workload in
  rejects "poisson rate 0" (fun () -> W.poisson ~m:4 ~rate:0. ~rounds:5 ~seed:1);
  rejects "poisson rate < 0" (fun () -> W.poisson ~m:4 ~rate:(-1.) ~rounds:5 ~seed:1);
  rejects "poisson rate nan" (fun () -> W.poisson ~m:4 ~rate:nan ~rounds:5 ~seed:1);
  rejects "skewed alpha 0" (fun () -> W.skewed ~m:4 ~rate:1. ~rounds:5 ~alpha:0. ~seed:1 ());
  rejects "skewed alpha < 0" (fun () ->
      W.skewed ~m:4 ~rate:1. ~rounds:5 ~alpha:(-2.) ~seed:1 ());
  rejects "hotspot fraction > 1" (fun () ->
      W.hotspot ~m:4 ~rate:1. ~rounds:5 ~fraction:1.5 ~seed:1 ());
  rejects "hotspot fraction < 0" (fun () ->
      W.hotspot ~m:4 ~rate:1. ~rounds:5 ~fraction:(-0.1) ~seed:1 ());
  rejects "demands max_demand 0" (fun () ->
      W.poisson_with_demands ~m:4 ~rate:1. ~rounds:5 ~max_demand:0 ~seed:1);
  rejects "stream rate 0" (fun () -> W.stream W.Uniform ~m:4 ~rate:0. ~seed:1);
  rejects "stream bad alpha" (fun () -> W.stream (W.Skewed 0.) ~m:4 ~rate:1. ~seed:1);
  rejects "stream bad max_demand" (fun () ->
      W.stream (W.Uniform_demands 0) ~m:4 ~rate:1. ~seed:1)

let test_zoo_validation () =
  rejects "pareto alpha 0" (fun () ->
      Zoo.pareto ~m:4 ~rate:1. ~alpha:0. ~max_demand:3 ~rounds:5 ~seed:1);
  rejects "pareto max_demand 0" (fun () ->
      Zoo.pareto ~m:4 ~rate:1. ~alpha:1.5 ~max_demand:0 ~rounds:5 ~seed:1);
  rejects "pareto rate -1" (fun () ->
      Zoo.pareto ~m:4 ~rate:(-1.) ~alpha:1.5 ~max_demand:3 ~rounds:5 ~seed:1);
  rejects "lognormal sigma 0" (fun () ->
      Zoo.lognormal ~m:4 ~rate:1. ~mu:0.5 ~sigma:0. ~max_demand:3 ~rounds:5 ~seed:1);
  rejects "bursty duty > 1" (fun () ->
      Zoo.bursty ~m:4 ~rate:1. ~burst:4. ~period:10 ~duty:1.5 ~rounds:5 ~seed:1);
  rejects "bursty period 0" (fun () ->
      Zoo.bursty ~m:4 ~rate:1. ~burst:4. ~period:0 ~duty:0.5 ~rounds:5 ~seed:1);
  rejects "bursty burst 0" (fun () ->
      Zoo.bursty ~m:4 ~rate:1. ~burst:0. ~period:10 ~duty:0.5 ~rounds:5 ~seed:1);
  rejects "diurnal amplitude < 0" (fun () ->
      Zoo.diurnal ~m:4 ~rate:1. ~period:10 ~amplitude:(-0.1) ~rounds:5 ~seed:1);
  rejects "diurnal amplitude > 1" (fun () ->
      Zoo.diurnal ~m:4 ~rate:1. ~period:10 ~amplitude:1.1 ~rounds:5 ~seed:1);
  rejects "flash mult 0" (fun () ->
      Zoo.flash_crowd ~m:4 ~rate:1. ~at:2 ~len:2 ~mult:0. ~fraction:0.5 ~rounds:5 ~seed:1);
  rejects "flash fraction > 1" (fun () ->
      Zoo.flash_crowd ~m:4 ~rate:1. ~at:2 ~len:2 ~mult:2. ~fraction:1.5 ~rounds:5 ~seed:1);
  rejects "flash negative at" (fun () ->
      Zoo.flash_crowd ~m:4 ~rate:1. ~at:(-1) ~len:2 ~mult:2. ~fraction:0.5 ~rounds:5 ~seed:1);
  rejects "bimodal hot 0" (fun () ->
      Zoo.bimodal ~m:4 ~rate:1. ~hot:0 ~weight:0.5 ~rounds:5 ~seed:1);
  rejects "bimodal hot > m" (fun () ->
      Zoo.bimodal ~m:4 ~rate:1. ~hot:5 ~weight:0.5 ~rounds:5 ~seed:1);
  rejects "bimodal weight > 1" (fun () ->
      Zoo.bimodal ~m:4 ~rate:1. ~hot:2 ~weight:1.5 ~rounds:5 ~seed:1);
  rejects "staircase t >= total" (fun () -> Zoo.staircase ~m:4 ~t:5 ~total_rounds:5);
  rejects "staircase m 1" (fun () -> Zoo.staircase ~m:1 ~t:1 ~total_rounds:3);
  rejects "crossflow m 2" (fun () -> Zoo.crossflow ~m:2)

(* --- the centralized kind parser --- *)

let all_kinds =
  [
    Scenario.Poisson;
    Scenario.Poisson_demands;
    Scenario.Uniform_total;
    Scenario.Skewed 1.3;
    Scenario.Hotspot 0.4;
    Scenario.Pareto 1.2;
    Scenario.Lognormal { mu = 0.3; sigma = 0.9 };
    Scenario.Bursty { burst = 3.0; period = 12; duty = 0.25 };
    Scenario.Diurnal { period = 30; amplitude = 0.6 };
    Scenario.Flash_crowd { at = 5; len = 6; mult = 3.0; fraction = 0.4 };
    Scenario.Bimodal { hot = 2; weight = 0.7 };
    Scenario.Staircase;
    Scenario.Crossflow;
  ]

let test_of_string_roundtrip () =
  List.iter
    (fun kind ->
      let s = Scenario.to_string kind in
      match Scenario.of_string s with
      | Ok k -> Alcotest.(check string) ("round-trip " ^ s) s (Scenario.to_string k)
      | Error msg -> Alcotest.failf "of_string %S failed: %s" s msg)
    all_kinds

let test_of_string_defaults_and_aliases () =
  let ok s = match Scenario.of_string s with Ok k -> k | Error m -> Alcotest.failf "%s" m in
  Alcotest.(check bool) "demands alias" true (ok "demands" = Scenario.Poisson_demands);
  Alcotest.(check bool) "pareto default" true (ok "pareto" = Scenario.Pareto 1.5);
  Alcotest.(check bool) "bursty partial params" true
    (ok "bursty:3" = Scenario.Bursty { burst = 3.0; period = 20; duty = 0.25 });
  Alcotest.(check bool) "unknown rejected" true
    (match Scenario.of_string "fractal" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "excess params rejected" true
    (match Scenario.of_string "poisson:2" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad number rejected" true
    (match Scenario.of_string "pareto:abc" with Error _ -> true | Ok _ -> false)

let test_mode_roundtrip () =
  List.iter
    (fun mode ->
      let s = Matrix.mode_to_string mode in
      match Matrix.mode_of_string s with
      | Ok m -> Alcotest.(check string) ("mode round-trip " ^ s) s (Matrix.mode_to_string m)
      | Error msg -> Alcotest.failf "mode_of_string %S failed: %s" s msg)
    [
      Matrix.Flows;
      Matrix.Endpoint { nodes = 2; node_cap = 3 };
      Matrix.Coflow { groups = 4; max_weight = 5 };
    ];
  Alcotest.(check bool) "bad mode rejected" true
    (match Matrix.mode_of_string "nodes" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad param rejected" true
    (match Matrix.mode_of_string "endpoint:0" with Error _ -> true | Ok _ -> false)

(* --- the sweep registry --- *)

let test_registry_resolves_zoo_kinds () =
  let sweep workload =
    {
      Flowsched_sim.Experiment.workload;
      ports = 4;
      arrival_rate = 2.0;
      horizon = 6;
      max_demand = 3;
      sweep_seed = 5;
      lp = false;
    }
  in
  let inst = Flowsched_sim.Experiment.sweep_instance (sweep "pareto:1.5") in
  Alcotest.(check bool) "pareto sweepable" true (Instance.n inst >= 0);
  let direct = Zoo.pareto ~m:4 ~rate:2.0 ~alpha:1.5 ~max_demand:3 ~rounds:6 ~seed:5 in
  Alcotest.(check string) "registry matches direct generator" (Instance.to_string direct)
    (Instance.to_string inst);
  Alcotest.(check bool) "kind known" true
    (Flowsched_sim.Experiment.sweep_kind_known "bursty:4:10:0.3");
  Alcotest.(check bool) "unknown kind unknown" false
    (Flowsched_sim.Experiment.sweep_kind_known "fractal");
  Alcotest.(check bool) "unknown kind raises" true
    (match Flowsched_sim.Experiment.sweep_instance (sweep "fractal") with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- endpoint (node) capacities --- *)

let test_endpoint_blocks () =
  let ep = Endpoint.blocks ~m:6 ~m':6 ~nodes:2 ~cap:2 in
  Alcotest.(check int) "nodes_in" 2 ep.Endpoint.nodes_in;
  Alcotest.(check int) "port 0 -> node 0" 0 ep.Endpoint.node_in.(0);
  Alcotest.(check int) "port 5 -> node 1" 1 ep.Endpoint.node_in.(5);
  rejects "more nodes than ports" (fun () -> Endpoint.blocks ~m:2 ~m':2 ~nodes:3 ~cap:1);
  rejects "cap 0" (fun () -> Endpoint.blocks ~m:4 ~m':4 ~nodes:2 ~cap:0)

let test_endpoint_feasible () =
  let ep = Endpoint.blocks ~m:4 ~m':4 ~nodes:2 ~cap:1 in
  let flow id src dst = Flow.make ~id ~src ~dst ~demand:1 ~release:0 () in
  (* Ports 0,1 share input node 0: two unit flows from them exceed cap 1. *)
  Alcotest.(check bool) "one flow fits" true (Endpoint.feasible ep [ flow 0 0 2 ]);
  Alcotest.(check bool) "same node overflows" false
    (Endpoint.feasible ep [ flow 0 0 2; flow 1 1 3 ]);
  Alcotest.(check bool) "distinct nodes fit" true
    (Endpoint.feasible ep [ flow 0 0 2; flow 1 2 0 ])

let test_fifo_endpoint_schedules_feasibly () =
  let inst = Flowsched_sim.Workload.poisson ~m:6 ~rate:3.0 ~rounds:8 ~seed:3 in
  let ep = Endpoint.blocks ~m:6 ~m':6 ~nodes:3 ~cap:1 in
  let sched = Flowsched_core.Baselines.fifo_endpoint ep inst in
  Alcotest.(check bool) "port-valid" true (Schedule.is_valid inst sched);
  Alcotest.(check bool) "node-feasible every round" true
    (Endpoint.schedule_feasible ep inst sched)

let test_engine_endpoint_validation () =
  (* An unguarded policy that packs only against port capacities must trip
     the engine's node-capacity validation on a workload dense enough to
     overflow a shared node. *)
  let inst = Flowsched_sim.Workload.poisson ~m:6 ~rate:4.0 ~rounds:8 ~seed:2 in
  let ep = Endpoint.blocks ~m:6 ~m':6 ~nodes:2 ~cap:1 in
  Alcotest.(check bool) "violation detected" true
    (match
       Flowsched_sim.Engine.run_instance ~endpoint:ep ~max_rounds:500
         Flowsched_online.Heuristics.maxcard inst
     with
    | _ -> false
    | exception Flowsched_sim.Engine.Policy_violation _ -> true
    | exception Flowsched_sim.Engine.Horizon_exceeded _ -> false)

(* --- weighted coflows --- *)

let test_wsebf_unit_weights_equals_sebf () =
  let inst = Flowsched_sim.Workload.uniform_total ~m:4 ~n:40 ~max_release:6 ~seed:21 in
  let cof = Flowsched_core.Coflow.random_grouping ~seed:22 ~groups:6 inst in
  Alcotest.(check bool) "same schedule" true
    (Schedule.assignment (Flowsched_core.Coflow.wsebf cof)
    = Schedule.assignment (Flowsched_core.Coflow.sebf cof))

let test_weighted_bound_sandwich () =
  let inst = Flowsched_sim.Workload.uniform_total ~m:4 ~n:36 ~max_release:5 ~seed:31 in
  let cof = Flowsched_core.Coflow.random_grouping ~seed:32 ~groups:5 inst in
  let weights = [| 3; 1; 4; 1; 5 |] in
  let cof = Flowsched_core.Coflow.with_weights cof weights in
  let sched = Flowsched_core.Coflow.wsebf cof in
  let bound = Flowsched_core.Coflow.weighted_bottleneck_bound cof in
  let achieved = Flowsched_core.Coflow.weighted_average_response cof sched in
  Alcotest.(check bool) "bound below achieved" true (bound <= achieved +. 1e-9);
  rejects "bad weights length" (fun () ->
      Flowsched_core.Coflow.with_weights cof [| 1; 2 |]);
  rejects "nonpositive weight" (fun () ->
      Flowsched_core.Coflow.with_weights cof [| 1; 1; 0; 1; 1 |])

(* --- matrix cells and the artifact --- *)

let policies = Flowsched_online.Heuristics.all_paper_heuristics

let small_cells =
  List.concat_map
    (fun kind ->
      List.map
        (fun mode -> { Matrix.scenario = spec (Scenario.of_string_exn kind); mode; lp = true })
        [
          Matrix.Flows;
          Matrix.Endpoint { nodes = 2; node_cap = 2 };
          Matrix.Coflow { groups = 3; max_weight = 4 };
        ])
    [ "poisson"; "pareto:1.5"; "bursty:4:10:0.3"; "staircase" ]

let test_matrix_cell_shapes () =
  List.iter
    (fun cell ->
      let r = Matrix.run_cell ~policies cell in
      Alcotest.(check bool) "has entries" true (r.Matrix.entries <> []);
      (match cell.Matrix.mode with
      | Matrix.Flows ->
          Alcotest.(check string) "lp bound kind" "lp" r.Matrix.bound_kind
      | Matrix.Endpoint _ ->
          Alcotest.(check string) "relaxed bound kind" "lp-relaxed" r.Matrix.bound_kind;
          Alcotest.(check bool) "fifo-endpoint entry present" true
            (List.exists (fun e -> e.Matrix.name = "fifo-endpoint") r.Matrix.entries)
      | Matrix.Coflow _ ->
          Alcotest.(check string) "bottleneck bound kind" "bottleneck" r.Matrix.bound_kind);
      if r.Matrix.flows > 0 && r.Matrix.error = None then begin
        Alcotest.(check bool) "avg bound finite" true (Float.is_finite r.Matrix.bound_avg);
        (* Every algorithm must stay above the mode's lower bound. *)
        List.iter
          (fun e ->
            Alcotest.(check bool)
              (Printf.sprintf "%s above bound in %s" e.Matrix.name
                 (Matrix.mode_to_string cell.Matrix.mode))
              true
              (e.Matrix.art +. 1e-9 >= r.Matrix.bound_avg))
          r.Matrix.entries
      end)
    small_cells

let test_matrix_backend_identical () =
  let render backend jobs =
    Flowsched_util.Json.to_string
      (Matrix.to_json (Matrix.run ~policies ~backend ~jobs small_cells))
  in
  let reference = render Flowsched_domains.Backend.Inline 1 in
  (* Fork before Domains: Unix.fork is illegal once domains have spawned. *)
  Alcotest.(check string) "fork jobs=3 identical" reference
    (render Flowsched_domains.Backend.Fork 3);
  Alcotest.(check string) "domains jobs=3 identical" reference
    (render Flowsched_domains.Backend.Domains 3)

(* --- properties --- *)

let streamable_kinds =
  List.filter (fun k -> k <> Scenario.Uniform_total) all_kinds

let prop_instance_deterministic =
  QCheck2.Test.make ~name:"scenario instance deterministic per seed" ~count:60
    QCheck2.Gen.(
      triple (int_bound 1_000_000)
        (int_range 0 (List.length all_kinds - 1))
        (pair (int_range 3 7) (int_range 2 10)))
    (fun (seed, ki, (m, rounds)) ->
      let s = { (spec (List.nth all_kinds ki)) with Scenario.m; rounds; seed } in
      Instance.to_string (Scenario.instance s) = Instance.to_string (Scenario.instance s))

let prop_stream_prefix_equals_batch =
  (* For every streamable kind, folding the stream over the spec's horizon
     and materializing the specs as an instance reproduces the batch
     instance byte for byte. *)
  QCheck2.Test.make ~name:"stream prefix = batch instance" ~count:80
    QCheck2.Gen.(
      triple (int_bound 1_000_000)
        (int_range 0 (List.length streamable_kinds - 1))
        (pair (int_range 3 7) (int_range 2 10)))
    (fun (seed, ki, (m, rounds)) ->
      let s = { (spec (List.nth streamable_kinds ki)) with Scenario.m; rounds; seed } in
      match Scenario.stream s with
      | Error _ -> false
      | Ok arrivals ->
          let specs = ref [] in
          for t = 0 to rounds - 1 do
            List.iter
              (fun (src, dst, d) -> specs := (src, dst, d, t) :: !specs)
              (Scenario.arrivals_next arrivals)
          done;
          let m, m' = Scenario.geometry s in
          let cap = Scenario.port_capacity s in
          let cap_in = Array.make m cap and cap_out = Array.make m' cap in
          let streamed =
            Instance.of_flows ~cap_in ~cap_out ~m ~m' (List.rev !specs)
          in
          Instance.to_string streamed = Instance.to_string (Scenario.instance s))

let prop_demands_within_caps =
  (* Capacity feasibility: every generated flow fits its ports, i.e. demand
     <= the spec's port capacity (Instance.of_flows would reject otherwise,
     but the property pins the cap contract itself). *)
  QCheck2.Test.make ~name:"zoo demands within port capacity" ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 6))
    (fun (seed, max_demand) ->
      let check kind =
        let s = { (spec kind) with Scenario.seed; max_demand } in
        let cap = Scenario.port_capacity s in
        Array.for_all
          (fun (f : Flow.t) -> f.Flow.demand >= 1 && f.Flow.demand <= cap)
          (Scenario.instance s).Instance.flows
      in
      check (Scenario.Pareto 1.3)
      && check (Scenario.Lognormal { mu = 0.8; sigma = 1.0 })
      && check Scenario.Poisson_demands)

let prop_endpoint_mode_feasible =
  (* The guarded engine run in Endpoint mode must produce node-feasible
     schedules — certified by replaying the baseline against
     Endpoint.schedule_feasible (the engine already validates its own run
     every round via ~endpoint). *)
  QCheck2.Test.make ~name:"endpoint cells schedule node-feasibly" ~count:25
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 4 8))
    (fun (seed, m) ->
      let inst = Flowsched_sim.Workload.poisson ~m ~rate:2.5 ~rounds:6 ~seed in
      let ep = Endpoint.blocks ~m ~m':m ~nodes:2 ~cap:1 in
      let sched = Flowsched_core.Baselines.fifo_endpoint ep inst in
      Schedule.is_valid inst sched && Endpoint.schedule_feasible ep inst sched)

(* --- serve integration --- *)

let test_source_of_scenario () =
  let s = spec (Scenario.Bursty { burst = 3.0; period = 10; duty = 0.3 }) in
  let src = Flowsched_serve.Source.of_scenario s ~horizon:8 in
  let inst = Scenario.instance s in
  let by_release = Array.make 8 [] in
  Array.iter
    (fun (f : Flow.t) ->
      by_release.(f.Flow.release) <-
        by_release.(f.Flow.release) @ [ (f.Flow.src, f.Flow.dst, f.Flow.demand) ])
    inst.Instance.flows;
  for slot = 0 to 7 do
    Alcotest.(check bool) "more while slots remain" true
      (Flowsched_serve.Source.more src slot);
    Alcotest.(check (list (triple int int int)))
      (Printf.sprintf "slot %d arrivals match batch" slot)
      by_release.(slot)
      (Flowsched_serve.Source.pull src slot)
  done;
  Alcotest.(check bool) "exhausted after horizon" false (Flowsched_serve.Source.more src 8);
  rejects "uniform has no stream" (fun () ->
      Flowsched_serve.Source.of_scenario (spec Scenario.Uniform_total) ~horizon:4)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_instance_deterministic;
        prop_stream_prefix_equals_batch;
        prop_demands_within_caps;
        prop_endpoint_mode_feasible;
      ]
  in
  Alcotest.run "flowsched_scenarios"
    [
      ( "validation",
        [
          Alcotest.test_case "workload boundary" `Quick test_workload_validation;
          Alcotest.test_case "zoo boundary" `Quick test_zoo_validation;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round-trip" `Quick test_of_string_roundtrip;
          Alcotest.test_case "defaults and aliases" `Quick test_of_string_defaults_and_aliases;
          Alcotest.test_case "mode round-trip" `Quick test_mode_roundtrip;
        ] );
      ( "registry",
        [ Alcotest.test_case "zoo kinds sweepable" `Quick test_registry_resolves_zoo_kinds ] );
      ( "endpoint",
        [
          Alcotest.test_case "blocks" `Quick test_endpoint_blocks;
          Alcotest.test_case "feasible" `Quick test_endpoint_feasible;
          Alcotest.test_case "fifo baseline" `Quick test_fifo_endpoint_schedules_feasibly;
          Alcotest.test_case "engine validation" `Quick test_engine_endpoint_validation;
        ] );
      ( "coflow",
        [
          Alcotest.test_case "unit weights = sebf" `Quick test_wsebf_unit_weights_equals_sebf;
          Alcotest.test_case "weighted bound" `Quick test_weighted_bound_sandwich;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "cell shapes" `Slow test_matrix_cell_shapes;
          Alcotest.test_case "backend identical" `Slow test_matrix_backend_identical;
        ] );
      ("serve", [ Alcotest.test_case "source of scenario" `Quick test_source_of_scenario ]);
      ("properties", props);
    ]
