(* Tests for flowsched_bipartite: graphs, Hopcroft-Karp, Hungarian,
   edge coloring, BvN decomposition, b-matching expansion.  Small random
   graphs are checked against exhaustive oracles. *)

open Flowsched_bipartite

(* --- oracles --- *)

(* Exhaustive maximum-matching size by branching on edges. *)
let brute_max_matching_size (g : Bgraph.t) =
  let ne = Bgraph.num_edges g in
  let used_l = Array.make g.Bgraph.nl false and used_r = Array.make g.Bgraph.nr false in
  let rec go i =
    if i = ne then 0
    else begin
      let { Bgraph.u; v } = Bgraph.edge g i in
      let skip = go (i + 1) in
      if used_l.(u) || used_r.(v) then skip
      else begin
        used_l.(u) <- true;
        used_r.(v) <- true;
        let take = 1 + go (i + 1) in
        used_l.(u) <- false;
        used_r.(v) <- false;
        max take skip
      end
    end
  in
  go 0

(* Exhaustive maximum-weight matching by branching on edges. *)
let brute_max_weight (g : Bgraph.t) w =
  let ne = Bgraph.num_edges g in
  let used_l = Array.make g.Bgraph.nl false and used_r = Array.make g.Bgraph.nr false in
  let rec go i =
    if i = ne then 0.
    else begin
      let { Bgraph.u; v } = Bgraph.edge g i in
      let skip = go (i + 1) in
      if used_l.(u) || used_r.(v) then skip
      else begin
        used_l.(u) <- true;
        used_r.(v) <- true;
        let take = w.(i) +. go (i + 1) in
        used_l.(u) <- false;
        used_r.(v) <- false;
        max take skip
      end
    end
  in
  go 0

let random_graph seed ~nl ~nr ~ne =
  let g = Flowsched_util.Prng.create seed in
  let pairs =
    Array.init ne (fun _ ->
        (Flowsched_util.Prng.int g nl, Flowsched_util.Prng.int g nr))
  in
  Bgraph.create ~nl ~nr pairs

(* --- bgraph --- *)

let test_bgraph_create_validates () =
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Bgraph.create: endpoint out of range")
    (fun () -> ignore (Bgraph.create ~nl:2 ~nr:2 [| (0, 2) |]))

let test_bgraph_degrees () =
  let g = Bgraph.create ~nl:3 ~nr:2 [| (0, 0); (0, 1); (1, 0); (0, 0) |] in
  let dl, dr = Bgraph.degrees g in
  Alcotest.(check (array int)) "left degrees" [| 3; 1; 0 |] dl;
  Alcotest.(check (array int)) "right degrees" [| 3; 1 |] dr;
  Alcotest.(check int) "max degree" 3 (Bgraph.max_degree g)

let test_bgraph_adjacency () =
  let g = Bgraph.create ~nl:2 ~nr:2 [| (0, 0); (1, 1); (0, 1) |] in
  let adj = Bgraph.adj_left g in
  Alcotest.(check (list int)) "adj of 0" [ 0; 2 ] adj.(0);
  Alcotest.(check (list int)) "adj of 1" [ 1 ] adj.(1);
  let radj = Bgraph.adj_right g in
  Alcotest.(check (list int)) "radj of 1" [ 1; 2 ] radj.(1)

let test_bgraph_is_matching () =
  let g = Bgraph.create ~nl:2 ~nr:2 [| (0, 0); (1, 1); (0, 1) |] in
  Alcotest.(check bool) "disjoint edges" true (Bgraph.is_matching g [ 0; 1 ]);
  Alcotest.(check bool) "shared left vertex" false (Bgraph.is_matching g [ 0; 2 ]);
  Alcotest.(check bool) "empty" true (Bgraph.is_matching g [])

let test_bgraph_is_b_matching () =
  let g = Bgraph.create ~nl:1 ~nr:2 [| (0, 0); (0, 1); (0, 0) |] in
  Alcotest.(check bool) "within caps" true
    (Bgraph.is_b_matching g ~cl:[| 2 |] ~cr:[| 1; 1 |] [ 0; 1 ]);
  Alcotest.(check bool) "left cap exceeded" false
    (Bgraph.is_b_matching g ~cl:[| 2 |] ~cr:[| 2; 1 |] [ 0; 1; 2 ]);
  Alcotest.(check bool) "right cap exceeded" false
    (Bgraph.is_b_matching g ~cl:[| 3 |] ~cr:[| 1; 1 |] [ 0; 2 ])

(* --- Hopcroft-Karp --- *)

let test_hk_perfect () =
  let g = Bgraph.create ~nl:3 ~nr:3 [| (0, 0); (0, 1); (1, 1); (1, 2); (2, 2); (2, 0) |] in
  let m = Matching.max_cardinality g in
  Alcotest.(check int) "perfect" 3 (List.length m);
  Alcotest.(check bool) "valid" true (Bgraph.is_matching g m)

let test_hk_needs_augmenting () =
  (* Greedy gets stuck at 1; the optimum is 2. *)
  let g = Bgraph.create ~nl:2 ~nr:2 [| (0, 0); (0, 1); (1, 0) |] in
  Alcotest.(check int) "size 2" 2 (Matching.max_cardinality_size g)

let test_hk_empty () =
  let g = Bgraph.create ~nl:3 ~nr:3 [||] in
  Alcotest.(check (list int)) "no edges" [] (Matching.max_cardinality g)

let test_hk_parallel_edges () =
  let g = Bgraph.create ~nl:1 ~nr:1 [| (0, 0); (0, 0); (0, 0) |] in
  Alcotest.(check int) "one of the parallels" 1 (Matching.max_cardinality_size g)

let prop_hk_matches_brute_force =
  QCheck2.Test.make ~name:"Hopcroft-Karp = brute force" ~count:300
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 6) (int_range 1 6) (int_range 0 12))
    (fun (seed, nl, nr, ne) ->
      let g = random_graph seed ~nl ~nr ~ne in
      let m = Matching.max_cardinality g in
      Bgraph.is_matching g m && List.length m = brute_max_matching_size g)

(* --- weighted matching --- *)

let test_hungarian_simple () =
  (* picking the heavy diagonal beats the greedy corner *)
  let g = Bgraph.create ~nl:2 ~nr:2 [| (0, 0); (0, 1); (1, 0) |] in
  let w = [| 10.; 7.; 7. |] in
  let m = Weighted_matching.max_weight g w in
  Alcotest.(check (float 1e-9)) "weight 14" 14. (Weighted_matching.weight_of w m)

let test_hungarian_prefers_unmatched_over_negative () =
  let g = Bgraph.create ~nl:1 ~nr:1 [| (0, 0) |] in
  let m = Weighted_matching.max_weight g [| -5. |] in
  Alcotest.(check (list int)) "skips negative edge" [] m

let test_hungarian_rectangular () =
  let g = Bgraph.create ~nl:1 ~nr:3 [| (0, 0); (0, 1); (0, 2) |] in
  let m = Weighted_matching.max_weight g [| 1.; 9.; 4. |] in
  Alcotest.(check (list int)) "takes the best" [ 1 ] m

let test_hungarian_parallel_edges () =
  let g = Bgraph.create ~nl:1 ~nr:1 [| (0, 0); (0, 0) |] in
  let m = Weighted_matching.max_weight g [| 2.; 5. |] in
  Alcotest.(check (list int)) "heavier parallel edge" [ 1 ] m

let prop_hungarian_matches_brute_force =
  QCheck2.Test.make ~name:"Hungarian = brute force" ~count:300
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 5) (int_range 1 5) (int_range 0 10))
    (fun (seed, nl, nr, ne) ->
      let g = random_graph seed ~nl ~nr ~ne in
      let prng = Flowsched_util.Prng.create (seed + 1) in
      let w =
        Array.init ne (fun _ -> float_of_int (Flowsched_util.Prng.int prng 21 - 4))
      in
      let m = Weighted_matching.max_weight g w in
      Bgraph.is_matching g m
      && abs_float (Weighted_matching.weight_of w m -. brute_max_weight g w) < 1e-9)

(* --- edge coloring --- *)

let test_coloring_small () =
  let g = Bgraph.create ~nl:2 ~nr:2 [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  let colors = Edge_coloring.color g in
  Alcotest.(check bool) "proper" true (Edge_coloring.is_proper g colors);
  let used = Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors in
  Alcotest.(check int) "2 colors for a 2-regular graph" 2 used

let test_coloring_star () =
  let g = Bgraph.create ~nl:1 ~nr:5 (Array.init 5 (fun v -> (0, v))) in
  let colors = Edge_coloring.color g in
  Alcotest.(check bool) "proper" true (Edge_coloring.is_proper g colors)

let test_coloring_parallel () =
  let g = Bgraph.create ~nl:1 ~nr:1 [| (0, 0); (0, 0); (0, 0) |] in
  let colors = Edge_coloring.color g in
  Alcotest.(check bool) "proper" true (Edge_coloring.is_proper g colors);
  let sorted = Array.copy colors in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "three distinct colors" [| 0; 1; 2 |] sorted

let prop_coloring_proper_and_tight =
  QCheck2.Test.make ~name:"edge coloring proper with <= max-degree colors" ~count:300
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 8) (int_range 1 8) (int_range 0 40))
    (fun (seed, nl, nr, ne) ->
      let g = random_graph seed ~nl ~nr ~ne in
      let colors = Edge_coloring.color g in
      let used = Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors in
      Edge_coloring.is_proper g colors
      && (ne = 0 || used <= Bgraph.max_degree g))

(* --- BvN --- *)

let check_partition g classes =
  let ne = Bgraph.num_edges g in
  let seen = Array.make ne 0 in
  Array.iter (fun cls -> List.iter (fun e -> seen.(e) <- seen.(e) + 1) cls) classes;
  Array.for_all (fun c -> c = 1) seen

let test_bvn_partitions () =
  let g = Bgraph.create ~nl:3 ~nr:3 [| (0, 0); (0, 1); (1, 1); (2, 2); (1, 0) |] in
  let classes = Bvn.decompose g in
  Alcotest.(check bool) "partition" true (check_partition g classes);
  Array.iter
    (fun cls -> Alcotest.(check bool) "class is matching" true (Bgraph.is_matching g cls))
    classes;
  Alcotest.(check int) "max-degree many classes" (Bgraph.max_degree g) (Array.length classes)

let test_bvn_empty () =
  let g = Bgraph.create ~nl:2 ~nr:2 [||] in
  Alcotest.(check int) "no classes" 0 (Array.length (Bvn.decompose g))

let prop_bvn_classes_are_matchings =
  QCheck2.Test.make ~name:"BvN classes partition into matchings" ~count:300
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 7) (int_range 1 7) (int_range 1 30))
    (fun (seed, nl, nr, ne) ->
      let g = random_graph seed ~nl ~nr ~ne in
      let classes = Bvn.decompose g in
      check_partition g classes
      && Array.for_all (fun cls -> Bgraph.is_matching g cls) classes
      && Array.length classes = Bgraph.max_degree g)

(* --- b-matching expansion --- *)

let test_expand_round_robin () =
  let g = Bgraph.create ~nl:1 ~nr:4 [| (0, 0); (0, 1); (0, 2); (0, 3) |] in
  let exp = Bmatching.expand g ~cl:[| 2 |] ~cr:[| 1; 1; 1; 1 |] in
  (* 4 edges over 2 copies: each copy has degree 2 *)
  let dl, _ = Bgraph.degrees exp.Bmatching.graph in
  Alcotest.(check (array int)) "balanced copies" [| 2; 2 |] dl;
  Alcotest.(check int) "max copy degree" 2
    (Bmatching.max_copy_degree g ~cl:[| 2 |] ~cr:[| 1; 1; 1; 1 |])

let test_expand_rejects_zero_capacity () =
  let g = Bgraph.create ~nl:1 ~nr:1 [| (0, 0) |] in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Bmatching.expand: edge incident to zero-capacity vertex") (fun () ->
      ignore (Bmatching.expand g ~cl:[| 0 |] ~cr:[| 1 |]))

(* --- incremental b-matching --- *)

(* From-scratch oracle by min-cut enumeration.  The maximum number of
   schedulable unit-demand flows is the max flow of source -> u (cap cl(u))
   -> v (cap = live flows on pair (u,v)) -> sink (cap cr(v)); by max-flow /
   min-cut that equals

     min over S <= L, T <= R of
       sum_{u not in S} cl(u) + sum_{u in S, v not in T} pair(u,v)
       + sum_{v in T} cr(v)

   (S and T are the source-side ports).  Enumerating all (S, T) is
   exponential but tiny at test sizes, and — unlike re-running the same
   augmenting-path machinery — shares no code path with the implementation
   under test.  Note the round-robin [Bmatching.expand] reduction is NOT a
   valid oracle here: fixing each edge's copy assignment up front can
   undercount the optimum once capacities exceed 1. *)
let scratch_cardinality ~nl ~nr ~cl ~cr live =
  let pair = Array.make_matrix nl nr 0 in
  List.iter (fun (_, src, dst) -> pair.(src).(dst) <- pair.(src).(dst) + 1) live;
  let best = ref max_int in
  for s = 0 to (1 lsl nl) - 1 do
    for t = 0 to (1 lsl nr) - 1 do
      let cut = ref 0 in
      for u = 0 to nl - 1 do
        if s land (1 lsl u) = 0 then cut := !cut + cl.(u)
        else
          for v = 0 to nr - 1 do
            if t land (1 lsl v) = 0 then cut := !cut + pair.(u).(v)
          done
      done;
      for v = 0 to nr - 1 do
        if t land (1 lsl v) <> 0 then cut := !cut + cr.(v)
      done;
      if !cut < !best then best := !cut
    done
  done;
  !best

let test_incremental_rebind_oldest_first () =
  let t = Bmatching.incremental ~nl:1 ~nr:1 ~cap_in:[| 1 |] ~cap_out:[| 1 |] in
  Bmatching.Incremental.add t ~id:0 ~src:0 ~dst:0;
  Bmatching.Incremental.add t ~id:1 ~src:0 ~dst:0;
  Bmatching.Incremental.add t ~id:2 ~src:0 ~dst:0;
  Alcotest.(check int) "cardinality" 1 (Bmatching.Incremental.cardinality t);
  Alcotest.(check (list int)) "slot 1" [ 0 ] (Bmatching.Incremental.take_matched t);
  Alcotest.(check (list int)) "slot 2" [ 1 ] (Bmatching.Incremental.take_matched t);
  Alcotest.(check (list int)) "slot 3" [ 2 ] (Bmatching.Incremental.take_matched t);
  Alcotest.(check int) "drained" 0 (Bmatching.Incremental.pending t)

let test_incremental_augments_across_pairs () =
  (* f0 = (0,0) binds on arrival; f1 = (1,0) and f2 = (0,1) then each find a
     port occupied.  The optimum is {f1, f2}, reachable only by unbinding f0
     along an augmenting path. *)
  let t = Bmatching.incremental ~nl:2 ~nr:2 ~cap_in:[| 1; 1 |] ~cap_out:[| 1; 1 |] in
  Bmatching.Incremental.add t ~id:0 ~src:0 ~dst:0;
  Bmatching.Incremental.add t ~id:1 ~src:1 ~dst:0;
  Bmatching.Incremental.add t ~id:2 ~src:0 ~dst:1;
  Alcotest.(check int) "cardinality" 2 (Bmatching.Incremental.cardinality t);
  Alcotest.(check (list int)) "matched" [ 2; 1 ] (Bmatching.Incremental.matched t)

let prop_incremental_matches_expand_on_unit_caps =
  QCheck2.Test.make ~name:"incremental = expand+HK on unit capacities" ~count:200
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 6) (int_range 1 6) (int_range 0 20))
    (fun (seed, nl, nr, nf) ->
      let prng = Flowsched_util.Prng.create (seed + 3) in
      let cl = Array.make nl 1 and cr = Array.make nr 1 in
      let t = Bmatching.incremental ~nl ~nr ~cap_in:cl ~cap_out:cr in
      let flows =
        List.init nf (fun id ->
            let src = Flowsched_util.Prng.int prng nl in
            let dst = Flowsched_util.Prng.int prng nr in
            Bmatching.Incremental.add t ~id ~src ~dst;
            (src, dst))
      in
      let expect =
        match flows with
        | [] -> 0
        | _ ->
            let g = Bgraph.create ~nl ~nr (Array.of_list flows) in
            let exp = Bmatching.expand g ~cl ~cr in
            Matching.max_cardinality_size exp.Bmatching.graph
      in
      Bmatching.Incremental.cardinality t = expect)

let prop_incremental_matches_scratch =
  QCheck2.Test.make ~name:"incremental b-matching = from-scratch after churn" ~count:150
    QCheck2.Gen.(quad (int_bound 1_000_000) (int_range 1 5) (int_range 1 5) (int_range 1 60))
    (fun (seed, nl, nr, steps) ->
      let prng = Flowsched_util.Prng.create (seed + 11) in
      let cl = Array.init nl (fun _ -> 1 + Flowsched_util.Prng.int prng 3) in
      let cr = Array.init nr (fun _ -> 1 + Flowsched_util.Prng.int prng 3) in
      let t = Bmatching.incremental ~nl ~nr ~cap_in:cl ~cap_out:cr in
      let live = Hashtbl.create 16 in
      let next_id = ref 0 in
      let ok = ref true in
      for _ = 1 to steps do
        let r = Flowsched_util.Prng.int prng 10 in
        if r < 5 || Hashtbl.length live = 0 then begin
          let src = Flowsched_util.Prng.int prng nl in
          let dst = Flowsched_util.Prng.int prng nr in
          let id = !next_id in
          incr next_id;
          Bmatching.Incremental.add t ~id ~src ~dst;
          Hashtbl.add live id (src, dst)
        end
        else if r < 8 then begin
          (* withdraw a uniformly random live flow *)
          let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) live []) in
          let id = List.nth ids (Flowsched_util.Prng.int prng (List.length ids)) in
          Bmatching.Incremental.remove t id;
          Hashtbl.remove live id
        end
        else begin
          (* slot step: the matched set must be live, duplicate-free, and
             capacity-feasible *)
          let ids = Bmatching.Incremental.take_matched t in
          let dl = Array.make nl 0 and dr = Array.make nr 0 in
          List.iter
            (fun id ->
              match Hashtbl.find_opt live id with
              | None -> ok := false
              | Some (s, d) ->
                  dl.(s) <- dl.(s) + 1;
                  dr.(d) <- dr.(d) + 1;
                  Hashtbl.remove live id)
            ids;
          Array.iteri (fun u d -> if d > cl.(u) then ok := false) dl;
          Array.iteri (fun v d -> if d > cr.(v) then ok := false) dr
        end;
        let snapshot = Hashtbl.fold (fun id (s, d) acc -> (id, s, d) :: acc) live [] in
        if Bmatching.Incremental.cardinality t <> scratch_cardinality ~nl ~nr ~cl ~cr snapshot
        then ok := false;
        if Bmatching.Incremental.pending t <> Hashtbl.length live then ok := false
      done;
      !ok)

let prop_b_matching_decomposition =
  QCheck2.Test.make ~name:"b-matching decomposition valid and tight" ~count:300
    QCheck2.Gen.(
      quad (int_bound 1_000_000) (int_range 1 6) (int_range 1 6) (int_range 1 25))
    (fun (seed, nl, nr, ne) ->
      let g = random_graph seed ~nl ~nr ~ne in
      let prng = Flowsched_util.Prng.create (seed + 7) in
      let cl = Array.init nl (fun _ -> 1 + Flowsched_util.Prng.int prng 3) in
      let cr = Array.init nr (fun _ -> 1 + Flowsched_util.Prng.int prng 3) in
      let classes = Bvn.decompose_b_matching g ~cl ~cr in
      check_partition g classes
      && Array.for_all (fun cls -> Bgraph.is_b_matching g ~cl ~cr cls) classes
      && Array.length classes <= Bmatching.max_copy_degree g ~cl ~cr)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_hk_matches_brute_force;
        prop_hungarian_matches_brute_force;
        prop_coloring_proper_and_tight;
        prop_bvn_classes_are_matchings;
        prop_b_matching_decomposition;
        prop_incremental_matches_expand_on_unit_caps;
        prop_incremental_matches_scratch;
      ]
  in
  Alcotest.run "flowsched_bipartite"
    [
      ( "bgraph",
        [
          Alcotest.test_case "create validates" `Quick test_bgraph_create_validates;
          Alcotest.test_case "degrees" `Quick test_bgraph_degrees;
          Alcotest.test_case "adjacency" `Quick test_bgraph_adjacency;
          Alcotest.test_case "is_matching" `Quick test_bgraph_is_matching;
          Alcotest.test_case "is_b_matching" `Quick test_bgraph_is_b_matching;
        ] );
      ( "hopcroft-karp",
        [
          Alcotest.test_case "perfect matching" `Quick test_hk_perfect;
          Alcotest.test_case "augmenting path needed" `Quick test_hk_needs_augmenting;
          Alcotest.test_case "empty graph" `Quick test_hk_empty;
          Alcotest.test_case "parallel edges" `Quick test_hk_parallel_edges;
        ] );
      ( "hungarian",
        [
          Alcotest.test_case "simple" `Quick test_hungarian_simple;
          Alcotest.test_case "negative edge skipped" `Quick test_hungarian_prefers_unmatched_over_negative;
          Alcotest.test_case "rectangular" `Quick test_hungarian_rectangular;
          Alcotest.test_case "parallel edges" `Quick test_hungarian_parallel_edges;
        ] );
      ( "edge-coloring",
        [
          Alcotest.test_case "2-regular" `Quick test_coloring_small;
          Alcotest.test_case "star" `Quick test_coloring_star;
          Alcotest.test_case "parallel edges" `Quick test_coloring_parallel;
        ] );
      ( "bvn",
        [
          Alcotest.test_case "partitions into matchings" `Quick test_bvn_partitions;
          Alcotest.test_case "empty" `Quick test_bvn_empty;
        ] );
      ( "b-matching",
        [
          Alcotest.test_case "round robin expansion" `Quick test_expand_round_robin;
          Alcotest.test_case "rejects zero capacity" `Quick test_expand_rejects_zero_capacity;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "rebinds oldest first" `Quick test_incremental_rebind_oldest_first;
          Alcotest.test_case "augments across pairs" `Quick test_incremental_augments_across_pairs;
        ] );
      ("properties", props);
    ]
