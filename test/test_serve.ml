(* Tests for the scheduler service: batch-engine parity on a 1e5-slot
   trace, byte-stability of the all-integer outcome, backpressure, and the
   behavioural contract of both scheduling cores. *)

open Flowsched_switch
open Flowsched_serve
module Engine = Flowsched_sim.Engine
module Workload = Flowsched_sim.Workload
module Heuristics = Flowsched_online.Heuristics

let stream_source ~m ~rate ~slots ~seed =
  Source.of_stream (Workload.stream Workload.Uniform ~m ~rate ~seed) ~horizon:slots

(* The headline satellite: a 1e5-slot bounded-memory serve run must
   reproduce the batch engine's aggregate statistics on the same trace.
   Policy-mode serve mirrors Engine.drive (pending order, release = slot of
   admission, makespan and idle accounting), and Source.of_instance replays
   the instance's flows at their release slots, so every streamed statistic
   must equal its batch counterpart exactly. *)
let test_serve_matches_engine () =
  let inst = Workload.poisson ~m:4 ~rate:2.0 ~rounds:100_000 ~seed:3 in
  let r = Engine.run_instance ~max_rounds:300_000 Heuristics.maxcard inst in
  let cfg = Server.config ~m:4 ~m':4 () in
  let o = Server.run cfg (Server.Policy Heuristics.maxcard) (Source.of_instance inst) in
  Alcotest.(check int) "arrived" (Instance.n inst) o.Server.arrived;
  Alcotest.(check int) "completed" (Instance.n inst) o.Server.completed;
  Alcotest.(check int) "sum response"
    (Array.fold_left ( + ) 0 r.Engine.responses)
    o.Server.sum_response;
  Alcotest.(check int) "max response" (Engine.max_response r) o.Server.max_response;
  Alcotest.(check int) "makespan" r.Engine.makespan o.Server.makespan;
  Alcotest.(check int) "idle slots" r.Engine.rounds_idle o.Server.idle_slots;
  Alcotest.(check int) "nothing left" 0 (o.Server.final_pending + o.Server.final_buffered);
  Alcotest.(check bool) "1e5 slots sustained" true (o.Server.slots >= 100_000)

(* The outcome is all-integer, so a fixed seed must give byte-identical
   results even though status snapshots and metrics carry wall-clock time. *)
let test_byte_stable () =
  let run () =
    let cfg = Server.config ~m:6 ~m':6 () in
    Server.run cfg Server.Incremental (stream_source ~m:6 ~rate:4.0 ~slots:5_000 ~seed:9)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "outcomes identical" true (a = b);
  Alcotest.(check int) "drained" 0 a.Server.final_pending;
  Alcotest.(check bool) "completed everything" true
    (a.Server.completed = a.Server.arrived && a.Server.arrived > 0)

(* Backpressure: a tiny buffer and pending cap stall the source, but every
   generated flow is still eventually admitted and completed — the stream
   only advances when the server pulls, so nothing is dropped. *)
let test_backpressure_lossless () =
  let constrained =
    let cfg = Server.config ~m:4 ~m':4 ~queue_cap:2 ~buffer_cap:1 () in
    Server.run cfg Server.Incremental (stream_source ~m:4 ~rate:3.5 ~slots:2_000 ~seed:17)
  in
  let unconstrained =
    let cfg = Server.config ~m:4 ~m':4 () in
    Server.run cfg Server.Incremental (stream_source ~m:4 ~rate:3.5 ~slots:2_000 ~seed:17)
  in
  Alcotest.(check bool) "source stalled" true (constrained.Server.stalled_slots > 0);
  Alcotest.(check int) "same flows arrive" unconstrained.Server.arrived
    constrained.Server.arrived;
  Alcotest.(check int) "all complete" constrained.Server.arrived constrained.Server.completed;
  Alcotest.(check bool) "queue cap respected" true (constrained.Server.peak_pending <= 2);
  Alcotest.(check int) "drained" 0
    (constrained.Server.final_pending + constrained.Server.final_buffered)

(* Both cores see the same seeded arrival stream and must drain it fully;
   their schedules may legitimately differ, their throughput may not. *)
let test_cores_agree_on_throughput () =
  let run core =
    let cfg = Server.config ~m:5 ~m':5 () in
    Server.run cfg core (stream_source ~m:5 ~rate:3.0 ~slots:3_000 ~seed:23)
  in
  let inc = run Server.Incremental in
  let pol = run (Server.Policy Heuristics.maxcard) in
  Alcotest.(check int) "same arrivals" pol.Server.arrived inc.Server.arrived;
  Alcotest.(check int) "incremental completes all" inc.Server.arrived inc.Server.completed;
  Alcotest.(check int) "policy completes all" pol.Server.arrived pol.Server.completed

(* max_slots is a hard stop: an overloaded run is cut at the cap and the
   leftovers are reported instead of silently discarded. *)
let test_max_slots_stops () =
  let cfg = Server.config ~m:4 ~m':4 ~max_slots:50 () in
  let o =
    Server.run cfg Server.Incremental (stream_source ~m:4 ~rate:6.0 ~slots:1_000 ~seed:5)
  in
  Alcotest.(check int) "stopped at cap" 50 o.Server.slots;
  Alcotest.(check bool) "leftovers reported" true
    (o.Server.final_pending + o.Server.final_buffered > 0)

(* Status snapshots fire every status_every slots with consistent counts. *)
let test_status_snapshots () =
  let statuses = ref [] in
  let cfg = Server.config ~m:4 ~m':4 ~status_every:25 () in
  let o =
    Server.run
      ~on_status:(fun s -> statuses := s :: !statuses)
      cfg Server.Incremental
      (stream_source ~m:4 ~rate:2.0 ~slots:200 ~seed:1)
  in
  let statuses = List.rev !statuses in
  Alcotest.(check bool) "snapshots emitted" true (List.length statuses >= 8);
  List.iter
    (fun (s : Server.status) ->
      Alcotest.(check int) "slot on the grid" 0 ((s.Server.slot + 1) mod 25);
      Alcotest.(check bool) "counts consistent" true (s.Server.completed <= s.Server.arrived))
    statuses;
  Alcotest.(check bool) "completed everything" true (o.Server.completed = o.Server.arrived)

(* The stop flag (the Signals interrupt path) closes the source, drains
   what the server already holds, and marks the outcome interrupted. *)
let test_stop_flag_drains () =
  let stop = ref false in
  let snapshots = ref 0 in
  let cfg = Server.config ~m:4 ~m':4 ~status_every:10 () in
  let o =
    Server.run
      ~on_status:(fun _ ->
        incr snapshots;
        if !snapshots = 3 then stop := true)
      ~stop cfg Server.Incremental
      (stream_source ~m:4 ~rate:2.0 ~slots:100_000 ~seed:2)
  in
  Alcotest.(check bool) "interrupted" true o.Server.interrupted;
  Alcotest.(check bool) "stopped early" true (o.Server.slots < 100_000);
  Alcotest.(check int) "pending drained" 0 o.Server.final_pending;
  Alcotest.(check int) "buffer drained" 0 o.Server.final_buffered

(* The incremental core is unit-demand only and must say so loudly. *)
let test_incremental_rejects_demands () =
  let cfg =
    Server.config ~cap_in:(Array.make 2 2) ~cap_out:(Array.make 2 2) ~m:2 ~m':2 ()
  in
  let src = Source.make ~more:(fun s -> s = 0) ~pull:(fun _ -> [ (0, 1, 2) ]) in
  Alcotest.check_raises "unit demands only"
    (Invalid_argument "Server.run: the Incremental core requires unit demands") (fun () ->
      ignore (Server.run cfg Server.Incremental src))

let () =
  Alcotest.run "serve"
    [
      ( "engine-parity",
        [
          Alcotest.test_case "1e5-slot serve = batch replay" `Slow test_serve_matches_engine;
        ] );
      ( "server",
        [
          Alcotest.test_case "byte-stable outcome" `Quick test_byte_stable;
          Alcotest.test_case "backpressure lossless" `Quick test_backpressure_lossless;
          Alcotest.test_case "cores agree on throughput" `Quick
            test_cores_agree_on_throughput;
          Alcotest.test_case "max_slots hard stop" `Quick test_max_slots_stops;
          Alcotest.test_case "status snapshots" `Quick test_status_snapshots;
          Alcotest.test_case "stop flag drains" `Quick test_stop_flag_drains;
          Alcotest.test_case "incremental rejects demands" `Quick
            test_incremental_rejects_demands;
        ] );
    ]
