End-to-end CLI checks.  Everything is seeded, so outputs are exact.

Generate a small uniform instance:

  $ flowsched generate uniform -m 3 -n 8 --max-release 3 --seed 11 > inst.txt
  $ cat inst.txt
  switch 3 3
  cap_in 1 1 1
  cap_out 1 1 1
  flow 1 0 1 3
  flow 2 0 1 0
  flow 2 0 1 3
  flow 0 0 1 3
  flow 1 1 1 1
  flow 1 2 1 1
  flow 0 1 1 1
  flow 0 0 1 0

LP lower bounds on both objectives:

  $ flowsched lp-bound inst.txt
  flows:                     8
  LP (1)-(4) total response: 9.000
  LP (1)-(4) avg response:   1.125
  LP (19)-(21) min rho:      3

The Theorem 3 solver achieves the fractional optimum with +1 capacity:

  $ flowsched solve-mrt inst.txt --timeline
  FS-MRT (Theorem 3), capacities +1
  flows:            8
  makespan:         6
  total response:   13
  average response: 1.625
  max response:     3
  fractional rho:   3
  port overflow:    0 (bound 1)
  valid (augmented):true
  timeline (capacities +2dmax-1):
            0  1  2  3  4  5
  in    0 |   1  1  .  1  .  .
  in    1 |   .  1  1  .  .  1
  in    2 |   .  1  .  .  1  .
  out   0 |   1  1  .  1  1  1
  out   1 |   .  1  1  .  .  .
  out   2 |   .  1  .  .  .  .

Its max response matches the exact brute-force optimum:

  $ flowsched exact inst.txt
  optimal total response: 13 (avg 1.625)
    witness makespan: 6
  optimal max response:   3

The Theorem 1 pipeline produces a valid schedule under doubled capacities:

  $ flowsched solve-art inst.txt
  FS-ART approximation (Theorem 1), capacity blow-up 2x
  flows:            8
  makespan:         6
  total response:   17
  average response: 2.125
  max response:     3
  LP lower bound:   5.000
  rounding iters:   1
  backlog:          1
  block length h:   1
  valid (1+c caps): true

Online simulation with the MinRTime heuristic:

  $ flowsched simulate inst.txt --policy minrtime
  policy:           MinRTime
  flows:            8
  makespan:         6
  total response:   14
  average response: 1.750
  max response:     3

Unknown policies are rejected:

  $ flowsched simulate inst.txt --policy turbo
  error: unknown policy "turbo" (maxcard|minrtime|maxweight|fifo|random)
  [1]

Parse errors point at the offending line:

  $ printf 'switch 1 1\nflow 0 0\n' | flowsched lp-bound -
  error: cannot parse -: line 2: bad flow line
  [1]

The Theorem 2 reduction round-trips on a random RTT instance:

  $ flowsched rtt --teachers 2 --classes 3 --seed 2
  Restricted Timetable instance (seed 2):
    teacher 0: hours {1,2,3}, classes {0,1,2}
    teacher 1: hours {1,3}, classes {0,1}
  satisfiable: true
  reduced FS-MRT instance: 18 flows on a 14-in/4-out switch, target rho = 3
  exact solver: schedulable with max response 3
  extracted timetable valid: true
  equivalence holds: true
