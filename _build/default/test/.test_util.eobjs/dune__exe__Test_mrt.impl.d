test/test_mrt.ml: Alcotest Array Exact Flow Flowsched_core Flowsched_switch Flowsched_util Instance List Mrt_lp Mrt_rounding Mrt_scheduler QCheck2 QCheck_alcotest Schedule
