test/test_hardness.ml: Alcotest Array Exact Flowsched_core Flowsched_switch Flowsched_util Hardness Instance List Mrt_scheduler QCheck2 QCheck_alcotest Schedule
