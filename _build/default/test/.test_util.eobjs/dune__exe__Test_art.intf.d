test/test_art.mli:
