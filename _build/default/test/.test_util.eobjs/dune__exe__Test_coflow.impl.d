test/test_coflow.ml: Alcotest Array Coflow Flowsched_core Flowsched_sim Flowsched_switch Flowsched_util Instance List QCheck2 QCheck_alcotest Schedule String
