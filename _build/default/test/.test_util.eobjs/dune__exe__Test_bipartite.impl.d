test/test_bipartite.ml: Alcotest Array Bgraph Bmatching Bvn Edge_coloring Flowsched_bipartite Flowsched_util List Matching QCheck2 QCheck_alcotest Weighted_matching
