test/test_util.ml: Alcotest Array Float Flowsched_util Int64 List Prng QCheck2 QCheck_alcotest Sampling Stats String Table
