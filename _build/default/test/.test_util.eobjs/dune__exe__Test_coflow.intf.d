test/test_coflow.mli:
