test/test_lp.ml: Alcotest Array Flowsched_lp Flowsched_util List Lp_io Model Printf QCheck2 QCheck_alcotest Simplex
