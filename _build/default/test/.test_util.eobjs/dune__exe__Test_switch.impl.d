test/test_switch.ml: Alcotest Array Flow Flowsched_switch Flowsched_util Instance List QCheck2 QCheck_alcotest Schedule String
