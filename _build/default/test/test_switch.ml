(* Tests for flowsched_switch: flows, instances, serialization, schedules,
   metrics, backlog measurements. *)

open Flowsched_switch

let mk_inst ?cap_in ?cap_out ~m ~m' specs = Instance.of_flows ?cap_in ?cap_out ~m ~m' specs

(* --- flow --- *)

let test_flow_defaults () =
  let f = Flow.make ~id:0 ~src:1 ~dst:2 () in
  Alcotest.(check int) "demand" 1 f.Flow.demand;
  Alcotest.(check int) "release" 0 f.Flow.release

let test_flow_compare () =
  let a = Flow.make ~id:3 ~src:0 ~dst:0 ~release:1 () in
  let b = Flow.make ~id:1 ~src:0 ~dst:0 ~release:2 () in
  let c = Flow.make ~id:2 ~src:0 ~dst:0 ~release:1 () in
  Alcotest.(check bool) "release order" true (Flow.compare a b < 0);
  Alcotest.(check bool) "id breaks ties" true (Flow.compare c a < 0)

(* --- instance --- *)

let test_instance_create () =
  let inst = mk_inst ~m:2 ~m':3 [ (0, 0, 1, 0); (1, 2, 1, 4) ] in
  Alcotest.(check int) "n" 2 (Instance.n inst);
  Alcotest.(check int) "dmax" 1 (Instance.dmax inst);
  Alcotest.(check int) "last release" 4 (Instance.last_release inst);
  Alcotest.(check int) "total demand" 2 (Instance.total_demand inst);
  Alcotest.(check bool) "horizon big enough" true
    (Instance.horizon inst > Instance.last_release inst + Instance.n inst - 1)

let test_instance_validation () =
  let raises msg f = Alcotest.check_raises "invalid" (Invalid_argument msg) f in
  raises "Instance: src out of range" (fun () -> ignore (mk_inst ~m:1 ~m':1 [ (1, 0, 1, 0) ]));
  raises "Instance: dst out of range" (fun () -> ignore (mk_inst ~m:1 ~m':1 [ (0, 5, 1, 0) ]));
  raises "Instance: demand must be >= 1" (fun () -> ignore (mk_inst ~m:1 ~m':1 [ (0, 0, 0, 0) ]));
  raises "Instance: release must be >= 0" (fun () -> ignore (mk_inst ~m:1 ~m':1 [ (0, 0, 1, -1) ]));
  raises "Instance: demand exceeds kappa (min port capacity)" (fun () ->
      ignore (mk_inst ~cap_in:[| 1 |] ~cap_out:[| 5 |] ~m:1 ~m':1 [ (0, 0, 3, 0) ]));
  raises "Instance: capacities must be positive" (fun () ->
      ignore (mk_inst ~cap_in:[| 0 |] ~m:1 ~m':1 []))

let test_instance_kappa_and_scaling () =
  let inst = mk_inst ~cap_in:[| 2; 4 |] ~cap_out:[| 3 |] ~m:2 ~m':1 [ (1, 0, 2, 0) ] in
  Alcotest.(check int) "kappa" 3 (Instance.kappa inst inst.Instance.flows.(0));
  let aug = Instance.scale_capacities inst ~mult:2 ~add:1 in
  Alcotest.(check (array int)) "cap_in scaled" [| 5; 9 |] aug.Instance.cap_in;
  Alcotest.(check (array int)) "cap_out scaled" [| 7 |] aug.Instance.cap_out

let test_instance_roundtrip () =
  let inst =
    mk_inst ~cap_in:[| 2; 1 |] ~cap_out:[| 1; 3 |] ~m:2 ~m':2
      [ (0, 1, 2, 0); (1, 0, 1, 3); (0, 0, 1, 1) ]
  in
  match Instance.of_string (Instance.to_string inst) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok inst' ->
      Alcotest.(check int) "m" inst.Instance.m inst'.Instance.m;
      Alcotest.(check (array int)) "cap_in" inst.Instance.cap_in inst'.Instance.cap_in;
      Alcotest.(check int) "flows" (Instance.n inst) (Instance.n inst');
      Alcotest.(check bool) "flow data" true
        (Array.for_all2
           (fun (a : Flow.t) (b : Flow.t) ->
             a.Flow.src = b.Flow.src && a.Flow.dst = b.Flow.dst
             && a.Flow.demand = b.Flow.demand && a.Flow.release = b.Flow.release)
           inst.Instance.flows inst'.Instance.flows)

let test_instance_parse_errors () =
  (match Instance.of_string "flow 0 0 1 0\n" with
  | Error "missing switch line" -> ()
  | _ -> Alcotest.fail "expected missing switch error");
  (match Instance.of_string "switch 1 1\nflow 0 0\n" with
  | Error msg ->
      Alcotest.(check bool) "mentions line" true
        (String.length msg > 0 && String.sub msg 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected parse error");
  match Instance.of_string "switch 1 1\n# comment\n\nflow 0 0 1 0\n" with
  | Ok inst -> Alcotest.(check int) "comments ignored" 1 (Instance.n inst)
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* --- schedule --- *)

let simple_inst () =
  (* 2x2 unit switch, three unit flows *)
  mk_inst ~m:2 ~m':2 [ (0, 0, 1, 0); (1, 1, 1, 0); (0, 1, 1, 1) ]

let test_schedule_valid () =
  let inst = simple_inst () in
  let s = Schedule.make [| 0; 0; 1 |] in
  Alcotest.(check bool) "valid" true (Schedule.is_valid inst s);
  Alcotest.(check int) "makespan" 2 (Schedule.makespan s);
  Alcotest.(check (array int)) "responses" [| 1; 1; 1 |] (Schedule.response_times inst s);
  Alcotest.(check int) "total" 3 (Schedule.total_response inst s);
  Alcotest.(check (float 1e-9)) "avg" 1. (Schedule.average_response inst s);
  Alcotest.(check int) "max" 1 (Schedule.max_response inst s)

let test_schedule_violations () =
  let inst = simple_inst () in
  (* flows 0 and 2 share input port 0 *)
  let overloaded = Schedule.make [| 1; 0; 1 |] in
  (match Schedule.validate inst overloaded with
  | Error msg ->
      Alcotest.(check bool) "mentions overload" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected overload");
  (* flow 2 released at 1 cannot run at 0 *)
  let early = Schedule.make [| 0; 0; 0 |] in
  (match Schedule.validate inst early with
  | Error msg ->
      Alcotest.(check bool) "mentions release" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected release violation");
  let partial = Schedule.unassigned 3 in
  match Schedule.validate inst partial with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected unassigned error"

let test_schedule_builder () =
  let s = Schedule.unassigned 2 in
  Alcotest.(check bool) "incomplete" false (Schedule.is_complete s);
  Schedule.assign s 0 3;
  Schedule.assign s 1 1;
  Alcotest.(check bool) "complete" true (Schedule.is_complete s);
  Alcotest.(check int) "round of 0" 3 (Schedule.round_of s 0);
  Alcotest.(check int) "makespan" 4 (Schedule.makespan s)

let test_schedule_overflow () =
  let inst = simple_inst () in
  let s = Schedule.make [| 1; 1; 1 |] in
  (* port 0-in carries flows 0 and 2 at round 1: load 2 vs cap 1 *)
  Alcotest.(check int) "overflow 1" 1 (Schedule.port_overflow inst s);
  let ok = Schedule.make [| 0; 0; 1 |] in
  Alcotest.(check int) "no overflow" 0 (Schedule.port_overflow inst ok)

let test_interval_excess () =
  (* Single port pair; 3 unit flows all at round 0 on a unit switch:
     interval [0,0] has load 3, excess 2. *)
  let inst = mk_inst ~m:1 ~m':1 [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0) ] in
  let s = Schedule.make [| 0; 0; 0 |] in
  Alcotest.(check int) "excess" 2 (Schedule.max_interval_excess inst s);
  (* Spread out: rounds 0,1,2 -> each round exactly at capacity, excess 0. *)
  let spread = Schedule.make [| 0; 1; 2 |] in
  Alcotest.(check int) "no excess" 0 (Schedule.max_interval_excess inst spread);
  (* Two at round 0, one at round 2: the interval [0,0] has excess 1, and
     [0,2] has load 3 - 3 = 0; Kadane must find 1. *)
  let mixed = Schedule.make [| 0; 0; 2 |] in
  Alcotest.(check int) "interval excess found" 1 (Schedule.max_interval_excess inst mixed)

let test_flows_per_round () =
  let inst = simple_inst () in
  let s = Schedule.make [| 0; 0; 1 |] in
  let rounds = Schedule.flows_per_round inst s in
  Alcotest.(check (list int)) "round 0" [ 0; 1 ] rounds.(0);
  Alcotest.(check (list int)) "round 1" [ 2 ] rounds.(1)

(* --- properties --- *)

let gen_instance_and_schedule =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* m = int_range 1 5 in
    let* n = int_range 1 12 in
    return (seed, m, n))

let random_instance seed m n =
  let g = Flowsched_util.Prng.create seed in
  let specs =
    List.init n (fun _ ->
        ( Flowsched_util.Prng.int g m,
          Flowsched_util.Prng.int g m,
          1,
          Flowsched_util.Prng.int g 5 ))
  in
  mk_inst ~m ~m':m specs

let prop_serial_schedule_valid =
  QCheck2.Test.make ~name:"serial schedule is always valid" ~count:300 gen_instance_and_schedule
    (fun (seed, m, n) ->
      let inst = random_instance seed m n in
      (* schedule flow i at round last_release + i: serial, trivially feasible *)
      let base = Instance.last_release inst in
      let s = Schedule.make (Array.init n (fun i -> base + i)) in
      Schedule.is_valid inst s && Schedule.makespan s <= Instance.horizon inst)

let prop_roundtrip_serialization =
  QCheck2.Test.make ~name:"instance text round-trip" ~count:200 gen_instance_and_schedule
    (fun (seed, m, n) ->
      let inst = random_instance seed m n in
      match Instance.of_string (Instance.to_string inst) with
      | Error _ -> false
      | Ok inst' ->
          Instance.n inst = Instance.n inst'
          && Array.for_all2
               (fun (a : Flow.t) (b : Flow.t) ->
                 a.Flow.src = b.Flow.src && a.Flow.dst = b.Flow.dst
                 && a.Flow.demand = b.Flow.demand && a.Flow.release = b.Flow.release)
               inst.Instance.flows inst'.Instance.flows)

let prop_total_response_consistent =
  QCheck2.Test.make ~name:"total = sum of responses = n * avg" ~count:200
    gen_instance_and_schedule (fun (seed, m, n) ->
      let inst = random_instance seed m n in
      let base = Instance.last_release inst in
      let s = Schedule.make (Array.init n (fun i -> base + i)) in
      let total = Schedule.total_response inst s in
      let rts = Schedule.response_times inst s in
      total = Array.fold_left ( + ) 0 rts
      && abs_float (Schedule.average_response inst s -. (float_of_int total /. float_of_int n))
         < 1e-9
      && Array.for_all (fun rt -> rt >= 1) rts)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_serial_schedule_valid; prop_roundtrip_serialization; prop_total_response_consistent ]
  in
  Alcotest.run "flowsched_switch"
    [
      ( "flow",
        [
          Alcotest.test_case "defaults" `Quick test_flow_defaults;
          Alcotest.test_case "compare" `Quick test_flow_compare;
        ] );
      ( "instance",
        [
          Alcotest.test_case "create" `Quick test_instance_create;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "kappa and scaling" `Quick test_instance_kappa_and_scaling;
          Alcotest.test_case "text round-trip" `Quick test_instance_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_instance_parse_errors;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "valid schedule + metrics" `Quick test_schedule_valid;
          Alcotest.test_case "violations detected" `Quick test_schedule_violations;
          Alcotest.test_case "builder" `Quick test_schedule_builder;
          Alcotest.test_case "port overflow" `Quick test_schedule_overflow;
          Alcotest.test_case "interval excess (Kadane)" `Quick test_interval_excess;
          Alcotest.test_case "flows per round" `Quick test_flows_per_round;
        ] );
      ("properties", props);
    ]
