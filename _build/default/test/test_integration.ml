(* Cross-stack integration tests: the extension modules (factor-augmented
   ART, the Section 6 open-problem study, skewed workloads, LP export) and
   end-to-end consistency between the LP bounds, offline algorithms, and
   online simulation. *)

open Flowsched_switch
open Flowsched_core
open Flowsched_online
open Flowsched_sim

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* --- factor-augmented Theorem 1 corollary --- *)

let test_factor_augmented_unit () =
  let inst = Workload.uniform_total ~m:4 ~n:24 ~max_release:5 ~seed:3 in
  let res = Art_scheduler.solve_factor_augmented inst in
  Alcotest.(check bool) "valid under factor capacities" true
    (Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule);
  Alcotest.(check bool) "factor >= 1" true (res.Art_scheduler.factor >= 1);
  Alcotest.(check bool) "rounding cost below LP" true
    (res.Art_scheduler.rounding.Iterative_rounding.assignment_cost
    <= res.Art_scheduler.lp_total +. 1e-5)

let test_factor_augmented_general_demands () =
  (* unlike Theorem 1's matching conversion, the factor corollary accepts
     arbitrary demands *)
  let inst =
    Instance.of_flows ~cap_in:[| 3; 3 |] ~cap_out:[| 3; 3 |] ~m:2 ~m':2
      [ (0, 0, 3, 0); (0, 1, 2, 0); (1, 0, 1, 0); (1, 1, 3, 1); (0, 0, 2, 1) ]
  in
  let res = Art_scheduler.solve_factor_augmented inst in
  Alcotest.(check bool) "valid" true
    (Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule)

let prop_factor_bounded_logarithmically =
  QCheck2.Test.make ~name:"factor augmentation stays O(log n)-sized" ~count:25
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 4 40))
    (fun (seed, n) ->
      let inst = Workload.uniform_total ~m:4 ~n ~max_release:6 ~seed in
      let res = Art_scheduler.solve_factor_augmented inst in
      let iters = res.Art_scheduler.rounding.Iterative_rounding.iterations in
      (* Lemma 3.7 implies a per-round overflow of at most 4 + 10*iters *)
      Schedule.is_valid res.Art_scheduler.augmented res.Art_scheduler.schedule
      && res.Art_scheduler.factor <= 5 + (10 * iters))

(* --- open problem (Section 6) --- *)

let test_open_problem_generator_slack () =
  for seed = 0 to 9 do
    let inst = Open_problem.generate ~seed ~m:5 ~rounds:6 () in
    Alcotest.(check bool) "slack <= 1" true (Open_problem.interval_slack inst <= 1)
  done

let test_open_problem_slack_measure () =
  (* plain serial releases: slack 0 *)
  let serial = Instance.of_flows ~m:2 ~m':2 [ (0, 0, 1, 0); (0, 1, 1, 1); (1, 0, 1, 2) ] in
  Alcotest.(check int) "serial slack" 0 (Open_problem.interval_slack serial);
  (* two same-port releases in one round: slack 1 *)
  let bunched = Instance.of_flows ~m:2 ~m':2 [ (0, 0, 1, 0); (0, 1, 1, 0) ] in
  Alcotest.(check int) "bunched slack" 1 (Open_problem.interval_slack bunched);
  (* three: slack 2 *)
  let heavy = Instance.of_flows ~m:3 ~m':3 [ (0, 0, 1, 0); (0, 1, 1, 0); (0, 2, 1, 0) ] in
  Alcotest.(check int) "heavy slack" 2 (Open_problem.interval_slack heavy)

let test_open_problem_study () =
  let s = Open_problem.study ~seed:7 ~m:4 ~rounds:5 ~trials:5 in
  Alcotest.(check int) "trial count" 5 s.Open_problem.trials;
  Alcotest.(check bool) "slack within class" true (s.Open_problem.worst_slack <= 1);
  Alcotest.(check bool) "fractional <= heuristic" true
    (s.Open_problem.worst_fractional_rho <= s.Open_problem.worst_heuristic);
  (* the empirical question: constant response; sanity-check it is small *)
  Alcotest.(check bool) "heuristic response is a small constant" true
    (s.Open_problem.worst_heuristic <= 8)

(* --- LP export --- *)

let test_lp_format_output () =
  let m = Flowsched_lp.Model.create () in
  let x = Flowsched_lp.Model.add_var ~name:"x[0]" ~obj:2. m in
  let y = Flowsched_lp.Model.add_var ~name:"y" m in
  ignore (Flowsched_lp.Model.add_constraint ~name:"cap 1" m [ (x, 1.); (y, 3.) ] Flowsched_lp.Model.Le 5.);
  ignore (Flowsched_lp.Model.add_constraint m [ (x, 1.) ] Flowsched_lp.Model.Ge 1.);
  let text = Flowsched_lp.Lp_io.to_lp_format m in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains text needle))
    [ "Minimize"; "Subject To"; "Bounds"; "End"; "x_0_"; "cap_1:"; "<= 5"; ">= 1"; "3 y" ];
  Alcotest.(check bool) "no raw brackets" false (contains text "x[0]")

let test_lp_solution_summary () =
  let m = Flowsched_lp.Model.create () in
  let x = Flowsched_lp.Model.add_var ~name:"x" ~obj:1. m in
  ignore (Flowsched_lp.Model.add_constraint ~name:"demand" m [ (x, 1.) ] Flowsched_lp.Model.Ge 2.);
  let res = Flowsched_lp.Simplex.solve m in
  let text = Flowsched_lp.Lp_io.solution_summary m res in
  Alcotest.(check bool) "status line" true (contains text "optimal");
  Alcotest.(check bool) "nonzero var" true (contains text "x = 2");
  Alcotest.(check bool) "binding row" true (contains text "demand")

let test_lp_file_roundtrip () =
  let m = Flowsched_lp.Model.create () in
  let x = Flowsched_lp.Model.add_var ~name:"x" ~obj:1. m in
  ignore (Flowsched_lp.Model.add_constraint m [ (x, 1.) ] Flowsched_lp.Model.Le 3.);
  let path = Filename.temp_file "flowsched" ".lp" in
  Flowsched_lp.Lp_io.write_file m path;
  let ic = open_in path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file contents" (Flowsched_lp.Lp_io.to_lp_format m) data

(* --- skewed / hotspot workloads --- *)

let test_skewed_workload () =
  let inst = Workload.skewed ~m:6 ~rate:4.0 ~rounds:10 ~alpha:1.2 ~seed:5 () in
  Alcotest.(check bool) "non-trivial" true (Instance.n inst > 0);
  (* port 0 must be strictly more popular than port m-1 under Zipf *)
  let count p =
    Array.fold_left
      (fun acc (f : Flow.t) -> if f.Flow.src = p then acc + 1 else acc)
      0 inst.Instance.flows
  in
  Alcotest.(check bool) "head heavier than tail" true (count 0 > count 5)

let test_hotspot_workload () =
  let inst = Workload.hotspot ~m:6 ~rate:5.0 ~rounds:20 ~fraction:0.5 ~seed:6 () in
  let to_zero =
    Array.fold_left
      (fun acc (f : Flow.t) -> if f.Flow.dst = 0 then acc + 1 else acc)
      0 inst.Instance.flows
  in
  let n = Instance.n inst in
  Alcotest.(check bool) "hotspot concentrates" true
    (float_of_int to_zero >= 0.35 *. float_of_int n)

let test_skew_hurts_response () =
  (* hotspot load produces a strictly worse average response than uniform
     traffic at the same rate (queueing at the hot port) *)
  let uni = Workload.poisson ~m:6 ~rate:4.0 ~rounds:10 ~seed:9 in
  let hot = Workload.hotspot ~m:6 ~rate:4.0 ~rounds:10 ~fraction:0.7 ~seed:9 () in
  let avg inst = Engine.average_response (Engine.run_instance Heuristics.maxweight inst) in
  Alcotest.(check bool) "hotspot worse" true (avg hot > avg uni)

(* --- end-to-end consistency --- *)

let prop_bounds_sandwich_everything =
  QCheck2.Test.make ~name:"LP bounds below every heuristic and baseline" ~count:15
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 5 30))
    (fun (seed, n) ->
      let inst = Workload.uniform_total ~m:4 ~n ~max_release:5 ~seed in
      let schedules =
        List.map
          (fun (p : Policy.t) -> (Engine.run_instance p inst).Engine.schedule)
          Heuristics.all_paper_heuristics
        @ [ Baselines.fifo inst; Baselines.greedy_maxcard inst; Baselines.srpt_order inst ]
      in
      let horizon =
        List.fold_left
          (fun acc s -> max acc (Schedule.makespan s))
          (Art_lp.default_horizon inst)
          schedules
      in
      let bound = Art_lp.lower_bound ~horizon inst in
      let rho_lp = Mrt_scheduler.min_fractional_rho inst in
      List.for_all
        (fun s ->
          Schedule.is_valid inst s
          && float_of_int (Schedule.total_response inst s) >= bound.Art_lp.total -. 1e-6
          && Schedule.max_response inst s >= rho_lp)
        schedules)

let prop_offline_pipelines_agree =
  QCheck2.Test.make ~name:"ART and MRT pipelines both valid on shared instances" ~count:10
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 5 20))
    (fun (seed, n) ->
      let inst = Workload.uniform_total ~m:3 ~n ~max_release:4 ~seed in
      let art = Art_scheduler.solve ~c:1 inst in
      let mrt = Mrt_scheduler.solve inst in
      Schedule.is_valid art.Art_scheduler.augmented art.Art_scheduler.schedule
      && Schedule.is_valid mrt.Mrt_scheduler.augmented mrt.Mrt_scheduler.schedule
      && float_of_int art.Art_scheduler.total_response >= art.Art_scheduler.lp_total -. 1e-6
      && mrt.Mrt_scheduler.rho <= mrt.Mrt_scheduler.fractional_rho)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_factor_bounded_logarithmically;
        prop_bounds_sandwich_everything;
        prop_offline_pipelines_agree;
      ]
  in
  Alcotest.run "flowsched_integration"
    [
      ( "factor-augmented",
        [
          Alcotest.test_case "unit demands" `Quick test_factor_augmented_unit;
          Alcotest.test_case "general demands" `Quick test_factor_augmented_general_demands;
        ] );
      ( "open-problem",
        [
          Alcotest.test_case "generator stays in class" `Quick test_open_problem_generator_slack;
          Alcotest.test_case "slack measure" `Quick test_open_problem_slack_measure;
          Alcotest.test_case "study" `Quick test_open_problem_study;
        ] );
      ( "lp-io",
        [
          Alcotest.test_case "lp format" `Quick test_lp_format_output;
          Alcotest.test_case "solution summary" `Quick test_lp_solution_summary;
          Alcotest.test_case "file write" `Quick test_lp_file_roundtrip;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "skewed" `Quick test_skewed_workload;
          Alcotest.test_case "hotspot" `Quick test_hotspot_workload;
          Alcotest.test_case "skew hurts response" `Quick test_skew_hurts_response;
        ] );
      ("properties", props);
    ]
