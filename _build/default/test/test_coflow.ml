(* Tests for the co-flow extension (the paper's future-work direction) and
   the schedule timeline renderer. *)

open Flowsched_switch
open Flowsched_core

let mk ~m specs = Instance.of_flows ~m ~m':m specs

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* --- construction --- *)

let test_make_validates () =
  let inst = mk ~m:2 [ (0, 0, 1, 0); (1, 1, 1, 0) ] in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Coflow.make: one group per flow required") (fun () ->
      ignore (Coflow.make inst ~group_of:[| 0 |]));
  Alcotest.check_raises "sparse ids" (Invalid_argument "Coflow.make: group ids must be dense")
    (fun () -> ignore (Coflow.make inst ~group_of:[| 0; 2 |]));
  let cf = Coflow.make inst ~group_of:[| 0; 1 |] in
  Alcotest.(check int) "groups" 2 cf.Coflow.groups

let test_random_grouping_dense () =
  let inst = mk ~m:3 (List.init 9 (fun i -> (i mod 3, i mod 3, 1, 0))) in
  let cf = Coflow.random_grouping ~seed:4 ~groups:4 inst in
  Alcotest.(check int) "groups" 4 cf.Coflow.groups;
  let seen = Array.make 4 false in
  Array.iter (fun g -> seen.(g) <- true) cf.Coflow.group_of;
  Alcotest.(check bool) "all groups used" true (Array.for_all (fun x -> x) seen)

(* --- metrics --- *)

let test_members_release_bottleneck () =
  let inst = mk ~m:2 [ (0, 0, 1, 2); (0, 1, 1, 5); (1, 1, 1, 0) ] in
  let cf = Coflow.make inst ~group_of:[| 0; 0; 1 |] in
  Alcotest.(check (list int)) "members" [ 0; 1 ] (Coflow.members cf 0);
  Alcotest.(check int) "release = min member" 2 (Coflow.release cf 0);
  (* group 0 has two flows sharing input port 0: bottleneck 2 *)
  Alcotest.(check int) "bottleneck" 2 (Coflow.bottleneck cf 0);
  Alcotest.(check int) "singleton bottleneck" 1 (Coflow.bottleneck cf 1)

let test_response_times () =
  let inst = mk ~m:2 [ (0, 0, 1, 0); (0, 1, 1, 0); (1, 1, 1, 0) ] in
  let cf = Coflow.make inst ~group_of:[| 0; 0; 1 |] in
  let s = Schedule.make [| 0; 3; 1 |] in
  (* group 0 completes at round 3 -> response 4; group 1 at 1 -> 2 *)
  Alcotest.(check (array int)) "responses" [| 4; 2 |] (Coflow.response_times cf s);
  Alcotest.(check (float 1e-9)) "avg" 3. (Coflow.average_response cf s);
  Alcotest.(check int) "max" 4 (Coflow.max_response cf s)

(* --- SEBF vs group-blind FIFO --- *)

let test_sebf_prioritizes_small_coflow () =
  (* A 1-flow co-flow and a 4-flow co-flow all on the same port pair,
     interleaved ids so FIFO (by release, id) runs a big-co-flow flow
     first.  SEBF must finish the small co-flow in round 0. *)
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0) ] in
  let cf = Coflow.make inst ~group_of:[| 1; 1; 0; 1; 1 |] in
  let sebf = Coflow.sebf cf in
  Alcotest.(check bool) "valid" true (Schedule.is_valid inst sebf);
  Alcotest.(check int) "small coflow first" 0 (Schedule.round_of sebf 2);
  (* avg coflow response: SEBF = (1 + 5)/2 = 3; FIFO-by-id = (3 + 5)/2 = 4 *)
  let fifo = Coflow.flow_fifo cf in
  Alcotest.(check bool) "SEBF beats blind FIFO on avg coflow response" true
    (Coflow.average_response cf sebf < Coflow.average_response cf fifo)

let test_sebf_work_conserving () =
  let inst = mk ~m:2 [ (0, 0, 1, 0); (1, 1, 1, 0); (0, 1, 1, 1) ] in
  let cf = Coflow.make inst ~group_of:[| 0; 1; 2 |] in
  let s = Coflow.sebf cf in
  (* the two round-0 flows are port-disjoint: both must run immediately *)
  Alcotest.(check int) "flow 0 at round 0" 0 (Schedule.round_of s 0);
  Alcotest.(check int) "flow 1 at round 0" 0 (Schedule.round_of s 1)

let prop_sebf_valid_and_bounded =
  QCheck2.Test.make ~name:"SEBF: valid schedules, response >= bottleneck" ~count:50
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 1 4) (int_range 2 20))
    (fun (seed, groups, n) ->
      let g = Flowsched_util.Prng.create seed in
      let m = 3 in
      let inst =
        mk ~m
          (List.init n (fun _ ->
               ( Flowsched_util.Prng.int g m,
                 Flowsched_util.Prng.int g m,
                 1,
                 Flowsched_util.Prng.int g 4 )))
      in
      let groups = min groups n in
      let cf = Coflow.random_grouping ~seed:(seed + 1) ~groups inst in
      let s = Coflow.sebf cf in
      let rts = Coflow.response_times cf s in
      Schedule.is_valid inst s
      && Array.for_all (fun r -> r >= 1) rts
      (* each co-flow needs at least its bottleneck many rounds *)
      && List.for_all
           (fun gid -> rts.(gid) >= Coflow.bottleneck cf gid)
           (List.init cf.Coflow.groups (fun i -> i)))

let prop_flow_metrics_dominated_by_coflow_metrics =
  QCheck2.Test.make ~name:"coflow avg response >= flow avg response" ~count:50
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 2 20))
    (fun (seed, n) ->
      let inst = Flowsched_sim.Workload.uniform_total ~m:3 ~n ~max_release:3 ~seed in
      let cf = Coflow.random_grouping ~seed:(seed + 5) ~groups:(max 1 (n / 3)) inst in
      let s = Coflow.sebf cf in
      (* a co-flow waits for its slowest member, so group-average response
         cannot be smaller than... (note: releases differ, so compare via
         max) *)
      Coflow.max_response cf s >= Schedule.max_response inst s - Instance.last_release inst)

(* --- timeline rendering --- *)

let test_render_timeline () =
  let inst = mk ~m:2 [ (0, 0, 1, 0); (1, 1, 1, 0); (0, 1, 1, 1) ] in
  let s = Schedule.make [| 0; 0; 1 |] in
  let text = Schedule.render_timeline inst s in
  Alcotest.(check bool) "has input rows" true (contains text "in    0 |");
  Alcotest.(check bool) "has output rows" true (contains text "out   1 |");
  Alcotest.(check bool) "idle cells" true (contains text ".");
  Alcotest.(check bool) "no overload marker" false (contains text "!")

let test_render_timeline_overload () =
  let inst = mk ~m:1 [ (0, 0, 1, 0); (0, 0, 1, 0) ] in
  let s = Schedule.make [| 0; 0 |] in
  let text = Schedule.render_timeline inst s in
  Alcotest.(check bool) "overload marked" true (contains text "2!")

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_sebf_valid_and_bounded; prop_flow_metrics_dominated_by_coflow_metrics ]
  in
  Alcotest.run "flowsched_coflow"
    [
      ( "model",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "random grouping" `Quick test_random_grouping_dense;
          Alcotest.test_case "members/release/bottleneck" `Quick test_members_release_bottleneck;
          Alcotest.test_case "response times" `Quick test_response_times;
        ] );
      ( "sebf",
        [
          Alcotest.test_case "prioritizes small coflows" `Quick test_sebf_prioritizes_small_coflow;
          Alcotest.test_case "work conserving" `Quick test_sebf_work_conserving;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "render" `Quick test_render_timeline;
          Alcotest.test_case "overload marker" `Quick test_render_timeline_overload;
        ] );
      ("properties", props);
    ]
