  $ flowsched generate uniform -m 3 -n 8 --max-release 3 --seed 11 > inst.txt
  $ cat inst.txt
  $ flowsched lp-bound inst.txt
  $ flowsched solve-mrt inst.txt --timeline
  $ flowsched exact inst.txt
  $ flowsched solve-art inst.txt
  $ flowsched simulate inst.txt --policy minrtime
  $ flowsched simulate inst.txt --policy turbo
  $ printf 'switch 1 1\nflow 0 0\n' | flowsched lp-bound -
  $ flowsched rtt --teachers 2 --classes 3 --seed 2
