(* Tests for the Theorem 2 reduction: RTT <-> FS-MRT with rho = 3, both
   directions machine-checked against the exact solver, plus the
   augmentation escape hatch of Remark 4.4. *)

open Flowsched_switch
open Flowsched_core

let simple_rtt =
  {
    Hardness.teachers = 2;
    classes = 3;
    tsets = [| [ 1; 3 ]; [ 1; 2; 3 ] |];
    assigns = [| [ 0; 1 ]; [ 0; 1; 2 ] |];
  }

(* Two teachers both available only {1,2} and both required to meet classes
   {0,1}: every bijection collides on some (class, hour), so unsatisfiable. *)
let unsat_rtt =
  {
    Hardness.teachers = 3;
    classes = 2;
    tsets = [| [ 1; 2 ]; [ 1; 2 ]; [ 1; 2 ] |];
    assigns = [| [ 0; 1 ]; [ 0; 1 ]; [ 0; 1 ] |];
  }

let random_rtt seed =
  let g = Flowsched_util.Prng.create seed in
  let teachers = 1 + Flowsched_util.Prng.int g 3 in
  let classes = 2 + Flowsched_util.Prng.int g 3 in
  let tsets =
    Array.init teachers (fun _ ->
        let size = 2 + Flowsched_util.Prng.int g 2 in
        Flowsched_util.Sampling.sample_without_replacement g size 3
        |> List.map (fun h -> h + 1))
  in
  let assigns =
    Array.init teachers (fun i ->
        let size = List.length tsets.(i) in
        if size > classes then
          (* resample hours to fit the class count *)
          []
        else Flowsched_util.Sampling.sample_without_replacement g size classes)
  in
  (* patch any oversized tsets by trimming to the class count *)
  let tsets =
    Array.mapi
      (fun i ts ->
        if assigns.(i) = [] then begin
          let trimmed = [ List.nth ts 0; List.nth ts 1 ] in
          trimmed
        end
        else ts)
      tsets
  in
  let assigns =
    Array.mapi
      (fun i js ->
        if js = [] then
          Flowsched_util.Sampling.sample_without_replacement g (List.length tsets.(i)) classes
        else js)
      assigns
  in
  { Hardness.teachers; classes; tsets; assigns }

(* --- validation --- *)

let test_validate_catches_errors () =
  let bad_size = { simple_rtt with Hardness.tsets = [| [ 1 ]; [ 1; 2 ] |] } in
  (match Hardness.validate bad_size with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected |T_i| >= 2 error");
  let bad_hour = { simple_rtt with Hardness.tsets = [| [ 1; 4 ]; [ 1; 2; 3 ] |] } in
  (match Hardness.validate bad_hour with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected hour range error");
  let bad_g = { simple_rtt with Hardness.assigns = [| [ 0 ]; [ 0; 1; 2 ] |] } in
  (match Hardness.validate bad_g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected |g(i)| = |T_i| error");
  match Hardness.validate simple_rtt with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid instance rejected: %s" e

(* --- brute-force RTT --- *)

let test_satisfiable_instances () =
  Alcotest.(check bool) "simple satisfiable" true (Hardness.satisfiable simple_rtt);
  Alcotest.(check bool) "pigeonhole unsatisfiable" false (Hardness.satisfiable unsat_rtt)

let test_find_timetable_witness () =
  match Hardness.find_timetable simple_rtt with
  | None -> Alcotest.fail "expected witness"
  | Some f -> Alcotest.(check bool) "witness checks" true (Hardness.check_timetable simple_rtt f)

let test_check_timetable_rejects () =
  (* wrong hour for teacher 0 (2 not in {1,3}) *)
  Alcotest.(check bool) "hour outside T_i" false
    (Hardness.check_timetable simple_rtt [ (0, 0, 2); (0, 1, 1); (1, 0, 3); (1, 1, 2); (1, 2, 1) ]);
  (* missing meeting *)
  Alcotest.(check bool) "incomplete coverage" false
    (Hardness.check_timetable simple_rtt [ (0, 0, 1); (1, 0, 3); (1, 1, 2); (1, 2, 1) ])

(* --- reduction structure --- *)

let count_specials rtt =
  Array.fold_left
    (fun acc ts -> match ts with [ 1; 3 ] | [ 1; 2 ] -> acc + 1 | _ -> acc)
    0 rtt.Hardness.tsets

let test_reduce_structure () =
  let red = Hardness.reduce simple_rtt in
  let specials = count_specials simple_rtt in
  let mains = Array.fold_left (fun acc js -> acc + List.length js) 0 simple_rtt.Hardness.assigns in
  Alcotest.(check int) "rho is 3" 3 red.Hardness.rho;
  Alcotest.(check int) "main flow count" mains (List.length red.Hardness.main_flows);
  Alcotest.(check int) "flow count" (mains + (3 * simple_rtt.Hardness.classes) + (4 * specials))
    (Instance.n red.Hardness.instance);
  Alcotest.(check int) "output ports" (simple_rtt.Hardness.classes + specials)
    red.Hardness.instance.Instance.m'

(* --- the equivalence, both directions --- *)

let test_forward_direction () =
  (* timetable -> schedule with max response 3 *)
  let red = Hardness.reduce simple_rtt in
  match Hardness.find_timetable simple_rtt with
  | None -> Alcotest.fail "satisfiable instance"
  | Some f ->
      let s = Hardness.schedule_of_timetable simple_rtt red f in
      (match Schedule.validate red.Hardness.instance s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "forward schedule invalid: %s" e);
      Alcotest.(check int) "max response 3" 3
        (Schedule.max_response red.Hardness.instance s)

let test_backward_direction () =
  (* schedule with rho <= 3 -> valid timetable *)
  let red = Hardness.reduce simple_rtt in
  match Exact.feasible_with_rho red.Hardness.instance ~rho:3 with
  | None -> Alcotest.fail "reduced instance must be schedulable (RTT satisfiable)"
  | Some s -> (
      match Hardness.timetable_of_schedule simple_rtt red s with
      | Error e -> Alcotest.failf "extraction failed: %s" e
      | Ok f ->
          Alcotest.(check bool) "extracted timetable valid" true
            (Hardness.check_timetable simple_rtt f))

let test_unsat_blocks_rho3 () =
  let red = Hardness.reduce unsat_rtt in
  Alcotest.(check bool) "no schedule with rho=3" true
    (Exact.feasible_with_rho red.Hardness.instance ~rho:3 = None);
  (* but rho=4 is always possible for these gadgets *)
  Alcotest.(check bool) "rho=4 works" true
    (Exact.feasible_with_rho red.Hardness.instance ~rho:4 <> None)

let test_augmentation_breaks_hardness () =
  (* Remark 4.4: +1 capacity lets the LP solver reach rho <= 3 even on the
     unsatisfiable gadget — exactly why the approximation needs
     augmentation. *)
  let red = Hardness.reduce unsat_rtt in
  if Mrt_scheduler.feasible_rho red.Hardness.instance 3 then begin
    let sol = Mrt_scheduler.solve ~rho:3 red.Hardness.instance in
    Alcotest.(check bool) "rho 3 under +1 capacity" true (sol.Mrt_scheduler.rho <= 3);
    Alcotest.(check bool) "valid augmented" true
      (Schedule.is_valid sol.Mrt_scheduler.augmented sol.Mrt_scheduler.schedule)
  end
  else
    (* The LP itself may detect integral infeasibility on tiny gadgets; the
       claim then holds vacuously, but we still require rho=4 to round. *)
    let sol = Mrt_scheduler.solve red.Hardness.instance in
    Alcotest.(check bool) "solver still succeeds" true
      (Schedule.is_complete sol.Mrt_scheduler.schedule)

let prop_reduction_equivalence =
  QCheck2.Test.make ~name:"RTT satisfiable <=> reduced instance rho-3 schedulable" ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rtt = random_rtt seed in
      match Hardness.validate rtt with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () ->
          let red = Hardness.reduce rtt in
          let sat = Hardness.satisfiable rtt in
          let schedulable = Exact.feasible_with_rho red.Hardness.instance ~rho:3 <> None in
          sat = schedulable)

let prop_roundtrip =
  QCheck2.Test.make ~name:"timetable -> schedule -> timetable round-trip" ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rtt = random_rtt seed in
      match Hardness.validate rtt with
      | Error _ -> QCheck2.assume_fail ()
      | Ok () -> (
          match Hardness.find_timetable rtt with
          | None -> true
          | Some f ->
              let red = Hardness.reduce rtt in
              let s = Hardness.schedule_of_timetable rtt red f in
              (match Hardness.timetable_of_schedule rtt red s with
              | Ok f' -> Hardness.check_timetable rtt f'
              | Error _ -> false)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest [ prop_reduction_equivalence; prop_roundtrip ]
  in
  Alcotest.run "flowsched_hardness"
    [
      ( "rtt",
        [
          Alcotest.test_case "validation" `Quick test_validate_catches_errors;
          Alcotest.test_case "satisfiability" `Quick test_satisfiable_instances;
          Alcotest.test_case "witness" `Quick test_find_timetable_witness;
          Alcotest.test_case "check rejects bad timetables" `Quick test_check_timetable_rejects;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "structure" `Quick test_reduce_structure;
          Alcotest.test_case "forward direction" `Quick test_forward_direction;
          Alcotest.test_case "backward direction" `Quick test_backward_direction;
          Alcotest.test_case "unsat blocks rho 3" `Quick test_unsat_blocks_rho3;
          Alcotest.test_case "augmentation breaks hardness" `Quick test_augmentation_breaks_hardness;
        ] );
      ("properties", props);
    ]
