(* Co-flow scheduling: the paper's future-work generalization, in action.

   Scenario: three MapReduce-style shuffle stages on an 4x4 switch.  Each
   stage is a co-flow — it finishes only when its last flow does.  A small
   interactive query (1 flow) competes with two large batch shuffles; SEBF
   (smallest effective bottleneck first) protects the small job while plain
   per-flow FIFO lets the batch traffic bury it.

   Run with: dune exec examples/coflow_shuffle.exe *)

open Flowsched_switch
open Flowsched_core

let () =
  let m = 4 in
  (* group 0: interactive query, a single flow.
     group 1: shuffle A, all-to-all from inputs {0,1} to outputs {0,1}.
     group 2: shuffle B, heavy fan-in to output 3. *)
  let specs_with_groups =
    [
      ((0, 0, 1, 0), 1); ((0, 1, 1, 0), 1); ((1, 0, 1, 0), 1); ((1, 1, 1, 0), 1);
      ((0, 3, 1, 0), 2); ((1, 3, 1, 0), 2); ((2, 3, 1, 0), 2); ((3, 3, 1, 0), 2);
      ((0, 3, 1, 1), 2); ((1, 3, 1, 1), 2);
      (* the interactive query arrives last and contends with shuffle B on
         output 3: group-blind FIFO (release, id) buries it behind the
         batch flows *)
      ((2, 3, 1, 0), 0);
    ]
  in
  let inst = Instance.of_flows ~m ~m':m (List.map fst specs_with_groups) in
  let group_of = Array.of_list (List.map snd specs_with_groups) in
  let cf = Coflow.make inst ~group_of in
  Printf.printf "%d flows in %d co-flows; bottlenecks:" (Instance.n inst) cf.Coflow.groups;
  for gid = 0 to cf.Coflow.groups - 1 do
    Printf.printf " job%d=%d" gid (Coflow.bottleneck cf gid)
  done;
  print_newline ();
  let report label schedule =
    let rts = Coflow.response_times cf schedule in
    Printf.printf "\n%s: avg co-flow response %.2f, max %d\n" label
      (Coflow.average_response cf schedule)
      (Coflow.max_response cf schedule);
    Array.iteri (fun gid rt -> Printf.printf "  job %d: response %d\n" gid rt) rts;
    print_string (Schedule.render_timeline inst schedule)
  in
  report "SEBF (bottleneck-ordered)" (Coflow.sebf cf);
  report "group-blind FIFO" (Coflow.flow_fifo cf);
  print_newline ();
  print_endline
    "SEBF finishes the interactive query and the small shuffle before the heavy\n\
     fan-in job, cutting the average co-flow response — the effect Varys-style\n\
     schedulers exploit, and the regime the paper's future work points to."
