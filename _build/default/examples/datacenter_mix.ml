(* Datacenter traffic mix: the motivating scenario from the paper's
   introduction — a cluster modelled as one non-blocking switch carrying
   randomly arriving flows, where the operator cares about the response
   time users observe.

   We generate Poisson traffic at three congestion levels, run the three
   online heuristics of Section 5.2, and compare them against the LP lower
   bound and the offline Theorem 1 pipeline.

   Run with: dune exec examples/datacenter_mix.exe *)

open Flowsched_switch
open Flowsched_core
open Flowsched_online
open Flowsched_sim
open Flowsched_util

let () =
  let m = 8 in
  let rounds = 8 in
  Printf.printf
    "Simulating an %dx%d switch (think: %d racks with 1 unit/round uplinks),\n\
     Poisson flow arrivals for %d rounds.\n\n"
    m m m rounds;
  let table =
    Table.create
      [
        ("load", Table.Left);
        ("flows", Table.Right);
        ("policy", Table.Left);
        ("avg resp", Table.Right);
        ("max resp", Table.Right);
        ("avg/LP", Table.Right);
      ]
  in
  List.iter
    (fun (label, congestion) ->
      let inst =
        Workload.poisson ~m ~rate:(congestion *. float_of_int m) ~rounds ~seed:77
      in
      (* online heuristics *)
      let runs =
        List.map
          (fun (p : Policy.t) -> (p.Policy.name, Engine.run_instance p inst))
          Heuristics.all_paper_heuristics
      in
      (* the LP bound must cover the longest schedule it is compared to *)
      let horizon =
        List.fold_left
          (fun acc (_, r) -> max acc r.Engine.makespan)
          (Art_lp.default_horizon inst)
          runs
      in
      let bound = Art_lp.lower_bound ~horizon inst in
      List.iter
        (fun (name, r) ->
          Table.add_row table
            [
              label;
              string_of_int (Instance.n inst);
              name;
              Table.cell_float (Engine.average_response r);
              string_of_int (Engine.max_response r);
              Table.cell_ratio (Engine.average_response r) bound.Art_lp.average;
            ])
        runs;
      (* offline Theorem 1 for reference: what a centralized scheduler with
         2x capacity achieves *)
      let art = Art_scheduler.solve ~c:1 inst in
      Table.add_row table
        [
          label;
          string_of_int (Instance.n inst);
          "offline ART (2x cap)";
          Table.cell_float
            (float_of_int art.Art_scheduler.total_response /. float_of_int (Instance.n inst));
          string_of_int (Schedule.max_response inst art.Art_scheduler.schedule);
          Table.cell_ratio
            (float_of_int art.Art_scheduler.total_response /. float_of_int (Instance.n inst))
            bound.Art_lp.average;
        ];
      Table.add_separator table)
    [ ("light (M/m = 1/2)", 0.5); ("critical (M/m = 1)", 1.0); ("overload (M/m = 2)", 2.0) ];
  Table.print table;
  Printf.printf
    "\nReading the table: all heuristics sit within a small factor of the LP lower\n\
     bound; MaxWeight balances both objectives, matching the paper's conclusion\n\
     (\"MaxWeight takes the middle ground and is thus the best choice when it is\n\
     desirable to keep both average and maximum response times low\").\n"
