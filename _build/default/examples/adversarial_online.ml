(* The limits of online scheduling: Figure 4's adversaries in action.

   (a) Lemma 5.1: no online algorithm is O(1)-competitive for average
       response time — the adversary floods whichever output port the
       algorithm left congested, and the ratio to the offline LP bound
       grows with the flood length.

   (b) Lemma 5.2: even for maximum response time, online algorithms are at
       least 3/2 from optimal on a seven-port gadget.

   (c) Lemma 5.3: with batching and augmented capacity, AMRT recovers
       2-competitiveness for maximum response time.

   Run with: dune exec examples/adversarial_online.exe *)

open Flowsched_switch
open Flowsched_core
open Flowsched_online
open Flowsched_sim

let lemma_5_1 () =
  print_endline "--- Lemma 5.1: average response time is not competitive ---";
  let t = 6 in
  List.iter
    (fun total ->
      let arrivals ~round ~pending =
        if round < t then [ (0, 0, 1); (0, 1, 1) ]
        else begin
          let count d =
            List.length (List.filter (fun (f : Flow.t) -> f.Flow.dst = d) pending)
          in
          [ (1, Lower_bounds.fig4a_dashed_target ~pending_out0:(count 0) ~pending_out1:(count 1), 1) ]
        end
      in
      let r =
        Engine.run_adaptive ~m:2 ~m':2 ~arrivals ~stop_arrivals_after:total
          Heuristics.maxcard
      in
      let inst = Instance.create ~m:2 ~m':2 r.Engine.flows in
      let horizon = max (Art_lp.default_horizon inst) r.Engine.makespan in
      let bound = Art_lp.lower_bound ~horizon inst in
      Printf.printf "  flood length %2d: MaxCard avg %.2f vs LP %.2f  (ratio %.2f)\n" total
        (Engine.average_response r) bound.Art_lp.average
        (Engine.average_response r /. bound.Art_lp.average))
    [ 12; 24; 48; 96 ];
  print_endline "  -> the ratio keeps growing: no online algorithm is O(1)-competitive."

let lemma_5_2 () =
  print_endline "\n--- Lemma 5.2: max response time is >= 3/2 from optimal online ---";
  let adversary ~round ~pending =
    if round = 0 then [ (0, 1, 1); (0, 0, 1); (1, 2, 1); (1, 3, 1) ]
    else if round = 1 then
      Lower_bounds.fig4b_dashed
        ~remaining_solid_outputs:(List.map (fun (f : Flow.t) -> f.Flow.dst) pending)
    else []
  in
  List.iter
    (fun (p : Policy.t) ->
      let r = Engine.run_adaptive ~m:3 ~m':4 ~arrivals:adversary ~stop_arrivals_after:2 p in
      Printf.printf "  %-9s forced to max response %d (offline optimum: %d)\n" p.Policy.name
        (Engine.max_response r) Lower_bounds.fig4b_optimum)
    (Heuristics.all_paper_heuristics @ [ Heuristics.fifo ])

let lemma_5_3 () =
  print_endline "\n--- Lemma 5.3: AMRT is 2-competitive with augmented capacity ---";
  let inst = Workload.poisson ~m:6 ~rate:6.0 ~rounds:12 ~seed:99 in
  let cap_in, cap_out =
    Amrt.required_capacities ~cap_in:inst.Instance.cap_in ~cap_out:inst.Instance.cap_out
      ~dmax:1
  in
  let amrt =
    Amrt.make ~planning_cap_in:inst.Instance.cap_in ~planning_cap_out:inst.Instance.cap_out ()
  in
  let augmented = Instance.create ~cap_in ~cap_out ~m:6 ~m':6 inst.Instance.flows in
  let r = Engine.run_instance amrt augmented in
  let frac = Mrt_scheduler.min_fractional_rho inst in
  let guess = match Amrt.current_rho amrt with Some k -> k | None -> 0 in
  Printf.printf
    "  %d flows: AMRT max response %d, final guess rho=%d, LP optimum rho*=%d\n"
    (Instance.n inst) (Engine.max_response r) guess frac;
  Printf.printf "  guarantee max <= 2*guess holds: %b (capacities scaled to %d)\n"
    (Engine.max_response r <= 2 * guess)
    cap_in.(0)

let () =
  lemma_5_1 ();
  lemma_5_2 ();
  lemma_5_3 ()
