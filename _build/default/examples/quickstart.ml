(* Quickstart: build a switch instance, compute LP lower bounds, run both
   offline approximation algorithms and an online heuristic.

   Run with: dune exec examples/quickstart.exe *)

open Flowsched_switch
open Flowsched_core

let () =
  (* A 3x3 unit-capacity switch and seven unit flows.  (src, dst, demand,
     release); flow ids are assigned in order. *)
  let inst =
    Instance.of_flows ~m:3 ~m':3
      [
        (0, 0, 1, 0);
        (0, 1, 1, 0);
        (1, 0, 1, 0);
        (1, 2, 1, 1);
        (2, 2, 1, 1);
        (2, 0, 1, 2);
        (0, 2, 1, 2);
      ]
  in
  Format.printf "instance: %a@." Instance.pp inst;

  (* Lower bounds from the two LP relaxations. *)
  let bound = Art_lp.lower_bound inst in
  let rho_lp = Mrt_scheduler.min_fractional_rho inst in
  Printf.printf "LP lower bounds: total response >= %.2f, max response >= %d\n\n"
    bound.Art_lp.total rho_lp;

  (* Offline FS-ART (Theorem 1): average response within (1 + O(log n)/c) of
     optimal using (1+c)x port capacity. *)
  let art = Art_scheduler.solve ~c:1 inst in
  Printf.printf "FS-ART schedule (2x capacities): total response %d (LP bound %.2f)\n"
    art.Art_scheduler.total_response art.Art_scheduler.lp_total;
  assert (Schedule.is_valid art.Art_scheduler.augmented art.Art_scheduler.schedule);

  (* Offline FS-MRT (Theorem 3): optimal maximum response using +2dmax-1
     capacity. *)
  let mrt = Mrt_scheduler.solve inst in
  Printf.printf "FS-MRT schedule (+%d capacity): max response %d (fractional optimum %d)\n"
    ((2 * Instance.dmax inst) - 1)
    mrt.Mrt_scheduler.rho mrt.Mrt_scheduler.fractional_rho;
  assert (Schedule.is_valid mrt.Mrt_scheduler.augmented mrt.Mrt_scheduler.schedule);

  (* Online MaxWeight through the simulator. *)
  let r = Flowsched_sim.Engine.run_instance Flowsched_online.Heuristics.maxweight inst in
  Printf.printf "online MaxWeight: avg response %.2f, max response %d\n"
    (Flowsched_sim.Engine.average_response r)
    (Flowsched_sim.Engine.max_response r);

  (* Every flow's placement, for the curious. *)
  print_newline ();
  Array.iter
    (fun (f : Flow.t) ->
      Printf.printf "  flow %d (%d->%d, released %d): ART round %d, MRT round %d, online %d\n"
        f.Flow.id f.Flow.src f.Flow.dst f.Flow.release
        (Schedule.round_of art.Art_scheduler.schedule f.Flow.id)
        (Schedule.round_of mrt.Mrt_scheduler.schedule f.Flow.id)
        (Schedule.round_of r.Flowsched_sim.Engine.schedule f.Flow.id))
    inst.Instance.flows
