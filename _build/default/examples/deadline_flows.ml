(* Deadline-constrained flows (Remark 4.2): each flow has an individual
   deadline instead of a uniform response-time target.  The Time-Constrained
   Flow Scheduling LP + rounding either proves the deadlines unachievable or
   meets all of them with ports augmented by 2 dmax - 1.

   Scenario: a storage cluster where bulk backup flows tolerate slack but
   latency-critical shuffle flows must finish within 2 rounds of release.

   Run with: dune exec examples/deadline_flows.exe *)

open Flowsched_switch
open Flowsched_core

let () =
  let m = 4 in
  (* Mixed traffic on a capacity-2 switch: demands 1 ("shuffle") and 2
     ("backup"). *)
  let specs =
    [
      (* shuffle flows: released over rounds 0-2 *)
      (0, 1, 1, 0); (1, 2, 1, 0); (2, 3, 1, 0); (3, 0, 1, 1);
      (0, 2, 1, 1); (1, 3, 1, 2); (2, 0, 1, 2);
      (* backup flows: big, released early *)
      (0, 3, 2, 0); (1, 0, 2, 0); (2, 1, 2, 1); (3, 2, 2, 1);
    ]
  in
  let inst =
    Instance.of_flows ~cap_in:(Array.make m 2) ~cap_out:(Array.make m 2) ~m ~m':m specs
  in
  let n = Instance.n inst in
  (* Tight deadlines for shuffles (release + 1), loose for backups
     (release + 5). *)
  let deadlines =
    Array.map
      (fun (f : Flow.t) ->
        if f.Flow.demand = 1 then f.Flow.release + 1 else f.Flow.release + 5)
      inst.Instance.flows
  in
  Printf.printf "%d flows, dmax = %d, capacity augmentation %d\n\n" n (Instance.dmax inst)
    ((2 * Instance.dmax inst) - 1);
  (match Mrt_scheduler.solve_with_deadlines inst ~deadlines with
  | None -> print_endline "deadlines are infeasible even fractionally"
  | Some sol ->
      Printf.printf "all %d deadlines met; max response %d, port overflow %d (bound %d)\n\n" n
        sol.Mrt_scheduler.rho sol.Mrt_scheduler.rounding.Mrt_rounding.overflow
        sol.Mrt_scheduler.rounding.Mrt_rounding.bound;
      Array.iter
        (fun (f : Flow.t) ->
          let round = Schedule.round_of sol.Mrt_scheduler.schedule f.Flow.id in
          Printf.printf "  %-7s flow %2d (%d->%d, d=%d, released %d): round %d (deadline %d)%s\n"
            (if f.Flow.demand = 1 then "shuffle" else "backup")
            f.Flow.id f.Flow.src f.Flow.dst f.Flow.demand f.Flow.release round
            deadlines.(f.Flow.id)
            (if round <= deadlines.(f.Flow.id) then "" else "  <- MISSED"))
        inst.Instance.flows);
  (* Now shrink the backup deadlines until the LP proves infeasibility. *)
  print_newline ();
  let rec tighten slack =
    let tight =
      Array.map
        (fun (f : Flow.t) ->
          if f.Flow.demand = 1 then f.Flow.release + 1 else f.Flow.release + slack)
        inst.Instance.flows
    in
    match Mrt_scheduler.solve_with_deadlines inst ~deadlines:tight with
    | Some _ ->
        Printf.printf "backup slack %d: feasible\n" slack;
        if slack > 0 then tighten (slack - 1)
    | None -> Printf.printf "backup slack %d: provably infeasible (LP certificate)\n" slack
  in
  tighten 3
