examples/datacenter_mix.ml: Art_lp Art_scheduler Engine Flowsched_core Flowsched_online Flowsched_sim Flowsched_switch Flowsched_util Heuristics Instance List Policy Printf Schedule Table Workload
