examples/coflow_shuffle.ml: Array Coflow Flowsched_core Flowsched_switch Instance List Printf Schedule
