examples/quickstart.mli:
