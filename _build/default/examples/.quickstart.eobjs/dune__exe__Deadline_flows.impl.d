examples/deadline_flows.ml: Array Flow Flowsched_core Flowsched_switch Instance Mrt_rounding Mrt_scheduler Printf Schedule
