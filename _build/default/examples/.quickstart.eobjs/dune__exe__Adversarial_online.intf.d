examples/adversarial_online.mli:
