examples/quickstart.ml: Array Art_lp Art_scheduler Flow Flowsched_core Flowsched_online Flowsched_sim Flowsched_switch Format Instance Mrt_scheduler Printf Schedule
