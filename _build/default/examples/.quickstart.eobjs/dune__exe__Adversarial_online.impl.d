examples/adversarial_online.ml: Amrt Array Art_lp Engine Flow Flowsched_core Flowsched_online Flowsched_sim Flowsched_switch Heuristics Instance List Lower_bounds Mrt_scheduler Policy Printf Workload
