examples/coflow_shuffle.mli:
