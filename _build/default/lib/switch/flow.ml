type t = { id : int; src : int; dst : int; demand : int; release : int }

let make ~id ~src ~dst ?(demand = 1) ?(release = 0) () = { id; src; dst; demand; release }

let compare a b =
  match Stdlib.compare a.release b.release with 0 -> Stdlib.compare a.id b.id | c -> c

let pp fmt f =
  Format.fprintf fmt "flow#%d %d->%d d=%d r=%d" f.id f.src f.dst f.demand f.release
