(** Switch instances: the problem input [S_{m,m'} = (P, F)].

    An instance bundles the switch geometry ([m] input ports, [m'] output
    ports, per-port integral capacities) with the flow requests.  Flows are
    stored with [id = index], so algorithm outputs indexed by flow id can be
    resolved directly. *)

type t = private {
  m : int;  (** number of input ports *)
  m' : int;  (** number of output ports *)
  cap_in : int array;
  cap_out : int array;
  flows : Flow.t array;
}

val create :
  ?cap_in:int array -> ?cap_out:int array -> m:int -> m':int -> Flow.t array -> t
(** Capacities default to all-ones (the paper's unit-capacity switch).
    Raises [Invalid_argument] when a flow references a port out of range,
    has [demand < 1] or [release < 0], violates [d_e <= kappa_e =
    min(c_src, c_dst)], when flow ids are not [0..n-1], or when a capacity
    is non-positive. *)

val of_flows :
  ?cap_in:int array -> ?cap_out:int array -> m:int -> m':int ->
  (int * int * int * int) list -> t
(** Convenience: [(src, dst, demand, release)] tuples, ids assigned in
    order. *)

val n : t -> int
(** Number of flows. *)

val dmax : t -> int
(** Maximum demand over flows; [0] when there are none. *)

val kappa : t -> Flow.t -> int
(** [min(c_src, c_dst)] for the flow's ports. *)

val last_release : t -> int

val horizon : t -> int
(** A safe scheduling horizon: every instance admits a schedule finishing
    before this round (serial schedule after the last release). *)

val total_demand : t -> int

val scale_capacities : t -> mult:int -> add:int -> t
(** Resource augmentation: every port capacity becomes
    [mult * c + add].  Used to state results "under (1+c) capacities" /
    "capacities +2dmax-1". *)

val to_string : t -> string
(** Plain-text serialization (see {!of_string} for the format). *)

val of_string : string -> (t, string) result
(** Parses the format produced by {!to_string}:
    {v
    switch <m> <m'>
    cap_in <c_1> ... <c_m>        (optional, defaults to ones)
    cap_out <c_1> ... <c_m'>      (optional)
    flow <src> <dst> <demand> <release>   (one line per flow)
    v}
    Blank lines and [#] comments are ignored. *)

val pp : Format.formatter -> t -> unit
