type t = {
  m : int;
  m' : int;
  cap_in : int array;
  cap_out : int array;
  flows : Flow.t array;
}

let validate inst =
  if inst.m <= 0 || inst.m' <= 0 then invalid_arg "Instance: need at least one port per side";
  if Array.length inst.cap_in <> inst.m || Array.length inst.cap_out <> inst.m' then
    invalid_arg "Instance: capacity array lengths";
  Array.iter (fun c -> if c <= 0 then invalid_arg "Instance: capacities must be positive")
    inst.cap_in;
  Array.iter (fun c -> if c <= 0 then invalid_arg "Instance: capacities must be positive")
    inst.cap_out;
  Array.iteri
    (fun i (f : Flow.t) ->
      if f.Flow.id <> i then invalid_arg "Instance: flow ids must equal their index";
      if f.Flow.src < 0 || f.Flow.src >= inst.m then invalid_arg "Instance: src out of range";
      if f.Flow.dst < 0 || f.Flow.dst >= inst.m' then invalid_arg "Instance: dst out of range";
      if f.Flow.demand < 1 then invalid_arg "Instance: demand must be >= 1";
      if f.Flow.release < 0 then invalid_arg "Instance: release must be >= 0";
      if f.Flow.demand > min inst.cap_in.(f.Flow.src) inst.cap_out.(f.Flow.dst) then
        invalid_arg "Instance: demand exceeds kappa (min port capacity)")
    inst.flows

let create ?cap_in ?cap_out ~m ~m' flows =
  let cap_in = match cap_in with Some c -> Array.copy c | None -> Array.make m 1 in
  let cap_out = match cap_out with Some c -> Array.copy c | None -> Array.make m' 1 in
  let inst = { m; m'; cap_in; cap_out; flows = Array.copy flows } in
  validate inst;
  inst

let of_flows ?cap_in ?cap_out ~m ~m' specs =
  let flows =
    List.mapi
      (fun id (src, dst, demand, release) -> Flow.make ~id ~src ~dst ~demand ~release ())
      specs
  in
  create ?cap_in ?cap_out ~m ~m' (Array.of_list flows)

let n inst = Array.length inst.flows
let dmax inst = Array.fold_left (fun acc f -> max acc f.Flow.demand) 0 inst.flows
let kappa inst (f : Flow.t) = min inst.cap_in.(f.Flow.src) inst.cap_out.(f.Flow.dst)
let last_release inst = Array.fold_left (fun acc f -> max acc f.Flow.release) 0 inst.flows

let horizon inst = last_release inst + n inst + 1

let total_demand inst = Array.fold_left (fun acc f -> acc + f.Flow.demand) 0 inst.flows

let scale_capacities inst ~mult ~add =
  {
    inst with
    cap_in = Array.map (fun c -> (mult * c) + add) inst.cap_in;
    cap_out = Array.map (fun c -> (mult * c) + add) inst.cap_out;
  }

let to_string inst =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "switch %d %d\n" inst.m inst.m');
  let caps label arr =
    Buffer.add_string buf label;
    Array.iter (fun c -> Buffer.add_string buf (" " ^ string_of_int c)) arr;
    Buffer.add_char buf '\n'
  in
  caps "cap_in" inst.cap_in;
  caps "cap_out" inst.cap_out;
  Array.iter
    (fun (f : Flow.t) ->
      Buffer.add_string buf
        (Printf.sprintf "flow %d %d %d %d\n" f.Flow.src f.Flow.dst f.Flow.demand
           f.Flow.release))
    inst.flows;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let m = ref 0 and m' = ref 0 in
  let cap_in = ref None and cap_out = ref None in
  let flows = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "" && w <> "\t")
      in
      let ints ws =
        try Some (List.map int_of_string ws) with Failure _ -> None
      in
      match words with
      | [] -> ()
      | "switch" :: rest -> (
          match ints rest with
          | Some [ a; b ] ->
              m := a;
              m' := b
          | _ -> fail (Printf.sprintf "line %d: bad switch line" (lineno + 1)))
      | "cap_in" :: rest -> (
          match ints rest with
          | Some caps -> cap_in := Some (Array.of_list caps)
          | None -> fail (Printf.sprintf "line %d: bad cap_in line" (lineno + 1)))
      | "cap_out" :: rest -> (
          match ints rest with
          | Some caps -> cap_out := Some (Array.of_list caps)
          | None -> fail (Printf.sprintf "line %d: bad cap_out line" (lineno + 1)))
      | "flow" :: rest -> (
          match ints rest with
          | Some [ src; dst; demand; release ] -> flows := (src, dst, demand, release) :: !flows
          | _ -> fail (Printf.sprintf "line %d: bad flow line" (lineno + 1)))
      | w :: _ -> fail (Printf.sprintf "line %d: unknown directive %s" (lineno + 1) w))
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      if !m = 0 then Error "missing switch line"
      else (
        try Ok (of_flows ?cap_in:!cap_in ?cap_out:!cap_out ~m:!m ~m':!m' (List.rev !flows))
        with Invalid_argument msg -> Error msg)

let pp fmt inst =
  Format.fprintf fmt "S(%d,%d) with %d flows, dmax=%d" inst.m inst.m' (n inst) (dmax inst)
