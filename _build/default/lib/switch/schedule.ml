type t = { slots : int array }

let make assignment =
  Array.iter (fun r -> if r < 0 then invalid_arg "Schedule.make: unassigned flow") assignment;
  { slots = Array.copy assignment }

let unassigned n = { slots = Array.make n (-1) }

let assign s flow round =
  if round < 0 then invalid_arg "Schedule.assign: negative round";
  s.slots.(flow) <- round

let round_of s flow = s.slots.(flow)
let assignment s = Array.copy s.slots
let is_complete s = Array.for_all (fun r -> r >= 0) s.slots

let makespan s = Array.fold_left (fun acc r -> max acc (r + 1)) 0 s.slots

let check_assigned_and_released inst s =
  let issues = ref [] in
  Array.iteri
    (fun i r ->
      let f = inst.Instance.flows.(i) in
      if r < 0 then issues := Printf.sprintf "flow %d unassigned" i :: !issues
      else if r < f.Flow.release then
        issues := Printf.sprintf "flow %d scheduled at %d before release %d" i r f.Flow.release :: !issues)
    s.slots;
  !issues

(* load.(t) per port, split by side. *)
let loads inst s =
  let horizon = makespan s in
  let load_in = Array.make_matrix inst.Instance.m horizon 0 in
  let load_out = Array.make_matrix inst.Instance.m' horizon 0 in
  Array.iteri
    (fun i r ->
      if r >= 0 then begin
        let f = inst.Instance.flows.(i) in
        load_in.(f.Flow.src).(r) <- load_in.(f.Flow.src).(r) + f.Flow.demand;
        load_out.(f.Flow.dst).(r) <- load_out.(f.Flow.dst).(r) + f.Flow.demand
      end)
    s.slots;
  (load_in, load_out)

let validate inst s =
  if Array.length s.slots <> Instance.n inst then Error "schedule length mismatch"
  else
    match check_assigned_and_released inst s with
    | issue :: _ -> Error issue
    | [] ->
        let load_in, load_out = loads inst s in
        let bad = ref None in
        let scan side caps loads =
          Array.iteri
            (fun p per_round ->
              Array.iteri
                (fun t l ->
                  if l > caps.(p) && !bad = None then
                    bad :=
                      Some
                        (Printf.sprintf "%s port %d overloaded at round %d: %d > %d" side p t l
                           caps.(p)))
                per_round)
            loads
        in
        scan "input" inst.Instance.cap_in load_in;
        scan "output" inst.Instance.cap_out load_out;
        (match !bad with Some msg -> Error msg | None -> Ok ())

let is_valid inst s = match validate inst s with Ok () -> true | Error _ -> false

let require_assigned inst s =
  match check_assigned_and_released inst s with
  | [] -> ()
  | issue :: _ -> invalid_arg ("Schedule: " ^ issue)

let port_overflow inst s =
  require_assigned inst s;
  let load_in, load_out = loads inst s in
  let worst = ref 0 in
  let scan caps loads =
    Array.iteri
      (fun p per_round -> Array.iter (fun l -> worst := max !worst (l - caps.(p))) per_round)
      loads
  in
  scan inst.Instance.cap_in load_in;
  scan inst.Instance.cap_out load_out;
  !worst

let max_interval_excess inst s =
  require_assigned inst s;
  let load_in, load_out = loads inst s in
  let worst = ref 0 in
  (* Kadane on per-round excess load - cap: the best interval ending at t
     either extends the best interval ending at t-1 or restarts. *)
  let scan caps loads =
    Array.iteri
      (fun p per_round ->
        let best_ending = ref 0 in
        Array.iter
          (fun l ->
            let excess = l - caps.(p) in
            best_ending := max excess (!best_ending + excess);
            worst := max !worst !best_ending)
          per_round)
      loads
  in
  scan inst.Instance.cap_in load_in;
  scan inst.Instance.cap_out load_out;
  !worst

let response_times inst s =
  require_assigned inst s;
  Array.mapi (fun i r -> r + 1 - inst.Instance.flows.(i).Flow.release) s.slots

let total_response inst s = Array.fold_left ( + ) 0 (response_times inst s)

let average_response inst s =
  if Instance.n inst = 0 then nan
  else float_of_int (total_response inst s) /. float_of_int (Instance.n inst)

let max_response inst s = Array.fold_left max 0 (response_times inst s)

let weighted_total_response inst ~weights s =
  if Array.length weights <> Instance.n inst then
    invalid_arg "Schedule.weighted_total_response: one weight per flow";
  let rts = response_times inst s in
  let acc = ref 0. in
  Array.iteri (fun e rt -> acc := !acc +. (weights.(e) *. float_of_int rt)) rts;
  !acc

let flows_per_round inst s =
  ignore inst;
  let horizon = makespan s in
  let rounds = Array.make horizon [] in
  for i = Array.length s.slots - 1 downto 0 do
    let r = s.slots.(i) in
    if r >= 0 then rounds.(r) <- i :: rounds.(r)
  done;
  rounds

let render_timeline inst s =
  require_assigned inst s;
  let load_in, load_out = loads inst s in
  let horizon = makespan s in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "        ";
  for t = 0 to horizon - 1 do
    Buffer.add_string buf (Printf.sprintf "%3d" t)
  done;
  Buffer.add_char buf '\n';
  let row label caps loads p =
    Buffer.add_string buf (Printf.sprintf "%s %3d | " label p);
    for t = 0 to horizon - 1 do
      let l = loads.(p).(t) in
      if l = 0 then Buffer.add_string buf "  ."
      else if l > caps.(p) then Buffer.add_string buf (Printf.sprintf "%2d!" l)
      else Buffer.add_string buf (Printf.sprintf "%3d" l)
    done;
    Buffer.add_char buf '\n'
  in
  for p = 0 to inst.Instance.m - 1 do
    row "in " inst.Instance.cap_in load_in p
  done;
  for p = 0 to inst.Instance.m' - 1 do
    row "out" inst.Instance.cap_out load_out p
  done;
  Buffer.contents buf

let pp fmt s =
  Format.fprintf fmt "schedule[%d flows, makespan %d]" (Array.length s.slots) (makespan s)
