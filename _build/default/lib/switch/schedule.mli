(** Schedules and pseudo-schedules.

    A schedule assigns every flow to one round (the paper's integral
    [sigma]); during that round the flow consumes its demand at both
    endpoint ports.  A {e pseudo-schedule} has the same shape but is allowed
    to overload ports — the intermediate object produced by iterative
    rounding (Remark 3.4), which Theorem 1 then converts into a valid
    schedule under augmented capacities.  Validation and the backlog
    measurements of Lemma 3.3/3.7 live here. *)

type t

val make : int array -> t
(** [make assignment] wraps a per-flow round assignment (index = flow id).
    Every entry must be [>= 0]. *)

val unassigned : int -> t
(** [unassigned n] is an all-unassigned partial schedule (entries [-1]);
    fill it with {!assign}. *)

val assign : t -> int -> int -> unit
(** [assign s flow round] sets the round of a flow (mutable builder). *)

val round_of : t -> int -> int
(** Round of a flow id; [-1] when unassigned. *)

val assignment : t -> int array
(** A copy of the underlying assignment array. *)

val is_complete : t -> bool
val makespan : t -> int
(** Last used round + 1; [0] for an empty or unassigned schedule. *)

val validate : Instance.t -> t -> (unit, string) result
(** Full feasibility check: all flows assigned, releases respected, and for
    every port and round the total scheduled demand is within capacity. *)

val is_valid : Instance.t -> t -> bool

val port_overflow : Instance.t -> t -> int
(** Maximum over ports and rounds of [load - capacity] (0 when feasible).
    Releases and completeness must hold — checked with an exception —
    because this is the augmentation measure of Theorem 3. *)

val max_interval_excess : Instance.t -> t -> int
(** Maximum over ports p and time intervals [I] of
    [load_p(I) - c_p * |I|] — the backlog quantity bounded by
    [O(c_p log n)] in Lemma 3.7.  Computed per port by Kadane's rule on
    per-round excesses. *)

val response_times : Instance.t -> t -> int array
(** Per-flow response time [(round + 1) - release]; flows must be
    assigned. *)

val total_response : Instance.t -> t -> int
val average_response : Instance.t -> t -> float
val max_response : Instance.t -> t -> int

val weighted_total_response : Instance.t -> weights:float array -> t -> float
(** [sum of w_e * rho_e] — the weighted objective from the paper's
    complexity discussion (the [sum w_i C_i] family).  Requires one weight
    per flow. *)

val flows_per_round : Instance.t -> t -> int list array
(** Flow ids grouped by assigned round, over [0 .. makespan-1]. *)

val render_timeline : Instance.t -> t -> string
(** ASCII visualization: one row per port (inputs then outputs), one column
    per round; each cell shows the load at that port in that round, with
    ['.'] for idle and ['!'] marking overloads.  Complete schedules only. *)

val pp : Format.formatter -> t -> unit
