(** Flow requests.

    A flow is a directed edge of the switch: it enters at input port [src],
    leaves at output port [dst], carries an integral [demand], and becomes
    available at round [release] (0-based; the flow may be scheduled in any
    round [t >= release]).  Following the paper's model, a scheduled flow
    occupies one whole round and consumes [demand] units of capacity at both
    of its ports during that round. *)

type t = { id : int; src : int; dst : int; demand : int; release : int }

val make : id:int -> src:int -> dst:int -> ?demand:int -> ?release:int -> unit -> t
(** [demand] defaults to 1, [release] to 0. *)

val compare : t -> t -> int
(** Orders by release time, then id. *)

val pp : Format.formatter -> t -> unit
