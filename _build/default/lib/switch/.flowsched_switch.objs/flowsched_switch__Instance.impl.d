lib/switch/instance.ml: Array Buffer Flow Format List Printf String
