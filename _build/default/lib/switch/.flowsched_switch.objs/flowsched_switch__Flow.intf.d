lib/switch/flow.mli: Format
