lib/switch/instance.mli: Flow Format
