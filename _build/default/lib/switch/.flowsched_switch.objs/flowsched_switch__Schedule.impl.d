lib/switch/schedule.ml: Array Buffer Flow Format Instance Printf
