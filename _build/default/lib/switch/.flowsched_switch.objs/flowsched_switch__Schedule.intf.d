lib/switch/schedule.mli: Format Instance
