lib/switch/flow.ml: Format Stdlib
