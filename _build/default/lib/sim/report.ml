open Flowsched_util

let series objective (cell : Experiment.cell_result) =
  match objective with
  | `Avg -> (cell.Experiment.avg_response, cell.Experiment.lp_avg_bound)
  | `Max -> (cell.Experiment.max_response, cell.Experiment.lp_max_bound)

let table objective results =
  let policy_names =
    match results with
    | [] -> []
    | cell :: _ -> List.map fst (fst (series objective cell))
  in
  let columns =
    [ ("M/m", Table.Right); ("T", Table.Right); ("flows", Table.Right) ]
    @ List.concat_map
        (fun n -> [ (n, Table.Right); (n ^ "/LP", Table.Right) ])
        policy_names
    @ [ ("LP bound", Table.Right) ]
  in
  let t = Table.create columns in
  let last_congestion = ref nan in
  List.iter
    (fun (cell : Experiment.cell_result) ->
      let cfg = cell.Experiment.config in
      let congestion = cfg.Experiment.rate /. float_of_int cfg.Experiment.m in
      if (not (Float.is_nan !last_congestion)) && congestion <> !last_congestion then
        Table.add_separator t;
      last_congestion := congestion;
      let values, lp = series objective cell in
      Table.add_row t
        ([
           Table.cell_float ~decimals:2 congestion;
           string_of_int cfg.Experiment.rounds;
           Table.cell_float ~decimals:1 cell.Experiment.flows_mean;
         ]
        @ List.concat_map
            (fun (_, v) -> [ Table.cell_float v; Table.cell_ratio v lp ])
            values
        @ [ Table.cell_float lp ]))
    results;
  Table.render t

let fig6_table results = table `Avg results
let fig7_table results = table `Max results

let csv ~objective results =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "m,rate,rounds,tries,flows,policy,value,lp_bound\n";
  List.iter
    (fun (cell : Experiment.cell_result) ->
      let cfg = cell.Experiment.config in
      let values, lp = series objective cell in
      List.iter
        (fun (name, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%g,%d,%d,%g,%s,%g,%g\n" cfg.Experiment.m cfg.Experiment.rate
               cfg.Experiment.rounds cfg.Experiment.tries cell.Experiment.flows_mean name v lp))
        values)
    results;
  Buffer.contents buf
