lib/sim/report.ml: Buffer Experiment Float Flowsched_util List Printf Table
