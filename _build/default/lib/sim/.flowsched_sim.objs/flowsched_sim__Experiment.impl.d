lib/sim/experiment.ml: Array Engine Flowsched_core Flowsched_online Flowsched_switch Flowsched_util Hashtbl Instance List Printf Stats Workload
