lib/sim/engine.mli: Flowsched_online Flowsched_switch
