lib/sim/report.mli: Experiment
