lib/sim/experiment.mli: Flowsched_online
