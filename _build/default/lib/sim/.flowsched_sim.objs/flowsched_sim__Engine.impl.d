lib/sim/engine.ml: Array Flow Flowsched_online Flowsched_switch Hashtbl Instance List Printf Schedule
