lib/sim/workload.ml: Array Flowsched_switch Flowsched_util Instance List Prng Sampling
