lib/sim/workload.mli: Flowsched_switch
