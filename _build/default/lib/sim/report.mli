(** Rendering experiment results as the paper's figures (text form). *)

val fig6_table : Experiment.cell_result list -> string
(** One row per cell: average response time per heuristic, the LP (1)–(4)
    lower bound, and each heuristic's ratio to the LP — the content of the
    paper's Figure 6 panels. *)

val fig7_table : Experiment.cell_result list -> string
(** Same layout for maximum response time against the binary-search LP
    bound — Figure 7. *)

val csv : objective:[ `Avg | `Max ] -> Experiment.cell_result list -> string
(** Machine-readable dump: [m,rate,rounds,tries,flows,policy,value,lp]. *)
