(** Workload generation (§5.2.1).

    "for each time unit t = 0..T-1, a Poisson distribution of mean M is used
    to generate flows released at time t.  For each such flow, an input port
    and an output port is selected uniformly at random."  Demands are unit
    by default; {!poisson_with_demands} adds bounded random demands for the
    Theorem 3 experiments. *)

val poisson :
  m:int -> rate:float -> rounds:int -> seed:int -> Flowsched_switch.Instance.t
(** Unit-capacity, unit-demand [m x m] switch; [rate] is the paper's M.
    The result can have zero flows for tiny [rate * rounds]. *)

val poisson_with_demands :
  m:int -> rate:float -> rounds:int -> max_demand:int -> seed:int ->
  Flowsched_switch.Instance.t
(** Same arrivals, uniform demands in [\[1, max_demand\]], all port
    capacities set to [max_demand] so every flow fits. *)

val uniform_total :
  m:int -> n:int -> max_release:int -> seed:int -> Flowsched_switch.Instance.t
(** Exactly [n] unit flows with uniform ports and uniform releases in
    [\[0, max_release\]] — the workload used for offline algorithm tests
    where a fixed instance size matters more than an arrival process. *)

val skewed :
  m:int -> rate:float -> rounds:int -> ?alpha:float -> seed:int -> unit ->
  Flowsched_switch.Instance.t
(** Poisson arrivals whose endpoints follow a Zipf(alpha) popularity
    distribution over ports (default [alpha = 1.0]) instead of the paper's
    uniform choice — the "distribution of input instances" direction from
    the paper's future-work section.  Hot ports concentrate load, which
    stresses the heuristics' queue management far more than uniform
    traffic. *)

val hotspot :
  m:int -> rate:float -> rounds:int -> ?fraction:float -> seed:int -> unit ->
  Flowsched_switch.Instance.t
(** Poisson arrivals where a [fraction] (default 0.5) of all flows target
    output port 0 (an incast hotspot, e.g. a storage head node); sources
    and the remaining destinations stay uniform. *)
