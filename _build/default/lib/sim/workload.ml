open Flowsched_switch
open Flowsched_util

let poisson_specs g ~m ~rate ~rounds ~demand_of =
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      specs := (Prng.int g m, Prng.int g m, demand_of (), t) :: !specs
    done
  done;
  List.rev !specs

let poisson ~m ~rate ~rounds ~seed =
  if m < 1 || rounds < 1 || rate < 0. then invalid_arg "Workload.poisson";
  let g = Prng.create seed in
  Instance.of_flows ~m ~m':m (poisson_specs g ~m ~rate ~rounds ~demand_of:(fun () -> 1))

let poisson_with_demands ~m ~rate ~rounds ~max_demand ~seed =
  if max_demand < 1 then invalid_arg "Workload.poisson_with_demands";
  let g = Prng.create seed in
  let specs =
    poisson_specs g ~m ~rate ~rounds ~demand_of:(fun () -> 1 + Prng.int g max_demand)
  in
  Instance.of_flows
    ~cap_in:(Array.make m max_demand)
    ~cap_out:(Array.make m max_demand)
    ~m ~m':m specs

(* Sample from a Zipf(alpha) distribution over [0, m) via the inverse CDF
   of precomputed normalized weights. *)
let zipf_sampler g m alpha =
  let weights = Array.init m (fun i -> 1. /. ((float_of_int (i + 1)) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make m 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  fun () ->
    let u = Prng.float g in
    let rec find i = if i >= m - 1 || u <= cdf.(i) then i else find (i + 1) in
    find 0

let skewed ~m ~rate ~rounds ?(alpha = 1.0) ~seed () =
  if m < 1 || rounds < 1 || rate < 0. then invalid_arg "Workload.skewed";
  let g = Prng.create seed in
  let sample = zipf_sampler g m alpha in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      specs := (sample (), sample (), 1, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

let hotspot ~m ~rate ~rounds ?(fraction = 0.5) ~seed () =
  if m < 1 || rounds < 1 || rate < 0. || fraction < 0. || fraction > 1. then
    invalid_arg "Workload.hotspot";
  let g = Prng.create seed in
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let k = Sampling.poisson g rate in
    for _ = 1 to k do
      let dst = if Prng.float g < fraction then 0 else Prng.int g m in
      specs := (Prng.int g m, dst, 1, t) :: !specs
    done
  done;
  Instance.of_flows ~m ~m':m (List.rev !specs)

let uniform_total ~m ~n ~max_release ~seed =
  if m < 1 || n < 0 || max_release < 0 then invalid_arg "Workload.uniform_total";
  let g = Prng.create seed in
  let specs =
    List.init n (fun _ -> (Prng.int g m, Prng.int g m, 1, Prng.int g (max_release + 1)))
  in
  Instance.of_flows ~m ~m':m specs
