open Flowsched_switch
open Flowsched_util

type cell_config = {
  m : int;
  rate : float;
  rounds : int;
  tries : int;
  seed : int;
  with_lp : bool;
}

type cell_result = {
  config : cell_config;
  flows_mean : float;
  avg_response : (string * float) list;
  max_response : (string * float) list;
  lp_avg_bound : float;
  lp_max_bound : float;
}

let run_cell ~policies config =
  let per_policy_avg = Hashtbl.create 8 and per_policy_max = Hashtbl.create 8 in
  let lp_avgs = ref [] and lp_maxs = ref [] in
  let flow_counts = ref [] in
  let names = List.map (fun (p : Flowsched_online.Policy.t) -> p.Flowsched_online.Policy.name) policies in
  List.iter
    (fun name ->
      Hashtbl.replace per_policy_avg name [];
      Hashtbl.replace per_policy_max name [])
    names;
  for trial = 0 to config.tries - 1 do
    let seed = config.seed + (1000 * trial) in
    let inst = Workload.poisson ~m:config.m ~rate:config.rate ~rounds:config.rounds ~seed in
    if Instance.n inst > 0 then begin
      flow_counts := float_of_int (Instance.n inst) :: !flow_counts;
      let max_makespan = ref 0 in
      List.iter
        (fun (p : Flowsched_online.Policy.t) ->
          let r = Engine.run_instance p inst in
          max_makespan := max !max_makespan r.Engine.makespan;
          let name = p.Flowsched_online.Policy.name in
          Hashtbl.replace per_policy_avg name
            (Engine.average_response r :: Hashtbl.find per_policy_avg name);
          Hashtbl.replace per_policy_max name
            (float_of_int (Engine.max_response r) :: Hashtbl.find per_policy_max name))
        policies;
      if config.with_lp then begin
        (* Horizon must cover the heuristics' schedules for Lemma 3.1 to
           bound them. *)
        let horizon = max (Flowsched_core.Art_lp.default_horizon inst) !max_makespan in
        let bound = Flowsched_core.Art_lp.lower_bound ~horizon inst in
        lp_avgs := bound.Flowsched_core.Art_lp.average :: !lp_avgs;
        let rho = Flowsched_core.Mrt_scheduler.min_fractional_rho inst in
        lp_maxs := float_of_int rho :: !lp_maxs
      end
    end
  done;
  let mean = function [] -> nan | xs -> Stats.mean (Array.of_list xs) in
  {
    config;
    flows_mean = mean !flow_counts;
    avg_response = List.map (fun n -> (n, mean (Hashtbl.find per_policy_avg n))) names;
    max_response = List.map (fun n -> (n, mean (Hashtbl.find per_policy_max n))) names;
    lp_avg_bound = (if config.with_lp then mean !lp_avgs else nan);
    lp_max_bound = (if config.with_lp then mean !lp_maxs else nan);
  }

let run_grid ~policies ?(progress = fun _ -> ()) configs =
  List.map
    (fun config ->
      progress
        (Printf.sprintf "cell m=%d rate=%.1f T=%d lp=%b" config.m config.rate config.rounds
           config.with_lp);
      run_cell ~policies config)
    configs

let fig6_grid ?(m = 6) ?(tries = 3) ?(seed = 1) ?(lp_rounds_limit = 12) ~congestion ~rounds () =
  List.concat_map
    (fun c ->
      List.map
        (fun t ->
          {
            m;
            rate = c *. float_of_int m;
            rounds = t;
            tries;
            seed = seed + int_of_float (c *. 1_000_000.) + (17 * t);
            with_lp = t <= lp_rounds_limit;
          })
        rounds)
    congestion
