lib/lp/lp_io.ml: Array Buffer List Model Printf Simplex String
