(** Two-phase revised simplex over {!Model}.

    The solver maintains a dense basis inverse updated in product form with
    periodic refactorization, prices columns with Dantzig's rule, and falls
    back to Bland's rule after long degenerate streaks so it cannot cycle.
    Optimal results are vertex (basic feasible) solutions: at most
    [num_rows] variables are non-zero, which is exactly the property the
    iterative-rounding procedures of the paper need from the LP oracle. *)

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : float;  (** Meaningful only when [status = Optimal]. *)
  values : float array;  (** Structural variable values, length [num_vars]. *)
  duals : float array;  (** One dual per model row, phase-2 prices. *)
  iterations : int;
}

exception Iteration_limit of int
(** Raised if the pivot count exceeds the caller's budget — indicates a bug
    or a degenerate pathological instance, not a normal outcome. *)

val solve : ?max_iters:int -> Model.t -> result
(** [solve model] minimizes the model objective.  [max_iters] defaults to
    [200 * (rows + vars) + 5000]. *)

val solve_or_fail : ?max_iters:int -> Model.t -> result
(** Like {!solve} but raises [Failure] on [Infeasible]/[Unbounded]; handy
    where feasibility is known by construction. *)
