(** Serialization of {!Model} values in the CPLEX LP text format.

    Useful for debugging the generated relaxations and for cross-checking
    our simplex against an external solver (the format is accepted by
    Gurobi, CPLEX, GLPK, HiGHS, lp_solve, ...).  Variable and row names are
    sanitized to the character set the format allows. *)

val to_lp_format : Model.t -> string
(** The model as an LP-format string: a Minimize objective, Subject To
    rows, and the implicit [x >= 0] bounds. *)

val write_file : Model.t -> string -> unit
(** [write_file model path] writes {!to_lp_format} to [path]. *)

val solution_summary : Model.t -> Simplex.result -> string
(** Human-readable solve report: status, objective, the non-zero variables
    with names, and any binding rows — handy in the CLI and while debugging
    rounding steps. *)
