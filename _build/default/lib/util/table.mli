(** Aligned plain-text tables for experiment and benchmark reports. *)

type align = Left | Right

type t

val create : (string * align) list -> t
(** [create columns] starts a table with the given header labels and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
(** Renders the table with a header rule, all columns padded to width. *)

val print : t -> unit
(** [render] followed by [print_string] and a flush. *)

val cell_float : ?decimals:int -> float -> string
(** Formats a float for a table cell, using ["-"] for [nan]. *)

val cell_ratio : float -> float -> string
(** [cell_ratio x base] formats [x /. base] as e.g. ["1.73x"]; ["-"] when the
    base is zero or either value is [nan]. *)
