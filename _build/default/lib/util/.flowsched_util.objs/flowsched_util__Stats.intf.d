lib/util/stats.mli:
