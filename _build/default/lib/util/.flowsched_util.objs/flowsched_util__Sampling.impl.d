lib/util/sampling.ml: Array Float Int Prng Set
