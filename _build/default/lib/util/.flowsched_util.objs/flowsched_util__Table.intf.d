lib/util/table.mli:
