lib/util/prng.mli:
