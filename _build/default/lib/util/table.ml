type align = Left | Right

type row = Cells of string array | Rule

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  { headers; aligns; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  let len = List.length cells in
  if len > n then invalid_arg "Table.add_row: too many cells";
  let arr = Array.make n "" in
  List.iteri (fun i c -> arr.(i) <- c) cells;
  t.rows <- Cells arr :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let render t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let rows = List.rev t.rows in
  List.iter
    (function
      | Rule -> ()
      | Cells cells ->
          Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells)
    rows;
  let buf = Buffer.create 256 in
  let pad align width s =
    let fill = width - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let emit_cells cells =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cells.(i))
    done;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let rule () = Buffer.add_string buf (String.make total_width '-' ^ "\n") in
  emit_cells t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cells -> emit_cells cells) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let cell_ratio x base =
  if Float.is_nan x || Float.is_nan base || base = 0. then "-"
  else Printf.sprintf "%.2fx" (x /. base)
