(** Deterministic pseudo-random number generation.

    The generator is xoshiro256** seeded through splitmix64, so a single
    integer seed yields a well-mixed 256-bit state.  All simulation and
    workload-generation code in flowsched draws from this module rather than
    [Stdlib.Random] so that every experiment is reproducible from its seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an arbitrary integer seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose state is derived
    from (and decorrelated against) [g].  Use it to give independent streams
    to independent experiment cells. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53-bit precision. *)

val bool : t -> bool
