(** Random-variate sampling on top of {!Prng}. *)

val poisson : Prng.t -> float -> int
(** [poisson g mean] draws from a Poisson distribution.  Uses Knuth's
    multiplicative method for small means and the PTRS transformed-rejection
    method for large means, so it is exact and fast across the whole range
    used by the workload generator. *)

val exponential : Prng.t -> float -> float
(** [exponential g rate] draws from Exp(rate). *)

val geometric : Prng.t -> float -> int
(** [geometric g p] is the number of failures before the first success of a
    Bernoulli(p) sequence, for [0 < p <= 1]. *)

val uniform_pair_distinct : Prng.t -> int -> int * int
(** [uniform_pair_distinct g n] draws an ordered pair of distinct values in
    [\[0, n)]; requires [n >= 2]. *)

val choice : Prng.t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : Prng.t -> int -> int -> int list
(** [sample_without_replacement g k n] draws [k] distinct values from
    [\[0, n)], in increasing order; requires [0 <= k <= n]. *)
