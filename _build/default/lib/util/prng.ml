type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into the 256-bit state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not start from the all-zero state; the splitmix expansion
     of any seed cannot produce it, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits keeps the distribution exactly
     uniform for any bound. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 g) mask) in
    let q = r / bound and v = r mod bound in
    if (q + 1) * bound - 1 <= max_int || q * bound + bound - 1 >= 0 then v
    else draw ()
  in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (bits64 g) (Int64.of_int (bound - 1)))
  else draw ()

let float g =
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L
