let poisson_small g mean =
  let limit = exp (-.mean) in
  let rec loop k prod =
    let prod = prod *. Prng.float g in
    if prod <= limit then k else loop (k + 1) prod
  in
  loop 0 1.0

(* PTRS (Hörmann 1993): transformed rejection for Poisson with mean >= 10. *)
let poisson_ptrs g mean =
  let b = 0.931 +. (2.53 *. sqrt mean) in
  let a = -0.059 +. (0.02483 *. b) in
  let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
  let vr = 0.9277 -. (3.6224 /. (b -. 2.)) in
  let log_mean = log mean in
  let rec loop () =
    let u = Prng.float g -. 0.5 in
    let v = Prng.float g in
    let us = 0.5 -. abs_float u in
    let k = floor ((((2. *. a) /. us) +. b) *. u +. mean +. 0.43) in
    if us >= 0.07 && v <= vr then int_of_float k
    else if k < 0. || (us < 0.013 && v > us) then loop ()
    else
      let lhs = log (v *. inv_alpha /. ((a /. (us *. us)) +. b)) in
      let lgamma_k1 =
        (* log Γ(k+1) via Stirling with correction; exact enough for the
           acceptance test at mean >= 10. *)
        let x = k +. 1. in
        ((x -. 0.5) *. log x) -. x
        +. (0.5 *. log (2. *. Float.pi))
        +. (1. /. (12. *. x))
        -. (1. /. (360. *. (x ** 3.)))
      in
      let rhs = (k *. log_mean) -. mean -. lgamma_k1 in
      if lhs <= rhs then int_of_float k else loop ()
  in
  loop ()

let poisson g mean =
  if mean < 0. then invalid_arg "Sampling.poisson: negative mean";
  if mean = 0. then 0
  else if mean < 10. then poisson_small g mean
  else poisson_ptrs g mean

let exponential g rate =
  if rate <= 0. then invalid_arg "Sampling.exponential: rate must be positive";
  -.log1p (-.Prng.float g) /. rate

let geometric g p =
  if p <= 0. || p > 1. then invalid_arg "Sampling.geometric: p not in (0,1]";
  if p = 1. then 0
  else
    let u = Prng.float g in
    int_of_float (floor (log1p (-.u) /. log1p (-.p)))

let uniform_pair_distinct g n =
  if n < 2 then invalid_arg "Sampling.uniform_pair_distinct: need n >= 2";
  let a = Prng.int g n in
  let b = Prng.int g (n - 1) in
  let b = if b >= a then b + 1 else b in
  (a, b)

let choice g arr =
  if Array.length arr = 0 then invalid_arg "Sampling.choice: empty array";
  arr.(Prng.int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Sampling.sample_without_replacement";
  (* Floyd's algorithm: k insertions into a set, O(k) expected. *)
  let module IS = Set.Make (Int) in
  let set = ref IS.empty in
  for j = n - k to n - 1 do
    let t = Prng.int g (j + 1) in
    if IS.mem t !set then set := IS.add j !set else set := IS.add t !set
  done;
  IS.elements !set
