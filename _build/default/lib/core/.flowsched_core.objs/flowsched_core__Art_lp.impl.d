lib/core/art_lp.ml: Array Flow Flowsched_lp Flowsched_switch Hashtbl Instance List Printf
