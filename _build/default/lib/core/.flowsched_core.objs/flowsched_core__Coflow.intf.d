lib/core/coflow.mli: Flowsched_switch
