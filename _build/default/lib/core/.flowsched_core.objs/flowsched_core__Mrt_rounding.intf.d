lib/core/mrt_rounding.mli: Flowsched_switch Mrt_lp
