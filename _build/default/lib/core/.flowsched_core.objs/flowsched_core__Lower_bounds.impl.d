lib/core/lower_bounds.ml: Flowsched_switch Instance List
