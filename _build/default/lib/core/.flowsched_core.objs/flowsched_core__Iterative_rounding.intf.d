lib/core/iterative_rounding.mli: Flowsched_switch
