lib/core/exact.ml: Array Flow Flowsched_switch Instance Schedule
