lib/core/open_problem.ml: Array Exact Flow Flowsched_bipartite Flowsched_switch Flowsched_util Instance List Mrt_scheduler Prng Sampling Schedule
