lib/core/mrt_rounding.ml: Array Flow Flowsched_switch Hashtbl Instance List Mrt_lp Schedule
