lib/core/iterative_rounding.ml: Array Art_lp Float Flow Flowsched_lp Flowsched_switch Hashtbl Instance List Printf Schedule
