lib/core/mrt_lp.mli: Flowsched_switch Hashtbl
