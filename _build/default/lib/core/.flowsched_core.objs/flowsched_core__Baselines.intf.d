lib/core/baselines.mli: Flowsched_switch
