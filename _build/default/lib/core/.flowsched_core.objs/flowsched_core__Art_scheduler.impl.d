lib/core/art_scheduler.ml: Array Art_lp Flow Flowsched_bipartite Flowsched_switch Instance Iterative_rounding List Schedule
