lib/core/hardness.ml: Array Flow Flowsched_switch Hashtbl Instance List Printf Schedule
