lib/core/mrt_scheduler.mli: Flowsched_switch Mrt_rounding
