lib/core/mrt_scheduler.ml: Art_lp Flowsched_switch Instance Mrt_lp Mrt_rounding Schedule
