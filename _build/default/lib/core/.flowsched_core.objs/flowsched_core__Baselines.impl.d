lib/core/baselines.ml: Array Flow Flowsched_bipartite Flowsched_switch Hashtbl Instance List Schedule
