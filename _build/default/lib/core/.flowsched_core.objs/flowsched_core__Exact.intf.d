lib/core/exact.mli: Flowsched_switch
