lib/core/open_problem.mli: Flowsched_switch
