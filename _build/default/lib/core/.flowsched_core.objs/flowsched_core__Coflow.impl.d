lib/core/coflow.ml: Array Baselines Flow Flowsched_switch Flowsched_util Instance List Schedule
