lib/core/lower_bounds.mli: Flowsched_switch
