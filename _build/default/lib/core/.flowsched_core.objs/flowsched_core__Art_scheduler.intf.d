lib/core/art_scheduler.mli: Flowsched_switch Iterative_rounding
