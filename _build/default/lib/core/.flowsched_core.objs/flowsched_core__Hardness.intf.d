lib/core/hardness.mli: Flowsched_switch
