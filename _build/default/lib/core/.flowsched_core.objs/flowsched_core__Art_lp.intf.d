lib/core/art_lp.mli: Flowsched_lp Flowsched_switch
