open Flowsched_switch

(* Flows ordered by release then id; DFS assigns them rounds while keeping
   running port loads. *)
let order inst =
  let ids = Array.init (Instance.n inst) (fun i -> i) in
  Array.sort
    (fun a b -> Flow.compare inst.Instance.flows.(a) inst.Instance.flows.(b))
    ids;
  ids

type loads = { load_in : int array array; load_out : int array array }

let make_loads inst horizon =
  {
    load_in = Array.make_matrix inst.Instance.m horizon 0;
    load_out = Array.make_matrix inst.Instance.m' horizon 0;
  }

let fits inst loads (f : Flow.t) t =
  loads.load_in.(f.Flow.src).(t) + f.Flow.demand <= inst.Instance.cap_in.(f.Flow.src)
  && loads.load_out.(f.Flow.dst).(t) + f.Flow.demand <= inst.Instance.cap_out.(f.Flow.dst)

let place loads (f : Flow.t) t sign =
  loads.load_in.(f.Flow.src).(t) <- loads.load_in.(f.Flow.src).(t) + (sign * f.Flow.demand);
  loads.load_out.(f.Flow.dst).(t) <- loads.load_out.(f.Flow.dst).(t) + (sign * f.Flow.demand)

let feasible_with_rho inst ~rho =
  if rho < 1 then invalid_arg "Exact.feasible_with_rho: rho must be >= 1";
  let n = Instance.n inst in
  if n = 0 then Some (Schedule.make [||])
  else begin
    let horizon = Instance.last_release inst + rho in
    let loads = make_loads inst horizon in
    let ids = order inst in
    let assignment = Array.make n (-1) in
    let rec go k =
      if k = n then true
      else begin
        let f = inst.Instance.flows.(ids.(k)) in
        let rec try_round t =
          if t >= f.Flow.release + rho then false
          else if fits inst loads f t then begin
            place loads f t 1;
            assignment.(ids.(k)) <- t;
            if go (k + 1) then true
            else begin
              place loads f t (-1);
              assignment.(ids.(k)) <- -1;
              try_round (t + 1)
            end
          end
          else try_round (t + 1)
        in
        try_round f.Flow.release
      end
    in
    if go 0 then Some (Schedule.make assignment) else None
  end

let min_max_response ?hi inst =
  let hi = match hi with Some h -> h | None -> Instance.horizon inst in
  let rec try_rho rho =
    if rho > hi then None
    else
      match feasible_with_rho inst ~rho with
      | Some s -> Some (rho, s)
      | None -> try_rho (rho + 1)
  in
  try_rho 1

let min_total_response ?horizon inst =
  let n = Instance.n inst in
  if n = 0 then (0, Schedule.make [||])
  else begin
    let horizon = match horizon with Some h -> h | None -> Instance.horizon inst in
    let loads = make_loads inst horizon in
    let ids = order inst in
    let assignment = Array.make n (-1) in
    let best_cost = ref max_int in
    let best = ref None in
    let rec go k cost =
      (* every remaining flow has response >= 1 *)
      if cost + (n - k) >= !best_cost then ()
      else if k = n then begin
        best_cost := cost;
        best := Some (Array.copy assignment)
      end
      else begin
        let f = inst.Instance.flows.(ids.(k)) in
        for t = f.Flow.release to horizon - 1 do
          if fits inst loads f t then begin
            place loads f t 1;
            assignment.(ids.(k)) <- t;
            go (k + 1) (cost + (t + 1 - f.Flow.release));
            place loads f t (-1);
            assignment.(ids.(k)) <- -1
          end
        done
      end
    in
    go 0 0;
    match !best with
    | Some a -> (!best_cost, Schedule.make a)
    | None -> failwith "Exact.min_total_response: no schedule within horizon"
  end
