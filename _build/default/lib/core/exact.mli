(** Exact solvers by exhaustive search — test oracles.

    Exponential-time branch and bound over per-flow round choices.  Only
    meant for tiny instances (roughly n <= 10); used by the test suite to
    validate LP lower bounds, approximation guarantees, and the hardness
    reduction, and by the benches to report true optima on small cells. *)

val feasible_with_rho : Flowsched_switch.Instance.t -> rho:int ->
  Flowsched_switch.Schedule.t option
(** A schedule with maximum response time at most [rho] under the original
    capacities, or [None] if none exists. *)

val min_max_response : ?hi:int -> Flowsched_switch.Instance.t ->
  (int * Flowsched_switch.Schedule.t) option
(** Smallest achievable maximum response time, by trying rho = 1, 2, ...
    up to [hi] (default: a horizon where the serial schedule fits). *)

val min_total_response : ?horizon:int -> Flowsched_switch.Instance.t ->
  int * Flowsched_switch.Schedule.t
(** Minimum total response time, by branch and bound over assignments within
    [horizon] (default: serial-schedule horizon, which always contains an
    optimal schedule). *)
