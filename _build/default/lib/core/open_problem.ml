open Flowsched_switch
open Flowsched_util

let interval_slack inst =
  let horizon = Instance.last_release inst + 1 in
  let count_in = Array.make_matrix inst.Instance.m horizon 0 in
  let count_out = Array.make_matrix inst.Instance.m' horizon 0 in
  Array.iter
    (fun (f : Flow.t) ->
      count_in.(f.Flow.src).(f.Flow.release) <-
        count_in.(f.Flow.src).(f.Flow.release) + 1;
      count_out.(f.Flow.dst).(f.Flow.release) <-
        count_out.(f.Flow.dst).(f.Flow.release) + 1)
    inst.Instance.flows;
  let worst = ref min_int in
  let scan counts =
    Array.iter
      (fun per_round ->
        (* Kadane over (count_t - 1): the best interval's release surplus *)
        let best_ending = ref 0 in
        Array.iter
          (fun c ->
            let excess = c - 1 in
            best_ending := max excess (!best_ending + excess);
            worst := max !worst !best_ending)
          per_round)
      counts
  in
  scan count_in;
  scan count_out;
  if !worst = min_int then 0 else max !worst 0

let generate ~seed ~m ~rounds ?(density = 0.7) ?(perturbations = -1) () =
  let g = Prng.create seed in
  let perturbations = if perturbations < 0 then m * rounds / 2 else perturbations in
  (* One random partial matching per round: a random permutation filtered by
     density, so each port sees at most one release per round. *)
  let specs = ref [] in
  for t = 0 to rounds - 1 do
    let perm = Array.init m (fun i -> i) in
    Sampling.shuffle g perm;
    Array.iteri
      (fun src dst -> if Prng.float g < density then specs := (src, dst, 1, t) :: !specs)
      perm
  done;
  let specs = Array.of_list (List.rev !specs) in
  let build () =
    Instance.of_flows ~m ~m':m (Array.to_list specs)
  in
  if Array.length specs = 0 then Instance.of_flows ~m ~m':m [ (0, 0, 1, 0) ]
  else begin
    (* Perturb: advance random releases while the +1 slack holds. *)
    for _ = 1 to perturbations do
      let i = Prng.int g (Array.length specs) in
      let src, dst, d, r = specs.(i) in
      if r > 0 then begin
        let r' = Prng.int g r in
        specs.(i) <- (src, dst, d, r');
        if interval_slack (build ()) > 1 then specs.(i) <- (src, dst, d, r)
      end
    done;
    build ()
  end

type study = {
  trials : int;
  flows_total : int;
  worst_slack : int;
  worst_fractional_rho : int;
  worst_heuristic : int;
  worst_exact : int option;
}

(* MinRTime as an offline greedy: per round, a max-weight matching of
   pending flows weighted by waiting time (reusing the baseline machinery
   keeps this module independent of the online/sim libraries). *)
let minrtime_like inst =
  let n = Instance.n inst in
  let schedule = Schedule.unassigned n in
  let remaining = ref n in
  let t = ref 0 in
  while !remaining > 0 do
    let pending =
      Array.to_list inst.Instance.flows
      |> List.filter (fun (f : Flow.t) ->
             f.Flow.release <= !t && Schedule.round_of schedule f.Flow.id < 0)
    in
    if pending <> [] then begin
      let flows = Array.of_list pending in
      let pairs = Array.map (fun (f : Flow.t) -> (f.Flow.src, f.Flow.dst)) flows in
      let g = Flowsched_bipartite.Bgraph.create ~nl:inst.Instance.m ~nr:inst.Instance.m' pairs in
      let weights =
        Array.map (fun (f : Flow.t) -> float_of_int (!t - f.Flow.release + 1)) flows
      in
      let matched = Flowsched_bipartite.Weighted_matching.max_weight g weights in
      List.iter
        (fun e ->
          Schedule.assign schedule flows.(e).Flow.id !t;
          decr remaining)
        matched
    end;
    incr t
  done;
  schedule

let study ~seed ~m ~rounds ~trials =
  let worst_slack = ref 0 in
  let worst_frac = ref 0 in
  let worst_heur = ref 0 in
  let worst_exact = ref None in
  let flows_total = ref 0 in
  for trial = 0 to trials - 1 do
    let inst = generate ~seed:(seed + (31 * trial)) ~m ~rounds () in
    flows_total := !flows_total + Instance.n inst;
    worst_slack := max !worst_slack (interval_slack inst);
    worst_frac := max !worst_frac (Mrt_scheduler.min_fractional_rho inst);
    let heur = minrtime_like inst in
    worst_heur := max !worst_heur (Schedule.max_response inst heur);
    if Instance.n inst <= 14 then begin
      match Exact.min_max_response inst with
      | Some (rho, _) ->
          worst_exact :=
            Some (match !worst_exact with Some w -> max w rho | None -> rho)
      | None -> ()
    end
  done;
  {
    trials;
    flows_total = !flows_total;
    worst_slack = !worst_slack;
    worst_fractional_rho = !worst_frac;
    worst_heuristic = !worst_heur;
    worst_exact = !worst_exact;
  }
