open Flowsched_switch

type diagnostics = {
  h : int;
  blocks : int;
  spill_rounds : int;
  max_classes : int;
  rounding : Iterative_rounding.diagnostics;
}

type result = {
  schedule : Schedule.t;
  augmented : Instance.t;
  pseudo : Schedule.t;
  lp_total : float;
  total_response : int;
  diagnostics : diagnostics;
}

(* Backlog of the pseudo-schedule normalized per port capacity:
   max over ports p and intervals I of ceil((load_p(I) - c_p |I|) / c_p).
   This is the K with "degree <= c_p (|I| + K)" that drives the block
   length. *)
let normalized_backlog inst pseudo =
  let horizon = Schedule.makespan pseudo in
  let load_in = Array.make_matrix inst.Instance.m horizon 0 in
  let load_out = Array.make_matrix inst.Instance.m' horizon 0 in
  Array.iteri
    (fun e (f : Flow.t) ->
      let r = Schedule.round_of pseudo e in
      load_in.(f.Flow.src).(r) <- load_in.(f.Flow.src).(r) + f.Flow.demand;
      load_out.(f.Flow.dst).(r) <- load_out.(f.Flow.dst).(r) + f.Flow.demand)
    inst.Instance.flows;
  let worst = ref 0 in
  let scan caps loads =
    Array.iteri
      (fun p per_round ->
        let best_ending = ref 0 in
        Array.iter
          (fun l ->
            let excess = l - caps.(p) in
            best_ending := max excess (!best_ending + excess);
            let normalized = (max !best_ending 0 + caps.(p) - 1) / caps.(p) in
            worst := max !worst normalized)
          per_round)
      loads
  in
  scan inst.Instance.cap_in load_in;
  scan inst.Instance.cap_out load_out;
  !worst

type factor_result = {
  schedule : Schedule.t;
  augmented : Instance.t;
  factor : int;
  lp_total : float;
  total_response : int;
  rounding : Iterative_rounding.diagnostics;
}

let solve_factor_augmented ?horizon inst =
  let pseudo, rounding = Iterative_rounding.run ?horizon inst in
  (* Smallest uniform capacity factor under which the pseudo-schedule is a
     valid schedule: driven by the per-round (not interval) overflow. *)
  let horizon_used = Schedule.makespan pseudo in
  let load_in = Array.make_matrix inst.Instance.m horizon_used 0 in
  let load_out = Array.make_matrix inst.Instance.m' horizon_used 0 in
  Array.iteri
    (fun e (f : Flow.t) ->
      let r = Schedule.round_of pseudo e in
      load_in.(f.Flow.src).(r) <- load_in.(f.Flow.src).(r) + f.Flow.demand;
      load_out.(f.Flow.dst).(r) <- load_out.(f.Flow.dst).(r) + f.Flow.demand)
    inst.Instance.flows;
  let factor = ref 1 in
  let scan caps loads =
    Array.iteri
      (fun p per_round ->
        Array.iter
          (fun l -> factor := max !factor ((l + caps.(p) - 1) / caps.(p)))
          per_round)
      loads
  in
  scan inst.Instance.cap_in load_in;
  scan inst.Instance.cap_out load_out;
  let augmented = Instance.scale_capacities inst ~mult:!factor ~add:0 in
  {
    schedule = pseudo;
    augmented;
    factor = !factor;
    lp_total = rounding.Iterative_rounding.lp_objective;
    total_response = Schedule.total_response inst pseudo;
    rounding;
  }

(* Shared conversion stage of Theorem 1: chop the pseudo-schedule into
   blocks of h rounds, decompose each block into b-matchings under the
   augmented capacities, and emit the matchings after the block. *)
let convert inst pseudo rounding ~c =
  let augmented = Instance.scale_capacities inst ~mult:(1 + c) ~add:0 in
  let n = Instance.n inst in
  let schedule = Schedule.unassigned n in
  let backlog = normalized_backlog inst pseudo in
  let h = max 1 ((backlog + c - 1) / c) in
  let pseudo_span = Schedule.makespan pseudo in
  let nblocks = (pseudo_span + h - 1) / h in
  let by_block = Array.make nblocks [] in
  Array.iteri
    (fun e (_ : Flow.t) ->
      let r = Schedule.round_of pseudo e in
      by_block.(r / h) <- e :: by_block.(r / h))
    inst.Instance.flows;
  let spill = ref 0 and blocks = ref 0 and max_classes = ref 0 in
  let next_free = ref 0 in
  Array.iteri
    (fun j members ->
      if members <> [] then begin
        incr blocks;
        let members = Array.of_list (List.rev members) in
        let pairs =
          Array.map
            (fun e ->
              let f = inst.Instance.flows.(e) in
              (f.Flow.src, f.Flow.dst))
            members
        in
        let graph = Flowsched_bipartite.Bgraph.create ~nl:inst.Instance.m ~nr:inst.Instance.m' pairs in
        let classes =
          Flowsched_bipartite.Bvn.decompose_b_matching graph
            ~cl:augmented.Instance.cap_in ~cr:augmented.Instance.cap_out
        in
        let d = Array.length classes in
        max_classes := max !max_classes d;
        (* Emission window for block j starts after the block's last pseudo
           round, so every member flow is already released. *)
        let start = max ((j + 1) * h) !next_free in
        if d > h then spill := !spill + (d - h);
        Array.iteri
          (fun k cls ->
            List.iter (fun edge -> Schedule.assign schedule members.(edge) (start + k)) cls)
          classes;
        next_free := start + d
      end)
    by_block;
  let total_response = Schedule.total_response inst schedule in
  {
    schedule;
    augmented;
    pseudo;
    lp_total = rounding.Iterative_rounding.lp_objective;
    total_response;
    diagnostics =
      { h; blocks = !blocks; spill_rounds = !spill; max_classes = !max_classes; rounding };
  }

let check_unit_demand_inputs name c inst =
  if c < 1 then invalid_arg (name ^ ": c must be a positive integer");
  if Instance.dmax inst > 1 then invalid_arg (name ^ ": Theorem 1 requires unit demands")

let solve ?(c = 1) ?horizon inst =
  check_unit_demand_inputs "Art_scheduler.solve" c inst;
  let pseudo, rounding = Iterative_rounding.run ?horizon inst in
  convert inst pseudo rounding ~c

(* Ablation: the same conversion machinery driven by a greedy pseudo-
   schedule (earliest round whose port loads are below cap + ceil(log2 n))
   instead of the LP + iterative rounding.  Quantifies what the LP stage
   buys. *)
let solve_greedy ?(c = 1) inst =
  check_unit_demand_inputs "Art_scheduler.solve_greedy" c inst;
  let n = Instance.n inst in
  let allowance =
    int_of_float (ceil (log (float_of_int (n + 1)) /. log 2.))
  in
  let horizon = Art_lp.default_horizon inst + allowance + 1 in
  let load_in = Array.make_matrix inst.Instance.m horizon 0 in
  let load_out = Array.make_matrix inst.Instance.m' horizon 0 in
  let pseudo = Schedule.unassigned n in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Flow.compare inst.Instance.flows.(a) inst.Instance.flows.(b)) order;
  Array.iter
    (fun e ->
      let f = inst.Instance.flows.(e) in
      let rec place t =
        if t >= horizon then failwith "Art_scheduler.solve_greedy: horizon exhausted"
        else if
          load_in.(f.Flow.src).(t) < inst.Instance.cap_in.(f.Flow.src) + allowance
          && load_out.(f.Flow.dst).(t) < inst.Instance.cap_out.(f.Flow.dst) + allowance
        then begin
          load_in.(f.Flow.src).(t) <- load_in.(f.Flow.src).(t) + 1;
          load_out.(f.Flow.dst).(t) <- load_out.(f.Flow.dst).(t) + 1;
          Schedule.assign pseudo e t
        end
        else place (t + 1)
      in
      place f.Flow.release)
    order;
  let rounding =
    {
      Iterative_rounding.iterations = 0;
      forced = 0;
      lp_objective = nan;
      assignment_cost =
        Array.fold_left
          (fun acc (f : Flow.t) ->
            acc
            +. float_of_int (Schedule.round_of pseudo f.Flow.id - f.Flow.release)
            +. 0.5)
          0. inst.Instance.flows;
      backlog = Schedule.max_interval_excess inst pseudo;
    }
  in
  convert inst pseudo rounding ~c
