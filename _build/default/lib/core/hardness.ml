open Flowsched_switch

type rtt = {
  teachers : int;
  classes : int;
  tsets : int list array;
  assigns : int list array;
}

let validate r =
  let ok = ref (Ok ()) in
  let fail msg = if !ok = Ok () then ok := Error msg in
  if r.teachers < 1 || r.classes < 1 then fail "need at least one teacher and class";
  if Array.length r.tsets <> r.teachers || Array.length r.assigns <> r.teachers then
    fail "tsets/assigns must have one entry per teacher";
  Array.iteri
    (fun i ts ->
      if List.length ts < 2 then fail (Printf.sprintf "teacher %d: |T_i| must be >= 2" i);
      if List.exists (fun h -> h < 1 || h > 3) ts then
        fail (Printf.sprintf "teacher %d: hours must be in {1,2,3}" i);
      if List.sort_uniq compare ts <> ts then
        fail (Printf.sprintf "teacher %d: T_i must be sorted and duplicate-free" i))
    r.tsets;
  Array.iteri
    (fun i js ->
      if List.length js <> List.length r.tsets.(i) then
        fail (Printf.sprintf "teacher %d: |g(i)| must equal |T_i|" i);
      if List.exists (fun j -> j < 0 || j >= r.classes) js then
        fail (Printf.sprintf "teacher %d: class out of range" i);
      if List.sort_uniq compare js <> List.sort compare js then
        fail (Printf.sprintf "teacher %d: g(i) must be duplicate-free" i))
    r.assigns;
  !ok

type reduction = {
  instance : Instance.t;
  rho : int;
  main_flows : (int * int * int) list;
}

(* Teachers with |T_i| = 2 and 1 in T_i get a gadget (steps 4/5); T_i =
   {2,3} is enforced by the step-3 blockers alone. *)
let gadget_kind ts =
  match ts with [ 1; 3 ] -> `Release_1_3 | [ 1; 2 ] -> `Release_1_2 | _ -> `None

let reduce r =
  (match validate r with Ok () -> () | Error msg -> invalid_arg ("Hardness.reduce: " ^ msg));
  let specials =
    Array.to_list r.tsets
    |> List.mapi (fun i ts -> (i, gadget_kind ts))
    |> List.filter (fun (_, k) -> k <> `None)
  in
  let num_specials = List.length specials in
  (* inputs: p_i (m), then w/y/z per class (3 m'), then w/y/z per special *)
  let m_in = r.teachers + (3 * r.classes) + (3 * num_specials) in
  let blocker_in j k = r.teachers + (3 * j) + k in
  let special_in s k = r.teachers + (3 * r.classes) + (3 * s) + k in
  (* outputs: q_j (m'), then q*_i per special *)
  let m_out = r.classes + num_specials in
  let special_out s = r.classes + s in
  let flows = ref [] and main_flows = ref [] and next_id = ref 0 in
  let add src dst release =
    let id = !next_id in
    incr next_id;
    flows := Flow.make ~id ~src ~dst ~release () :: !flows;
    id
  in
  (* step 1+2: main flows, released at (min T_i) - 1 (0-based) *)
  Array.iteri
    (fun i js ->
      let release = List.hd r.tsets.(i) - 1 in
      List.iter
        (fun j ->
          let id = add i j release in
          main_flows := (id, i, j) :: !main_flows)
        js)
    r.assigns;
  (* step 3: three blockers per class, released in round 4 (0-based 3) *)
  for j = 0 to r.classes - 1 do
    for k = 0 to 2 do
      ignore (add (blocker_in j k) j 3)
    done
  done;
  (* steps 4/5: gadgets for teachers with 1 in a 2-element T_i *)
  List.iteri
    (fun s (i, kind) ->
      let dashed_release, dotted_release =
        match kind with
        | `Release_1_3 -> (1, 2) (* paper rounds 2 and 3 *)
        | `Release_1_2 -> (2, 3) (* paper rounds 3 and 4 *)
        | `None -> assert false
      in
      ignore (add i (special_out s) dashed_release);
      for k = 0 to 2 do
        ignore (add (special_in s k) (special_out s) dotted_release)
      done)
    specials;
  let instance =
    Instance.create ~m:m_in ~m':m_out (Array.of_list (List.rev !flows))
  in
  { instance; rho = 3; main_flows = List.rev !main_flows }

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let find_timetable r =
  (match validate r with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hardness.find_timetable: " ^ msg));
  (* per teacher, all bijections g(i) -> T_i as (j, h) pair lists *)
  let options =
    Array.init r.teachers (fun i ->
        List.map (fun perm -> List.combine r.assigns.(i) perm) (permutations r.tsets.(i)))
  in
  let used = Hashtbl.create 16 in
  let chosen = Array.make r.teachers [] in
  let rec go i =
    if i = r.teachers then true
    else
      List.exists
        (fun pairs ->
          let free = List.for_all (fun (j, h) -> not (Hashtbl.mem used (j, h))) pairs in
          free
          && begin
               List.iter (fun (j, h) -> Hashtbl.add used (j, h) ()) pairs;
               chosen.(i) <- pairs;
               let found = go (i + 1) in
               if not found then List.iter (fun (j, h) -> Hashtbl.remove used (j, h)) pairs;
               found
             end)
        options.(i)
  in
  if go 0 then
    Some
      (Array.to_list chosen
      |> List.mapi (fun i pairs -> List.map (fun (j, h) -> (i, j, h)) pairs)
      |> List.concat)
  else None

let satisfiable r = find_timetable r <> None

let check_timetable r f =
  let ok = ref true in
  let class_hour = Hashtbl.create 16 and teacher_hour = Hashtbl.create 16 in
  let covered = Hashtbl.create 16 in
  List.iter
    (fun (i, j, h) ->
      if i < 0 || i >= r.teachers || j < 0 || j >= r.classes then ok := false
      else begin
        (* (iv): only allowed classes during available hours *)
        if not (List.mem j r.assigns.(i)) then ok := false;
        if not (List.mem h r.tsets.(i)) then ok := false;
        (* (vi)/(vii): no double-booking *)
        if Hashtbl.mem class_hour (j, h) then ok := false;
        Hashtbl.replace class_hour (j, h) ();
        if Hashtbl.mem teacher_hour (i, h) then ok := false;
        Hashtbl.replace teacher_hour (i, h) ();
        Hashtbl.replace covered (i, j) ()
      end)
    f;
  (* (v): every required meeting happens *)
  Array.iteri
    (fun i js -> List.iter (fun j -> if not (Hashtbl.mem covered (i, j)) then ok := false) js)
    r.assigns;
  !ok

let timetable_of_schedule r red schedule =
  match Schedule.validate red.instance schedule with
  | Error msg -> Error ("invalid schedule: " ^ msg)
  | Ok () ->
      if Schedule.max_response red.instance schedule > red.rho then
        Error "schedule exceeds the target response time"
      else begin
        ignore r;
        Ok
          (List.map
             (fun (id, i, j) -> (i, j, Schedule.round_of schedule id + 1))
             red.main_flows)
      end

let schedule_of_timetable r red f =
  let schedule = Schedule.unassigned (Instance.n red.instance) in
  (* main flows from f *)
  List.iter
    (fun (id, i, j) ->
      match List.find_opt (fun (i', j', _) -> i = i' && j = j') f with
      | Some (_, _, h) -> Schedule.assign schedule id (h - 1)
      | None -> failwith "Hardness.schedule_of_timetable: timetable misses a meeting")
    red.main_flows;
  (* gadget flows exactly as in the proof: blockers at rounds 4,5,6; dashed
     right at release; dotted in the three rounds after release *)
  let main_ids = List.map (fun (id, _, _) -> id) red.main_flows in
  let next_round_for_dst = Hashtbl.create 16 in
  Array.iter
    (fun (fl : Flow.t) ->
      if not (List.mem fl.Flow.id main_ids) then begin
        if fl.Flow.dst < r.classes then begin
          (* step-3 blocker: q_j occupied in rounds 3,4,5 (0-based) *)
          let base =
            match Hashtbl.find_opt next_round_for_dst fl.Flow.dst with
            | Some b -> b
            | None -> 3
          in
          Schedule.assign schedule fl.Flow.id base;
          Hashtbl.replace next_round_for_dst fl.Flow.dst (base + 1)
        end
        else begin
          (* gadget flow on q*_i: dashed runs at release, dotted in release,
             release+1, release+2 -- but dashed occupies its release round,
             so dotted flows start one later than the dashed round.  Using a
             per-destination cursor starting at the dashed release handles
             both since the dashed flow is added first. *)
          let base =
            match Hashtbl.find_opt next_round_for_dst fl.Flow.dst with
            | Some b -> max b fl.Flow.release
            | None -> fl.Flow.release
          in
          Schedule.assign schedule fl.Flow.id base;
          Hashtbl.replace next_round_for_dst fl.Flow.dst (base + 1)
        end
      end)
    red.instance.Instance.flows;
  schedule
