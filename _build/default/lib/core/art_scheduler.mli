(** FS-ART approximation (Theorem 1).

    For unit-demand flows and any positive integer [c], produces a schedule
    that is feasible when every port capacity is multiplied by [1 + c], with
    total response time at most
    [LP_opt + n * O(log n) / c <= (1 + O(log n)/c) * OPT].

    Pipeline: iterative rounding ({!Iterative_rounding.run}) yields a
    pseudo-schedule whose backlog over any interval is O(c_p log n); the
    timeline is then chopped into blocks of [h = ceil(backlog / c)] rounds,
    each block's combined bipartite multigraph is decomposed into
    b-matchings under the augmented capacities (port replication +
    König edge coloring — the Birkhoff–von Neumann step), and the matchings
    are emitted in the rounds following the block, which respects every
    release time because a flow's block ends no earlier than its pseudo
    round. *)

type diagnostics = {
  h : int;  (** Block length used for re-matching. *)
  blocks : int;  (** Number of non-empty blocks. *)
  spill_rounds : int;
      (** Rounds by which block emissions overran their window (0 when the
          backlog bound held with the chosen h, as the theorem predicts). *)
  max_classes : int;  (** Largest number of matchings needed by a block. *)
  rounding : Iterative_rounding.diagnostics;
}

type result = {
  schedule : Flowsched_switch.Schedule.t;
  augmented : Flowsched_switch.Instance.t;
      (** The instance with capacities scaled by [1 + c]; [schedule] is
          valid for it. *)
  pseudo : Flowsched_switch.Schedule.t;  (** The intermediate pseudo-schedule. *)
  lp_total : float;  (** LP lower bound on the optimal total response time. *)
  total_response : int;
  diagnostics : diagnostics;
}

val solve : ?c:int -> ?horizon:int -> Flowsched_switch.Instance.t -> result
(** [solve ~c inst] requires unit demands ([Invalid_argument] otherwise) and
    [c >= 1] (default 1). *)

val solve_greedy : ?c:int -> Flowsched_switch.Instance.t -> result
(** Ablation of the LP stage: the same block/BvN conversion driven by a
    greedy pseudo-schedule (each flow in (release, id) order at the
    earliest round whose port loads are below
    [capacity + ceil(log2 n)]) instead of iterative rounding.  The result's
    [lp_total] is [nan] (no LP was solved); compare its [total_response]
    against {!solve}'s to see what the LP buys.  Same unit-demand
    requirement. *)

type factor_result = {
  schedule : Flowsched_switch.Schedule.t;
      (** The pseudo-schedule emitted verbatim. *)
  augmented : Flowsched_switch.Instance.t;
      (** Capacities scaled by the factor below; the schedule is valid for
          it. *)
  factor : int;
      (** The uniform blow-up applied: the smallest integer k such that
          every per-round port load fits in [k * c_p]; Lemma 3.3 bounds it
          by [1 + O(log n)]. *)
  lp_total : float;
  total_response : int;
  rounding : Iterative_rounding.diagnostics;
}

val solve_factor_augmented : ?horizon:int -> Flowsched_switch.Instance.t -> factor_result
(** The paper's immediate corollary of Lemma 3.3 ("if we augment the
    capacity of every port by a factor of 1 + O(log n), then we obtain a
    valid resource-augmented schedule with optimal average response
    time"): run iterative rounding and emit the pseudo-schedule directly,
    scaling every capacity by the smallest uniform factor that absorbs the
    backlog.  Works for {e arbitrary demands}, unlike {!solve}; the
    schedule's fractional cost equals the rounding's assignment cost, which
    Lemma 3.3(2) bounds by the LP optimum — i.e. average response is
    optimal up to the relaxation gap. *)
