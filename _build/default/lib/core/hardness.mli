(** The 4/3-hardness reduction for FS-MRT (Theorem 2).

    Restricted Timetable (RTT, Even–Itai–Shamir): [m] teachers, [m']
    classes, hours [H = {1,2,3}]; teacher [i] is available during hours
    [T_i] (with [|T_i| >= 2]) and must meet each class in [g(i)] exactly
    once, where [|g(i)| = |T_i|]; no teacher or class is double-booked in an
    hour.  The reduction maps an RTT instance to a unit-capacity,
    unit-demand FS-MRT instance and target response time [rho = 3] whose
    gadget flows force every "main" flow [p_i -> q_j] into the hours [T_i],
    so the instance admits a schedule with max response 3 iff the timetable
    exists.  Since max response is integral, distinguishing 3 from 4 is
    NP-hard, which rules out approximation below 4/3.

    This module builds the reduction and converts solutions both ways, so
    the equivalence is machine-checkable on small instances. *)

type rtt = {
  teachers : int;  (** m *)
  classes : int;  (** m' *)
  tsets : int list array;  (** [T_i subseteq {1,2,3}], |T_i| >= 2, sorted. *)
  assigns : int list array;  (** [g(i) subseteq [0, m')], |g(i)| = |T_i|. *)
}

val validate : rtt -> (unit, string) result

type reduction = {
  instance : Flowsched_switch.Instance.t;
  rho : int;  (** Always 3. *)
  main_flows : (int * int * int) list;
      (** [(flow id, teacher i, class j)] for the flows encoding [f]. *)
}

val reduce : rtt -> reduction
(** Steps 1–5 of the construction (releases converted to 0-based rounds). *)

val satisfiable : rtt -> bool
(** Brute-force RTT decision (backtracking over per-teacher bijections
    [g(i) -> T_i]); exponential, for small instances. *)

val find_timetable : rtt -> (int * int * int) list option
(** Like {!satisfiable} but returns a witness [f] as [(i, j, h)] triples. *)

val check_timetable : rtt -> (int * int * int) list -> bool
(** Checks conditions (iv)–(vii) for [f] given as [(i, j, h)] triples with
    1-based hours: [h ∈ T_i], [j ∈ g(i)], full coverage of [g(i)], no
    teacher or class double-booked. *)

val timetable_of_schedule :
  rtt -> reduction -> Flowsched_switch.Schedule.t ->
  ((int * int * int) list, string) result
(** Extracts [f] from a schedule of the reduced instance, verifying that the
    schedule is valid with max response <= 3 first. *)

val schedule_of_timetable :
  rtt -> reduction -> (int * int * int) list -> Flowsched_switch.Schedule.t
(** The forward direction of the proof: a valid timetable yields a schedule
    of the reduced instance with maximum response 3 (gadget flows are placed
    as in the proof of Theorem 2). *)
