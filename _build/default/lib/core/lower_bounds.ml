open Flowsched_switch

let fig4a_static ~t ~total_rounds =
  if t < 1 || total_rounds <= t then invalid_arg "Lower_bounds.fig4a_static: need 1 <= t < total_rounds";
  let specs = ref [] in
  for r = t to total_rounds - 1 do
    specs := (1, 1, 1, r) :: !specs
  done;
  for r = t - 1 downto 0 do
    specs := (0, 1, 1, r) :: (0, 0, 1, r) :: !specs
  done;
  Instance.of_flows ~m:2 ~m':2 !specs

let fig4a_dashed_target ~pending_out0 ~pending_out1 =
  if pending_out0 > pending_out1 then 0 else 1

let fig4b_static () =
  Instance.of_flows ~m:3 ~m':4
    [
      (0, 1, 1, 0);
      (* (1,3) *)
      (0, 0, 1, 0);
      (* (1,2) *)
      (1, 2, 1, 0);
      (* (4,5) *)
      (1, 3, 1, 0);
      (* (4,6) *)
      (2, 1, 1, 1);
      (* (7,3) *)
      (2, 2, 1, 1);
      (* (7,5) *)
    ]

let fig4b_optimum = 2

let fig4b_dashed ~remaining_solid_outputs =
  List.map (fun out -> (2, out, 1)) remaining_solid_outputs
