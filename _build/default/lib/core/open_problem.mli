(** The open question of Section 6.

    "What is the maximum response time achievable for a sequence of unit
    flow requests represented by bipartite graphs G_1, ..., G_T which
    satisfy the following condition: for any interval I and any port v, the
    sum over i in I of the degrees of v in G_i is at most |I| + 1?  [...]
    Without any capacity augmentation, can every request be satisfied with
    a constant response time?"

    This module makes the question executable: a generator for instances
    satisfying the degree condition (random per-round matchings perturbed
    by early releases while the +1 slack is preserved), the slack checker,
    and a study harness that measures what response times such instances
    actually need — fractionally (LP), heuristically (MinRTime), and
    exactly on small cases.  The empirical answer feeds the ablation block
    of the bench harness. *)

val interval_slack : Flowsched_switch.Instance.t -> int
(** Max over ports [v] and release intervals [I] of
    [(number of flows at v released during I) - |I|].  The open problem's
    instance class is exactly [interval_slack <= 1]; a sequence of plain
    matchings has slack <= 0. *)

val generate :
  seed:int -> m:int -> rounds:int -> ?density:float -> ?perturbations:int -> unit ->
  Flowsched_switch.Instance.t
(** Unit-capacity, unit-demand instance with [interval_slack <= 1]:
    [rounds] random partial matchings (edge kept with probability
    [density], default 0.7) released one per round, then up to
    [perturbations] (default [m * rounds / 2]) random flows have their
    release moved earlier while the slack condition is re-checked. *)

type study = {
  trials : int;
  flows_total : int;
  worst_slack : int;  (** Should be 1 for interesting instances. *)
  worst_fractional_rho : int;  (** LP (19)-(21) binary search, no augmentation in the relaxation. *)
  worst_heuristic : int;  (** MinRTime online max response, no augmentation. *)
  worst_exact : int option;  (** Exact optimum over trials small enough to solve. *)
}

val study : seed:int -> m:int -> rounds:int -> trials:int -> study
(** Runs [trials] generated instances and aggregates the worst observed
    values — empirical evidence toward (or against) the constant-response
    conjecture. *)
