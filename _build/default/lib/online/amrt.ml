open Flowsched_switch

let required_capacities ~cap_in ~cap_out ~dmax =
  let aug c = 2 * (c + (2 * dmax) - 1) in
  (Array.map aug cap_in, Array.map aug cap_out)

(* Registry for introspection: policy name is unique per instance. *)
let rho_registry : (string, int ref) Hashtbl.t = Hashtbl.create 4
let instance_counter = ref 0

let make ?(initial_rho = 1) ~planning_cap_in ~planning_cap_out () =
  let rho = ref (max 1 initial_rho) in
  let next_checkpoint = ref 0 in
  (* flow id -> committed absolute round *)
  let plan : (int, int) Hashtbl.t = Hashtbl.create 64 in
  incr instance_counter;
  let name = Printf.sprintf "AMRT#%d" !instance_counter in
  Hashtbl.replace rho_registry name rho;
  let select ctx =
    let t = ctx.Policy.round in
    if t >= !next_checkpoint then begin
      (* Batch = pending flows not yet committed.  Try to schedule them all
         within [t, t + rho) using the offline algorithm. *)
      let batch =
        Array.to_list ctx.Policy.queue
        |> List.filter (fun (f : Flow.t) -> not (Hashtbl.mem plan f.Flow.id))
      in
      (if batch <> [] then begin
         let flows =
           Array.of_list
             (List.mapi
                (fun i (f : Flow.t) ->
                  Flow.make ~id:i ~src:f.Flow.src ~dst:f.Flow.dst ~demand:f.Flow.demand
                    ~release:0 ())
                batch)
         in
         let sub =
           Instance.create ~cap_in:planning_cap_in ~cap_out:planning_cap_out
             ~m:ctx.Policy.m ~m':ctx.Policy.m' flows
         in
         (* Grow the guess until the batch fits (serializing the batch
            always fits, so this terminates), then commit to the rounded
            offline schedule. *)
         let rec attempt () =
           let active _ = List.init !rho (fun i -> i) in
           match Flowsched_core.Mrt_rounding.round sub active with
           | Some outcome ->
               List.iteri
                 (fun i (f : Flow.t) ->
                   let rel =
                     Schedule.round_of outcome.Flowsched_core.Mrt_rounding.schedule i
                   in
                   Hashtbl.replace plan f.Flow.id (t + rel))
                 batch
           | None ->
               incr rho;
               attempt ()
         in
         attempt ()
       end);
      next_checkpoint := t + !rho
    end;
    (* Emit the committed flows for this round. *)
    let selected = ref [] in
    Array.iteri
      (fun i (f : Flow.t) ->
        match Hashtbl.find_opt plan f.Flow.id with
        | Some round when round <= t -> selected := i :: !selected
        | _ -> ())
      ctx.Policy.queue;
    !selected
  in
  { Policy.name; select }

let current_rho (p : Policy.t) =
  match Hashtbl.find_opt rho_registry p.Policy.name with
  | Some r -> Some !r
  | None -> None
