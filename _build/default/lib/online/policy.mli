(** Online scheduling policies.

    The simulator drives a policy round by round: it shows the pending flows
    (released, not yet scheduled) and the switch geometry, and the policy
    picks a capacity-feasible subset to run this round.  Policies may be
    stateful (e.g. {!Amrt}) — [select] is a closure.

    This is exactly the paper's Section 5.2 setup: "Our simulator maintains
    a bipartite graph G_t [...]; any heuristic can be plugged in to extract
    a bipartite matching M_t ⊆ E(G_t)". *)

type context = {
  m : int;
  m' : int;
  cap_in : int array;  (** Capacities the selection must respect. *)
  cap_out : int array;
  round : int;
  queue : Flowsched_switch.Flow.t array;
      (** Pending flows; [release <= round] for each. *)
}

type t = {
  name : string;
  select : context -> int list;
      (** Indices into [queue]; total demand per port must stay within the
          context capacities (the engine validates). *)
}

val queue_graph : context -> Flowsched_bipartite.Bgraph.t
(** The pending flows as a bipartite multigraph (edge [i] = [queue.(i)]). *)

val feasible_selection : context -> int list -> bool
(** Capacity check for a proposed selection. *)

val greedy_pack :
  context -> (Flowsched_switch.Flow.t -> Flowsched_switch.Flow.t -> int) -> int list
(** Sort the queue with the comparator and admit flows greedily while both
    ports have residual capacity — shared by FIFO-style policies. *)
