open Flowsched_switch

type context = {
  m : int;
  m' : int;
  cap_in : int array;
  cap_out : int array;
  round : int;
  queue : Flow.t array;
}

type t = { name : string; select : context -> int list }

let queue_graph ctx =
  Flowsched_bipartite.Bgraph.create ~nl:ctx.m ~nr:ctx.m'
    (Array.map (fun (f : Flow.t) -> (f.Flow.src, f.Flow.dst)) ctx.queue)

let feasible_selection ctx ids =
  let res_in = Array.copy ctx.cap_in and res_out = Array.copy ctx.cap_out in
  List.for_all
    (fun i ->
      i >= 0 && i < Array.length ctx.queue
      &&
      let f = ctx.queue.(i) in
      res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
      res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
      res_in.(f.Flow.src) >= 0 && res_out.(f.Flow.dst) >= 0)
    ids

let greedy_pack ctx order =
  let indices = Array.init (Array.length ctx.queue) (fun i -> i) in
  Array.sort (fun a b -> order ctx.queue.(a) ctx.queue.(b)) indices;
  let res_in = Array.copy ctx.cap_in and res_out = Array.copy ctx.cap_out in
  Array.fold_left
    (fun acc i ->
      let f = ctx.queue.(i) in
      if res_in.(f.Flow.src) >= f.Flow.demand && res_out.(f.Flow.dst) >= f.Flow.demand then begin
        res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
        res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
        i :: acc
      end
      else acc)
    [] indices
  |> List.rev
