lib/online/amrt.mli: Policy
