lib/online/policy.ml: Array Flow Flowsched_bipartite Flowsched_switch List
