lib/online/heuristics.ml: Array Flow Flowsched_bipartite Flowsched_switch Flowsched_util List Policy
