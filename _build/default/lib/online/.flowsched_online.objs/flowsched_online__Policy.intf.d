lib/online/policy.mli: Flowsched_bipartite Flowsched_switch
