lib/online/heuristics.mli: Policy
