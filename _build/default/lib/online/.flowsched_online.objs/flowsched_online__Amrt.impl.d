lib/online/amrt.ml: Array Flow Flowsched_core Flowsched_switch Hashtbl Instance List Policy Printf Schedule
