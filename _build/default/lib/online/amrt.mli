(** The batching online algorithm for maximum response time (Lemma 5.3).

    AMRT keeps a guess [rho] of the maximum response time.  At checkpoints
    spaced [rho] rounds apart it collects the flows that arrived since the
    last checkpoint and asks the offline Theorem 3 machinery whether that
    batch can be scheduled within the next [rho] rounds; if yes, the batch
    is committed to the rounded offline schedule, and if not, the guess is
    incremented and the check retried until the batch fits.  Because batch
    windows never overlap more than two at a time, the policy is
    2-competitive for maximum response time while using at most
    [2 (c_p + 2 dmax - 1)] capacity at each port — run it on an engine with
    capacities augmented via {!required_capacities}. *)

val make :
  ?initial_rho:int ->
  planning_cap_in:int array ->
  planning_cap_out:int array ->
  unit -> Policy.t
(** A fresh stateful policy.  [planning_cap_*] are the {e original} port
    capacities the offline subroutine plans against; [initial_rho] defaults
    to 1. *)

val required_capacities :
  cap_in:int array -> cap_out:int array -> dmax:int -> int array * int array
(** [2 * (c_p + 2 dmax - 1)] per port: capacities under which the policy's
    selections are always feasible. *)

val current_rho : Policy.t -> int option
(** Introspection for tests: the policy's current guess (only for policies
    created by {!make}). *)
