(** The online heuristics evaluated in Section 5.2, plus two baselines.

    Each policy extracts a capacity-feasible set of pending flows per round.
    On a unit-capacity switch the sets are matchings of the queue graph
    exactly as in the paper; general capacities are handled by the
    port-replication expansion, so every policy remains feasible for any
    instance. *)

val maxcard : Policy.t
(** "at every step a matching of maximum cardinality is extracted from G_t"
    — keeps the largest number of ports busy; expected good for average
    response time (Hopcroft–Karp). *)

val minrtime : Policy.t
(** "each edge gets assigned a weight equal to t - r_e [...] a matching of
    maximum weight is extracted" — prioritizes the longest-waiting flows;
    expected good for maximum response time.  We add 1 to each weight, which
    maximizes (waiting time, cardinality) lexicographically and makes the
    policy work-conserving on fresh flows (weight-0 edges carry no signal in
    a max-weight matching); without the offset a flow released this round
    could be ignored for free. *)

val maxweight : Policy.t
(** "each edge gets assigned a weight equal to the sum of queue sizes at its
    two endpoints" — the classic switch-scheduling MaxWeight rule; the
    middle-ground policy. *)

val fifo : Policy.t
(** Greedy packing in (release, id) order — the FIFO baseline from the
    related-work discussion (3 - 2/m competitive for max response on
    identical machines). *)

val random_policy : seed:int -> Policy.t
(** Greedy packing in a fresh random order each round; a sanity baseline. *)

val srpt : Policy.t
(** Greedy packing smallest-demand-first (ties by release then id) — the
    SPT/SRPT rule that is optimal for single-machine average response
    (related-work §1.2), interesting on workloads with non-unit demands;
    identical to {!fifo} when all demands are 1. *)

val all_paper_heuristics : Policy.t list
(** [maxcard; minrtime; maxweight] — the Figure 6/7 lineup. *)
