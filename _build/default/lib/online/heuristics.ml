open Flowsched_switch

(* Matching-based policies run on the port-replicated expansion so that
   capacities > 1 are handled; with unit capacities the expansion is the
   identity and the behaviour is exactly the paper's.  The expansion counts
   flows rather than demand units, so for non-unit demands (outside the
   paper's experimental setting) the candidate matching is filtered through
   a demand-weighted capacity check, dropping the lightest-priority
   overflow; with unit demands the filter never fires. *)
let expanded_graph ctx =
  let g = Policy.queue_graph ctx in
  (Flowsched_bipartite.Bmatching.expand g ~cl:ctx.Policy.cap_in ~cr:ctx.Policy.cap_out)
    .Flowsched_bipartite.Bmatching.graph

let admit_feasible ctx candidates =
  let res_in = Array.copy ctx.Policy.cap_in and res_out = Array.copy ctx.Policy.cap_out in
  List.filter
    (fun i ->
      let f = ctx.Policy.queue.(i) in
      if res_in.(f.Flow.src) >= f.Flow.demand && res_out.(f.Flow.dst) >= f.Flow.demand
      then begin
        res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
        res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
        true
      end
      else false)
    candidates

let maxcard =
  {
    Policy.name = "MaxCard";
    select =
      (fun ctx ->
        if Array.length ctx.Policy.queue = 0 then []
        else
          admit_feasible ctx
            (Flowsched_bipartite.Matching.max_cardinality (expanded_graph ctx)));
  }

let weighted_select ctx weight_of =
  if Array.length ctx.Policy.queue = 0 then []
  else begin
    let g = expanded_graph ctx in
    let weights = Array.mapi (fun i _ -> weight_of i) ctx.Policy.queue in
    let matched = Flowsched_bipartite.Weighted_matching.max_weight g weights in
    (* keep the heaviest candidates when the demand filter has to drop any *)
    let by_weight = List.sort (fun a b -> compare weights.(b) weights.(a)) matched in
    admit_feasible ctx by_weight
  end

let minrtime =
  {
    Policy.name = "MinRTime";
    select =
      (fun ctx ->
        weighted_select ctx (fun i ->
            let f = ctx.Policy.queue.(i) in
            float_of_int (ctx.Policy.round - f.Flow.release + 1)));
  }

let maxweight =
  {
    Policy.name = "MaxWeight";
    select =
      (fun ctx ->
        let qin = Array.make ctx.Policy.m 0 and qout = Array.make ctx.Policy.m' 0 in
        Array.iter
          (fun (f : Flow.t) ->
            qin.(f.Flow.src) <- qin.(f.Flow.src) + 1;
            qout.(f.Flow.dst) <- qout.(f.Flow.dst) + 1)
          ctx.Policy.queue;
        weighted_select ctx (fun i ->
            let f = ctx.Policy.queue.(i) in
            float_of_int (qin.(f.Flow.src) + qout.(f.Flow.dst))));
  }

let fifo =
  { Policy.name = "FIFO"; select = (fun ctx -> Policy.greedy_pack ctx Flow.compare) }

let srpt =
  let order (a : Flow.t) (b : Flow.t) =
    match compare a.Flow.demand b.Flow.demand with 0 -> Flow.compare a b | c -> c
  in
  { Policy.name = "SRPT"; select = (fun ctx -> Policy.greedy_pack ctx order) }

let random_policy ~seed =
  let g = Flowsched_util.Prng.create seed in
  {
    Policy.name = "Random";
    select =
      (fun ctx ->
        let n = Array.length ctx.Policy.queue in
        if n = 0 then []
        else begin
          let order = Array.init n (fun i -> i) in
          Flowsched_util.Sampling.shuffle g order;
          let res_in = Array.copy ctx.Policy.cap_in in
          let res_out = Array.copy ctx.Policy.cap_out in
          Array.fold_left
            (fun acc i ->
              let f = ctx.Policy.queue.(i) in
              if res_in.(f.Flow.src) >= f.Flow.demand && res_out.(f.Flow.dst) >= f.Flow.demand
              then begin
                res_in.(f.Flow.src) <- res_in.(f.Flow.src) - f.Flow.demand;
                res_out.(f.Flow.dst) <- res_out.(f.Flow.dst) - f.Flow.demand;
                i :: acc
              end
              else acc)
            [] order
        end);
  }

let all_paper_heuristics = [ maxcard; minrtime; maxweight ]
