let weight_of w ids = List.fold_left (fun acc e -> acc +. w.(e)) 0. ids

(* Hungarian algorithm for the square assignment problem, minimizing.
   1-indexed arrays as in the classic potentials formulation.  [a] is
   (n+1) x (n+1) with row/column 0 unused.  Returns [p] where p.(j) = row
   assigned to column j. *)
let hungarian_min n a =
  let inf = infinity in
  let u = Array.make (n + 1) 0. and v = Array.make (n + 1) 0. in
  let p = Array.make (n + 1) 0 and way = Array.make (n + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (n + 1) inf in
    let used = Array.make (n + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref inf and j1 = ref (-1) in
      for j = 1 to n do
        if not used.(j) then begin
          let cur = a.(i0).(j) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to n do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* augment along the found path *)
    let j = ref !j0 in
    while !j <> 0 do
      let j1 = way.(!j) in
      p.(!j) <- p.(j1);
      j := j1
    done
  done;
  p

let max_weight (g : Bgraph.t) w =
  let ne = Bgraph.num_edges g in
  if Array.length w <> ne then invalid_arg "Weighted_matching.max_weight: weight length";
  if ne = 0 then []
  else begin
    (* Compact the vertex sets to the ones actually touched by edges. *)
    let lmap = Array.make g.Bgraph.nl (-1) and rmap = Array.make g.Bgraph.nr (-1) in
    let lverts = ref [] and rverts = ref [] in
    let nl = ref 0 and nr = ref 0 in
    Array.iter
      (fun { Bgraph.u; v } ->
        if lmap.(u) = -1 then begin
          lmap.(u) <- !nl;
          lverts := u :: !lverts;
          incr nl
        end;
        if rmap.(v) = -1 then begin
          rmap.(v) <- !nr;
          rverts := v :: !rverts;
          incr nr
        end)
      g.Bgraph.edges;
    let n = max !nl !nr in
    (* Best non-negative weight and witness edge per compacted pair; pairs
       without an edge keep weight 0, which encodes "leave unmatched". *)
    let best_w = Array.make_matrix n n 0. in
    let best_e = Array.make_matrix n n (-1) in
    for e = 0 to ne - 1 do
      let { Bgraph.u; v } = Bgraph.edge g e in
      let i = lmap.(u) and j = rmap.(v) in
      if w.(e) >= 0. && (best_e.(i).(j) = -1 || w.(e) > best_w.(i).(j)) then begin
        best_w.(i).(j) <- w.(e);
        best_e.(i).(j) <- e
      end
    done;
    let wmax = Array.fold_left (fun acc row -> Array.fold_left max acc row) 0. best_w in
    (* Assignment cost: wmax - weight, so maximizing weight = minimizing cost. *)
    let a = Array.make_matrix (n + 1) (n + 1) 0. in
    for i = 1 to n do
      for j = 1 to n do
        a.(i).(j) <- wmax -. best_w.(i - 1).(j - 1)
      done
    done;
    let p = hungarian_min n a in
    let result = ref [] in
    for j = 1 to n do
      let i = p.(j) in
      if i >= 1 then begin
        let e = best_e.(i - 1).(j - 1) in
        if e >= 0 then result := e :: !result
      end
    done;
    !result
  end
