(** Maximum-weight bipartite matching.

    Dense Hungarian algorithm (potentials formulation, O(n³)) on the active
    vertices.  Vertices may stay unmatched, so the result maximizes total
    weight rather than cardinality; edges of negative weight are never used.
    Among maximum-weight matchings the algorithm may include zero-weight
    edges, which is what the online heuristics want (work conservation is
    then controlled by the caller through its weight function). *)

val max_weight : Bgraph.t -> float array -> int list
(** [max_weight g w] returns edge ids of a matching maximizing
    [sum of w.(e)].  [w] must have an entry per edge. *)

val weight_of : float array -> int list -> float
(** Total weight of an edge id list. *)
