(* Hopcroft-Karp.  match_l.(u) / match_r.(v) hold the matched *edge id* or
   -1; working through edge ids keeps parallel edges distinguishable. *)

let run (g : Bgraph.t) =
  let nl = g.Bgraph.nl in
  let adj = Bgraph.adj_left g in
  let match_l = Array.make nl (-1) in
  let match_r = Array.make g.Bgraph.nr (-1) in
  let dist = Array.make nl max_int in
  let queue = Queue.create () in
  let edge_v i = (Bgraph.edge g i).Bgraph.v in
  let edge_u i = (Bgraph.edge g i).Bgraph.u in
  (* BFS layers from free left vertices. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for u = 0 to nl - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- max_int
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun e ->
          let v = edge_v e in
          match match_r.(v) with
          | -1 -> found := true
          | e' ->
              let u' = edge_u e' in
              if dist.(u') = max_int then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' queue
              end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_edges = function
      | [] ->
          dist.(u) <- max_int;
          false
      | e :: rest ->
          let v = edge_v e in
          let ok =
            match match_r.(v) with
            | -1 -> true
            | e' ->
                let u' = edge_u e' in
                dist.(u') = dist.(u) + 1 && dfs u'
          in
          if ok then begin
            match_l.(u) <- e;
            match_r.(v) <- e;
            true
          end
          else try_edges rest
    in
    try_edges adj.(u)
  in
  let continue = ref true in
  while !continue do
    if bfs () then begin
      let progressed = ref false in
      for u = 0 to nl - 1 do
        if match_l.(u) = -1 && dfs u then progressed := true
      done;
      if not !progressed then continue := false
    end
    else continue := false
  done;
  match_l

let max_cardinality g =
  let match_l = run g in
  Array.fold_left (fun acc e -> if e >= 0 then e :: acc else acc) [] match_l

let max_cardinality_size g =
  let match_l = run g in
  Array.fold_left (fun acc e -> if e >= 0 then acc + 1 else acc) 0 match_l
