(** Proper edge coloring of bipartite multigraphs with Δ colors.

    By König's edge-coloring theorem a bipartite multigraph of maximum degree
    Δ is Δ-edge-colorable; the constructive algorithm used here inserts edges
    one at a time and resolves conflicts by flipping an alternating two-color
    path (O(E·V) overall).  Color classes are matchings, which is how the
    Birkhoff–von Neumann step of Theorem 1 turns interval graphs into
    per-round matchings. *)

val color : Bgraph.t -> int array
(** [color g] returns a color in [\[0, max_degree g)] per edge such that no
    two edges sharing a vertex receive the same color.  The empty graph
    yields an empty array. *)

val is_proper : Bgraph.t -> int array -> bool
(** Validity check used by tests: every color class is a matching. *)
