(** Bipartite multigraphs.

    Vertices are dense integers: left vertices in [\[0, nl)], right vertices
    in [\[0, nr)].  Parallel edges are allowed (they arise naturally when the
    same port pair carries several flows, and when pseudo-schedule rounds are
    combined over an interval).  Edges are identified by their index in the
    edge array, so algorithm outputs can always be traced back to the flow
    that created the edge. *)

type edge = { u : int; v : int }

type t = private { nl : int; nr : int; edges : edge array }

val create : nl:int -> nr:int -> (int * int) array -> t
(** [create ~nl ~nr pairs] builds a graph whose edge [i] is [pairs.(i)].
    Raises [Invalid_argument] if an endpoint is out of range. *)

val num_edges : t -> int
val edge : t -> int -> edge

val degrees : t -> int array * int array
(** Per-vertex degrees [(left, right)] counting multiplicities. *)

val max_degree : t -> int
(** Largest degree over both sides; [0] for an edgeless graph. *)

val adj_left : t -> int list array
(** [adj_left g] maps each left vertex to the ids of its incident edges. *)

val adj_right : t -> int list array

val is_matching : t -> int list -> bool
(** Do the given edge ids touch every vertex at most once? *)

val is_b_matching : t -> cl:int array -> cr:int array -> int list -> bool
(** Degree of each left vertex [u] at most [cl.(u)] and each right vertex [v]
    at most [cr.(v)] in the sub-multigraph induced by the ids. *)
