(** Maximum-cardinality bipartite matching (Hopcroft–Karp, O(E√V)).

    Used by the MaxCard online heuristic and as the engine behind several
    validation oracles. *)

val max_cardinality : Bgraph.t -> int list
(** Edge ids of a maximum-cardinality matching. *)

val max_cardinality_size : Bgraph.t -> int
(** Just the size, without materializing the edge list. *)
