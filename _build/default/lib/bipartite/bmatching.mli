(** Reduction from b-matchings to matchings by port replication.

    Theorem 1's general-capacity case replicates each port [p] into [c_p]
    copies and spreads the incident edges round-robin over the copies; a
    matching in the expanded graph is a b-matching in the original.  The
    expansion keeps edge indices aligned: edge [i] of the expanded graph
    corresponds to edge [i] of the input. *)

type t = {
  graph : Bgraph.t;  (** Expanded unit-capacity graph. *)
  left_copy : int array;  (** Copy index assigned to each edge's left end. *)
  right_copy : int array;
}

val expand : Bgraph.t -> cl:int array -> cr:int array -> t
(** Capacities must be >= 1 for every vertex incident to an edge. *)

val max_copy_degree : Bgraph.t -> cl:int array -> cr:int array -> int
(** The maximum degree of the expanded graph:
    [max over vertices of ceil(degree / capacity)]. *)
