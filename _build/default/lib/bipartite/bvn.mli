(** Birkhoff–von Neumann-style decomposition of a bipartite multigraph into
    matchings.

    A multigraph with maximum degree d decomposes into exactly d matchings
    (König).  This is the step the paper invokes ("Applying the Birkhoff-von
    Neumann Theorem, G can be decomposed into at most d matchings in
    polynomial time") to turn the combined interval graph of a
    pseudo-schedule into per-round matchings. *)

val decompose : Bgraph.t -> int list array
(** [decompose g] returns [max_degree g] edge-id classes; every class is a
    matching of [g] and every edge appears in exactly one class.  Classes are
    ordered largest-first so that greedy emission keeps early rounds busy. *)

val decompose_b_matching : Bgraph.t -> cl:int array -> cr:int array -> int list array
(** [decompose_b_matching g ~cl ~cr] decomposes [g] into b-matchings with
    respect to the capacities: each returned class has degree at most
    [cl.(u)] at each left vertex and [cr.(v)] at each right vertex.  The
    number of classes is [max_p ceil(deg p / cap p)], realized through the
    port-replication expansion of Theorem 1. *)
