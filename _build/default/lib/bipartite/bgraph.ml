type edge = { u : int; v : int }
type t = { nl : int; nr : int; edges : edge array }

let create ~nl ~nr pairs =
  let edges =
    Array.map
      (fun (u, v) ->
        if u < 0 || u >= nl || v < 0 || v >= nr then
          invalid_arg "Bgraph.create: endpoint out of range";
        { u; v })
      pairs
  in
  { nl; nr; edges }

let num_edges g = Array.length g.edges
let edge g i = g.edges.(i)

let degrees g =
  let dl = Array.make g.nl 0 and dr = Array.make g.nr 0 in
  Array.iter
    (fun { u; v } ->
      dl.(u) <- dl.(u) + 1;
      dr.(v) <- dr.(v) + 1)
    g.edges;
  (dl, dr)

let max_degree g =
  let dl, dr = degrees g in
  let m = ref 0 in
  Array.iter (fun d -> if d > !m then m := d) dl;
  Array.iter (fun d -> if d > !m then m := d) dr;
  !m

let adj_left g =
  let adj = Array.make g.nl [] in
  for i = Array.length g.edges - 1 downto 0 do
    adj.(g.edges.(i).u) <- i :: adj.(g.edges.(i).u)
  done;
  adj

let adj_right g =
  let adj = Array.make g.nr [] in
  for i = Array.length g.edges - 1 downto 0 do
    adj.(g.edges.(i).v) <- i :: adj.(g.edges.(i).v)
  done;
  adj

let is_b_matching g ~cl ~cr ids =
  let dl = Array.make g.nl 0 and dr = Array.make g.nr 0 in
  List.for_all
    (fun i ->
      let { u; v } = g.edges.(i) in
      dl.(u) <- dl.(u) + 1;
      dr.(v) <- dr.(v) + 1;
      dl.(u) <= cl.(u) && dr.(v) <= cr.(v))
    ids

let is_matching g ids =
  is_b_matching g ~cl:(Array.make g.nl 1) ~cr:(Array.make g.nr 1) ids
