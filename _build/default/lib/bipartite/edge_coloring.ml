let color (g : Bgraph.t) =
  let ne = Bgraph.num_edges g in
  let ncolors = max (Bgraph.max_degree g) 1 in
  (* cl.(u).(c) / cr.(v).(c): edge currently colored c at that vertex, -1 if
     the color is free there. *)
  let cl = Array.make_matrix g.Bgraph.nl ncolors (-1) in
  let cr = Array.make_matrix g.Bgraph.nr ncolors (-1) in
  let colors = Array.make ne (-1) in
  let free tbl x =
    let rec go c =
      if c >= ncolors then failwith "Edge_coloring.color: no free color (degree overflow)"
      else if tbl.(x).(c) = -1 then c
      else go (c + 1)
    in
    go 0
  in
  let assign e c =
    let { Bgraph.u; v } = Bgraph.edge g e in
    colors.(e) <- c;
    cl.(u).(c) <- e;
    cr.(v).(c) <- e
  in
  let unassign e =
    let { Bgraph.u; v } = Bgraph.edge g e in
    let c = colors.(e) in
    cl.(u).(c) <- -1;
    cr.(v).(c) <- -1;
    colors.(e) <- -1
  in
  for e = 0 to ne - 1 do
    let { Bgraph.u; v } = Bgraph.edge g e in
    let a = free cl u in
    let b = free cr v in
    if a = b then assign e a
    else begin
      (* Flip the alternating a/b path starting at v: follow the edge colored
         a at v, then the edge colored b at its left endpoint, and so on.
         The path cannot reach u (u has no a-edge and the path enters left
         vertices only through a-edges), so after swapping a and b on the
         path, color a is free at both u and v. *)
      let path = ref [] in
      let rec walk_right vertex col =
        let e' = cr.(vertex).(col) in
        if e' >= 0 then begin
          path := e' :: !path;
          walk_left (Bgraph.edge g e').Bgraph.u (if col = a then b else a)
        end
      and walk_left vertex col =
        let e' = cl.(vertex).(col) in
        if e' >= 0 then begin
          path := e' :: !path;
          walk_right (Bgraph.edge g e').Bgraph.v (if col = a then b else a)
        end
      in
      walk_right v a;
      let path_edges = !path in
      let old_colors = List.map (fun e' -> colors.(e')) path_edges in
      List.iter unassign path_edges;
      List.iter2
        (fun e' c -> assign e' (if c = a then b else a))
        path_edges old_colors;
      assign e a
    end
  done;
  colors

let is_proper (g : Bgraph.t) colors =
  if Array.length colors <> Bgraph.num_edges g then false
  else begin
    let seen = Hashtbl.create 64 in
    let ok = ref true in
    Array.iteri
      (fun e c ->
        if c < 0 then ok := false
        else begin
          let { Bgraph.u; v } = Bgraph.edge g e in
          if Hashtbl.mem seen (`L, u, c) || Hashtbl.mem seen (`R, v, c) then ok := false;
          Hashtbl.replace seen (`L, u, c) ();
          Hashtbl.replace seen (`R, v, c) ()
        end)
      colors;
    !ok
  end
