lib/bipartite/bmatching.mli: Bgraph
