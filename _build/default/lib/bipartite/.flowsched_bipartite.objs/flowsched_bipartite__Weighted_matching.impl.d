lib/bipartite/weighted_matching.ml: Array Bgraph List
