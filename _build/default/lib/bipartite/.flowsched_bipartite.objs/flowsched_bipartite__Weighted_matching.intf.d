lib/bipartite/weighted_matching.mli: Bgraph
