lib/bipartite/bgraph.ml: Array List
