lib/bipartite/bvn.mli: Bgraph
