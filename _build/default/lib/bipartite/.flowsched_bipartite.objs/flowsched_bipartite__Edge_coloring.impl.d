lib/bipartite/edge_coloring.ml: Array Bgraph Hashtbl List
