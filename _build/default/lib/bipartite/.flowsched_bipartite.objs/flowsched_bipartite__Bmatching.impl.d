lib/bipartite/bmatching.ml: Array Bgraph
