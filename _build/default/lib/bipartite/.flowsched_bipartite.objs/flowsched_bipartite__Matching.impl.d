lib/bipartite/matching.ml: Array Bgraph List Queue
