lib/bipartite/bgraph.mli:
