lib/bipartite/matching.mli: Bgraph
