lib/bipartite/edge_coloring.mli: Bgraph
