lib/bipartite/bvn.ml: Array Bgraph Bmatching Edge_coloring List
