type t = { graph : Bgraph.t; left_copy : int array; right_copy : int array }

let expand (g : Bgraph.t) ~cl ~cr =
  let ne = Bgraph.num_edges g in
  let off_l = Array.make (g.Bgraph.nl + 1) 0 in
  for u = 0 to g.Bgraph.nl - 1 do
    if cl.(u) < 0 then invalid_arg "Bmatching.expand: negative capacity";
    off_l.(u + 1) <- off_l.(u) + max cl.(u) 1
  done;
  let off_r = Array.make (g.Bgraph.nr + 1) 0 in
  for v = 0 to g.Bgraph.nr - 1 do
    if cr.(v) < 0 then invalid_arg "Bmatching.expand: negative capacity";
    off_r.(v + 1) <- off_r.(v) + max cr.(v) 1
  done;
  let next_l = Array.make g.Bgraph.nl 0 and next_r = Array.make g.Bgraph.nr 0 in
  let left_copy = Array.make ne 0 and right_copy = Array.make ne 0 in
  let pairs =
    Array.init ne (fun e ->
        let { Bgraph.u; v } = Bgraph.edge g e in
        if cl.(u) = 0 || cr.(v) = 0 then
          invalid_arg "Bmatching.expand: edge incident to zero-capacity vertex";
        let ku = next_l.(u) mod cl.(u) and kv = next_r.(v) mod cr.(v) in
        next_l.(u) <- next_l.(u) + 1;
        next_r.(v) <- next_r.(v) + 1;
        left_copy.(e) <- ku;
        right_copy.(e) <- kv;
        (off_l.(u) + ku, off_r.(v) + kv))
  in
  let graph =
    Bgraph.create ~nl:off_l.(g.Bgraph.nl) ~nr:off_r.(g.Bgraph.nr) pairs
  in
  { graph; left_copy; right_copy }

let max_copy_degree (g : Bgraph.t) ~cl ~cr =
  let dl, dr = Bgraph.degrees g in
  let worst = ref 0 in
  Array.iteri
    (fun u d -> if d > 0 then worst := max !worst ((d + cl.(u) - 1) / cl.(u)))
    dl;
  Array.iteri
    (fun v d -> if d > 0 then worst := max !worst ((d + cr.(v) - 1) / cr.(v)))
    dr;
  !worst
