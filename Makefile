.PHONY: build test bench bench-smoke bench-lp obs-smoke clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# One tiny grid cell pushed through the fork-based worker pool end to end:
# generates a workload, runs two policies plus the LP bounds in 2 workers,
# and writes (then type-checks by parsing) the JSON artifact.  Also records
# a span trace (kept on disk for the CI artifact upload) and validates it.
bench-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson -m 4 --rates 2 \
	  --rounds 4 --seeds 1 --policies maxcard,maxweight --lp --jobs 2 \
	  --trace SMOKE_trace.json --out _smoke_sweep.json
	@grep -q '"schema": "flowsched-sweep/1"' _smoke_sweep.json \
	  && echo "bench-smoke: OK (_smoke_sweep.json valid)" \
	  || (echo "bench-smoke: BAD artifact" && exit 1)
	dune exec bin/main.exe -- check-trace SMOKE_trace.json
	@rm -f _smoke_sweep.json

# Metric-merge determinism gate: the same sweep grid through 4 forked
# workers and inline must report byte-identical counter totals (gauges carry
# wall-clock time and pool.* counters only fire in the forked parent, so
# both are excluded from the comparison).
obs-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson,uniform -m 4 --rates 2 \
	  --rounds 4 --seeds 1,2 --policies maxcard,minrtime --lp --jobs 4 \
	  --metrics --out _obs_sweep4.json 2>_obs_metrics4.txt
	dune exec bin/main.exe -- sweep --kinds poisson,uniform -m 4 --rates 2 \
	  --rounds 4 --seeds 1,2 --policies maxcard,minrtime --lp --jobs 1 \
	  --metrics --out _obs_sweep1.json 2>_obs_metrics1.txt
	@grep '^counter ' _obs_metrics4.txt | grep -v '^counter pool\.' > _obs_c4.txt
	@grep '^counter ' _obs_metrics1.txt | grep -v '^counter pool\.' > _obs_c1.txt
	@diff _obs_c1.txt _obs_c4.txt \
	  && echo "obs-smoke: OK (jobs=4 counter totals match jobs=1)" \
	  || (echo "obs-smoke: counter totals diverge between --jobs 1 and --jobs 4" && exit 1)
	@rm -f _obs_sweep1.json _obs_sweep4.json _obs_metrics1.txt _obs_metrics4.txt \
	  _obs_c1.txt _obs_c4.txt

# Cold-vs-warm simplex pipeline bench on representative figure-cell LPs.
# Exits non-zero if any warm-started solve disagrees with the cold objective
# beyond 1e-6; writes BENCH_lp.json (per-cell iterations + wall time) so
# future changes have a perf trajectory to compare against.
bench-lp:
	dune exec bench/main.exe -- lp --json
	@grep -q '"schema": "flowsched-bench-lp/1"' BENCH_lp.json \
	  && echo "bench-lp: OK (BENCH_lp.json valid)" \
	  || (echo "bench-lp: BAD artifact" && exit 1)

clean:
	dune clean
