.PHONY: build test bench bench-smoke clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# One tiny grid cell pushed through the fork-based worker pool end to end:
# generates a workload, runs two policies plus the LP bounds in 2 workers,
# and writes (then type-checks by parsing) the JSON artifact.
bench-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson -m 4 --rates 2 \
	  --rounds 4 --seeds 1 --policies maxcard,maxweight --lp --jobs 2 \
	  --out _smoke_sweep.json
	@grep -q '"schema": "flowsched-sweep/1"' _smoke_sweep.json \
	  && echo "bench-smoke: OK (_smoke_sweep.json valid)" \
	  || (echo "bench-smoke: BAD artifact" && exit 1)
	@rm -f _smoke_sweep.json

clean:
	dune clean
