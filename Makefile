.PHONY: build test bench bench-smoke bench-lp serve-smoke obs-smoke chaos-smoke \
  domains-smoke bench-exec scenarios-smoke bench-scenarios dist-smoke bench-dist \
  reproduce goldens clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# One tiny grid cell pushed through the fork-based worker pool end to end:
# generates a workload, runs two policies plus the LP bounds in 2 workers,
# and writes (then type-checks by parsing) the JSON artifact.  Also records
# a span trace (kept on disk for the CI artifact upload) and validates it.
bench-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson -m 4 --rates 2 \
	  --rounds 4 --seeds 1 --policies maxcard,maxweight --lp --jobs 2 \
	  --trace SMOKE_trace.json --out _smoke_sweep.json
	@grep -q '"schema": "flowsched-sweep/1"' _smoke_sweep.json \
	  && echo "bench-smoke: OK (_smoke_sweep.json valid)" \
	  || (echo "bench-smoke: BAD artifact" && exit 1)
	dune exec bin/main.exe -- check-trace SMOKE_trace.json
	@rm -f _smoke_sweep.json

# Metric-merge determinism gate: the same sweep grid through 4 forked
# workers and inline must report byte-identical counter totals (gauges carry
# wall-clock time and pool.* counters only fire in the forked parent, so
# both are excluded from the comparison).
obs-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson,uniform -m 4 --rates 2 \
	  --rounds 4 --seeds 1,2 --policies maxcard,minrtime --lp --jobs 4 \
	  --metrics --out _obs_sweep4.json 2>_obs_metrics4.txt
	dune exec bin/main.exe -- sweep --kinds poisson,uniform -m 4 --rates 2 \
	  --rounds 4 --seeds 1,2 --policies maxcard,minrtime --lp --jobs 1 \
	  --metrics --out _obs_sweep1.json 2>_obs_metrics1.txt
	@grep '^counter ' _obs_metrics4.txt | grep -v '^counter pool\.' > _obs_c4.txt
	@grep '^counter ' _obs_metrics1.txt | grep -v '^counter pool\.' > _obs_c1.txt
	@diff _obs_c1.txt _obs_c4.txt \
	  && echo "obs-smoke: OK (jobs=4 counter totals match jobs=1)" \
	  || (echo "obs-smoke: counter totals diverge between --jobs 1 and --jobs 4" && exit 1)
	@rm -f _obs_sweep1.json _obs_sweep4.json _obs_metrics1.txt _obs_metrics4.txt \
	  _obs_c1.txt _obs_c4.txt

# Resilience gate: the same sweep grid three ways — fault-free, under
# deterministic chaos injection (must converge to the same artifact given a
# retry budget), and SIGKILLed mid-run then resumed from its checkpoint
# (must also match).  Only the timing fields (wall_clock_s, phaseN_seconds)
# legitimately differ, so they are filtered before diffing.
CHAOS_GRID = --kinds poisson,uniform -m 4 --rates 2 --rounds 4,5 --seeds 1,2 \
  --policies maxcard,minrtime --lp --jobs 2
CHAOS_FILTER = grep -v 'wall_clock_s\|phase1_seconds\|phase2_seconds'

chaos-smoke: build
	@rm -f _chaos_ref.json _chaos_run.json _chaos_resume.json _chaos_ckpt.jsonl _chaos_*.f
	_build/default/bin/main.exe sweep $(CHAOS_GRID) --out _chaos_ref.json 2>/dev/null
	_build/default/bin/main.exe sweep $(CHAOS_GRID) --chaos 11 --retries 10 \
	  --timeout 5 --out _chaos_run.json 2>/dev/null
	@$(CHAOS_FILTER) _chaos_ref.json > _chaos_ref.f
	@$(CHAOS_FILTER) _chaos_run.json > _chaos_run.f
	@diff _chaos_ref.f _chaos_run.f >/dev/null \
	  && echo "chaos-smoke: chaos run converged to the fault-free artifact" \
	  || (echo "chaos-smoke: chaos artifact diverges from fault-free run" && exit 1)
	@_build/default/bin/main.exe sweep $(CHAOS_GRID) \
	  --checkpoint _chaos_ckpt.jsonl --out _chaos_resume.json 2>/dev/null & \
	pid=$$!; tries=0; \
	while [ ! -s _chaos_ckpt.jsonl ] && [ $$tries -lt 200 ]; do sleep 0.05; tries=$$((tries+1)); done; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; true
	_build/default/bin/main.exe sweep $(CHAOS_GRID) \
	  --checkpoint _chaos_ckpt.jsonl --resume --out _chaos_resume.json 2>/dev/null
	@$(CHAOS_FILTER) _chaos_resume.json > _chaos_resume.f
	@diff _chaos_ref.f _chaos_resume.f >/dev/null \
	  && echo "chaos-smoke: SIGKILL + resume reproduced the artifact" \
	  || (echo "chaos-smoke: resumed artifact diverges" && exit 1)
	@rm -f _chaos_ref.json _chaos_run.json _chaos_resume.json _chaos_ckpt.jsonl _chaos_*.f

# Cold-vs-warm simplex pipeline bench on representative figure-cell LPs,
# plus the large-instance tier (single ART round-LPs at 240 and 600 flows,
# the sparse engine's target regime) in smoke form.  Exits non-zero if any
# warm-started solve disagrees with the cold objective beyond 1e-6; writes
# BENCH_lp.json (per-cell pivots, sparsity counters, wall time) so future
# changes have a perf trajectory to compare against.
bench-lp:
	dune exec bench/main.exe -- lp --json --smoke
	@grep -q '"schema": "flowsched-bench-lp/2"' BENCH_lp.json \
	  && echo "bench-lp: OK (BENCH_lp.json valid)" \
	  || (echo "bench-lp: BAD artifact" && exit 1)

# Serve-loop gate: a 100k-slot bounded-memory run with the incremental
# matching core must be byte-stable across two invocations for a fixed
# seed (the outcome is all-integer, so wall-clock variance cannot leak in),
# and the serve bench's exactness gate must report the incremental matching
# cardinality equal to a from-scratch Hopcroft-Karp on every slot.
serve-smoke:
	dune exec bin/main.exe -- serve --core incremental --workload uniform \
	  -m 8 --rate 6 --slots 100000 --seed 7 --status-every 0 --json \
	  > _serve_a.json 2>/dev/null
	dune exec bin/main.exe -- serve --core incremental --workload uniform \
	  -m 8 --rate 6 --slots 100000 --seed 7 --status-every 0 --json \
	  > _serve_b.json 2>/dev/null
	@diff _serve_a.json _serve_b.json >/dev/null \
	  && echo "serve-smoke: 100k-slot run byte-stable across invocations" \
	  || (echo "serve-smoke: outcome not reproducible for a fixed seed" && exit 1)
	@grep -q '"completed": 0' _serve_a.json \
	  && (echo "serve-smoke: no flows completed" && exit 1) \
	  || echo "serve-smoke: OK ($$(grep -o '"completed": [0-9]*' _serve_a.json | head -1 | grep -o '[0-9]*') flows completed)"
	dune exec bench/main.exe -- serve --json
	@grep -q '"schema": "flowsched-bench-serve/1"' BENCH_serve.json \
	  && grep -q '"disagreements": 0' BENCH_serve.json \
	  && echo "serve-smoke: OK (BENCH_serve.json valid, exactness gate clean)" \
	  || (echo "serve-smoke: BAD artifact or exactness gate failure" && exit 1)
	@rm -f _serve_a.json _serve_b.json

# Domains-executor byte-identity gate: the same LP-enabled sweep grid on the
# shared-memory domains backend with 4 workers vs the sequential run must
# produce (a) byte-identical artifacts after dropping the timing lines and
# the worker-count metadata line (the only field that records how the run
# was parallelized) and (b) byte-identical counter totals (executor-internal
# pool.*/domains.* counters depend on worker count, so both families are
# excluded — every algorithmic counter must match exactly).
DOMAINS_GRID = --kinds poisson,uniform -m 4 --rates 2 --rounds 4,5 --seeds 1,2 \
  --policies maxcard,minrtime --lp
DOMAINS_FILTER = grep -v 'wall_clock_s\|phase1_seconds\|phase2_seconds\|"jobs":'

domains-smoke: build
	@rm -f _dom_*.json _dom_*.txt _dom_*.f
	_build/default/bin/main.exe sweep $(DOMAINS_GRID) --backend domains --jobs 4 \
	  --out _dom_sweep4.json 2>/dev/null
	_build/default/bin/main.exe sweep $(DOMAINS_GRID) --jobs 1 \
	  --out _dom_sweep1.json 2>/dev/null
	@$(DOMAINS_FILTER) _dom_sweep4.json > _dom_sweep4.f
	@$(DOMAINS_FILTER) _dom_sweep1.json > _dom_sweep1.f
	@diff _dom_sweep1.f _dom_sweep4.f >/dev/null \
	  && echo "domains-smoke: artifact byte-identical (domains --jobs 4 vs --jobs 1)" \
	  || (echo "domains-smoke: artifact diverges between domains --jobs 4 and --jobs 1" && exit 1)
	_build/default/bin/main.exe sweep $(DOMAINS_GRID) --backend domains --jobs 4 \
	  --metrics --out _dom_m4.json 2>_dom_metrics4.txt
	_build/default/bin/main.exe sweep $(DOMAINS_GRID) --jobs 1 \
	  --metrics --out _dom_m1.json 2>_dom_metrics1.txt
	@grep '^counter ' _dom_metrics4.txt | grep -v '^counter pool\.\|^counter domains\.' > _dom_c4.txt
	@grep '^counter ' _dom_metrics1.txt | grep -v '^counter pool\.\|^counter domains\.' > _dom_c1.txt
	@diff _dom_c1.txt _dom_c4.txt \
	  && echo "domains-smoke: OK (counter totals match)" \
	  || (echo "domains-smoke: counter totals diverge between domains --jobs 4 and --jobs 1" && exit 1)
	@rm -f _dom_*.json _dom_*.txt _dom_*.f

# Executor bench: fork vs domains vs inline over the same sweep grid (the
# artifacts must agree byte-for-byte modulo timing) plus the parallel-rho
# k-section micro (must find the same rho as the sequential bisection).
# Writes BENCH_exec.json; exits non-zero on any disagreement.
bench-exec:
	dune exec bench/main.exe -- exec --json --jobs 4
	@grep -q '"schema": "flowsched-bench-exec/1"' BENCH_exec.json \
	  && grep -q '"disagreements": 0' BENCH_exec.json \
	  && echo "bench-exec: OK (BENCH_exec.json valid, backends agree)" \
	  || (echo "bench-exec: BAD artifact or backend disagreement" && exit 1)

# Scenario-matrix byte-identity gate: the same policy x workload x mode grid
# (8 zoo kinds x 3 problem modes x 2 seeds, LP bounds on) through 1 inline
# worker and 4 shared-memory domains workers must write byte-for-byte
# identical artifacts — matrix cells deliberately carry no wall-clock or
# worker-count metadata, so cmp(1) is the whole gate.
MATRIX_GRID = --kinds poisson,pareto:1.5,lognormal,bursty,diurnal,flash-crowd,bimodal,staircase \
  --modes flows,endpoint:2:2,coflow:3:4 -m 5 --rates 2.5 --rounds 6 --seeds 1,2 \
  --max-demand 3 --lp

scenarios-smoke: build
	@rm -f _matrix_j1.json _matrix_j4.json
	_build/default/bin/main.exe matrix $(MATRIX_GRID) --jobs 1 --backend inline \
	  --out _matrix_j1.json
	_build/default/bin/main.exe matrix $(MATRIX_GRID) --jobs 4 --backend domains \
	  --out _matrix_j4.json
	@cmp _matrix_j1.json _matrix_j4.json \
	  && echo "scenarios-smoke: matrix artifact byte-identical (inline --jobs 1 vs domains --jobs 4)" \
	  || (echo "scenarios-smoke: matrix artifact diverges across jobs/backends" && exit 1)
	@grep -q '"schema": "flowsched-matrix/1"' _matrix_j1.json \
	  && echo "scenarios-smoke: OK (_matrix_j1.json valid)" \
	  || (echo "scenarios-smoke: BAD artifact" && exit 1)
	@rm -f _matrix_j1.json _matrix_j4.json

# Scenarios bench: the same matrix grid on the inline, fork and domains
# backends; any byte-level artifact disagreement exits non-zero.  Writes the
# schema-checked BENCH_scenarios.json for the CI artifact upload.
bench-scenarios:
	dune exec bench/main.exe -- scenarios --json --jobs 4
	@grep -q '"schema": "flowsched-bench-scenarios/1"' BENCH_scenarios.json \
	  && grep -q '"disagreements": 0' BENCH_scenarios.json \
	  && echo "bench-scenarios: OK (BENCH_scenarios.json valid, backends agree)" \
	  || (echo "bench-scenarios: BAD artifact or backend disagreement" && exit 1)

# Distributed-sweep chaos gate: three shard workers over the chaos grid.
# Worker 0 is killed mid-shard (deterministic fault plan, no retries — the
# first injected fault is fatal), leaving its lease and a partial CRC-sealed
# checkpoint behind.  The merge must refuse the partial grid, a takeover
# worker must claim the stale lease (dead-pid fast path) and finish the
# shard from the crashed worker's prefix, and the final merged artifact —
# DIST_merged.json, kept on disk for the CI upload — must be byte-identical
# to the uninterrupted single-box --jobs 1 run modulo the timing lines.
DIST_GRID = --kinds poisson,uniform -m 4 --rates 2 --rounds 4,5 --seeds 1,2 \
  --policies maxcard,minrtime --lp
DIST_DIR = _dist_ckpt

dist-smoke: build
	@rm -rf $(DIST_DIR) _dist_*.json _dist_*.f _dist_takeover.log DIST_merged.json
	_build/default/bin/main.exe sweep $(DIST_GRID) --jobs 1 --out _dist_ref.json 2>/dev/null
	@_build/default/bin/main.exe sweep $(DIST_GRID) --jobs 1 --shard 0/3 \
	  --checkpoint-dir $(DIST_DIR) --chaos 1 --retries 0 >/dev/null 2>&1; \
	test $$? -ne 0 \
	  && echo "dist-smoke: worker 0 crashed mid-shard (as planned)" \
	  || (echo "dist-smoke: chaos worker unexpectedly survived" && exit 1)
	@test -f $(DIST_DIR)/shard-0-of-3.lease \
	  && test -s $(DIST_DIR)/shard-0-of-3.jsonl \
	  && echo "dist-smoke: crash left lease + partial checkpoint behind" \
	  || (echo "dist-smoke: expected a stale lease and a checkpoint prefix" && exit 1)
	_build/default/bin/main.exe sweep $(DIST_GRID) --jobs 1 --shard 1/3 \
	  --checkpoint-dir $(DIST_DIR) 2>/dev/null
	_build/default/bin/main.exe sweep $(DIST_GRID) --jobs 1 --shard 2/3 \
	  --checkpoint-dir $(DIST_DIR) 2>/dev/null
	@_build/default/bin/main.exe merge $(DIST_GRID) --dir $(DIST_DIR) \
	  --out _dist_partial.json >/dev/null 2>&1; \
	test $$? -ne 0 \
	  && echo "dist-smoke: merge refused the partial grid (missing cells)" \
	  || (echo "dist-smoke: merge accepted a partial grid without --allow-partial" && exit 1)
	_build/default/bin/main.exe sweep $(DIST_GRID) --jobs 1 --shard 0/3 \
	  --checkpoint-dir $(DIST_DIR) 2>_dist_takeover.log
	@grep -q 'takeover: claimed stale lease' _dist_takeover.log \
	  && grep -q 'resuming:' _dist_takeover.log \
	  && echo "dist-smoke: takeover claimed the stale lease and resumed the prefix" \
	  || (echo "dist-smoke: expected a lease takeover + checkpoint resume" && cat _dist_takeover.log && exit 1)
	_build/default/bin/main.exe merge $(DIST_GRID) --dir $(DIST_DIR) --out DIST_merged.json
	@$(CHAOS_FILTER) _dist_ref.json > _dist_ref.f
	@$(CHAOS_FILTER) DIST_merged.json > _dist_merged.f
	@diff _dist_ref.f _dist_merged.f >/dev/null \
	  && echo "dist-smoke: merged artifact byte-identical to single-box --jobs 1 run" \
	  || (echo "dist-smoke: merged artifact diverges from the clean run" && exit 1)
	@rm -rf $(DIST_DIR) _dist_*.json _dist_*.f _dist_takeover.log

# Sharded sweep + verifying merge vs the single-box run; any byte-level
# disagreement (after the timing lines) exits non-zero.  Writes the
# schema-checked BENCH_dist.json for the CI artifact upload.
bench-dist:
	dune exec bench/main.exe -- dist --json --jobs 2
	@grep -q '"schema": "flowsched-bench-dist/1"' BENCH_dist.json \
	  && grep -q '"disagreements": 0' BENCH_dist.json \
	  && echo "bench-dist: OK (BENCH_dist.json valid, merge agrees)" \
	  || (echo "bench-dist: BAD artifact or merge disagreement" && exit 1)

# Artifact-evaluation harness, first slice: rerun the deterministic
# evaluation artifacts and diff them byte-for-byte against the committed
# goldens (goldens/).  The matrix artifact carries no timing metadata at
# all; the sweep artifact is compared after dropping its documented
# wall-clock lines; the serve outcome is all-integer.  Regenerate after an
# intentional change with `make goldens` and commit the diff.
REPRO_SERVE = serve --core incremental --workload uniform -m 8 --rate 6 \
  --slots 20000 --seed 7 --status-every 0 --json

reproduce: build
	@rm -f _repro_*.json _repro_*.f
	_build/default/bin/main.exe matrix $(MATRIX_GRID) --jobs 2 --out _repro_matrix.json 2>/dev/null
	@cmp goldens/matrix.json _repro_matrix.json \
	  && echo "reproduce: matrix artifact matches golden" \
	  || (echo "reproduce: matrix artifact diverges from goldens/matrix.json" && exit 1)
	_build/default/bin/main.exe sweep $(CHAOS_GRID) --out _repro_sweep.json 2>/dev/null
	@$(CHAOS_FILTER) _repro_sweep.json > _repro_sweep.f
	@diff goldens/sweep.filtered.json _repro_sweep.f >/dev/null \
	  && echo "reproduce: sweep artifact matches golden (timing lines excluded)" \
	  || (echo "reproduce: sweep artifact diverges from goldens/sweep.filtered.json" && exit 1)
	_build/default/bin/main.exe $(REPRO_SERVE) > _repro_serve.json 2>/dev/null
	@cmp goldens/serve.json _repro_serve.json \
	  && echo "reproduce: serve outcome matches golden" \
	  || (echo "reproduce: serve outcome diverges from goldens/serve.json" && exit 1)
	@rm -f _repro_*.json _repro_*.f
	@echo "reproduce: OK (all artifacts match the committed goldens)"

# Regenerate the committed goldens (after an intentional behavior change).
goldens: build
	@mkdir -p goldens
	_build/default/bin/main.exe matrix $(MATRIX_GRID) --jobs 2 --out goldens/matrix.json 2>/dev/null
	_build/default/bin/main.exe sweep $(CHAOS_GRID) --out _golden_sweep.json 2>/dev/null
	@$(CHAOS_FILTER) _golden_sweep.json > goldens/sweep.filtered.json
	@rm -f _golden_sweep.json
	_build/default/bin/main.exe $(REPRO_SERVE) > goldens/serve.json 2>/dev/null
	@echo "goldens regenerated — review and commit goldens/"

clean:
	dune clean
