.PHONY: build test bench bench-smoke bench-lp clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# One tiny grid cell pushed through the fork-based worker pool end to end:
# generates a workload, runs two policies plus the LP bounds in 2 workers,
# and writes (then type-checks by parsing) the JSON artifact.
bench-smoke:
	dune exec bin/main.exe -- sweep --kinds poisson -m 4 --rates 2 \
	  --rounds 4 --seeds 1 --policies maxcard,maxweight --lp --jobs 2 \
	  --out _smoke_sweep.json
	@grep -q '"schema": "flowsched-sweep/1"' _smoke_sweep.json \
	  && echo "bench-smoke: OK (_smoke_sweep.json valid)" \
	  || (echo "bench-smoke: BAD artifact" && exit 1)
	@rm -f _smoke_sweep.json

# Cold-vs-warm simplex pipeline bench on representative figure-cell LPs.
# Exits non-zero if any warm-started solve disagrees with the cold objective
# beyond 1e-6; writes BENCH_lp.json (per-cell iterations + wall time) so
# future changes have a perf trajectory to compare against.
bench-lp:
	dune exec bench/main.exe -- lp --json
	@grep -q '"schema": "flowsched-bench-lp/1"' BENCH_lp.json \
	  && echo "bench-lp: OK (BENCH_lp.json valid)" \
	  || (echo "bench-lp: BAD artifact" && exit 1)

clean:
	dune clean
